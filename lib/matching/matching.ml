module G = Bipartite.Graph

type engine = Dfs | Hopcroft_karp | Push_relabel

let all_engines = [ Dfs; Hopcroft_karp; Push_relabel ]

let engine_name = function
  | Dfs -> "dfs"
  | Hopcroft_karp -> "hopcroft-karp"
  | Push_relabel -> "push-relabel"

type result = { mate1 : int array; size : int }

type stats = { phases : int; augmentations : int; steals : int; scans : int }

let solve_with_stats ?(engine = Hopcroft_karp) ?capacities g =
  let caps = match capacities with Some c -> c | None -> Array.make g.G.n2 1 in
  let counters = Engine_common.fresh_stats () in
  let mate1 =
    match engine with
    | Dfs -> Dfs_engine.run ~stats:counters g ~caps
    | Hopcroft_karp -> Hopcroft_karp_engine.run ~stats:counters g ~caps
    | Push_relabel -> Push_relabel_engine.run ~stats:counters g ~caps
  in
  let size = Array.fold_left (fun acc m -> if m >= 0 then acc + 1 else acc) 0 mate1 in
  (* One event per engine run, whatever the engine: enough for the event
     log to show which engine ran when (and how hard) inside a race. *)
  if Obs.is_enabled () then
    Obs.Events.emit "matching.solved"
      [
        Obs.Events.str "engine" (engine_name engine);
        Obs.Events.int "size" size;
        Obs.Events.int "phases" counters.Engine_common.phases;
        Obs.Events.int "augmentations" counters.Engine_common.augmentations;
        Obs.Events.int "scans" counters.Engine_common.scans;
      ];
  ( { mate1; size },
    {
      phases = counters.Engine_common.phases;
      augmentations = counters.Engine_common.augmentations;
      steals = counters.Engine_common.steals;
      scans = counters.Engine_common.scans;
    } )

let solve ?engine ?capacities g = fst (solve_with_stats ?engine ?capacities g)

let occupancy g result =
  let count = Array.make g.G.n2 0 in
  Array.iteri
    (fun v u ->
      if u >= 0 then begin
        if u >= g.G.n2 then invalid_arg "Matching.occupancy: mate out of range";
        let ok = ref false in
        G.iter_neighbors g v (fun u' _w -> if u' = u then ok := true);
        if not !ok then invalid_arg "Matching.occupancy: matched pair is not an edge";
        count.(u) <- count.(u) + 1
      end)
    result.mate1;
  count

let is_maximal_valid ?capacities g result =
  let caps = match capacities with Some c -> c | None -> Array.make g.G.n2 1 in
  match occupancy g result with
  | exception Invalid_argument _ -> false
  | count ->
      let capacity_ok = Array.for_all2 (fun c cap -> c <= cap) count caps in
      let no_trivial_augment = ref true in
      Array.iteri
        (fun v u ->
          if u < 0 then
            G.iter_neighbors g v (fun u' _w -> if count.(u') < caps.(u') then no_trivial_augment := false))
        result.mate1;
      capacity_ok && !no_trivial_augment
