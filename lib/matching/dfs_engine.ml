(* Augmenting-path DFS with a lookahead pass: before descending, each visited
   row first checks all its neighbours for residual capacity (Duff-Kaya-Uçar
   style lookahead), which avoids most deep searches on easy instances. *)

module G = Bipartite.Graph
open Engine_common

(* Probe points: the lookahead-hit ratio (hits / augmentations) is the whole
   story of this engine — near 1.0 on easy instances it degenerates to a
   second greedy pass, and descents only pay on the hard tail. *)
let c_scans = Obs.Metrics.counter "matching.dfs.scans"
let c_lookahead_hits = Obs.Metrics.counter "matching.dfs.lookahead_hits"
let c_descents = Obs.Metrics.counter "matching.dfs.descents"
let c_augmentations = Obs.Metrics.counter "matching.dfs.augmentations"

let run ?(stats = fresh_stats ()) g ~caps =
  let st = create g ~caps in
  greedy_init st;
  let visited = Array.make g.G.n2 (-1) in
  let round = ref 0 in
  let rec augment v =
    stats.scans <- stats.scans + 1;
    Obs.Metrics.incr c_scans;
    (* Lookahead: directly claim a processor with spare capacity. *)
    let direct = ref (-1) in
    G.iter_neighbors g v (fun u _w -> if !direct < 0 && residual st u > 0 then direct := u);
    if !direct >= 0 then begin
      assign st v !direct;
      stats.augmentations <- stats.augmentations + 1;
      Obs.Metrics.incr c_lookahead_hits;
      true
    end
    else begin
      Obs.Metrics.incr c_descents;
      (* Descend: try to relocate one occupant of a saturated neighbour. *)
      let rec over_neighbors e =
        if e >= g.G.off.(v + 1) then false
        else begin
          let u = g.G.adj.(e) in
          if visited.(u) = !round then over_neighbors (e + 1)
          else begin
            visited.(u) <- !round;
            let occupants = Ds.Vec.to_array st.matched_of.(u) in
            let rec try_occupants i =
              if i >= Array.length occupants then false
              else begin
                let v' = occupants.(i) in
                if st.mate1.(v') = u && augment v' then begin
                  (* v' found a new home via the recursive call; take its
                     slot in u's occupant list. *)
                  replace_occupant st ~v ~from:u ~victim:v';
                  true
                end
                else try_occupants (i + 1)
              end
            in
            if try_occupants 0 then true else over_neighbors (e + 1)
          end
        end
      in
      over_neighbors g.G.off.(v)
    end
  in
  for v = 0 to g.G.n1 - 1 do
    if st.mate1.(v) < 0 then begin
      incr round;
      if augment v then Obs.Metrics.incr c_augmentations
    end
  done;
  st.mate1
