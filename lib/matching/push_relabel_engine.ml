(* FIFO push-relabel specialized to bipartite matching (the paper's engine,
   after Goldberg–Tarjan [12] and Kaya–Langguth–Manne–Uçar [15]).

   Only exposed rows carry excess.  Processing a row performs a double push:
   relabel the row to 1 + min column height, push into the minimum column,
   and if that column is saturated, relabel it from its occupants' labels and
   kick out the occupant with the smallest label.  Heights never decrease
   between global relabels; a row whose best column reaches the height limit
   is unmatchable.

   A *global relabel* (the standard MatchMaker ingredient) initializes the
   heights to exact residual distances by backward BFS from the columns with
   spare capacity.  Starting from zeros instead, the local relabels ratchet
   one step at a time and the engine degenerates on infeasible instances —
   e.g. inside the exact algorithm's deadline search — taking Θ(limit)
   rounds per unmatchable row: the initial BFS certifies those rows
   unmatchable immediately.  The relabel runs once, before the main loop;
   heights then grow monotonically, which is what the termination argument
   rests on (a mid-run relabel would lower heights and unsettle the stored
   row labels). *)

module G = Bipartite.Graph
open Engine_common

(* Probe points: pushes/relabels are the push-relabel complexity currencies
   (Goldberg–Tarjan count both); [steals] are the double-push relocations
   specific to the matching specialization, and [global_relabels] counts the
   exact-height BFS passes (one per run by construction — the counter
   documents that invariant in reports). *)
let c_pushes = Obs.Metrics.counter "matching.pr.pushes"
let c_steals = Obs.Metrics.counter "matching.pr.steals"
let c_relabels = Obs.Metrics.counter "matching.pr.relabels"
let c_global_relabels = Obs.Metrics.counter "matching.pr.global_relabels"
let c_scans = Obs.Metrics.counter "matching.pr.scans"

(* Exact heights by backward BFS from the columns with residual capacity,
   along residual arcs (row pushes into a column over an unmatched edge; a
   column frees a slot by re-routing one of its occupants).  psi(u) is the
   exact residual distance (0 at residual columns, [limit] when
   unreachable); row labels d1 are refreshed to stay consistent lower
   bounds, which the steal rule's validity depends on. *)
let exact_heights st ~psi ~d1 ~limit ~rev_off ~rev_adj =
  let g = st.g in
  let row_dist = Array.make g.G.n1 (-1) in
  Array.fill psi 0 g.G.n2 limit;
  Array.fill d1 0 g.G.n1 limit;
  let queue = Queue.create () in
  for u = 0 to g.G.n2 - 1 do
    if residual st u > 0 then begin
      psi.(u) <- 0;
      Queue.add u queue
    end
  done;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    (* Any row v with an unmatched edge (v,u) can push into u. *)
    for i = rev_off.(u) to rev_off.(u + 1) - 1 do
      let v = rev_adj.(i) in
      (* mate1 holds the matched column directly. *)
      let matched_here = st.mate1.(v) = u in
      if (not matched_here) && row_dist.(v) < 0 then begin
        row_dist.(v) <- psi.(u) + 1;
        d1.(v) <- row_dist.(v);
        (* v's own column (if any) can free a slot by re-routing v. *)
        let u' = st.mate1.(v) in
        if u' >= 0 && psi.(u') = limit then begin
          psi.(u') <- row_dist.(v);
          Queue.add u' queue
        end
      end
    done
  done

let run ?(stats = fresh_stats ()) g ~caps =
  let st = create g ~caps in
  greedy_init st;
  let limit = (2 * (g.G.n1 + g.G.n2)) + 5 in
  let psi = Array.make g.G.n2 0 in
  (* Row labels: d1.(v) = psi(column) + 1 at the moment v was pushed in. *)
  let d1 = Array.make g.G.n1 0 in
  (* Reverse adjacency (column -> incident rows), for global relabeling. *)
  let rev_off = Array.make (g.G.n2 + 1) 0 in
  Array.iter (fun u -> rev_off.(u + 1) <- rev_off.(u + 1) + 1) g.G.adj;
  for u = 1 to g.G.n2 do
    rev_off.(u) <- rev_off.(u) + rev_off.(u - 1)
  done;
  let rev_adj = Array.make (Array.length g.G.adj) 0 in
  let cursor = Array.copy rev_off in
  for v = 0 to g.G.n1 - 1 do
    G.iter_neighbors g v (fun u _w ->
        rev_adj.(cursor.(u)) <- v;
        cursor.(u) <- cursor.(u) + 1)
  done;
  let relabel_now () =
    stats.phases <- stats.phases + 1;
    Obs.Metrics.incr c_global_relabels;
    if Obs.is_enabled () then
      Obs.Events.emit ~level:Obs.Events.Debug "pr.global_relabel"
        [ Obs.Events.int "round" stats.phases; Obs.Events.int "pushes_so_far" stats.augmentations ];
    exact_heights st ~psi ~d1 ~limit ~rev_off ~rev_adj;
    for u = 0 to g.G.n2 - 1 do
      if caps.(u) = 0 then psi.(u) <- limit
    done
  in
  relabel_now ();
  let queue = Queue.create () in
  for v = 0 to g.G.n1 - 1 do
    if st.mate1.(v) < 0 then Queue.add v queue
  done;
  while not (Queue.is_empty queue) do
    stats.scans <- stats.scans + 1;
    Obs.Metrics.incr c_scans;
    let v = Queue.pop queue in
    (* Find the lowest column adjacent to v. *)
    let best = ref (-1) and best_psi = ref max_int in
    G.iter_neighbors g v (fun u _w ->
        if psi.(u) < !best_psi then begin
          best := u;
          best_psi := psi.(u)
        end);
    if !best >= 0 && !best_psi < limit then begin
      let u = !best in
      d1.(v) <- psi.(u) + 1;
      if residual st u > 0 then begin
        assign st v u;
        stats.augmentations <- stats.augmentations + 1;
        Obs.Metrics.incr c_pushes
      end
      else begin
        (* Saturated: find the occupant with minimum label (kick it) and the
           second minimum over occupants ∪ {v} (new column height). *)
        let victim = ref (-1) and min_d = ref max_int and second_d = ref max_int in
        let consider v'' =
          let d = d1.(v'') in
          if d < !min_d then begin
            second_d := !min_d;
            min_d := d;
            victim := v''
          end
          else if d < !second_d then second_d := d
        in
        Ds.Vec.iter consider st.matched_of.(u);
        consider v;
        if !victim = v then begin
          (* v itself has the smallest label: pushing it in would bounce it
             straight back out.  Treat as a failed push: relabel v's target
             height and retry later. *)
          Obs.Metrics.incr c_relabels;
          psi.(u) <- max psi.(u) (min limit (!second_d + 1));
          Queue.add v queue
        end
        else begin
          let v' = !victim in
          stats.steals <- stats.steals + 1;
          Obs.Metrics.incr c_steals;
          Obs.Metrics.incr c_pushes;
          Obs.Metrics.incr c_relabels;
          steal st ~v ~from:u ~victim:v';
          psi.(u) <- max psi.(u) (min limit (!second_d + 1));
          Queue.add v' queue
        end
      end
    end
    (* else: no adjacent column below the limit — v is unmatchable. *)
  done;
  st.mate1
