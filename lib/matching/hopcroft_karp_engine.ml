(* Hopcroft–Karp generalized to V2 capacities: a BFS phase layers the rows by
   alternating distance (a processor with residual capacity terminates the
   layering), then a layered DFS augments along vertex-disjoint shortest
   paths.  O(sqrt(V) * E) phases bound carries over from the unit case. *)

module G = Bipartite.Graph
open Engine_common

let inf = max_int

(* Probe points (Sec. VI): phase count is the HK complexity driver, the
   augmenting-path length histogram shows the sqrt(V) phase structure —
   early phases find length-1 paths, late phases long ones. *)
let c_phases = Obs.Metrics.counter "matching.hk.phases"
let c_augmentations = Obs.Metrics.counter "matching.hk.augmentations"
let c_scans = Obs.Metrics.counter "matching.hk.scans"
let c_layer_edges = Obs.Metrics.counter "matching.hk.bfs_layer_edges"
let h_path_len = Obs.Metrics.histogram "matching.hk.aug_path_len"

let run ?(stats = fresh_stats ()) g ~caps =
  let st = create g ~caps in
  greedy_init st;
  let dist = Array.make g.G.n1 inf in
  let queue = Queue.create () in
  let bfs () =
    stats.phases <- stats.phases + 1;
    Obs.Metrics.incr c_phases;
    (* Phase event: the per-phase augmentation trajectory is the paper's
       phase-structure argument made visible in the event log. *)
    if Obs.is_enabled () then
      Obs.Events.emit ~level:Obs.Events.Debug "hk.phase"
        [ Obs.Events.int "phase" stats.phases; Obs.Events.int "augmentations" stats.augmentations ];
    Queue.clear queue;
    Array.fill dist 0 g.G.n1 inf;
    for v = 0 to g.G.n1 - 1 do
      if st.mate1.(v) < 0 then begin
        dist.(v) <- 0;
        Queue.add v queue
      end
    done;
    let found = ref inf in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      if dist.(v) < !found then
        G.iter_neighbors g v (fun u _w ->
            Obs.Metrics.incr c_layer_edges;
            if residual st u > 0 then found := min !found (dist.(v) + 1)
            else
              Ds.Vec.iter
                (fun v' ->
                  if dist.(v') = inf then begin
                    dist.(v') <- dist.(v) + 1;
                    Queue.add v' queue
                  end)
                st.matched_of.(u))
    done;
    !found < inf
  in
  (* [depth] counts rows on the alternating path so far; a successful
     augmentation reaching residual capacity at depth d uses 2d+1 edges. *)
  let rec dfs v ~depth =
    stats.scans <- stats.scans + 1;
    Obs.Metrics.incr c_scans;
    let rec over_edges e =
      if e >= g.G.off.(v + 1) then begin
        dist.(v) <- inf;
        false
      end
      else begin
        let u = g.G.adj.(e) in
        if residual st u > 0 then begin
          assign st v u;
          stats.augmentations <- stats.augmentations + 1;
          Obs.Metrics.incr c_augmentations;
          Obs.Metrics.observe h_path_len (float_of_int ((2 * depth) + 1));
          true
        end
        else begin
          let occupants = Ds.Vec.to_array st.matched_of.(u) in
          let rec try_occupants i =
            if i >= Array.length occupants then false
            else begin
              let v' = occupants.(i) in
              if st.mate1.(v') = u && dist.(v') = dist.(v) + 1 && dfs v' ~depth:(depth + 1)
              then begin
                replace_occupant st ~v ~from:u ~victim:v';
                true
              end
              else try_occupants (i + 1)
            end
          in
          if try_occupants 0 then true else over_edges (e + 1)
        end
      end
    in
    over_edges g.G.off.(v)
  in
  while bfs () do
    for v = 0 to g.G.n1 - 1 do
      if st.mate1.(v) < 0 then ignore (dfs v ~depth:0)
    done
  done;
  st.mate1
