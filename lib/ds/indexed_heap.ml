(* Heap traffic counters: the simulator's event queue and every heap-backed
   solver go through here, so these totals are the "heap operations" column
   of telemetry reports. *)
let c_inserts = Obs.Metrics.counter "ds.heap.inserts"
let c_pops = Obs.Metrics.counter "ds.heap.pops"
let c_updates = Obs.Metrics.counter "ds.heap.updates"

type t = {
  keys : int array; (* heap slots -> key *)
  prio : float array; (* indexed by key *)
  pos : int array; (* key -> heap slot, or -1 when absent *)
  mutable len : int;
}

let create n =
  if n < 0 then invalid_arg "Indexed_heap.create";
  { keys = Array.make (max n 1) (-1); prio = Array.make (max n 1) 0.0; pos = Array.make (max n 1) (-1); len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let mem t key = key >= 0 && key < Array.length t.pos && t.pos.(key) >= 0

let swap t i j =
  let ki = t.keys.(i) and kj = t.keys.(j) in
  t.keys.(i) <- kj;
  t.keys.(j) <- ki;
  t.pos.(kj) <- i;
  t.pos.(ki) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(t.keys.(i)) < t.prio.(t.keys.(parent)) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.prio.(t.keys.(l)) < t.prio.(t.keys.(!smallest)) then smallest := l;
  if r < t.len && t.prio.(t.keys.(r)) < t.prio.(t.keys.(!smallest)) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let insert t key p =
  if key < 0 || key >= Array.length t.pos then invalid_arg "Indexed_heap.insert: key out of range";
  if t.pos.(key) >= 0 then invalid_arg "Indexed_heap.insert: key already present";
  Obs.Metrics.incr c_inserts;
  let i = t.len in
  t.keys.(i) <- key;
  t.pos.(key) <- i;
  t.prio.(key) <- p;
  t.len <- t.len + 1;
  sift_up t i

let update t key p =
  if not (mem t key) then invalid_arg "Indexed_heap.update: key absent";
  Obs.Metrics.incr c_updates;
  let old = t.prio.(key) in
  t.prio.(key) <- p;
  let i = t.pos.(key) in
  if p < old then sift_up t i else sift_down t i

let priority t key = if mem t key then t.prio.(key) else raise Not_found

let min t = if t.len = 0 then None else Some (t.keys.(0), t.prio.(t.keys.(0)))

let pop_min t =
  if t.len = 0 then None
  else begin
    Obs.Metrics.incr c_pops;
    let key = t.keys.(0) in
    let p = t.prio.(key) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      let last = t.keys.(t.len) in
      t.keys.(0) <- last;
      t.pos.(last) <- 0
    end;
    t.pos.(key) <- -1;
    if t.len > 0 then sift_down t 0;
    Some (key, p)
  end
