(* Load-vector traffic: [applies] are committed updates (one per realized
   task in the vector-greedy family), [compares] are hypothetical
   lexicographic comparisons — the dominant cost of VGH/EVG candidate
   selection (Sec. IV-D). *)
let c_applies = Obs.Metrics.counter "ds.loadvec.applies"
let c_compares = Obs.Metrics.counter "ds.loadvec.compares"

type t = {
  loads : float array;
  mutable sorted : float array; (* descending multiset of [loads] values *)
}

let create p =
  if p < 0 then invalid_arg "Load_vector.create";
  { loads = Array.make p 0.0; sorted = Array.make p 0.0 }

let size t = Array.length t.loads
let load t u = t.loads.(u)
let max_load t = if Array.length t.sorted = 0 then 0.0 else t.sorted.(0)

let desc a b = compare (b : float) a

(* Multisets of old values of [procs] and of their updated values, both
   descending.  Works for both uniform-w and general-delta updates. *)
let changed_values t procs amount_of =
  let k = Array.length procs in
  let removed = Array.make k 0.0 and added = Array.make k 0.0 in
  for i = 0 to k - 1 do
    let old = t.loads.(procs.(i)) in
    removed.(i) <- old;
    added.(i) <- old +. amount_of i
  done;
  Array.sort desc removed;
  Array.sort desc added;
  (removed, added)

(* Rebuild [sorted] in one linear merge: walk the old sorted array skipping
   one occurrence of each removed value, interleaving the added values. *)
let remerge t removed added =
  let p = Array.length t.sorted in
  let out = Array.make p 0.0 in
  let i = ref 0 (* base *) and j = ref 0 (* removed *) and k = ref 0 (* added *) in
  for o = 0 to p - 1 do
    (* Skip base entries matched by pending removals.  Values are exact
       copies, so float equality is the right test. *)
    let rec skip () =
      if !i < p && !j < Array.length removed && t.sorted.(!i) = removed.(!j) then begin
        incr i;
        incr j;
        skip ()
      end
    in
    skip ();
    let take_base = !i < p && (!k >= Array.length added || t.sorted.(!i) >= added.(!k)) in
    if take_base then begin
      out.(o) <- t.sorted.(!i);
      incr i
    end
    else begin
      out.(o) <- added.(!k);
      incr k
    end
  done;
  t.sorted <- out

let apply_delta t ~procs ~amounts =
  if Array.length procs <> Array.length amounts then
    invalid_arg "Load_vector.apply_delta: length mismatch";
  Obs.Metrics.incr c_applies;
  let removed, added = changed_values t procs (fun i -> amounts.(i)) in
  Array.iteri (fun i u -> t.loads.(u) <- t.loads.(u) +. amounts.(i)) procs;
  remerge t removed added

let apply t ~procs ~w =
  Obs.Metrics.incr c_applies;
  let removed, added = changed_values t procs (fun _ -> w) in
  Array.iter (fun u -> t.loads.(u) <- t.loads.(u) +. w) procs;
  remerge t removed added

let add t ~proc ~w = apply t ~procs:[| proc |] ~w

let sorted_desc t = Array.copy t.sorted

(* Lazy iterator over the hypothetical vector merge(base \ removed, added). *)
type cursor = {
  base : float array;
  removed : float array;
  added : float array;
  mutable bi : int;
  mutable ri : int;
  mutable ai : int;
}

let cursor t (removed, added) = { base = t.sorted; removed; added; bi = 0; ri = 0; ai = 0 }

let cursor_next c =
  let rec skip () =
    if
      c.bi < Array.length c.base
      && c.ri < Array.length c.removed
      && c.base.(c.bi) = c.removed.(c.ri)
    then begin
      c.bi <- c.bi + 1;
      c.ri <- c.ri + 1;
      skip ()
    end
  in
  skip ();
  let have_base = c.bi < Array.length c.base in
  let have_added = c.ai < Array.length c.added in
  if have_base && ((not have_added) || c.base.(c.bi) >= c.added.(c.ai)) then begin
    let v = c.base.(c.bi) in
    c.bi <- c.bi + 1;
    Some v
  end
  else if have_added then begin
    let v = c.added.(c.ai) in
    c.ai <- c.ai + 1;
    Some v
  end
  else None

let compare_cursors ca cb =
  let rec walk () =
    match (cursor_next ca, cursor_next cb) with
    | None, None -> 0
    | Some _, None -> 1
    | None, Some _ -> -1
    | Some va, Some vb -> if va < vb then -1 else if va > vb then 1 else walk ()
  in
  walk ()

let compare_hypothetical t ~a:(procs_a, wa) ~b:(procs_b, wb) =
  Obs.Metrics.incr c_compares;
  let ca = cursor t (changed_values t procs_a (fun _ -> wa)) in
  let cb = cursor t (changed_values t procs_b (fun _ -> wb)) in
  compare_cursors ca cb

let compare_hypothetical_delta t ~a:(procs_a, am_a) ~b:(procs_b, am_b) =
  Obs.Metrics.incr c_compares;
  let ca = cursor t (changed_values t procs_a (fun i -> am_a.(i))) in
  let cb = cursor t (changed_values t procs_b (fun i -> am_b.(i))) in
  compare_cursors ca cb

let hypothetical_sorted t ~procs ~w =
  let v = Array.copy t.loads in
  Array.iter (fun u -> v.(u) <- v.(u) +. w) procs;
  Array.sort desc v;
  v

let hypothetical_sorted_delta t ~procs ~amounts =
  let v = Array.copy t.loads in
  Array.iteri (fun i u -> v.(u) <- v.(u) +. amounts.(i)) procs;
  Array.sort desc v;
  v
