(** User-facing scheduling API.

    This is the layer a downstream application talks to: named tasks and
    processors, configurations given as processor-name lists with execution
    times, algorithm selection, and a readable schedule report.  Underneath,
    an instance is compiled into the hypergraph of {!Hyper.Graph} and solved
    with the semi-matching machinery of {!Semimatch}.

    {[
      let instance =
        Sched.instance
          ~processors:[ "cpu0"; "cpu1"; "gpu" ]
          ~tasks:
            [
              Sched.task "render" [ Sched.config [ "gpu" ] ~time:2.0;
                                    Sched.config [ "cpu0"; "cpu1" ] ~time:3.0 ];
              Sched.task "encode" [ Sched.config [ "cpu0" ] ~time:4.0 ];
            ]
      in
      let schedule = Sched.solve instance in
      Format.printf "%a@." Sched.pp_schedule schedule
    ]} *)

type config
(** One way to run a task: a set of processors and the execution time each of
    them spends. *)

type task_spec

type instance

val config : string list -> time:float -> config
(** [config processors ~time] — processor names must be distinct and
    non-empty; [time] must be positive.  Violations are reported when the
    instance is built. *)

val task : string -> config list -> task_spec
(** [task name configs] — a task with its alternative configurations (at
    least one required). *)

val instance : processors:string list -> tasks:task_spec list -> instance
(** Builds and validates an instance.  Raises [Invalid_argument] on duplicate
    names, unknown processors in configurations, empty configuration lists,
    or non-positive times. *)

val num_tasks : instance -> int
val num_processors : instance -> int
val hypergraph : instance -> Hyper.Graph.t
(** The compiled hypergraph (tasks and processors in declaration order). *)

(** Algorithm selection: the four MULTIPROC heuristics, optionally refined by
    local search, or — for instances whose configurations are all sequential
    with unit time — the exact SINGLEPROC-UNIT algorithm. *)
type algorithm =
  | Greedy of Semimatch.Greedy_hyper.algorithm
  | Greedy_refined of Semimatch.Greedy_hyper.algorithm
  | Exact_unit_sequential

val default_algorithm : algorithm
(** [Greedy Expected_vector_greedy_hyp] — the paper's best performer. *)

val algorithm_name : algorithm -> string

type schedule = {
  makespan : float;
  assignment : (string * string list * float) list;
      (** task name, processors used, execution time *)
  processor_loads : (string * float) list;  (** in declaration order *)
  lower_bound : float;  (** the paper's Eq. 1 bound for this instance *)
}

val solve : ?algorithm:algorithm -> ?deadline_s:float -> instance -> schedule
(** Raises [Invalid_argument] if [Exact_unit_sequential] is requested on an
    instance that is not single-processor unit-time.  [deadline_s] switches
    to the {!Semimatch.Deadline} graceful-degradation cascade (greedy →
    portfolio → exact) under that wall-clock budget, ignoring [algorithm]:
    a feasible schedule is always returned, its quality bounded by the
    budget. *)

val pp_schedule : Format.formatter -> schedule -> unit
(** Multi-line human-readable report. *)
