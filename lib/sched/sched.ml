type config = { procs : string list; time : float }
type task_spec = { task_name : string; configs : config list }

type instance = {
  proc_names : string array;
  task_names : string array;
  hyper : Hyper.Graph.t;
}

let config procs ~time = { procs; time }
let task task_name configs = { task_name; configs }

let check_distinct what names =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem tbl n then invalid_arg (Printf.sprintf "Sched: duplicate %s %S" what n);
      Hashtbl.add tbl n ())
    names

let instance ~processors ~tasks =
  check_distinct "processor" processors;
  check_distinct "task" (List.map (fun t -> t.task_name) tasks);
  let proc_names = Array.of_list processors in
  let proc_id = Hashtbl.create (Array.length proc_names) in
  Array.iteri (fun i n -> Hashtbl.add proc_id n i) proc_names;
  let task_names = Array.of_list (List.map (fun t -> t.task_name) tasks) in
  let hyperedges = ref [] in
  List.iteri
    (fun v t ->
      if t.configs = [] then
        invalid_arg (Printf.sprintf "Sched: task %S has no configuration" t.task_name);
      List.iter
        (fun c ->
          if not (c.time > 0.0) then
            invalid_arg (Printf.sprintf "Sched: task %S has a non-positive time" t.task_name);
          let ids =
            List.map
              (fun name ->
                match Hashtbl.find_opt proc_id name with
                | Some id -> id
                | None ->
                    invalid_arg
                      (Printf.sprintf "Sched: task %S references unknown processor %S"
                         t.task_name name))
              c.procs
          in
          if ids = [] then
            invalid_arg (Printf.sprintf "Sched: task %S has an empty configuration" t.task_name);
          hyperedges := (v, Array.of_list ids, c.time) :: !hyperedges)
        t.configs)
    tasks;
  let hyper =
    Hyper.Graph.create ~n1:(Array.length task_names) ~n2:(Array.length proc_names)
      ~hyperedges:(List.rev !hyperedges)
  in
  { proc_names; task_names; hyper }

let num_tasks t = Array.length t.task_names
let num_processors t = Array.length t.proc_names
let hypergraph t = t.hyper

type algorithm =
  | Greedy of Semimatch.Greedy_hyper.algorithm
  | Greedy_refined of Semimatch.Greedy_hyper.algorithm
  | Exact_unit_sequential

let default_algorithm = Greedy Semimatch.Greedy_hyper.Expected_vector_greedy_hyp

let algorithm_name = function
  | Greedy a -> Semimatch.Greedy_hyper.name a
  | Greedy_refined a -> Semimatch.Greedy_hyper.name a ^ "+local-search"
  | Exact_unit_sequential -> "exact-singleproc-unit"

type schedule = {
  makespan : float;
  assignment : (string * string list * float) list;
  processor_loads : (string * float) list;
  lower_bound : float;
}

(* An instance is in the SINGLEPROC-UNIT fragment when every configuration
   is one processor at time 1. *)
let sequential_unit_bipartite t =
  let h = t.hyper in
  let ok = ref true in
  let edges = ref [] in
  for e = Hyper.Graph.num_hyperedges h - 1 downto 0 do
    if Hyper.Graph.h_size h e <> 1 || Hyper.Graph.h_weight h e <> 1.0 then ok := false
    else begin
      let task = Hyper.Graph.h_task h e in
      Hyper.Graph.iter_h_procs h e (fun u -> edges := (task, u) :: !edges)
    end
  done;
  if !ok then
    Some (Bipartite.Graph.unit_weights ~n1:h.Hyper.Graph.n1 ~n2:h.Hyper.Graph.n2 ~edges:!edges)
  else None

let schedule_of_choices t choices =
  let h = t.hyper in
  let a = Semimatch.Hyp_assignment.of_choices h choices in
  let loads = Semimatch.Hyp_assignment.loads h a in
  let assignment =
    List.init (num_tasks t) (fun v ->
        let e = choices.(v) in
        let procs = Hyper.Graph.h_procs h e in
        ( t.task_names.(v),
          Array.to_list (Array.map (fun u -> t.proc_names.(u)) procs),
          Hyper.Graph.h_weight h e ))
  in
  {
    makespan = Semimatch.Hyp_assignment.makespan h a;
    assignment;
    processor_loads = List.init (num_processors t) (fun u -> (t.proc_names.(u), loads.(u)));
    lower_bound = Semimatch.Lower_bound.multiproc h;
  }

let solve ?(algorithm = default_algorithm) ?deadline_s t =
  match deadline_s with
  | Some budget_s ->
      (* A wall-clock budget turns solving over to the graceful-degradation
         cascade: always a feasible schedule, best effort within budget. *)
      let r = Semimatch.Deadline.solve ~budget_s t.hyper in
      schedule_of_choices t r.Semimatch.Deadline.assignment.Semimatch.Hyp_assignment.choice
  | None -> (
      match algorithm with
  | Greedy a ->
      let result = Semimatch.Greedy_hyper.run a t.hyper in
      schedule_of_choices t result.Semimatch.Hyp_assignment.choice
  | Greedy_refined a ->
      let rough = Semimatch.Greedy_hyper.run a t.hyper in
      let refined, _moves = Semimatch.Local_search.refine t.hyper rough in
      schedule_of_choices t refined.Semimatch.Hyp_assignment.choice
  | Exact_unit_sequential -> (
      match sequential_unit_bipartite t with
      | None ->
          invalid_arg
            "Sched.solve: Exact_unit_sequential needs single-processor unit-time configurations"
      | Some g ->
          let s = Semimatch.Exact_unit.solve g in
          (* Bipartite edge order mirrors hyperedge order, so edge ids are
             hyperedge ids. *)
          schedule_of_choices t s.Semimatch.Exact_unit.assignment.Semimatch.Bip_assignment.edge))

let pp_schedule ppf s =
  Format.fprintf ppf "@[<v>makespan: %g  (lower bound %.3g)@," s.makespan s.lower_bound;
  Format.fprintf ppf "tasks:@,";
  List.iter
    (fun (name, procs, time) ->
      Format.fprintf ppf "  %-16s -> {%s}  time %g@," name (String.concat ", " procs) time)
    s.assignment;
  Format.fprintf ppf "processor loads:@,";
  List.iter (fun (name, l) -> Format.fprintf ppf "  %-16s %g@," name l) s.processor_loads;
  Format.fprintf ppf "@]"
