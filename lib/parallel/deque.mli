(** Chase–Lev work-stealing deque (SPMC).

    One {e owner} domain pushes and pops at the bottom in LIFO order; any
    number of {e thief} domains steal from the top.  The owner side is
    wait-free except when the circular buffer grows; thieves synchronize on
    a single compare-and-set of the top index, so a steal either takes the
    oldest element or fails harmlessly (contention or emptiness).

    Ownership is a protocol, not a runtime check: exactly one domain may
    call {!push}/{!pop} at a time.  {!steal} is safe concurrently with
    everything, including a concurrent {!push} that grows the buffer —
    thieves tolerate stale buffers because logical indices below the
    observed bottom are never overwritten in any buffer they can hold. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 64) is rounded up to a power of two; the buffer
    grows automatically when exceeded. *)

val push : 'a t -> 'a -> unit
(** Owner only: append at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed element, or [None] when
    empty (the last element may instead be lost to a concurrent winner of
    the top CAS). *)

val steal : 'a t -> 'a option
(** Any domain: take the oldest element.  [None] on emptiness {e or} on a
    lost CAS race — callers treat both as "try elsewhere". *)

val size : 'a t -> int
(** Racy snapshot of the element count (>= 0); exact when quiescent. *)
