exception Cancelled

type t = {
  flag : bool Atomic.t;
  deadline : int64 option; (* monotonic ns *)
  inert : bool; (* the [never] token ignores [cancel] *)
}

let create ?timeout_s () =
  let deadline =
    match timeout_s with
    | None -> None
    | Some s ->
        if not (s > 0.0) then invalid_arg "Cancel.create: timeout_s must be positive";
        Some (Int64.add (Obs.Span.now_ns ()) (Int64.of_float (s *. 1e9)))
  in
  { flag = Atomic.make false; deadline; inert = false }

let never = { flag = Atomic.make false; deadline = None; inert = true }

let cancel t = if not t.inert then Atomic.set t.flag true

let is_cancelled t =
  Atomic.get t.flag
  || match t.deadline with None -> false | Some d -> Obs.Span.now_ns () >= d

let check t = if is_cancelled t then raise Cancelled

let deadline_ns t = t.deadline
