(* Chase–Lev deque on OCaml 5 seq_cst atomics.

   Indices [top, bottom) are live; physical slot of logical index i is
   [i land (length buf - 1)].  The owner writes slots only at [bottom], and
   a grow copies [top, bottom) into a doubled buffer, so for any buffer a
   thief can observe, slots at logical indices < bottom hold the value of
   that logical index (live logical ranges never alias physically: aliasing
   needs bottom - top >= length, which triggers a grow first).  A thief
   validates its read by CASing [top]; winning the CAS makes the read
   element its own. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t; (* written by owner only *)
  buf : 'a option array Atomic.t;
}

let round_pow2 n =
  let rec go k = if k >= n then k else go (k * 2) in
  go 8

let create ?(capacity = 64) () =
  if capacity <= 0 then invalid_arg "Deque.create: capacity must be positive";
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.make (round_pow2 capacity) None);
  }

let slot buf i = i land (Array.length buf - 1)

(* Owner only.  Copy live elements into a doubled buffer at the same
   logical indices, then publish it.  Thieves holding the old buffer keep
   reading valid values for indices below the bottom at publication time. *)
let grow q t b =
  let old = Atomic.get q.buf in
  let bigger = Array.make (2 * Array.length old) None in
  for i = t to b - 1 do
    bigger.(slot bigger i) <- old.(slot old i)
  done;
  Atomic.set q.buf bigger

let push q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let buf = Atomic.get q.buf in
  if b - t >= Array.length buf then grow q t b;
  let buf = Atomic.get q.buf in
  buf.(slot buf b) <- Some x;
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* Empty: restore the canonical empty state. *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let buf = Atomic.get q.buf in
    let x = buf.(slot buf b) in
    if b > t then begin
      buf.(slot buf b) <- None;
      x
    end
    else begin
      (* Last element: race thieves for it via the top CAS. *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        buf.(slot buf b) <- None;
        x
      end
      else None
    end
  end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get q.buf in
    let x = buf.(slot buf t) in
    if Atomic.compare_and_set q.top t (t + 1) then x else None
  end

let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)
