(** Cooperative cancellation tokens, shared across domains.

    A token is a single atomic flag, optionally armed with a monotonic-clock
    deadline.  Long-running work polls {!is_cancelled} (or calls {!check})
    at convenient points; the pool skips tasks whose batch token has tripped,
    which is how a worker exception or a [race] winner drains the remaining
    work promptly instead of letting sibling domains run to completion. *)

type t

exception Cancelled
(** Raised by {!check}, and by pool operations that were cut short by an
    external cancellation (never by an internal one such as a race win). *)

val create : ?timeout_s:float -> unit -> t
(** Fresh, untripped token.  [timeout_s] arms a deadline [timeout_s] seconds
    from now on the monotonic clock ({!Obs.Span.now_ns}): once it passes,
    the token reads as cancelled without anyone calling {!cancel}.
    [timeout_s] must be positive. *)

val never : t
(** A shared token that never trips ({!cancel} on it is ignored).  Useful as
    a default for code paths that take a token unconditionally. *)

val cancel : t -> unit
(** Trip the flag (idempotent, domain-safe). *)

val is_cancelled : t -> bool
(** True once {!cancel} was called or the deadline passed. *)

val check : t -> unit
(** Raise {!Cancelled} if {!is_cancelled}. *)

val deadline_ns : t -> int64 option
(** The armed monotonic deadline, if any. *)
