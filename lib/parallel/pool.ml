let default_jobs () = Domain.recommended_domain_count ()

(* Telemetry probes (all free when Obs is disabled): batch/task volume and
   steal traffic as counters, submit/execute as spans.  Task [i] of a batch
   carries flow id [flow_base + i] on both its submit instant and its
   execution span, which is what lets Obs.Trace draw the arrow from the
   submitting domain's track to the (possibly different) executing one. *)
let c_batches = Obs.Metrics.counter "parallel.pool.batches"
let c_tasks = Obs.Metrics.counter "parallel.pool.tasks"
let c_steals = Obs.Metrics.counter "parallel.pool.steals"
let c_retries = Obs.Metrics.counter "parallel.pool.retries"
let c_task_failures = Obs.Metrics.counter "parallel.pool.task_failures"

(* A batch is self-describing: jobs carry their batch, so a worker that
   lingers past a batch boundary (it was mid-steal when the previous batch
   drained) executes whatever it steals against the right pending counter
   and cancellation tokens, no matter which batch it thinks it is in. *)
type batch = {
  tasks : (unit -> unit) array;
  cursor : int Atomic.t; (* next unclaimed task index *)
  pending : int Atomic.t; (* tasks not yet executed or skipped *)
  chunk : int;
  flow_base : int; (* task i's trace flow id is flow_base + i; 0 = untraced *)
  user_cancel : Cancel.t; (* caller-provided: timeout / external stop *)
  internal_cancel : Cancel.t; (* tripped by the first task exception *)
  fail : (int * exn) option Atomic.t; (* smallest-index exception *)
}

type job = { jb : batch; ji : int }

type t = {
  size : int;
  deques : job Deque.t array; (* slot s is owned by participant s *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable epoch : int; (* bumped per batch, guarded by [mutex] *)
  mutable current : batch option; (* guarded by [mutex] *)
  mutable alive : bool; (* guarded by [mutex] *)
  mutable domains : unit Domain.t list;
}

let size t = t.size

(* Keep the smallest-index failure, whoever records last. *)
let record_min slot i e =
  let rec go () =
    let cur = Atomic.get slot in
    match cur with
    | Some (j, _) when j <= i -> ()
    | _ -> if not (Atomic.compare_and_set slot cur (Some (i, e))) then go ()
  in
  go ()

let exec job =
  let b = job.jb in
  (if not (Cancel.is_cancelled b.internal_cancel || Cancel.is_cancelled b.user_cancel) then
     (* The depth guard bounds span-nesting drift at the task boundary: a
        task that leaks a span cannot skew the depths recorded by every
        later task on this participant (see Obs.Span.reset's contract). *)
     Obs.Span.with_depth_guard (fun () ->
         let sp =
           Obs.Span.enter
             ~flow:(if b.flow_base = 0 then 0 else b.flow_base + job.ji)
             "pool.task"
         in
         (try b.tasks.(job.ji) ()
          with e ->
            record_min b.fail job.ji e;
            Cancel.cancel b.internal_cancel);
         Obs.Span.exit sp));
  Atomic.decr b.pending

(* Move the next block of tasks from the shared cursor into [dq] (owner
   push).  Reverse order so the owner pops them in ascending index order. *)
let claim_block b dq =
  let n = Array.length b.tasks in
  let i = Atomic.fetch_and_add b.cursor b.chunk in
  if i >= n then false
  else begin
    let hi = min n (i + b.chunk) in
    for j = hi - 1 downto i do
      Deque.push dq { jb = b; ji = j }
    done;
    true
  end

let steal_round pool slot =
  let k = pool.size in
  let rec go i = if i = k then None else
    match Deque.steal pool.deques.((slot + i) mod k) with
    | Some _ as job ->
        Obs.Metrics.incr c_steals;
        job
    | None -> go (i + 1)
  in
  go 1

(* Work until [b.pending] hits zero.  Local pops first, then refills from
   the cursor, then steals; stolen jobs may belong to a newer batch, which
   is fine (see [batch]).  The final spin covers tasks still executing on
   other participants. *)
let participate pool slot b =
  let dq = pool.deques.(slot) in
  let rec next () =
    match Deque.pop dq with
    | Some _ as job -> job
    | None -> if claim_block b dq then next () else steal_round pool slot
  in
  let rec go () =
    if Atomic.get b.pending > 0 then begin
      (match next () with Some job -> exec job | None -> Domain.cpu_relax ());
      go ()
    end
  in
  go ()

let worker pool slot =
  let rec loop last_epoch =
    Mutex.lock pool.mutex;
    while pool.alive && pool.epoch = last_epoch do
      Condition.wait pool.cond pool.mutex
    done;
    let epoch = pool.epoch and b = pool.current and alive = pool.alive in
    Mutex.unlock pool.mutex;
    if alive then begin
      (match b with Some b -> participate pool slot b | None -> ());
      loop epoch
    end
  in
  loop 0

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be positive";
  let pool =
    {
      size = jobs;
      deques = Array.init jobs (fun _ -> Deque.create ());
      mutex = Mutex.create ();
      cond = Condition.create ();
      epoch = 0;
      current = None;
      alive = true;
      domains = [];
    }
  in
  pool.domains <- List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker pool (i + 1)));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.alive <- false;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  let ds = pool.domains in
  pool.domains <- [];
  List.iter Domain.join ds

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run ?(cancel = Cancel.never) pool tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    (* Submit probe: one span covering publication, one flow-start instant
       per task inside it.  [new_flows] is only consulted when telemetry is
       on, so untraced batches stay allocation-free. *)
    let flow_base = if Obs.is_enabled () then Obs.Span.new_flows n else 0 in
    let submit = Obs.Span.enter "pool.submit" in
    if flow_base <> 0 then
      for i = 0 to n - 1 do
        Obs.Span.instant ~flow:(flow_base + i) "pool.submit.task"
      done;
    Obs.Metrics.incr c_batches;
    Obs.Metrics.add c_tasks n;
    let b =
      {
        tasks;
        cursor = Atomic.make 0;
        pending = Atomic.make n;
        chunk = max 1 (n / (4 * pool.size));
        flow_base;
        user_cancel = cancel;
        internal_cancel = Cancel.create ();
        fail = Atomic.make None;
      }
    in
    if pool.size > 1 then begin
      Mutex.lock pool.mutex;
      pool.current <- Some b;
      pool.epoch <- pool.epoch + 1;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex
    end;
    Obs.Span.exit submit;
    participate pool 0 b;
    match Atomic.get b.fail with Some (_, e) -> raise e | None -> ()
  end

let map ?pool ?(cancel = Cancel.never) ?jobs ~f items =
  (match jobs with
  | Some j when j < 1 -> invalid_arg "Pool.map: jobs must be positive"
  | _ -> ());
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let bodies = Array.init n (fun i () -> results.(i) <- Some (f items.(i))) in
    (match pool with
    | Some p -> run ~cancel p bodies
    | None ->
        let jobs = min (match jobs with Some j -> j | None -> default_jobs ()) n in
        if jobs = 1 then
          (* In-caller fast path: same skip-on-cancel semantics, no pool. *)
          Array.iter (fun body -> if not (Cancel.is_cancelled cancel) then body ()) bodies
        else with_pool ~jobs (fun p -> run ~cancel p bodies));
    Array.map
      (function
        | Some v -> v
        | None ->
            (* No task raised (run would have), so a hole means [cancel]
               tripped before the batch finished. *)
            raise Cancel.Cancelled)
      results
  end

let map_list ?pool ?cancel ?jobs ~f items =
  Array.to_list (map ?pool ?cancel ?jobs ~f (Array.of_list items))

let race ?cancel pool contenders =
  let k = Array.length contenders in
  if k = 0 then invalid_arg "Pool.race: no contenders";
  let token = match cancel with Some c -> c | None -> Cancel.create () in
  let winner = Atomic.make None in
  let fail = Atomic.make None in
  let bodies =
    Array.init k (fun i () ->
        match contenders.(i) token with
        | v ->
            let rec claim () =
              match Atomic.get winner with
              | Some _ -> ()
              | None ->
                  if Atomic.compare_and_set winner None (Some (i, v)) then Cancel.cancel token
                  else claim ()
            in
            claim ()
        | exception e -> record_min fail i e)
  in
  run ~cancel:token pool bodies;
  match Atomic.get winner with
  | Some r -> r
  | None -> (
      match Atomic.get fail with Some (_, e) -> raise e | None -> raise Cancel.Cancelled)

type failure = { f_index : int; f_attempts : int; f_exn : exn }

(* No Unix dependency in this library, so between attempts we spin on the
   monotonic clock.  Backoffs are tens of milliseconds at most, and the
   domain yields on every iteration, so this is cheap enough. *)
let spin_sleep ~cancel s =
  if s > 0.0 then begin
    let until = Int64.add (Obs.Span.now_ns ()) (Int64.of_float (s *. 1e9)) in
    while Obs.Span.now_ns () < until && not (Cancel.is_cancelled cancel) do
      Domain.cpu_relax ()
    done
  end

let run_with_retry ?(cancel = Cancel.never) ?(retries = 2) ?(backoff_s = 0.01) ?timeout_s pool
    bodies =
  if retries < 0 then invalid_arg "Pool.run_with_retry: retries must be >= 0";
  if not (backoff_s >= 0.0) then invalid_arg "Pool.run_with_retry: backoff_s must be >= 0";
  (match timeout_s with
  | Some s when not (s > 0.0) -> invalid_arg "Pool.run_with_retry: timeout_s must be positive"
  | _ -> ());
  let n = Array.length bodies in
  (* Slots the batch never reaches (caller cancellation) keep this sentinel:
     zero attempts, cancelled. *)
  let results =
    Array.init n (fun i -> Error { f_index = i; f_attempts = 0; f_exn = Cancel.Cancelled })
  in
  let task i () =
    let rec attempt k =
      if Cancel.is_cancelled cancel then
        results.(i) <- Error { f_index = i; f_attempts = k; f_exn = Cancel.Cancelled }
      else begin
        (* One fresh token per attempt so a per-task timeout restarts from
           zero on retry; tripping the caller's token still stops the task
           (cooperatively — the body must poll). *)
        let token =
          match timeout_s with Some s -> Cancel.create ~timeout_s:s () | None -> cancel
        in
        match bodies.(i) token with
        | v -> results.(i) <- Ok v
        | exception e ->
            if k < retries then begin
              let pause = backoff_s *. Float.pow 2.0 (float_of_int k) in
              Obs.Metrics.incr c_retries;
              if Obs.is_enabled () then
                Obs.Events.emit ~level:Obs.Events.Warn "pool.retry"
                  [
                    Obs.Events.int "task" i;
                    Obs.Events.int "attempt" (k + 1);
                    Obs.Events.num "backoff_s" pause;
                    Obs.Events.str "exn" (Printexc.to_string e);
                  ];
              spin_sleep ~cancel pause;
              attempt (k + 1)
            end
            else begin
              Obs.Metrics.incr c_task_failures;
              if Obs.is_enabled () then
                Obs.Events.emit ~level:Obs.Events.Warn "pool.task.failed"
                  [
                    Obs.Events.int "task" i;
                    Obs.Events.int "attempts" (k + 1);
                    Obs.Events.str "exn" (Printexc.to_string e);
                  ];
              results.(i) <- Error { f_index = i; f_attempts = k + 1; f_exn = e }
            end
      end
    in
    attempt 0
  in
  run ~cancel pool (Array.init n task);
  results

let race_best ?cancel ~better pool contenders =
  let k = Array.length contenders in
  if k = 0 then invalid_arg "Pool.race_best: no contenders";
  let token = match cancel with Some c -> c | None -> Cancel.never in
  let results = Array.make k None in
  let fail = Atomic.make None in
  let bodies =
    Array.init k (fun i () ->
        match contenders.(i) token with
        | v -> results.(i) <- Some v
        | exception e -> record_min fail i e)
  in
  run ~cancel:token pool bodies;
  let best = ref None in
  Array.iteri
    (fun i -> function
      | None -> ()
      | Some v -> (
          match !best with
          | None -> best := Some (i, v)
          | Some (_, incumbent) -> if better v incumbent then best := Some (i, v)))
    results;
  match !best with
  | Some r -> r
  | None -> (
      match Atomic.get fail with Some (_, e) -> raise e | None -> raise Cancel.Cancelled)
