(** Reusable multicore work pool over OCaml 5 domains.

    A pool owns [jobs - 1] worker domains that sleep between batches; the
    calling domain is always the [jobs]-th participant, so [jobs = 1] runs
    everything in the caller with no spawning at all (the right choice on
    single-core machines and whenever wall-clock timings are measured).

    Work distribution is chunked work stealing: every participant owns a
    {!Deque} (Chase–Lev), claims contiguous blocks of the batch from a
    shared cursor into it, pops locally in order, and steals from siblings
    once both its deque and the cursor run dry.  Uneven item costs (an EVG
    run on a p = 4096 instance next to an SGH run on a tiny one) therefore
    balance automatically, while the common case stays a local pop.

    Cancellation is cooperative via {!Cancel} tokens.  A task that raises
    trips the batch's internal token, so the remaining unstarted tasks are
    {e skipped} and the pool drains promptly instead of running the batch to
    completion before re-raising — the smallest-index exception wins.

    A pool is driven by one orchestrating domain at a time: [run]/[map]/
    [race] must not be called concurrently on the same pool, nor reentrantly
    from inside a task.

    Telemetry (free when [Obs] is disabled): every batch records a
    ["pool.submit"] span with one flow-start instant per task, every
    executed task a ["pool.task"] span carrying the same flow id — so
    [Obs.Trace] can draw submission→execution arrows across domains — and
    [parallel.pool.batches]/[tasks]/[steals] count the traffic.  Each task
    runs under [Obs.Span.with_depth_guard], so a span leaked by a task
    cannot skew later spans' recorded nesting depth. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] participants ([jobs - 1] domains; default
    {!default_jobs}).  Raises [Invalid_argument] if [jobs < 1]. *)

val size : t -> int
(** The number of participants (including the caller). *)

val shutdown : t -> unit
(** Wake and join the worker domains (idempotent).  A pool that is never
    shut down keeps its domains blocked, which prevents process exit —
    prefer {!with_pool} unless the pool's lifetime spans the program. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)

val run : ?cancel:Cancel.t -> t -> (unit -> unit) array -> unit
(** Execute every task, in parallel, returning when all have finished or
    been skipped.  Tasks are skipped (never aborted mid-flight) once
    [cancel] trips or once any task raises; after the batch drains, the
    raised exception with the smallest task index is re-raised.  A tripped
    [cancel] alone does not raise — callers decide what partial completion
    means ({!map} raises {!Cancel.Cancelled}, {!race} treats it as a win). *)

val map : ?pool:t -> ?cancel:Cancel.t -> ?jobs:int -> f:('a -> 'b) -> 'a array -> 'b array
(** [map ~f items] applies [f] to every element, preserving order of
    results.  [f] must be safe to run concurrently on distinct elements.
    Runs on [pool] when given (ignoring [jobs]); otherwise on an ephemeral
    pool of [jobs] participants (default {!default_jobs}, clamped to the
    item count).  If any application raises, later items are skipped and the
    smallest-index exception is re-raised; if [cancel] trips first,
    {!Cancel.Cancelled} is raised instead. *)

val map_list : ?pool:t -> ?cancel:Cancel.t -> ?jobs:int -> f:('a -> 'b) -> 'a list -> 'b list
(** List convenience wrapper over {!map}. *)

val race : ?cancel:Cancel.t -> t -> (Cancel.t -> 'a) array -> int * 'a
(** [race pool contenders] starts every contender and returns
    [(index, value)] of the {e first} to complete, tripping the shared token
    so the not-yet-started rest are skipped; running contenders observe the
    same token and should poll it to stop early.  [cancel] (default a fresh
    token) lets the caller bound the whole race with a timeout.  With
    [jobs = 1] the first contender necessarily wins.  If every contender
    raises, the smallest-index exception is re-raised; if the token trips
    with no winner, {!Cancel.Cancelled} is raised. *)

type failure = {
  f_index : int;  (** which task *)
  f_attempts : int;  (** attempts actually made; [0] = never started *)
  f_exn : exn;  (** the last attempt's exception *)
}

val run_with_retry :
  ?cancel:Cancel.t ->
  ?retries:int ->
  ?backoff_s:float ->
  ?timeout_s:float ->
  t ->
  (Cancel.t -> 'a) array ->
  ('a, failure) result array
(** Hardened batch execution: every task gets up to [1 + retries] attempts
    (default [retries = 2]), with exponential backoff between them
    ([backoff_s] · 2{^k}, default 10 ms) — and a raising task records a
    structured {!failure} instead of poisoning the batch, so sibling tasks
    always run to their own conclusion.  This function never raises from a
    task (contrast {!run}).

    [timeout_s] bounds each {e attempt}: the task's token trips that long
    after the attempt starts (cooperative — the body must poll it; a body
    that ignores its token is not interrupted).  Without [timeout_s] the
    body receives [cancel] itself.  [cancel] bounds the whole batch:
    unstarted tasks are skipped and unfinished retry loops stop, both
    recording a failure with [f_exn = Cancel.Cancelled] ([f_attempts = 0]
    when the task never started).

    Telemetry: every retry emits a ["pool.retry"] warning (task, attempt,
    backoff, exception) and every exhausted task a ["pool.task.failed"]
    warning; [parallel.pool.retries]/[task_failures] count them. *)

val race_best :
  ?cancel:Cancel.t -> better:('a -> 'a -> bool) -> t -> (Cancel.t -> 'a) array -> int * 'a
(** [race_best ~better pool contenders] runs {e every} contender to
    completion (no winner-cancellation, so the outcome is deterministic) and
    returns the best result: contender [i] beats the incumbent [j < i] only
    when [better v_i v_j].  Contenders that raise are excluded; if all
    raise, the smallest-index exception is re-raised.  [cancel] still bounds
    the whole batch, skipping unstarted contenders ({!Cancel.Cancelled} if
    none completed). *)
