(** The streaming tier's front door: solve an edge-stream file, falling
    back to the exact/portfolio tier automatically when the instance fits
    in core.

    The decision is O(1): the sealed header's CSR estimate
    ({!Hyper.Stream_io.csr_estimate_words}) is compared against a word
    budget before any record is read.  Small instances are materialized and
    solved exactly (unit bipartite) or by the portfolio (general); large
    ones are solved by the bounded-memory Konrad–Rosén solvers with the
    CSR never existing. *)

type stream_solver = Auto | One_pass | Few_pass

val stream_solver_name : stream_solver -> string
val stream_solver_of_string : string -> stream_solver option

type tier =
  | In_core_exact  (** materialized, unit bipartite: the exact-engine race *)
  | In_core_portfolio  (** materialized, general: the heuristic portfolio *)
  | Stream_kr of Kr.guarantee  (** solved over the stream, never materialized *)

val tier_name : tier -> string
(** ["incore-exact"], ["incore-portfolio"], ["stream-one-pass-sqrt"],
    ["stream-few-pass-log"], ["stream-online-greedy"]. *)

type outcome = {
  tier : tier;
  makespan : float;
  lower_bound : float;
  guarantee : string;  (** what the winning tier certifies *)
  factor : float;  (** proven makespan/opt bound; [nan] for heuristics *)
  passes : int;
  edges : int;
  header : Hyper.Stream_io.header;
  graph : Hyper.Graph.t option;  (** the materialized instance, in-core tiers only *)
  assignment : int array option;  (** task → processor, streamed singleton tiers *)
}

val default_threshold_words : int
(** 8M words ≈ 64 MB of CSR. *)

val solve :
  ?pool:Parpool.Pool.t ->
  ?jobs:int ->
  ?threshold_words:int ->
  ?stream_solver:stream_solver ->
  string ->
  outcome
(** [solve path] ingests the stream at [path].  [stream_solver] picks the
    solver when the streamed tier wins and the stream is singleton
    unit-weight ([Auto] = few-pass, the better factor); general streams
    always get the online greedy.  Raises [Failure] on unsealed or corrupt
    files and [Invalid_argument]/[Failure] on infeasible instances. *)
