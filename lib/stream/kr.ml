(* Streaming semi-matching in the Konrad–Rosén model (arXiv:1304.6906):
   edges arrive as a stream, working memory is O(n + p) — never O(m) — and
   the schedule quality is a provable factor off the optimal makespan.  The
   paper's text is not retrievable, so the two solvers below are stated and
   proved from scratch in that model; the factors recorded on solutions are
   the ones proved here (conservative, not the paper's sharpest constants).

   Both provable solvers run on SINGLEPROC-UNIT streams (every record a
   singleton unit-weight configuration — the classic semi-matching setting).

   One-pass, threshold t = ceil(sqrt n):
     on edge (a,b) with a unassigned: assign a to b if load(b) < t, else
     remember b as a's fallback if it is the lightest neighbour seen; at
     stream end every still-unassigned task takes its fallback.
     Bound: let F be the fallback set, f = |F|.  When an edge (a,b) of an
     a in F arrived, load(b) >= t, and loads only grow, so every neighbour
     of F ends with >= t assignees; assignees total n, hence |N(F)| <= n/t
     <= sqrt n.  OPT places F inside N(F), so opt >= f / sqrt n, i.e.
     f <= opt * sqrt n.  Final load <= t + f <= (sqrt n + 1) + opt * sqrt n
     <= opt * (2 * ceil(sqrt n) + 1) since opt >= 1.

   Few-pass, adaptive per-pass intake threshold t:
     each pass scans the whole stream; a still-unassigned task a is
     assigned to the first neighbour whose intake THIS PASS is < t (loads
     are cumulative across passes, intakes reset).  If a pass fails to
     halve the unassigned set, t doubles.
     Halving lemma: if U1 is unassigned after a pass over unassigned set
     U0, every server of N(U1) took intake exactly t, so t * |N(U1)| <=
     |U0| - |U1|; OPT fits U1 into N(U1) with max load opt, hence |U1| <=
     opt * (|U0| - |U1|) / t — with t >= 2*opt this gives |U1| <= |U0|/2.
     Contrapositive: a failed halving certifies t < 2*opt, so t stays
     < 4*opt forever.  Doubling passes add at most 2 * t_final < 8*opt
     load per server; at most log2 n + 1 halving passes add < 4*opt each.
     Makespan <= 4 * opt * (log2 n + 3); passes <= log2 n + log2(2*opt) + 2.

   General MULTIPROC streams (weighted, multi-processor configurations) get
   the online greedy: the generators emit each task's configurations
   contiguously, so the solver buffers one task's configurations and picks
   the one minimizing the resulting bottleneck — no proven factor (the
   guarantee says so), quality is measured against the streamed refined LB. *)

module Sio = Hyper.Stream_io

type guarantee = One_pass_sqrt | Few_pass_log | Online_greedy

let guarantee_name = function
  | One_pass_sqrt -> "one-pass-sqrt"
  | Few_pass_log -> "few-pass-log"
  | Online_greedy -> "online-greedy"

let factor ~n = function
  | One_pass_sqrt -> (2.0 *. Float.ceil (sqrt (float_of_int (max n 1)))) +. 1.0
  | Few_pass_log -> 4.0 *. ((Float.log (float_of_int (max n 2)) /. Float.log 2.0) +. 3.0)
  | Online_greedy -> Float.nan

type solution = {
  makespan : float;
  assignment : int array option;  (** task -> processor, singleton streams only *)
  lower_bound : float;
  guarantee : guarantee;
  factor : float;
  passes : int;
  edges : int;
  state_words : int;
}

let c_records = Obs.Metrics.counter "stream.records"
let c_passes = Obs.Metrics.counter "stream.passes"
let c_fallbacks = Obs.Metrics.counter "stream.fallbacks"
let c_regrouped = Obs.Metrics.counter "stream.regrouped"
let h_state = Obs.Metrics.histogram "stream.state.words"
let h_ratio = Obs.Metrics.histogram "stream.quality.ratio"

let () =
  Obs.Prom.describe "stream.records" "Edge-stream records consumed by streaming solvers.";
  Obs.Prom.describe "stream.passes" "Stream passes performed by streaming solvers.";
  Obs.Prom.describe "stream.fallbacks" "Tasks placed by the one-pass fallback rule.";
  Obs.Prom.describe "stream.regrouped"
    "Records skipped because their task was already decided (non-grouped stream).";
  Obs.Prom.describe "stream.state.words" "Resident solver state per streamed solve, in words.";
  Obs.Prom.describe "stream.quality.ratio" "Streamed makespan / streamed refined lower bound."

(* The bounded-memory claim, kept honest: the high-water mark of resident
   solver state across this process, exported as a Prometheus gauge by the
   daemon and asserted against the CSR estimate by tests and CI. *)
let peak_state = Atomic.make 0

let note_state words =
  Obs.Metrics.observe h_state (float_of_int words);
  let rec bump () =
    let seen = Atomic.get peak_state in
    if words > seen && not (Atomic.compare_and_set peak_state seen words) then bump ()
  in
  bump ()

let peak_state_words () = Atomic.get peak_state

let finish ~makespan ~assignment ~lower_bound ~guarantee ~n ~passes ~edges ~state_words =
  note_state state_words;
  if lower_bound > 0.0 then Obs.Metrics.observe h_ratio (makespan /. lower_bound);
  {
    makespan;
    assignment;
    lower_bound;
    guarantee;
    factor = factor ~n guarantee;
    passes;
    edges;
    state_words;
  }

let require_unit_singleton hdr name =
  if not (Sio.singleton hdr && Sio.unit_weight hdr) then
    invalid_arg (Printf.sprintf "Stream.Kr.%s: needs a singleton unit-weight stream" name);
  if hdr.Sio.h_n1 > 0 && hdr.Sio.h_n2 = 0 then
    invalid_arg (Printf.sprintf "Stream.Kr.%s: tasks but no processors" name)

let unit_lb ~n ~p = if n = 0 then 0.0 else float_of_int (((n - 1) / p) + 1)

let max_load load =
  let m = ref 0 in
  Array.iter (fun l -> if l > !m then m := l) load;
  float_of_int !m

let one_pass reader =
  let hdr = Sio.header reader in
  require_unit_singleton hdr "one_pass";
  let n = hdr.Sio.h_n1 and p = hdr.Sio.h_n2 in
  let t = int_of_float (Float.ceil (sqrt (float_of_int (max n 1)))) in
  let assign = Array.make n (-1) in
  let fallback = Array.make n (-1) in
  let load = Array.make p 0 in
  let edges = ref 0 in
  Sio.iter reader (fun ~task:a ~procs ~weight:_ ->
      incr edges;
      let b = procs.(0) in
      if assign.(a) < 0 then
        if load.(b) < t then begin
          assign.(a) <- b;
          load.(b) <- load.(b) + 1
        end
        else if fallback.(a) < 0 || load.(b) < load.(fallback.(a)) then fallback.(a) <- b);
  Obs.Metrics.add c_records !edges;
  Obs.Metrics.incr c_passes;
  for a = 0 to n - 1 do
    if assign.(a) < 0 then begin
      let b = fallback.(a) in
      if b < 0 then failwith (Printf.sprintf "Stream.Kr.one_pass: task %d has no edge" a);
      assign.(a) <- b;
      load.(b) <- load.(b) + 1;
      Obs.Metrics.incr c_fallbacks
    end
  done;
  finish ~makespan:(max_load load) ~assignment:(Some assign) ~lower_bound:(unit_lb ~n ~p)
    ~guarantee:One_pass_sqrt ~n ~passes:1 ~edges:!edges
    ~state_words:((2 * n) + p)

let ceil_log2 n =
  let k = ref 0 in
  while 1 lsl !k < n do
    incr k
  done;
  !k

(* Safety valve far above the proved pass bound; hitting it is a bug, not
   an instance property. *)
let max_passes ~n = (4 * (ceil_log2 (max 2 n) + 2)) + 8

let few_pass reader =
  let hdr = Sio.header reader in
  require_unit_singleton hdr "few_pass";
  let n = hdr.Sio.h_n1 and p = hdr.Sio.h_n2 in
  let assign = Array.make n (-1) in
  let load = Array.make p 0 in
  let intake = Array.make p 0 in
  let saw = Bytes.make (max n 1) '\000' in
  (* Starting at the trivial LB <= opt skips the early doubling passes
     without breaking the t < 4*opt invariant. *)
  let t = ref (max 1 (int_of_float (unit_lb ~n ~p))) in
  let unmatched = ref n in
  let edges = ref 0 and passes = ref 0 in
  let limit = max_passes ~n in
  while !unmatched > 0 do
    if !passes > limit then failwith "Stream.Kr.few_pass: pass bound exceeded";
    if !passes > 0 then Sio.rewind reader;
    incr passes;
    Obs.Metrics.incr c_passes;
    Array.fill intake 0 p 0;
    Bytes.fill saw 0 n '\000';
    let before = !unmatched in
    let seen = ref 0 in
    Sio.iter reader (fun ~task:a ~procs ~weight:_ ->
        incr seen;
        if assign.(a) < 0 then begin
          Bytes.set saw a '\001';
          let b = procs.(0) in
          if intake.(b) < !t then begin
            assign.(a) <- b;
            intake.(b) <- intake.(b) + 1;
            load.(b) <- load.(b) + 1;
            decr unmatched
          end
        end);
    Obs.Metrics.add c_records !seen;
    if !passes = 1 then edges := !seen;
    if !unmatched > 0 then begin
      (* Any task still unmatched with no incident edge this pass has no
         edge at all: infeasible, and more passes cannot help. *)
      let isolated = ref (-1) in
      for a = 0 to n - 1 do
        if assign.(a) < 0 && Bytes.get saw a = '\000' && !isolated < 0 then isolated := a
      done;
      if !isolated >= 0 then
        failwith (Printf.sprintf "Stream.Kr.few_pass: task %d has no edge" !isolated);
      if 2 * !unmatched > before then t := 2 * !t
    end
  done;
  finish ~makespan:(max_load load) ~assignment:(Some assign) ~lower_bound:(unit_lb ~n ~p)
    ~guarantee:Few_pass_log ~n ~passes:!passes ~edges:!edges
    ~state_words:(n + (2 * p) + ((n + 7) / 8))

(* General streams: buffer one task's configurations (the generators emit
   them contiguously), pick the one minimizing the resulting bottleneck.
   Records for an already-decided task — possible only on a non-grouped
   stream — are counted and skipped.  [on_choice], when given, receives
   each committed (task, procs, weight) decision as it is made — the
   differential tests use it to check feasibility without the solver ever
   retaining the choices itself. *)
let online_greedy ?on_choice reader =
  let hdr = Sio.header reader in
  let n = hdr.Sio.h_n1 and p = hdr.Sio.h_n2 in
  if n > 0 && p = 0 then invalid_arg "Stream.Kr.online_greedy: tasks but no processors";
  let load = Array.make p 0.0 in
  let decided = Bytes.make (max n 1) '\000' in
  (* Streamed refined LB, incremental: per-task cheapest w*|S| and the
     heaviest per-task cheapest w — Lower_bound.multiproc_refined. *)
  let cheapest_time = Array.make n infinity in
  let cheapest_w = Array.make n infinity in
  let pending = ref (-1) in
  let best_procs = ref [||] and best_w = ref 0.0 and best_peak = ref infinity in
  let edges = ref 0 and skipped = ref 0 and undecided = ref n in
  let commit () =
    if !pending >= 0 then begin
      let a = !pending in
      Bytes.set decided a '\001';
      decr undecided;
      Array.iter (fun u -> load.(u) <- load.(u) +. !best_w) !best_procs;
      (match on_choice with
      | Some f -> f ~task:a ~procs:!best_procs ~weight:!best_w
      | None -> ());
      pending := -1;
      best_peak := infinity
    end
  in
  Sio.iter reader (fun ~task:a ~procs ~weight:w ->
      incr edges;
      let k = Array.length procs in
      let time = w *. float_of_int k in
      if time < cheapest_time.(a) then cheapest_time.(a) <- time;
      if w < cheapest_w.(a) then cheapest_w.(a) <- w;
      if Bytes.get decided a = '\001' then incr skipped
      else begin
        if !pending >= 0 && !pending <> a then commit ();
        pending := a;
        let peak = Array.fold_left (fun acc u -> Float.max acc (load.(u) +. w)) 0.0 procs in
        if
          peak < !best_peak
          || (peak = !best_peak && Array.length procs < Array.length !best_procs)
        then begin
          best_procs := procs;
          best_w := w;
          best_peak := peak
        end
      end);
  commit ();
  Obs.Metrics.add c_records !edges;
  Obs.Metrics.incr c_passes;
  Obs.Metrics.add c_regrouped !skipped;
  if !undecided > 0 then begin
    let a = ref 0 in
    while !a < n && Bytes.get decided !a = '\001' do
      incr a
    done;
    failwith (Printf.sprintf "Stream.Kr.online_greedy: task %d has no configuration" !a)
  end;
  let lb =
    if n = 0 || p = 0 then 0.0
    else begin
      let total = ref 0.0 and heaviest = ref 0.0 in
      for a = 0 to n - 1 do
        total := !total +. cheapest_time.(a);
        if cheapest_w.(a) > !heaviest then heaviest := cheapest_w.(a)
      done;
      Float.max (!total /. float_of_int p) !heaviest
    end
  in
  let makespan = Array.fold_left Float.max 0.0 load in
  finish ~makespan ~assignment:None ~lower_bound:lb ~guarantee:Online_greedy ~n ~passes:1
    ~edges:!edges
    ~state_words:(p + (3 * n) + ((n + 7) / 8))
