(** Streaming semi-matching solvers in the Konrad–Rosén model
    (arXiv:1304.6906): edges arrive as a stream, working memory is
    O(n + p) — never O(m) — and quality is a provable factor off the
    optimal makespan.  The factors recorded here are proved from scratch in
    kr.ml (the paper's text is not retrievable); they are conservative, not
    the paper's sharpest constants.

    The provable solvers consume SINGLEPROC-UNIT streams (singleton
    unit-weight records — the classic semi-matching setting); general
    MULTIPROC streams get the online greedy, whose [guarantee] says
    explicitly that no factor is proved. *)

type guarantee =
  | One_pass_sqrt
      (** one pass; makespan ≤ (2·⌈√n⌉ + 1) · opt via the threshold +
          lightest-fallback rule *)
  | Few_pass_log
      (** ≤ log₂ n + log₂(2·opt) + 2 passes; makespan ≤ 4·opt·(log₂ n + 3)
          via adaptive per-pass intake thresholds *)
  | Online_greedy
      (** task-grouped bottleneck greedy for general configurations — no
          proven factor; quality measured against the streamed refined LB *)

val guarantee_name : guarantee -> string
(** ["one-pass-sqrt"] / ["few-pass-log"] / ["online-greedy"]. *)

val factor : n:int -> guarantee -> float
(** The proven multiplicative bound on makespan/opt for an [n]-task
    instance; [nan] for {!Online_greedy}. *)

type solution = {
  makespan : float;
  assignment : int array option;
      (** task → processor; present for the singleton-stream solvers *)
  lower_bound : float;
      (** streamed incrementally: ⌈n/p⌉ for unit streams, the refined
          MULTIPROC bound for general ones — never from an in-core graph *)
  guarantee : guarantee;
  factor : float;  (** {!factor} of [guarantee] at this [n] *)
  passes : int;  (** full scans of the stream *)
  edges : int;  (** records in one scan *)
  state_words : int;  (** resident solver state (the O(n+p) claim, in words) *)
}

val one_pass : Hyper.Stream_io.reader -> solution
(** One scan from the reader's current position.  Requires a singleton
    unit-weight stream ([Invalid_argument] otherwise); raises [Failure] on
    an edgeless task (infeasible instance). *)

val few_pass : Hyper.Stream_io.reader -> solution
(** Multi-pass: rewinds the reader between passes.  Same preconditions as
    {!one_pass}. *)

val online_greedy :
  ?on_choice:(task:int -> procs:int array -> weight:float -> unit) ->
  Hyper.Stream_io.reader ->
  solution
(** One scan over a general stream, deciding each task when its
    (contiguous) configuration group ends.  On a non-task-grouped stream
    later records of a decided task are skipped (counted in the
    [stream.regrouped] counter).  [on_choice] observes each committed
    decision — callers wanting the full schedule accumulate it there; the
    solver itself retains only O(n + p). *)

val peak_state_words : unit -> int
(** Process-lifetime high-water mark of [state_words] across all streamed
    solves — exported as a Prometheus gauge by the daemon and asserted
    against the CSR estimate by tests and CI. *)
