(* The streaming tier's front door: given an edge-stream file, decide from
   the sealed header alone — before reading any record — whether the
   instance fits in core.  Small instances are materialized and handed to
   the exact/portfolio tier (the stream format is then just an interchange
   format); large ones are solved by the bounded-memory solvers without the
   CSR ever existing.  The threshold compares the header's CSR estimate
   against a word budget, so the decision is O(1). *)

module Sio = Hyper.Stream_io

type stream_solver = Auto | One_pass | Few_pass

let stream_solver_name = function Auto -> "auto" | One_pass -> "one-pass" | Few_pass -> "few-pass"

let stream_solver_of_string = function
  | "auto" -> Some Auto
  | "one-pass" -> Some One_pass
  | "few-pass" -> Some Few_pass
  | _ -> None

type tier =
  | In_core_exact  (** materialized, unit bipartite: the exact-engine race *)
  | In_core_portfolio  (** materialized, general: the heuristic portfolio *)
  | Stream_kr of Kr.guarantee  (** solved over the stream, never materialized *)

let tier_name = function
  | In_core_exact -> "incore-exact"
  | In_core_portfolio -> "incore-portfolio"
  | Stream_kr g -> "stream-" ^ Kr.guarantee_name g

type outcome = {
  tier : tier;
  makespan : float;
  lower_bound : float;
  guarantee : string;  (** what the winning tier certifies *)
  factor : float;  (** proven makespan/opt bound; [nan] for heuristics *)
  passes : int;
  edges : int;
  header : Sio.header;
  graph : Hyper.Graph.t option;  (** the materialized instance, in-core tiers only *)
  assignment : int array option;  (** task → processor, streamed singleton tiers *)
}

(* 64 MB of CSR by default: comfortably in-core on anything that runs the
   daemon, and small enough that the exact tier answers interactively. *)
let default_threshold_words = 8_000_000

let c_incore = Obs.Metrics.counter "stream.ingest.incore"
let c_streamed = Obs.Metrics.counter "stream.ingest.streamed"

let () =
  Obs.Prom.describe "stream.ingest.incore" "Stream ingests that fell back to the in-core tier.";
  Obs.Prom.describe "stream.ingest.streamed" "Stream ingests solved by the streaming tier."

let solve_in_core ?pool ?jobs h =
  match Hyper.Graph.to_bipartite h with
  | Some g when Bipartite.Graph.is_unit_weighted g && not (Bipartite.Graph.has_isolated_task g)
    ->
      let sol, engine = Semimatch.Portfolio.solve_exact_unit ?pool ?jobs g in
      let open Semimatch.Exact_unit in
      ( In_core_exact,
        float_of_int sol.makespan,
        float_of_int (Semimatch.Lower_bound.singleproc_unit g),
        Printf.sprintf "%s (%s)" (guarantee_name sol.guarantee) (exact_engine_name engine),
        1.0 )
  | _ ->
      let r = Semimatch.Portfolio.solve ?pool ?jobs h in
      ( In_core_portfolio,
        r.Semimatch.Portfolio.best_makespan,
        r.Semimatch.Portfolio.lower_bound,
        "portfolio-heuristic",
        Float.nan )

let solve ?pool ?jobs ?(threshold_words = default_threshold_words) ?(stream_solver = Auto) path
    =
  let reader = Sio.open_reader path in
  Fun.protect
    ~finally:(fun () -> Sio.close_reader reader)
    (fun () ->
      let hdr = Sio.header reader in
      if not (Sio.sealed hdr) then
        failwith "Stream.Ingest: unsealed stream (writer never closed) — run doctor";
      let csr_words = match Sio.csr_estimate_words hdr with Some w -> w | None -> max_int in
      if csr_words <= threshold_words then begin
        Obs.Metrics.incr c_incore;
        let h =
          let acc = ref [] in
          Sio.iter reader (fun ~task ~procs ~weight -> acc := (task, procs, weight) :: !acc);
          Hyper.Graph.create ~n1:hdr.Sio.h_n1 ~n2:hdr.Sio.h_n2 ~hyperedges:(List.rev !acc)
        in
        let tier, makespan, lower_bound, guarantee, factor = solve_in_core ?pool ?jobs h in
        {
          tier;
          makespan;
          lower_bound;
          guarantee;
          factor;
          passes = 1;
          edges = hdr.Sio.h_records;
          header = hdr;
          graph = Some h;
          assignment = None;
        }
      end
      else begin
        Obs.Metrics.incr c_streamed;
        let sol =
          if Sio.singleton hdr && Sio.unit_weight hdr then
            match stream_solver with
            | One_pass -> Kr.one_pass reader
            | Few_pass | Auto -> Kr.few_pass reader
          else Kr.online_greedy reader
        in
        {
          tier = Stream_kr sol.Kr.guarantee;
          makespan = sol.Kr.makespan;
          lower_bound = sol.Kr.lower_bound;
          guarantee = Kr.guarantee_name sol.Kr.guarantee;
          factor = sol.Kr.factor;
          passes = sol.Kr.passes;
          edges = sol.Kr.edges;
          header = hdr;
          graph = None;
          assignment = sol.Kr.assignment;
        }
      end)
