(** Discrete-event execution of a MULTIPROC schedule.

    The paper's model (Sec. II) inherits the concurrent-job-shop semantics:
    a realized configuration splits its task into independent {e parts}, one
    per processor, each of length w_h; parts of a task need not run
    simultaneously, and each processor works through its parts sequentially
    without idling.  Under those rules the schedule's makespan equals the
    maximum processor load — the quantity the semi-matching minimizes — for
    {e every} per-processor ordering policy.  This simulator executes the
    parts event by event, which (a) validates that equivalence in tests, and
    (b) measures quantities the load vector does not determine, such as task
    completion times, which do depend on the ordering policy. *)

type policy =
  | Fifo  (** parts in task-index order (arrival order) *)
  | Spt  (** shortest part first — classically minimizes mean completion *)
  | Lpt  (** longest part first *)
  | Random_order of int  (** seeded shuffle, for property tests *)

val policy_name : policy -> string

type part_event = {
  task : int;
  proc : int;
  start : float;
  finish : float;
}

type trace = {
  events : part_event list;  (** chronological by start time *)
  task_completion : float array;  (** completion of a task = max over parts *)
  proc_busy : float array;  (** total busy time per processor *)
  makespan : float;  (** latest part finish time *)
}

val run : ?policy:policy -> Hyper.Graph.t -> Semimatch.Hyp_assignment.t -> trace
(** Simulate the realized configurations of the assignment. *)

type degraded_trace = {
  d_trace : trace;
  lost : int list;
      (** tasks that lost a part to a processor crash (sorted, unique);
          their [task_completion] slot is [infinity] *)
  unscheduled : int list;
      (** tasks whose choice was [-1] (e.g. infeasible after {!Semimatch.Repair});
          also [infinity] in [task_completion] *)
}

val run_degraded :
  ?policy:policy ->
  Semimatch.Faults.degradation ->
  Hyper.Graph.t ->
  int array ->
  degraded_trace
(** [run_degraded d h choice] executes a schedule on a degraded machine.
    [choice] is a per-task chosen hyperedge id with [-1] meaning the task is
    not scheduled at all (the shape {!Semimatch.Repair} reports).  Each part
    of weight [w] on processor [u] takes [w · speed.(u)] and pauses across
    [u]'s stall windows; a part that would finish after [u]'s crash instant
    is lost, along with everything queued behind it, and its task lands in
    [lost].  Since parts run back-to-back, the makespan of a fully executed
    schedule equals [max_u Faults.finish_time d u load_u] — the repaired
    load-vector maximum — for every ordering policy.  With
    [Faults.healthy] this is byte-identical to {!run}.  Raises
    [Invalid_argument] when [d.p <> n2], [choice] has the wrong length, or a
    non-[-1] choice is not a hyperedge of its task. *)

val average_completion : trace -> float
(** Mean task completion time; 0 for empty task sets. *)

val gantt : ?width:int -> proc_names:(int -> string) -> trace -> string
(** ASCII Gantt chart, one row per processor, [width] characters of
    timeline (default 72).  Parts are drawn with the last hex digit of
    their task id; idle time as [.]. *)
