module H = Hyper.Graph

type policy = Fifo | Spt | Lpt | Random_order of int

let policy_name = function
  | Fifo -> "fifo"
  | Spt -> "spt"
  | Lpt -> "lpt"
  | Random_order seed -> Printf.sprintf "random[%d]" seed

type part_event = { task : int; proc : int; start : float; finish : float }

type trace = {
  events : part_event list;
  task_completion : float array;
  proc_busy : float array;
  makespan : float;
}

type part = { p_task : int; p_len : float }

let order_queue policy parts =
  match policy with
  | Fifo -> parts (* already in task order by construction *)
  | Spt ->
      let a = Array.of_list parts in
      Array.stable_sort (fun x y -> compare x.p_len y.p_len) a;
      Array.to_list a
  | Lpt ->
      let a = Array.of_list parts in
      Array.stable_sort (fun x y -> compare y.p_len x.p_len) a;
      Array.to_list a
  | Random_order seed ->
      let rng = Randkit.Prng.create ~seed in
      let a = Array.of_list parts in
      Randkit.Prng.shuffle_in_place rng a;
      Array.to_list a

let run ?(policy = Fifo) h a =
  let n1 = h.H.n1 and n2 = h.H.n2 in
  (* Build per-processor part queues from the realized configurations. *)
  let queues = Array.make n2 [] in
  for v = n1 - 1 downto 0 do
    let e = a.Semimatch.Hyp_assignment.choice.(v) in
    let w = H.h_weight h e in
    H.iter_h_procs h e (fun u -> queues.(u) <- { p_task = v; p_len = w } :: queues.(u))
  done;
  let queues = Array.map (fun q -> ref (order_queue policy q)) queues in
  (* Discrete-event loop: the heap holds each busy processor keyed by the
     finish time of its running part; popping the earliest finish emits the
     event and starts the processor's next part. *)
  let heap = Ds.Indexed_heap.create (max n2 1) in
  let running = Array.make n2 { p_task = -1; p_len = 0.0 } in
  let started = Array.make n2 0.0 in
  let start_next u now =
    match !(queues.(u)) with
    | [] -> ()
    | part :: rest ->
        queues.(u) := rest;
        running.(u) <- part;
        started.(u) <- now;
        Ds.Indexed_heap.insert heap u (now +. part.p_len)
  in
  for u = 0 to n2 - 1 do
    start_next u 0.0
  done;
  let events = ref [] in
  let task_completion = Array.make n1 0.0 in
  let proc_busy = Array.make n2 0.0 in
  let makespan = ref 0.0 in
  let rec loop () =
    match Ds.Indexed_heap.pop_min heap with
    | None -> ()
    | Some (u, finish) ->
        let part = running.(u) in
        events := { task = part.p_task; proc = u; start = started.(u); finish } :: !events;
        proc_busy.(u) <- proc_busy.(u) +. part.p_len;
        if finish > task_completion.(part.p_task) then task_completion.(part.p_task) <- finish;
        if finish > !makespan then makespan := finish;
        start_next u finish;
        loop ()
  in
  loop ();
  let events = List.sort (fun a b -> compare (a.start, a.proc) (b.start, b.proc)) !events in
  { events; task_completion; proc_busy; makespan = !makespan }

module F = Semimatch.Faults

type degraded_trace = { d_trace : trace; lost : int list; unscheduled : int list }

(* Parts on one processor run back-to-back, so the degraded run needs no
   event heap: walk each processor's policy-ordered queue, advancing a local
   clock through stall windows via [Faults.advance].  A part that would
   outlive the processor's crash is lost together with everything queued
   behind it.  With [Faults.healthy] this reproduces [run] exactly. *)
let run_degraded ?(policy = Fifo) (d : F.degradation) h choice =
  let n1 = h.H.n1 and n2 = h.H.n2 in
  if d.F.p <> n2 then invalid_arg "Simulator.run_degraded: degradation/machine size mismatch";
  if Array.length choice <> n1 then invalid_arg "Simulator.run_degraded: choice length mismatch";
  let unscheduled = ref [] in
  let queues = Array.make n2 [] in
  for v = n1 - 1 downto 0 do
    let e = choice.(v) in
    if e = -1 then unscheduled := v :: !unscheduled
    else begin
      if e < h.H.task_off.(v) || e >= h.H.task_off.(v + 1) then
        invalid_arg "Simulator.run_degraded: chosen hyperedge does not belong to the task";
      let w = H.h_weight h e in
      H.iter_h_procs h e (fun u -> queues.(u) <- { p_task = v; p_len = w } :: queues.(u))
    end
  done;
  let task_completion = Array.make n1 0.0 in
  let proc_busy = Array.make n2 0.0 in
  let makespan = ref 0.0 in
  let events = ref [] in
  let lost_flag = Array.make n1 false in
  for u = 0 to n2 - 1 do
    let t = ref 0.0 and crashed = ref false in
    List.iter
      (fun part ->
        if !crashed then lost_flag.(part.p_task) <- true
        else begin
          let work = part.p_len *. d.F.speed.(u) in
          let finish = F.advance d u ~from:!t ~work in
          if finish <= d.F.crash_at.(u) then begin
            events := { task = part.p_task; proc = u; start = !t; finish } :: !events;
            proc_busy.(u) <- proc_busy.(u) +. work;
            if finish > task_completion.(part.p_task) then task_completion.(part.p_task) <- finish;
            if finish > !makespan then makespan := finish;
            t := finish
          end
          else begin
            crashed := true;
            lost_flag.(part.p_task) <- true
          end
        end)
      (order_queue policy queues.(u))
  done;
  let lost = ref [] in
  for v = n1 - 1 downto 0 do
    if lost_flag.(v) then begin
      lost := v :: !lost;
      task_completion.(v) <- infinity
    end
  done;
  List.iter (fun v -> task_completion.(v) <- infinity) !unscheduled;
  let events = List.sort (fun a b -> compare (a.start, a.proc) (b.start, b.proc)) !events in
  {
    d_trace = { events; task_completion; proc_busy; makespan = !makespan };
    lost = !lost;
    unscheduled = !unscheduled;
  }

let average_completion trace =
  let n = Array.length trace.task_completion in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 trace.task_completion /. float_of_int n

let gantt ?(width = 72) ~proc_names trace =
  if width <= 0 then invalid_arg "Simulator.gantt: width must be positive";
  let n2 = Array.length trace.proc_busy in
  let horizon = if trace.makespan > 0.0 then trace.makespan else 1.0 in
  let buf = Buffer.create 1024 in
  let cell_of_time = float_of_int width /. horizon in
  let rows = Array.init n2 (fun _ -> Bytes.make width '.') in
  List.iter
    (fun e ->
      let first = int_of_float (e.start *. cell_of_time) in
      let last = min (width - 1) (int_of_float (e.finish *. cell_of_time) - 1) in
      let glyph = "0123456789abcdef".[e.task land 0xf] in
      for c = min first (width - 1) to max (min first (width - 1)) last do
        Bytes.set rows.(e.proc) c glyph
      done)
    trace.events;
  Buffer.add_string buf (Printf.sprintf "time 0 .. %g (one column = %g)\n" horizon (horizon /. float_of_int width));
  Array.iteri
    (fun u row -> Buffer.add_string buf (Printf.sprintf "%-10s |%s|\n" (proc_names u) (Bytes.to_string row)))
    rows;
  Buffer.contents buf
