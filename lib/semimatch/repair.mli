(** Incremental semi-matching repair after processor failures.

    Given a schedule and a set of dead processors, only the {e affected}
    tasks — those whose chosen configuration touches a dead processor — are
    re-placed: greedy re-insertion onto the cheapest surviving configuration
    (fewest-options-first, the same order discipline as the greedies), then
    a warm-started local search restricted to the touched tasks.  Unaffected
    tasks keep their placement, which is the whole point: repair cost is
    measured in tasks moved, not in schedules recomputed.

    As a safety net, {!repair} also runs the from-scratch {!resolve} on the
    surviving machine and returns whichever is better, so an incremental
    repair is never worse than throwing the old schedule away — the
    [resolved_from_scratch] flag records when the net was needed.

    Tasks with no surviving configuration are {e reported}, never raised
    over: they appear in [infeasible], their [choice] slot is [-1], and the
    rest of the schedule is still valid. *)

type t = {
  assignment : Hyp_assignment.t option;
      (** the repaired schedule; [None] iff some task is infeasible *)
  choice : int array;
      (** per-task chosen hyperedge id, [-1] for infeasible tasks — usable
          even when [assignment] is [None] *)
  affected : int list;  (** tasks whose old configuration touched a dead processor *)
  moved : int list;  (** tasks whose final choice differs from the old one *)
  infeasible : int list;  (** tasks with no surviving configuration *)
  makespan : float;
      (** max over processors of [cost u load_u] for the scheduled tasks;
          [0.] when nothing is scheduled *)
  lower_bound : float;
      (** {!Lower_bound.multiproc_refined} of the surviving machine (feasible
          tasks, surviving configurations, surviving processors); [0.] when
          either side is empty *)
  resolved_from_scratch : bool;
      (** true when the from-scratch re-solve beat the incremental repair *)
}

val repair :
  ?max_passes:int ->
  ?cost:(int -> float -> float) ->
  dead:bool array ->
  Hyper.Graph.t ->
  Hyp_assignment.t ->
  t
(** [repair ~dead h a] re-places the tasks of [a] that sit on dead
    processors.  [dead] must have length [n2].  [cost u load] is the
    completion time of [load] raw work on processor [u] (default: the load
    itself); pass [Faults.finish_time d] to price slowdowns and stalls into
    the repair decisions.  It must be monotone in the load and map zero load
    to [0.].  [max_passes] (default 8) bounds the restricted local search.
    Never raises on dead/infeasible structure — only on malformed arguments
    ([Invalid_argument]). *)

val resolve : ?cost:(int -> float -> float) -> dead:bool array -> Hyper.Graph.t -> t
(** From-scratch comparison point: forget the old schedule and run
    expected-vector-greedy on the surviving machine.  Same reporting
    contract as {!repair}; [affected] and [moved] list every feasible task
    and [resolved_from_scratch] is [true]. *)

(** {2 Delta application}

    The scheduler service ([lib/server]) keeps one instance resident and
    mutates it as tasks arrive and depart; these entry points apply such a
    delta to an existing choice vector without re-solving the rest of the
    schedule. *)

val place :
  ?max_passes:int ->
  ?cost:(int -> float -> float) ->
  ?dead:bool array ->
  tasks:int list ->
  Hyper.Graph.t ->
  int array ->
  t
(** [place ~tasks h choice] (re-)places exactly the listed tasks against
    the loads implied by the rest of [choice]: greedy re-insertion onto the
    cheapest surviving configuration (fewest-options-first), then the
    restricted local search over the listed tasks only.  Unlisted tasks
    keep their slots untouched — a slot must be a hyperedge of its task or
    [-1] (an unplaced task, whose load is simply absent).  [dead] (default:
    all alive) masks processors exactly as in {!repair}.

    Unlike {!repair} there is no from-scratch safety net: [place] is the
    {e cheap} incremental path, and callers that want the guarantee run a
    periodic {!Deadline.solve_surviving} instead.  [affected] lists the
    requested tasks, [infeasible] every task left at [-1] (listed tasks
    with no surviving configuration {e and} carried-over unplaced ones),
    [moved] the slots that changed, and [lower_bound] the refined bound of
    the surviving machine.  [assignment] is [Some] iff no slot is [-1]. *)

type survivor = {
  sub : Hyper.Graph.t;  (** surviving machine as a standalone instance *)
  task_of : int array;  (** sub task id → original task id *)
  orig_edge : int array array;
      (** per sub task, the k-th surviving edge's original hyperedge id *)
}

val feasible_split : Hyper.Graph.t -> bool array -> int list * int list
(** [(feasible, infeasible)] task ids under the dead mask, both ascending:
    a task is feasible when it keeps at least one configuration free of
    dead processors. *)

val surviving_machine : Hyper.Graph.t -> bool array -> feasible:int list -> survivor option
(** The feasible tasks and their surviving configurations, processors
    renumbered densely; [None] when no task or no processor survives.
    Sub-hyperedge order matches surviving-edge order per task, so solutions
    map back through {!choice_of_sub}. *)

val choice_of_sub : survivor -> Hyp_assignment.t -> int array -> unit
(** Write a sub-instance assignment back into an original-id choice vector
    (slots of tasks absent from the survivor are left untouched). *)
