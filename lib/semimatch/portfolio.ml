module Pool = Parpool.Pool
module Cancel = Parpool.Cancel

(* Probe points: how many solver slots ran vs were cut off, and how often the
   cutoff fired at all (meaning some solver hit the lower bound early). *)
let c_ran = Obs.Metrics.counter "semimatch.portfolio.solvers_ran"
let c_skipped = Obs.Metrics.counter "semimatch.portfolio.solvers_skipped"
let h_solver_s = Obs.Metrics.histogram "semimatch.portfolio.solver_s"

type solver =
  | Greedy of Greedy_hyper.algorithm
  | Refined of Greedy_hyper.algorithm
  | Annealed of int

let solver_name = function
  | Greedy a -> Greedy_hyper.short_name a
  | Refined a -> Greedy_hyper.short_name a ^ "+ls"
  | Annealed seed -> Printf.sprintf "anneal@%d" seed

let default_solvers =
  List.map (fun a -> Greedy a) Greedy_hyper.all
  @ [ Refined Greedy_hyper.Expected_vector_greedy_hyp; Annealed 1 ]

type outcome = { o_solver : solver; o_makespan : float option; o_time_s : float }

type result = {
  best_makespan : float;
  assignment : Hyp_assignment.t;
  winner : solver;
  lower_bound : float;
  outcomes : outcome list;
}

(* Lock-free incumbent: lower the shared best makespan, never raise it.
   The CAS loop retries only when another domain moved the value, and since
   each retry observes a strictly smaller incumbent it terminates.  Returns
   whether [v] became the new incumbent (the event log wants to know). *)
let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur then
    if Atomic.compare_and_set a cur v then true else atomic_min a v
  else false

let run_solver ~should_stop h = function
  | Greedy a ->
      let asg = Greedy_hyper.run a h in
      (asg, Hyp_assignment.makespan h asg)
  | Refined a ->
      let start = Greedy_hyper.run a h in
      let asg, _moves = Local_search.refine h start in
      (asg, Hyp_assignment.makespan h asg)
  | Annealed seed ->
      let rng = Randkit.Prng.create ~seed in
      Annealing.solve ~should_stop rng h

let solve ?pool ?(jobs = 1) ?(cutoff = true) ?timeout_s ?(solvers = default_solvers) h =
  if solvers = [] then invalid_arg "Portfolio.solve: solvers must be non-empty";
  let solvers = Array.of_list solvers in
  let n = Array.length solvers in
  (* The refined LB is sound (no schedule beats it), so an incumbent at the
     LB proves optimality and later solvers cannot improve the value — the
     only condition under which the cutoff skips work.  This is what keeps
     the returned makespan identical across job counts. *)
  let lb = Lower_bound.multiproc_refined h in
  let token = match timeout_s with Some s -> Cancel.create ~timeout_s:s () | None -> Cancel.never in
  let best = Atomic.make infinity in
  let results = Array.make n None in
  let times = Array.make n 0.0 in
  let optimal_found () = cutoff && Atomic.get best <= lb in
  let task i () =
    let name = solver_name solvers.(i) in
    if optimal_found () || Cancel.is_cancelled token then begin
      Obs.Metrics.incr c_skipped;
      (* Why the slot never ran: the LB cutoff proved optimality, or the
         caller's timeout/cancellation fired first. *)
      if Obs.is_enabled () then
        if optimal_found () then
          Obs.Events.emit "portfolio.cutoff"
            [ Obs.Events.str "solver" name; Obs.Events.num "lower_bound" lb ]
        else
          Obs.Events.emit ~level:Obs.Events.Warn "portfolio.cancelled"
            [ Obs.Events.str "solver" name ]
    end
    else begin
      Obs.Metrics.incr c_ran;
      let should_stop () = Cancel.is_cancelled token || optimal_found () in
      let (asg, m), dt = Obs.Span.time_s (fun () -> run_solver ~should_stop h solvers.(i)) in
      Obs.Metrics.observe h_solver_s dt;
      let improved = atomic_min best m in
      if Obs.is_enabled () then begin
        if improved then
          Obs.Events.emit "portfolio.incumbent"
            [ Obs.Events.str "solver" name; Obs.Events.num "makespan" m ];
        Obs.Events.emit "portfolio.solver.done"
          [
            Obs.Events.str "solver" name;
            Obs.Events.num "makespan" m;
            Obs.Events.num "time_s" dt;
          ]
      end;
      results.(i) <- Some (m, asg);
      times.(i) <- dt
    end
  in
  let tasks = Array.init n task in
  (match pool with
  | Some p -> Pool.run ~cancel:token p tasks
  | None -> Pool.with_pool ~jobs (fun p -> Pool.run ~cancel:token p tasks));
  (* A timeout that fires before anything completed would otherwise leave no
     result at all; fall back to the first solver, uninterrupted. *)
  if Array.for_all Option.is_none results then begin
    let (asg, m), dt =
      Obs.Span.time_s (fun () -> run_solver ~should_stop:(fun () -> false) h solvers.(0))
    in
    results.(0) <- Some (m, asg);
    times.(0) <- dt
  end;
  let best_makespan =
    Array.fold_left
      (fun acc -> function Some (m, _) -> Float.min acc m | None -> acc)
      infinity results
  in
  let winner_idx = ref 0 in
  (try
     for i = 0 to n - 1 do
       match results.(i) with
       | Some (m, _) when m = best_makespan ->
           winner_idx := i;
           raise Exit
       | _ -> ()
     done
   with Exit -> ());
  let assignment = match results.(!winner_idx) with Some (_, a) -> a | None -> assert false in
  let outcomes =
    List.init n (fun i ->
        {
          o_solver = solvers.(i);
          o_makespan = Option.map fst results.(i);
          o_time_s = times.(i);
        })
  in
  { best_makespan; assignment; winner = solvers.(!winner_idx); lower_bound = lb; outcomes }

let solve_exact_unit ?pool ?(jobs = 1) ?(engines = Exact_unit.all_exact_engines) g =
  if engines = [] then invalid_arg "Portfolio.solve_exact_unit: engines must be non-empty";
  let engines = Array.of_list engines in
  let contenders =
    Array.map (fun exact _token -> Exact_unit.solve_with ~exact g) engines
  in
  let idx, solution =
    match pool with
    | Some p -> Pool.race p contenders
    | None -> Pool.with_pool ~jobs (fun p -> Pool.race p contenders)
  in
  (solution, engines.(idx))
