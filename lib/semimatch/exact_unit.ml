module G = Bipartite.Graph

type strategy = Incremental | Bisection

let strategy_name = function Incremental -> "incremental" | Bisection -> "bisection"

type guarantee = Makespan_optimal | Load_vector_optimal

let guarantee_name = function
  | Makespan_optimal -> "makespan-optimal"
  | Load_vector_optimal -> "load-vector-optimal"

type solution = {
  makespan : int;
  assignment : Bip_assignment.t;
  deadlines_tried : int;
  guarantee : guarantee;
}

let check g =
  if not (G.is_unit_weighted g) then invalid_arg "Exact_unit: weights must all be 1";
  if G.has_isolated_task g then invalid_arg "Exact_unit: task with no allowed processor";
  if g.G.n1 > 0 && g.G.n2 = 0 then invalid_arg "Exact_unit: no processors"

let feasible ?engine g ~d =
  if d < 0 then invalid_arg "Exact_unit.feasible: negative deadline";
  let caps = Array.make g.G.n2 d in
  let result = Matching.solve ?engine ~capacities:caps g in
  if result.Matching.size = g.G.n1 then Some (Bip_assignment.of_mates g result.Matching.mate1)
  else None

let solve ?engine ?(strategy = Incremental) g =
  check g;
  if g.G.n1 = 0 then
    {
      makespan = 0;
      assignment = Bip_assignment.of_edges g [||];
      deadlines_tried = 0;
      guarantee = Makespan_optimal;
    }
  else begin
    let tried = ref 0 in
    let attempt d =
      incr tried;
      feasible ?engine g ~d
    in
    let lo0 = Lower_bound.singleproc_unit g in
    match strategy with
    | Incremental ->
        let rec search d =
          match attempt d with
          | Some assignment ->
              { makespan = d; assignment; deadlines_tried = !tried; guarantee = Makespan_optimal }
          | None -> search (d + 1)
        in
        search lo0
    | Bisection ->
        (* Invariant: makespan lo-1 infeasible (lo0-1 < LB is), hi feasible. *)
        let rec bisect lo hi best =
          if lo >= hi then
            { makespan = hi; assignment = best; deadlines_tried = !tried; guarantee = Makespan_optimal }
          else begin
            let mid = (lo + hi) / 2 in
            match attempt mid with
            | Some assignment -> bisect lo mid assignment
            | None -> bisect (mid + 1) hi best
          end
        in
        (* n1 is always feasible (stack everything on one allowed processor
           per task), so start from the first feasible power-of-two probe to
           avoid paying for huge hi when the optimum is small. *)
        let rec find_hi d =
          match attempt d with
          | Some assignment -> (d, assignment)
          | None -> find_hi (min g.G.n1 (2 * d))
        in
        let hi, best = find_hi (max lo0 1) in
        bisect lo0 hi best
  end

(* ---- the unified exact-engine catalogue ------------------------------ *)

type exact_engine =
  | Binary_search of Matching.engine
  | Harvey_online
  | Gen_hk
  | Divide_conquer

let all_exact_engines =
  List.map (fun e -> Binary_search e) Matching.all_engines
  @ [ Harvey_online; Gen_hk; Divide_conquer ]

let exact_engine_name = function
  | Binary_search Matching.Dfs -> "bs-dfs"
  | Binary_search Matching.Hopcroft_karp -> "bs-hk"
  | Binary_search Matching.Push_relabel -> "bs-pr"
  | Harvey_online -> "harvey"
  | Gen_hk -> "gen-hk"
  | Divide_conquer -> "dnc"

let exact_engine_guarantee = function
  | Binary_search _ -> Makespan_optimal
  | Harvey_online | Gen_hk | Divide_conquer -> Load_vector_optimal

let solve_with ?strategy ~exact g =
  match exact with
  | Binary_search engine -> solve ~engine ?strategy g
  | Harvey_online ->
      let s = Harvey.solve g in
      {
        makespan = s.Harvey.makespan;
        assignment = s.Harvey.assignment;
        deadlines_tried = 0;
        guarantee = Load_vector_optimal;
      }
  | Gen_hk ->
      let s = Gen_hk.solve g in
      {
        makespan = s.Gen_hk.makespan;
        assignment = s.Gen_hk.assignment;
        deadlines_tried = s.Gen_hk.phases;
        guarantee = Load_vector_optimal;
      }
  | Divide_conquer ->
      let s = Divide_conquer.solve g in
      {
        makespan = s.Divide_conquer.makespan;
        assignment = s.Divide_conquer.assignment;
        deadlines_tried = s.Divide_conquer.matchings;
        guarantee = Load_vector_optimal;
      }
