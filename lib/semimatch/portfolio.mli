(** A multicore solver portfolio for MULTIPROC (and the matching-engine race
    for SINGLEPROC-UNIT).

    The heuristics in this library have incomparable strengths: the greedies
    are fast but myopic, local search fixes single-task mistakes, annealing
    escapes local optima given budget.  The portfolio runs a selection of
    them {e in parallel} over a {!Parpool.Pool} and keeps the best schedule,
    sharing the incumbent makespan through an atomic so late starters can be
    {e cut off} as soon as some solver already matched the instance's lower
    bound (below which no schedule exists).

    Determinism: every solver is individually deterministic, and the set of
    solvers is fixed, so the best {e makespan} returned is independent of
    [jobs], scheduling, and timing.  With [cutoff:true] (the default) a
    solver may be skipped, but only once the incumbent equals the lower
    bound — i.e. only when the skipped solver could not have improved the
    value anyway; the reported {e winner} can then differ between runs (any
    solver attaining the optimum may finish first).  With [cutoff:false]
    every solver always runs and the winner is deterministic too: the
    earliest solver in list order attaining the best makespan. *)

type solver =
  | Greedy of Greedy_hyper.algorithm
  | Refined of Greedy_hyper.algorithm
      (** greedy start + {!Local_search.refine} *)
  | Annealed of int  (** {!Annealing.solve} seeded with this integer *)

val solver_name : solver -> string
(** E.g. "SGH", "EVG+ls", "anneal@7". *)

val default_solvers : solver list
(** The four greedy heuristics, local-search-refined EVG, and one annealing
    run (seed 1) — a spread of cheap and thorough. *)

type outcome = {
  o_solver : solver;
  o_makespan : float option;  (** [None]: skipped by cutoff or timeout *)
  o_time_s : float;
}

type result = {
  best_makespan : float;
  assignment : Hyp_assignment.t;
  winner : solver;
  lower_bound : float;  (** {!Lower_bound.multiproc_refined} *)
  outcomes : outcome list;  (** one per solver, in solver-list order *)
}

val solve :
  ?pool:Parpool.Pool.t ->
  ?jobs:int ->
  ?cutoff:bool ->
  ?timeout_s:float ->
  ?solvers:solver list ->
  Hyper.Graph.t ->
  result
(** [solve h] runs the portfolio and returns the best schedule found.
    Runs on [pool] when given (ignoring [jobs]), else on an ephemeral pool
    of [jobs] participants (default 1: fully sequential and deterministic).
    [timeout_s] bounds the wall clock: running annealers stop early at their
    next poll and unstarted solvers are skipped — at least the first solver
    always completes, so a result is always returned.  [solvers] must be
    non-empty.  Raises [Invalid_argument] on infeasible instances. *)

val solve_exact_unit :
  ?pool:Parpool.Pool.t ->
  ?jobs:int ->
  ?engines:Exact_unit.exact_engine list ->
  Bipartite.Graph.t ->
  Exact_unit.solution * Exact_unit.exact_engine
(** Race the exact engines — the three binary searches and the three direct
    cost-reducing-path solvers — on the same SINGLEPROC-UNIT instance and
    return the first solution to arrive with the engine that produced it.
    All engines compute the same optimal {e makespan}, so that value is
    engine- and timing-independent; the assignment, [deadlines_tried]
    bookkeeping, the winning engine and its [guarantee] (makespan- vs
    load-vector-optimal — see {!Exact_unit.guarantee}) vary with the
    winner.  With [jobs = 1] the first engine in [engines] (default
    {!Exact_unit.all_exact_engines}) wins deterministically. *)
