(** Deadline-bounded graceful degradation for MULTIPROC solving.

    [solve ~budget_s h] spends a wall-clock budget on a cascade of solver
    tiers and always returns the best {e feasible} schedule found when the
    budget trips — never an exception, never an empty hand:

    - {b greedy}: sorted-greedy-hyp runs first, uninterrupted.  It is the
      floor of the cascade; even a zero (or negative) budget returns its
      schedule.
    - {b portfolio}: with budget remaining, {!Portfolio.solve} races the
      remaining heuristics (greedies, local search, annealing) under the
      leftover wall clock.
    - {b exact}: with budget still remaining, a SINGLEPROC-UNIT instance
      (every hyperedge a unit-weight singleton) is settled by the direct
      {!Gen_hk} engine — polynomial, so no size bound is needed — adopted
      only when it strictly improves the incumbent, and a
      ["deadline.exact_engine"] event names the engine.  Otherwise, with a
      search space of at most [200_000] configurations (Π d_v),
      {!Brute_force.multiproc} settles the instance optimally.  The bound
      keeps brute force off any instance large enough that the portfolio's
      answer matters, so a generous budget reproduces [Portfolio.solve]
      byte-for-byte there.

    The result is {e degraded} when the budget cut solvers off before they
    could have mattered: the portfolio tier never started, or some of its
    solvers were skipped while the incumbent still sat above the lower
    bound.  Every tier completion emits a ["deadline.tier"] event and every
    degradation a ["deadline.degraded"] warning, so traces show why quality
    dropped. *)

type tier = Tier_greedy | Tier_portfolio | Tier_exact

val tier_name : tier -> string
(** ["greedy"], ["portfolio"], ["exact"]. *)

type result = {
  assignment : Hyp_assignment.t;
  makespan : float;
  tier : tier;  (** the tier that produced [assignment] *)
  degraded : bool;
  lower_bound : float;  (** {!Lower_bound.multiproc_refined} *)
  portfolio : Portfolio.result option;  (** when that tier ran *)
  elapsed_s : float;
}

val solve :
  ?pool:Parpool.Pool.t ->
  ?jobs:int ->
  ?solvers:Portfolio.solver list ->
  budget_s:float ->
  Hyper.Graph.t ->
  result
(** Ties between tiers resolve toward the later tier (portfolio over greedy,
    exact over both), so an undegraded run returns the portfolio's exact
    bytes.  [pool]/[jobs]/[solvers] are passed through to
    {!Portfolio.solve}.  Raises [Invalid_argument] only on infeasible
    instances (a task with no configuration). *)

(** {2 Delta application}

    The scheduler service's periodic [resolve]: a budgeted from-scratch
    solve of the {e surviving} machine (dead processors masked, tasks with
    no surviving configuration excluded), mapped back to original
    hyperedge ids so the result can replace a live incumbent in place. *)

type delta = {
  d_repair : Repair.t;
      (** [choice] in original ids; [affected] = the feasible tasks,
          [moved] = the scheduled ones, [infeasible] = tasks with no
          surviving configuration, [resolved_from_scratch] = [true] *)
  d_tier : tier;
  d_degraded : bool;
  d_elapsed_s : float;
}

val solve_surviving :
  ?pool:Parpool.Pool.t ->
  ?jobs:int ->
  ?solvers:Portfolio.solver list ->
  dead:bool array ->
  budget_s:float ->
  Hyper.Graph.t ->
  delta
(** [solve_surviving ~dead ~budget_s h] runs {!solve} on the surviving
    machine ({!Repair.surviving_machine}).  With no surviving task or
    processor the result is the empty schedule (makespan [0.], tier
    greedy, not degraded).  Never raises on dead/infeasible structure —
    only on malformed arguments ([Invalid_argument]). *)
