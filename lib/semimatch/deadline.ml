module H = Hyper.Graph

let c_degraded = Obs.Metrics.counter "semimatch.deadline.degraded"

type tier = Tier_greedy | Tier_portfolio | Tier_exact

let tier_name = function
  | Tier_greedy -> "greedy"
  | Tier_portfolio -> "portfolio"
  | Tier_exact -> "exact"

type result = {
  assignment : Hyp_assignment.t;
  makespan : float;
  tier : tier;
  degraded : bool;
  lower_bound : float;
  portfolio : Portfolio.result option;
  elapsed_s : float;
}

(* The exact tier only runs below this many configuration combinations —
   small enough that brute force is near-instant, and small enough that the
   portfolio alone already answers every instance where its result matters. *)
let exact_space_limit = 200_000

let search_space_small h =
  let space = ref 1 in
  (try
     for v = 0 to h.H.n1 - 1 do
       space := !space * H.task_degree h v;
       if !space > exact_space_limit || !space <= 0 then raise Exit
     done
   with Exit -> ());
  !space > 0 && !space <= exact_space_limit

let emit_tier tier makespan elapsed_s =
  if Obs.is_enabled () then
    Obs.Events.emit "deadline.tier"
      [
        Obs.Events.str "tier" (tier_name tier);
        Obs.Events.num "makespan" makespan;
        Obs.Events.num "elapsed_s" elapsed_s;
      ]

let solve ?pool ?jobs ?solvers ~budget_s h =
  let start = Obs.Span.now_ns () in
  let elapsed () = Int64.to_float (Int64.sub (Obs.Span.now_ns ()) start) *. 1e-9 in
  let remaining () = budget_s -. elapsed () in
  let lower_bound = Lower_bound.multiproc_refined h in
  (* Tier 1 — the floor.  SGH is the cheapest heuristic in the library and
     runs to completion whatever the budget, so there is always a feasible
     incumbent to hand back. *)
  let greedy_asg = Greedy_hyper.run Greedy_hyper.Sorted_greedy_hyp h in
  let greedy_m = Hyp_assignment.makespan h greedy_asg in
  emit_tier Tier_greedy greedy_m (elapsed ());
  let incumbent = ref (greedy_asg, greedy_m, Tier_greedy) in
  (* Tier 2 — the portfolio under the leftover wall clock.  Ties go to the
     portfolio so an undegraded run returns its bytes unchanged. *)
  let portfolio =
    if remaining () > 0.0 && greedy_m > lower_bound then begin
      let r = Portfolio.solve ?pool ?jobs ?solvers ~timeout_s:(remaining ()) h in
      if r.Portfolio.best_makespan <= greedy_m then
        incumbent := (r.Portfolio.assignment, r.Portfolio.best_makespan, Tier_portfolio);
      emit_tier Tier_portfolio r.Portfolio.best_makespan (elapsed ());
      Some r
    end
    else None
  in
  (* Tier 3 — exact.  SINGLEPROC-UNIT instances (every configuration a
     singleton of weight 1) get the polynomial Gen_hk engine whatever their
     size; everything else falls back to brute force on tiny instances with
     budget to spare.  Gen_hk adopts only on strict improvement so that an
     undegraded run still returns the portfolio's bytes on ties. *)
  let _, best_m, _ = !incumbent in
  if remaining () > 0.0 && best_m > lower_bound then begin
    match Hyper.Graph.to_bipartite h with
    | Some g when Bipartite.Graph.is_unit_weighted g ->
        let s = Exact_unit.solve_with ~exact:Exact_unit.Gen_hk g in
        let m = float_of_int s.Exact_unit.makespan in
        if m < best_m then begin
          (* to_bipartite's contract: bipartite edge index = hyperedge
             index, so the bipartite choice is directly the hyperedge
             choice. *)
          let choice = Array.copy s.Exact_unit.assignment.Bip_assignment.edge in
          incumbent := (Hyp_assignment.of_choices h choice, m, Tier_exact)
        end;
        if Obs.is_enabled () then
          Obs.Events.emit "deadline.exact_engine"
            [ Obs.Events.str "engine" (Exact_unit.exact_engine_name Exact_unit.Gen_hk) ];
        emit_tier Tier_exact m (elapsed ())
    | _ ->
        if search_space_small h then begin
          let m, asg = Brute_force.multiproc h in
          if m <= best_m then incumbent := (asg, m, Tier_exact);
          emit_tier Tier_exact m (elapsed ())
        end
  end;
  let assignment, makespan, tier = !incumbent in
  (* Degraded: the budget cut off work that could still have improved the
     schedule — the portfolio never started, or some of its solvers were
     skipped while the incumbent sat above the lower bound. *)
  let degraded =
    makespan > lower_bound
    &&
    match portfolio with
    | None -> true
    | Some r ->
        List.exists (fun o -> o.Portfolio.o_makespan = None) r.Portfolio.outcomes
  in
  if degraded then begin
    Obs.Metrics.incr c_degraded;
    if Obs.is_enabled () then
      Obs.Events.emit ~level:Obs.Events.Warn "deadline.degraded"
        [
          Obs.Events.str "tier" (tier_name tier);
          Obs.Events.num "budget_s" budget_s;
          Obs.Events.num "makespan" makespan;
          Obs.Events.num "lower_bound" lower_bound;
        ]
  end;
  { assignment; makespan; tier; degraded; lower_bound; portfolio; elapsed_s = elapsed () }

type delta = {
  d_repair : Repair.t;
  d_tier : tier;
  d_degraded : bool;
  d_elapsed_s : float;
}

let solve_surviving ?pool ?jobs ?solvers ~dead ~budget_s h =
  let start = Obs.Span.now_ns () in
  let elapsed () = Int64.to_float (Int64.sub (Obs.Span.now_ns ()) start) *. 1e-9 in
  let feasible, infeasible = Repair.feasible_split h dead in
  let choice = Array.make h.H.n1 (-1) in
  match Repair.surviving_machine h dead ~feasible with
  | None ->
      {
        d_repair =
          {
            Repair.assignment = (if h.H.n1 = 0 then Some { Hyp_assignment.choice } else None);
            choice;
            affected = feasible;
            moved = [];
            infeasible;
            makespan = 0.0;
            lower_bound = 0.0;
            resolved_from_scratch = true;
          };
        d_tier = Tier_greedy;
        d_degraded = false;
        d_elapsed_s = elapsed ();
      }
  | Some s ->
      let res = solve ?pool ?jobs ?solvers ~budget_s s.Repair.sub in
      Repair.choice_of_sub s res.assignment choice;
      let assignment =
        if Array.for_all (fun e -> e >= 0) choice then Some (Hyp_assignment.of_choices h choice)
        else None
      in
      let moved = List.filter (fun v -> choice.(v) >= 0) feasible in
      {
        d_repair =
          {
            Repair.assignment;
            choice;
            affected = feasible;
            moved;
            infeasible;
            (* Sub-processor loads equal original-processor loads (the
               renumbering is a bijection on the survivors), so the
               sub-instance makespan is the served makespan. *)
            makespan = res.makespan;
            lower_bound = res.lower_bound;
            resolved_from_scratch = true;
          };
        d_tier = res.tier;
        d_degraded = res.degraded;
        d_elapsed_s = elapsed ();
      }
