type fault =
  | Crash of { proc : int; at : float }
  | Slowdown of { proc : int; factor : float }
  | Stall of { proc : int; at : float; dur : float }

type plan = fault list

let spec_fail fmt = Printf.ksprintf (fun msg -> failwith ("Faults: " ^ msg)) fmt

(* One token of the comma-separated spec: kind ':' payload. *)
let fault_of_token tok =
  let bad () = spec_fail "bad fault %S (want crash:P[@T], slow:PxF or stall:P@T+D)" tok in
  let int_or s = match int_of_string_opt s with Some v -> v | None -> bad () in
  let float_or s = match float_of_string_opt s with Some v -> v | None -> bad () in
  match String.index_opt tok ':' with
  | None -> bad ()
  | Some i -> (
      let kind = String.sub tok 0 i in
      let rest = String.sub tok (i + 1) (String.length tok - i - 1) in
      let split_on c s =
        match String.index_opt s c with
        | None -> None
        | Some j -> Some (String.sub s 0 j, String.sub s (j + 1) (String.length s - j - 1))
      in
      match kind with
      | "crash" -> (
          match split_on '@' rest with
          | None -> Crash { proc = int_or rest; at = 0.0 }
          | Some (p, t) -> Crash { proc = int_or p; at = float_or t })
      | "slow" -> (
          match split_on 'x' rest with
          | Some (p, f) -> Slowdown { proc = int_or p; factor = float_or f }
          | None -> bad ())
      | "stall" -> (
          match split_on '@' rest with
          | Some (p, td) -> (
              match split_on '+' td with
              | Some (t, d) -> Stall { proc = int_or p; at = float_or t; dur = float_or d }
              | None -> bad ())
          | None -> bad ())
      | _ -> bad ())

let of_string spec =
  String.split_on_char ',' spec
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> fun tokens ->
  if tokens = [] then spec_fail "empty fault spec";
  List.map fault_of_token tokens

let fault_to_string = function
  | Crash { proc; at } ->
      if at = 0.0 then Printf.sprintf "crash:%d" proc else Printf.sprintf "crash:%d@%g" proc at
  | Slowdown { proc; factor } -> Printf.sprintf "slow:%dx%g" proc factor
  | Stall { proc; at; dur } -> Printf.sprintf "stall:%d@%g+%g" proc at dur

let to_string plan = String.concat "," (List.map fault_to_string plan)

let random_crashes rng ~p ~kill_fraction =
  if not (kill_fraction >= 0.0 && kill_fraction < 1.0) then
    invalid_arg "Faults.random_crashes: kill_fraction must be in [0, 1)";
  let k = min (p - 1) (int_of_float (Float.round (kill_fraction *. float_of_int p))) in
  if k <= 0 then []
  else
    Randkit.Prng.sample_without_replacement rng ~k ~n:p
    |> Array.to_list
    |> List.sort compare
    |> List.map (fun proc -> Crash { proc; at = 0.0 })

type degradation = {
  p : int;
  dead : bool array;
  crash_at : float array;
  speed : float array;
  stalls : (float * float) array array;
}

let healthy ~p =
  {
    p;
    dead = Array.make p false;
    crash_at = Array.make p infinity;
    speed = Array.make p 1.0;
    stalls = Array.make p [||];
  }

(* Merge overlapping/adjacent windows so [finish_time] can scan linearly. *)
let merge_windows ws =
  let ws = List.sort compare ws in
  let rec go = function
    | (s1, e1) :: (s2, e2) :: rest when s2 <= e1 -> go ((s1, Float.max e1 e2) :: rest)
    | w :: rest -> w :: go rest
    | [] -> []
  in
  Array.of_list (go ws)

let degradation plan ~p =
  let d = healthy ~p in
  let windows = Array.make p [] in
  let check_proc u = if u < 0 || u >= p then spec_fail "processor %d out of range (p = %d)" u p in
  List.iter
    (fun f ->
      match f with
      | Crash { proc; at } ->
          check_proc proc;
          if at < 0.0 then spec_fail "crash time must be >= 0";
          d.dead.(proc) <- true;
          d.crash_at.(proc) <- Float.min d.crash_at.(proc) at
      | Slowdown { proc; factor } ->
          check_proc proc;
          if not (factor >= 1.0) then spec_fail "slowdown factor must be >= 1 (got %g)" factor;
          d.speed.(proc) <- d.speed.(proc) *. factor
      | Stall { proc; at; dur } ->
          check_proc proc;
          if at < 0.0 || dur < 0.0 then spec_fail "stall times must be >= 0";
          if dur > 0.0 then windows.(proc) <- (at, at +. dur) :: windows.(proc))
    plan;
  { d with stalls = Array.map merge_windows windows }

(* Work-conserving: chaining parts is equivalent to one block of their total
   stretched length, so this closed form prices whole loads and single parts
   alike ([Simulator.run_degraded] relies on that). *)
let advance d u ~from ~work =
  let t = ref from and rem = ref work in
  Array.iter
    (fun (s, e) ->
      if e > !t && !rem > 0.0 then
        if s > !t then begin
          let avail = s -. !t in
          if !rem <= avail then begin
            t := !t +. !rem;
            rem := 0.0
          end
          else begin
            rem := !rem -. avail;
            t := e
          end
        end
        else t := e)
    d.stalls.(u);
  !t +. !rem

let finish_time d u load =
  if load <= 0.0 then 0.0
  else if d.dead.(u) then infinity
  else advance d u ~from:0.0 ~work:(d.speed.(u) *. load)
