(** Divide-and-conquer optimal semi-matching in the style of
    Fakcharoenphol–Laekhanukit–Nanongkai (arXiv:1004.3363).

    The recursion keeps an interval [lo, hi] of candidate load levels and
    splits on the median m: a maximum matching under per-machine capacity m
    either covers every task — the whole sub-instance fits below m — or its
    Hall violator (everything alternately reachable from the unmatched
    tasks) isolates an overloaded half whose tasks have no edges elsewhere.
    The two halves are solved independently on disjoint machine sets, each
    with a halved interval, and no useful edge crosses the cut.  Two-level
    base cases are a single capacitated matching.

    Stitching runs the classical cost-reducing-path elimination over the
    combined schedule — flip shortest alternating paths from a maximum-load
    machine to one at least two units lighter until none remains — so the
    final schedule admits no cost-reducing path and is an optimal
    semi-matching in the strong sense of {!Gen_hk}: minimal makespan, total
    flow time and lexicographic load vector simultaneously. *)

type solution = {
  assignment : Bip_assignment.t;
  makespan : int;
  loads : int array;  (** integer per-machine loads of [assignment] *)
  total_flow_time : int;  (** minimal over all schedules *)
  matchings : int;  (** capacitated matching computations performed *)
}

val solve : Bipartite.Graph.t -> solution
(** Requires unit weights and no isolated task; raises [Invalid_argument]
    otherwise.  Deterministic: identical input bytes give identical
    assignments, independent of domains or timing. *)

val flow_time : int array -> int
(** Σ l·(l+1)/2 over a load vector. *)
