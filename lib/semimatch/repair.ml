module H = Hyper.Graph

let c_affected = Obs.Metrics.counter "semimatch.repair.affected"
let c_moved = Obs.Metrics.counter "semimatch.repair.moved"
let c_infeasible = Obs.Metrics.counter "semimatch.repair.infeasible"

type t = {
  assignment : Hyp_assignment.t option;
  choice : int array;
  affected : int list;
  moved : int list;
  infeasible : int list;
  makespan : float;
  lower_bound : float;
  resolved_from_scratch : bool;
}

let default_cost _u load = load

let edge_alive h dead e =
  let ok = ref true in
  H.iter_h_procs h e (fun u -> if dead.(u) then ok := false);
  !ok

(* Surviving configurations of a task, in input order (the greedy tie-break
   discipline of the rest of the library). *)
let surviving_edges h dead v =
  let acc = ref [] in
  H.iter_task_hyperedges h v (fun e -> if edge_alive h dead e then acc := e :: !acc);
  List.rev !acc

let check_args h dead =
  if Array.length dead <> h.H.n2 then
    invalid_arg "Repair: dead must have one slot per processor"

(* Effective makespan of a load vector under the caller's cost model.  Dead
   processors carry no load by construction, and [cost u 0. = 0.], so the
   fold is safe over the whole machine. *)
let eff_makespan cost loads =
  let m = ref 0.0 in
  Array.iteri (fun u l -> if l > 0.0 then m := Float.max !m (cost u l)) loads;
  !m

let eff_metric cost loads =
  let mx = ref 0.0 and sq = ref 0.0 in
  Array.iteri
    (fun u l ->
      if l > 0.0 then begin
        let c = cost u l in
        mx := Float.max !mx c;
        sq := !sq +. (c *. c)
      end)
    loads;
  (!mx, !sq)

let add_edge h loads e sign =
  let w = sign *. H.h_weight h e in
  H.iter_h_procs h e (fun u -> loads.(u) <- loads.(u) +. w)

(* The surviving machine as a standalone instance: feasible tasks only,
   surviving configurations only, surviving processors renumbered densely.
   [task_of] / [orig_edge] translate the sub-solution back. *)
type survivor = {
  sub : H.t;
  task_of : int array;  (* sub task id -> original task id *)
  orig_edge : int array array;  (* per sub task, k-th surviving edge's original id *)
}

let surviving_machine h dead ~feasible =
  let proc_of = Array.make h.H.n2 (-1) in
  let n_surv = ref 0 in
  Array.iteri
    (fun u d ->
      if not d then begin
        proc_of.(u) <- !n_surv;
        incr n_surv
      end)
    dead;
  if feasible = [] || !n_surv = 0 then None
  else begin
    let task_of = Array.of_list feasible in
    let n1 = Array.length task_of in
    let orig_edge = Array.make n1 [||] in
    let hyperedges = ref [] in
    for i = n1 - 1 downto 0 do
      let edges = surviving_edges h dead task_of.(i) in
      orig_edge.(i) <- Array.of_list edges;
      List.iter
        (fun e ->
          let procs = Array.map (fun u -> proc_of.(u)) (H.h_procs h e) in
          hyperedges := (i, procs, H.h_weight h e) :: !hyperedges)
        (List.rev edges)
    done;
    let sub = H.create ~n1 ~n2:!n_surv ~hyperedges:!hyperedges in
    Some { sub; task_of; orig_edge }
  end

(* Map a sub-instance assignment back to original hyperedge ids.  The
   sub-graph's hyperedges were inserted grouped by task in surviving-edge
   order, and [Graph.create] preserves relative order within a task, so the
   k-th sub-edge of sub-task [i] is [orig_edge.(i).(k)]. *)
let choice_of_sub s (asg : Hyp_assignment.t) choice =
  Array.iteri
    (fun i e ->
      let k = e - s.sub.H.task_off.(i) in
      choice.(s.task_of.(i)) <- s.orig_edge.(i).(k))
    asg.Hyp_assignment.choice

let loads_of_choice h choice =
  let loads = Array.make h.H.n2 0.0 in
  Array.iter (fun e -> if e >= 0 then add_edge h loads e 1.0) choice;
  loads

(* Greedy re-insertion: fewest surviving options first (ties by task id),
   each task onto the configuration with the cheapest resulting bottleneck
   among its own processors (ties by input order). *)
let reinsert h cost loads tasks_edges =
  let order =
    List.sort
      (fun (v1, es1) (v2, es2) ->
        match compare (List.length es1) (List.length es2) with
        | 0 -> compare v1 v2
        | c -> c)
      tasks_edges
  in
  List.map
    (fun (v, edges) ->
      let best = ref (-1) and best_cost = ref infinity in
      List.iter
        (fun e ->
          let w = H.h_weight h e in
          let bottleneck = ref 0.0 in
          H.iter_h_procs h e (fun u ->
              bottleneck := Float.max !bottleneck (cost u (loads.(u) +. w)));
          if !bottleneck < !best_cost then begin
            best_cost := !bottleneck;
            best := e
          end)
        edges;
      add_edge h loads !best 1.0;
      (v, !best))
    order

(* Warm-started local search restricted to the re-placed tasks: try every
   surviving configuration of each, accept a switch only on strict
   lexicographic improvement of (max effective load, Σ cost²). *)
let restricted_search h dead cost loads choice tasks ~max_passes =
  let improved = ref true and passes = ref 0 in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    List.iter
      (fun v ->
        let cur = choice.(v) in
        let cur_metric = eff_metric cost loads in
        let best_e = ref cur and best_metric = ref cur_metric in
        List.iter
          (fun e ->
            if e <> cur then begin
              add_edge h loads cur (-1.0);
              add_edge h loads e 1.0;
              let m = eff_metric cost loads in
              add_edge h loads e (-1.0);
              add_edge h loads cur 1.0;
              if compare m !best_metric < 0 then begin
                best_metric := m;
                best_e := e
              end
            end)
          (surviving_edges h dead v);
        if !best_e <> cur then begin
          add_edge h loads cur (-1.0);
          add_edge h loads !best_e 1.0;
          choice.(v) <- !best_e;
          improved := true
        end)
      tasks
  done

let survivor_lower_bound = function
  | None -> 0.0
  | Some s -> Lower_bound.multiproc_refined s.sub

let finish h cost ~affected ~infeasible ~resolved_from_scratch old_choice choice =
  let moved = ref [] in
  Array.iteri
    (fun v e ->
      let was = match old_choice with None -> -1 | Some old -> old.(v) in
      if e >= 0 && e <> was then moved := v :: !moved)
    choice;
  let moved = List.rev !moved in
  let makespan = eff_makespan cost (loads_of_choice h choice) in
  let assignment =
    if Array.for_all (fun e -> e >= 0) choice then Some (Hyp_assignment.of_choices h choice)
    else None
  in
  Obs.Metrics.add c_moved (List.length moved);
  {
    assignment;
    choice;
    affected;
    moved;
    infeasible;
    makespan;
    lower_bound = 0.0;
    resolved_from_scratch;
  }

let feasible_split h dead =
  check_args h dead;
  let feasible = ref [] and infeasible = ref [] in
  for v = h.H.n1 - 1 downto 0 do
    if surviving_edges h dead v = [] then infeasible := v :: !infeasible
    else feasible := v :: !feasible
  done;
  (!feasible, !infeasible)

let resolve ?(cost = default_cost) ~dead h =
  let feasible, infeasible = feasible_split h dead in
  let feasible = ref feasible and infeasible = ref infeasible in
  let machine = surviving_machine h dead ~feasible:!feasible in
  let choice = Array.make h.H.n1 (-1) in
  (match machine with
  | None -> ()
  | Some s ->
      let asg = Greedy_hyper.run Greedy_hyper.Expected_vector_greedy_hyp s.sub in
      choice_of_sub s asg choice);
  let t =
    finish h cost ~affected:!feasible ~infeasible:!infeasible ~resolved_from_scratch:true None
      choice
  in
  { t with lower_bound = survivor_lower_bound machine }

let c_placed = Obs.Metrics.counter "semimatch.repair.placed"

(* Delta application: (re-)place exactly the listed tasks against the loads
   implied by the rest of [choice].  Purely incremental — no from-scratch
   safety net; the scheduler service pairs this with a periodic
   [Deadline.solve_surviving] instead. *)
let place ?(max_passes = 8) ?(cost = default_cost) ?dead ~tasks h choice =
  let dead = match dead with Some d -> d | None -> Array.make h.H.n2 false in
  check_args h dead;
  if Array.length choice <> h.H.n1 then
    invalid_arg "Repair.place: choice must have one slot per task";
  let listed = Array.make (Int.max 1 h.H.n1) false in
  List.iter
    (fun v ->
      if v < 0 || v >= h.H.n1 then invalid_arg "Repair.place: task out of range";
      listed.(v) <- true)
    tasks;
  Array.iteri
    (fun v e ->
      if (not listed.(v)) && e >= 0 then
        if e >= H.num_hyperedges h || H.h_task h e <> v then
          invalid_arg "Repair.place: choice slot is not a hyperedge of its task")
    choice;
  let affected = List.sort_uniq compare tasks in
  let to_place = ref [] in
  List.iter
    (fun v ->
      match surviving_edges h dead v with
      | [] -> ()
      | edges -> to_place := (v, edges) :: !to_place)
    (List.rev affected);
  let old = Array.copy choice in
  let choice = Array.copy choice in
  List.iter (fun v -> choice.(v) <- -1) affected;
  let loads = loads_of_choice h choice in
  let placed = reinsert h cost loads !to_place in
  List.iter (fun (v, e) -> choice.(v) <- e) placed;
  restricted_search h dead cost loads choice (List.map fst placed) ~max_passes;
  (* Infeasible: every slot still unplaced — listed tasks with no surviving
     configuration and carried-over unplaced ones alike. *)
  let infeasible = ref [] in
  for v = h.H.n1 - 1 downto 0 do
    if choice.(v) < 0 then infeasible := v :: !infeasible
  done;
  let infeasible = !infeasible in
  Obs.Metrics.add c_placed (List.length placed);
  if Obs.is_enabled () then
    Obs.Events.emit "repair.place"
      [
        Obs.Events.int "tasks" (List.length affected);
        Obs.Events.int "placed" (List.length placed);
        Obs.Events.int "infeasible" (List.length infeasible);
      ];
  let t = finish h cost ~affected ~infeasible ~resolved_from_scratch:false (Some old) choice in
  let feasible = List.filter (fun v -> choice.(v) >= 0) (List.init h.H.n1 Fun.id) in
  { t with lower_bound = survivor_lower_bound (surviving_machine h dead ~feasible) }

let repair ?(max_passes = 8) ?(cost = default_cost) ~dead h (a : Hyp_assignment.t) =
  check_args h dead;
  if not (Hyp_assignment.is_valid h a) then invalid_arg "Repair.repair: invalid assignment";
  let old = a.Hyp_assignment.choice in
  (* Partition the tasks: affected ones sit on a dead processor; of those,
     the feasible ones have some surviving configuration to move to. *)
  let affected = ref [] and infeasible = ref [] and to_place = ref [] in
  for v = h.H.n1 - 1 downto 0 do
    if not (edge_alive h dead old.(v)) then begin
      affected := v :: !affected;
      match surviving_edges h dead v with
      | [] -> infeasible := v :: !infeasible
      | edges -> to_place := (v, edges) :: !to_place
    end
  done;
  let affected = !affected and infeasible = !infeasible in
  Obs.Metrics.add c_affected (List.length affected);
  Obs.Metrics.add c_infeasible (List.length infeasible);
  if Obs.is_enabled () then begin
    Obs.Events.emit "repair.start"
      [
        Obs.Events.int "affected" (List.length affected);
        Obs.Events.int "infeasible" (List.length infeasible);
      ];
    if infeasible <> [] then
      Obs.Events.emit ~level:Obs.Events.Warn "repair.infeasible"
        [ Obs.Events.int "tasks" (List.length infeasible) ]
  end;
  (* Incremental candidate: keep the unaffected placements, greedily
     re-insert the displaced tasks, then polish only those. *)
  let choice = Array.copy old in
  List.iter (fun v -> choice.(v) <- -1) affected;
  let loads = loads_of_choice h choice in
  let placed = reinsert h cost loads !to_place in
  List.iter (fun (v, e) -> choice.(v) <- e) placed;
  restricted_search h dead cost loads choice (List.map fst placed) ~max_passes;
  let incremental = eff_makespan cost loads in
  (* Safety net: the from-scratch re-solve on the surviving machine.  Repair
     must never lose to it, so take whichever schedule prices better. *)
  let scratch = resolve ~cost ~dead h in
  let final =
    if scratch.makespan < incremental then
      finish h cost ~affected ~infeasible ~resolved_from_scratch:true (Some old) scratch.choice
    else finish h cost ~affected ~infeasible ~resolved_from_scratch:false (Some old) choice
  in
  let final = { final with lower_bound = scratch.lower_bound } in
  if Obs.is_enabled () then
    Obs.Events.emit "repair.done"
      [
        Obs.Events.num "makespan" final.makespan;
        Obs.Events.int "moved" (List.length final.moved);
        Obs.Events.bool "resolved_from_scratch" final.resolved_from_scratch;
        Obs.Events.num "lower_bound" final.lower_bound;
      ];
  final
