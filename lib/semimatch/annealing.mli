(** Simulated annealing over configuration choices (extension, in the spirit
    of the paper's "design new algorithms" future work).

    The state is a complete assignment; a move re-routes one uniformly random
    task to a uniformly random alternative configuration.  Energy is the
    squared-load sum Σ l(u)² — a smooth surrogate whose minimum coincides
    with well-balanced schedules and which, unlike the raw makespan, gives
    gradient even when the bottleneck processor is untouched.  Moves are
    accepted by the Metropolis rule under a geometric cooling schedule; the
    best-seen assignment by {e makespan} is returned, so the result is never
    worse than the starting point. *)

type params = {
  iterations : int;  (** total proposed moves (default 20_000) *)
  initial_temperature : float;
      (** in energy units; default: average squared hyperedge weight *)
  cooling : float;  (** geometric factor per iteration (default 0.9995) *)
}

val default_params : Hyper.Graph.t -> params

val refine :
  ?params:params ->
  ?should_stop:(unit -> bool) ->
  Randkit.Prng.t ->
  Hyper.Graph.t ->
  Hyp_assignment.t ->
  Hyp_assignment.t * float
(** [refine rng h start] returns the best assignment found and its makespan.
    Deterministic in (rng seed, params, start) when [should_stop] never
    fires.  [should_stop] (default never) is polled every few hundred
    iterations; once it returns true the loop ends early and the best-seen
    assignment is returned — {!Portfolio} uses this for cancellation and
    for cutoff once a sibling solver has already matched the lower bound. *)

val solve :
  ?params:params ->
  ?should_stop:(unit -> bool) ->
  Randkit.Prng.t ->
  Hyper.Graph.t ->
  Hyp_assignment.t * float
(** [refine] starting from sorted-greedy-hyp. *)
