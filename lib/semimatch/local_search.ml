module H = Hyper.Graph

(* Probe points: [rounds] = full passes over the tasks (the refinement-round
   count reports quote), [moves] = accepted improvements, [candidates] =
   evaluated moves — acceptance rate is moves/candidates. *)
let c_rounds = Obs.Metrics.counter "semimatch.local_search.rounds"
let c_moves = Obs.Metrics.counter "semimatch.local_search.moves"
let c_candidates = Obs.Metrics.counter "semimatch.local_search.candidates"

(* A move takes task v from hyperedge e_old to e_new.  Its delta touches the
   processors of both configurations: −w_old on e_old's, +w_new on e_new's,
   summed per processor when the sets overlap. *)
let move_delta h ~stamp ~index_of ~v ~e_old ~e_new =
  let union = Ds.Vec.create () in
  let touch e =
    H.iter_h_procs h e (fun u ->
        if stamp.(u) <> v then begin
          stamp.(u) <- v;
          index_of.(u) <- Ds.Vec.length union;
          Ds.Vec.push union u
        end)
  in
  touch e_old;
  touch e_new;
  let procs = Ds.Vec.to_array union in
  let amounts = Array.make (Array.length procs) 0.0 in
  let w_old = H.h_weight h e_old and w_new = H.h_weight h e_new in
  H.iter_h_procs h e_old (fun u -> amounts.(index_of.(u)) <- amounts.(index_of.(u)) -. w_old);
  H.iter_h_procs h e_new (fun u -> amounts.(index_of.(u)) <- amounts.(index_of.(u)) +. w_new);
  (procs, amounts)

let refine ?(max_passes = 50) h a =
  if max_passes < 0 then invalid_arg "Local_search.refine: negative pass budget";
  let choice = Array.copy a.Hyp_assignment.choice in
  let lv = Ds.Load_vector.create h.H.n2 in
  Array.iter
    (fun e -> Ds.Load_vector.apply lv ~procs:(H.h_procs h e) ~w:(H.h_weight h e))
    choice;
  let stamp = Array.make h.H.n2 (-1) and index_of = Array.make h.H.n2 (-1) in
  let no_move = ([||], [||]) in
  let moves = ref 0 in
  let pass_no = ref 0 in
  let pass () =
    Obs.Metrics.incr c_rounds;
    incr pass_no;
    let moves_before = !moves in
    let improved = ref false in
    for v = 0 to h.H.n1 - 1 do
      (* Greedily accept moves while v still improves; the stamp trick needs
         a fresh marker per evaluation, so reuse task id by re-stamping. *)
      let e_old = choice.(v) in
      let best = ref e_old and best_delta = ref no_move in
      H.iter_task_hyperedges h v (fun e_new ->
          if e_new <> e_old then begin
            Obs.Metrics.incr c_candidates;
            let cand = move_delta h ~stamp ~index_of ~v ~e_old ~e_new in
            let reference = if !best = e_old then no_move else !best_delta in
            if Ds.Load_vector.compare_hypothetical_delta lv ~a:cand ~b:reference < 0 then begin
              best := e_new;
              best_delta := cand
            end;
            (* Invalidate stamps so the next candidate rebuilds its union. *)
            Array.iter (fun u -> stamp.(u) <- -1) (fst cand)
          end);
      if !best <> e_old then begin
        let procs, amounts = !best_delta in
        Ds.Load_vector.apply_delta lv ~procs ~amounts;
        choice.(v) <- !best;
        incr moves;
        Obs.Metrics.incr c_moves;
        improved := true
      end
    done;
    (* One event per full pass over the tasks: coarse enough for any
       instance size, yet it shows the improvement tail flatten. *)
    if Obs.is_enabled () then
      Obs.Events.emit ~level:Obs.Events.Debug "local_search.pass"
        [
          Obs.Events.int "pass" !pass_no;
          Obs.Events.int "moves" (!moves - moves_before);
          Obs.Events.bool "improved" !improved;
        ];
    !improved
  in
  let rec loop remaining = if remaining > 0 && pass () then loop (remaining - 1) in
  loop max_passes;
  (Hyp_assignment.of_choices h choice, !moves)

let refine_bipartite ?max_passes g a =
  let h = H.of_bipartite g in
  (* The embedding lists one singleton hyperedge per bipartite edge in the
     same order, so edge ids and hyperedge ids coincide. *)
  let start = Hyp_assignment.of_choices h a.Bip_assignment.edge in
  let refined, moves = refine ?max_passes h start in
  (Bip_assignment.of_edges g refined.Hyp_assignment.choice, moves)
