module H = Hyper.Graph

(* Probe points shared by the four greedy variants: [candidates] counts
   configuration evaluations (the outer work term), [pin_scans] the
   processor touches inside them (the inner term ~ sum of |h∩V2| over
   evaluated h).  Load-vector traffic of VGH/EVG lands in ds.loadvec.*. *)
let c_candidates = Obs.Metrics.counter "semimatch.greedy.candidates"
let c_pin_scans = Obs.Metrics.counter "semimatch.greedy.pin_scans"
let c_realized = Obs.Metrics.counter "semimatch.greedy.realized"

type algorithm =
  | Sorted_greedy_hyp
  | Expected_greedy_hyp
  | Vector_greedy_hyp
  | Expected_vector_greedy_hyp

type vector_variant = Naive | Merged

let all = [ Sorted_greedy_hyp; Expected_greedy_hyp; Vector_greedy_hyp; Expected_vector_greedy_hyp ]

let name = function
  | Sorted_greedy_hyp -> "sorted-greedy-hyp"
  | Expected_greedy_hyp -> "expected-greedy-hyp"
  | Vector_greedy_hyp -> "vector-greedy-hyp"
  | Expected_vector_greedy_hyp -> "expected-vector-greedy-hyp"

let short_name = function
  | Sorted_greedy_hyp -> "SGH"
  | Expected_greedy_hyp -> "EGH"
  | Vector_greedy_hyp -> "VGH"
  | Expected_vector_greedy_hyp -> "EVG"

let check h =
  if H.has_isolated_task h then invalid_arg "Greedy_hyper: task with no configuration"

let degree_order h =
  Ds.Counting_sort.permutation ~n:h.H.n1 ~key:(fun v -> H.task_degree h v)
    ~max_key:(max 1 (H.max_task_degree h))

(* Algorithm 4.  The bottleneck of realizing h is max_{u∈h}(l(u) + w_h);
   on unit weights this order coincides with the paper's max l(u). *)
let run_sorted h =
  let l = Array.make h.H.n2 0.0 in
  let choice = Array.make h.H.n1 (-1) in
  Array.iter
    (fun v ->
      let best = ref (-1) and best_key = ref infinity in
      H.iter_task_hyperedges h v (fun e ->
          Obs.Metrics.incr c_candidates;
          let w = H.h_weight h e in
          let bottleneck = ref 0.0 in
          H.iter_h_procs h e (fun u ->
              Obs.Metrics.incr c_pin_scans;
              if l.(u) > !bottleneck then bottleneck := l.(u));
          let key = !bottleneck +. w in
          if key < !best_key then begin
            best := e;
            best_key := key
          end);
      choice.(v) <- !best;
      Obs.Metrics.incr c_realized;
      let w = H.h_weight h !best in
      H.iter_h_procs h !best (fun u -> l.(u) <- l.(u) +. w))
    (degree_order h);
  choice

(* Algorithm 5.  o(u) carries the expected load of u; realizing h converts
   its expectation w_h/d_v into the full w_h and cancels the siblings'. *)
let run_expected h =
  let o = Array.make h.H.n2 0.0 in
  for v = 0 to h.H.n1 - 1 do
    let dv = float_of_int (H.task_degree h v) in
    H.iter_task_hyperedges h v (fun e ->
        let contribution = H.h_weight h e /. dv in
        H.iter_h_procs h e (fun u -> o.(u) <- o.(u) +. contribution))
  done;
  let choice = Array.make h.H.n1 (-1) in
  Array.iter
    (fun v ->
      let dv = float_of_int (H.task_degree h v) in
      let best = ref (-1) and best_key = ref infinity in
      H.iter_task_hyperedges h v (fun e ->
          (* Expected bottleneck if h were realized: every u ∈ h would carry
             o(u) + w_h − w_h/d_v.  On unit weights the added term is the
             same for all of v's options, so this order coincides with
             Algorithm 5's literal "max o(u) minimum"; on weighted instances
             it accounts for the candidate's own cost, mirroring the
             tentative realization that defines EVG (Sec. IV-D4). *)
          Obs.Metrics.incr c_candidates;
          let w = H.h_weight h e in
          let key = ref 0.0 in
          H.iter_h_procs h e (fun u ->
              Obs.Metrics.incr c_pin_scans;
              if o.(u) > !key then key := o.(u));
          let key = !key +. w -. (w /. dv) in
          if key < !best_key then begin
            best := e;
            best_key := key
          end);
      choice.(v) <- !best;
      Obs.Metrics.incr c_realized;
      let chosen = !best in
      let w = H.h_weight h chosen in
      H.iter_h_procs h chosen (fun u -> o.(u) <- o.(u) +. w -. (w /. dv));
      H.iter_task_hyperedges h v (fun e ->
          if e <> chosen then begin
            let w' = H.h_weight h e in
            H.iter_h_procs h e (fun u -> o.(u) <- o.(u) -. (w' /. dv))
          end))
    (degree_order h);
  choice

(* Uniform-increment candidate comparison for VGH, per variant. *)
let better_uniform ~variant lv ~cand:(procs, w) ~best:(bprocs, bw) =
  match variant with
  | Merged -> Ds.Load_vector.compare_hypothetical lv ~a:(procs, w) ~b:(bprocs, bw) < 0
  | Naive ->
      let va = Ds.Load_vector.hypothetical_sorted lv ~procs ~w in
      let vb = Ds.Load_vector.hypothetical_sorted lv ~procs:bprocs ~w:bw in
      compare va vb < 0

let run_vector ~variant h =
  let lv = Ds.Load_vector.create h.H.n2 in
  let choice = Array.make h.H.n1 (-1) in
  Array.iter
    (fun v ->
      let best = ref (-1) and best_cand = ref ([||], 0.0) in
      H.iter_task_hyperedges h v (fun e ->
          Obs.Metrics.incr c_candidates;
          let cand = (H.h_procs h e, H.h_weight h e) in
          if !best < 0 || better_uniform ~variant lv ~cand ~best:!best_cand then begin
            best := e;
            best_cand := cand
          end);
      choice.(v) <- !best;
      Obs.Metrics.incr c_realized;
      let procs, w = !best_cand in
      Ds.Load_vector.apply lv ~procs ~w)
    (degree_order h);
  choice

let better_delta ~variant lv ~cand ~best =
  match variant with
  | Merged -> Ds.Load_vector.compare_hypothetical_delta lv ~a:cand ~b:best < 0
  | Naive ->
      let procs_a, am_a = cand and procs_b, am_b = best in
      let va = Ds.Load_vector.hypothetical_sorted_delta lv ~procs:procs_a ~amounts:am_a in
      let vb = Ds.Load_vector.hypothetical_sorted_delta lv ~procs:procs_b ~amounts:am_b in
      compare va vb < 0

(* EVG: the load vector holds *expected* loads.  For task v, every candidate
   h perturbs the processors in v's whole neighbourhood: −w_h'/d_v for each
   sibling option h' (tentatively discarded) and additionally +w_h on h's own
   processors (tentatively realized). *)
let run_expected_vector ~variant h =
  let lv = Ds.Load_vector.create h.H.n2 in
  (* Initial expectations, as in Algorithm 5. *)
  let o0 = Array.make h.H.n2 0.0 in
  for v = 0 to h.H.n1 - 1 do
    let dv = float_of_int (H.task_degree h v) in
    H.iter_task_hyperedges h v (fun e ->
        let contribution = H.h_weight h e /. dv in
        H.iter_h_procs h e (fun u -> o0.(u) <- o0.(u) +. contribution))
  done;
  for u = 0 to h.H.n2 - 1 do
    if o0.(u) <> 0.0 then Ds.Load_vector.add lv ~proc:u ~w:o0.(u)
  done;
  (* Scratch space to aggregate per-processor deltas of one task. *)
  let stamp = Array.make h.H.n2 (-1) in
  let index_of = Array.make h.H.n2 (-1) in
  let choice = Array.make h.H.n1 (-1) in
  Array.iter
    (fun v ->
      let dv = float_of_int (H.task_degree h v) in
      (* Union of processors across v's configurations, with the "discard
         everything" base delta. *)
      let union = Ds.Vec.create () in
      H.iter_task_hyperedges h v (fun e ->
          H.iter_h_procs h e (fun u ->
              if stamp.(u) <> v then begin
                stamp.(u) <- v;
                index_of.(u) <- Ds.Vec.length union;
                Ds.Vec.push union u
              end));
      let procs = Ds.Vec.to_array union in
      let base = Array.make (Array.length procs) 0.0 in
      H.iter_task_hyperedges h v (fun e ->
          let w' = H.h_weight h e /. dv in
          H.iter_h_procs h e (fun u -> base.(index_of.(u)) <- base.(index_of.(u)) -. w'));
      let candidate e =
        let amounts = Array.copy base in
        let w = H.h_weight h e in
        H.iter_h_procs h e (fun u -> amounts.(index_of.(u)) <- amounts.(index_of.(u)) +. w);
        (procs, amounts)
      in
      let best = ref (-1) and best_cand = ref (procs, base) in
      H.iter_task_hyperedges h v (fun e ->
          Obs.Metrics.incr c_candidates;
          let cand = candidate e in
          if !best < 0 || better_delta ~variant lv ~cand ~best:!best_cand then begin
            best := e;
            best_cand := cand
          end);
      choice.(v) <- !best;
      Obs.Metrics.incr c_realized;
      let bprocs, bamounts = !best_cand in
      Ds.Load_vector.apply_delta lv ~procs:bprocs ~amounts:bamounts)
    (degree_order h);
  choice

let run ?(vector_variant = Merged) algorithm h =
  check h;
  let choice =
    match algorithm with
    | Sorted_greedy_hyp -> run_sorted h
    | Expected_greedy_hyp -> run_expected h
    | Vector_greedy_hyp -> run_vector ~variant:vector_variant h
    | Expected_vector_greedy_hyp -> run_expected_vector ~variant:vector_variant h
  in
  Hyp_assignment.of_choices h choice

let makespan ?vector_variant algorithm h =
  Hyp_assignment.makespan h (run ?vector_variant algorithm h)
