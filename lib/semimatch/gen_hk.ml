module G = Bipartite.Graph

(* Probe points mirror the Hopcroft–Karp matching engine: phases (one layered
   BFS each), completed cost-reducing augmentations, frozen level regions,
   and the distribution of augmenting-path lengths in graph edges. *)
let c_phases = Obs.Metrics.counter "semimatch.genhk.phases"
let c_augmentations = Obs.Metrics.counter "semimatch.genhk.augmentations"
let c_freezes = Obs.Metrics.counter "semimatch.genhk.freezes"
let h_path_len = Obs.Metrics.histogram "semimatch.genhk.aug_path_len"

type solution = {
  assignment : Bip_assignment.t;
  makespan : int;
  loads : int array;
  total_flow_time : int;
  phases : int;
}

let flow_time loads = Array.fold_left (fun acc l -> acc + (l * (l + 1) / 2)) 0 loads

let check g =
  if not (G.is_unit_weighted g) then invalid_arg "Gen_hk: weights must all be 1";
  if G.has_isolated_task g then invalid_arg "Gen_hk: task with no allowed processor";
  if g.G.n1 > 0 && g.G.n2 = 0 then invalid_arg "Gen_hk: no processors"

type state = {
  g : G.t;
  mate : int array; (* task -> chosen edge *)
  loads : int array;
  assigned : int Ds.Vec.t array; (* machine -> tasks currently on it *)
  active : bool array; (* false once the machine's level region is frozen *)
  dist : int array; (* machine -> BFS layer this phase *)
  stamp : int array; (* machine -> phase that wrote [dist] *)
  used : int array; (* machine -> phase that consumed it for a path *)
  queue : int Queue.t;
  reached : int Ds.Vec.t; (* machines discovered by the current BFS *)
}

let remove_from st u v =
  let occ = st.assigned.(u) in
  let n = Ds.Vec.length occ in
  let rec go i =
    if Ds.Vec.get occ i = v then begin
      Ds.Vec.set occ i (Ds.Vec.get occ (n - 1));
      ignore (Ds.Vec.pop occ)
    end
    else go (i + 1)
  in
  go 0

(* Deterministic greedy start: tasks by non-decreasing degree (constrained
   ones first), each onto its least-loaded allowed machine, ties to the
   lowest machine index.  Same seeding idea as the matching engines'
   [greedy_init]; only the invariant differs (a full semi-matching rather
   than a partial matching). *)
let greedy_init st =
  let g = st.g in
  let order =
    Ds.Counting_sort.permutation ~n:g.G.n1 ~key:(G.degree g) ~max_key:(G.max_degree g)
  in
  Array.iter
    (fun v ->
      let best_e = ref (-1) and best_u = ref (-1) in
      G.fold_neighbors g v ~init:() ~f:(fun () ~edge u _w ->
          if !best_u < 0 || st.loads.(u) < st.loads.(!best_u) then begin
            best_u := u;
            best_e := edge
          end);
      st.mate.(v) <- !best_e;
      st.loads.(!best_u) <- st.loads.(!best_u) + 1;
      Ds.Vec.push st.assigned.(!best_u) v)
    order

(* One layered BFS from every active machine of load [lmax].  Writes
   [dist]/[reached]; returns the layer of the nearest active machine with
   load <= lmax - 2, or -1 when no cost-reducing path leaves the sources'
   region.  Layers beyond the first target layer are not expanded, so the
   subsequent DFS walks shortest paths only. *)
let bfs st ~phase ~lmax =
  let g = st.g in
  Queue.clear st.queue;
  Ds.Vec.clear st.reached;
  for u = 0 to g.G.n2 - 1 do
    if st.active.(u) && st.loads.(u) = lmax then begin
      st.dist.(u) <- 0;
      st.stamp.(u) <- phase;
      Ds.Vec.push st.reached u;
      Queue.add u st.queue
    end
  done;
  let found = ref (-1) in
  while not (Queue.is_empty st.queue) do
    let u = Queue.pop st.queue in
    let d = st.dist.(u) in
    if !found < 0 || d < !found then
      Ds.Vec.iter
        (fun v ->
          G.iter_neighbors g v (fun u' _w ->
              if st.active.(u') && st.stamp.(u') <> phase then begin
                st.stamp.(u') <- phase;
                st.dist.(u') <- d + 1;
                Ds.Vec.push st.reached u';
                if !found < 0 && st.loads.(u') <= lmax - 2 then found := d + 1;
                Queue.add u' st.queue
              end))
        st.assigned.(u)
  done;
  !found

(* Layered DFS down the BFS levels: from a load-lmax source, follow
   dist-increasing edges through machines not yet consumed this phase, and
   stop at layer [found] on a machine whose load is still <= lmax - 2
   (augmentations earlier in the phase may have filled a target).  On
   success every visited machine hands one task to its successor — post-
   order, so an intermediate machine gives a task away before receiving
   one — which decrements the source, increments the terminal and leaves
   every load in between unchanged.  Machines are consumed whether the
   probe succeeded or failed (vertex-disjoint paths, dead ends pruned), so
   a phase is linear in the edges it touches. *)
let rec dfs st ~phase ~lmax ~found u =
  st.used.(u) <- phase;
  if st.dist.(u) = found then st.loads.(u) <= lmax - 2
  else begin
    let moved = ref false in
    let occ = st.assigned.(u) in
    let i = ref 0 in
    while (not !moved) && !i < Ds.Vec.length occ do
      let v = Ds.Vec.get occ !i in
      G.fold_neighbors st.g v ~init:() ~f:(fun () ~edge u' _w ->
          if
            (not !moved)
            && st.active.(u')
            && st.stamp.(u') = phase
            && st.dist.(u') = st.dist.(u) + 1
            && st.used.(u') <> phase
            && dfs st ~phase ~lmax ~found u'
          then begin
            remove_from st u v;
            st.mate.(v) <- edge;
            Ds.Vec.push st.assigned.(u') v;
            st.loads.(u) <- st.loads.(u) - 1;
            st.loads.(u') <- st.loads.(u') + 1;
            moved := true
          end);
      incr i
    done;
    !moved
  end

let solve g =
  check g;
  let st =
    {
      g;
      mate = Array.make g.G.n1 (-1);
      loads = Array.make g.G.n2 0;
      assigned = Array.init g.G.n2 (fun _ -> Ds.Vec.create ());
      active = Array.make g.G.n2 true;
      dist = Array.make g.G.n2 0;
      stamp = Array.make g.G.n2 (-1);
      used = Array.make g.G.n2 (-1);
      queue = Queue.create ();
      reached = Ds.Vec.create ();
    }
  in
  if g.G.n1 > 0 then greedy_init st;
  let phases = ref 0 in
  let running = ref true in
  while !running do
    let lmax = ref 0 in
    for u = 0 to g.G.n2 - 1 do
      if st.active.(u) && st.loads.(u) > !lmax then lmax := st.loads.(u)
    done;
    (* Loads 0 and 1 admit no cost-reducing path (a target would need load
       <= lmax - 2 < 0), so the remaining region is already settled. *)
    if !lmax <= 1 then running := false
    else begin
      incr phases;
      Obs.Metrics.incr c_phases;
      let phase = !phases in
      let found = bfs st ~phase ~lmax:!lmax in
      if found < 0 then begin
        (* No shortest cost-reducing path leaves the set reachable from the
           max-load machines: every reached machine carries lmax-1 or lmax
           and the tasks on them have all their edges inside the set, so its
           two-level distribution is forced.  Freeze the region; the
           remaining active machines all sit below lmax. *)
        Obs.Metrics.incr c_freezes;
        if Obs.is_enabled () then
          Obs.Events.emit "genhk.freeze"
            [
              Obs.Events.int "level" !lmax;
              Obs.Events.int "machines" (Ds.Vec.length st.reached);
            ];
        Ds.Vec.iter (fun u -> st.active.(u) <- false) st.reached
      end
      else
        for u = 0 to g.G.n2 - 1 do
          if
            st.active.(u)
            && st.stamp.(u) = phase
            && st.dist.(u) = 0
            && st.used.(u) <> phase
            && st.loads.(u) = !lmax
            && dfs st ~phase ~lmax:!lmax ~found u
          then begin
            Obs.Metrics.incr c_augmentations;
            (* [found] machine hops = 2*found graph edges per path. *)
            Obs.Metrics.observe h_path_len (float_of_int (2 * found))
          end
        done
    end
  done;
  {
    assignment = Bip_assignment.of_edges g st.mate;
    makespan = Array.fold_left max 0 st.loads;
    loads = st.loads;
    total_flow_time = flow_time st.loads;
    phases = !phases;
  }
