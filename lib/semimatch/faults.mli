(** Seeded machine-fault plans and the degraded-machine model they induce.

    A fault plan is a list of processor-level incidents: permanent crashes,
    permanent slowdowns, and transient stalls.  {!degradation} folds a plan
    into the static per-processor view the rest of the stack consumes — a
    dead set for {!Repair} to avoid, a speed factor and pause windows for
    {!finish_time} to price — while the event-level consequences (which
    parts are lost at a crash) stay with [Simulator.run_degraded].

    The textual spec grammar (CLI [--faults], comma-separated):
    {v
    crash:P[@T]     processor P fails at time T (default 0)
    slow:PxF        P runs F times slower, permanently (F >= 1)
    stall:P@T+D     P is unavailable during [T, T+D)
    v} *)

type fault =
  | Crash of { proc : int; at : float }
  | Slowdown of { proc : int; factor : float }
  | Stall of { proc : int; at : float; dur : float }

type plan = fault list

val of_string : string -> plan
(** Parse the spec grammar above.  Raises [Failure] with a one-line message
    on malformed input (processor ranges are checked later, by
    {!degradation}, which knows the machine size). *)

val to_string : plan -> string
(** Inverse of {!of_string} (canonical form). *)

val random_crashes : Randkit.Prng.t -> p:int -> kill_fraction:float -> plan
(** [kill_fraction] of the [p] processors crash at time 0; the victim set is
    drawn without replacement from the given generator, so plans are
    reproducible per seed.  At least one processor always survives.
    Raises [Invalid_argument] unless [0 <= kill_fraction < 1]. *)

type degradation = {
  p : int;
  dead : bool array;  (** crashed processors, whatever the crash time *)
  crash_at : float array;  (** crash instant; [infinity] for healthy procs *)
  speed : float array;  (** cumulative slowdown factor, [>= 1.] *)
  stalls : (float * float) array array;
      (** per-processor pause windows [(start, stop)], merged and sorted *)
}

val degradation : plan -> p:int -> degradation
(** Fold a plan into the static view.  Multiple slowdowns of one processor
    multiply; overlapping stall windows are merged.  Raises [Failure] on
    out-of-range processors, factors below 1, or negative times. *)

val healthy : p:int -> degradation
(** No faults at all (identity speeds, no stalls). *)

val advance : degradation -> int -> from:float -> work:float -> float
(** [advance d u ~from ~work] is the instant at which [work] seconds of
    {e already-stretched} processing started at [from] on processor [u]
    completes, pausing across the stall windows it meets.  Work-conserving:
    chaining [advance] over consecutive parts equals one call on their sum,
    which is why {!finish_time} prices whole loads.  Crash times are {e not}
    consulted — the caller decides what a crash means for in-flight work. *)

val finish_time : degradation -> int -> float -> float
(** [finish_time d u load] is the completion time of [load] units of raw
    work started at time 0 on processor [u]: the work is stretched by
    [speed.(u)] and paused across every stall window it meets.  [0.] when
    [load = 0.]; [infinity] when [u] is dead and [load > 0.] — dead
    processors never finish anything, which is exactly the cost
    {!Repair.repair} needs to price dead placements out.  This closed form
    equals the event-level finish of [Simulator.run_degraded] for any
    per-processor part order, because parts run back-to-back. *)
