(** Generalized Hopcroft–Karp for optimal semi-matchings (Katrenič &
    Semanišin, arXiv:1103.1091).

    Starting from a greedy semi-matching, each phase runs one layered BFS
    from {e every} maximum-load machine and then augments along a maximal
    set of vertex-disjoint {e shortest cost-reducing paths} — alternating
    paths from a machine of load L to a machine of load at most L−2, whose
    flip moves one task per hop, lowering the source by one unit and raising
    the terminal by one with every load in between unchanged.  When no
    cost-reducing path leaves the region reachable from the maximum level,
    that region is provably settled (its loads are two adjacent values and
    its tasks' edges stay inside it) and is frozen out of later phases.

    The result admits no cost-reducing path at all, which by Harvey et al.'s
    characterization makes it an {e optimal} semi-matching: it simultaneously
    minimizes every symmetric convex cost of the load vector — the makespan,
    the total flow time Σ l(l+1)/2, and the lexicographic order of the
    sorted load vector.  This is strictly stronger than the
    makespan-optimality certified by {!Exact_unit.solve}'s binary search. *)

type solution = {
  assignment : Bip_assignment.t;
  makespan : int;
  loads : int array;  (** integer per-machine loads of [assignment] *)
  total_flow_time : int;  (** Σ_u l(u)·(l(u)+1)/2, minimal over all schedules *)
  phases : int;  (** layered BFS rounds, including freeze rounds *)
}

val solve : Bipartite.Graph.t -> solution
(** Requires unit weights and no isolated task; raises [Invalid_argument]
    otherwise.  Deterministic: identical input bytes give identical
    assignments, independent of domains or timing. *)

val flow_time : int array -> int
(** Σ l·(l+1)/2 over a load vector. *)
