module G = Bipartite.Graph

(* Probe point: edges examined — every SINGLEPROC greedy variant is a
   single pass touching each allowed (task, processor) edge a constant
   number of times, so this counter ≈ |E| per run. *)
let c_edge_scans = Obs.Metrics.counter "semimatch.greedy_bip.edge_scans"

type algorithm = Basic | Sorted | Double_sorted | Expected | Heaviest_first

let all = [ Basic; Sorted; Double_sorted; Expected ]
let all_weighted = all @ [ Heaviest_first ]

let name = function
  | Basic -> "basic-greedy"
  | Sorted -> "sorted-greedy"
  | Double_sorted -> "double-sorted"
  | Expected -> "expected-greedy"
  | Heaviest_first -> "heaviest-first"

let check g = if G.has_isolated_task g then invalid_arg "Greedy_bipartite: task with no allowed processor"

let degree_order g =
  Ds.Counting_sort.permutation ~n:g.G.n1 ~key:(fun v -> G.degree g v)
    ~max_key:(max 1 (G.max_degree g))

let input_order g = Array.init g.G.n1 (fun v -> v)

(* LPT-style order: non-increasing cheapest execution time, stable. *)
let heaviest_order g =
  let key v =
    G.fold_neighbors g v ~init:infinity ~f:(fun acc ~edge:_ _u w -> Float.min acc w)
  in
  let keys = Array.init g.G.n1 key in
  let order = input_order g in
  Array.stable_sort (fun a b -> compare keys.(b) keys.(a)) order;
  order

(* basic-greedy / sorted-greedy / heaviest-first: least resulting load
   l(u) + w(e), first edge wins ties.  On unit weights the order coincides
   with the paper's "least current load". *)
let run_load_greedy g ~order =
  let l = Array.make g.G.n2 0.0 in
  let choice = Array.make g.G.n1 (-1) in
  Array.iter
    (fun v ->
      let best = ref (-1) and best_load = ref infinity in
      G.fold_neighbors g v ~init:() ~f:(fun () ~edge u w ->
          Obs.Metrics.incr c_edge_scans;
          if l.(u) +. w < !best_load then begin
            best := edge;
            best_load := l.(u) +. w
          end);
      choice.(v) <- !best;
      let u = G.edge_endpoint g !best in
      l.(u) <- l.(u) +. G.edge_weight g !best)
    order;
  choice

(* double-sorted (Algorithm 2): ties on load broken by processor in-degree. *)
let run_double_sorted g =
  let l = Array.make g.G.n2 0.0 in
  let in_deg = G.in_degrees g in
  let choice = Array.make g.G.n1 (-1) in
  Array.iter
    (fun v ->
      let best = ref (-1) and best_load = ref infinity and best_deg = ref max_int in
      G.fold_neighbors g v ~init:() ~f:(fun () ~edge u w ->
          Obs.Metrics.incr c_edge_scans;
          let key = l.(u) +. w in
          if key < !best_load || (key = !best_load && in_deg.(u) < !best_deg) then begin
            best := edge;
            best_load := key;
            best_deg := in_deg.(u)
          end);
      choice.(v) <- !best;
      let u = G.edge_endpoint g !best in
      l.(u) <- l.(u) +. G.edge_weight g !best)
    (degree_order g);
  choice

(* expected-greedy (Algorithm 3): o(u) holds the load u would receive if all
   undecided tasks split uniformly over their options. *)
let run_expected g =
  let o = Array.make g.G.n2 0.0 in
  for v = 0 to g.G.n1 - 1 do
    let dv = float_of_int (G.degree g v) in
    G.iter_neighbors g v (fun u w -> o.(u) <- o.(u) +. (w /. dv))
  done;
  let choice = Array.make g.G.n1 (-1) in
  Array.iter
    (fun v ->
      let dv = float_of_int (G.degree g v) in
      let best = ref (-1) and best_o = ref infinity in
      G.fold_neighbors g v ~init:() ~f:(fun () ~edge u w ->
          Obs.Metrics.incr c_edge_scans;
          (* Realized expectation o(u) + w − w/d_v; equal to "minimum o(u)"
             (Algorithm 3) on unit weights, weight-aware otherwise — the
             same convention as the hypergraph version. *)
          let key = o.(u) +. w -. (w /. dv) in
          if key < !best_o then begin
            best := edge;
            best_o := key
          end);
      choice.(v) <- !best;
      (* Collapse the probability: the chosen option is realized, all other
         options of v are discarded. *)
      let chosen_u = G.edge_endpoint g !best and chosen_w = G.edge_weight g !best in
      o.(chosen_u) <- o.(chosen_u) +. chosen_w -. (chosen_w /. dv);
      G.fold_neighbors g v ~init:() ~f:(fun () ~edge u w ->
          if edge <> !best then o.(u) <- o.(u) -. (w /. dv)))
    (degree_order g);
  choice

let run algorithm g =
  check g;
  let choice =
    match algorithm with
    | Basic -> run_load_greedy g ~order:(input_order g)
    | Sorted -> run_load_greedy g ~order:(degree_order g)
    | Double_sorted -> run_double_sorted g
    | Expected -> run_expected g
    | Heaviest_first -> run_load_greedy g ~order:(heaviest_order g)
  in
  Bip_assignment.of_edges g choice

let run_in_order g ~order =
  check g;
  if Array.length order <> g.G.n1 then invalid_arg "Greedy_bipartite.run_in_order: length mismatch";
  let seen = Array.make g.G.n1 false in
  Array.iter
    (fun v ->
      if v < 0 || v >= g.G.n1 || seen.(v) then
        invalid_arg "Greedy_bipartite.run_in_order: not a permutation";
      seen.(v) <- true)
    order;
  Bip_assignment.of_edges g (run_load_greedy g ~order)

let makespan algorithm g = Bip_assignment.makespan g (run algorithm g)
