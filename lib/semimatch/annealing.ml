module H = Hyper.Graph

(* Probe points: acceptance split of proposed moves; [improved_best] counts
   how often the incumbent was beaten (cooling-schedule diagnostics). *)
let c_accepted = Obs.Metrics.counter "semimatch.annealing.accepted"
let c_rejected = Obs.Metrics.counter "semimatch.annealing.rejected"
let c_improved_best = Obs.Metrics.counter "semimatch.annealing.improved_best"

type params = { iterations : int; initial_temperature : float; cooling : float }

let default_params h =
  let nh = H.num_hyperedges h in
  let avg_sq =
    if nh = 0 then 1.0
    else begin
      let total = ref 0.0 in
      for e = 0 to nh - 1 do
        let w = H.h_weight h e in
        total := !total +. (w *. w)
      done;
      !total /. float_of_int nh
    end
  in
  { iterations = 20_000; initial_temperature = Float.max 1.0 avg_sq; cooling = 0.9995 }

(* Energy bookkeeping: moving task v from e_old to e_new changes
   Σ l² only on the touched processors; each update of load l by δ changes
   the energy by 2lδ + δ². *)
(* [should_stop] is polled every [stop_poll_period] iterations so the
   Metropolis loop stays branch-cheap; stopping early just returns the
   best-seen assignment, which is always a valid result. *)
let stop_poll_period = 256

(* Temperature-epoch events every [epoch_period] iterations (~10 per run at
   the default budget): enough to reconstruct the cooling trajectory in the
   event log without weighing on the Metropolis loop. *)
let epoch_period = 2048

let refine ?params ?(should_stop = fun () -> false) rng h start =
  let params = match params with Some p -> p | None -> default_params h in
  if params.iterations < 0 then invalid_arg "Annealing: negative iteration budget";
  if not (params.cooling > 0.0 && params.cooling <= 1.0) then
    invalid_arg "Annealing: cooling must be in (0, 1]";
  let n1 = h.H.n1 in
  let choice = Array.copy start.Hyp_assignment.choice in
  let loads = Hyp_assignment.loads h start in
  let makespan_of () = Array.fold_left Float.max 0.0 loads in
  let energy_delta ~e_old ~e_new =
    (* Apply: -w_old on e_old's procs, +w_new on e_new's; overlapping
       processors see both. *)
    let delta = ref 0.0 in
    let w_old = H.h_weight h e_old and w_new = H.h_weight h e_new in
    (* First remove, then add; account sequentially for overlap exactness. *)
    H.iter_h_procs h e_old (fun u ->
        let l = loads.(u) in
        delta := !delta -. (2.0 *. l *. w_old) +. (w_old *. w_old);
        loads.(u) <- l -. w_old);
    H.iter_h_procs h e_new (fun u ->
        let l = loads.(u) in
        delta := !delta +. (2.0 *. l *. w_new) +. (w_new *. w_new);
        loads.(u) <- l +. w_new);
    !delta
  in
  let undo ~e_old ~e_new =
    H.iter_h_procs h e_new (fun u -> loads.(u) <- loads.(u) -. H.h_weight h e_new);
    H.iter_h_procs h e_old (fun u -> loads.(u) <- loads.(u) +. H.h_weight h e_old)
  in
  let best_choice = Array.copy choice in
  let best_makespan = ref (makespan_of ()) in
  let temperature = ref params.initial_temperature in
  (try
  for iter = 1 to params.iterations do
    if iter land (stop_poll_period - 1) = 0 && should_stop () then raise Exit;
    if iter land (epoch_period - 1) = 0 && Obs.is_enabled () then
      Obs.Events.emit ~level:Obs.Events.Debug "annealing.epoch"
        [
          Obs.Events.int "iter" iter;
          Obs.Events.num "temperature" !temperature;
          Obs.Events.num "best_makespan" !best_makespan;
        ];
    let v = Randkit.Prng.int rng (max n1 1) in
    if n1 > 0 && H.task_degree h v > 1 then begin
      let e_old = choice.(v) in
      let e_new = h.H.task_off.(v) + Randkit.Prng.int rng (H.task_degree h v) in
      if e_new <> e_old then begin
        let delta = energy_delta ~e_old ~e_new in
        let accept =
          delta <= 0.0
          || (!temperature > 0.0 && Randkit.Prng.float rng 1.0 < exp (-.delta /. !temperature))
        in
        if accept then begin
          Obs.Metrics.incr c_accepted;
          choice.(v) <- e_new;
          let m = makespan_of () in
          if m < !best_makespan then begin
            Obs.Metrics.incr c_improved_best;
            best_makespan := m;
            Array.blit choice 0 best_choice 0 n1
          end
        end
        else begin
          Obs.Metrics.incr c_rejected;
          undo ~e_old ~e_new
        end
      end
    end;
    temperature := !temperature *. params.cooling
  done
  with Exit -> ());
  (Hyp_assignment.of_choices h best_choice, !best_makespan)

let solve ?params ?should_stop rng h =
  let start = Greedy_hyper.run Greedy_hyper.Sorted_greedy_hyp h in
  refine ?params ?should_stop rng h start
