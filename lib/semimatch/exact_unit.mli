(** Exact polynomial-time algorithms for SINGLEPROC-UNIT.

    Two distinct optimality levels live here, and they are {e not} the same
    thing:

    - {e Makespan optimality}: no schedule has a smaller maximum load.  This
      is what the paper's binary-search algorithm (Sec. IV-A) certifies: for
      a trial deadline D, a schedule of makespan ≤ D exists iff the graph
      G_D — D copies of every processor — admits a matching covering all
      tasks, and the smallest feasible D is searched for.  Loads below the
      maximum are whatever the matching happened to produce.
    - {e Load-vector optimality}: the schedule admits no cost-reducing path,
      which by Harvey et al.'s characterization minimizes {e every}
      symmetric convex cost simultaneously — the makespan, the total flow
      time Σ l(l+1)/2, and the lexicographic order of the sorted load
      vector.  The direct engines ({!Harvey}, {!Gen_hk}, {!Divide_conquer})
      certify this strictly stronger property.

    Every {!solution} records which level its engine guarantees, so callers
    racing engines know what the winner's bytes actually promise. *)

type strategy = Incremental | Bisection

val strategy_name : strategy -> string

type guarantee =
  | Makespan_optimal  (** minimal maximum load; other loads unconstrained *)
  | Load_vector_optimal
      (** no cost-reducing path: minimal makespan {e and} flow time {e and}
          lexicographic sorted load vector *)

val guarantee_name : guarantee -> string
(** ["makespan-optimal"] / ["load-vector-optimal"]. *)

type solution = {
  makespan : int;  (** the optimal makespan M_opt *)
  assignment : Bip_assignment.t;
  deadlines_tried : int;
      (** search/phase bookkeeping: matching computations for the binary
          searches and {!Divide_conquer}, BFS phases for {!Gen_hk}, 0 for
          Harvey insertion *)
  guarantee : guarantee;  (** what the producing engine certifies *)
}

val solve :
  ?engine:Matching.engine -> ?strategy:strategy -> Bipartite.Graph.t -> solution
(** [solve g] computes a makespan-optimal SINGLEPROC-UNIT schedule by
    deadline search (paper Sec. IV-A).  Requires unit weights and no
    isolated task; raises [Invalid_argument] otherwise.  Defaults:
    [Hopcroft_karp] engine (fastest here; the paper used push-relabel, also
    available), [Incremental] strategy starting from the trivial lower bound
    ⌈n/p⌉.  The result's [guarantee] is [Makespan_optimal] only. *)

val feasible : ?engine:Matching.engine -> Bipartite.Graph.t -> d:int -> Bip_assignment.t option
(** [feasible g ~d] is a schedule of makespan ≤ [d] if one exists — the
    single decision step, exposed for tests and for external search
    loops. *)

(** {2 The unified exact-engine catalogue}

    Everything that computes a provably optimal makespan, under one type so
    the portfolio, the CLI and the benches can race and compare them. *)

type exact_engine =
  | Binary_search of Matching.engine
      (** {!solve}: O(log n) capacitated matchings; makespan only *)
  | Harvey_online
      (** {!Harvey.solve}: one augmentation per task, O(n·m); load-vector *)
  | Gen_hk
      (** {!Gen_hk.solve}: shortest cost-reducing path phases
          (Katrenič–Semanišin); load-vector *)
  | Divide_conquer
      (** {!Divide_conquer.solve}: FLN level recursion over capacitated
          matchings + elimination stitch; load-vector *)

val all_exact_engines : exact_engine list
(** The three binary searches then the three direct engines. *)

val exact_engine_name : exact_engine -> string
(** "bs-dfs", "bs-hk", "bs-pr", "harvey", "gen-hk", "dnc". *)

val exact_engine_guarantee : exact_engine -> guarantee

val solve_with : ?strategy:strategy -> exact:exact_engine -> Bipartite.Graph.t -> solution
(** Run one engine.  [strategy] applies to [Binary_search] only.  All
    engines return the same optimal makespan; assignments (and therefore
    load vectors) may differ within each engine's [guarantee]. *)
