module G = Bipartite.Graph

let c_matchings = Obs.Metrics.counter "semimatch.dnc.matchings"
let c_splits = Obs.Metrics.counter "semimatch.dnc.splits"
let c_stitch_flips = Obs.Metrics.counter "semimatch.dnc.stitch_flips"
let h_sub_tasks = Obs.Metrics.histogram "semimatch.dnc.subproblem_tasks"

type solution = {
  assignment : Bip_assignment.t;
  makespan : int;
  loads : int array;
  total_flow_time : int;
  matchings : int;
}

let flow_time loads = Array.fold_left (fun acc l -> acc + (l * (l + 1) / 2)) 0 loads

let check g =
  if not (G.is_unit_weighted g) then invalid_arg "Divide_conquer: weights must all be 1";
  if G.has_isolated_task g then
    invalid_arg "Divide_conquer: task with no allowed processor";
  if g.G.n1 > 0 && g.G.n2 = 0 then invalid_arg "Divide_conquer: no processors"

(* ---- the recursion -------------------------------------------------- *)

(* [go] assigns [tasks] (original ids) to [machines] (original ids), writing
   machine choices into [mate_u], under the knowledge that the sub-instance
   can be scheduled with every load in [lo, hi].  The split level
   m = (lo+hi)/2 drives a capacitated maximum matching: full coverage
   certifies optimal makespan <= m, otherwise the Hall-violator half
   (everything alternately reachable from the unmatched tasks) is pinned
   above m and the rest below, the two halves sharing no useful edge. *)

let rec go g ~matchings ~mate_u ~tasks ~machines ~lo ~hi =
  if Array.length tasks > 0 then begin
    if Obs.is_enabled () then
      Obs.Metrics.observe h_sub_tasks (float_of_int (Array.length tasks));
    (* Renumber the sub-instance; [mloc] maps original machine -> local. *)
    let nloc1 = Array.length tasks and nloc2 = Array.length machines in
    let mloc = Hashtbl.create nloc2 in
    Array.iteri (fun i u -> Hashtbl.add mloc u i) machines;
    let adjacency =
      Array.map
        (fun v ->
          G.fold_neighbors g v ~init:[] ~f:(fun acc ~edge:_ u _w ->
              match Hashtbl.find_opt mloc u with
              | Some i -> (i, 1.0) :: acc
              | None -> acc)
          |> List.rev)
        tasks
    in
    let sub = G.of_adjacency ~n2:nloc2 adjacency in
    let solve_caps d =
      incr matchings;
      Obs.Metrics.incr c_matchings;
      Matching.solve ~engine:Matching.Hopcroft_karp ~capacities:(Array.make nloc2 d) sub
    in
    if hi <= lo + 1 then begin
      (* Base: a two-level instance.  A matching under capacity [hi] covers
         everything (the invariant promises a schedule within [lo, hi]); the
         defensive fallback keeps the result a valid semi-matching even on a
         loose interval, and the final elimination sweep restores
         optimality. *)
      let r = solve_caps hi in
      let r = if r.Matching.size = nloc1 then r else solve_caps nloc1 in
      Array.iteri (fun i v -> mate_u.(v) <- machines.(r.Matching.mate1.(i))) tasks
    end
    else begin
      let m = (lo + hi) / 2 in
      let r = solve_caps m in
      if r.Matching.size = nloc1 then
        (* Coverage at capacity m: the whole sub-instance fits below m. *)
        go g ~matchings ~mate_u ~tasks ~machines ~lo ~hi:m
      else begin
        Obs.Metrics.incr c_splits;
        (* Alternating reachability from the unmatched tasks: a task reaches
           all its machines, a machine reaches its current occupants.  The
           reached tasks have every edge inside the reached machines, which
           are all saturated, so they form the overloaded half. *)
        let occupants = Array.make nloc2 [] in
        Array.iteri
          (fun v u -> if u >= 0 then occupants.(u) <- v :: occupants.(u))
          r.Matching.mate1;
        let t_top = Array.make nloc1 false and m_top = Array.make nloc2 false in
        let queue = Queue.create () in
        for v = 0 to nloc1 - 1 do
          if r.Matching.mate1.(v) < 0 then begin
            t_top.(v) <- true;
            Queue.add v queue
          end
        done;
        while not (Queue.is_empty queue) do
          let v = Queue.pop queue in
          G.iter_neighbors sub v (fun u _w ->
              if not m_top.(u) then begin
                m_top.(u) <- true;
                List.iter
                  (fun v' ->
                    if not t_top.(v') then begin
                      t_top.(v') <- true;
                      Queue.add v' queue
                    end)
                  occupants.(u)
              end)
        done;
        let split marks items =
          let yes = ref [] and no = ref [] in
          for i = Array.length items - 1 downto 0 do
            if marks.(i) then yes := items.(i) :: !yes else no := items.(i) :: !no
          done;
          (Array.of_list !yes, Array.of_list !no)
        in
        let tasks_top, tasks_bot = split t_top tasks in
        let machines_top, machines_bot = split m_top machines in
        (* The overloaded half averages above m, the rest fits within m;
           both intervals lose at least one level (lo < m < hi). *)
        go g ~matchings ~mate_u ~tasks:tasks_top ~machines:machines_top ~lo:(max lo m) ~hi;
        go g ~matchings ~mate_u ~tasks:tasks_bot ~machines:machines_bot ~lo ~hi:(min hi m)
      end
    end
  end

(* ---- stitching: cost-reducing-path elimination ---------------------- *)

(* The recursion guarantees no useful edge crosses a split, but each half is
   only solved to its interval.  The stitch is the classical optimality
   loop: while some machine u and some machine w with load(w) <= load(u)-2
   are joined by an alternating path, flip the shortest such path (one task
   moves per hop; u loses one unit, w gains one, nothing in between
   changes).  When no path leaves the max level's reachable region, that
   region is settled and drops out.  Termination: every flip strictly
   decreases the sum of squared loads. *)

type stitch = {
  g : G.t;
  mate : int array; (* task -> chosen edge *)
  loads : int array;
  assigned : int Ds.Vec.t array;
  active : bool array;
  parent : int array; (* machine -> discovery edge of this BFS round *)
  stamp : int array;
  queue : int Queue.t;
  reached : int Ds.Vec.t;
}

let remove_from st u v =
  let occ = st.assigned.(u) in
  let n = Ds.Vec.length occ in
  let rec go i =
    if Ds.Vec.get occ i = v then begin
      Ds.Vec.set occ i (Ds.Vec.get occ (n - 1));
      ignore (Ds.Vec.pop occ)
    end
    else go (i + 1)
  in
  go 0

(* Walk the parent chain from the terminal back to a source, moving each
   discovery task one hop forward. *)
let flip st w =
  Obs.Metrics.incr c_stitch_flips;
  st.loads.(w) <- st.loads.(w) + 1;
  let rec back u =
    let e = st.parent.(u) in
    if e >= 0 then begin
      let v = G.edge_task st.g e in
      let prev = st.mate.(v) in
      let u_prev = G.edge_endpoint st.g prev in
      remove_from st u_prev v;
      st.mate.(v) <- e;
      Ds.Vec.push st.assigned.(u) v;
      back u_prev
    end
    else st.loads.(u) <- st.loads.(u) - 1
  in
  back w

let eliminate g mate =
  let st =
    {
      g;
      mate;
      loads = Array.make g.G.n2 0;
      assigned = Array.init g.G.n2 (fun _ -> Ds.Vec.create ());
      active = Array.make g.G.n2 true;
      parent = Array.make g.G.n2 (-1);
      stamp = Array.make g.G.n2 (-1);
      queue = Queue.create ();
      reached = Ds.Vec.create ();
    }
  in
  Array.iteri
    (fun v e ->
      let u = G.edge_endpoint g e in
      st.loads.(u) <- st.loads.(u) + 1;
      Ds.Vec.push st.assigned.(u) v)
    mate;
  let round = ref 0 in
  let running = ref true in
  while !running do
    let lmax = ref 0 in
    for u = 0 to g.G.n2 - 1 do
      if st.active.(u) && st.loads.(u) > !lmax then lmax := st.loads.(u)
    done;
    if !lmax <= 1 then running := false
    else begin
      incr round;
      Queue.clear st.queue;
      Ds.Vec.clear st.reached;
      for u = 0 to g.G.n2 - 1 do
        if st.active.(u) && st.loads.(u) = !lmax then begin
          st.stamp.(u) <- !round;
          st.parent.(u) <- -1;
          Ds.Vec.push st.reached u;
          Queue.add u st.queue
        end
      done;
      let target = ref (-1) in
      while !target < 0 && not (Queue.is_empty st.queue) do
        let u = Queue.pop st.queue in
        let occ = st.assigned.(u) in
        let i = ref 0 in
        while !target < 0 && !i < Ds.Vec.length occ do
          let v = Ds.Vec.get occ !i in
          G.fold_neighbors g v ~init:() ~f:(fun () ~edge u' _w ->
              if !target < 0 && st.active.(u') && st.stamp.(u') <> !round then begin
                st.stamp.(u') <- !round;
                st.parent.(u') <- edge;
                Ds.Vec.push st.reached u';
                if st.loads.(u') <= !lmax - 2 then target := u'
                else Queue.add u' st.queue
              end);
          incr i
        done
      done;
      if !target >= 0 then flip st !target
      else
        (* The max level's region is two-level and closed: settled. *)
        Ds.Vec.iter (fun u -> st.active.(u) <- false) st.reached
    end
  done;
  st.loads

let solve g =
  check g;
  if g.G.n1 = 0 then
    {
      assignment = Bip_assignment.of_edges g [||];
      makespan = 0;
      loads = Array.make g.G.n2 0;
      total_flow_time = 0;
      matchings = 0;
    }
  else begin
    (* Upper level bound: least-loaded greedy (any feasible makespan do). *)
    let loads0 = Array.make g.G.n2 0 in
    for v = 0 to g.G.n1 - 1 do
      let best = ref (-1) in
      G.iter_neighbors g v (fun u _w ->
          if !best < 0 || loads0.(u) < loads0.(!best) then best := u);
      loads0.(!best) <- loads0.(!best) + 1
    done;
    let hi = Array.fold_left max 1 loads0 in
    let matchings = ref 0 in
    let mate_u = Array.make g.G.n1 (-1) in
    go g ~matchings ~mate_u
      ~tasks:(Array.init g.G.n1 Fun.id)
      ~machines:(Array.init g.G.n2 Fun.id)
      ~lo:0 ~hi;
    (* Machine choice -> first edge into that machine (deterministic). *)
    let mate =
      Array.init g.G.n1 (fun v ->
          let e = ref (-1) in
          G.fold_neighbors g v ~init:() ~f:(fun () ~edge u _w ->
              if !e < 0 && u = mate_u.(v) then e := edge);
          assert (!e >= 0);
          !e)
    in
    let loads = eliminate g mate in
    {
      assignment = Bip_assignment.of_edges g mate;
      makespan = Array.fold_left max 0 loads;
      loads;
      total_flow_time = flow_time loads;
      matchings = !matchings;
    }
  end
