(** The FewG/ManyG random bipartite-graph generator (Cherkassky et al. [7],
    as parameterized in the paper, Sec. V-A.1).

    V1 and V2 are split into [g] balanced groups.  Each V1 vertex of group j
    first draws a degree from a binomial distribution with mean [d], then
    picks that many distinct neighbours uniformly from the V2 vertices of
    groups j−1, j, j+1 (with wrap-around).  When the drawn degree exceeds the
    candidate pool, neighbours are drawn with replacement and de-duplicated,
    exactly the paper's fallback rule.  [g = 32] gives the "FewG" family and
    [g = 128] the "ManyG" family of the experiments.

    Degrees are clamped to at least 1: a task with no allowed processor makes
    the scheduling instance infeasible, and semi-matchings must cover every
    task.  (The clamp fires with probability ≤ (1−d/pool)^pool ≈ e^{−d}.) *)

val iter_rows :
  Randkit.Prng.t -> n1:int -> n2:int -> g:int -> d:int -> (int -> int array -> unit) -> unit
(** Stream the family row by row in vertex order without materializing the
    adjacency.  The RNG draw sequence equals [adjacency]'s, so for the same
    seed the streamed rows are exactly the materialized rows. *)

val adjacency : Randkit.Prng.t -> n1:int -> n2:int -> g:int -> d:int -> int array array
(** Per-V1-vertex sorted arrays of distinct V2 neighbours. *)

val generate : Randkit.Prng.t -> n1:int -> n2:int -> g:int -> d:int -> Graph.t
(** Unit-weighted graph over [adjacency]. *)
