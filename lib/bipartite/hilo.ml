(* Balanced block partition of [0..n-1] into g groups: the first [n mod g]
   groups get one extra vertex. *)
let group_bounds ~n ~g =
  let base = n / g and rem = n mod g in
  Array.init (g + 1) (fun j -> (base * j) + min j rem)

(* Rows are independent given the group bounds, so the family streams: each
   row is handed to [f] as a fresh array and never retained — the O(n1·d)
   adjacency below is just [iter_rows] accumulated. *)
let iter_rows ~n1 ~n2 ~g ~d f =
  if g <= 0 || g > n1 || g > n2 then invalid_arg "Hilo.adjacency: invalid group count";
  if d < 0 then invalid_arg "Hilo.adjacency: negative d";
  let b1 = group_bounds ~n:n1 ~g and b2 = group_bounds ~n:n2 ~g in
  for j = 0 to g - 1 do
    let size2 j' = b2.(j' + 1) - b2.(j') in
    for v = b1.(j) to b1.(j + 1) - 1 do
      let i = v - b1.(j) + 1 in
      let neighbors = Ds.Vec.create () in
      let connect_to_group j' =
        let sz = size2 j' in
        if sz > 0 then begin
          let hi = min i sz in
          let lo = max 1 (hi - d) in
          for k = lo to hi do
            Ds.Vec.push neighbors (b2.(j') + k - 1)
          done
        end
      in
      connect_to_group j;
      if j < g - 1 then connect_to_group (j + 1);
      f v (Ds.Vec.to_array neighbors)
    done
  done

let adjacency ~n1 ~n2 ~g ~d =
  let adj = Array.make (max n1 0) [||] in
  iter_rows ~n1 ~n2 ~g ~d (fun v row -> adj.(v) <- row);
  adj

let generate ~n1 ~n2 ~g ~d =
  let adj = adjacency ~n1 ~n2 ~g ~d in
  Graph.of_adjacency ~n2 (Array.map (fun a -> Array.to_list a |> List.map (fun u -> (u, 1.0))) adj)
