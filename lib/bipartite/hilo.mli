(** The HiLo structured bipartite-graph generator (Cherkassky et al. [7], as
    parameterized in the paper, Sec. V-A.1).

    Vertices of V1 and V2 are split into [g] groups.  The i-th vertex of V1
    group j is connected to the V2 vertices of group j with within-group index
    k = max(1, min(i, p/g) − d) .. min(i, p/g), and, when j < g, to the same
    index range in group j+1.  The family is deterministic: the "random
    instances" of HiLo-based MULTIPROC experiments draw their randomness from
    the binomial first step of the hypergraph generator, not from HiLo
    itself. *)

val iter_rows : n1:int -> n2:int -> g:int -> d:int -> (int -> int array -> unit) -> unit
(** [iter_rows ~n1 ~n2 ~g ~d f] streams the family row by row: [f v row]
    receives each V1 vertex's sorted neighbour array in vertex order,
    without the O(n1·d) adjacency ever being materialized — the edge-stream
    generators ride on this. *)

val adjacency : n1:int -> n2:int -> g:int -> d:int -> int array array
(** [adjacency ~n1 ~n2 ~g ~d] gives, for each V1 vertex, the sorted array of
    its V2 neighbours.  [g] must be positive and at most [min n1 n2]; sizes
    need not be divisible by [g] (groups are balanced blocks). *)

val generate : n1:int -> n2:int -> g:int -> d:int -> Graph.t
(** Unit-weighted graph over [adjacency]. *)
