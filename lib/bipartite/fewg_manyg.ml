let group_bounds ~n ~g =
  let base = n / g and rem = n mod g in
  Array.init (g + 1) (fun j -> (base * j) + min j rem)

(* The V2 candidate pool of a group-j V1 vertex: groups j-1, j, j+1 with
   wrap-around, as one array of vertex ids.  Groups are listed once even when
   g < 3 makes them coincide. *)
let pool_of_group ~b2 ~g j =
  let wrap x = ((x mod g) + g) mod g in
  let groups = List.sort_uniq compare [ wrap (j - 1); wrap j; wrap (j + 1) ] in
  let total = List.fold_left (fun acc j' -> acc + (b2.(j' + 1) - b2.(j'))) 0 groups in
  let pool = Array.make total 0 in
  let i = ref 0 in
  List.iter
    (fun j' ->
      for u = b2.(j') to b2.(j' + 1) - 1 do
        pool.(!i) <- u;
        incr i
      done)
    groups;
  pool

let draw_degree rng ~d ~pool_size =
  if d <= pool_size then
    (* Binomial(pool, d/pool): each candidate kept independently, mean d. *)
    max 1 (Randkit.Binomial.sample rng ~trials:pool_size ~p:(float_of_int d /. float_of_int pool_size))
  else
    (* Pool too small for the requested mean; keep the binomial shape with
       mean d and fall back to replacement sampling. *)
    max 1 (Randkit.Binomial.sample rng ~trials:(2 * d) ~p:0.5)

let neighbors_of rng ~pool ~degree =
  let pool_size = Array.length pool in
  if degree <= pool_size then begin
    let picks = Randkit.Prng.sample_without_replacement rng ~k:degree ~n:pool_size in
    let out = Array.map (fun i -> pool.(i)) picks in
    Array.sort compare out;
    out
  end
  else begin
    let picks = Randkit.Prng.sample_with_replacement rng ~k:degree ~n:pool_size in
    let distinct = List.sort_uniq compare (Array.to_list picks) in
    Array.of_list (List.map (fun i -> pool.(i)) distinct)
  end

(* Rows stream in row order (groups are consecutive blocks), each handed to
   [f] as a fresh array — the RNG draw sequence is identical to [adjacency],
   so a streamed instance is byte-for-byte the materialized one. *)
let iter_rows rng ~n1 ~n2 ~g ~d f =
  if g <= 0 || g > n2 then invalid_arg "Fewg_manyg.adjacency: invalid group count";
  if d <= 0 then invalid_arg "Fewg_manyg.adjacency: d must be positive";
  let b1 = group_bounds ~n:n1 ~g and b2 = group_bounds ~n:n2 ~g in
  for j = 0 to g - 1 do
    let pool = pool_of_group ~b2 ~g j in
    let pool_size = Array.length pool in
    for v = b1.(j) to b1.(j + 1) - 1 do
      let degree = draw_degree rng ~d ~pool_size in
      f v (neighbors_of rng ~pool ~degree)
    done
  done

let adjacency rng ~n1 ~n2 ~g ~d =
  let adj = Array.make (max n1 0) [||] in
  iter_rows rng ~n1 ~n2 ~g ~d (fun v row -> adj.(v) <- row);
  adj

let generate rng ~n1 ~n2 ~g ~d =
  let adj = adjacency rng ~n1 ~n2 ~g ~d in
  Graph.of_adjacency ~n2 (Array.map (fun a -> Array.to_list a |> List.map (fun u -> (u, 1.0))) adj)
