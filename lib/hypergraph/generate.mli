(** The two-step MULTIPROC instance generator (paper Sec. V-A.2).

    Step 1 draws each task's number of configurations from a binomial
    distribution with mean [dv] (clamped to ≥ 1 so every task stays
    schedulable), giving |N| ≈ n·dv hyperedges, each owning a unique task.
    Step 2 fills the hyperedge→processor side by calling the HiLo or
    FewgManyg bipartite generator on (|N|, p, g, dh), i.e., hyperedges play
    the V1 role.  Weights are then set by a {!Weights.t} scheme. *)

type family = Fewg_manyg | Hilo

val family_name : family -> string

val generate :
  Randkit.Prng.t ->
  family:family ->
  n:int ->
  p:int ->
  dv:int ->
  dh:int ->
  g:int ->
  weights:Weights.t ->
  Graph.t
(** [generate rng ~family ~n ~p ~dv ~dh ~g ~weights] builds one MULTIPROC
    instance with [n] tasks and [p] processors. *)

(** {2 Streaming emission}

    The same families, emitted hyperedge by hyperedge through a callback in
    O(n + p) working memory — never O(edges) — so 10^7+-edge instances can
    be written straight to a {!Stream_io} file.  RNG draw order matches the
    in-core builders, so with [Weights.Unit] the streamed instance is
    byte-for-byte the materialized one for the same seed.  [Weights.Random]
    draws per record instead of in a final sweep (valid, but a different
    instance); [Weights.Related] raises [Invalid_argument] — it needs the
    global min/max hyperedge size.  Each returns the hyperedge count. *)

val stream :
  Randkit.Prng.t ->
  family:family ->
  n:int ->
  p:int ->
  dv:int ->
  dh:int ->
  g:int ->
  weights:Weights.t ->
  emit:(task:int -> procs:int array -> weight:float -> unit) ->
  int

val stream_uniform :
  Randkit.Prng.t ->
  n:int ->
  p:int ->
  dv:int ->
  dh:int ->
  weights:Weights.t ->
  emit:(task:int -> procs:int array -> weight:float -> unit) ->
  int

val stream_powerlaw :
  Randkit.Prng.t ->
  n:int ->
  p:int ->
  dv:int ->
  dh:int ->
  alpha:float ->
  weights:Weights.t ->
  emit:(task:int -> procs:int array -> weight:float -> unit) ->
  int

val stream_sp :
  Randkit.Prng.t ->
  family:family ->
  n:int ->
  p:int ->
  g:int ->
  d:int ->
  emit:(task:int -> proc:int -> unit) ->
  int
(** SINGLEPROC-UNIT: each bipartite edge of the family becomes a singleton
    unit-weight record — the shape the one-/few-pass streaming solvers
    consume.  Returns the edge count. *)

val fig2 : unit -> Graph.t
(** The paper's Fig. 2 toy hypergraph: 4 tasks, 3 processors;
    S1 = {{P1},{P2,P3}}, S2 = {{P1,P2},{P2,P3}}, S3 = S4 = {{P3}}.
    Unit weights. *)

(** {2 Off-paper families}

    Two additional random families used by the robustness study
    (`experiments_main robustness`) to check that the paper's heuristic
    rankings are not artifacts of the HiLo/FewgManyg structure. *)

val generate_uniform :
  Randkit.Prng.t ->
  n:int ->
  p:int ->
  dv:int ->
  dh:int ->
  weights:Weights.t ->
  Graph.t
(** Configuration counts Binomial(2·dv, ½) clamped ≥ 1 (as in {!generate});
    each hyperedge picks min(dh, p) processors uniformly without replacement
    from the whole machine set — no group locality at all. *)

val generate_powerlaw :
  Randkit.Prng.t ->
  n:int ->
  p:int ->
  dv:int ->
  dh:int ->
  alpha:float ->
  weights:Weights.t ->
  Graph.t
(** Like {!generate_uniform}, but processors are drawn from a Zipf
    distribution with exponent [alpha] > 0 (processor 0 most popular),
    modelling skewed resource demand — a few accelerators everybody wants.
    Duplicates within a hyperedge are resolved by rejection, so hyperedges
    keep min(dh, p) distinct processors. *)
