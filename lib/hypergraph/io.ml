let to_string h =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "hypergraph %d %d\n" h.Graph.n1 h.Graph.n2);
  for e = 0 to Graph.num_hyperedges h - 1 do
    Buffer.add_string buf (Printf.sprintf "h %d %g" (Graph.h_task h e) (Graph.h_weight h e));
    Graph.iter_h_procs h e (fun u -> Buffer.add_string buf (Printf.sprintf " %d" u));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let fail line_no msg = failwith (Printf.sprintf "Hyper.Io: line %d: %s" line_no msg)

(* Header sizes bound allocations ([Graph.create] builds arrays of n1+1 and
   n2 slots), so a hostile 20-byte header must not be able to request
   terabytes: cap them here, with a line-numbered error, before any
   allocation happens. *)
let max_side = 100_000_000

let of_string text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let hyperedges = ref [] in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      let line = String.trim line in
      if line <> "" && not (String.length line > 0 && line.[0] = '#') then begin
        let fields = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
        match fields with
        | "hypergraph" :: rest -> (
            if !header <> None then fail line_no "duplicate header";
            match List.map int_of_string_opt rest with
            | [ Some n1; Some n2 ] ->
                if n1 < 0 || n2 < 0 then fail line_no "sizes must be non-negative";
                if n1 > max_side || n2 > max_side then fail line_no "sizes out of range";
                header := Some (n1, n2)
            | _ -> fail line_no "expected: hypergraph <n1> <n2>")
        | "h" :: task :: weight :: procs -> (
            if !header = None then fail line_no "hyperedge before header";
            match (int_of_string_opt task, float_of_string_opt weight) with
            | Some task, Some weight ->
                let procs =
                  List.map
                    (fun s ->
                      match int_of_string_opt s with
                      | Some u -> u
                      | None -> fail line_no "bad processor id")
                    procs
                in
                hyperedges := (task, Array.of_list procs, weight) :: !hyperedges
            | _ -> fail line_no "expected: h <task> <weight> <procs...>")
        | _ -> fail line_no "unrecognized line"
      end)
    lines;
  match !header with
  | None -> failwith "Hyper.Io: missing header"
  | Some (n1, n2) -> Graph.create ~n1 ~n2 ~hyperedges:(List.rev !hyperedges)

let save path h =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string h))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
