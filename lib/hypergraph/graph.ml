type t = {
  n1 : int;
  n2 : int;
  task_off : int array;
  h_off : int array;
  h_adj : int array;
  w : float array;
}

let validate_hyperedge ~n1 ~n2 (task, procs, weight) =
  if task < 0 || task >= n1 then invalid_arg "Hyper.Graph: task out of range";
  if not (weight > 0.0) then invalid_arg "Hyper.Graph: weight must be positive";
  if Array.length procs = 0 then invalid_arg "Hyper.Graph: empty processor set";
  let seen = Hashtbl.create (Array.length procs) in
  Array.iter
    (fun u ->
      if u < 0 || u >= n2 then invalid_arg "Hyper.Graph: processor out of range";
      if Hashtbl.mem seen u then invalid_arg "Hyper.Graph: duplicate processor in hyperedge";
      Hashtbl.add seen u ())
    procs

let create ~n1 ~n2 ~hyperedges =
  if n1 < 0 || n2 < 0 then invalid_arg "Hyper.Graph.create: negative size";
  List.iter (validate_hyperedge ~n1 ~n2) hyperedges;
  let nh = List.length hyperedges in
  let task_off = Array.make (n1 + 1) 0 in
  List.iter (fun (v, _, _) -> task_off.(v + 1) <- task_off.(v + 1) + 1) hyperedges;
  for v = 1 to n1 do
    task_off.(v) <- task_off.(v) + task_off.(v - 1)
  done;
  (* Stable grouping by task: first assign hyperedge slots, then fill pins. *)
  let cursor = Array.copy task_off in
  let slot_of = Array.make nh 0 in
  List.iteri
    (fun i (v, _, _) ->
      slot_of.(i) <- cursor.(v);
      cursor.(v) <- cursor.(v) + 1)
    hyperedges;
  let sizes = Array.make nh 0 in
  let weights = Array.make nh 0.0 in
  List.iteri
    (fun i (_, procs, weight) ->
      sizes.(slot_of.(i)) <- Array.length procs;
      weights.(slot_of.(i)) <- weight)
    hyperedges;
  let h_off = Array.make (nh + 1) 0 in
  for h = 0 to nh - 1 do
    h_off.(h + 1) <- h_off.(h) + sizes.(h)
  done;
  let h_adj = Array.make h_off.(nh) 0 in
  List.iteri
    (fun i (_, procs, _) ->
      let base = h_off.(slot_of.(i)) in
      Array.iteri (fun k u -> h_adj.(base + k) <- u) procs)
    hyperedges;
  { n1; n2; task_off; h_off; h_adj; w = weights }

let num_hyperedges h = Array.length h.w
let num_pins h = Array.length h.h_adj
let task_degree h v = h.task_off.(v + 1) - h.task_off.(v)

let max_task_degree h =
  let best = ref 0 in
  for v = 0 to h.n1 - 1 do
    if task_degree h v > !best then best := task_degree h v
  done;
  !best

let iter_task_hyperedges h v f =
  for e = h.task_off.(v) to h.task_off.(v + 1) - 1 do
    f e
  done

let h_task h e =
  (* Hyperedges are grouped by task: binary search the owning range. *)
  let lo = ref 0 and hi = ref (h.n1 - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if h.task_off.(mid + 1) <= e then lo := mid + 1 else hi := mid
  done;
  !lo

let h_size h e = h.h_off.(e + 1) - h.h_off.(e)
let h_weight h e = h.w.(e)

let iter_h_procs h e f =
  for i = h.h_off.(e) to h.h_off.(e + 1) - 1 do
    f h.h_adj.(i)
  done

let h_procs h e = Array.sub h.h_adj h.h_off.(e) (h_size h e)

let with_weights h weights =
  if Array.length weights <> num_hyperedges h then
    invalid_arg "Hyper.Graph.with_weights: length mismatch";
  Array.iter (fun x -> if not (x > 0.0) then invalid_arg "Hyper.Graph.with_weights: weight must be positive") weights;
  { h with w = Array.copy weights }

let has_isolated_task h =
  let rec scan v = v < h.n1 && (task_degree h v = 0 || scan (v + 1)) in
  scan 0

let of_bipartite g =
  let module B = Bipartite.Graph in
  let hyperedges = ref [] in
  for v = g.B.n1 - 1 downto 0 do
    let edges =
      B.fold_neighbors g v ~init:[] ~f:(fun acc ~edge:_ u w -> (v, [| u |], w) :: acc)
    in
    hyperedges := List.rev_append edges !hyperedges
  done;
  create ~n1:g.B.n1 ~n2:g.B.n2 ~hyperedges:!hyperedges

let to_bipartite h =
  let all_singleton = ref true in
  for e = 0 to num_hyperedges h - 1 do
    if h_size h e <> 1 then all_singleton := false
  done;
  if not !all_singleton then None
  else begin
    (* Hyperedge e of task v becomes bipartite edge (v, its one processor).
       Both CSRs group entries stably by task with one entry per hyperedge,
       so bipartite edge index = hyperedge index — callers rely on it to map
       assignments back. *)
    let edges = ref [] in
    for v = h.n1 - 1 downto 0 do
      for e = h.task_off.(v + 1) - 1 downto h.task_off.(v) do
        edges := (v, h.h_adj.(h.h_off.(e)), h.w.(e)) :: !edges
      done
    done;
    Some (Bipartite.Graph.create ~n1:h.n1 ~n2:h.n2 ~edges:!edges)
  end

let min_max_h_size h =
  let nh = num_hyperedges h in
  if nh = 0 then invalid_arg "Hyper.Graph.min_max_h_size: no hyperedges";
  let mn = ref max_int and mx = ref 0 in
  for e = 0 to nh - 1 do
    let s = h_size h e in
    if s < !mn then mn := s;
    if s > !mx then mx := s
  done;
  (!mn, !mx)

let pp ppf h =
  Format.fprintf ppf "hypergraph: |V1|=%d |V2|=%d |N|=%d pins=%d" h.n1 h.n2 (num_hyperedges h)
    (num_pins h)
