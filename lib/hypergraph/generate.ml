type family = Fewg_manyg | Hilo

let family_name = function Fewg_manyg -> "fewg-manyg" | Hilo -> "hilo"

let generate rng ~family ~n ~p ~dv ~dh ~g ~weights =
  if n <= 0 || p <= 0 then invalid_arg "Hyper.Generate: n and p must be positive";
  if dv <= 0 || dh <= 0 then invalid_arg "Hyper.Generate: dv and dh must be positive";
  (* Step 1: configuration counts, Binomial(2·dv, 1/2) has mean dv. *)
  let degrees =
    Array.init n (fun _ -> max 1 (Randkit.Binomial.sample rng ~trials:(2 * dv) ~p:0.5))
  in
  let nh = Array.fold_left ( + ) 0 degrees in
  (* Step 2: hyperedges take the V1 role of a bipartite generator. *)
  let pins =
    match family with
    | Hilo -> Bipartite.Hilo.adjacency ~n1:nh ~n2:p ~g ~d:dh
    | Fewg_manyg -> Bipartite.Fewg_manyg.adjacency rng ~n1:nh ~n2:p ~g ~d:dh
  in
  let hyperedges = ref [] in
  let next = ref nh in
  for v = n - 1 downto 0 do
    for _ = 1 to degrees.(v) do
      decr next;
      hyperedges := (v, pins.(!next), 1.0) :: !hyperedges
    done
  done;
  assert (!next = 0);
  let h = Graph.create ~n1:n ~n2:p ~hyperedges:!hyperedges in
  Weights.apply ~rng weights h

let degrees_step rng ~n ~dv =
  Array.init n (fun _ -> max 1 (Randkit.Binomial.sample rng ~trials:(2 * dv) ~p:0.5))

let assemble ~n ~p ~degrees ~pins rng weights =
  let hyperedges = ref [] in
  let next = ref (Array.fold_left ( + ) 0 degrees) in
  for v = n - 1 downto 0 do
    for _ = 1 to degrees.(v) do
      decr next;
      hyperedges := (v, pins.(!next), 1.0) :: !hyperedges
    done
  done;
  let h = Graph.create ~n1:n ~n2:p ~hyperedges:!hyperedges in
  Weights.apply ~rng weights h

(* Hyperedge sizes Binomial(2·dh, ½) clamped to [1, p]: variable like the
   paper's families, so the Related weight scheme stays meaningful. *)
let draw_size rng ~dh ~p = min p (max 1 (Randkit.Binomial.sample rng ~trials:(2 * dh) ~p:0.5))

let generate_uniform rng ~n ~p ~dv ~dh ~weights =
  if n <= 0 || p <= 0 then invalid_arg "Hyper.Generate: n and p must be positive";
  if dv <= 0 || dh <= 0 then invalid_arg "Hyper.Generate: dv and dh must be positive";
  let degrees = degrees_step rng ~n ~dv in
  let nh = Array.fold_left ( + ) 0 degrees in
  let pins =
    Array.init nh (fun _ ->
        let size = draw_size rng ~dh ~p in
        let picks = Randkit.Prng.sample_without_replacement rng ~k:size ~n:p in
        Array.sort compare picks;
        picks)
  in
  assemble ~n ~p ~degrees ~pins rng weights

(* Zipf sampling by inversion over precomputed cumulative masses. *)
let zipf_sampler rng ~p ~alpha =
  if not (alpha > 0.0) then invalid_arg "Hyper.Generate: alpha must be positive";
  let cumulative = Array.make p 0.0 in
  let total = ref 0.0 in
  for u = 0 to p - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (u + 1)) alpha);
    cumulative.(u) <- !total
  done;
  fun () ->
    let x = Randkit.Prng.float rng !total in
    (* First index with cumulative >= x. *)
    let lo = ref 0 and hi = ref (p - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) >= x then hi := mid else lo := mid + 1
    done;
    !lo

let generate_powerlaw rng ~n ~p ~dv ~dh ~alpha ~weights =
  if n <= 0 || p <= 0 then invalid_arg "Hyper.Generate: n and p must be positive";
  if dv <= 0 || dh <= 0 then invalid_arg "Hyper.Generate: dv and dh must be positive";
  let draw = zipf_sampler rng ~p ~alpha in
  let degrees = degrees_step rng ~n ~dv in
  let nh = Array.fold_left ( + ) 0 degrees in
  let pins =
    Array.init nh (fun _ ->
        let size = draw_size rng ~dh ~p in
        let seen = Hashtbl.create size in
        while Hashtbl.length seen < size do
          Hashtbl.replace seen (draw ()) ()
        done;
        let procs = Array.of_seq (Hashtbl.to_seq_keys seen) in
        Array.sort compare procs;
        procs)
  in
  assemble ~n ~p ~degrees ~pins rng weights

(* {2 Streaming emission}

   The two-step construction streams: step 1's degree array is O(n), and
   step 2's bipartite families yield their rows in row order (Hilo/
   Fewg_manyg [iter_rows]), so each hyperedge can be handed to [emit] and
   dropped.  Working memory is O(n + p) — degrees plus one group pool —
   never O(edges).  The RNG draw order matches the in-core builders
   (degrees, then pins in row order), so with [Unit] weights a streamed
   instance is exactly the materialized one for the same seed.  [Random]
   weights draw per record (the in-core path draws them in a separate final
   sweep), giving a valid but differently-weighted instance; [Related]
   needs the global min/max hyperedge size and cannot stream. *)

let stream_weight_drawer rng = function
  | Weights.Unit -> fun () -> 1.0
  | Weights.Random { lo; hi } ->
      if lo <= 0 || hi < lo then invalid_arg "Hyper.Generate.stream: need 0 < lo <= hi";
      fun () -> float_of_int (Randkit.Prng.int_in_range rng ~lo ~hi)
  | Weights.Related ->
      invalid_arg "Hyper.Generate.stream: Related weights need the whole instance in core"

(* Map bipartite row index -> owning task by walking the degree array in
   step with the row stream (rows arrive in order). *)
let task_cursor degrees =
  let v = ref 0 and left = ref 0 in
  fun () ->
    while !left = 0 do
      left := degrees.(!v);
      if !left = 0 then incr v
    done;
    decr left;
    let task = !v in
    if !left = 0 then incr v;
    task

let stream rng ~family ~n ~p ~dv ~dh ~g ~weights ~emit =
  if n <= 0 || p <= 0 then invalid_arg "Hyper.Generate: n and p must be positive";
  if dv <= 0 || dh <= 0 then invalid_arg "Hyper.Generate: dv and dh must be positive";
  let draw_w = stream_weight_drawer rng weights in
  let degrees = degrees_step rng ~n ~dv in
  let nh = Array.fold_left ( + ) 0 degrees in
  let next_task = task_cursor degrees in
  let row _i procs = emit ~task:(next_task ()) ~procs ~weight:(draw_w ()) in
  (match family with
  | Hilo -> Bipartite.Hilo.iter_rows ~n1:nh ~n2:p ~g ~d:dh row
  | Fewg_manyg -> Bipartite.Fewg_manyg.iter_rows rng ~n1:nh ~n2:p ~g ~d:dh row);
  nh

let stream_uniform rng ~n ~p ~dv ~dh ~weights ~emit =
  if n <= 0 || p <= 0 then invalid_arg "Hyper.Generate: n and p must be positive";
  if dv <= 0 || dh <= 0 then invalid_arg "Hyper.Generate: dv and dh must be positive";
  let draw_w = stream_weight_drawer rng weights in
  let degrees = degrees_step rng ~n ~dv in
  let nh = Array.fold_left ( + ) 0 degrees in
  let next_task = task_cursor degrees in
  for _i = 1 to nh do
    let size = draw_size rng ~dh ~p in
    let picks = Randkit.Prng.sample_without_replacement rng ~k:size ~n:p in
    Array.sort compare picks;
    emit ~task:(next_task ()) ~procs:picks ~weight:(draw_w ())
  done;
  nh

let stream_powerlaw rng ~n ~p ~dv ~dh ~alpha ~weights ~emit =
  if n <= 0 || p <= 0 then invalid_arg "Hyper.Generate: n and p must be positive";
  if dv <= 0 || dh <= 0 then invalid_arg "Hyper.Generate: dv and dh must be positive";
  let draw_w = stream_weight_drawer rng weights in
  let draw = zipf_sampler rng ~p ~alpha in
  let degrees = degrees_step rng ~n ~dv in
  let nh = Array.fold_left ( + ) 0 degrees in
  let next_task = task_cursor degrees in
  for _i = 1 to nh do
    let size = draw_size rng ~dh ~p in
    let seen = Hashtbl.create size in
    while Hashtbl.length seen < size do
      Hashtbl.replace seen (draw ()) ()
    done;
    let procs = Array.of_seq (Hashtbl.to_seq_keys seen) in
    Array.sort compare procs;
    emit ~task:(next_task ()) ~procs ~weight:(draw_w ())
  done;
  nh

(* SINGLEPROC-UNIT edge streams: each bipartite edge becomes a singleton
   unit-weight hyperedge — the shape the Konrad–Rosén solvers consume. *)
let stream_sp rng ~family ~n ~p ~g ~d ~emit =
  if n <= 0 || p <= 0 then invalid_arg "Hyper.Generate: n and p must be positive";
  let edges = ref 0 in
  let row v neighbors =
    Array.iter
      (fun u ->
        incr edges;
        emit ~task:v ~proc:u)
      neighbors
  in
  (match family with
  | Hilo -> Bipartite.Hilo.iter_rows ~n1:n ~n2:p ~g ~d row
  | Fewg_manyg -> Bipartite.Fewg_manyg.iter_rows rng ~n1:n ~n2:p ~g ~d row);
  !edges

let fig2 () =
  Graph.create ~n1:4 ~n2:3
    ~hyperedges:
      [
        (0, [| 0 |], 1.0);
        (0, [| 1; 2 |], 1.0);
        (1, [| 0; 1 |], 1.0);
        (1, [| 1; 2 |], 1.0);
        (2, [| 2 |], 1.0);
        (3, [| 2 |], 1.0);
      ]
