(** Binary edge-stream format: out-of-core hypergraph instances.

    A stream file is a version-tagged 36-byte header followed by CRC-framed
    chunks of hyperedge records.  Writer and reader are both O(one chunk) in
    memory, so instances with 10^7+ hyperedges can be produced (by the
    generators), stored, validated (by [doctor]) and consumed (by the
    streaming solvers in [lib/stream]) without ever materializing the
    in-core CSR that {!Hyper.Graph} would need.

    The header records three monotone flags computed while writing —
    every-record-singleton, every-weight-unit, task-grouped (nondecreasing
    task ids) — which the ingest tier uses to pick a solver, plus the record
    and pin counts, patched in place when the writer is closed.  A file
    whose count fields are still all-ones was never sealed; {!validate}
    reports that distinctly from a torn or corrupt chunk. *)

val version : int
(** Format version written into new headers (currently 1). *)

val header_bytes : int

type header = {
  h_version : int;
  h_flags : int;
  h_n1 : int;  (** tasks *)
  h_n2 : int;  (** processors *)
  h_records : int;  (** hyperedge count; [-1] when the writer never sealed *)
  h_pins : int;  (** total pin count; [-1] when unsealed *)
}

val singleton : header -> bool
(** Every record has exactly one processor (bipartite/SINGLEPROC shape). *)

val unit_weight : header -> bool
(** Every record weight is 1.0. *)

val task_grouped : header -> bool
(** Task ids are nondecreasing, so each task's records are contiguous. *)

val sealed : header -> bool

val csr_estimate_words : header -> int option
(** Words the in-core {!Hyper.Graph} CSR of this instance would occupy
    (offsets + pins + weights); [None] until sealed.  This is the yardstick
    the ingest threshold and the memory-bound assertions compare against. *)

(** {1 Writer} *)

type writer

val create_writer : ?chunk_records:int -> path:string -> n1:int -> n2:int -> unit -> writer
(** Opens [path] and writes an unsealed header.  [chunk_records] bounds the
    buffered records per chunk (default 8192). *)

val add : writer -> task:int -> procs:int array -> weight:float -> unit
(** Append one hyperedge.  Validates exactly like [Hyper.Graph.create]
    (ranges, positive weight, nonempty and duplicate-free pins); raises
    [Invalid_argument] otherwise. *)

val writer_records : writer -> int

val close_writer : writer -> unit
(** Flush the tail chunk and seal the header (patch counts + flags) in
    place.  Idempotent. *)

(** {1 Reader} *)

type reader

val open_reader : string -> reader
(** Validates the header (magic, version, size caps); raises [Failure] with
    a descriptive message on anything that is not an edge stream. *)

val header : reader -> header
val close_reader : reader -> unit

val rewind : reader -> unit
(** Seek back to the first chunk — the few-pass solvers re-read the file
    once per pass. *)

val iter : reader -> (task:int -> procs:int array -> weight:float -> unit) -> unit
(** One full pass from the current position.  Each record is range-checked
    against the header sizes; raises [Failure] at the first torn or corrupt
    frame ([validate] is the forgiving variant). *)

val fold : reader -> init:'a -> f:('a -> task:int -> procs:int array -> weight:float -> 'a) -> 'a

(** {1 Whole-file convenience} *)

val save : string -> Graph.t -> unit
(** Write an in-core graph out as a (sealed) stream file. *)

val load : string -> Graph.t
(** Materialize a stream file as an in-core graph — the ingest fallback for
    instances that fit. *)

(** {1 Validation (doctor)} *)

type report = {
  r_header : header option;  (** [None] when the header itself is invalid *)
  r_records : int;  (** records readable before the first error *)
  r_pins : int;
  r_chunks : int;
  r_sealed : bool;
  r_counts_match : bool;  (** sealed, error-free, and header counts equal the scan *)
  r_error : string option;  (** first framing or validation error, with offset *)
}

val validate : string -> report
(** Walk the chunk chain like the journal scanner: stop at the first frame
    whose length, bytes or checksum don't hold up and report the valid
    prefix alongside the error.  Never raises. *)
