(** Bipartite hypergraphs H = (V1 ∪ V2, N) for MULTIPROC (paper Sec. II-B).

    Every hyperedge contains exactly one task vertex (V1) and a non-empty set
    of processor vertices (V2); it models one *configuration* of that task,
    with weight w_h: the execution time the task adds to {e each} processor
    of the configuration.  Hyperedges are stored canonically grouped by task,
    so the hyperedges of task [v] are the contiguous ids
    [task_off.(v) .. task_off.(v+1) − 1]. *)

type t = private {
  n1 : int;  (** number of tasks *)
  n2 : int;  (** number of processors *)
  task_off : int array;  (** length [n1+1]; hyperedge id ranges per task *)
  h_off : int array;  (** length [num_hyperedges+1]; pin ranges per hyperedge *)
  h_adj : int array;  (** processor pins, grouped by hyperedge *)
  w : float array;  (** hyperedge weights *)
}

val create : n1:int -> n2:int -> hyperedges:(int * int array * float) list -> t
(** [create ~n1 ~n2 ~hyperedges] from [(task, processors, weight)] triples.
    Validates: endpoints in range, weights positive, processor sets non-empty
    and duplicate-free.  Raises [Invalid_argument] otherwise.  Hyperedges are
    re-grouped by task; relative order within a task is preserved (heuristic
    tie-breaking is sensitive to it). *)

val num_hyperedges : t -> int
val num_pins : t -> int
(** Σ_h |h ∩ V2| — the size measure reported in Table I. *)

val task_degree : t -> int -> int
(** Number of configurations of a task (d_v in the paper). *)

val max_task_degree : t -> int

val iter_task_hyperedges : t -> int -> (int -> unit) -> unit
(** [iter_task_hyperedges h v f] calls [f] on each hyperedge id of task
    [v]. *)

val h_task : t -> int -> int
(** Owning task of a hyperedge. *)

val h_size : t -> int -> int
(** |h ∩ V2|. *)

val h_weight : t -> int -> float

val iter_h_procs : t -> int -> (int -> unit) -> unit
(** Iterate the processor pins of a hyperedge. *)

val h_procs : t -> int -> int array
(** Fresh array of the processor pins of a hyperedge. *)

val with_weights : t -> float array -> t
(** Same structure, new weights (length-checked, positive). *)

val has_isolated_task : t -> bool
(** True when some task has no configuration (infeasible instance). *)

val of_bipartite : Bipartite.Graph.t -> t
(** Degenerate embedding: each bipartite edge becomes a singleton-processor
    hyperedge, so SINGLEPROC is literally the special case the paper
    describes.  Hypergraph heuristics run unchanged on the result. *)

val to_bipartite : t -> Bipartite.Graph.t option
(** Inverse of {!of_bipartite}: [Some g] iff every hyperedge is a singleton,
    each becoming one bipartite edge of the same weight.  Contract: edge [e]
    of the result corresponds to hyperedge [e] (both CSRs group stably by
    task, one entry per hyperedge), so a {e bipartite} edge choice is
    directly a {e hyperedge} choice.  [None] on any multi-processor
    configuration. *)

val min_max_h_size : t -> int * int
(** Smallest and largest configuration sizes (used by the Related weight
    scheme).  Raises [Invalid_argument] on hypergraphs without
    hyperedges. *)

val pp : Format.formatter -> t -> unit
