(* Binary edge-stream format: a version-tagged fixed header followed by
   CRC-framed chunks of hyperedge records.  The point of the format is that
   both ends are O(chunk): the writer buffers one chunk before flushing, the
   reader inflates one chunk at a time, and neither side ever holds the
   whole instance — that is what lets `gen --stream-out` emit 10^7+ edges
   and the streaming solvers consume them in bounded memory.

   Layout (all integers little-endian):

     header (36 bytes):
       magic   "SMESTR"                 6 bytes
       version u16                      (currently 1)
       flags   u32                      bit 0 singleton, bit 1 unit-weight,
                                        bit 2 task-grouped (nondecreasing ids)
       n1      u32   tasks
       n2      u32   processors
       records u64   hyperedge count    (all-ones until sealed by close)
       pins    u64   total pin count    (all-ones until sealed by close)

     chunk:
       count   u32   records in this chunk (>= 1)
       bytes   u32   payload length
       payload count records back to back
       crc32   u32   reflected IEEE CRC of the payload

     record:
       task    u32
       weight  f64   (IEEE bits)
       k       u32   pin count (>= 1)
       procs   k * u32

   The counts in the header are patched in place by [close_writer]; a file
   whose count fields are still all-ones was never sealed (writer crashed),
   which [validate] reports distinctly from a torn tail. *)

let magic = "SMESTR"
let version = 1
let header_bytes = 36

let flag_singleton = 1
let flag_unit = 2
let flag_grouped = 4

(* Same caps as the text loader: a hostile header must not be able to
   request absurd allocations before any record is read. *)
let max_side = 100_000_000
let max_chunk_bytes = 1 lsl 24
let max_chunk_records = 1 lsl 20
let max_pins = 1 lsl 20

let unsealed = -1 (* all-ones u64 read back as an OCaml int *)

(* CRC32 (reflected IEEE polynomial), same table construction as the
   server journal; duplicated here because [hyper] sits below [server] in
   the library stack and the format must stay dependency-free. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32_bytes b ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.unsafe_get b i) in
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int byte)) 0xFFl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

type header = {
  h_version : int;
  h_flags : int;
  h_n1 : int;
  h_n2 : int;
  h_records : int;  (** [unsealed] ([-1]) when the writer never closed *)
  h_pins : int;
}

let singleton h = h.h_flags land flag_singleton <> 0
let unit_weight h = h.h_flags land flag_unit <> 0
let task_grouped h = h.h_flags land flag_grouped <> 0
let sealed h = h.h_records >= 0

(* Words an in-core CSR of this instance would take (task_off, h_off, h_adj,
   w — see Hyper.Graph), for the ingest threshold and the memory-ratio
   assertions.  [None] until the stream is sealed. *)
let csr_estimate_words h =
  if not (sealed h) then None
  else Some (h.h_n1 + 1 + (2 * (h.h_records + 1)) + h.h_pins)

(* {2 Writer} *)

type writer = {
  oc : out_channel;
  w_n1 : int;
  w_n2 : int;
  chunk_records : int;
  buf : Buffer.t;
  mutable pending : int;  (* records buffered, not yet framed *)
  mutable records : int;
  mutable pins : int;
  mutable w_flags : int;
  mutable last_task : int;
  mutable closed : bool;
}

let put_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let put_u64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let put_f64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  Buffer.add_bytes buf b

let header_string ~flags ~n1 ~n2 ~records ~pins =
  let buf = Buffer.create header_bytes in
  Buffer.add_string buf magic;
  put_u16 buf version;
  put_u32 buf flags;
  put_u32 buf n1;
  put_u32 buf n2;
  (if records < 0 then Buffer.add_string buf (String.make 8 '\xff') else put_u64 buf records);
  (if pins < 0 then Buffer.add_string buf (String.make 8 '\xff') else put_u64 buf pins);
  Buffer.contents buf

let create_writer ?(chunk_records = 8192) ~path ~n1 ~n2 () =
  if n1 < 0 || n2 < 0 then invalid_arg "Stream_io: negative size";
  if n1 > max_side || n2 > max_side then invalid_arg "Stream_io: sizes out of range";
  if chunk_records <= 0 || chunk_records > max_chunk_records then
    invalid_arg "Stream_io: bad chunk size";
  let oc = open_out_bin path in
  output_string oc (header_string ~flags:0 ~n1 ~n2 ~records:unsealed ~pins:unsealed);
  {
    oc;
    w_n1 = n1;
    w_n2 = n2;
    chunk_records;
    buf = Buffer.create 65536;
    pending = 0;
    records = 0;
    pins = 0;
    w_flags = flag_singleton lor flag_unit lor flag_grouped;
    last_task = -1;
    closed = false;
  }

let flush_chunk w =
  if w.pending > 0 then begin
    let payload = Buffer.to_bytes w.buf in
    let len = Bytes.length payload in
    let frame = Buffer.create (len + 12) in
    put_u32 frame w.pending;
    put_u32 frame len;
    Buffer.add_bytes frame payload;
    put_u32 frame (Int32.to_int (crc32_bytes payload ~pos:0 ~len) land 0xFFFFFFFF);
    Buffer.output_buffer w.oc frame;
    Buffer.clear w.buf;
    w.pending <- 0
  end

let add w ~task ~procs ~weight =
  if w.closed then invalid_arg "Stream_io.add: writer closed";
  if task < 0 || task >= w.w_n1 then invalid_arg "Stream_io.add: task out of range";
  if not (weight > 0.0) then invalid_arg "Stream_io.add: weight must be positive";
  let k = Array.length procs in
  if k = 0 then invalid_arg "Stream_io.add: empty processor set";
  if k > max_pins then invalid_arg "Stream_io.add: too many pins";
  for i = 0 to k - 1 do
    let u = procs.(i) in
    if u < 0 || u >= w.w_n2 then invalid_arg "Stream_io.add: processor out of range";
    for j = 0 to i - 1 do
      if procs.(j) = u then invalid_arg "Stream_io.add: duplicate processor"
    done
  done;
  if k <> 1 then w.w_flags <- w.w_flags land lnot flag_singleton;
  if weight <> 1.0 then w.w_flags <- w.w_flags land lnot flag_unit;
  if task < w.last_task then w.w_flags <- w.w_flags land lnot flag_grouped;
  w.last_task <- task;
  put_u32 w.buf task;
  put_f64 w.buf weight;
  put_u32 w.buf k;
  Array.iter (fun u -> put_u32 w.buf u) procs;
  w.pending <- w.pending + 1;
  w.records <- w.records + 1;
  w.pins <- w.pins + k;
  if w.pending >= w.chunk_records || Buffer.length w.buf >= max_chunk_bytes - (12 + (8 * max_pins))
  then flush_chunk w

let close_writer w =
  if not w.closed then begin
    w.closed <- true;
    flush_chunk w;
    (* Seal: rewrite the header with the real counts and flags. *)
    seek_out w.oc 0;
    output_string w.oc
      (header_string ~flags:w.w_flags ~n1:w.w_n1 ~n2:w.w_n2 ~records:w.records ~pins:w.pins);
    close_out w.oc
  end

let writer_records w = w.records

(* {2 Reader} *)

type reader = {
  ic : in_channel;
  hdr : header;
  mutable chunk : Bytes.t;  (* current decoded payload *)
  mutable chunk_count : int;
  mutable chunk_pos : int;  (* byte cursor in [chunk] *)
  mutable chunk_left : int;  (* records left in [chunk] *)
  mutable file_pos : int;  (* byte offset of the next frame *)
}

let get_u16 b pos = Char.code (Bytes.get b pos) lor (Char.code (Bytes.get b (pos + 1)) lsl 8)

let get_u32 b pos =
  Char.code (Bytes.get b pos)
  lor (Char.code (Bytes.get b (pos + 1)) lsl 8)
  lor (Char.code (Bytes.get b (pos + 2)) lsl 16)
  lor (Char.code (Bytes.get b (pos + 3)) lsl 24)

let get_u64 b pos =
  let v = Bytes.get_int64_le b pos in
  if v = -1L then unsealed
  else if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    failwith "Stream_io: count field out of range"
  else Int64.to_int v

let fail_at pos msg = failwith (Printf.sprintf "Stream_io: offset %d: %s" pos msg)

let decode_header b =
  if Bytes.length b < header_bytes then failwith "Stream_io: short header";
  if Bytes.sub_string b 0 6 <> magic then failwith "Stream_io: bad magic (not an edge stream)";
  let v = get_u16 b 6 in
  if v <> version then failwith (Printf.sprintf "Stream_io: unsupported version %d" v);
  let flags = get_u32 b 8 in
  let n1 = get_u32 b 12 in
  let n2 = get_u32 b 16 in
  if n1 < 0 || n2 < 0 || n1 > max_side || n2 > max_side then
    failwith "Stream_io: sizes out of range";
  let records = get_u64 b 20 in
  let pins = get_u64 b 28 in
  { h_version = v; h_flags = flags; h_n1 = n1; h_n2 = n2; h_records = records; h_pins = pins }

let open_reader path =
  let ic = open_in_bin path in
  match
    let b = Bytes.create header_bytes in
    really_input ic b 0 header_bytes;
    decode_header b
  with
  | hdr ->
      {
        ic;
        hdr;
        chunk = Bytes.empty;
        chunk_count = 0;
        chunk_pos = 0;
        chunk_left = 0;
        file_pos = header_bytes;
      }
  | exception End_of_file ->
      close_in_noerr ic;
      failwith "Stream_io: short header"
  | exception e ->
      close_in_noerr ic;
      raise e

let header r = r.hdr
let close_reader r = close_in_noerr r.ic

let rewind r =
  seek_in r.ic header_bytes;
  r.chunk_left <- 0;
  r.chunk_pos <- 0;
  r.file_pos <- header_bytes

(* Load the next frame into [r.chunk].  Returns false at a clean EOF;
   raises on a torn or corrupt frame. *)
let next_chunk r =
  let head = Bytes.create 8 in
  match really_input r.ic head 0 8 with
  | exception End_of_file ->
      (* Either a clean boundary or a torn frame head: distinguish by
         whether any bytes remained. *)
      let here = pos_in r.ic in
      if here <> r.file_pos then fail_at r.file_pos "torn chunk head" else false
  | () ->
      let count = get_u32 head 0 in
      let len = get_u32 head 4 in
      if count <= 0 || count > max_chunk_records then fail_at r.file_pos "bad chunk record count";
      if len <= 0 || len > max_chunk_bytes then fail_at r.file_pos "bad chunk length";
      let payload = Bytes.create len in
      (match really_input r.ic payload 0 len with
      | exception End_of_file -> fail_at r.file_pos "torn chunk payload"
      | () -> ());
      let tail = Bytes.create 4 in
      (match really_input r.ic tail 0 4 with
      | exception End_of_file -> fail_at r.file_pos "torn chunk checksum"
      | () -> ());
      let want = get_u32 tail 0 in
      let got = Int32.to_int (crc32_bytes payload ~pos:0 ~len) land 0xFFFFFFFF in
      if want <> got then fail_at r.file_pos "chunk checksum mismatch";
      r.chunk <- payload;
      r.chunk_count <- count;
      r.chunk_pos <- 0;
      r.chunk_left <- count;
      r.file_pos <- r.file_pos + 8 + len + 4;
      true

(* Decode one record at the cursor; [f] must not retain [procs] (fresh
   array per call, but that is an implementation detail). *)
let read_record r f =
  let b = r.chunk in
  let pos = r.chunk_pos in
  if pos + 16 > Bytes.length b then fail_at r.file_pos "record overruns chunk";
  let task = get_u32 b pos in
  let weight = Int64.float_of_bits (Bytes.get_int64_le b (pos + 4)) in
  let k = get_u32 b (pos + 12) in
  if k <= 0 || k > max_pins then fail_at r.file_pos "bad pin count";
  if pos + 16 + (4 * k) > Bytes.length b then fail_at r.file_pos "record overruns chunk";
  if task < 0 || task >= r.hdr.h_n1 then fail_at r.file_pos "task out of range";
  if not (weight > 0.0) then fail_at r.file_pos "weight must be positive";
  let procs = Array.init k (fun i -> get_u32 b (pos + 16 + (4 * i))) in
  Array.iter
    (fun u -> if u < 0 || u >= r.hdr.h_n2 then fail_at r.file_pos "processor out of range")
    procs;
  r.chunk_pos <- pos + 16 + (4 * k);
  r.chunk_left <- r.chunk_left - 1;
  f ~task ~procs ~weight

(* One full pass over the stream from the current position. *)
let iter r f =
  let continue = ref true in
  while !continue do
    if r.chunk_left > 0 then read_record r f
    else if not (next_chunk r) then continue := false
  done

let fold r ~init ~f =
  let acc = ref init in
  iter r (fun ~task ~procs ~weight -> acc := f !acc ~task ~procs ~weight);
  !acc

(* {2 Whole-file helpers} *)

let save path h =
  let module G = Graph in
  let w = create_writer ~path ~n1:h.G.n1 ~n2:h.G.n2 () in
  Fun.protect
    ~finally:(fun () -> close_writer w)
    (fun () ->
      for e = 0 to G.num_hyperedges h - 1 do
        add w ~task:(G.h_task h e) ~procs:(G.h_procs h e) ~weight:(G.h_weight h e)
      done)

let load path =
  let r = open_reader path in
  Fun.protect
    ~finally:(fun () -> close_reader r)
    (fun () ->
      let hyperedges =
        fold r ~init:[] ~f:(fun acc ~task ~procs ~weight -> (task, procs, weight) :: acc)
      in
      Graph.create ~n1:r.hdr.h_n1 ~n2:r.hdr.h_n2 ~hyperedges:(List.rev hyperedges))

(* {2 Validation (doctor)} *)

type report = {
  r_header : header option;  (** [None]: magic/version/size check failed *)
  r_records : int;  (** records readable before the first error *)
  r_pins : int;
  r_chunks : int;
  r_sealed : bool;
  r_counts_match : bool;  (** header counts equal scanned counts *)
  r_error : string option;  (** first framing or validation error *)
}

let validate path =
  let empty =
    {
      r_header = None;
      r_records = 0;
      r_pins = 0;
      r_chunks = 0;
      r_sealed = false;
      r_counts_match = false;
      r_error = None;
    }
  in
  match open_reader path with
  | exception Failure msg -> { empty with r_error = Some msg }
  | exception Sys_error msg -> { empty with r_error = Some msg }
  | r ->
      Fun.protect
        ~finally:(fun () -> close_reader r)
        (fun () ->
          let records = ref 0 and pins = ref 0 and chunks = ref 0 in
          let error = ref None in
          (try
             let continue = ref true in
             while !continue do
               if r.chunk_left > 0 then
                 read_record r (fun ~task:_ ~procs ~weight:_ ->
                     incr records;
                     pins := !pins + Array.length procs)
               else if next_chunk r then incr chunks
               else continue := false
             done
           with Failure msg -> error := Some msg);
          let sealed_file = sealed r.hdr in
          let counts_match =
            sealed_file && r.hdr.h_records = !records && r.hdr.h_pins = !pins && !error = None
          in
          {
            r_header = Some r.hdr;
            r_records = !records;
            r_pins = !pins;
            r_chunks = !chunks;
            r_sealed = sealed_file;
            r_counts_match = counts_match;
            r_error = !error;
          })
