(** Ranking-stability sweep over the generator parameters.

    The paper reports detailed numbers only for dv = 5, dh = 10, claiming
    that "in all combinations of dv, dh [∈ {2,5,10}²] the ranking of the
    heuristics according to the mean average quality were the same"
    (Sec. V-A.2/V-C).  This driver reruns the four MULTIPROC heuristics over
    the full (family × g × dv × dh) cross product on one (n, p) size and
    reports the per-combination ranking, so the claim can be checked
    mechanically. *)

type combo_result = {
  family : Hyper.Generate.family;
  g : int;
  dv : int;
  dh : int;
  ratios : (Semimatch.Greedy_hyper.algorithm * float) list;
      (** median makespan/LB per heuristic *)
  ranking : Semimatch.Greedy_hyper.algorithm list;  (** best first *)
}

val run :
  ?seeds:int ->
  ?n:int ->
  ?p:int ->
  ?dvs:int list ->
  ?dhs:int list ->
  ?gs:int list ->
  ?jobs:int ->
  weights:Hyper.Weights.t ->
  unit ->
  combo_result list
(** Defaults: 3 seeds, n = 1280, p = 256, dvs = dhs = [2; 5; 10],
    gs = [32; 128].  [jobs] (default 1) fans the parameter combinations out
    over that many domains; every combination is generated and solved
    independently of the others, so the results — order included — are
    identical for every job count. *)

val render : combo_result list -> string
(** Table of ratios plus a summary line stating whether the best heuristic
    (and the full ranking) is identical across combinations, per family. *)
