module Faults = Semimatch.Faults
module Repair = Semimatch.Repair

type row = {
  kill_fraction : float;
  affected_mean : float;
  moved_mean : float;
  infeasible_mean : float;
  repair_ratio : float;
  resolve_ratio : float;
  resolve_wins : int;
}

let fractions = [ 0.05; 0.125; 0.25; 0.5 ]

let mean xs =
  match xs with [] -> 0.0 | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* A replicate prices its makespans against its own surviving-machine LB;
   an empty surviving machine (possible only at extreme kill fractions)
   contributes the neutral ratio 1. *)
let ratio m lb = if lb > 0.0 then m /. lb else 1.0

let run_row ?(seeds = 5) ?(n = 320) ?(p = 64) ~kill_fraction () =
  let replicate seed =
    let rng = Randkit.Prng.create ~seed:(seed + 1) in
    let h =
      Hyper.Generate.generate rng ~family:Hyper.Generate.Fewg_manyg ~n ~p ~dv:5 ~dh:3 ~g:8
        ~weights:Hyper.Weights.Related
    in
    let a = Semimatch.Greedy_hyper.run Semimatch.Greedy_hyper.Expected_vector_greedy_hyp h in
    let plan = Faults.random_crashes rng ~p ~kill_fraction in
    let d = Faults.degradation plan ~p in
    let r = Repair.repair ~dead:d.Faults.dead h a in
    let s = Repair.resolve ~dead:d.Faults.dead h in
    (r, s)
  in
  let reps = List.init seeds replicate in
  let medians f = Ds.Stats.median (Array.of_list (List.map f reps)) in
  {
    kill_fraction;
    affected_mean = mean (List.map (fun (r, _) -> float_of_int (List.length r.Repair.affected)) reps);
    moved_mean = mean (List.map (fun (r, _) -> float_of_int (List.length r.Repair.moved)) reps);
    infeasible_mean =
      mean (List.map (fun (r, _) -> float_of_int (List.length r.Repair.infeasible)) reps);
    repair_ratio = medians (fun (r, _) -> ratio r.Repair.makespan r.Repair.lower_bound);
    resolve_ratio = medians (fun (_, s) -> ratio s.Repair.makespan s.Repair.lower_bound);
    resolve_wins =
      List.length (List.filter (fun (r, _) -> r.Repair.resolved_from_scratch) reps);
  }

let run ?seeds () = List.map (fun kill_fraction -> run_row ?seeds ~kill_fraction ()) fractions

let render rows =
  let header =
    [ "Killed"; "affected"; "moved"; "infeasible"; "repair/LB"; "resolve/LB"; "net used" ]
  in
  let body =
    List.map
      (fun r ->
        [
          Printf.sprintf "%g%%" (100.0 *. r.kill_fraction);
          Printf.sprintf "%.1f" r.affected_mean;
          Printf.sprintf "%.1f" r.moved_mean;
          Printf.sprintf "%.1f" r.infeasible_mean;
          Tables.fmt_ratio r.repair_ratio;
          Tables.fmt_ratio r.resolve_ratio;
          string_of_int r.resolve_wins;
        ])
      rows
  in
  "Fault sweep: incremental repair vs from-scratch re-solve after killing a\n\
   random processor subset (FewgManyg, related weights, n=320, p=64):\n\n"
  ^ Tables.render ~header ~rows:body ()

let write_json path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun r ->
          let json =
            Obs.Json.Obj
              [
                ("kill_fraction", Obs.Json.Num r.kill_fraction);
                ("affected_mean", Obs.Json.Num r.affected_mean);
                ("moved_mean", Obs.Json.Num r.moved_mean);
                ("infeasible_mean", Obs.Json.Num r.infeasible_mean);
                ("repair_ratio", Obs.Json.Num r.repair_ratio);
                ("resolve_ratio", Obs.Json.Num r.resolve_ratio);
                ("resolve_wins", Obs.Json.Num (float_of_int r.resolve_wins));
              ]
          in
          output_string oc (Obs.Json.to_string json ^ "\n"))
        rows)
