module Gh = Semimatch.Greedy_hyper
module H = Hyper.Graph

type algo_result = { algo : Gh.algorithm; ratio : float; time_s : float }

type row = {
  spec : Instances.multiproc_spec;
  weights : Hyper.Weights.t;
  lb : float;
  num_hyperedges : int;
  num_pins : int;
  results : algo_result list;
}

let default_algorithms =
  [ Gh.Sorted_greedy_hyp; Gh.Vector_greedy_hyp; Gh.Expected_greedy_hyp; Gh.Expected_vector_greedy_hyp ]

(* Monotonic timing (Obs.Span / CLOCK_MONOTONIC): experiment timings must
   survive NTP slews, which gettimeofday does not.  When telemetry is on the
   measurement is additionally recorded as a named span. *)
let time_it ?(span = "experiments.run") f =
  let sp = Obs.Span.enter span in
  let result, seconds = Obs.Span.time_s f in
  Obs.Span.exit sp;
  (result, seconds)

let run_row ?(algorithms = default_algorithms) ?(seeds = 10) ~weights spec =
  if seeds <= 0 then invalid_arg "Runner.run_row: seeds must be positive";
  let replicates =
    List.init seeds (fun seed -> Instances.generate_multiproc ~seed ~weights spec)
  in
  let lbs = Array.of_list (List.map Semimatch.Lower_bound.multiproc replicates) in
  let nhs = Array.of_list (List.map (fun h -> H.num_hyperedges h) replicates) in
  let pins = Array.of_list (List.map (fun h -> H.num_pins h) replicates) in
  let results =
    List.map
      (fun algo ->
        let ratios_and_times =
          List.mapi
            (fun i h ->
              let assignment, seconds =
                time_it ~span:("experiments." ^ Gh.short_name algo) (fun () -> Gh.run algo h)
              in
              let makespan = Semimatch.Hyp_assignment.makespan h assignment in
              (makespan /. lbs.(i), seconds))
            replicates
        in
        let ratios = Array.of_list (List.map fst ratios_and_times) in
        let times = Array.of_list (List.map snd ratios_and_times) in
        { algo; ratio = Ds.Stats.median ratios; time_s = Ds.Stats.mean times })
      algorithms
  in
  {
    spec;
    weights;
    lb = Ds.Stats.median lbs;
    num_hyperedges = Ds.Stats.median_int nhs;
    num_pins = Ds.Stats.median_int pins;
    results;
  }

let run ?algorithms ?seeds ?(scale = 1) ?(jobs = 1) ~weights () =
  Instances.paper_grid ()
  |> List.map (Instances.scaled scale)
  |> Parpool.Pool.map_list ~jobs ~f:(run_row ?algorithms ?seeds ~weights)

let weight_suffix = function Hyper.Weights.Unit -> "" | _ -> "-W"

let row_name r = r.spec.Instances.name ^ weight_suffix r.weights

let render_table1 rows =
  let header = [ "Instance"; "|V1|"; "|V2|"; "|N|"; "sum|h∩V2|" ] in
  let body =
    List.map
      (fun r ->
        [
          row_name r;
          string_of_int r.spec.Instances.n;
          string_of_int r.spec.Instances.p;
          string_of_int r.num_hyperedges;
          string_of_int r.num_pins;
        ])
      rows
  in
  Tables.render ~header ~rows:body ()

let block_of r =
  match r.spec.Instances.family with Hyper.Generate.Fewg_manyg -> `Fewg | Hyper.Generate.Hilo -> `Hilo

let render_block rows =
  match rows with
  | [] -> ""
  | first :: _ ->
      let algos = List.map (fun res -> res.algo) first.results in
      let header = "Instance" :: "LB" :: List.map Gh.short_name algos in
      let body =
        List.map
          (fun r ->
            row_name r :: Printf.sprintf "%.4g" r.lb
            :: List.map (fun res -> Tables.fmt_ratio res.ratio) r.results)
          rows
      in
      let mean_over extract =
        List.mapi
          (fun i _ ->
            Ds.Stats.mean (Array.of_list (List.map (fun r -> extract (List.nth r.results i)) rows)))
          algos
      in
      let footer =
        [
          "Average quality" :: "" :: List.map Tables.fmt_ratio (mean_over (fun res -> res.ratio));
          "Average time (s)" :: "" :: List.map Tables.fmt_time (mean_over (fun res -> res.time_s));
        ]
      in
      Tables.render ~header ~rows:body ~footer ()

let render_quality ~title rows =
  let fewg = List.filter (fun r -> block_of r = `Fewg) rows in
  let hilo = List.filter (fun r -> block_of r = `Hilo) rows in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (title ^ "\n\n");
  if fewg <> [] then begin
    Buffer.add_string buf "FewgManyg instances:\n";
    Buffer.add_string buf (render_block fewg);
    Buffer.add_char buf '\n'
  end;
  if hilo <> [] then begin
    Buffer.add_string buf "HiLo instances:\n";
    Buffer.add_string buf (render_block hilo)
  end;
  Buffer.contents buf

let to_csv rows =
  let header =
    [ "instance"; "weights"; "n"; "p"; "g"; "dv"; "dh"; "lb"; "num_hyperedges"; "num_pins";
      "algorithm"; "ratio"; "time_s" ]
  in
  let body =
    List.concat_map
      (fun r ->
        List.map
          (fun res ->
            [
              r.spec.Instances.name;
              Hyper.Weights.name r.weights;
              string_of_int r.spec.Instances.n;
              string_of_int r.spec.Instances.p;
              string_of_int r.spec.Instances.g;
              string_of_int r.spec.Instances.dv;
              string_of_int r.spec.Instances.dh;
              Printf.sprintf "%.6g" r.lb;
              string_of_int r.num_hyperedges;
              string_of_int r.num_pins;
              Gh.short_name res.algo;
              Printf.sprintf "%.6g" res.ratio;
              Printf.sprintf "%.6g" res.time_s;
            ])
          r.results)
      rows
  in
  Tables.csv ~header ~rows:body
