module Gh = Semimatch.Greedy_hyper

type table = string

let time_it f = Runner.time_it ~span:"experiments.ablation" f

let mean xs = Ds.Stats.mean (Array.of_list xs)

let vector_variants ?(seeds = 3) spec =
  let replicates =
    List.init seeds (fun seed ->
        Instances.generate_multiproc ~seed ~weights:Hyper.Weights.Related spec)
  in
  let row algo variant label =
    let times, makespans =
      List.split
        (List.map
           (fun h ->
             let a, dt = time_it (fun () -> Gh.run ~vector_variant:variant algo h) in
             (dt, Semimatch.Hyp_assignment.makespan h a))
           replicates)
    in
    [ label; Tables.fmt_time (mean times); Printf.sprintf "%.4g" (mean makespans) ]
  in
  let rows =
    [
      row Gh.Vector_greedy_hyp Gh.Naive "VGH naive (paper's implementation)";
      row Gh.Vector_greedy_hyp Gh.Merged "VGH merged list (Sec. IV-D3 idea)";
      row Gh.Expected_vector_greedy_hyp Gh.Naive "EVG naive";
      row Gh.Expected_vector_greedy_hyp Gh.Merged "EVG merged list";
    ]
  in
  Printf.sprintf "Ablation: vector-heuristic variant on %s (related weights, %d seeds)\n\n%s"
    spec.Instances.name seeds
    (Tables.render ~header:[ "variant"; "mean time (s)"; "mean makespan" ] ~rows ())

let matching_engines ?(seeds = 3) spec =
  let replicates = List.init seeds (fun seed -> Instances.generate_singleproc ~seed spec) in
  let rows =
    List.map
      (fun engine ->
        let times, spans =
          List.split
            (List.map
               (fun g ->
                 let s, dt = time_it (fun () -> Semimatch.Exact_unit.solve ~engine g) in
                 (dt, float_of_int s.Semimatch.Exact_unit.makespan))
               replicates)
        in
        [ Matching.engine_name engine; Tables.fmt_time (mean times); Printf.sprintf "%.4g" (mean spans) ])
      Matching.all_engines
  in
  Printf.sprintf "Ablation: matching engine inside the exact algorithm on %s (%d seeds)\n\n%s"
    spec.Instances.sp_name seeds
    (Tables.render ~header:[ "engine"; "mean time (s)"; "mean optimum" ] ~rows ())

let exact_strategies ?(seeds = 3) spec =
  let replicates = List.init seeds (fun seed -> Instances.generate_singleproc ~seed spec) in
  let strategy_row strategy =
    let measured =
      List.map
        (fun g ->
          let s, dt = time_it (fun () -> Semimatch.Exact_unit.solve ~strategy g) in
          (dt, float_of_int s.Semimatch.Exact_unit.deadlines_tried,
           float_of_int s.Semimatch.Exact_unit.makespan))
        replicates
    in
    let times = List.map (fun (t, _, _) -> t) measured in
    let tried = List.map (fun (_, d, _) -> d) measured in
    let spans = List.map (fun (_, _, m) -> m) measured in
    [
      Semimatch.Exact_unit.strategy_name strategy;
      Tables.fmt_time (mean times);
      Printf.sprintf "%.1f" (mean tried);
      Printf.sprintf "%.4g" (mean spans);
    ]
  in
  let harvey_row =
    let measured =
      List.map
        (fun g ->
          let s, dt = time_it (fun () -> Semimatch.Harvey.solve g) in
          (dt, float_of_int s.Semimatch.Harvey.makespan))
        replicates
    in
    [
      "harvey (ASM, ref. [14])";
      Tables.fmt_time (mean (List.map fst measured));
      "-";
      Printf.sprintf "%.4g" (mean (List.map snd measured));
    ]
  in
  let rows =
    [
      strategy_row Semimatch.Exact_unit.Incremental;
      strategy_row Semimatch.Exact_unit.Bisection;
      harvey_row;
    ]
  in
  Printf.sprintf "Ablation: exact-algorithm search strategy on %s (%d seeds)\n\n%s"
    spec.Instances.sp_name seeds
    (Tables.render ~header:[ "method"; "mean time (s)"; "deadlines"; "mean optimum" ] ~rows ())

let baselines ?(seeds = 3) ?(weights = Hyper.Weights.Related) spec =
  let replicates =
    List.init seeds (fun seed -> Instances.generate_multiproc ~seed ~weights spec)
  in
  let lbs = List.map Semimatch.Lower_bound.multiproc replicates in
  let measure label solve =
    let ratios, times =
      List.split
        (List.map2
           (fun h lb ->
             let a, dt = time_it (fun () -> solve h) in
             (Semimatch.Hyp_assignment.makespan h a /. lb, dt))
           replicates lbs)
    in
    [ label; Tables.fmt_ratio (mean ratios); Tables.fmt_time (mean times) ]
  in
  let rng () = Randkit.Prng.create ~seed:1234 in
  let rows =
    [
      measure "random assignment" (fun h -> Semimatch.Randomized.random_assignment (rng ()) h);
      measure "random-order greedy" (fun h -> Semimatch.Randomized.random_order_greedy (rng ()) h);
      measure "SGH (degree order)" (fun h -> Gh.run Gh.Sorted_greedy_hyp h);
      measure "EGH" (fun h -> Gh.run Gh.Expected_greedy_hyp h);
      measure "EVG" (fun h -> Gh.run Gh.Expected_vector_greedy_hyp h);
      measure "EVG + local search" (fun h ->
          fst (Semimatch.Local_search.refine h (Gh.run Gh.Expected_vector_greedy_hyp h)));
      measure "GRASP (10x random-order + LS)" (fun h ->
          fst
            (Semimatch.Randomized.restarts ~refine:true ~rounds:10 (rng ()) h
               Semimatch.Randomized.random_order_greedy));
      measure "simulated annealing (from SGH)" (fun h ->
          fst (Semimatch.Annealing.solve (rng ()) h));
    ]
  in
  Printf.sprintf "Ablation: informed heuristics vs randomized baselines on %s (%s weights, %d seeds)\n\n%s"
    spec.Instances.name (Hyper.Weights.name weights) seeds
    (Tables.render ~header:[ "method"; "ratio to LB"; "mean time (s)" ] ~rows ())

let run_all ?(seeds = 3) ?(scale = 1) () =
  let find name = List.find (fun s -> s.Instances.name = name) (Instances.paper_grid ()) in
  let find_sp name =
    List.find (fun s -> s.Instances.sp_name = name) (Instances.paper_grid_singleproc ())
  in
  let scale_sp spec = Instances.scaled_singleproc scale spec in
  String.concat "\n"
    [
      vector_variants ~seeds (Instances.scaled scale (find "FG-5-1-MP"));
      matching_engines ~seeds (scale_sp (find_sp "HLF-20-4"));
      exact_strategies ~seeds (scale_sp (find_sp "HLF-20-4"));
      baselines ~seeds (Instances.scaled scale (find "FG-20-4-MP"));
    ]
