module Gb = Semimatch.Greedy_bipartite

type algo_result = { algo : Gb.algorithm; ratio : float; time_s : float }

type row = {
  spec : Instances.singleproc_spec;
  optimum : float;
  exact_time_s : float;
  results : algo_result list;
}

let time_it f = Runner.time_it ~span:"experiments.singleproc" f

let run_row ?(algorithms = Gb.all) ?(seeds = 10) ?exact_engine spec =
  if seeds <= 0 then invalid_arg "Sp_runner.run_row: seeds must be positive";
  let replicates = List.init seeds (fun seed -> Instances.generate_singleproc ~seed spec) in
  let exact =
    List.map
      (fun g -> time_it (fun () -> (Semimatch.Exact_unit.solve ?engine:exact_engine g).makespan))
      replicates
  in
  let optima = Array.of_list (List.map (fun (m, _) -> float_of_int m) exact) in
  let results =
    List.map
      (fun algo ->
        let measured =
          List.mapi
            (fun i g ->
              let makespan, seconds = time_it (fun () -> Gb.makespan algo g) in
              (makespan /. optima.(i), seconds))
            replicates
        in
        {
          algo;
          ratio = Ds.Stats.median (Array.of_list (List.map fst measured));
          time_s = Ds.Stats.mean (Array.of_list (List.map snd measured));
        })
      algorithms
  in
  {
    spec;
    optimum = Ds.Stats.median optima;
    exact_time_s = Ds.Stats.mean (Array.of_list (List.map snd exact));
    results;
  }

let run ?algorithms ?seeds ?(scale = 1) ?d ?(jobs = 1) () =
  Instances.paper_grid_singleproc ?d ()
  |> List.map (Instances.scaled_singleproc scale)
  |> Parpool.Pool.map_list ~jobs ~f:(fun spec -> run_row ?algorithms ?seeds spec)

let render ~title rows =
  match rows with
  | [] -> title ^ "\n(no rows)\n"
  | first :: _ ->
      let algos = List.map (fun r -> r.algo) first.results in
      let header = "Instance" :: "M_opt" :: "t_exact(s)" :: List.map Gb.name algos in
      let body =
        List.map
          (fun r ->
            r.spec.Instances.sp_name
            :: Printf.sprintf "%.4g" r.optimum
            :: Tables.fmt_time r.exact_time_s
            :: List.map (fun res -> Tables.fmt_ratio res.ratio) r.results)
          rows
      in
      let mean_over extract =
        List.mapi
          (fun i _ ->
            Ds.Stats.mean (Array.of_list (List.map (fun r -> extract (List.nth r.results i)) rows)))
          algos
      in
      let footer =
        [
          "Average quality" :: "" :: ""
          :: List.map Tables.fmt_ratio (mean_over (fun res -> res.ratio));
          "Average time (s)" :: ""
          :: Tables.fmt_time (Ds.Stats.mean (Array.of_list (List.map (fun r -> r.exact_time_s) rows)))
          :: List.map Tables.fmt_time (mean_over (fun res -> res.time_s));
        ]
      in
      title ^ "\n\n" ^ Tables.render ~header ~rows:body ~footer ()

let to_csv rows =
  let header =
    [ "instance"; "n"; "p"; "d"; "g"; "optimum"; "exact_time_s"; "algorithm"; "ratio"; "time_s" ]
  in
  let body =
    List.concat_map
      (fun r ->
        List.map
          (fun res ->
            [
              r.spec.Instances.sp_name;
              string_of_int r.spec.Instances.sp_n;
              string_of_int r.spec.Instances.sp_p;
              string_of_int r.spec.Instances.sp_d;
              string_of_int r.spec.Instances.sp_g;
              Printf.sprintf "%.6g" r.optimum;
              Printf.sprintf "%.6g" r.exact_time_s;
              Gb.name res.algo;
              Printf.sprintf "%.6g" res.ratio;
              Printf.sprintf "%.6g" res.time_s;
            ])
          r.results)
      rows
  in
  Tables.csv ~header ~rows:body
