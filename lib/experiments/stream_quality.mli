(** Quality-vs-memory experiment for the streaming tier.

    Every instance is written to a temporary edge-stream file and solved
    twice over the same bytes: by the exact in-core tier (forced with an
    unloseable threshold, giving the optimum) and by the bounded-memory
    streaming solvers.  Rows report the makespan ratio next to the proven
    factor and the solver's resident state as a fraction of the CSR the
    stream avoided — the whole point of the tier in two columns. *)

type row = {
  name : string;
  n : int;
  p : int;
  edges : int;
  csr_words : int;  (** what materializing would have cost *)
  opt : float;
  one_ratio : float;  (** median one-pass makespan / opt *)
  one_factor : float;  (** the proven (2⌈√n⌉+1) bound *)
  one_words : int;
  few_ratio : float;
  few_factor : float;  (** the proven 4(log₂n+3) bound *)
  few_words : int;
  few_passes : int;
}

val run : ?seeds:int -> ?scale:int -> ?d:int -> unit -> row list
(** SINGLEPROC-UNIT grid ({!Instances.paper_grid_singleproc}), [seeds]
    replicates per row (default 3), sizes divided by [scale]. *)

val render : row list -> string
val to_csv : row list -> string

(** {1 General streams} *)

type online_row = {
  o_name : string;
  o_edges : int;
  o_lb : float;  (** streamed refined lower bound *)
  o_online : float;
  o_portfolio : float;  (** in-core portfolio on the same instance *)
  o_words : int;
  o_csr_words : int;
}

val run_online :
  ?seeds:int -> ?scale:int -> ?weights:Hyper.Weights.t -> unit -> online_row list
(** MULTIPROC grid ({!Instances.paper_grid}); the online greedy has no
    proven factor, so quality is reported against both the streamed refined
    LB and the portfolio. *)

val render_online : online_row list -> string
val online_to_csv : online_row list -> string
