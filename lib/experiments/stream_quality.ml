(* Quality-vs-memory for the streaming tier: each instance is written to a
   temporary edge-stream file, solved by the exact in-core tier (the
   optimum) and by each bounded-memory streaming solver over the very same
   bytes, and the table reports the makespan ratios next to the memory the
   stream avoided — solver state words vs the CSR estimate. *)

module Sio = Hyper.Stream_io
module Kr = Stream.Kr

let family = function `Fewg_manyg -> Hyper.Generate.Fewg_manyg | `Hilo -> Hyper.Generate.Hilo

(* Same replicate-stream derivation as Instances: name and seed both feed
   the PRNG so no two specs share a stream. *)
let prng ~seed name = Randkit.Prng.create ~seed:((seed * 1_000_003) lxor Hashtbl.hash (name : string))

let with_stream_file f =
  let path = Filename.temp_file "semimatch-exp-" ".sms" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

type row = {
  name : string;
  n : int;
  p : int;
  edges : int;
  csr_words : int;
  opt : float;
  one_ratio : float;  (** median one-pass makespan / opt *)
  one_factor : float;  (** the proven (2⌈√n⌉+1) bound *)
  one_words : int;
  few_ratio : float;
  few_factor : float;  (** the proven 4(log₂n+3) bound *)
  few_words : int;
  few_passes : int;
}

let write_sp_stream ~seed (spec : Instances.singleproc_spec) path =
  let rng = prng ~seed spec.Instances.sp_name in
  let w = Sio.create_writer ~path ~n1:spec.Instances.sp_n ~n2:spec.Instances.sp_p () in
  ignore
    (Hyper.Generate.stream_sp rng ~family:(family spec.Instances.sp_family)
       ~n:spec.Instances.sp_n ~p:spec.Instances.sp_p ~g:spec.Instances.sp_g
       ~d:spec.Instances.sp_d ~emit:(fun ~task ~proc ->
         Sio.add w ~task ~procs:[| proc |] ~weight:1.0));
  Sio.close_writer w;
  Sio.validate path

let solve_with solver path =
  let r = Sio.open_reader path in
  Fun.protect ~finally:(fun () -> Sio.close_reader r) (fun () -> solver r)

let run_row ?(seeds = 3) (spec : Instances.singleproc_spec) =
  let replicates =
    List.init seeds (fun seed ->
        with_stream_file (fun path ->
            let report = write_sp_stream ~seed spec path in
            let header = Option.get report.Sio.r_header in
            let csr = Option.value (Sio.csr_estimate_words header) ~default:0 in
            (* max_int words: the threshold can never lose, so the in-core
               exact tier answers and its makespan is the optimum. *)
            let exact = Stream.Ingest.solve ~threshold_words:max_int path in
            let one = solve_with Kr.one_pass path in
            let few = solve_with Kr.few_pass path in
            (report.Sio.r_records, csr, exact.Stream.Ingest.makespan, one, few)))
  in
  let medians f = Ds.Stats.median (Array.of_list (List.map f replicates)) in
  let _, csr_words, _, one0, few0 =
    match replicates with r :: _ -> r | [] -> invalid_arg "Stream_quality.run_row: seeds = 0"
  in
  {
    name = spec.Instances.sp_name;
    n = spec.Instances.sp_n;
    p = spec.Instances.sp_p;
    edges = int_of_float (medians (fun (e, _, _, _, _) -> float_of_int e));
    csr_words;
    opt = medians (fun (_, _, opt, _, _) -> opt);
    one_ratio = medians (fun (_, _, opt, one, _) -> one.Kr.makespan /. opt);
    one_factor = one0.Kr.factor;
    one_words = one0.Kr.state_words;
    few_ratio = medians (fun (_, _, opt, _, few) -> few.Kr.makespan /. opt);
    few_factor = few0.Kr.factor;
    few_words = few0.Kr.state_words;
    few_passes = int_of_float (medians (fun (_, _, _, _, few) -> float_of_int few.Kr.passes));
  }

let run ?seeds ?(scale = 1) ?d () =
  Instances.paper_grid_singleproc ?d ()
  |> List.map (Instances.scaled_singleproc scale)
  |> List.map (run_row ?seeds)

let pct num den = if den <= 0 then "-" else Printf.sprintf "%.1f%%" (100.0 *. float_of_int num /. float_of_int den)

let header =
  [
    "Instance"; "edges"; "CSR words"; "OPT"; "1-pass/OPT"; "bound"; "few/OPT"; "bound";
    "passes"; "state(1p)"; "state(few)"; "state/CSR";
  ]

let rows_of rows =
  List.map
    (fun r ->
      [
        r.name;
        string_of_int r.edges;
        string_of_int r.csr_words;
        Printf.sprintf "%.4g" r.opt;
        Tables.fmt_ratio r.one_ratio;
        Printf.sprintf "%.0f" r.one_factor;
        Tables.fmt_ratio r.few_ratio;
        Printf.sprintf "%.0f" r.few_factor;
        string_of_int r.few_passes;
        string_of_int r.one_words;
        string_of_int r.few_words;
        pct (max r.one_words r.few_words) r.csr_words;
      ])
    rows

let render rows =
  "Streaming quality vs memory: makespan ratio to the exact optimum next to\n\
   the working state each solver kept, as a fraction of the CSR it avoided:\n\n"
  ^ Tables.render ~header ~rows:(rows_of rows) ()

let to_csv rows = Tables.csv ~header ~rows:(rows_of rows)

(* ---- general MULTIPROC streams: the online greedy has no proven factor,
   so its quality is measured against the in-core portfolio and the
   streamed refined lower bound on the same instance. ---- *)

type online_row = {
  o_name : string;
  o_edges : int;
  o_lb : float;  (** streamed refined LB *)
  o_online : float;
  o_portfolio : float;
  o_words : int;
  o_csr_words : int;
}

let run_online_row ?(seeds = 3) ~weights (spec : Instances.multiproc_spec) =
  let replicates =
    List.init seeds (fun seed ->
        with_stream_file (fun path ->
            let rng = prng ~seed spec.Instances.name in
            let w = Sio.create_writer ~path ~n1:spec.Instances.n ~n2:spec.Instances.p () in
            let edges =
              Hyper.Generate.stream rng ~family:spec.Instances.family ~n:spec.Instances.n
                ~p:spec.Instances.p ~dv:spec.Instances.dv ~dh:spec.Instances.dh
                ~g:spec.Instances.g ~weights
                ~emit:(fun ~task ~procs ~weight -> Sio.add w ~task ~procs ~weight)
            in
            Sio.close_writer w;
            let online = solve_with (Kr.online_greedy ?on_choice:None) path in
            let incore = Stream.Ingest.solve ~threshold_words:max_int path in
            let csr =
              Option.value (Sio.csr_estimate_words incore.Stream.Ingest.header) ~default:0
            in
            (edges, online, incore.Stream.Ingest.makespan, csr)))
  in
  let medians f = Ds.Stats.median (Array.of_list (List.map f replicates)) in
  let _, online0, _, csr0 =
    match replicates with r :: _ -> r | [] -> invalid_arg "Stream_quality.run_online_row"
  in
  {
    o_name = spec.Instances.name;
    o_edges = int_of_float (medians (fun (e, _, _, _) -> float_of_int e));
    o_lb = medians (fun (_, o, _, _) -> o.Kr.lower_bound);
    o_online = medians (fun (_, o, _, _) -> o.Kr.makespan);
    o_portfolio = medians (fun (_, _, m, _) -> m);
    o_words = online0.Kr.state_words;
    o_csr_words = csr0;
  }

let run_online ?seeds ?(scale = 1) ?(weights = Hyper.Weights.Unit) () =
  Instances.paper_grid ()
  |> List.map (Instances.scaled scale)
  |> List.map (run_online_row ?seeds ~weights)

let online_header =
  [ "Instance"; "edges"; "LB"; "online"; "portfolio"; "online/LB"; "online/port"; "state/CSR" ]

let online_rows_of rows =
  List.map
    (fun r ->
      [
        r.o_name;
        string_of_int r.o_edges;
        Printf.sprintf "%.4g" r.o_lb;
        Printf.sprintf "%.4g" r.o_online;
        Printf.sprintf "%.4g" r.o_portfolio;
        Tables.fmt_ratio (r.o_online /. r.o_lb);
        Tables.fmt_ratio (r.o_online /. r.o_portfolio);
        pct r.o_words r.o_csr_words;
      ])
    rows

let render_online rows =
  "Online greedy over general MULTIPROC streams (no proven factor):\n\n"
  ^ Tables.render ~header:online_header ~rows:(online_rows_of rows) ()

let online_to_csv rows = Tables.csv ~header:online_header ~rows:(online_rows_of rows)
