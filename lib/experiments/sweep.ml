module Gh = Semimatch.Greedy_hyper

type combo_result = {
  family : Hyper.Generate.family;
  g : int;
  dv : int;
  dh : int;
  ratios : (Gh.algorithm * float) list;
  ranking : Gh.algorithm list;
}

let algorithms =
  [ Gh.Sorted_greedy_hyp; Gh.Vector_greedy_hyp; Gh.Expected_greedy_hyp; Gh.Expected_vector_greedy_hyp ]

let run ?(seeds = 3) ?(n = 1280) ?(p = 256) ?(dvs = [ 2; 5; 10 ]) ?(dhs = [ 2; 5; 10 ])
    ?(gs = [ 32; 128 ]) ?(jobs = 1) ~weights () =
  let combos =
    List.concat_map
      (fun family ->
        List.concat_map
          (fun g ->
            List.concat_map
              (fun dv -> List.map (fun dh -> (family, g, dv, dh)) dhs)
              dvs)
          gs)
      [ Hyper.Generate.Fewg_manyg; Hyper.Generate.Hilo ]
  in
  (* Each combo is self-contained (own generator seeds, own instances), so
     fanning the cross product over domains cannot change any ratio; the
     result list keeps cross-product order whatever [jobs] is. *)
  combos
  |> Parpool.Pool.map_list ~jobs ~f:(fun (family, g, dv, dh) ->
         let spec =
           {
             Instances.name =
               Printf.sprintf "%s-n%d-p%d-g%d-dv%d-dh%d"
                 (Hyper.Generate.family_name family) n p g dv dh;
             family;
             n;
             p;
             dv;
             dh;
             g;
           }
         in
         let replicates =
           List.init seeds (fun seed -> Instances.generate_multiproc ~seed ~weights spec)
         in
         let lbs = List.map Semimatch.Lower_bound.multiproc replicates in
         let ratios =
           List.map
             (fun algo ->
               let rs = List.map2 (fun h lb -> Gh.makespan algo h /. lb) replicates lbs in
               (algo, Ds.Stats.median (Array.of_list rs)))
             algorithms
         in
         let ranking =
           List.map fst (List.stable_sort (fun (_, a) (_, b) -> compare a b) ratios)
         in
         { family; g; dv; dh; ratios; ranking })

let render results =
  let header =
    [ "family"; "g"; "dv"; "dh" ]
    @ List.map Gh.short_name algorithms
    @ [ "ranking (best first)" ]
  in
  let rows =
    List.map
      (fun r ->
        [
          Hyper.Generate.family_name r.family;
          string_of_int r.g;
          string_of_int r.dv;
          string_of_int r.dh;
        ]
        @ List.map (fun a -> Tables.fmt_ratio (List.assoc a r.ratios)) algorithms
        @ [ String.concat ">" (List.map Gh.short_name r.ranking) ])
      results
  in
  (* Exact ties between heuristics are common (whole HiLo rows coincide), so
     judge stability with a tolerance: the heuristics within [epsilon] of a
     combo's best form its "winning set". *)
  let epsilon = 0.005 in
  let winning_set r =
    let best = List.fold_left (fun acc (_, x) -> Float.min acc x) infinity r.ratios in
    List.filter_map (fun (a, x) -> if x <= best +. epsilon then Some a else None) r.ratios
  in
  let stability family =
    let of_family = List.filter (fun r -> r.family = family) results in
    if of_family = [] then ""
    else begin
      let always_winning =
        List.filter
          (fun a -> List.for_all (fun r -> List.mem a (winning_set r)) of_family)
          algorithms
      in
      match always_winning with
      | [] ->
          Printf.sprintf "%s: no single heuristic is (within %.3f of) best on every combo\n"
            (Hyper.Generate.family_name family) epsilon
      | winners ->
          Printf.sprintf "%s: best heuristic STABLE across all combos: %s (ties within %.3f)\n"
            (Hyper.Generate.family_name family)
            (String.concat ", " (List.map Gh.short_name winners))
            epsilon
    end
  in
  Tables.render ~header ~rows ()
  ^ "\n"
  ^ stability Hyper.Generate.Fewg_manyg
  ^ stability Hyper.Generate.Hilo
