(** Benchmark-regression gate: compares a fresh smoke-benchmark run against
    a committed baseline using per-group median/MAD tolerance bands, with a
    CPU-calibration loop cancelling out machine-speed differences.  Feeds
    [bench --baseline FILE --check] and appends to the BENCH trajectory. *)

type group = {
  g_name : string;  (** e.g. ["FG-5-1-MP/SGH"] *)
  g_reps : int;  (** runs per timed sample, fixed at baseline-write time *)
  g_median_s : float;  (** median sample duration (seconds) *)
  g_mad_s : float;  (** median absolute deviation of the samples *)
  g_samples : int;  (** number of samples the summary was computed from *)
}

type baseline = { b_calib_s : float; b_groups : group list }

val median_mad : float array -> float * float
(** Median and median-absolute-deviation.  Raises [Invalid_argument] on
    empty input. *)

val calibrate : unit -> float
(** Wall time of a fixed CPU-bound loop (~tens of ms); the ratio of this
    value between check time and baseline time scales the tolerance bands
    so a uniformly faster/slower machine does not move verdicts. *)

val reps_for : ?target_s:float -> (unit -> unit) -> int
(** Repetition count so one timed batch of the workload lasts about
    [target_s] (default 20ms).  Warm-runs the workload once first. *)

val measure : ?samples:int -> reps:int -> (unit -> unit) -> float array
(** [samples] batch durations, each timing [reps] back-to-back runs. *)

val baseline_of_workloads : ?samples:int -> (string * (unit -> unit)) list -> baseline
(** Calibrate, pick reps per group, measure, and summarize — the whole
    baseline-writing pipeline. *)

val write_baseline : string -> baseline -> unit
(** JSON-lines file: one [meta] row (calibration), one [group] row each. *)

val load_baseline : string -> baseline
(** Inverse of {!write_baseline}.  Raises [Failure] on malformed files. *)

type verdict = {
  v_group : string;
  v_baseline_s : float;
  v_now_s : float;  (** nan when the group was not measured this run *)
  v_limit_s : float;
  v_regressed : bool;
}

val check_medians :
  ?slowdown:float -> baseline -> calib_now:float -> (string * float) list -> verdict list
(** Pure comparison core: one verdict per baseline group, regressed when
    [now > scale * (rel * median + k * mad) + floor] with
    [scale = clamp (calib_now / baseline calib)].  A baseline group absent
    from the measurements is a regression (gate integrity).  [slowdown]
    multiplies the measured medians — test/CI hook for injecting a fake
    regression. *)

val check :
  ?slowdown:float ->
  ?samples:int ->
  baseline ->
  (string * (unit -> unit)) list ->
  verdict list * float
(** Re-measure every baseline group present in the workload list (with the
    baseline's reps) and compare.  Returns the verdicts and the current
    calibration time. *)

val all_pass : verdict list -> bool

val render : verdict list -> string
(** Human-readable verdict table (ms). *)

val append_trajectory : string -> calib_s:float -> verdict list -> unit
(** Append one JSON line ({i unix_ts}, calibration, per-group now/baseline
    seconds) to the trajectory file, creating it if needed. *)
