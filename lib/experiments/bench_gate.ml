(* Benchmark-regression gate: median/MAD tolerance bands per benchmark
   group, against a committed baseline file.

   The paper's evaluation is about where time goes, and its stated validity
   threat is dishonest timing — so the trajectory of our own runtimes needs
   a gate, or a regression in (say) Hopcroft–Karp's phase structure lands
   silently.  The design picks robustness over sensitivity, because the
   gate must hold on noisy shared CI runners:

   - a {e sample} is the wall time of [reps] back-to-back runs of the
     workload ([reps] is chosen once, when the baseline is written, so one
     sample lasts ~[target_s] and the baseline and every later check time
     the identical workload);
   - a group is summarized by the {e median} of its samples and their
     {e MAD} (median absolute deviation) — both immune to the occasional
     preempted sample;
   - the check passes while [now_median <= scale * (rel * median + mad_k *
     mad) + abs_floor], where [scale] is the ratio of a fixed CPU-bound
     calibration loop timed now vs. at baseline-write time (clamped), so a
     uniformly slower/faster machine does not move the verdict — only a
     change in the benchmarked code relative to the machine does.

   The bands are deliberately loose: a genuine 3x slowdown always trips
   them (3 > rel = 1.75 with calibration cancelled out), scheduling jitter
   does not. *)

type group = {
  g_name : string;
  g_reps : int;
  g_median_s : float;
  g_mad_s : float;
  g_samples : int;
}

type baseline = { b_calib_s : float; b_groups : group list }

(* ---------- robust statistics ---------- *)

let median_mad xs =
  if Array.length xs = 0 then invalid_arg "Bench_gate.median_mad: empty";
  let med = Ds.Stats.median xs in
  let dev = Array.map (fun x -> Float.abs (x -. med)) xs in
  (med, Ds.Stats.median dev)

(* ---------- measurement ---------- *)

(* Fixed CPU-bound loop (~tens of ms): its runtime moves with the machine,
   not with the benchmarked code, which is exactly what the scale factor
   needs.  [opaque_identity] keeps the loop from being optimized away. *)
let calibrate () =
  let acc = ref 0.0 in
  let _, dt =
    Obs.Span.time_s (fun () ->
        for i = 1 to 8_000_000 do
          acc := !acc +. sqrt (float_of_int i)
        done)
  in
  ignore (Sys.opaque_identity !acc);
  dt

let default_samples = 5
let default_target_s = 0.02

let reps_for ?(target_s = default_target_s) run =
  (* Warm up once (allocation, caches), then estimate a single run. *)
  run ();
  let _, once = Obs.Span.time_s run in
  if once <= 0.0 then 1024
  else max 1 (min 100_000 (int_of_float (Float.ceil (target_s /. once))))

let measure ?(samples = default_samples) ~reps run =
  Array.init samples (fun _ ->
      let _, dt =
        Obs.Span.time_s (fun () ->
            for _ = 1 to reps do
              run ()
            done)
      in
      dt)

let baseline_of_workloads ?(samples = 2 * default_samples - 1) workloads =
  let calib = calibrate () in
  let groups =
    List.map
      (fun (name, run) ->
        let reps = reps_for run in
        let med, mad = median_mad (measure ~samples ~reps run) in
        { g_name = name; g_reps = reps; g_median_s = med; g_mad_s = mad; g_samples = samples })
      workloads
  in
  { b_calib_s = calib; b_groups = groups }

(* ---------- baseline file IO (JSON lines through Obs.Json) ---------- *)

let write_baseline path b =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let line json = output_string oc (Obs.Json.to_string json ^ "\n") in
      line
        (Obs.Json.Obj
           [ ("type", Obs.Json.Str "meta"); ("calib_s", Obs.Json.Num b.b_calib_s) ]);
      List.iter
        (fun g ->
          line
            (Obs.Json.Obj
               [
                 ("type", Obs.Json.Str "group");
                 ("group", Obs.Json.Str g.g_name);
                 ("reps", Obs.Json.Num (float_of_int g.g_reps));
                 ("median_s", Obs.Json.Num g.g_median_s);
                 ("mad_s", Obs.Json.Num g.g_mad_s);
                 ("samples", Obs.Json.Num (float_of_int g.g_samples));
               ]))
        b.b_groups)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (if String.trim line = "" then acc else line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let num_field name json =
  match Obs.Json.member name json with
  | Some j -> (
      match Obs.Json.to_float j with
      | Some f -> f
      | None -> failwith (Printf.sprintf "Bench_gate: field %S is not a number" name))
  | None -> failwith (Printf.sprintf "Bench_gate: missing field %S" name)

let str_field name json =
  match Option.bind (Obs.Json.member name json) Obs.Json.to_str with
  | Some s -> s
  | None -> failwith (Printf.sprintf "Bench_gate: missing field %S" name)

let load_baseline path =
  let calib = ref None and groups = ref [] in
  List.iter
    (fun line ->
      let json = Obs.Json.of_string line in
      match str_field "type" json with
      | "meta" -> calib := Some (num_field "calib_s" json)
      | "group" ->
          groups :=
            {
              g_name = str_field "group" json;
              g_reps = int_of_float (num_field "reps" json);
              g_median_s = num_field "median_s" json;
              g_mad_s = num_field "mad_s" json;
              g_samples = int_of_float (num_field "samples" json);
            }
            :: !groups
      | other -> failwith (Printf.sprintf "Bench_gate: unknown row type %S" other))
    (read_lines path);
  match !calib with
  | None -> failwith (Printf.sprintf "Bench_gate: %s has no meta row" path)
  | Some c ->
      if !groups = [] then failwith (Printf.sprintf "Bench_gate: %s has no groups" path);
      { b_calib_s = c; b_groups = List.rev !groups }

(* ---------- the check ---------- *)

type verdict = {
  v_group : string;
  v_baseline_s : float;
  v_now_s : float;
  v_limit_s : float;
  v_regressed : bool;
}

(* Band parameters (see header): an honest 3x slowdown always exceeds
   [rel]; the MAD term absorbs group-specific jitter recorded at baseline
   time; the absolute floor forgives sub-resolution differences. *)
let rel = 1.75
let mad_k = 10.0
let abs_floor_s = 0.005
let min_scale = 0.25
let max_scale = 4.0

let limit_for b ~calib_now g =
  let scale = Float.min max_scale (Float.max min_scale (calib_now /. b.b_calib_s)) in
  (scale *. ((rel *. g.g_median_s) +. (mad_k *. g.g_mad_s))) +. abs_floor_s

let check_medians ?(slowdown = 1.0) b ~calib_now now_medians =
  List.map
    (fun g ->
      let limit = limit_for b ~calib_now g in
      match List.assoc_opt g.g_name now_medians with
      | None ->
          (* A group the baseline knows but the current run did not measure
             is a gate-integrity failure, not a pass. *)
          { v_group = g.g_name; v_baseline_s = g.g_median_s; v_now_s = Float.nan;
            v_limit_s = limit; v_regressed = true }
      | Some now ->
          let now = now *. slowdown in
          { v_group = g.g_name; v_baseline_s = g.g_median_s; v_now_s = now;
            v_limit_s = limit; v_regressed = now > limit })
    b.b_groups

let check ?slowdown ?(samples = default_samples) b workloads =
  let calib_now = calibrate () in
  let now_medians =
    List.filter_map
      (fun g ->
        match List.assoc_opt g.g_name workloads with
        | None -> None
        | Some run -> Some (g.g_name, fst (median_mad (measure ~samples ~reps:g.g_reps run))))
      b.b_groups
  in
  (check_medians ?slowdown b ~calib_now now_medians, calib_now)

let all_pass = List.for_all (fun v -> not v.v_regressed)

let render verdicts =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %12s %12s %12s  %s\n" "group" "baseline" "now" "limit" "verdict");
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %10.2fms %10.2fms %10.2fms  %s\n" v.v_group
           (1e3 *. v.v_baseline_s) (1e3 *. v.v_now_s) (1e3 *. v.v_limit_s)
           (if v.v_regressed then "REGRESSED" else "ok")))
    verdicts;
  Buffer.contents buf

(* ---------- trajectory ---------- *)

(* One JSON line appended per successful gate run: the BENCH trajectory is
   a growing record of "how fast was this tree on this machine, when",
   suitable for plotting or for promoting into the next baseline. *)
let append_trajectory path ~calib_s verdicts =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let row =
        Obs.Json.Obj
          [
            ("type", Obs.Json.Str "trajectory");
            ("unix_ts", Obs.Json.Num (Unix.gettimeofday ()));
            ("calib_s", Obs.Json.Num calib_s);
            ( "groups",
              Obs.Json.Obj
                (List.map
                   (fun v ->
                     ( v.v_group,
                       Obs.Json.Obj
                         [
                           ("now_s", Obs.Json.Num v.v_now_s);
                           ("baseline_s", Obs.Json.Num v.v_baseline_s);
                         ] ))
                   verdicts) );
          ]
      in
      output_string oc (Obs.Json.to_string row ^ "\n"))
