(** Fault-tolerance study: schedule quality after processor failures.

    For a grid of kill fractions, generate MULTIPROC instances, solve them
    with expected-vector-greedy, crash a random subset of the processors
    (seeded, so rows are reproducible), and repair incrementally with
    {!Semimatch.Repair}.  Reported per fraction, median over seeds:

    - repaired makespan / surviving-machine lower bound — the headline
      curve: how much schedule quality survives losing that slice of the
      machine;
    - the from-scratch re-solve's same ratio, for comparison;
    - mean affected / moved / infeasible task counts (repair cost);
    - how often the from-scratch re-solve beat the incremental repair
      (i.e. {!Semimatch.Repair} fell back to its safety net). *)

type row = {
  kill_fraction : float;
  affected_mean : float;
  moved_mean : float;
  infeasible_mean : float;
  repair_ratio : float;  (** median repaired makespan / surviving LB *)
  resolve_ratio : float;  (** median from-scratch makespan / surviving LB *)
  resolve_wins : int;  (** replicates where the safety net was needed *)
}

val fractions : float list
(** The default grid: 0.05, 0.125, 0.25, 0.5. *)

val run_row : ?seeds:int -> ?n:int -> ?p:int -> kill_fraction:float -> unit -> row
(** Defaults: 5 seeds, n = 320 tasks, p = 64 processors (FewgManyg family,
    related weights). *)

val run : ?seeds:int -> unit -> row list
(** One row per {!fractions} entry. *)

val render : row list -> string
(** Human-readable table. *)

val write_json : string -> row list -> unit
(** One JSON object per row (JSON-lines), for the CI artifact. *)
