(** MULTIPROC experiment driver: regenerates Tables I, II and III (and the
    technical report's random-weights variant).

    For each instance specification it draws [seeds] replicates, runs every
    heuristic on each, and aggregates the paper's way: medians of instance
    statistics, of the lower bound and of the makespan/LB quality ratios,
    and mean wall-clock times. *)

type algo_result = {
  algo : Semimatch.Greedy_hyper.algorithm;
  ratio : float;  (** median makespan / LB over the replicates *)
  time_s : float;  (** mean seconds per replicate *)
}

type row = {
  spec : Instances.multiproc_spec;
  weights : Hyper.Weights.t;
  lb : float;  (** median of Eq. 1 over the replicates *)
  num_hyperedges : int;  (** median |N| *)
  num_pins : int;  (** median Σ|h∩V2| *)
  results : algo_result list;
}

val default_algorithms : Semimatch.Greedy_hyper.algorithm list
(** SGH, VGH, EGH, EVG — Table II/III column order. *)

val time_it : ?span:string -> (unit -> 'a) -> 'a * float
(** [time_it f] runs [f] and returns its monotonic wall time in seconds
    ([Obs.Span.time_s], immune to NTP adjustments).  With telemetry enabled
    the measurement is also recorded as the span [span] (default
    ["experiments.run"]).  Shared by every experiment driver. *)

val run_row :
  ?algorithms:Semimatch.Greedy_hyper.algorithm list ->
  ?seeds:int ->
  weights:Hyper.Weights.t ->
  Instances.multiproc_spec ->
  row
(** [seeds] defaults to 10, the paper's replication. *)

val run :
  ?algorithms:Semimatch.Greedy_hyper.algorithm list ->
  ?seeds:int ->
  ?scale:int ->
  ?jobs:int ->
  weights:Hyper.Weights.t ->
  unit ->
  row list
(** The full 24-instance grid; [scale] (default 1) divides instance sizes via
    {!Instances.scaled}.  [jobs] (default 1) fans the rows out over domains
    with {!Parpool.Pool.map} — quality numbers are unaffected, but keep
    [jobs = 1] when the timing columns matter. *)

val render_table1 : row list -> string
(** Table I: instance statistics. *)

val render_quality : title:string -> row list -> string
(** Tables II/III: LB and per-heuristic ratios, with the Average-quality and
    Average-time footer computed per generator block (FewgManyg rows first,
    HiLo rows second) exactly like the paper when both blocks are present. *)

val to_csv : row list -> string
(** Machine-readable dump of everything measured. *)
