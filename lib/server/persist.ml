module J = Obs.Json

let ckpt_format = "semimatch.ckpt/1"
let ckpt_name seq = Printf.sprintf "ckpt-%06d" seq
let journal_name seq = Printf.sprintf "journal-%06d.wal" seq

let c_checkpoints = Obs.Metrics.counter "server.persist.checkpoints"
let c_groups = Obs.Metrics.counter "server.persist.groups"

let () =
  Obs.Prom.describe "server.persist.checkpoints" "Checkpoints written to the persist dir.";
  Obs.Prom.describe "server.persist.groups" "Journal groups logged (one per drain group)."

type t = {
  dir : string;
  policy : Journal.policy;
  version : string;
  mutable epoch : int;
  mutable writer : Journal.writer;
}

type group = { g_lines : string list; g_cached : (string * string) list }

type recovery = {
  r_dir : string;
  r_epoch : int;
  r_checkpoint : string option;
  r_sessions : (string * J.t) list;
  r_groups : group list;
  r_records : int;
  r_valid_bytes : int;
  r_torn_bytes : int;
  r_skipped : (string * string) list;
}

(* ---------- small fs helpers ---------- *)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Write + fsync: the checkpoint atomicity argument needs the file bytes on
   disk before the rename publishes them. *)
let write_file_sync path text =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let bytes = Bytes.of_string text in
      let len = Bytes.length bytes in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write fd bytes !off (len - !off)
      done;
      Unix.fsync fd)

(* Directory fsync makes the rename itself durable; some filesystems refuse
   fsync on a directory fd, which only weakens power-loss guarantees. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Some text
  | exception Sys_error _ -> None

(* ---------- checkpoint validation ---------- *)

let seq_of_name prefix name =
  if
    String.length name > String.length prefix
    && String.sub name 0 (String.length prefix) = prefix
  then int_of_string_opt (String.sub name (String.length prefix) (String.length name - String.length prefix))
  else None

(* Full structural validation, mirroring the doctor contract for bundles:
   manifest present (written last, so presence means complete), format tag,
   listed sizes match disk, every session line parses. *)
let load_checkpoint dir =
  let path name = Filename.concat dir name in
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let* manifest_text =
    match read_file (path "manifest.json") with
    | Some t -> Ok t
    | None -> Error "no manifest.json (checkpoint never completed)"
  in
  let* manifest =
    match J.of_string manifest_text with
    | j -> Ok j
    | exception Failure msg -> Error ("manifest.json: " ^ msg)
  in
  let* () =
    match Option.bind (J.member "format" manifest) J.to_str with
    | Some tag when tag = ckpt_format -> Ok ()
    | Some tag -> Error (Printf.sprintf "manifest.json: format %S (want %S)" tag ckpt_format)
    | None -> Error "manifest.json: missing format"
  in
  let* files =
    match J.member "files" manifest with
    | Some (J.List l) ->
        let entries =
          List.filter_map
            (fun f ->
              match
                (Option.bind (J.member "name" f) J.to_str, Option.bind (J.member "bytes" f) J.to_float)
              with
              | Some n, Some b -> Some (n, int_of_float b)
              | _ -> None)
            l
        in
        if List.length entries = List.length l then Ok entries
        else Error "manifest.json: malformed files entry"
    | _ -> Error "manifest.json: missing files list"
  in
  let* () =
    List.fold_left
      (fun acc (name, bytes) ->
        let* () = acc in
        match (Unix.stat (path name)).Unix.st_size with
        | size when size = bytes -> Ok ()
        | size -> Error (Printf.sprintf "%s: %d bytes on disk, manifest recorded %d" name size bytes)
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "%s: listed in the manifest but %s" name (Unix.error_message e)))
      (Ok ()) files
  in
  let* text =
    match read_file (path "sessions.jsonl") with
    | Some t -> Ok t
    | None -> Error "missing sessions.jsonl"
  in
  let lines = List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text) in
  let* sessions =
    List.fold_left
      (fun acc line ->
        let* sessions = acc in
        match J.of_string line with
        | exception Failure msg -> Error ("sessions.jsonl: " ^ msg)
        | j -> (
            match (Option.bind (J.member "id" j) J.to_str, J.member "state" j) with
            | Some id, Some state -> Ok ((id, state) :: sessions)
            | _ -> Error "sessions.jsonl: line without id/state"))
      (Ok []) lines
  in
  Ok (List.rev sessions)

(* ---------- journal group codec ---------- *)

let encode_group ~lines ~cached =
  J.to_string
    (J.Obj
       [
         ("lines", J.List (List.map (fun l -> J.Str l) lines));
         ( "cached",
           J.List
             (List.map
                (fun (k, reply) -> J.Obj [ ("idem", J.Str k); ("reply", J.Str reply) ])
                cached) );
       ])

let decode_group payload =
  match J.of_string payload with
  | exception Failure _ -> None
  | j -> (
      match J.member "lines" j with
      | Some (J.List l) ->
          let lines = List.filter_map J.to_str l in
          if List.length lines <> List.length l then None
          else
            let cached =
              match J.member "cached" j with
              | Some (J.List c) ->
                  List.filter_map
                    (fun e ->
                      match
                        ( Option.bind (J.member "idem" e) J.to_str,
                          Option.bind (J.member "reply" e) J.to_str )
                      with
                      | Some k, Some reply -> Some (k, reply)
                      | _ -> None)
                    c
              | _ -> []
            in
            Some { g_lines = lines; g_cached = cached }
      | _ -> None)

(* ---------- recovery ---------- *)

let load dir =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  let ckpts =
    Array.to_list entries
    |> List.filter_map (fun n -> Option.map (fun seq -> (seq, n)) (seq_of_name "ckpt-" n))
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  let rec pick skipped = function
    | [] -> (0, None, [], List.rev skipped)
    | (seq, name) :: rest -> (
        match load_checkpoint (Filename.concat dir name) with
        | Ok sessions -> (seq, Some name, sessions, List.rev skipped)
        | Error reason -> pick ((name, reason) :: skipped) rest)
  in
  let epoch, checkpoint, sessions, skipped = pick [] ckpts in
  let s = Journal.scan (Filename.concat dir (journal_name epoch)) in
  (* A CRC-valid record whose payload fails to decode counts as torn too:
     truncate there rather than replay past a gap. *)
  let rec decode acc valid = function
    | [] -> (List.rev acc, valid)
    | (r : Journal.record) :: rest -> (
        match decode_group r.Journal.payload with
        | Some g -> decode (g :: acc) r.Journal.r_end rest
        | None -> (List.rev acc, valid))
  in
  let groups, valid_bytes = decode [] 0 s.Journal.s_records in
  {
    r_dir = dir;
    r_epoch = epoch;
    r_checkpoint = checkpoint;
    r_sessions = sessions;
    r_groups = groups;
    r_records = List.length groups;
    r_valid_bytes = valid_bytes;
    r_torn_bytes = s.Journal.s_total_bytes - valid_bytes;
    r_skipped = skipped;
  }

let open_ ~dir ~policy ~version =
  mkdir_p dir;
  let r = load dir in
  let jpath = Filename.concat dir (journal_name r.r_epoch) in
  if r.r_torn_bytes > 0 && Sys.file_exists jpath then begin
    Journal.truncate jpath r.r_valid_bytes;
    Obs.Events.emit ~level:Obs.Events.Warn "server.journal.torn"
      [
        Obs.Events.str "journal" (journal_name r.r_epoch);
        Obs.Events.int "truncated_bytes" r.r_torn_bytes;
        Obs.Events.int "valid_records" r.r_records;
      ]
  end;
  List.iter
    (fun (name, reason) ->
      Obs.Events.emit ~level:Obs.Events.Warn "server.checkpoint.invalid"
        [ Obs.Events.str "checkpoint" name; Obs.Events.str "reason" reason ])
    r.r_skipped;
  ({ dir; policy; version; epoch = r.r_epoch; writer = Journal.open_writer ~policy jpath }, r)

let log t ~lines ~cached =
  Journal.append t.writer (encode_group ~lines ~cached);
  Obs.Metrics.incr c_groups

let tick t = Journal.tick t.writer
let epoch t = t.epoch
let journal_records t = Journal.records_written t.writer

let prune t =
  Array.iter
    (fun name ->
      (match seq_of_name "ckpt-" name with
      | Some seq when seq < t.epoch - 1 -> rm_rf (Filename.concat t.dir name)
      | _ -> ());
      match seq_of_name "journal-" (Filename.remove_extension name) with
      | Some seq when Filename.extension name = ".wal" && seq < t.epoch ->
          rm_rf (Filename.concat t.dir name)
      | _ -> ())
    (try Sys.readdir t.dir with Sys_error _ -> [||])

let checkpoint t ~sessions =
  let seq = t.epoch + 1 in
  let tmp = Filename.concat t.dir ".ckpt.tmp" in
  match
    rm_rf tmp;
    Unix.mkdir tmp 0o755;
    let sessions_text =
      String.concat ""
        (List.map
           (fun (id, state) ->
             J.to_string (J.Obj [ ("id", J.Str id); ("state", state) ]) ^ "\n")
           sessions)
    in
    write_file_sync (Filename.concat tmp "sessions.jsonl") sessions_text;
    let manifest =
      J.to_string
        (J.Obj
           [
             ("format", J.Str ckpt_format);
             ("seq", J.Num (float_of_int seq));
             ("version", J.Str t.version);
             ("sessions", J.Num (float_of_int (List.length sessions)));
             ( "files",
               J.List
                 [
                   J.Obj
                     [
                       ("name", J.Str "sessions.jsonl");
                       ("bytes", J.Num (float_of_int (String.length sessions_text)));
                     ];
                 ] );
             ("written_unix_s", J.Num (Unix.gettimeofday ()));
           ])
    in
    write_file_sync (Filename.concat tmp "manifest.json") manifest;
    let final = Filename.concat t.dir (ckpt_name seq) in
    rm_rf final;
    Unix.rename tmp final;
    fsync_dir t.dir;
    (* Rotate only after the rename: until then every mutation is still
       covered by the old epoch's checkpoint+journal pair.  A stale
       journal for the new epoch (crash inside a previous attempt at this
       sequence number) must not survive into the fresh one. *)
    let jpath = Filename.concat t.dir (journal_name seq) in
    (try Unix.unlink jpath with Unix.Unix_error _ -> ());
    let w = Journal.open_writer ~policy:t.policy jpath in
    Journal.close t.writer;
    t.writer <- w;
    t.epoch <- seq;
    prune t;
    fsync_dir t.dir
  with
  | () ->
      Obs.Metrics.incr c_checkpoints;
      Obs.Events.emit "server.checkpoint"
        [
          Obs.Events.str "dir" (ckpt_name seq);
          Obs.Events.int "sessions" (List.length sessions);
          Obs.Events.int "epoch" seq;
        ];
      Ok (ckpt_name seq)
  | exception (Unix.Unix_error _ as exn) -> Error (Printexc.to_string exn)
  | exception Sys_error msg -> Error msg

let close t = Journal.close t.writer
