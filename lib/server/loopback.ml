(* In-process transport: the full protocol without sockets or process
   management, so tests can drive the engine deterministically.  Replies
   accumulate in post order and are handed out by [drain]. *)

type t = { engine : Engine.t; mutable acc : string list (* newest first *) }

let create ?jobs ?max_pending ?max_frame ?slow_ms ?anomaly ?bundle_dir ?before_solve ?persist
    ?checkpoint_secs () =
  {
    engine =
      Engine.create ?jobs ?max_pending ?max_frame ?slow_ms ?anomaly ?bundle_dir ?before_solve
        ?persist ?checkpoint_secs ();
    acc = [];
  }

let engine t = t.engine
let shutting_down t = Engine.shutting_down t.engine

let post t line = Engine.post t.engine ~reply:(fun r -> t.acc <- r :: t.acc) line

let drain t =
  Engine.drain t.engine;
  let replies = List.rev t.acc in
  t.acc <- [];
  replies

let request t line =
  post t line;
  match drain t with
  | [ reply ] -> reply
  | replies ->
      invalid_arg
        (Printf.sprintf "Loopback.request: expected one reply, got %d" (List.length replies))
