module H = Hyper.Graph
module J = Obs.Json
module Repair = Semimatch.Repair
module Deadline = Semimatch.Deadline

type entry = { tid : int; configs : Protocol.config array; mutable chosen : int }
(* [chosen] indexes [configs]; -1 = unplaced (no surviving configuration). *)

type t = {
  id : string;
  n2 : int;
  dead : bool array;
  mutable next_tid : int;
  mutable entries : entry array;  (* insertion order: the graph task order *)
  mutable cache : H.t option;  (* invalidated when the task set changes *)
}

let id t = t.id
let n_tasks t = Array.length t.entries
let n_procs t = t.n2
let dead_procs t = Array.fold_left (fun n d -> if d then n + 1 else n) 0 t.dead

let unplaced t =
  List.filter_map
    (fun e -> if e.chosen < 0 then Some e.tid else None)
    (Array.to_list t.entries)

let makespan t =
  let loads = Array.make t.n2 0.0 in
  Array.iter
    (fun e ->
      if e.chosen >= 0 then begin
        let c = e.configs.(e.chosen) in
        Array.iter (fun u -> loads.(u) <- loads.(u) +. c.Protocol.weight) c.Protocol.procs
      end)
    t.entries;
  Array.fold_left Float.max 0.0 loads

let graph t =
  match t.cache with
  | Some h -> h
  | None ->
      let hyperedges = ref [] in
      for i = Array.length t.entries - 1 downto 0 do
        let e = t.entries.(i) in
        for k = Array.length e.configs - 1 downto 0 do
          let c = e.configs.(k) in
          hyperedges := (i, c.Protocol.procs, c.Protocol.weight) :: !hyperedges
        done
      done;
      let h = H.create ~n1:(Array.length t.entries) ~n2:t.n2 ~hyperedges:!hyperedges in
      t.cache <- Some h;
      h

(* Hyperedge-id view of the per-entry chosen configuration indices.  The
   graph groups hyperedges by task preserving insertion order, so config
   [k] of entry [i] is hyperedge [task_off.(i) + k]. *)
let choice_array t h =
  Array.mapi (fun i e -> if e.chosen < 0 then -1 else h.H.task_off.(i) + e.chosen) t.entries

let write_back t h choice =
  Array.iteri
    (fun i e -> e.chosen <- (if choice.(i) < 0 then -1 else choice.(i) - h.H.task_off.(i)))
    t.entries

let place t tasks =
  let h = graph t in
  let r = Repair.place ~dead:t.dead ~tasks h (choice_array t h) in
  write_back t h r.Repair.choice;
  r

let of_graph ~id h =
  let entries =
    Array.init h.H.n1 (fun v ->
        let configs =
          Array.init (H.task_degree h v) (fun k ->
              let e = h.H.task_off.(v) + k in
              { Protocol.procs = H.h_procs h e; weight = H.h_weight h e })
        in
        { tid = v; configs; chosen = -1 })
  in
  let t =
    { id; n2 = h.H.n2; dead = Array.make h.H.n2 false; next_tid = h.H.n1; entries; cache = None }
  in
  let r = place t (List.init (Array.length entries) Fun.id) in
  (t, r)

let index_of t tid =
  let found = ref (-1) in
  Array.iteri (fun i e -> if e.tid = tid then found := i) t.entries;
  !found

let validate_config t (c : Protocol.config) =
  if Array.length c.Protocol.procs = 0 then Error "config has an empty processor set"
  else if not (Float.is_finite c.Protocol.weight && c.Protocol.weight > 0.0) then
    Error "config weight must be a positive finite number"
  else begin
    let seen = Hashtbl.create 8 in
    let bad = ref None in
    Array.iter
      (fun u ->
        if u < 0 || u >= t.n2 then bad := Some (Printf.sprintf "processor %d out of range" u)
        else if Hashtbl.mem seen u then bad := Some (Printf.sprintf "duplicate processor %d" u)
        else Hashtbl.add seen u ())
      c.Protocol.procs;
    match !bad with None -> Ok () | Some msg -> Error msg
  end

let add_tasks t configs_list =
  let bad = ref None in
  List.iter
    (fun configs ->
      List.iter
        (fun c -> match validate_config t c with Ok () -> () | Error m -> bad := Some m)
        configs)
    configs_list;
  match !bad with
  | Some msg -> Error msg
  | None ->
      let base = Array.length t.entries in
      let fresh =
        List.map
          (fun configs ->
            let tid = t.next_tid in
            t.next_tid <- tid + 1;
            { tid; configs = Array.of_list configs; chosen = -1 })
          configs_list
      in
      t.entries <- Array.append t.entries (Array.of_list fresh);
      t.cache <- None;
      let added = List.mapi (fun k _ -> base + k) fresh in
      let r = place t added in
      Ok (List.map (fun e -> e.tid) fresh, r)

let remove_task t tid =
  let i = index_of t tid in
  if i < 0 then Error (Printf.sprintf "unknown task %d" tid)
  else begin
    t.entries <- Array.append (Array.sub t.entries 0 i)
        (Array.sub t.entries (i + 1) (Array.length t.entries - i - 1));
    t.cache <- None;
    Ok (makespan t)
  end

let kill_proc t proc =
  if proc < 0 || proc >= t.n2 then Error (Printf.sprintf "processor %d out of range" proc)
  else begin
    t.dead.(proc) <- true;
    (* Re-place the tasks whose chosen configuration touched the dead
       processor, and retry the already-unplaced ones (they stay
       infeasible, but are re-reported under the new mask). *)
    let tasks = ref [] in
    Array.iteri
      (fun i e ->
        if e.chosen < 0 then tasks := i :: !tasks
        else if Array.exists (fun u -> u = proc) e.configs.(e.chosen).Protocol.procs then
          tasks := i :: !tasks)
      t.entries;
    Ok (place t (List.rev !tasks))
  end

let resolve ?jobs ~budget_s t =
  let h = graph t in
  let d = Deadline.solve_surviving ?jobs ~dead:t.dead ~budget_s h in
  let replaced = d.Deadline.d_repair.Repair.makespan < makespan t in
  if replaced then write_back t h d.Deadline.d_repair.Repair.choice;
  (d, replaced)

let solve ?jobs t =
  let h = graph t in
  let d = Deadline.solve_surviving ?jobs ~dead:t.dead ~budget_s:1e9 h in
  write_back t h d.Deadline.d_repair.Repair.choice;
  d

(* Feasibility recompute, for post-recovery verification: a restored
   schedule must not pin any task on a processor recorded dead (restore
   validates ranges but accepts any chosen index; a live session can never
   reach this state because kill_proc re-places the affected tasks). *)
let verify t =
  let bad = ref None in
  Array.iter
    (fun e ->
      if e.chosen >= 0 then
        Array.iter
          (fun u ->
            if t.dead.(u) && !bad = None then
              bad := Some (Printf.sprintf "task %d placed on dead processor %d" e.tid u))
          e.configs.(e.chosen).Protocol.procs)
    t.entries;
  match !bad with
  | Some msg -> Error msg
  | None ->
      if Float.is_finite (makespan t) then Ok ()
      else Error "non-finite makespan"

(* --- snapshot / restore: the instance rides through Hyper.Io text --- *)

let format_tag = "semimatch.session/1"

(* The bare instance as Hyper.Io text — what a diagnostic bundle embeds as
   [instance.hg] so [semimatch doctor] can replay the captured instance
   through the solvers without understanding session state. *)
let instance_text t = Hyper.Io.to_string (graph t)

let snapshot t =
  let h = graph t in
  J.Obj
    [
      ("format", J.Str format_tag);
      ("instance", J.Str (Hyper.Io.to_string h));
      ("tids", J.List (Array.to_list (Array.map (fun e -> J.Num (float_of_int e.tid)) t.entries)));
      ( "chosen",
        J.List (Array.to_list (Array.map (fun e -> J.Num (float_of_int e.chosen)) t.entries)) );
      ( "dead",
        J.List
          (List.filter_map
             (fun u -> if t.dead.(u) then Some (J.Num (float_of_int u)) else None)
             (List.init t.n2 Fun.id)) );
      ("next_tid", J.Num (float_of_int t.next_tid));
    ]

let int_list_of = function
  | J.List l ->
      let ints =
        List.filter_map
          (function J.Num f when Float.is_integer f && Float.abs f < 1e9 -> Some (int_of_float f) | _ -> None)
          l
      in
      if List.length ints = List.length l then Some ints else None
  | _ -> None

let restore ~id state =
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let field name decode =
    match Option.bind (J.member name state) decode with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "snapshot: missing or malformed %S" name)
  in
  let* tag = field "format" J.to_str in
  let* () = if tag = format_tag then Ok () else Error ("snapshot: unknown format " ^ tag) in
  let* text = field "instance" J.to_str in
  let* h =
    match Hyper.Io.of_string text with
    | h -> Ok h
    | exception Failure msg -> Error msg
    | exception Invalid_argument msg -> Error ("invalid instance: " ^ msg)
  in
  let* tids = field "tids" int_list_of in
  let* chosen = field "chosen" int_list_of in
  let* dead_ids = field "dead" int_list_of in
  let* next_tid = field "next_tid" (fun j -> Option.bind (int_list_of (J.List [ j ])) (function [ n ] -> Some n | _ -> None)) in
  let n1 = h.H.n1 in
  let* () =
    if List.length tids = n1 && List.length chosen = n1 then Ok ()
    else Error "snapshot: tids/chosen length mismatch"
  in
  let* () =
    if List.length (List.sort_uniq compare tids) = n1 then Ok ()
    else Error "snapshot: duplicate tids"
  in
  let* () =
    if List.for_all (fun tid -> tid >= 0 && tid < next_tid) tids then Ok ()
    else Error "snapshot: tid out of range"
  in
  let* () =
    if List.for_all (fun u -> u >= 0 && u < h.H.n2) dead_ids then Ok ()
    else Error "snapshot: dead processor out of range"
  in
  let tids = Array.of_list tids and chosen = Array.of_list chosen in
  let* () =
    let ok = ref true in
    Array.iteri (fun i c -> if c < -1 || c >= H.task_degree h i then ok := false) chosen;
    if !ok then Ok () else Error "snapshot: chosen configuration out of range"
  in
  let dead = Array.make h.H.n2 false in
  List.iter (fun u -> dead.(u) <- true) dead_ids;
  let entries =
    Array.init n1 (fun i ->
        let configs =
          Array.init (H.task_degree h i) (fun k ->
              let e = h.H.task_off.(i) + k in
              { Protocol.procs = H.h_procs h e; weight = H.h_weight h e })
        in
        { tid = tids.(i); configs; chosen = chosen.(i) })
  in
  Ok { id; n2 = h.H.n2; dead; next_tid; entries; cache = Some h }
