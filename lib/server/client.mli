(** Blocking client for the scheduler daemon: connect, send one request
    line, read one reply line.  Raises [Unix.Unix_error] on connection
    failures and [End_of_file] when the server hangs up — callers (the CLI
    [client] subcommand) turn those into exit-2 diagnostics. *)

type t

val connect_unix : string -> t
val connect_tcp : host:string -> port:int -> t

val request : t -> string -> string
(** Send one line, read one reply line (the protocol answers every request
    exactly once, in order). *)

val close : t -> unit
