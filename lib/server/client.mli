(** Blocking client for the scheduler daemon: connect, send one request
    line, read one reply line.  Raises [Unix.Unix_error] on connection
    failures, [End_of_file] when the server hangs up mid-request, and
    {!Timeout} when a reply misses the caller's deadline — callers (the CLI
    [client] subcommand) turn each into an exit-2 diagnostic. *)

exception Timeout

type t

val connect_unix : string -> t
val connect_tcp : host:string -> port:int -> t

val of_fd : Unix.file_descr -> t
(** Wrap an already-connected stream socket (tests, custom transports). *)

val request : ?timeout_s:float -> t -> string -> string
(** Send one line, read one reply line (the protocol answers every request
    exactly once, in order).  With [timeout_s], the read waits at most that
    many seconds past the write before raising {!Timeout}; without it, the
    wait is unbounded (the pre-timeout behaviour). *)

val close : t -> unit

val retrying : ?attempts:int -> ?delay_s:float -> (unit -> t) -> t
(** Run [connect] up to [attempts] times (default 3), sleeping [delay_s]
    (default 0.1, doubling each retry) between attempts, retrying only the
    transient connection failures a daemon restart produces
    ([ECONNREFUSED], [ECONNRESET], [ENOENT], [EPIPE]).  The last failure —
    and any non-transient one — propagates as [Unix.Unix_error]. *)
