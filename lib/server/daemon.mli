(** The long-running scheduler daemon: a single-threaded accept loop over
    a Unix-domain socket (plus an optional loopback TCP listener) speaking
    the newline-delimited JSON protocol.

    One [Unix.select] loop owns everything: accepting connections, reading
    frames into per-connection buffers (oversized frames are rejected with
    [too_large] and skipped to the next newline in bounded memory), posting
    complete lines to the {!Engine} queue — which applies admission
    control — and draining it.  A [shutdown] request is graceful: queued
    requests are served, replies flushed, the event log written, sockets
    closed and the socket file unlinked. *)

type opts = {
  socket_path : string option;  (** Unix-domain socket to listen on *)
  tcp_port : int option;  (** loopback TCP port to also listen on *)
  jobs : int;  (** domains for resolve/solve portfolios *)
  max_pending : int;  (** admission-control queue bound *)
  max_frame : int;  (** request frame cap, bytes *)
  events_log : string option;  (** written as JSON lines on shutdown *)
  trace_out : string option;
      (** Chrome/Perfetto trace written on shutdown — request spans
          interleaved with GC tracks when [runtime_events] is on *)
  version : string;  (** echoed in [stats] replies *)
  slow_ms : float;  (** slow-request log threshold; [<= 0] disables *)
  runtime_events : bool;
      (** subscribe to OCaml [Runtime_events] and poll every select round *)
  bundle_dir : string option;
      (** where anomaly-triggered and [dump]-forced diagnostic bundles are
          written; [None] disables bundling (firings are still logged) *)
  record_secs : float;
      (** flight-recorder window; [<= 0] leaves the default ring sizes and
          takes no periodic snapshots *)
  triggers : Obs.Anomaly.rule list;
      (** anomaly trigger rules; [[]] with a [bundle_dir] uses
          {!Obs.Anomaly.default_rules} *)
  persist_dir : string option;
      (** durability root: write-ahead journal + atomic checkpoints; on
          startup the newest valid checkpoint and the journal suffix are
          recovered before serving.  [None] disables persistence *)
  fsync : Journal.policy;  (** journal fsync policy *)
  checkpoint_secs : float;  (** checkpoint cadence; [<= 0] only on shutdown *)
}

val default_opts : opts
(** No listeners (the caller must set at least one), [jobs = 1],
    [max_pending = 64], [max_frame = {!Protocol.default_max_frame}], no
    event log, no trace, [version = "dev"], [slow_ms = 100.],
    [runtime_events = true], no bundle dir, no recorder window, no
    triggers, no persist dir, [fsync = Interval 0.1],
    [checkpoint_secs = 60.]. *)

val run : opts -> unit
(** Serve until a [shutdown] request or a SIGTERM/SIGINT (both graceful:
    the current select round finishes, replies are flushed, a final
    checkpoint is written when persistence is on, logs land, the socket
    file is unlinked); raises [Invalid_argument] when no listener is
    configured and [Unix.Unix_error] when binding fails.  Enables
    telemetry ({!Obs.set_enabled}) so [stats] and the event log have
    content.

    With a [bundle_dir] and a [stall:MS] trigger, a background watchdog
    domain polls the progress heartbeat every 50ms and writes a partial
    bundle (trace slice, events tail, exposition, the offending request —
    no instance dump, since session state belongs to the engine thread)
    {e while} a solve is stuck; the engine's post-hoc check on the same
    cooldown adds at most one full bundle when the solve returns. *)
