(** One live instance of the scheduler service: a resident MULTIPROC
    instance plus its incumbent schedule, mutated in place as tasks arrive
    and depart and processors die.

    Tasks carry stable external ids ([tid]s) that survive removals; the
    dense {!Hyper.Graph} view (and the hyperedge-id choice vector) is
    rebuilt lazily from the entry list whenever the structure changed, in
    insertion order, so a rebuilt graph is deterministic in the session
    history.  Mutations go through {!Semimatch.Repair.place} — only the
    delta is re-placed, the rest of the schedule stays put — while
    {!resolve} runs the budgeted from-scratch
    {!Semimatch.Deadline.solve_surviving} and adopts its schedule only when
    it is strictly better than the incumbent. *)

type t

val id : t -> string
val n_tasks : t -> int
val n_procs : t -> int
val dead_procs : t -> int
val unplaced : t -> int list
(** [tid]s currently without a configuration (no surviving one exists). *)

val makespan : t -> float
(** Max processor load of the incumbent schedule ([0.] when empty). *)

val of_graph : id:string -> Hyper.Graph.t -> t * Semimatch.Repair.t
(** Adopt the graph's tasks (tids [0..n1-1]) and greedily place them all. *)

val add_tasks :
  t -> Protocol.config list list -> (int list * Semimatch.Repair.t, string) result
(** Append one task per configuration list and place them all in one
    {!Semimatch.Repair.place} pass (the batch path); returns the fresh
    [tid]s in request order.  [Error] (validation: processor range,
    duplicate pins, non-positive weight) mutates nothing. *)

val remove_task : t -> int -> (float, string) result
(** Drop a task by [tid]; its load vanishes, nothing else moves.  Returns
    the new makespan. *)

val kill_proc : t -> int -> (Semimatch.Repair.t, string) result
(** Mark a processor dead and incrementally re-place the tasks whose chosen
    configuration touched it (plus any still-unplaced ones).  Idempotent. *)

val resolve : ?jobs:int -> budget_s:float -> t -> Semimatch.Deadline.delta * bool
(** Budgeted from-scratch re-solve of the surviving machine; the incumbent
    is replaced only when the candidate's makespan is {e strictly} better.
    Returns the delta and whether it was adopted. *)

val solve : ?jobs:int -> t -> Semimatch.Deadline.delta
(** Unbudgeted {!resolve} whose result is adopted unconditionally — the
    from-scratch baseline a client asks for by name. *)

val verify : t -> (unit, string) result
(** Feasibility recompute: no task placed on a dead processor, finite
    makespan.  Crash recovery runs this on every restored session; a live
    session always passes (mutations re-place affected tasks). *)

val instance_text : t -> string
(** The current instance as {!Hyper.Io} text — what a diagnostic bundle
    embeds as [instance.hg] so [semimatch doctor] can replay it through
    the solvers without understanding session state. *)

val snapshot : t -> Obs.Json.t
(** Full session state: the instance via {!Hyper.Io.to_string} plus tids,
    chosen configurations, dead processors and the tid counter. *)

val restore : id:string -> Obs.Json.t -> (t, string) result
(** Inverse of {!snapshot}: restoring and continuing is byte-identical to
    never having snapshotted.  [Error] on malformed or inconsistent
    state. *)
