(** Wire protocol of the scheduler service: newline-delimited JSON.

    Each request is one line holding a JSON object with an ["op"] field and
    op-specific arguments; each reply is one line holding a JSON object
    with ["ok"] (and the request's ["id"] echoed verbatim when present, so
    scripted clients can match replies to requests).  Frames are capped at
    {!default_max_frame} bytes before any parsing happens, so a hostile
    length can never allocate unboundedly.

    Ops: [ping], [load], [add_task], [remove_task], [kill_proc],
    [resolve], [solve], [stats], [metrics], [sessions], [snapshot],
    [restore], [health], [dump], [checkpoint], [shutdown], plus the
    chunked edge-stream ingest [stream_begin] / [stream_chunk] /
    [stream_end] — see the README "Scheduler service" section for a
    transcript.  Any request may carry an ["idem"] idempotency id (see
    {!parsed}).

    Introspection ops come in two tiers.  [stats] always answers with the
    engine's own basics — ["uptime_s"], ["version"], ["requests"] posted /
    ["served"], ["sessions"], ["pending"] — because the engine maintains
    them itself, independent of the [Obs] master switch; its ["counters"]
    object carries the telemetry counters and is empty when [Obs] is
    disabled.  [metrics] returns a full Prometheus text exposition in an
    ["exposition"] string field (counters, latency histograms, span totals
    from [Obs], plus live gauges: resident sessions, queue depth,
    per-session task/proc/makespan) — the machine endpoint behind
    [semimatch client --metrics].

    [health] is the probe tier: always-on, answered entirely from memory
    (status ["ready"]/["degraded"]/["stuck"], watchdog and recorder
    state), cheap enough for a tight readiness loop.  [dump] forces a
    diagnostic bundle to the daemon's [--bundle-dir] and replies with its
    path. *)

type config = { procs : int array; weight : float }
(** One candidate configuration of a task, as in {!Hyper.Graph}. *)

type request =
  | Ping
  | Load of { session : string; source : [ `Inline of string | `Path of string ] }
  | Add_task of { session : string; configs : config list }
  | Remove_task of { session : string; task : int }
  | Kill_proc of { session : string; proc : int }
  | Resolve of { session : string; budget_ms : float }
  | Solve of { session : string }
  | Stats
  | Metrics
  | Sessions
  | Snapshot of { session : string }
  | Restore of { session : string; state : Obs.Json.t }
  | Health  (** cheap liveness/readiness: always answered from memory *)
  | Dump of { session : string option }
      (** force a diagnostic bundle; [session] picks the instance to
          embed (default: the only resident session, if unambiguous) *)
  | Checkpoint
      (** force an immediate checkpoint to the daemon's [--persist-dir];
          error when no persist dir is configured *)
  | Shutdown
  | Stream_begin of { session : string; n1 : int; n2 : int }
      (** open a chunked edge-stream upload: the daemon spools the edges to
          a binary stream file ({!Hyper.Stream_io}) on disk, never in RAM *)
  | Stream_chunk of { session : string; edges : (int * config) list }
      (** append one batch of [(task, config)] edges to the spool; chunk
          size is bounded by the frame cap, backpressure by the engine's
          bounded queue ([busy] replies) *)
  | Stream_end of { session : string; threshold_mb : int option; solver : string option }
      (** seal the spool and solve it through the ingest tier: instances
          whose CSR estimate fits [threshold_mb] (default 64) are
          materialized into a resident session (reply tier [incore-*]);
          larger ones are solved by the bounded-memory streaming solvers
          ([solver] = ["auto"|"one-pass"|"few-pass"], reply tier
          [stream-*]) without creating a session *)

type parsed = { req : request; id : Obs.Json.t option; idem : string option }
(** [idem] is the optional client-supplied {e idempotency id} (request
    field ["idem"], a non-empty string).  A state-mutating request that
    succeeds is remembered under its idem key — in memory and, with a
    persist dir, in the write-ahead journal — and a later request carrying
    the same key is answered with the {e cached reply verbatim} instead of
    being applied again.  This is what makes client retry-after-reconnect
    safe: a mutation whose reply was lost to a crash or connection drop can
    be resent without being double-applied, even across a daemon restart.
    Keys should be unique per logical mutation (e.g. [clientid-seqno]); the
    cache is bounded (a few thousand entries, FIFO eviction), sized for
    retry windows, not for permanent exactly-once semantics. *)

type error_code =
  | Protocol  (** malformed JSON, missing/unknown op, wrong field type *)
  | Bad_request  (** well-formed but semantically invalid (range, parse...) *)
  | Unknown_session
  | Busy  (** admission control: the pending-request queue is full *)
  | Too_large  (** frame exceeds the size cap *)
  | Internal

val code_name : error_code -> string

val default_max_frame : int
(** 1 MiB. *)

val parse :
  ?max_frame:int -> string -> (parsed, error_code * string * Obs.Json.t option) result
(** Total over arbitrary bytes: never raises.  The error carries the
    request id when one could be recovered, so even a rejected request gets
    a matched reply. *)

val ok_reply : ?id:Obs.Json.t -> op:string -> (string * Obs.Json.t) list -> string
(** One reply line (no trailing newline): [{"id":...,"ok":true,"op":...,
    ...fields}]. *)

val error_reply : ?id:Obs.Json.t -> code:error_code -> string -> string
(** [{"id":...,"ok":false,"error":CODE,"message":MSG}]. *)
