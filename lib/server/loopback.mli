(** In-process loopback transport over {!Engine}: tests exercise the full
    protocol — parsing, admission control, batching, replies — without any
    socket or child-process management. *)

type t

(** The optional arguments of [create] are passed straight to
    {!Engine.create}, so tests can wire in anomaly triggers, a bundle
    directory and the [before_solve] stall-injection hook. *)
val create :
  ?jobs:int ->
  ?max_pending:int ->
  ?max_frame:int ->
  ?slow_ms:float ->
  ?anomaly:Obs.Anomaly.t ->
  ?bundle_dir:string ->
  ?before_solve:(string -> unit) ->
  ?persist:Persist.t ->
  ?checkpoint_secs:float ->
  unit ->
  t
val engine : t -> Engine.t
val shutting_down : t -> bool

val post : t -> string -> unit
(** Enqueue a request line ({!Engine.post}); a [busy] rejection is
    delivered immediately into the reply buffer. *)

val drain : t -> string list
(** Process the queue and return all buffered replies in post order. *)

val request : t -> string -> string
(** [post] then [drain], expecting exactly one reply.  Raises
    [Invalid_argument] otherwise (e.g. when earlier posts are pending). *)
