(** The transport-independent core of the scheduler service: a session
    registry, a bounded pending-request queue (admission control), and the
    request handlers.

    Transports ({!Daemon} over sockets, {!Loopback} in-process) feed raw
    request lines through {!post} with a per-request reply callback and
    call {!drain} to process everything queued.  When the queue is full,
    {!post} replies [busy] immediately instead of buffering — backpressure
    the client can see.  {!drain} coalesces consecutive [add_task]
    requests for the same session into one {!Semimatch.Repair.place} pass
    (each request still gets its own reply, tagged with the batch size).

    Every request runs under an [Obs.Span] named after its op and emits a
    ["server.request"] event, so traces and the event log show the serve
    path like any other subsystem. *)

type t

val create : ?jobs:int -> ?max_pending:int -> ?max_frame:int -> unit -> t
(** [jobs] (default 1: deterministic) is passed to the resolve/solve
    portfolio; [max_pending] (default 64) bounds the queue; [max_frame]
    (default {!Protocol.default_max_frame}) caps request frames. *)

val max_frame : t -> int
val shutting_down : t -> bool
(** Set by a [shutdown] request; the transport drains and exits. *)

val pending : t -> int
val sessions : t -> int

val post : t -> reply:(string -> unit) -> string -> unit
(** Enqueue one request line.  [reply] is invoked exactly once per posted
    line — during a later {!drain}, or immediately with a [busy] error
    when the queue is full (malformed lines are queued too, so error
    replies keep their place in the reply order). *)

val drain : t -> unit
(** Process every queued request in arrival order, invoking the reply
    callbacks.  Requests posted by callbacks during the drain are
    processed too.  No-op on an empty queue. *)
