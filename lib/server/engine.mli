(** The transport-independent core of the scheduler service: a session
    registry, a bounded pending-request queue (admission control), and the
    request handlers.

    Transports ({!Daemon} over sockets, {!Loopback} in-process) feed raw
    request lines through {!post} with a per-request reply callback and
    call {!drain} to process everything queued.  When the queue is full,
    {!post} replies [busy] immediately instead of buffering — backpressure
    the client can see.  {!drain} coalesces consecutive [add_task]
    requests for the same session into one {!Semimatch.Repair.place} pass
    (each request still gets its own reply, tagged with the batch size).

    Every request runs under an [Obs.Span] named after its op and emits a
    ["server.request"] event, so traces and the event log show the serve
    path like any other subsystem.  On top of the spans, the engine
    maintains live request telemetry in [Obs.Metrics]: phase histograms in
    microseconds ([server.phase.parse_us] at admission,
    [server.phase.queue_wait_us], [server.phase.solve_us],
    [server.phase.reply_us] at drain) and per-op end-to-end latency
    histograms ([server.latency.<op>_us]).  Requests slower than a
    configurable threshold are logged to [Obs.Events] as
    ["server.slow_request"], sampled (the first, then every nth).

    Plain request totals and the start time are engine state, not [Obs]
    state, so the [stats] basics (uptime, version, requests posted/served)
    are always live even with telemetry disabled; the [metrics] op renders
    the full {!Obs.Prom} exposition plus engine gauges.

    {2 Durability}

    With a {!Persist} handle, every state-mutating request that succeeds
    is appended to the write-ahead journal {e before} its reply is handed
    to the transport, and {!tick} writes periodic atomic checkpoints; a
    restart calls {!recover} with what {!Persist.open_} found and replays
    the journal suffix through the normal request path.  Requests carrying
    an ["idem"] id (see {!Protocol.parsed}) are deduplicated against a
    bounded reply cache that survives restarts via the journal. *)

type t

type recovery_info = {
  rec_records : int;  (** journal request records replayed *)
  rec_torn_bytes : int;  (** truncated torn-tail bytes *)
  rec_sessions : int;  (** sessions resident after recovery *)
  rec_checkpoint : string option;  (** checkpoint directory restored from *)
  rec_replay_us : float;
  rec_failures : int;  (** sessions that failed restore or verification *)
}

val create :
  ?jobs:int ->
  ?max_pending:int ->
  ?max_frame:int ->
  ?version:string ->
  ?slow_ms:float ->
  ?slow_every:int ->
  ?anomaly:Obs.Anomaly.t ->
  ?bundle_dir:string ->
  ?before_solve:(string -> unit) ->
  ?persist:Persist.t ->
  ?checkpoint_secs:float ->
  ?idem_cap:int ->
  unit ->
  t
(** [jobs] (default 1: deterministic) is passed to the resolve/solve
    portfolio; [max_pending] (default 64) bounds the queue; [max_frame]
    (default {!Protocol.default_max_frame}) caps request frames.
    [version] (default ["dev"]) is echoed in [stats] replies.  [slow_ms]
    (default 100, [<= 0] disables) is the slow-request log threshold;
    [slow_every] (default 10) its sampling stride — the first slow request
    is logged, then every [slow_every]-th.

    [anomaly] wires in trigger evaluation: request latencies, busy
    rejections, queue depth, resolve budgets and the watchdog bracket are
    fed to it, and any firing is written as a diagnostic bundle under
    [bundle_dir] via {!Obs.Recorder.write_bundle} (no [bundle_dir] — the
    firing is still counted and logged, just not bundled).  [before_solve]
    is a test-only fault-injection hook run with the raw request line
    inside the watchdog bracket, before the handler.

    [persist] wires in the durability layer (journal + checkpoints);
    [checkpoint_secs] (default 0: disabled) is the periodic checkpoint
    cadence driven from {!tick}.  [idem_cap] (default 4096) bounds the
    idempotency reply cache (FIFO eviction). *)

val max_frame : t -> int
val shutting_down : t -> bool
(** Set by a [shutdown] request; the transport drains and exits. *)

val pending : t -> int
val sessions : t -> int
val version : t -> string
val uptime_s : t -> float
(** Seconds since {!create}, from the monotonic clock. *)

val requests_posted : t -> int
(** Lines ever handed to {!post}, including busy-rejected ones.  Engine
    state, live even when [Obs] is disabled. *)

val requests_served : t -> int
(** Replies sent from {!drain} (busy rejections reply from {!post} and are
    not counted here). *)

val prom : t -> string
(** The Prometheus text exposition behind the [metrics] op: the full
    {!Obs.Prom.render} plus engine gauges (resident sessions, queue depth,
    uptime, request totals, per-session task/proc/makespan figures).
    Rendered between requests, so it reads a consistent snapshot. *)

val post : t -> reply:(string -> unit) -> string -> unit
(** Enqueue one request line.  [reply] is invoked exactly once per posted
    line — during a later {!drain}, or immediately with a [busy] error
    when the queue is full (malformed lines are queued too, so error
    replies keep their place in the reply order). *)

val drain : t -> unit
(** Process every queued request in arrival order, invoking the reply
    callbacks.  Requests posted by callbacks during the drain are
    processed too.  No-op on an empty queue. *)

val tick : t -> unit
(** Host-loop pulse between requests: take a due {!Obs.Recorder} snapshot
    (with this engine's gauges), run the periodic {!Obs.Anomaly.poll}
    (heap growth) bundling any firing, give the journal its interval-fsync
    chance, and write a checkpoint when the cadence is due.  The daemon
    calls this every select round. *)

val recover : t -> Persist.recovery -> recovery_info
(** Rebuild state from what {!Persist.open_} (or {!Persist.load}) found:
    checkpoint sessions are restored directly via {!Session.restore}, then
    each journal group is replayed through the normal {!post}/{!drain}
    path (replies discarded, re-journaling suppressed, admission control
    and the frame cap bypassed — every record was admitted once already)
    with the original [add_task] batch boundaries preserved, and the
    cached idempotency replies are re-seeded.  Every resulting session is
    checked with {!Session.verify}; failures are Warn events and counted
    in [rec_failures], never raised.  Call before serving traffic. *)

val recovered : t -> recovery_info option
(** The report of the {!recover} call that built this engine, if any. *)

val checkpoint : t -> (string, string) result
(** Force a checkpoint now (the [checkpoint] op does this).  [Ok name] is
    the checkpoint directory basename; [Error] when no persist layer is
    configured or the write failed (the previous checkpoint, if any, is
    still intact either way). *)

val checkpoints_written : t -> int

val close_persist : t -> unit
(** Graceful-shutdown hook: write a final checkpoint (best-effort) and
    close the journal.  No-op without a persist layer. *)

val resident : t -> (string * Session.t) list
(** Resident sessions sorted by id — deterministic order for snapshot
    comparison ([doctor], the chaos harness). *)

val bundles_written : t -> int
(** Diagnostic bundles written by this engine (triggered or manual). *)

val last_bundle : t -> string option
(** Directory of the most recent bundle. *)
