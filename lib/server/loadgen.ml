(* Open-loop load generator for the scheduler daemon.

   One connection, pipelined: arrivals follow a seeded Poisson process
   (exponential inter-arrival times at [rate] requests/s) and are written
   when due whether or not earlier replies have come back — open-loop, so a
   slow server shows up as latency, not as a politely reduced offered load.
   Requests carry sequence-number ids and replies are matched by id (busy
   rejections are emitted by the engine at admission time and can overtake
   queued replies, so FIFO matching would mis-attribute them).

   Latencies are measured client-side (send-to-reply, monotonic clock) and
   kept as exact per-op sample arrays, so the reported p50/p95/p99 are true
   order statistics, not bucket approximations.  Busy and error replies are
   counted separately and excluded from the latency samples.

   The request mix over a preloaded session: 45% add_task (1–3 random
   configurations), 25% remove_task (a live tid, tracked client-side), 15%
   resolve (small budget), 10% ping, 5% stats. *)

module J = Obs.Json

type opts = {
  duration_s : float;
  rate : float;  (* target arrivals per second *)
  seed : int;
  tasks : int;  (* preloaded instance size *)
  procs : int;
  budget_ms : float;  (* resolve budget *)
  stall_timeout_s : float;  (* no-reply guard *)
  reconnect_attempts : int;  (* 0 = a dropped connection is fatal *)
}

let default_opts =
  {
    duration_s = 2.0;
    rate = 200.0;
    seed = 0;
    tasks = 120;
    procs = 32;
    budget_ms = 10.0;
    stall_timeout_s = 10.0;
    reconnect_attempts = 0;
  }

type op_stats = {
  o_op : string;
  o_count : int;
  o_mean_ms : float;
  o_p50_ms : float;
  o_p95_ms : float;
  o_p99_ms : float;
  o_max_ms : float;
  o_samples_ms : float array;  (* sorted ascending *)
}

type report = {
  r_wall_s : float;
  r_sent : int;
  r_replies : int;
  r_busy : int;
  r_errors : int;
  r_reconnects : int;
  r_throughput_rps : float;
  r_ops : op_stats list;  (* name-sorted *)
}

(* Exact quantile of a sorted sample array: linear interpolation on rank
   q·(n−1), the same convention Metrics.quantile uses on its buckets. *)
let quantile_sorted a q =
  let n = Array.length a in
  if n = 0 then Float.nan
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let instance_text opts =
  let rng = Randkit.Prng.create ~seed:(opts.seed + 7919) in
  let h =
    Hyper.Generate.generate rng ~family:Hyper.Generate.Fewg_manyg ~n:opts.tasks ~p:opts.procs
      ~dv:3 ~dh:4
      ~g:(max 4 (opts.procs / 8))
      ~weights:Hyper.Weights.Unit
  in
  Hyper.Io.to_string h

let session = "loadgen"

let request_line ~id fields =
  J.to_string (J.Obj (("id", J.Num (float_of_int id)) :: fields))

let run ?connect fd opts =
  if opts.rate <= 0.0 then invalid_arg "Loadgen.run: rate must be positive";
  if opts.duration_s <= 0.0 then invalid_arg "Loadgen.run: duration must be positive";
  let rng = Randkit.Prng.create ~seed:opts.seed in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !error = None then error := Some m) fmt in
  (* reply bookkeeping: pending keeps the request line so a reconnect can
     resend everything still unanswered *)
  let pending : (int, string * string * int64) Hashtbl.t = Hashtbl.create 256 in
  let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let sent = ref 0 and replies = ref 0 and busy = ref 0 and errors = ref 0 in
  let reconnects = ref 0 in
  let fdr = ref fd in
  let inbuf = ref "" in
  let record op ms =
    let cell =
      match Hashtbl.find_opt samples op with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.replace samples op c;
          c
    in
    cell := ms :: !cell
  in
  (* client-side session state *)
  let live = ref (Array.init opts.tasks Fun.id) in
  let n_live = ref opts.tasks in
  let next_tid = ref opts.tasks in
  let next_id = ref 0 in
  let write_raw line =
    let bytes = Bytes.of_string (line ^ "\n") in
    let len = Bytes.length bytes in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write !fdr bytes !off (len - !off)
    done
  in
  (* A dropped connection: with [connect] and a positive attempt budget,
     back off, redial, and resend every still-unanswered request in send
     order — their idempotency ids keep already-applied mutations from
     double-applying on the other side.  Otherwise it stays fatal. *)
  let reconnect_or_fail why =
    match connect with
    | Some dial when opts.reconnect_attempts > 0 ->
        (try Unix.close !fdr with Unix.Unix_error _ -> ());
        inbuf := "";
        let ok = ref false in
        let attempt = ref 0 in
        while (not !ok) && !attempt < opts.reconnect_attempts && !error = None do
          Unix.sleepf (0.05 *. (2.0 ** float_of_int !attempt));
          Stdlib.incr attempt;
          match dial () with
          | fd -> fdr := fd; ok := true
          | exception Unix.Unix_error _ -> ()
        done;
        if not !ok then
          fail "%s; reconnect failed after %d attempts" why opts.reconnect_attempts
        else begin
          Stdlib.incr reconnects;
          let outstanding =
            List.sort compare
              (Hashtbl.fold (fun id (_, line, _) acc -> (id, line) :: acc) pending [])
          in
          try List.iter (fun (_, line) -> write_raw line) outstanding
          with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            fail "server hung up again while resending after reconnect"
        end
    | _ -> fail "%s" why
  in
  (* Only mutations need idempotency ids, and only when a resend is
     possible at all. *)
  let idem_for op =
    opts.reconnect_attempts > 0 && (op = "load" || op = "add_task" || op = "remove_task")
  in
  let send fields op =
    let id = !next_id in
    Stdlib.incr next_id;
    let fields =
      if idem_for op then fields @ [ ("idem", J.Str (Printf.sprintf "lg%d-%d" opts.seed id)) ]
      else fields
    in
    let line = request_line ~id fields in
    Hashtbl.replace pending id (op, line, Obs.Span.now_ns ());
    Stdlib.incr sent;
    try write_raw line
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      reconnect_or_fail (Printf.sprintf "server hung up while sending request %d" id)
  in
  let process_line line =
    if line <> "" then
      match J.of_string line with
      | exception Failure msg -> fail "unparseable reply: %s" msg
      | j -> (
          match Option.bind (J.member "id" j) J.to_float with
          | None -> fail "reply without a numeric id: %s" line
          | Some f -> (
              let id = int_of_float f in
              match Hashtbl.find_opt pending id with
              | None -> fail "reply for unknown id %d" id
              | Some (op, _, t_send) ->
                  Hashtbl.remove pending id;
                  Stdlib.incr replies;
                  let ms =
                    Int64.to_float (Int64.sub (Obs.Span.now_ns ()) t_send) /. 1e6
                  in
                  if J.member "ok" j = Some (J.Bool true) then record op ms
                  else if J.member "error" j = Some (J.Str "busy") then Stdlib.incr busy
                  else Stdlib.incr errors))
  in
  let chunk = Bytes.create 65536 in
  let drain_input wait =
    match Unix.select [ !fdr ] [] [] wait with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.read !fdr chunk 0 (Bytes.length chunk) with
        | 0 -> reconnect_or_fail "server closed the connection"
        | n ->
            inbuf := !inbuf ^ Bytes.sub_string chunk 0 n;
            let parts = String.split_on_char '\n' !inbuf in
            let rec consume = function
              | [] -> inbuf := ""
              | [ last ] -> inbuf := last
              | line :: rest ->
                  process_line line;
                  consume rest
            in
            consume parts
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            reconnect_or_fail "server reset the connection")
  in
  let stalled () =
    let now = Obs.Span.now_ns () in
    let limit = Int64.of_float (opts.stall_timeout_s *. 1e9) in
    Hashtbl.fold
      (fun id (op, _, t_send) acc ->
        match acc with
        | Some _ -> acc
        | None -> if Int64.sub now t_send > limit then Some (id, op) else None)
      pending None
  in
  let await_quiet () =
    (* drain until no replies are outstanding (or a stall/error) *)
    let continue = ref true in
    while !continue do
      if Hashtbl.length pending = 0 || !error <> None then continue := false
      else (
        (match stalled () with
        | Some (id, op) ->
            fail "no reply to request %d (%s) within %gs" id op opts.stall_timeout_s
        | None -> ());
        if !error = None then drain_input 0.05)
    done
  in
  (* preload the session *)
  send
    [ ("op", J.Str "load"); ("session", J.Str session); ("instance", J.Str (instance_text opts)) ]
    "load";
  await_quiet ();
  (match Hashtbl.find_opt samples "load" with
  | None when !error = None -> fail "load request did not succeed"
  | _ -> ());
  (* the load reply is setup, not part of the measured run *)
  Hashtbl.remove samples "load";
  let gen_and_send () =
    let u = Randkit.Prng.float rng 1.0 in
    if u < 0.45 || (u < 0.70 && !n_live = 0) then begin
      (* add_task: 1–3 configurations over 1–3 distinct processors each *)
      let n_cfg = 1 + Randkit.Prng.int rng 3 in
      let config () =
        let k = 1 + Randkit.Prng.int rng (min 3 opts.procs) in
        let procs = Randkit.Prng.sample_without_replacement rng ~k ~n:opts.procs in
        J.Obj
          [
            ("procs", J.List (Array.to_list (Array.map (fun p -> J.Num (float_of_int p)) procs)));
            ("weight", J.Num (0.5 +. Randkit.Prng.float rng 1.5));
          ]
      in
      send
        [
          ("op", J.Str "add_task");
          ("session", J.Str session);
          ("configs", J.List (List.init n_cfg (fun _ -> config ())));
        ]
        "add_task";
      let a = !live in
      if !n_live >= Array.length a then begin
        let bigger = Array.make (max 16 (2 * Array.length a)) 0 in
        Array.blit a 0 bigger 0 (Array.length a);
        live := bigger
      end;
      !live.(!n_live) <- !next_tid;
      Stdlib.incr next_tid;
      Stdlib.incr n_live
    end
    else if u < 0.70 then begin
      let i = Randkit.Prng.int rng !n_live in
      let tid = !live.(i) in
      !live.(i) <- !live.(!n_live - 1);
      Stdlib.decr n_live;
      send
        [ ("op", J.Str "remove_task"); ("session", J.Str session); ("task", J.Num (float_of_int tid)) ]
        "remove_task"
    end
    else if u < 0.85 then
      send
        [ ("op", J.Str "resolve"); ("session", J.Str session); ("budget_ms", J.Num opts.budget_ms) ]
        "resolve"
    else if u < 0.95 then send [ ("op", J.Str "ping") ] "ping"
    else send [ ("op", J.Str "stats") ] "stats"
  in
  let interval () =
    let u = Randkit.Prng.float rng 1.0 in
    Int64.of_float (-.Float.log (1.0 -. u) /. opts.rate *. 1e9)
  in
  let t_start = Obs.Span.now_ns () in
  let t_end = Int64.add t_start (Int64.of_float (opts.duration_s *. 1e9)) in
  let next_arrival = ref t_start in
  let measured0 = !sent in
  while
    !error = None
    && (Int64.compare (Obs.Span.now_ns ()) t_end < 0 || Hashtbl.length pending > 0)
  do
    (match stalled () with
    | Some (id, op) -> fail "no reply to request %d (%s) within %gs" id op opts.stall_timeout_s
    | None -> ());
    if !error = None then begin
      let now = Obs.Span.now_ns () in
      let wait =
        if Int64.compare now t_end >= 0 then 0.05
        else
          Float.min 0.05
            (Float.max 0.0 (Int64.to_float (Int64.sub !next_arrival now) /. 1e9))
      in
      drain_input wait;
      (* open loop: send everything due, catching up if we fell behind *)
      let now = ref (Obs.Span.now_ns ()) in
      while
        !error = None
        && Int64.compare !next_arrival !now <= 0
        && Int64.compare !now t_end < 0
      do
        gen_and_send ();
        next_arrival := Int64.add !next_arrival (interval ());
        now := Obs.Span.now_ns ()
      done
    end
  done;
  match !error with
  | Some msg -> Error msg
  | None ->
      let wall_s = Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) t_start) in
      let measured_sent = !sent - measured0 in
      let ops =
        Hashtbl.fold
          (fun op cell acc ->
            let a = Array.of_list !cell in
            Array.sort compare a;
            let n = Array.length a in
            if n = 0 then acc
            else
              {
                o_op = op;
                o_count = n;
                o_mean_ms = Array.fold_left ( +. ) 0.0 a /. float_of_int n;
                o_p50_ms = quantile_sorted a 0.5;
                o_p95_ms = quantile_sorted a 0.95;
                o_p99_ms = quantile_sorted a 0.99;
                o_max_ms = a.(n - 1);
                o_samples_ms = a;
              }
              :: acc)
          samples []
        |> List.sort (fun a b -> compare a.o_op b.o_op)
      in
      Ok
        {
          r_wall_s = wall_s;
          r_sent = measured_sent;
          r_replies = !replies - 1 (* minus the load reply *);
          r_busy = !busy;
          r_errors = !errors;
          r_reconnects = !reconnects;
          r_throughput_rps = (if wall_s > 0.0 then float_of_int !replies /. wall_s else 0.0);
          r_ops = ops;
        }

(* BENCH_server.json rows: one meta line, one line per op — JSON lines like
   the other bench artifacts, parseable back with Obs.Json. *)
let report_json opts r =
  let buf = Buffer.create 1024 in
  let line j =
    Buffer.add_string buf (J.to_string j);
    Buffer.add_char buf '\n'
  in
  line
    (J.Obj
       [
         ("type", J.Str "meta");
         ("seed", J.Num (float_of_int opts.seed));
         ("rate", J.Num opts.rate);
         ("duration_s", J.Num opts.duration_s);
         ("wall_s", J.Num r.r_wall_s);
         ("sent", J.Num (float_of_int r.r_sent));
         ("replies", J.Num (float_of_int r.r_replies));
         ("busy", J.Num (float_of_int r.r_busy));
         ("errors", J.Num (float_of_int r.r_errors));
         ("reconnects", J.Num (float_of_int r.r_reconnects));
         ("throughput_rps", J.Num r.r_throughput_rps);
       ]);
  List.iter
    (fun o ->
      line
        (J.Obj
           [
             ("type", J.Str "op");
             ("op", J.Str o.o_op);
             ("count", J.Num (float_of_int o.o_count));
             ("mean_ms", J.Num o.o_mean_ms);
             ("p50_ms", J.Num o.o_p50_ms);
             ("p95_ms", J.Num o.o_p95_ms);
             ("p99_ms", J.Num o.o_p99_ms);
             ("max_ms", J.Num o.o_max_ms);
           ]))
    r.r_ops;
  Buffer.contents buf

let render r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "loadgen: %d sent, %d replies (%d busy, %d errors%s) in %.2fs — %.0f replies/s\n" r.r_sent
       r.r_replies r.r_busy r.r_errors
       (if r.r_reconnects > 0 then Printf.sprintf ", %d reconnects" r.r_reconnects else "")
       r.r_wall_s r.r_throughput_rps);
  Buffer.add_string buf
    (Printf.sprintf "  %-12s %7s %9s %9s %9s %9s %9s\n" "op" "count" "mean_ms" "p50_ms" "p95_ms"
       "p99_ms" "max_ms");
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %7d %9.3f %9.3f %9.3f %9.3f %9.3f\n" o.o_op o.o_count o.o_mean_ms
           o.o_p50_ms o.o_p95_ms o.o_p99_ms o.o_max_ms))
    r.r_ops;
  Buffer.contents buf
