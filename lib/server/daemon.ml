type opts = {
  socket_path : string option;
  tcp_port : int option;
  jobs : int;
  max_pending : int;
  max_frame : int;
  events_log : string option;
  trace_out : string option;
  version : string;
  slow_ms : float;
  runtime_events : bool;
  bundle_dir : string option;
  record_secs : float;
  triggers : Obs.Anomaly.rule list;
  persist_dir : string option;
  fsync : Journal.policy;
  checkpoint_secs : float;
}

let default_opts =
  {
    socket_path = None;
    tcp_port = None;
    jobs = 1;
    max_pending = 64;
    max_frame = Protocol.default_max_frame;
    events_log = None;
    trace_out = None;
    version = "dev";
    slow_ms = 100.0;
    runtime_events = true;
    bundle_dir = None;
    record_secs = 0.0;
    triggers = [];
    persist_dir = None;
    fsync = Journal.Interval 0.1;
    checkpoint_secs = 60.0;
  }

type conn = {
  fd : Unix.file_descr;
  mutable pending : string;  (* bytes of the current, incomplete frame *)
  mutable skipping : bool;  (* dropping an oversized frame up to its newline *)
  mutable closed : bool;
}

let c_conns = Obs.Metrics.counter "server.connections"
let c_frames_dropped = Obs.Metrics.counter "server.frames_dropped"
let c_bytes_in = Obs.Metrics.counter "server.bytes_in"
let c_bytes_out = Obs.Metrics.counter "server.bytes_out"

(* Synchronous full write; a peer that vanished mid-reply just closes the
   connection (SIGPIPE is ignored for the daemon's lifetime). *)
let send conn line =
  if not conn.closed then begin
    let bytes = Bytes.of_string (line ^ "\n") in
    let len = Bytes.length bytes in
    Obs.Metrics.add c_bytes_out len;
    let off = ref 0 in
    try
      while !off < len do
        off := !off + Unix.write conn.fd bytes !off (len - !off)
      done
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> conn.closed <- true
  end

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  fd

(* Feed a chunk of bytes into the connection's frame assembler, posting
   every complete line.  While [skipping], bytes are discarded without
   buffering, so an oversized frame costs O(chunk) memory however long it
   is — that is the unbounded-allocation guard the frame cap promises. *)
let feed engine conn chunk =
  let data = ref chunk in
  while !data <> "" do
    if conn.skipping then
      match String.index_opt !data '\n' with
      | None -> data := ""
      | Some i ->
          conn.skipping <- false;
          data := String.sub !data (i + 1) (String.length !data - i - 1)
    else
      match String.index_opt !data '\n' with
      | None ->
          conn.pending <- conn.pending ^ !data;
          data := "";
          if String.length conn.pending > Engine.max_frame engine then begin
            Obs.Metrics.incr c_frames_dropped;
            send conn
              (Protocol.error_reply ~code:Protocol.Too_large
                 (Printf.sprintf "frame exceeds the %d-byte cap" (Engine.max_frame engine)));
            conn.pending <- "";
            conn.skipping <- true
          end
      | Some i ->
          let line = conn.pending ^ String.sub !data 0 i in
          conn.pending <- "";
          data := String.sub !data (i + 1) (String.length !data - i - 1);
          let line =
            if String.length line > 0 && line.[String.length line - 1] = '\r' then
              String.sub line 0 (String.length line - 1)
            else line
          in
          if String.length line > Engine.max_frame engine then begin
            Obs.Metrics.incr c_frames_dropped;
            send conn
              (Protocol.error_reply ~code:Protocol.Too_large
                 (Printf.sprintf "frame exceeds the %d-byte cap" (Engine.max_frame engine)))
          end
          else if line <> "" then Engine.post engine ~reply:(send conn) line
  done

let run opts =
  if opts.socket_path = None && opts.tcp_port = None then
    invalid_arg "Daemon.run: configure a Unix socket path or a TCP port";
  Obs.set_enabled true;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* SIGTERM/SIGINT request the same graceful exit a [shutdown] op does:
     finish the select round, flush replies, write a final checkpoint.
     kill -9 is the crash the journal exists for. *)
  let signalled = ref None in
  let on_signal s = signalled := Some s in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> on_signal "SIGTERM"))
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> on_signal "SIGINT"))
   with Invalid_argument _ -> ());
  if opts.runtime_events then Obs.Runtime.start ();
  (* Flight recorder: size the rings for the requested window and start the
     periodic exposition snapshots. *)
  if opts.record_secs > 0.0 then
    Obs.Recorder.start
      ~config:{ Obs.Recorder.default_config with Obs.Recorder.window_s = opts.record_secs }
      ();
  (* Trigger evaluation is on whenever bundles can land somewhere or rules
     were given explicitly; a bundle dir with no rules gets the default
     conservative set. *)
  let anomaly =
    match (opts.bundle_dir, opts.triggers) with
    | None, [] -> None
    | _, (_ :: _ as rules) -> Some (Obs.Anomaly.create rules)
    | Some _, [] -> Some (Obs.Anomaly.create Obs.Anomaly.default_rules)
  in
  (* Durability: open (or create) the persist dir — which truncates any
     torn journal tail — then rebuild state from it before serving. *)
  let persist, recovery =
    match opts.persist_dir with
    | None -> (None, None)
    | Some dir ->
        let p, r = Persist.open_ ~dir ~policy:opts.fsync ~version:opts.version in
        (Some p, Some r)
  in
  let engine =
    Engine.create ~jobs:opts.jobs ~max_pending:opts.max_pending ~max_frame:opts.max_frame
      ~version:opts.version ~slow_ms:opts.slow_ms ?anomaly ?bundle_dir:opts.bundle_dir ?persist
      ~checkpoint_secs:opts.checkpoint_secs ()
  in
  Option.iter (fun r -> ignore (Engine.recover engine r : Engine.recovery_info)) recovery;
  (* The stall watchdog cannot run on the engine thread (a stuck solve
     serves nothing, including its own health checks): a background domain
     polls the heartbeat and writes a partial bundle — trace, events,
     exposition, the offending request, no instance dump (session state
     belongs to the engine thread) — while the stall is still happening.
     The engine's own post-hoc check adds the full bundle if the solve
     eventually returns (cooldown keeps that to one bundle per stall). *)
  let wd_stop = Atomic.make false in
  let watchdog =
    match (anomaly, opts.bundle_dir) with
    | Some a, Some dir when Obs.Anomaly.stall_ms a <> None ->
        Some
          (Domain.spawn (fun () ->
               while not (Atomic.get wd_stop) do
                 Unix.sleepf 0.05;
                 match Obs.Anomaly.check_stuck a with
                 | None -> ()
                 | Some f ->
                     ignore
                       (Obs.Recorder.write_bundle ~dir
                          ~trigger:(Obs.Anomaly.rule_kind f.Obs.Anomaly.f_rule)
                          ~rule:(Obs.Anomaly.rule_to_string f.Obs.Anomaly.f_rule)
                          ~detail:f.Obs.Anomaly.f_detail ~version:opts.version ())
               done))
    | _ -> None
  in
  let listeners =
    (match opts.socket_path with None -> [] | Some p -> [ listen_unix p ])
    @ (match opts.tcp_port with None -> [] | Some p -> [ listen_tcp p ])
  in
  let conns = ref [] in
  let buf = Bytes.create 65536 in
  while (not (Engine.shutting_down engine)) && !signalled = None do
    let client_fds = List.map (fun c -> c.fd) !conns in
    match Unix.select (listeners @ client_fds) [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun lfd ->
            if List.memq lfd readable then begin
              let fd, _ = Unix.accept lfd in
              Obs.Metrics.incr c_conns;
              conns := { fd; pending = ""; skipping = false; closed = false } :: !conns
            end)
          listeners;
        List.iter
          (fun conn ->
            if (not conn.closed) && List.memq conn.fd readable then
              match Unix.read conn.fd buf 0 (Bytes.length buf) with
              | 0 -> conn.closed <- true
              | n ->
                  Obs.Metrics.add c_bytes_in n;
                  feed engine conn (Bytes.sub_string buf 0 n)
              | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                  conn.closed <- true)
          !conns;
        (* Serve everything admitted this round — including a shutdown, whose
           reply is flushed before the loop condition is re-checked. *)
        Engine.drain engine;
        (* Replay whatever GC/runtime activity the round produced into the
           span ring, so the trace interleaves it with the request spans. *)
        if opts.runtime_events then ignore (Obs.Runtime.poll ());
        (* Recorder snapshot + periodic anomaly poll (heap growth). *)
        Engine.tick engine;
        List.iter (fun c -> if c.closed then try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
        conns := List.filter (fun c -> not c.closed) !conns
  done;
  (match !signalled with
  | None -> ()
  | Some s -> Obs.Events.emit "server.signal_shutdown" [ Obs.Events.str "signal" s ]);
  Atomic.set wd_stop true;
  Option.iter Domain.join watchdog;
  if opts.runtime_events then Obs.Runtime.stop ();
  (* Final checkpoint + journal close before the logs are written, so the
     checkpoint event itself lands in the event log. *)
  Engine.close_persist engine;
  (match opts.events_log with
  | None -> ()
  | Some path -> ( try Obs.Events.write_jsonl path with Sys_error _ -> ()));
  (match opts.trace_out with
  | None -> ()
  | Some path -> ( try Obs.Trace.write_file path with Sys_error _ -> ()));
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  match opts.socket_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ()
