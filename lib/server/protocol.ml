module J = Obs.Json

type config = { procs : int array; weight : float }

type request =
  | Ping
  | Load of { session : string; source : [ `Inline of string | `Path of string ] }
  | Add_task of { session : string; configs : config list }
  | Remove_task of { session : string; task : int }
  | Kill_proc of { session : string; proc : int }
  | Resolve of { session : string; budget_ms : float }
  | Solve of { session : string }
  | Stats
  | Metrics
  | Sessions
  | Snapshot of { session : string }
  | Restore of { session : string; state : J.t }
  | Health
  | Dump of { session : string option }
  | Checkpoint
  | Shutdown
  | Stream_begin of { session : string; n1 : int; n2 : int }
  | Stream_chunk of { session : string; edges : (int * config) list }
  | Stream_end of { session : string; threshold_mb : int option; solver : string option }

type parsed = { req : request; id : J.t option; idem : string option }

type error_code = Protocol | Bad_request | Unknown_session | Busy | Too_large | Internal

let code_name = function
  | Protocol -> "protocol"
  | Bad_request -> "bad_request"
  | Unknown_session -> "unknown_session"
  | Busy -> "busy"
  | Too_large -> "too_large"
  | Internal -> "internal"

let default_max_frame = 1 lsl 20

let ok_reply ?id ~op fields =
  let base = [ ("ok", J.Bool true); ("op", J.Str op) ] @ fields in
  let fields = match id with None -> base | Some id -> ("id", id) :: base in
  J.to_string (J.Obj fields)

let error_reply ?id ~code msg =
  let base = [ ("ok", J.Bool false); ("error", J.Str (code_name code)); ("message", J.Str msg) ] in
  let fields = match id with None -> base | Some id -> ("id", id) :: base in
  J.to_string (J.Obj fields)

(* --- request parsing: total over arbitrary bytes --- *)

exception Reject of error_code * string

let reject code fmt = Printf.ksprintf (fun msg -> raise (Reject (code, msg))) fmt

let str_field obj name =
  match J.member name obj with
  | Some (J.Str s) -> s
  | Some _ -> reject Protocol "field %S must be a string" name
  | None -> reject Protocol "missing field %S" name

let session_of obj = str_field obj "session"

let int_field obj name =
  match J.member name obj with
  | Some (J.Num f) when Float.is_integer f && Float.abs f < 1e9 -> int_of_float f
  | Some _ -> reject Protocol "field %S must be an integer" name
  | None -> reject Protocol "missing field %S" name

let num_field_opt obj name ~default =
  match J.member name obj with
  | Some (J.Num f) when Float.is_finite f -> f
  | Some _ -> reject Protocol "field %S must be a finite number" name
  | None -> default

let config_of_json = function
  | J.Obj _ as o ->
      let weight =
        match J.member "weight" o with
        | Some (J.Num w) -> w
        | _ -> reject Protocol "config needs a numeric \"weight\""
      in
      let procs =
        match J.member "procs" o with
        | Some (J.List l) ->
            Array.of_list
              (List.map
                 (function
                   | J.Num f when Float.is_integer f && Float.abs f < 1e9 -> int_of_float f
                   | _ -> reject Protocol "config \"procs\" must be a list of integers")
                 l)
        | _ -> reject Protocol "config needs a \"procs\" list"
      in
      { procs; weight }
  | _ -> reject Protocol "each config must be an object"

let request_of obj =
  match str_field obj "op" with
  | "ping" -> Ping
  | "load" -> (
      let session = session_of obj in
      match (J.member "instance" obj, J.member "path" obj) with
      | Some (J.Str text), None -> Load { session; source = `Inline text }
      | None, Some (J.Str path) -> Load { session; source = `Path path }
      | Some _, Some _ -> reject Protocol "load takes \"instance\" or \"path\", not both"
      | _ -> reject Protocol "load needs an \"instance\" text or a \"path\"")
  | "add_task" -> (
      let session = session_of obj in
      match J.member "configs" obj with
      | Some (J.List l) -> Add_task { session; configs = List.map config_of_json l }
      | Some _ -> reject Protocol "field \"configs\" must be a list"
      | None -> reject Protocol "missing field \"configs\"")
  | "remove_task" -> Remove_task { session = session_of obj; task = int_field obj "task" }
  | "kill_proc" -> Kill_proc { session = session_of obj; proc = int_field obj "proc" }
  | "resolve" ->
      Resolve
        { session = session_of obj; budget_ms = num_field_opt obj "budget_ms" ~default:500.0 }
  | "solve" -> Solve { session = session_of obj }
  | "stats" -> Stats
  | "metrics" -> Metrics
  | "sessions" -> Sessions
  | "snapshot" -> Snapshot { session = session_of obj }
  | "restore" -> (
      let session = session_of obj in
      match J.member "state" obj with
      | Some state -> Restore { session; state }
      | None -> reject Protocol "missing field \"state\"")
  | "health" -> Health
  | "checkpoint" -> Checkpoint
  | "dump" -> (
      match J.member "session" obj with
      | None -> Dump { session = None }
      | Some (J.Str s) -> Dump { session = Some s }
      | Some _ -> reject Protocol "field \"session\" must be a string")
  | "shutdown" -> Shutdown
  | "stream_begin" ->
      let n1 = int_field obj "n1" and n2 = int_field obj "n2" in
      if n1 < 0 || n2 < 0 then reject Bad_request "stream_begin sizes must be non-negative";
      Stream_begin { session = session_of obj; n1; n2 }
  | "stream_chunk" -> (
      let session = session_of obj in
      match J.member "edges" obj with
      | Some (J.List l) ->
          let edge_of = function
            | J.Obj _ as o ->
                let task = int_field o "task" in
                (task, config_of_json o)
            | _ -> reject Protocol "each edge must be an object"
          in
          Stream_chunk { session; edges = List.map edge_of l }
      | Some _ -> reject Protocol "field \"edges\" must be a list"
      | None -> reject Protocol "missing field \"edges\"")
  | "stream_end" ->
      let threshold_mb =
        match J.member "threshold_mb" obj with
        | None -> None
        | Some (J.Num f) when Float.is_integer f && f >= 0.0 && f < 1e6 -> Some (int_of_float f)
        | Some _ -> reject Protocol "field \"threshold_mb\" must be a small non-negative integer"
      in
      let solver =
        match J.member "solver" obj with
        | None -> None
        | Some (J.Str s) -> Some s
        | Some _ -> reject Protocol "field \"solver\" must be a string"
      in
      Stream_end { session = session_of obj; threshold_mb; solver }
  | op -> reject Protocol "unknown op %S" op

let parse ?(max_frame = default_max_frame) line =
  if String.length line > max_frame then
    Error (Too_large, Printf.sprintf "frame of %d bytes exceeds the %d-byte cap"
             (String.length line) max_frame, None)
  else
    match J.of_string line with
    | exception Failure msg -> Error (Protocol, msg, None)
    | J.Obj _ as obj -> (
        let id = J.member "id" obj in
        match
          let idem =
            match J.member "idem" obj with
            | None -> None
            | Some (J.Str s) when s <> "" -> Some s
            | Some _ -> reject Protocol "field \"idem\" must be a non-empty string"
          in
          (request_of obj, idem)
        with
        | req, idem -> Ok { req; id; idem }
        | exception Reject (code, msg) -> Error (code, msg, id))
    | _ -> Error (Protocol, "request must be a JSON object", None)
