(** Open-loop load generator for the scheduler daemon: a seeded Poisson
    arrival process of add_task/remove_task/resolve/ping/stats requests,
    pipelined over one connection with replies matched by id, measuring
    client-side send-to-reply latency as exact per-op sample arrays.

    Open loop means arrivals are sent when due regardless of outstanding
    replies, so server slowness shows up as latency (and eventually [busy]
    rejections), not as reduced offered load.  The mix runs against a
    preloaded session: 45% add_task, 25% remove_task, 15% resolve, 10%
    ping, 5% stats; removals pick a live tid tracked client-side.

    Deterministic in [seed] on the client side (arrival times are wall
    clock, so measured latencies are not — that is what the bench gate's
    tolerance bands are for). *)

type opts = {
  duration_s : float;  (** measured window, seconds *)
  rate : float;  (** target arrival rate, requests/second *)
  seed : int;
  tasks : int;  (** preloaded instance: tasks *)
  procs : int;  (** preloaded instance: processors *)
  budget_ms : float;  (** budget passed to [resolve] requests *)
  stall_timeout_s : float;  (** abort when any request goes unanswered this long *)
  reconnect_attempts : int;
      (** on a dropped connection, redial (via [run]'s [connect]) up to
          this many times with exponential backoff and resend outstanding
          requests; [0] keeps a drop fatal.  When positive, mutating
          requests carry ["idem"] ids so a resend of an already-applied
          mutation is answered from the server's idempotency cache instead
          of being applied twice. *)
}

val default_opts : opts
(** 2 s at 200 req/s, seed 0, a 120-task / 32-processor instance, 10 ms
    resolve budgets, 10 s stall guard, no reconnects. *)

type op_stats = {
  o_op : string;
  o_count : int;  (** ok replies measured *)
  o_mean_ms : float;
  o_p50_ms : float;
  o_p95_ms : float;
  o_p99_ms : float;
  o_max_ms : float;
  o_samples_ms : float array;  (** all samples, sorted ascending *)
}

type report = {
  r_wall_s : float;
  r_sent : int;  (** requests sent in the measured window (load excluded) *)
  r_replies : int;
  r_busy : int;  (** admission-control rejections (excluded from samples) *)
  r_errors : int;  (** non-busy error replies (excluded from samples) *)
  r_reconnects : int;  (** successful redials after a dropped connection *)
  r_throughput_rps : float;
  r_ops : op_stats list;  (** name-sorted; ops with no ok replies omitted *)
}

val quantile_sorted : float array -> float -> float
(** Exact linear-interpolated quantile of a sorted sample array ([nan] when
    empty) — rank convention matches [Obs.Metrics.quantile]. *)

val run :
  ?connect:(unit -> Unix.file_descr) -> Unix.file_descr -> opts -> (report, string) result
(** Drive a connected daemon socket: preload the session, run the arrival
    process for [duration_s], drain outstanding replies.  [Error] on
    protocol violations, a hung server (stall guard) or a failed preload.
    [connect] is the redial used when [reconnect_attempts > 0] and the
    connection drops mid-run (a daemon crash/restart); without it a drop
    is fatal as before.  Raises [Invalid_argument] on non-positive
    [rate]/[duration_s]. *)

val report_json : opts -> report -> string
(** JSON lines for [BENCH_server.json]: one ["meta"] row (parameters,
    throughput, reply/busy/error totals) then one ["op"] row per command
    with count/mean/p50/p95/p99/max in milliseconds. *)

val render : report -> string
(** Human-readable summary table. *)
