type t = { ic : in_channel; oc : out_channel }

let of_fd fd = { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  of_fd fd

let connect_tcp ~host ~port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> raise Not_found
      | { Unix.h_addr_list; _ } -> h_addr_list.(0))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (addr, port));
  of_fd fd

let request t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  input_line t.ic

let close t = try close_in t.ic with Sys_error _ -> ()
