(* Blocking client over a raw fd with a select-based read deadline.

   The previous channel-based implementation blocked forever in
   [input_line] when the daemon hung mid-request; reads now go through
   [Unix.select] against an absolute deadline, so a hung server costs
   [timeout_s] and a [Timeout] exception instead of a stuck CLI. *)

exception Timeout

type t = { fd : Unix.file_descr; mutable buf : string; mutable eof : bool }

let of_fd fd = { fd; buf = ""; eof = false }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  of_fd fd

let connect_tcp ~host ~port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> raise Not_found
      | { Unix.h_addr_list; _ } -> h_addr_list.(0))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (addr, port));
  of_fd fd

let write_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

(* Pop one complete line from the buffer, if any. *)
let take_line t =
  match String.index_opt t.buf '\n' with
  | None -> None
  | Some i ->
      let line = String.sub t.buf 0 i in
      t.buf <- String.sub t.buf (i + 1) (String.length t.buf - i - 1);
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line

let read_line ?timeout_s t =
  let deadline =
    Option.map (fun s -> Int64.add (Obs.Span.now_ns ()) (Int64.of_float (s *. 1e9))) timeout_s
  in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    match take_line t with
    | Some line -> line
    | None ->
        if t.eof then raise End_of_file;
        let wait =
          match deadline with
          | None -> -1.0 (* select: block indefinitely *)
          | Some d ->
              let left = Obs.Span.ns_to_s (Int64.sub d (Obs.Span.now_ns ())) in
              if left <= 0.0 then raise Timeout else left
        in
        (match Unix.select [ t.fd ] [] [] wait with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ -> if deadline <> None then raise Timeout
        | _ :: _, _, _ -> (
            match Unix.read t.fd chunk 0 (Bytes.length chunk) with
            | 0 -> t.eof <- true
            | n -> t.buf <- t.buf ^ Bytes.sub_string chunk 0 n
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> t.eof <- true));
        loop ()
  in
  loop ()

let request ?timeout_s t line =
  write_all t.fd (line ^ "\n");
  read_line ?timeout_s t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* The connection failures a retry can plausibly outlive: the daemon is
   restarting (refused / socket file not there yet) or just dropped us
   (reset / broken pipe).  Anything else propagates immediately. *)
let transient = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.EPIPE -> true
  | _ -> false

let retrying ?(attempts = 3) ?(delay_s = 0.1) connect =
  if attempts < 1 then invalid_arg "Client.retrying: attempts must be positive";
  let rec go n delay =
    match connect () with
    | t -> t
    | exception Unix.Unix_error (err, _, _) when transient err && n < attempts ->
        Unix.sleepf delay;
        go (n + 1) (delay *. 2.0)
  in
  go 1 delay_s
