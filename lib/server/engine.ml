module P = Protocol
module J = Obs.Json

let c_requests = Obs.Metrics.counter "server.requests"
let c_errors = Obs.Metrics.counter "server.errors"
let c_busy = Obs.Metrics.counter "server.busy"
let c_batched = Obs.Metrics.counter "server.batched"
let c_adopted = Obs.Metrics.counter "server.resolve.adopted"

(* Per-request phase latencies in microseconds: admission-time parse,
   queue residency, handler execution ("solve"), reply write.  Per-op
   end-to-end latency histograms are interned on first use of each op. *)
let h_parse = Obs.Metrics.histogram "server.phase.parse_us"
let h_queue = Obs.Metrics.histogram "server.phase.queue_wait_us"
let h_solve = Obs.Metrics.histogram "server.phase.solve_us"
let h_reply = Obs.Metrics.histogram "server.phase.reply_us"

let latency_hists : (string, Obs.Metrics.histogram) Hashtbl.t = Hashtbl.create 16

let latency_hist op =
  match Hashtbl.find_opt latency_hists op with
  | Some h -> h
  | None ->
      let h = Obs.Metrics.histogram ("server.latency." ^ op ^ "_us") in
      Hashtbl.add latency_hists op h;
      h

type item = {
  parsed : (P.parsed, P.error_code * string * J.t option) result;
  reply : string -> unit;
  posted_ns : int64;  (* admission timestamp, for the queue-wait phase *)
}

type t = {
  registry : (string, Session.t) Hashtbl.t;
  queue : item Queue.t;
  max_pending : int;
  max_frame : int;
  jobs : int;
  version : string;
  started_ns : int64;
  slow_ms : float;  (* slow-request threshold; <= 0 disables the log *)
  slow_every : int;  (* sampling: log the 1st, then every nth slow request *)
  mutable slow_seen : int;
  (* Plain request totals, maintained by the engine itself so [stats] can
     always answer them — independent of the [Obs] master switch. *)
  mutable posted : int;
  mutable served : int;
  mutable shutdown : bool;
}

let create ?(jobs = 1) ?(max_pending = 64) ?(max_frame = P.default_max_frame)
    ?(version = "dev") ?(slow_ms = 100.0) ?(slow_every = 10) () =
  if max_pending < 1 then invalid_arg "Engine.create: max_pending must be positive";
  if slow_every < 1 then invalid_arg "Engine.create: slow_every must be positive";
  {
    registry = Hashtbl.create 8;
    queue = Queue.create ();
    max_pending;
    max_frame;
    jobs;
    version;
    started_ns = Obs.Span.now_ns ();
    slow_ms;
    slow_every;
    slow_seen = 0;
    posted = 0;
    served = 0;
    shutdown = false;
  }

let max_frame t = t.max_frame
let shutting_down t = t.shutdown
let pending t = Queue.length t.queue
let sessions t = Hashtbl.length t.registry
let version t = t.version
let requests_posted t = t.posted
let requests_served t = t.served
let uptime_s t = Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) t.started_ns)

let int_j n = J.Num (float_of_int n)

let event op session =
  if Obs.is_enabled () then
    Obs.Events.emit "server.request"
      (Obs.Events.str "op" op :: (match session with None -> [] | Some s -> [ Obs.Events.str "session" s ]))

let repair_fields (r : Semimatch.Repair.t) =
  [
    ("moved", int_j (List.length r.Semimatch.Repair.moved));
    ("infeasible", int_j (List.length r.Semimatch.Repair.infeasible));
  ]

let find_session t ?id session k =
  match Hashtbl.find_opt t.registry session with
  | Some s -> k s
  | None -> P.error_reply ?id ~code:P.Unknown_session (Printf.sprintf "unknown session %S" session)

let load_source = function
  | `Inline text -> Ok text
  | `Path path -> (
      match In_channel.with_open_text path In_channel.input_all with
      | text -> Ok text
      | exception Sys_error msg -> Error msg)

let graph_of_text text =
  match Hyper.Io.of_string text with
  | h -> Ok h
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error ("invalid instance: " ^ msg)

let non_zero_counters () =
  List.rev
    (Obs.Metrics.fold_counters
       (fun name v acc -> if v <> 0 then (name, int_j v) :: acc else acc)
       [])

let op_name = function
  | P.Ping -> "ping"
  | P.Load _ -> "load"
  | P.Add_task _ -> "add_task"
  | P.Remove_task _ -> "remove_task"
  | P.Kill_proc _ -> "kill_proc"
  | P.Resolve _ -> "resolve"
  | P.Solve _ -> "solve"
  | P.Stats -> "stats"
  | P.Metrics -> "metrics"
  | P.Sessions -> "sessions"
  | P.Snapshot _ -> "snapshot"
  | P.Restore _ -> "restore"
  | P.Shutdown -> "shutdown"

(* The Prometheus exposition: everything Obs holds (counters, phase and
   per-op latency histograms, span totals) plus live engine gauges.  The
   engine is single-threaded across requests, so the render happens between
   requests and reads a consistent snapshot of the registry. *)
let prom t =
  let session_gauges =
    Hashtbl.fold
      (fun sid s acc ->
        let l = [ ("session", sid) ] in
        ("server.session.tasks", l, float_of_int (Session.n_tasks s))
        :: ("server.session.procs", l, float_of_int (Session.n_procs s))
        :: ("server.session.dead_procs", l, float_of_int (Session.dead_procs s))
        :: ("server.session.unplaced", l, float_of_int (List.length (Session.unplaced s)))
        :: ("server.session.makespan", l, Session.makespan s)
        :: acc)
      t.registry []
  in
  let gauges =
    [
      ("server.sessions", [], float_of_int (sessions t));
      ("server.pending", [], float_of_int (pending t));
      ("server.max_pending", [], float_of_int t.max_pending);
      ("server.uptime_seconds", [], uptime_s t);
      ("server.requests_posted", [], float_of_int t.posted);
      ("server.requests_served", [], float_of_int t.served);
    ]
    @ session_gauges
  in
  Obs.Prom.render ~gauges ()

(* One request, already parsed (add_task goes through [handle_adds] so the
   batch path is the only path).  Total: internal failures become an
   [internal] error reply, never a dead server. *)
let handle_one t ({ req; id } : P.parsed) =
  let op = op_name req in
  Obs.Metrics.incr c_requests;
  Obs.Span.timed ("server." ^ op) (fun () ->
      try
        match req with
        | P.Ping ->
            event op None;
            P.ok_reply ?id ~op [ ("pong", J.Bool true) ]
        | P.Load { session; source } -> (
            event op (Some session);
            match Result.bind (load_source source) graph_of_text with
            | Error msg -> P.error_reply ?id ~code:P.Bad_request msg
            | Ok h ->
                let s, r = Session.of_graph ~id:session h in
                Hashtbl.replace t.registry session s;
                P.ok_reply ?id ~op
                  ([
                     ("session", J.Str session);
                     ("tasks", int_j (Session.n_tasks s));
                     ("procs", int_j (Session.n_procs s));
                     ("makespan", J.Num (Session.makespan s));
                     ("lower_bound", J.Num r.Semimatch.Repair.lower_bound);
                   ]
                  @ repair_fields r))
        | P.Add_task _ -> assert false (* routed through handle_adds *)
        | P.Remove_task { session; task } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                match Session.remove_task s task with
                | Error msg -> P.error_reply ?id ~code:P.Bad_request msg
                | Ok makespan ->
                    P.ok_reply ?id ~op [ ("task", int_j task); ("makespan", J.Num makespan) ])
        | P.Kill_proc { session; proc } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                match Session.kill_proc s proc with
                | Error msg -> P.error_reply ?id ~code:P.Bad_request msg
                | Ok r ->
                    P.ok_reply ?id ~op
                      ([
                         ("proc", int_j proc);
                         ("affected", int_j (List.length r.Semimatch.Repair.affected));
                         ("makespan", J.Num (Session.makespan s));
                       ]
                      @ repair_fields r))
        | P.Resolve { session; budget_ms } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                let d, replaced = Session.resolve ~jobs:t.jobs ~budget_s:(budget_ms /. 1000.0) s in
                if replaced then Obs.Metrics.incr c_adopted;
                P.ok_reply ?id ~op
                  [
                    ("tier", J.Str (Semimatch.Deadline.tier_name d.Semimatch.Deadline.d_tier));
                    ("degraded", J.Bool d.Semimatch.Deadline.d_degraded);
                    ("replaced", J.Bool replaced);
                    ("makespan", J.Num (Session.makespan s));
                    ( "lower_bound",
                      J.Num d.Semimatch.Deadline.d_repair.Semimatch.Repair.lower_bound );
                    ("elapsed_ms", J.Num (1000.0 *. d.Semimatch.Deadline.d_elapsed_s));
                  ])
        | P.Solve { session } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                let d = Session.solve ~jobs:t.jobs s in
                P.ok_reply ?id ~op
                  [
                    ("tier", J.Str (Semimatch.Deadline.tier_name d.Semimatch.Deadline.d_tier));
                    ("makespan", J.Num (Session.makespan s));
                    ( "lower_bound",
                      J.Num d.Semimatch.Deadline.d_repair.Semimatch.Repair.lower_bound );
                    ( "infeasible",
                      int_j
                        (List.length d.Semimatch.Deadline.d_repair.Semimatch.Repair.infeasible) );
                    ("elapsed_ms", J.Num (1000.0 *. d.Semimatch.Deadline.d_elapsed_s));
                  ])
        | P.Stats ->
            event op None;
            (* The basics (uptime, version, request totals, sessions,
               pending) come from the engine's own state and are always
               live; only the [counters] object depends on Obs being
               enabled (empty otherwise). *)
            P.ok_reply ?id ~op
              [
                ("uptime_s", J.Num (uptime_s t));
                ("version", J.Str t.version);
                ("requests", int_j t.posted);
                ("served", int_j t.served);
                ("sessions", int_j (sessions t));
                ("pending", int_j (pending t));
                ("counters", J.Obj (if Obs.is_enabled () then non_zero_counters () else []));
              ]
        | P.Metrics ->
            event op None;
            P.ok_reply ?id ~op [ ("exposition", J.Str (prom t)) ]
        | P.Sessions ->
            event op None;
            let ids =
              List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.registry [])
            in
            P.ok_reply ?id ~op [ ("sessions", J.List (List.map (fun s -> J.Str s) ids)) ]
        | P.Snapshot { session } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                P.ok_reply ?id ~op [ ("state", Session.snapshot s) ])
        | P.Restore { session; state } -> (
            event op (Some session);
            match Session.restore ~id:session state with
            | Error msg -> P.error_reply ?id ~code:P.Bad_request msg
            | Ok s ->
                Hashtbl.replace t.registry session s;
                P.ok_reply ?id ~op
                  [
                    ("session", J.Str session);
                    ("tasks", int_j (Session.n_tasks s));
                    ("procs", int_j (Session.n_procs s));
                    ("makespan", J.Num (Session.makespan s));
                  ])
        | P.Shutdown ->
            event op None;
            t.shutdown <- true;
            P.ok_reply ?id ~op [ ("shutting_down", J.Bool true) ]
      with exn ->
        Obs.Metrics.incr c_errors;
        P.error_reply ?id ~code:P.Internal (Printexc.to_string exn))

(* The batch path: [n] consecutive add_task requests for one session become
   one graph rebuild and one Repair.place pass; every request still gets
   its own reply, tagged with the batch size it rode in.  Pure compute —
   the caller sends the replies so it can time the phases per request. *)
let handle_adds t session batch =
  let n = List.length batch in
  Obs.Metrics.add c_requests n;
  if n > 1 then Obs.Metrics.add c_batched n;
  event "add_task" (Some session);
  Obs.Span.timed "server.add_task" (fun () ->
      try
        match Hashtbl.find_opt t.registry session with
        | None ->
            List.map
              (fun (_, id, _, _) ->
                P.error_reply ?id ~code:P.Unknown_session
                  (Printf.sprintf "unknown session %S" session))
              batch
        | Some s -> (
            match Session.add_tasks s (List.map (fun (configs, _, _, _) -> configs) batch) with
            | Error msg ->
                List.map (fun (_, id, _, _) -> P.error_reply ?id ~code:P.Bad_request msg) batch
            | Ok (tids, r) ->
                let makespan = Session.makespan s in
                List.map2
                  (fun (_, id, _, _) tid ->
                    P.ok_reply ?id ~op:"add_task"
                      ([
                         ("tid", int_j tid);
                         ("batched", int_j n);
                         ("makespan", J.Num makespan);
                       ]
                      @ repair_fields r))
                  batch tids)
      with exn ->
        Obs.Metrics.incr c_errors;
        List.map
          (fun (_, id, _, _) -> P.error_reply ?id ~code:P.Internal (Printexc.to_string exn))
          batch)

let us_between later earlier = Int64.to_float (Int64.sub later earlier) /. 1e3

(* End-of-request accounting: phase histograms (queue wait and reply per
   request; the handler phase is observed once per batch by the caller),
   per-op end-to-end latency, the always-on served total, and the sampled
   slow-request log. *)
let finish t op ~posted_ns ~done_ns ~replied_ns =
  Obs.Metrics.observe h_reply (us_between replied_ns done_ns);
  let total_us = us_between replied_ns posted_ns in
  Obs.Metrics.observe (latency_hist op) total_us;
  t.served <- t.served + 1;
  let total_ms = total_us /. 1000.0 in
  if t.slow_ms > 0.0 && total_ms >= t.slow_ms then begin
    t.slow_seen <- t.slow_seen + 1;
    if (t.slow_seen - 1) mod t.slow_every = 0 then
      Obs.Events.emit ~level:Obs.Events.Warn "server.slow_request"
        [
          Obs.Events.str "op" op;
          Obs.Events.num "ms" total_ms;
          Obs.Events.num "threshold_ms" t.slow_ms;
          Obs.Events.int "nth" t.slow_seen;
        ]
  end

let post t ~reply line =
  t.posted <- t.posted + 1;
  if Queue.length t.queue >= t.max_pending then begin
    Obs.Metrics.incr c_busy;
    (* Best-effort id recovery so the busy reply can still be matched. *)
    let id =
      match P.parse ~max_frame:t.max_frame line with
      | Ok { id; _ } | Error (_, _, id) -> id
    in
    reply
      (P.error_reply ?id ~code:P.Busy
         (Printf.sprintf "pending-request queue full (%d); retry later" t.max_pending))
  end
  else begin
    let t0 = Obs.Span.now_ns () in
    let parsed = P.parse ~max_frame:t.max_frame line in
    let t1 = Obs.Span.now_ns () in
    Obs.Metrics.observe h_parse (us_between t1 t0);
    Queue.push { parsed; reply; posted_ns = t1 } t.queue
  end

let drain t =
  while not (Queue.is_empty t.queue) do
    let item = Queue.pop t.queue in
    let start_ns = Obs.Span.now_ns () in
    Obs.Metrics.observe h_queue (us_between start_ns item.posted_ns);
    match item.parsed with
    | Error (code, msg, id) ->
        Obs.Metrics.incr c_errors;
        let line = P.error_reply ?id ~code msg in
        let done_ns = Obs.Span.now_ns () in
        item.reply line;
        finish t "invalid" ~posted_ns:item.posted_ns ~done_ns ~replied_ns:(Obs.Span.now_ns ())
    | Ok { req = P.Add_task { session; configs }; id } ->
        let batch = ref [ (configs, id, item.reply, item.posted_ns) ] in
        let continue = ref true in
        while !continue do
          match Queue.peek_opt t.queue with
          | Some
              {
                parsed = Ok { req = P.Add_task { session = s2; configs = c2 }; id = id2 };
                reply;
                posted_ns;
              }
            when s2 = session ->
              ignore (Queue.pop t.queue);
              Obs.Metrics.observe h_queue (us_between start_ns posted_ns);
              batch := (c2, id2, reply, posted_ns) :: !batch
          | _ -> continue := false
        done;
        let batch = List.rev !batch in
        let replies = handle_adds t session batch in
        let done_ns = Obs.Span.now_ns () in
        Obs.Metrics.observe h_solve (us_between done_ns start_ns);
        List.iter2
          (fun (_, _, reply, posted_ns) line ->
            reply line;
            finish t "add_task" ~posted_ns ~done_ns ~replied_ns:(Obs.Span.now_ns ()))
          batch replies
    | Ok parsed ->
        let op = op_name parsed.P.req in
        let line = handle_one t parsed in
        let done_ns = Obs.Span.now_ns () in
        Obs.Metrics.observe h_solve (us_between done_ns start_ns);
        item.reply line;
        finish t op ~posted_ns:item.posted_ns ~done_ns ~replied_ns:(Obs.Span.now_ns ())
  done
