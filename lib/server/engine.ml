module P = Protocol
module J = Obs.Json

let c_requests = Obs.Metrics.counter "server.requests"
let c_errors = Obs.Metrics.counter "server.errors"
let c_busy = Obs.Metrics.counter "server.busy"
let c_batched = Obs.Metrics.counter "server.batched"
let c_adopted = Obs.Metrics.counter "server.resolve.adopted"

type item = {
  parsed : (P.parsed, P.error_code * string * J.t option) result;
  reply : string -> unit;
}

type t = {
  registry : (string, Session.t) Hashtbl.t;
  queue : item Queue.t;
  max_pending : int;
  max_frame : int;
  jobs : int;
  mutable shutdown : bool;
}

let create ?(jobs = 1) ?(max_pending = 64) ?(max_frame = P.default_max_frame) () =
  if max_pending < 1 then invalid_arg "Engine.create: max_pending must be positive";
  {
    registry = Hashtbl.create 8;
    queue = Queue.create ();
    max_pending;
    max_frame;
    jobs;
    shutdown = false;
  }

let max_frame t = t.max_frame
let shutting_down t = t.shutdown
let pending t = Queue.length t.queue
let sessions t = Hashtbl.length t.registry

let int_j n = J.Num (float_of_int n)

let event op session =
  if Obs.is_enabled () then
    Obs.Events.emit "server.request"
      (Obs.Events.str "op" op :: (match session with None -> [] | Some s -> [ Obs.Events.str "session" s ]))

let repair_fields (r : Semimatch.Repair.t) =
  [
    ("moved", int_j (List.length r.Semimatch.Repair.moved));
    ("infeasible", int_j (List.length r.Semimatch.Repair.infeasible));
  ]

let find_session t ?id session k =
  match Hashtbl.find_opt t.registry session with
  | Some s -> k s
  | None -> P.error_reply ?id ~code:P.Unknown_session (Printf.sprintf "unknown session %S" session)

let load_source = function
  | `Inline text -> Ok text
  | `Path path -> (
      match In_channel.with_open_text path In_channel.input_all with
      | text -> Ok text
      | exception Sys_error msg -> Error msg)

let graph_of_text text =
  match Hyper.Io.of_string text with
  | h -> Ok h
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error ("invalid instance: " ^ msg)

let non_zero_counters () =
  List.rev
    (Obs.Metrics.fold_counters
       (fun name v acc -> if v <> 0 then (name, int_j v) :: acc else acc)
       [])

(* One request, already parsed (add_task goes through [handle_adds] so the
   batch path is the only path).  Total: internal failures become an
   [internal] error reply, never a dead server. *)
let handle_one t ({ req; id } : P.parsed) =
  let op =
    match req with
    | P.Ping -> "ping"
    | P.Load _ -> "load"
    | P.Add_task _ -> "add_task"
    | P.Remove_task _ -> "remove_task"
    | P.Kill_proc _ -> "kill_proc"
    | P.Resolve _ -> "resolve"
    | P.Solve _ -> "solve"
    | P.Stats -> "stats"
    | P.Sessions -> "sessions"
    | P.Snapshot _ -> "snapshot"
    | P.Restore _ -> "restore"
    | P.Shutdown -> "shutdown"
  in
  Obs.Metrics.incr c_requests;
  Obs.Span.timed ("server." ^ op) (fun () ->
      try
        match req with
        | P.Ping ->
            event op None;
            P.ok_reply ?id ~op [ ("pong", J.Bool true) ]
        | P.Load { session; source } -> (
            event op (Some session);
            match Result.bind (load_source source) graph_of_text with
            | Error msg -> P.error_reply ?id ~code:P.Bad_request msg
            | Ok h ->
                let s, r = Session.of_graph ~id:session h in
                Hashtbl.replace t.registry session s;
                P.ok_reply ?id ~op
                  ([
                     ("session", J.Str session);
                     ("tasks", int_j (Session.n_tasks s));
                     ("procs", int_j (Session.n_procs s));
                     ("makespan", J.Num (Session.makespan s));
                     ("lower_bound", J.Num r.Semimatch.Repair.lower_bound);
                   ]
                  @ repair_fields r))
        | P.Add_task _ -> assert false (* routed through handle_adds *)
        | P.Remove_task { session; task } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                match Session.remove_task s task with
                | Error msg -> P.error_reply ?id ~code:P.Bad_request msg
                | Ok makespan ->
                    P.ok_reply ?id ~op [ ("task", int_j task); ("makespan", J.Num makespan) ])
        | P.Kill_proc { session; proc } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                match Session.kill_proc s proc with
                | Error msg -> P.error_reply ?id ~code:P.Bad_request msg
                | Ok r ->
                    P.ok_reply ?id ~op
                      ([
                         ("proc", int_j proc);
                         ("affected", int_j (List.length r.Semimatch.Repair.affected));
                         ("makespan", J.Num (Session.makespan s));
                       ]
                      @ repair_fields r))
        | P.Resolve { session; budget_ms } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                let d, replaced = Session.resolve ~jobs:t.jobs ~budget_s:(budget_ms /. 1000.0) s in
                if replaced then Obs.Metrics.incr c_adopted;
                P.ok_reply ?id ~op
                  [
                    ("tier", J.Str (Semimatch.Deadline.tier_name d.Semimatch.Deadline.d_tier));
                    ("degraded", J.Bool d.Semimatch.Deadline.d_degraded);
                    ("replaced", J.Bool replaced);
                    ("makespan", J.Num (Session.makespan s));
                    ( "lower_bound",
                      J.Num d.Semimatch.Deadline.d_repair.Semimatch.Repair.lower_bound );
                    ("elapsed_ms", J.Num (1000.0 *. d.Semimatch.Deadline.d_elapsed_s));
                  ])
        | P.Solve { session } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                let d = Session.solve ~jobs:t.jobs s in
                P.ok_reply ?id ~op
                  [
                    ("tier", J.Str (Semimatch.Deadline.tier_name d.Semimatch.Deadline.d_tier));
                    ("makespan", J.Num (Session.makespan s));
                    ( "lower_bound",
                      J.Num d.Semimatch.Deadline.d_repair.Semimatch.Repair.lower_bound );
                    ( "infeasible",
                      int_j
                        (List.length d.Semimatch.Deadline.d_repair.Semimatch.Repair.infeasible) );
                    ("elapsed_ms", J.Num (1000.0 *. d.Semimatch.Deadline.d_elapsed_s));
                  ])
        | P.Stats ->
            event op None;
            P.ok_reply ?id ~op
              [
                ("sessions", int_j (sessions t));
                ("pending", int_j (pending t));
                ("counters", J.Obj (non_zero_counters ()));
              ]
        | P.Sessions ->
            event op None;
            let ids =
              List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.registry [])
            in
            P.ok_reply ?id ~op [ ("sessions", J.List (List.map (fun s -> J.Str s) ids)) ]
        | P.Snapshot { session } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                P.ok_reply ?id ~op [ ("state", Session.snapshot s) ])
        | P.Restore { session; state } -> (
            event op (Some session);
            match Session.restore ~id:session state with
            | Error msg -> P.error_reply ?id ~code:P.Bad_request msg
            | Ok s ->
                Hashtbl.replace t.registry session s;
                P.ok_reply ?id ~op
                  [
                    ("session", J.Str session);
                    ("tasks", int_j (Session.n_tasks s));
                    ("procs", int_j (Session.n_procs s));
                    ("makespan", J.Num (Session.makespan s));
                  ])
        | P.Shutdown ->
            event op None;
            t.shutdown <- true;
            P.ok_reply ?id ~op [ ("shutting_down", J.Bool true) ]
      with exn ->
        Obs.Metrics.incr c_errors;
        P.error_reply ?id ~code:P.Internal (Printexc.to_string exn))

(* The batch path: [n] consecutive add_task requests for one session become
   one graph rebuild and one Repair.place pass; every request still gets
   its own reply, tagged with the batch size it rode in. *)
let handle_adds t session batch =
  let n = List.length batch in
  Obs.Metrics.add c_requests n;
  if n > 1 then Obs.Metrics.add c_batched n;
  event "add_task" (Some session);
  let replies =
    Obs.Span.timed "server.add_task" (fun () ->
        try
          match Hashtbl.find_opt t.registry session with
          | None ->
              List.map
                (fun (_, id, _) ->
                  P.error_reply ?id ~code:P.Unknown_session
                    (Printf.sprintf "unknown session %S" session))
                batch
          | Some s -> (
              match Session.add_tasks s (List.map (fun (configs, _, _) -> configs) batch) with
              | Error msg ->
                  List.map (fun (_, id, _) -> P.error_reply ?id ~code:P.Bad_request msg) batch
              | Ok (tids, r) ->
                  let makespan = Session.makespan s in
                  List.map2
                    (fun (_, id, _) tid ->
                      P.ok_reply ?id ~op:"add_task"
                        ([
                           ("tid", int_j tid);
                           ("batched", int_j n);
                           ("makespan", J.Num makespan);
                         ]
                        @ repair_fields r))
                    batch tids)
        with exn ->
          Obs.Metrics.incr c_errors;
          List.map (fun (_, id, _) -> P.error_reply ?id ~code:P.Internal (Printexc.to_string exn)) batch)
  in
  List.iter2 (fun (_, _, reply) line -> reply line) batch replies

let post t ~reply line =
  if Queue.length t.queue >= t.max_pending then begin
    Obs.Metrics.incr c_busy;
    (* Best-effort id recovery so the busy reply can still be matched. *)
    let id =
      match P.parse ~max_frame:t.max_frame line with
      | Ok { id; _ } | Error (_, _, id) -> id
    in
    reply
      (P.error_reply ?id ~code:P.Busy
         (Printf.sprintf "pending-request queue full (%d); retry later" t.max_pending))
  end
  else Queue.push { parsed = P.parse ~max_frame:t.max_frame line; reply } t.queue

let drain t =
  while not (Queue.is_empty t.queue) do
    let item = Queue.pop t.queue in
    match item.parsed with
    | Error (code, msg, id) ->
        Obs.Metrics.incr c_errors;
        item.reply (P.error_reply ?id ~code msg)
    | Ok { req = P.Add_task { session; configs }; id } ->
        let batch = ref [ (configs, id, item.reply) ] in
        let continue = ref true in
        while !continue do
          match Queue.peek_opt t.queue with
          | Some
              {
                parsed = Ok { req = P.Add_task { session = s2; configs = c2 }; id = id2 };
                reply;
              }
            when s2 = session ->
              ignore (Queue.pop t.queue);
              batch := (c2, id2, reply) :: !batch
          | _ -> continue := false
        done;
        handle_adds t session (List.rev !batch)
    | Ok parsed -> item.reply (handle_one t parsed)
  done
