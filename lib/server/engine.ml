module P = Protocol
module J = Obs.Json

let c_requests = Obs.Metrics.counter "server.requests"
let c_errors = Obs.Metrics.counter "server.errors"
let c_busy = Obs.Metrics.counter "server.busy"
let c_batched = Obs.Metrics.counter "server.batched"
let c_adopted = Obs.Metrics.counter "server.resolve.adopted"
let c_idem_hits = Obs.Metrics.counter "server.idem.hits"
let c_recovery_records = Obs.Metrics.counter "server.recovery.records"

let () =
  Obs.Prom.describe "server.requests" "Requests handled (batch members counted individually).";
  Obs.Prom.describe "server.errors" "Error replies sent.";
  Obs.Prom.describe "server.busy" "Requests rejected by admission control.";
  Obs.Prom.describe "server.batched" "add_task requests served through a coalesced batch.";
  Obs.Prom.describe "server.resolve.adopted" "Budgeted resolves whose schedule beat the incumbent.";
  Obs.Prom.describe "server.sessions" "Resident sessions.";
  Obs.Prom.describe "server.pending" "Requests waiting in the admission queue.";
  Obs.Prom.describe "server.uptime_seconds" "Seconds since the engine was created.";
  Obs.Prom.describe "server.idem.hits" "Mutations answered from the idempotency cache.";
  Obs.Prom.describe "server.checkpoints" "Checkpoints written since startup.";
  Obs.Prom.describe "server.recovery.records" "Journal records replayed at startup.";
  Obs.Prom.describe "server.recovery.torn_bytes" "Torn journal bytes truncated at startup.";
  Obs.Prom.describe "server.recovery.sessions" "Sessions restored by crash recovery.";
  Obs.Prom.describe "server.recovery.replay_us" "Crash-recovery replay time, microseconds.";
  Obs.Prom.describe "server.spools" "Edge-stream uploads currently spooling to disk.";
  Obs.Prom.describe "stream.peak_state_words"
    "High-water working-state words across all bounded-memory streaming solves."

(* Per-request phase latencies in microseconds: admission-time parse,
   queue residency, handler execution ("solve"), reply write.  Per-op
   end-to-end latency histograms are interned on first use of each op. *)
let h_parse = Obs.Metrics.histogram "server.phase.parse_us"
let h_queue = Obs.Metrics.histogram "server.phase.queue_wait_us"
let h_solve = Obs.Metrics.histogram "server.phase.solve_us"
let h_reply = Obs.Metrics.histogram "server.phase.reply_us"

let latency_hists : (string, Obs.Metrics.histogram) Hashtbl.t = Hashtbl.create 16

let latency_hist op =
  match Hashtbl.find_opt latency_hists op with
  | Some h -> h
  | None ->
      let h = Obs.Metrics.histogram ("server.latency." ^ op ^ "_us") in
      Hashtbl.add latency_hists op h;
      h

type item = {
  parsed : (P.parsed, P.error_code * string * J.t option) result;
  raw : string;  (* the request line as received — the "offending request" a bundle captures *)
  reply : string -> unit;
  posted_ns : int64;  (* admission timestamp, for the queue-wait phase *)
}

(* One in-flight chunked edge-stream upload: edges are appended to a spool
   file on disk ({!Hyper.Stream_io}), never buffered in RAM.  Spools are
   transient by design — they are not journaled and do not survive a daemon
   restart; a client that loses its connection mid-upload re-begins. *)
type spool = { sp_writer : Hyper.Stream_io.writer; sp_path : string }

type recovery_info = {
  rec_records : int;
  rec_torn_bytes : int;
  rec_sessions : int;
  rec_checkpoint : string option;
  rec_replay_us : float;
  rec_failures : int;  (* sessions that failed restore or the feasibility recompute *)
}

type t = {
  registry : (string, Session.t) Hashtbl.t;
  spools : (string, spool) Hashtbl.t;  (* session → open edge-stream upload *)
  queue : item Queue.t;
  max_pending : int;
  max_frame : int;
  jobs : int;
  version : string;
  started_ns : int64;
  slow_ms : float;  (* slow-request threshold; <= 0 disables the log *)
  slow_every : int;  (* sampling: log the 1st, then every nth slow request *)
  mutable slow_seen : int;
  anomaly : Obs.Anomaly.t option;
  bundle_dir : string option;
  before_solve : (string -> unit) option;  (* fault-injection hook for tests *)
  mutable bundles : int;
  mutable last_bundle : string option;
  (* Plain request totals, maintained by the engine itself so [stats] can
     always answer them — independent of the [Obs] master switch. *)
  mutable posted : int;
  mutable served : int;
  mutable shutdown : bool;
  (* Durability: the persist layer (journal + checkpoints), the replay
     flag that suppresses re-journaling during recovery, and the bounded
     idempotency-id reply cache (FIFO eviction). *)
  persist : Persist.t option;
  checkpoint_secs : float;
  mutable last_ckpt_ns : int64;
  mutable replaying : bool;
  mutable checkpoints : int;
  mutable recovered : recovery_info option;
  idem_cache : (string, string) Hashtbl.t;
  idem_order : string Queue.t;
  idem_cap : int;
}

let create ?(jobs = 1) ?(max_pending = 64) ?(max_frame = P.default_max_frame)
    ?(version = "dev") ?(slow_ms = 100.0) ?(slow_every = 10) ?anomaly ?bundle_dir ?before_solve
    ?persist ?(checkpoint_secs = 0.0) ?(idem_cap = 4096) () =
  if max_pending < 1 then invalid_arg "Engine.create: max_pending must be positive";
  if slow_every < 1 then invalid_arg "Engine.create: slow_every must be positive";
  if idem_cap < 1 then invalid_arg "Engine.create: idem_cap must be positive";
  {
    registry = Hashtbl.create 8;
    spools = Hashtbl.create 4;
    queue = Queue.create ();
    max_pending;
    max_frame;
    jobs;
    version;
    started_ns = Obs.Span.now_ns ();
    slow_ms;
    slow_every;
    slow_seen = 0;
    anomaly;
    bundle_dir;
    before_solve;
    bundles = 0;
    last_bundle = None;
    posted = 0;
    served = 0;
    shutdown = false;
    persist;
    checkpoint_secs;
    last_ckpt_ns = Obs.Span.now_ns ();
    replaying = false;
    checkpoints = 0;
    recovered = None;
    idem_cache = Hashtbl.create 64;
    idem_order = Queue.create ();
    idem_cap;
  }

let max_frame t = t.max_frame
let shutting_down t = t.shutdown
let pending t = Queue.length t.queue
let sessions t = Hashtbl.length t.registry
let version t = t.version
let requests_posted t = t.posted
let requests_served t = t.served
let uptime_s t = Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) t.started_ns)

let int_j n = J.Num (float_of_int n)

let event op session =
  if Obs.is_enabled () then
    Obs.Events.emit "server.request"
      (Obs.Events.str "op" op :: (match session with None -> [] | Some s -> [ Obs.Events.str "session" s ]))

let repair_fields (r : Semimatch.Repair.t) =
  [
    ("moved", int_j (List.length r.Semimatch.Repair.moved));
    ("infeasible", int_j (List.length r.Semimatch.Repair.infeasible));
  ]

let find_session t ?id session k =
  match Hashtbl.find_opt t.registry session with
  | Some s -> k s
  | None -> P.error_reply ?id ~code:P.Unknown_session (Printf.sprintf "unknown session %S" session)

(* Abort an upload: seal (so the channel flushes), close, delete. *)
let drop_spool t session =
  match Hashtbl.find_opt t.spools session with
  | None -> ()
  | Some sp ->
      Hashtbl.remove t.spools session;
      Hyper.Stream_io.close_writer sp.sp_writer;
      (try Sys.remove sp.sp_path with Sys_error _ -> ())

let load_source = function
  | `Inline text -> Ok text
  | `Path path -> (
      match In_channel.with_open_text path In_channel.input_all with
      | text -> Ok text
      | exception Sys_error msg -> Error msg)

let graph_of_text text =
  match Hyper.Io.of_string text with
  | h -> Ok h
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error ("invalid instance: " ^ msg)

let non_zero_counters () =
  List.rev
    (Obs.Metrics.fold_counters
       (fun name v acc -> if v <> 0 then (name, int_j v) :: acc else acc)
       [])

let op_name = function
  | P.Ping -> "ping"
  | P.Load _ -> "load"
  | P.Add_task _ -> "add_task"
  | P.Remove_task _ -> "remove_task"
  | P.Kill_proc _ -> "kill_proc"
  | P.Resolve _ -> "resolve"
  | P.Solve _ -> "solve"
  | P.Stats -> "stats"
  | P.Metrics -> "metrics"
  | P.Sessions -> "sessions"
  | P.Snapshot _ -> "snapshot"
  | P.Restore _ -> "restore"
  | P.Health -> "health"
  | P.Dump _ -> "dump"
  | P.Checkpoint -> "checkpoint"
  | P.Shutdown -> "shutdown"
  | P.Stream_begin _ -> "stream_begin"
  | P.Stream_chunk _ -> "stream_chunk"
  | P.Stream_end _ -> "stream_end"

let session_of_req = function
  | P.Load { session; _ }
  | P.Add_task { session; _ }
  | P.Remove_task { session; _ }
  | P.Kill_proc { session; _ }
  | P.Resolve { session; _ }
  | P.Solve { session }
  | P.Snapshot { session }
  | P.Restore { session; _ }
  | P.Stream_begin { session; _ }
  | P.Stream_chunk { session; _ }
  | P.Stream_end { session; _ } ->
      Some session
  | P.Dump { session } -> session
  | P.Ping | P.Stats | P.Metrics | P.Sessions | P.Health | P.Checkpoint | P.Shutdown -> None

(* The ops whose success changes session state — the ones the journal must
   capture and the idempotency cache must guard. *)
let mutating = function
  | P.Load _ | P.Add_task _ | P.Remove_task _ | P.Kill_proc _ | P.Resolve _ | P.Solve _
  | P.Restore _ | P.Stream_end _ ->
      true
  (* stream_begin/stream_chunk only touch the transient spool, never a
     resident session — journaling them would be a lie (the spool file does
     not survive a restart, so a replayed stream_end would find nothing). *)
  | P.Ping | P.Stats | P.Metrics | P.Sessions | P.Snapshot _ | P.Health | P.Dump _
  | P.Checkpoint | P.Shutdown | P.Stream_begin _ | P.Stream_chunk _ ->
      false

(* The Prometheus exposition: everything Obs holds (counters, phase and
   per-op latency histograms, span totals) plus live engine gauges.  The
   engine is single-threaded across requests, so the render happens between
   requests and reads a consistent snapshot of the registry. *)
let prom t =
  let session_gauges =
    Hashtbl.fold
      (fun sid s acc ->
        let l = [ ("session", sid) ] in
        ("server.session.tasks", l, float_of_int (Session.n_tasks s))
        :: ("server.session.procs", l, float_of_int (Session.n_procs s))
        :: ("server.session.dead_procs", l, float_of_int (Session.dead_procs s))
        :: ("server.session.unplaced", l, float_of_int (List.length (Session.unplaced s)))
        :: ("server.session.makespan", l, Session.makespan s)
        :: acc)
      t.registry []
  in
  let gauges =
    [
      ("server.sessions", [], float_of_int (sessions t));
      ("server.spools", [], float_of_int (Hashtbl.length t.spools));
      ("stream.peak_state_words", [], float_of_int (Stream.Kr.peak_state_words ()));
      ("server.pending", [], float_of_int (pending t));
      ("server.max_pending", [], float_of_int t.max_pending);
      ("server.uptime_seconds", [], uptime_s t);
      ("server.requests_posted", [], float_of_int t.posted);
      ("server.requests_served", [], float_of_int t.served);
    ]
    @ (match t.anomaly with
      | None -> []
      | Some a -> [ ("server.anomaly_firings", [], float_of_int (Obs.Anomaly.firings a)) ])
    @ (match t.persist with
      | None -> []
      | Some _ -> [ ("server.checkpoints", [], float_of_int t.checkpoints) ])
    @ (match t.recovered with
      | None -> []
      | Some r ->
          [
            ("server.recovery.torn_bytes", [], float_of_int r.rec_torn_bytes);
            ("server.recovery.sessions", [], float_of_int r.rec_sessions);
            ("server.recovery.replay_us", [], r.rec_replay_us);
          ])
    @ session_gauges
  in
  Obs.Prom.render ~gauges ()

(* ---------- durability: idempotency cache, journaling, checkpoints ---------- *)

let idem_lookup t = function
  | Some key -> Hashtbl.find_opt t.idem_cache key
  | None -> None

let seed_idem t key reply =
  if not (Hashtbl.mem t.idem_cache key) then begin
    Queue.push key t.idem_order;
    if Queue.length t.idem_order > t.idem_cap then
      Hashtbl.remove t.idem_cache (Queue.pop t.idem_order)
  end;
  Hashtbl.replace t.idem_cache key reply

let reply_is_ok line =
  match J.of_string line with
  | j -> J.member "ok" j = Some (J.Bool true)
  | exception Failure _ -> false

let reply_flag line name =
  match J.of_string line with
  | j -> J.member name j = Some (J.Bool true)
  | exception Failure _ -> false

(* Journal a mutation as the *resulting* session state rather than the raw
   request when replay could diverge: [load] (a `path` source may change
   under us), adopted [resolve] and [solve] (time-budgeted, so the search
   is not replay-deterministic).  Everything else replays its raw line. *)
let state_record t session =
  match Hashtbl.find_opt t.registry session with
  | None -> None
  | Some s ->
      Some
        (J.to_string
           (J.Obj
              [
                ("op", J.Str "restore");
                ("session", J.Str session);
                ("state", Session.snapshot s);
              ]))

(* Record one successful single (non-batched) mutation: seed the idem
   cache and, with a persist dir, append the journal record — before the
   caller flushes the reply. *)
let journal_single t (parsed : P.parsed) ~raw ~reply =
  if (not t.replaying) && mutating parsed.P.req && reply_is_ok reply then begin
    (match parsed.P.idem with None -> () | Some k -> seed_idem t k reply) ;
    match t.persist with
    | None -> ()
    | Some p ->
        let cached = match parsed.P.idem with None -> [] | Some k -> [ (k, reply) ] in
        let log lines = Persist.log p ~lines ~cached in
        let log_state session =
          match state_record t session with None -> () | Some line -> log [ line ]
        in
        (match parsed.P.req with
        | P.Load { session; _ } | P.Solve { session } -> log_state session
        | P.Resolve { session; _ } ->
            (* An unadopted resolve left the incumbent untouched: nothing
               to journal (the idem cache entry above still suppresses an
               in-process retry). *)
            if reply_flag reply "replaced" then log_state session
        | P.Remove_task _ | P.Kill_proc _ | P.Restore _ -> log [ raw ]
        (* A stream_end that fell back to the in-core tier created a
           resident session from a spool file that is already gone: the
           raw line can never replay, so journal the resulting state.  A
           streamed-tier reply left no session — nothing to journal. *)
        | P.Stream_end { session; _ } -> if reply_flag reply "resident" then log_state session
        | _ -> ())
  end

(* Record one successful add_task batch as a single journal group, so
   replay reproduces the exact coalescing (batch boundaries change how
   Repair.place groups the delta). *)
let journal_batch t ~raws ~idems ~replies =
  if (not t.replaying) && (match replies with r :: _ -> reply_is_ok r | [] -> false) then begin
    let cached =
      List.filter_map
        (fun (idem, reply) ->
          match idem with
          | None -> None
          | Some k ->
              seed_idem t k reply;
              Some (k, reply))
        (List.combine idems replies)
    in
    match t.persist with None -> () | Some p -> Persist.log p ~lines:raws ~cached
  end

let do_checkpoint t =
  match t.persist with
  | None -> Error "no persist dir configured (serve --persist-dir)"
  | Some p -> (
      let sessions =
        Hashtbl.fold (fun sid s acc -> (sid, s) :: acc) t.registry []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.map (fun (sid, s) -> (sid, Session.snapshot s))
      in
      match Persist.checkpoint p ~sessions with
      | Ok name ->
          t.checkpoints <- t.checkpoints + 1;
          Ok name
      | Error msg ->
          Obs.Events.emit ~level:Obs.Events.Warn "server.checkpoint.failed"
            [ Obs.Events.str "error" msg ];
          Error msg)

(* ---------- diagnostic bundles ---------- *)

(* The instance to embed: an explicit session when the trigger names one,
   otherwise the only resident session (ambiguity means none — a bundle
   must never guess which tenant's data to copy out). *)
let bundle_session t = function
  | Some sid -> Hashtbl.find_opt t.registry sid |> Option.map (fun s -> (sid, s))
  | None -> (
      match Hashtbl.fold (fun sid s acc -> (sid, s) :: acc) t.registry [] with
      | [ one ] -> Some one
      | _ -> None)

(* Turn a firing (or a manual dump) into a bundle directory.  Total: bundle
   I/O failure is reported as a warn event, never a dead request. *)
let write_bundle t ~trigger ?rule ?(detail = []) ?raw ?session () =
  match t.bundle_dir with
  | None -> Error "no bundle directory configured (serve --bundle-dir)"
  | Some dir -> (
      let request_json =
        J.to_string
          (J.Obj
             ((match raw with None -> [] | Some line -> [ ("raw", J.Str line) ])
             @ (match session with None -> [] | Some s -> [ ("session", J.Str s) ])
             @ [ ("trigger", J.Str trigger); ("detail", J.Obj detail) ]))
      in
      let instance_files =
        match bundle_session t session with
        | None -> []
        | Some (sid, s) ->
            [
              ("instance.hg", Session.instance_text s);
              ( "session.json",
                J.to_string (J.Obj [ ("id", J.Str sid); ("state", Session.snapshot s) ]) );
            ]
      in
      match
        Obs.Recorder.write_bundle ~dir ~trigger ?rule ~detail ~prom:(prom t)
          ~extra:(("request.json", request_json) :: instance_files)
          ~version:t.version ()
      with
      | Ok bundle ->
          t.bundles <- t.bundles + 1;
          t.last_bundle <- Some bundle;
          Ok bundle
      | Error msg ->
          Obs.Events.emit ~level:Obs.Events.Warn "bundle.failed"
            [ Obs.Events.str "trigger" trigger; Obs.Events.str "error" msg ];
          Error msg)

let bundle_of_firing t (f : Obs.Anomaly.firing) ?raw ?session () =
  ignore
    (write_bundle t
       ~trigger:(Obs.Anomaly.rule_kind f.Obs.Anomaly.f_rule)
       ~rule:(Obs.Anomaly.rule_to_string f.Obs.Anomaly.f_rule)
       ~detail:f.Obs.Anomaly.f_detail ?raw ?session ())

let maybe_bundle t firing ?raw ?session () =
  match firing with
  | None -> ()
  | Some f -> bundle_of_firing t f ?raw ?session ()

(* ---------- health ---------- *)

(* Cheap and always-on: every field is an in-memory read (counters, queue
   length, watchdog atomics) — no solver work, no I/O, no rendering. *)
let health_fields t =
  let now = Obs.Span.now_ns () in
  let wd = Option.map Obs.Anomaly.watchdog t.anomaly in
  let stuck =
    match (t.anomaly, wd) with
    | Some a, Some w -> (
        w.Obs.Anomaly.w_inflight
        &&
        match Obs.Anomaly.stall_ms a with
        | Some ms -> w.Obs.Anomaly.w_silent_ms >= ms
        | None -> false)
    | _ -> false
  in
  let recent_firing =
    match t.anomaly with
    | None -> None
    | Some a -> (
        match Obs.Anomaly.last_firing a with
        | Some (rule, ts) ->
            let age_s = Obs.Span.ns_to_s (Int64.sub now ts) in
            if age_s <= 60.0 then Some (rule, age_s) else None
        | None -> None)
  in
  let queue_pressure = pending t * 5 >= t.max_pending * 4 in
  let status =
    if stuck then "stuck"
    else if queue_pressure || recent_firing <> None then "degraded"
    else "ready"
  in
  [
    ("status", J.Str status);
    ("uptime_s", J.Num (uptime_s t));
    ("pending", int_j (pending t));
    ("max_pending", int_j t.max_pending);
    ("sessions", int_j (sessions t));
    ("posted", int_j t.posted);
    ("served", int_j t.served);
    ("bundles", int_j t.bundles);
  ]
  @ (match t.last_bundle with None -> [] | Some dir -> [ ("last_bundle", J.Str dir) ])
  @ (match t.persist with
    | None -> []
    | Some p ->
        [
          ( "persist",
            J.Obj
              ([
                 ("epoch", int_j (Persist.epoch p));
                 ("journal_records", int_j (Persist.journal_records p));
                 ("checkpoints", int_j t.checkpoints);
               ]
              @
              match t.recovered with
              | None -> []
              | Some r ->
                  [
                    ("recovered_records", int_j r.rec_records);
                    ("recovered_sessions", int_j r.rec_sessions);
                    ("torn_bytes", int_j r.rec_torn_bytes);
                  ]) );
        ])
  @ (match wd with
    | None -> []
    | Some w ->
        [
          ( "watchdog",
            J.Obj
              ([ ("inflight", J.Bool w.Obs.Anomaly.w_inflight) ]
              @ (match w.Obs.Anomaly.w_op with None -> [] | Some op -> [ ("op", J.Str op) ])
              @ [
                  ("silent_ms", J.Num w.Obs.Anomaly.w_silent_ms);
                  ("beats", int_j w.Obs.Anomaly.w_beats);
                ]) );
        ])
  @ (match t.anomaly with
    | None -> []
    | Some a ->
        [
          ( "anomaly",
            J.Obj
              ([
                 ( "rules",
                   J.List
                     (List.map
                        (fun r -> J.Str (Obs.Anomaly.rule_to_string r))
                        (Obs.Anomaly.rules a)) );
                 ("firings", int_j (Obs.Anomaly.firings a));
               ]
              @
              match recent_firing with
              | None -> []
              | Some (rule, age_s) ->
                  [ ("last_rule", J.Str rule); ("last_age_s", J.Num age_s) ]) );
        ])
  @
  match Obs.Recorder.config () with
  | None -> [ ("recorder", J.Obj [ ("enabled", J.Bool false) ]) ]
  | Some cfg ->
      [
        ( "recorder",
          J.Obj
            [
              ("enabled", J.Bool true);
              ("window_s", J.Num cfg.Obs.Recorder.window_s);
              ("snapshots", int_j (List.length (Obs.Recorder.snapshots ())));
            ] );
      ]

(* One request, already parsed (add_task goes through [handle_adds] so the
   batch path is the only path).  Total: internal failures become an
   [internal] error reply, never a dead server. *)
let handle_one t ({ req; id; _ } : P.parsed) =
  let op = op_name req in
  Obs.Metrics.incr c_requests;
  Obs.Span.timed ("server." ^ op) (fun () ->
      try
        match req with
        | P.Ping ->
            event op None;
            P.ok_reply ?id ~op [ ("pong", J.Bool true) ]
        | P.Load { session; source } -> (
            event op (Some session);
            match Result.bind (load_source source) graph_of_text with
            | Error msg -> P.error_reply ?id ~code:P.Bad_request msg
            | Ok h ->
                let s, r = Session.of_graph ~id:session h in
                Hashtbl.replace t.registry session s;
                P.ok_reply ?id ~op
                  ([
                     ("session", J.Str session);
                     ("tasks", int_j (Session.n_tasks s));
                     ("procs", int_j (Session.n_procs s));
                     ("makespan", J.Num (Session.makespan s));
                     ("lower_bound", J.Num r.Semimatch.Repair.lower_bound);
                   ]
                  @ repair_fields r))
        | P.Add_task _ -> assert false (* routed through handle_adds *)
        | P.Remove_task { session; task } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                match Session.remove_task s task with
                | Error msg -> P.error_reply ?id ~code:P.Bad_request msg
                | Ok makespan ->
                    P.ok_reply ?id ~op [ ("task", int_j task); ("makespan", J.Num makespan) ])
        | P.Kill_proc { session; proc } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                match Session.kill_proc s proc with
                | Error msg -> P.error_reply ?id ~code:P.Bad_request msg
                | Ok r ->
                    P.ok_reply ?id ~op
                      ([
                         ("proc", int_j proc);
                         ("affected", int_j (List.length r.Semimatch.Repair.affected));
                         ("makespan", J.Num (Session.makespan s));
                       ]
                      @ repair_fields r))
        | P.Resolve { session; budget_ms } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                let d, replaced = Session.resolve ~jobs:t.jobs ~budget_s:(budget_ms /. 1000.0) s in
                if replaced then Obs.Metrics.incr c_adopted;
                P.ok_reply ?id ~op
                  [
                    ("tier", J.Str (Semimatch.Deadline.tier_name d.Semimatch.Deadline.d_tier));
                    ("degraded", J.Bool d.Semimatch.Deadline.d_degraded);
                    ("replaced", J.Bool replaced);
                    ("makespan", J.Num (Session.makespan s));
                    ( "lower_bound",
                      J.Num d.Semimatch.Deadline.d_repair.Semimatch.Repair.lower_bound );
                    ("elapsed_ms", J.Num (1000.0 *. d.Semimatch.Deadline.d_elapsed_s));
                  ])
        | P.Solve { session } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                let d = Session.solve ~jobs:t.jobs s in
                P.ok_reply ?id ~op
                  [
                    ("tier", J.Str (Semimatch.Deadline.tier_name d.Semimatch.Deadline.d_tier));
                    ("makespan", J.Num (Session.makespan s));
                    ( "lower_bound",
                      J.Num d.Semimatch.Deadline.d_repair.Semimatch.Repair.lower_bound );
                    ( "infeasible",
                      int_j
                        (List.length d.Semimatch.Deadline.d_repair.Semimatch.Repair.infeasible) );
                    ("elapsed_ms", J.Num (1000.0 *. d.Semimatch.Deadline.d_elapsed_s));
                  ])
        | P.Stats ->
            event op None;
            (* The basics (uptime, version, request totals, sessions,
               pending) come from the engine's own state and are always
               live; only the [counters] object depends on Obs being
               enabled (empty otherwise). *)
            P.ok_reply ?id ~op
              [
                ("uptime_s", J.Num (uptime_s t));
                ("version", J.Str t.version);
                ("requests", int_j t.posted);
                ("served", int_j t.served);
                ("sessions", int_j (sessions t));
                ("pending", int_j (pending t));
                ("counters", J.Obj (if Obs.is_enabled () then non_zero_counters () else []));
              ]
        | P.Metrics ->
            event op None;
            P.ok_reply ?id ~op [ ("exposition", J.Str (prom t)) ]
        | P.Sessions ->
            event op None;
            let ids =
              List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.registry [])
            in
            P.ok_reply ?id ~op [ ("sessions", J.List (List.map (fun s -> J.Str s) ids)) ]
        | P.Snapshot { session } ->
            event op (Some session);
            find_session t ?id session (fun s ->
                P.ok_reply ?id ~op [ ("state", Session.snapshot s) ])
        | P.Restore { session; state } -> (
            event op (Some session);
            match Session.restore ~id:session state with
            | Error msg -> P.error_reply ?id ~code:P.Bad_request msg
            | Ok s ->
                Hashtbl.replace t.registry session s;
                P.ok_reply ?id ~op
                  [
                    ("session", J.Str session);
                    ("tasks", int_j (Session.n_tasks s));
                    ("procs", int_j (Session.n_procs s));
                    ("makespan", J.Num (Session.makespan s));
                  ])
        | P.Health ->
            (* No [event op]: a tight readiness probe must not flood the
               event ring the recorder is trying to keep useful. *)
            P.ok_reply ?id ~op (health_fields t)
        | P.Dump { session } -> (
            event op session;
            match session with
            | Some sid when not (Hashtbl.mem t.registry sid) ->
                P.error_reply ?id ~code:P.Unknown_session
                  (Printf.sprintf "unknown session %S" sid)
            | _ -> (
                match write_bundle t ~trigger:"manual" ?session () with
                | Ok dir -> P.ok_reply ?id ~op [ ("dir", J.Str dir); ("bundles", int_j t.bundles) ]
                | Error msg -> P.error_reply ?id ~code:P.Bad_request msg))
        | P.Checkpoint -> (
            event op None;
            match do_checkpoint t with
            | Ok dir ->
                P.ok_reply ?id ~op
                  [
                    ("dir", J.Str dir);
                    ("sessions", int_j (sessions t));
                    ("checkpoints", int_j t.checkpoints);
                  ]
            | Error msg -> P.error_reply ?id ~code:P.Bad_request msg)
        | P.Shutdown ->
            event op None;
            t.shutdown <- true;
            P.ok_reply ?id ~op [ ("shutting_down", J.Bool true) ]
        | P.Stream_begin { session; n1; n2 } -> (
            event op (Some session);
            (* A re-begin replaces any half-built spool for the session —
               the retry story for a client that lost its connection
               mid-upload (spools are transient, never journaled). *)
            drop_spool t session;
            let path = Filename.temp_file "semimatch-stream-" ".sms" in
            match Hyper.Stream_io.create_writer ~path ~n1 ~n2 () with
            | w ->
                Hashtbl.replace t.spools session { sp_writer = w; sp_path = path };
                P.ok_reply ?id ~op [ ("session", J.Str session); ("spooling", J.Bool true) ]
            | exception Invalid_argument msg ->
                (try Sys.remove path with Sys_error _ -> ());
                P.error_reply ?id ~code:P.Bad_request msg)
        | P.Stream_chunk { session; edges } -> (
            event op (Some session);
            match Hashtbl.find_opt t.spools session with
            | None ->
                P.error_reply ?id ~code:P.Bad_request
                  (Printf.sprintf "no open stream upload for session %S (send stream_begin first)"
                     session)
            | Some sp -> (
                match
                  List.iter
                    (fun (task, (c : P.config)) ->
                      Hyper.Stream_io.add sp.sp_writer ~task ~procs:c.P.procs ~weight:c.P.weight)
                    edges
                with
                | () ->
                    P.ok_reply ?id ~op
                      [
                        ("session", J.Str session);
                        ("records", int_j (Hyper.Stream_io.writer_records sp.sp_writer));
                      ]
                | exception Invalid_argument msg ->
                    (* The spool is poisoned mid-chunk: drop it so the
                       client restarts cleanly instead of sealing a
                       half-applied batch. *)
                    drop_spool t session;
                    P.error_reply ?id ~code:P.Bad_request msg))
        | P.Stream_end { session; threshold_mb; solver } -> (
            event op (Some session);
            match Hashtbl.find_opt t.spools session with
            | None ->
                P.error_reply ?id ~code:P.Bad_request
                  (Printf.sprintf "no open stream upload for session %S" session)
            | Some sp -> (
                Hashtbl.remove t.spools session;
                Hyper.Stream_io.close_writer sp.sp_writer;
                let cleanup () = try Sys.remove sp.sp_path with Sys_error _ -> () in
                let bad msg =
                  cleanup ();
                  P.error_reply ?id ~code:P.Bad_request msg
                in
                match Option.map Stream.Ingest.stream_solver_of_string solver with
                | Some None ->
                    bad
                      (Printf.sprintf "unknown stream solver %S (auto | one-pass | few-pass)"
                         (Option.value solver ~default:""))
                | (None | Some (Some _)) as picked -> (
                    let stream_solver = Option.join picked in
                    let threshold_words =
                      Option.map (fun mb -> mb * (1024 * 1024 / (Sys.word_size / 8))) threshold_mb
                    in
                    match
                      Stream.Ingest.solve ~jobs:t.jobs ?threshold_words ?stream_solver sp.sp_path
                    with
                    | exception Failure msg -> bad msg
                    | exception Invalid_argument msg -> bad ("infeasible stream: " ^ msg)
                    | o -> (
                        cleanup ();
                        let base =
                          [
                            ("session", J.Str session);
                            ("tier", J.Str (Stream.Ingest.tier_name o.Stream.Ingest.tier));
                            ("makespan", J.Num o.Stream.Ingest.makespan);
                            ("lower_bound", J.Num o.Stream.Ingest.lower_bound);
                            ("guarantee", J.Str o.Stream.Ingest.guarantee);
                            ("passes", int_j o.Stream.Ingest.passes);
                            ("edges", int_j o.Stream.Ingest.edges);
                          ]
                          @
                          if Float.is_finite o.Stream.Ingest.factor then
                            [ ("factor", J.Num o.Stream.Ingest.factor) ]
                          else []
                        in
                        match o.Stream.Ingest.graph with
                        | Some h ->
                            (* In-core fallback: the instance becomes a
                               resident session exactly as [load] would
                               make it (greedy incumbent; the client can
                               [solve]/[resolve] from here on). *)
                            let s, r = Session.of_graph ~id:session h in
                            Hashtbl.replace t.registry session s;
                            P.ok_reply ?id ~op
                              (base
                              @ [
                                  ("resident", J.Bool true);
                                  ("tasks", int_j (Session.n_tasks s));
                                  ("procs", int_j (Session.n_procs s));
                                  ("session_makespan", J.Num (Session.makespan s));
                                ]
                              @ repair_fields r)
                        | None -> P.ok_reply ?id ~op (base @ [ ("resident", J.Bool false) ])))))
      with exn ->
        Obs.Metrics.incr c_errors;
        P.error_reply ?id ~code:P.Internal (Printexc.to_string exn))

(* One member of a coalesced add_task batch: the parsed configs plus
   everything the drain loop needs afterwards — the raw line (journaling),
   the idem key (reply cache), the reply callback and timestamps. *)
type add_member = {
  m_configs : P.config list;
  m_id : J.t option;
  m_idem : string option;
  m_raw : string;
  m_reply : string -> unit;
  m_posted_ns : int64;
}

(* The batch path: [n] consecutive add_task requests for one session become
   one graph rebuild and one Repair.place pass; every request still gets
   its own reply, tagged with the batch size it rode in.  Pure compute —
   the caller sends the replies so it can time the phases per request. *)
let handle_adds t session batch =
  let n = List.length batch in
  Obs.Metrics.add c_requests n;
  if n > 1 then Obs.Metrics.add c_batched n;
  event "add_task" (Some session);
  Obs.Span.timed "server.add_task" (fun () ->
      try
        match Hashtbl.find_opt t.registry session with
        | None ->
            List.map
              (fun m ->
                P.error_reply ?id:m.m_id ~code:P.Unknown_session
                  (Printf.sprintf "unknown session %S" session))
              batch
        | Some s -> (
            match Session.add_tasks s (List.map (fun m -> m.m_configs) batch) with
            | Error msg ->
                List.map (fun m -> P.error_reply ?id:m.m_id ~code:P.Bad_request msg) batch
            | Ok (tids, r) ->
                let makespan = Session.makespan s in
                List.map2
                  (fun m tid ->
                    P.ok_reply ?id:m.m_id ~op:"add_task"
                      ([
                         ("tid", int_j tid);
                         ("batched", int_j n);
                         ("makespan", J.Num makespan);
                       ]
                      @ repair_fields r))
                  batch tids)
      with exn ->
        Obs.Metrics.incr c_errors;
        List.map
          (fun m -> P.error_reply ?id:m.m_id ~code:P.Internal (Printexc.to_string exn))
          batch)

let us_between later earlier = Int64.to_float (Int64.sub later earlier) /. 1e3

(* End-of-request accounting: phase histograms (queue wait and reply per
   request; the handler phase is observed once per batch by the caller),
   per-op end-to-end latency, the always-on served total, and the sampled
   slow-request log. *)
let finish t op ?raw ?session ~posted_ns ~done_ns ~replied_ns () =
  Obs.Metrics.observe h_reply (us_between replied_ns done_ns);
  let total_us = us_between replied_ns posted_ns in
  Obs.Metrics.observe (latency_hist op) total_us;
  t.served <- t.served + 1;
  let total_ms = total_us /. 1000.0 in
  if t.slow_ms > 0.0 && total_ms >= t.slow_ms then begin
    t.slow_seen <- t.slow_seen + 1;
    if (t.slow_seen - 1) mod t.slow_every = 0 then
      Obs.Events.emit ~level:Obs.Events.Warn "server.slow_request"
        [
          Obs.Events.str "op" op;
          Obs.Events.num "ms" total_ms;
          Obs.Events.num "threshold_ms" t.slow_ms;
          Obs.Events.int "nth" t.slow_seen;
        ]
  end;
  match t.anomaly with
  | None -> ()
  | Some a -> maybe_bundle t (Obs.Anomaly.observe_request a ~op ~ms:total_ms) ?raw ?session ()

let post t ~reply line =
  t.posted <- t.posted + 1;
  if Queue.length t.queue >= t.max_pending then begin
    Obs.Metrics.incr c_busy;
    (match t.anomaly with
    | None -> ()
    | Some a -> maybe_bundle t (Obs.Anomaly.observe_busy a) ~raw:line ());
    (* Best-effort id recovery so the busy reply can still be matched. *)
    let id =
      match P.parse ~max_frame:t.max_frame line with
      | Ok { id; _ } | Error (_, _, id) -> id
    in
    reply
      (P.error_reply ?id ~code:P.Busy
         (Printf.sprintf "pending-request queue full (%d); retry later" t.max_pending))
  end
  else begin
    let t0 = Obs.Span.now_ns () in
    let parsed = P.parse ~max_frame:t.max_frame line in
    let t1 = Obs.Span.now_ns () in
    Obs.Metrics.observe h_parse (us_between t1 t0);
    Queue.push { parsed; raw = line; reply; posted_ns = t1 } t.queue;
    match t.anomaly with
    | None -> ()
    | Some a -> maybe_bundle t (Obs.Anomaly.observe_queue a ~pending:(Queue.length t.queue)) ~raw:line ()
  end

(* Watchdog bracketing around the handler phase: the in-flight request is
   captured before the handler runs (so a stuck solve can be bundled from
   the watchdog domain), the test-only [before_solve] stall hook runs
   inside the bracket, and [solve_end]'s post-hoc gap check fires after —
   then anything beyond a Resolve budget is checked too. *)
let solve_bracket t ~op ?session ~raw f =
  (match t.anomaly with
  | None -> ()
  | Some a -> Obs.Anomaly.solve_begin a ~op ?session ~request:raw ());
  (match t.before_solve with None -> () | Some hook -> hook raw);
  let result = f () in
  (match t.anomaly with
  | None -> ()
  | Some a -> maybe_bundle t (Obs.Anomaly.solve_end a) ~raw ?session ());
  result

let observe_budget t ~op ~budget_ms ~elapsed_us ~raw ?session () =
  match t.anomaly with
  | None -> ()
  | Some a ->
      maybe_bundle t
        (Obs.Anomaly.observe_solve a ~op ~budget_ms ~elapsed_ms:(elapsed_us /. 1000.0))
        ~raw ?session ()

let drain t =
  while not (Queue.is_empty t.queue) do
    let item = Queue.pop t.queue in
    let start_ns = Obs.Span.now_ns () in
    Obs.Metrics.observe h_queue (us_between start_ns item.posted_ns);
    match item.parsed with
    | Error (code, msg, id) ->
        Obs.Metrics.incr c_errors;
        let line = P.error_reply ?id ~code msg in
        let done_ns = Obs.Span.now_ns () in
        item.reply line;
        finish t "invalid" ~raw:item.raw ~posted_ns:item.posted_ns ~done_ns
          ~replied_ns:(Obs.Span.now_ns ()) ()
    (* A mutation whose idempotency id is already cached: answer with the
       recorded reply verbatim, apply nothing.  This is what makes a
       client's retry-after-reconnect safe across a daemon restart (the
       journal carries the cache entries). *)
    | Ok { req; idem; _ } when mutating req && idem_lookup t idem <> None ->
        let cached = Option.get (idem_lookup t idem) in
        Obs.Metrics.incr c_idem_hits;
        let done_ns = Obs.Span.now_ns () in
        item.reply cached;
        finish t (op_name req) ~raw:item.raw ?session:(session_of_req req)
          ~posted_ns:item.posted_ns ~done_ns ~replied_ns:(Obs.Span.now_ns ()) ()
    | Ok { req = P.Add_task { session; configs }; id; idem } ->
        let member configs id idem raw reply posted_ns =
          { m_configs = configs; m_id = id; m_idem = idem; m_raw = raw; m_reply = reply;
            m_posted_ns = posted_ns }
        in
        let batch = ref [ member configs id idem item.raw item.reply item.posted_ns ] in
        let continue = ref true in
        while !continue do
          match Queue.peek_opt t.queue with
          | Some
              {
                parsed = Ok { req = P.Add_task { session = s2; configs = c2 }; id = id2; idem = idem2 };
                raw = raw2;
                reply;
                posted_ns;
              }
            (* A cached-idem member must not ride a batch (its recorded
               reply would land out of order): leave it as the next
               leading item, where the cache arm above serves it. *)
            when s2 = session && idem_lookup t idem2 = None ->
              ignore (Queue.pop t.queue);
              Obs.Metrics.observe h_queue (us_between start_ns posted_ns);
              batch := member c2 id2 idem2 raw2 reply posted_ns :: !batch
          | _ -> continue := false
        done;
        let batch = List.rev !batch in
        let replies =
          solve_bracket t ~op:"add_task" ~session ~raw:item.raw (fun () ->
              handle_adds t session batch)
        in
        let done_ns = Obs.Span.now_ns () in
        Obs.Metrics.observe h_solve (us_between done_ns start_ns);
        (* Journal (one record, preserving the batch boundary) before any
           reply is flushed. *)
        journal_batch t
          ~raws:(List.map (fun m -> m.m_raw) batch)
          ~idems:(List.map (fun m -> m.m_idem) batch)
          ~replies;
        List.iter2
          (fun m line ->
            m.m_reply line;
            finish t "add_task" ~raw:item.raw ~session ~posted_ns:m.m_posted_ns ~done_ns
              ~replied_ns:(Obs.Span.now_ns ()) ())
          batch replies
    | Ok parsed ->
        let op = op_name parsed.P.req in
        let session = session_of_req parsed.P.req in
        let line =
          match parsed.P.req with
          (* The health probe snapshots the watchdog — bracketing it would
             make every probe report itself as the in-flight solve. *)
          | P.Health -> handle_one t parsed
          | _ -> solve_bracket t ~op ?session ~raw:item.raw (fun () -> handle_one t parsed)
        in
        let done_ns = Obs.Span.now_ns () in
        let elapsed_us = us_between done_ns start_ns in
        Obs.Metrics.observe h_solve elapsed_us;
        (match parsed.P.req with
        | P.Resolve { budget_ms; _ } ->
            observe_budget t ~op ~budget_ms ~elapsed_us ~raw:item.raw ?session ()
        | _ -> ());
        (* Write-ahead: the journal record is durable before the reply is
           flushed, so an acked mutation is never lost to a crash. *)
        journal_single t parsed ~raw:item.raw ~reply:line;
        item.reply line;
        finish t op ~raw:item.raw ?session ~posted_ns:item.posted_ns ~done_ns
          ~replied_ns:(Obs.Span.now_ns ()) ()
  done

(* ---------- crash recovery ---------- *)

(* Feed journaled request lines through the normal drain path, with replies
   discarded and re-journaling suppressed.  The replay parser lifts the
   frame cap (the record was already admitted once) and pushes straight
   onto the queue — recovery must not be subject to admission control. *)
let replay_lines t lines =
  List.iter
    (fun line ->
      t.posted <- t.posted + 1;
      Queue.push
        { parsed = P.parse ~max_frame:max_int line; raw = line; reply = ignore;
          posted_ns = Obs.Span.now_ns () }
        t.queue)
    lines;
  drain t

let recover t (r : Persist.recovery) =
  let t0 = Obs.Span.now_ns () in
  t.replaying <- true;
  let failures = ref 0 in
  let fail what detail =
    incr failures;
    Obs.Events.emit ~level:Obs.Events.Warn "server.recovery.failed"
      [ Obs.Events.str "what" what; Obs.Events.str "detail" detail ]
  in
  (* Checkpoint sessions restore directly (no request round-trip: a
     snapshot is its own proof of shape). *)
  List.iter
    (fun (sid, state) ->
      match Session.restore ~id:sid state with
      | Ok s -> Hashtbl.replace t.registry sid s
      | Error msg -> fail ("checkpoint session " ^ sid) msg)
    r.Persist.r_sessions;
  (* Journal groups replay through the normal drain path, preserving the
     original add_task batch boundaries: each group is pushed whole, then
     drained, so coalescing regroups exactly the original batch. *)
  let records = ref 0 in
  List.iter
    (fun (g : Persist.group) ->
      records := !records + List.length g.Persist.g_lines;
      replay_lines t g.Persist.g_lines;
      List.iter (fun (k, reply) -> seed_idem t k reply) g.Persist.g_cached)
    r.Persist.r_groups;
  (* Feasibility recompute on everything that came back. *)
  Hashtbl.iter
    (fun sid s ->
      match Session.verify s with
      | Ok () -> ()
      | Error msg ->
          incr failures;
          Obs.Events.emit ~level:Obs.Events.Warn "server.recovery.infeasible"
            [ Obs.Events.str "session" sid; Obs.Events.str "error" msg ])
    t.registry;
  t.replaying <- false;
  let info =
    {
      rec_records = !records;
      rec_torn_bytes = r.Persist.r_torn_bytes;
      rec_sessions = sessions t;
      rec_checkpoint = r.Persist.r_checkpoint;
      rec_replay_us = us_between (Obs.Span.now_ns ()) t0;
      rec_failures = !failures;
    }
  in
  t.recovered <- Some info;
  Obs.Metrics.add c_recovery_records !records;
  Obs.Events.emit "server.recovered"
    [
      Obs.Events.int "records" info.rec_records;
      Obs.Events.int "torn_bytes" info.rec_torn_bytes;
      Obs.Events.int "sessions" info.rec_sessions;
      Obs.Events.str "checkpoint" (Option.value info.rec_checkpoint ~default:"(none)");
      Obs.Events.num "replay_us" info.rec_replay_us;
      Obs.Events.int "failures" info.rec_failures;
    ];
  info

let recovered t = t.recovered

(* Resident sessions in deterministic (sorted) order — what the chaos
   harness and [doctor] compare snapshots over. *)
let resident t =
  Hashtbl.fold (fun sid s acc -> (sid, s) :: acc) t.registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let checkpoints_written t = t.checkpoints
let checkpoint = do_checkpoint

(* Final checkpoint (best-effort: shutdown must not hang on a full disk)
   then release the journal fd.  After this the persist dir is exactly
   what a restart recovers from. *)
let close_persist t =
  match t.persist with
  | None -> ()
  | Some p ->
      ignore (do_checkpoint t : (string, string) result);
      Persist.close p

(* Host-loop pulse between requests: recorder snapshots, the periodic
   anomaly poll (heap growth), the journal's interval fsync, and the
   checkpoint cadence.  The daemon calls this every select round. *)
let tick t =
  ignore (Obs.Recorder.tick ~prom:(fun () -> prom t) ());
  (match t.persist with
  | None -> ()
  | Some p ->
      Persist.tick p;
      if t.checkpoint_secs > 0.0 then begin
        let now = Obs.Span.now_ns () in
        if Obs.Span.ns_to_s (Int64.sub now t.last_ckpt_ns) >= t.checkpoint_secs then begin
          t.last_ckpt_ns <- now;
          ignore (do_checkpoint t : (string, string) result)
        end
      end);
  match t.anomaly with
  | None -> ()
  | Some a -> (
      match Obs.Anomaly.poll a with None -> () | Some f -> bundle_of_firing t f ())

let bundles_written t = t.bundles
let last_bundle t = t.last_bundle
