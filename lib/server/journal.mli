(** Write-ahead journal: an append-only file of length-prefixed,
    CRC32-checksummed records.

    Record framing is [len(4 bytes LE)][crc32(4 bytes LE)][payload], where
    the checksum covers the payload only.  A crash can therefore leave at
    most a torn tail — a record whose length prefix, bytes or checksum are
    incomplete — and {!scan} stops at the first invalid record, reporting
    the clean prefix and how many trailing bytes must be truncated.  A
    record never spans files and is capped at 64 MiB (a larger length
    prefix is treated as corruption, not an allocation request).

    Durability is a policy, not a promise: [Always] fsyncs after every
    append (safe against power loss, slowest), [Interval s] fsyncs at most
    every [s] seconds (bounded loss window), [Never] leaves flushing to the
    OS.  A [kill -9] loses no acknowledged writes under any policy — the
    data is in the page cache — so the policies differ only for whole-box
    failures. *)

type policy = Always | Interval of float | Never

val policy_of_string : string -> policy
(** Parse ["always"], ["never"] or ["interval:MS"] (milliseconds, > 0).
    Raises [Failure] otherwise. *)

val policy_to_string : policy -> string

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3, reflected, as in zip/png): [crc32 "123456789" =
    0xCBF43926l]. *)

(* ---------- writing ---------- *)

type writer

val open_writer : ?policy:policy -> string -> writer
(** Open (creating if needed) for appending.  Default policy
    [Interval 0.1].  Raises [Unix.Unix_error] on I/O failure. *)

val append : writer -> string -> unit
(** Append one record and apply the fsync policy.  Raises
    [Invalid_argument] on a payload over the 64 MiB record cap. *)

val sync : writer -> unit
(** Unconditional fsync (no-op when nothing was appended since the last). *)

val tick : writer -> unit
(** Apply an [Interval] policy's clock: fsync when the interval elapsed
    and unsynced appends exist.  No-op for [Always]/[Never]. *)

val records_written : writer -> int
val close : writer -> unit
(** Final {!sync} then close.  Idempotent. *)

(* ---------- reading ---------- *)

type record = { payload : string; r_end : int  (** byte offset just past this record *) }

type scan = {
  s_records : record list;  (** the valid prefix, in append order *)
  s_valid_bytes : int;  (** bytes covered by [s_records] *)
  s_total_bytes : int;  (** file size; [> s_valid_bytes] means a torn tail *)
}

val scan : string -> scan
(** Total: a missing file reads as empty, and any framing/checksum
    violation simply ends the valid prefix — corruption is data here, not
    an exception. *)

val truncate : string -> int -> unit
(** [truncate path len] cuts the file to [len] bytes (drop a torn tail
    before appending).  Raises [Unix.Unix_error]. *)
