(** On-disk durability layout for the scheduler daemon: epoch-paired
    atomic checkpoints plus a write-ahead {!Journal}.

    A persist directory holds

    {v
    ckpt-000003/            newest complete checkpoint (epoch 3)
      sessions.jsonl        one {"id","state"} line per session
      manifest.json         written LAST: format tag, epoch, file sizes
    ckpt-000002/            previous checkpoint, kept as a fallback
    journal-000003.wal      mutations since checkpoint 3
    v}

    Checkpoints are atomic by construction: sessions and manifest are
    written to a temp directory, fsynced, and [rename]d into place — a
    crash mid-checkpoint leaves either the previous complete checkpoint or
    both.  The journal is paired to the checkpoint {e epoch}: checkpoint
    [N] rotates writes into a fresh [journal-N.wal], and recovery replays
    only the journal of the newest valid checkpoint's epoch, so a crash
    between the checkpoint rename and any journal cleanup can never
    double-apply records.

    Each journal record is one {e drain group}: the raw request lines that
    the engine served back-to-back (preserving add_task batch boundaries,
    which affect placement), plus the [(idempotency id, reply)] pairs those
    requests produced so a restarted daemon answers client retries from
    cache instead of re-applying them. *)

type t

type group = { g_lines : string list; g_cached : (string * string) list }
(** One journal record: request lines replayed as a single drain, and the
    idempotency-id cache entries to seed. *)

type recovery = {
  r_dir : string;
  r_epoch : int;  (** newest valid checkpoint's sequence number; 0 = none *)
  r_checkpoint : string option;  (** its directory name *)
  r_sessions : (string * Obs.Json.t) list;  (** checkpointed (id, state) *)
  r_groups : group list;  (** decoded journal suffix, in append order *)
  r_records : int;  (** [List.length r_groups] *)
  r_valid_bytes : int;  (** clean journal prefix *)
  r_torn_bytes : int;  (** trailing bytes past the last valid record *)
  r_skipped : (string * string) list;
      (** checkpoint directories that failed validation, with reasons —
          structural corruption, not crash residue (renames are atomic) *)
}

val load : string -> recovery
(** Read-only recovery view of a persist directory: pick the newest valid
    checkpoint, scan its epoch's journal, decode the groups.  Total — a
    missing or empty directory yields an empty recovery; torn tails and
    invalid checkpoints are reported, not raised.  Never writes (safe for
    [doctor] against a live daemon's directory). *)

val open_ : dir:string -> policy:Journal.policy -> version:string -> t * recovery
(** {!load}, then take ownership for writing: create the directory if
    needed, truncate the journal's torn tail, and open the epoch journal
    for appending.  Raises [Unix.Unix_error] on I/O failure. *)

val log : t -> lines:string list -> cached:(string * string) list -> unit
(** Append one {!group} record (then the fsync policy applies).  Must be
    called before the corresponding replies are flushed to clients. *)

val tick : t -> unit
(** Drive an [Interval] fsync policy between requests. *)

val checkpoint : t -> sessions:(string * Obs.Json.t) list -> (string, string) result
(** Write a complete checkpoint of [sessions] (id, {!Session.snapshot})
    and advance the epoch: temp dir → fsync files → rename → fsync parent
    → rotate to a fresh journal → prune all but the previous checkpoint.
    Returns the new checkpoint's directory name.  [Error] leaves the
    previous checkpoint and the current journal untouched. *)

val epoch : t -> int
val journal_records : t -> int
(** Records appended to the current epoch's journal by this process. *)

val close : t -> unit
(** Flush and close the journal.  Idempotent; does not checkpoint. *)
