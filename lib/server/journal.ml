(* Append-only journal file: [len(4 LE)][crc32(4 LE)][payload] records.

   The CRC is the reflected IEEE polynomial (zip/png); a pure-OCaml table
   keeps the module dependency-free.  Torn tails are the scanner's problem:
   it walks the frame chain and stops at the first record whose length,
   bytes or checksum don't hold up, so recovery always lands on a record
   boundary. *)

type policy = Always | Interval of float | Never

let policy_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Always
  | "never" -> Never
  | s when String.length s > 9 && String.sub s 0 9 = "interval:" -> (
      let ms = String.sub s 9 (String.length s - 9) in
      match float_of_string_opt ms with
      | Some ms when Float.is_finite ms && ms > 0.0 -> Interval (ms /. 1000.0)
      | _ -> failwith (Printf.sprintf "bad fsync interval %S (want interval:MS, MS > 0)" ms))
  | _ -> failwith (Printf.sprintf "bad fsync policy %S (want always, never or interval:MS)" s)

let policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Interval s -> Printf.sprintf "interval:%g" (1000.0 *. s)

(* Records are length-prefixed: cap the length so a corrupt prefix can
   never demand an absurd allocation during a scan. *)
let max_record = 1 lsl 26

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let c_appends = Obs.Metrics.counter "server.journal.appends"
let c_fsyncs = Obs.Metrics.counter "server.journal.fsyncs"

let () =
  Obs.Prom.describe "server.journal.appends" "Journal records appended.";
  Obs.Prom.describe "server.journal.fsyncs" "Journal fsync calls issued."

type writer = {
  fd : Unix.file_descr;
  policy : policy;
  mutable last_sync_ns : int64;
  mutable dirty : bool;
  mutable records : int;
  mutable closed : bool;
}

let open_writer ?(policy = Interval 0.1) path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  { fd; policy; last_sync_ns = Obs.Span.now_ns (); dirty = false; records = 0; closed = false }

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let do_sync w =
  if w.dirty then begin
    Unix.fsync w.fd;
    Obs.Metrics.incr c_fsyncs;
    w.dirty <- false
  end;
  w.last_sync_ns <- Obs.Span.now_ns ()

let sync w = if not w.closed then do_sync w

let interval_due w =
  match w.policy with
  | Interval s ->
      w.dirty && Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) w.last_sync_ns) >= s
  | Always | Never -> false

let tick w = if (not w.closed) && interval_due w then do_sync w

let append w payload =
  let len = String.length payload in
  if len > max_record then
    invalid_arg (Printf.sprintf "Journal.append: %d-byte record exceeds the %d cap" len max_record);
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (crc32 payload);
  Bytes.blit_string payload 0 b 8 len;
  write_all w.fd b;
  w.dirty <- true;
  w.records <- w.records + 1;
  Obs.Metrics.incr c_appends;
  match w.policy with
  | Always -> do_sync w
  | Interval _ -> if interval_due w then do_sync w
  | Never -> ()

let records_written w = w.records

let close w =
  if not w.closed then begin
    (try do_sync w with Unix.Unix_error _ -> ());
    (try Unix.close w.fd with Unix.Unix_error _ -> ());
    w.closed <- true
  end

type record = { payload : string; r_end : int }
type scan = { s_records : record list; s_valid_bytes : int; s_total_bytes : int }

let scan path =
  let data =
    match In_channel.with_open_bin path In_channel.input_all with
    | d -> d
    | exception Sys_error _ -> ""
  in
  let total = String.length data in
  let records = ref [] in
  let off = ref 0 in
  let ok = ref true in
  while !ok do
    if total - !off < 8 then ok := false
    else begin
      let len = Int32.to_int (String.get_int32_le data !off) in
      if len < 0 || len > max_record || total - !off - 8 < len then ok := false
      else begin
        let crc = String.get_int32_le data (!off + 4) in
        let payload = String.sub data (!off + 8) len in
        if crc32 payload <> crc then ok := false
        else begin
          off := !off + 8 + len;
          records := { payload; r_end = !off } :: !records
        end
      end
    end
  done;
  { s_records = List.rev !records; s_valid_bytes = !off; s_total_bytes = total }

let truncate path len = Unix.truncate path len
