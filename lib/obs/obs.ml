module Metrics = Metrics
module Span = Span
module Events = Events
module Trace = Trace
module Sink = Sink
module Json = Json
module Prom = Prom
module Runtime = Runtime
module Recorder = Recorder
module Anomaly = Anomaly

let enabled = Config.enabled
let set_enabled b = Config.enabled := b
let is_enabled () = !Config.enabled

let reset () =
  Metrics.reset_all ();
  Span.reset ();
  Events.reset ()

let with_recording f =
  let was = !Config.enabled in
  Config.enabled := true;
  reset ();
  Fun.protect ~finally:(fun () -> Config.enabled := was) f
