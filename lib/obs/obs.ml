module Metrics = Metrics
module Span = Span
module Sink = Sink
module Json = Json

let enabled = Config.enabled
let set_enabled b = Config.enabled := b
let is_enabled () = !Config.enabled

let reset () =
  Metrics.reset_all ();
  Span.reset ()

let with_recording f =
  let was = !Config.enabled in
  Config.enabled := true;
  reset ();
  Fun.protect ~finally:(fun () -> Config.enabled := was) f
