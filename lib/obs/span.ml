(* Monotonic span timers with a bounded trace.

   [now_ns]/[time_s] always read the clock — experiment harnesses use them
   for wall timing whether or not telemetry is on.  [enter]/[exit]/[timed]
   additionally record into a fixed-capacity ring buffer (the most recent
   [capacity] spans, with nesting depth, recording-domain id and optional
   flow id) and into per-name aggregates, but only when [Config.enabled] is
   set; disabled spans cost one branch.

   Domain safety: nesting depth is domain-local (spans nest within the
   domain that opened them), while the shared ring and aggregates are
   guarded by a mutex.  Spans are coarse events (one per algorithm run, not
   per edge), so a lock at [exit] is free in practice — the per-event
   counters and histograms, which do sit on hot paths, are the lock-free
   sharded ones in [Metrics].

   Flow ids connect causally-related records across domains (a task
   submitted on one domain, executed on another); [Trace] pairs them into
   Chrome trace-event flow arrows.  Id 0 means "no flow". *)

external now_ns : unit -> int64 = "obs_monotonic_ns"

let ns_to_s ns = Int64.to_float ns /. 1e9

let time_s f =
  let t0 = now_ns () in
  let result = f () in
  (result, ns_to_s (Int64.sub (now_ns ()) t0))

type record = {
  r_name : string;
  start_ns : int64;
  stop_ns : int64;
  depth : int;
  dom : int; (* id of the domain that recorded the span *)
  flow : int; (* cross-domain flow id, 0 = none *)
}

let sentinel = { r_name = ""; start_ns = 0L; stop_ns = 0L; depth = 0; dom = 0; flow = 0 }

let default_capacity = 4096
let lock = Mutex.create () (* guards the ring and the aggregates *)
let ring = ref (Array.make default_capacity sentinel)
let ring_next = ref 0 (* next write slot *)
let ring_stored = ref 0 (* total records ever written *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

(* Flow ids are process-global so submit/execute pairs agree whichever
   domains they land on; 0 is reserved for "no flow". *)
let flow_counter = Atomic.make 1

let new_flows n = if n <= 0 then 0 else Atomic.fetch_and_add flow_counter n

type agg = { a_name : string; mutable a_count : int; mutable a_total_ns : int64 }

let aggs : (string, agg) Hashtbl.t = Hashtbl.create 32

type t = { sp_name : string; sp_start : int64; sp_flow : int; sp_live : bool }

let inert = { sp_name = ""; sp_start = 0L; sp_flow = 0; sp_live = false }

let self_id () = (Domain.self () :> int)

let enter ?(flow = 0) name =
  if !Config.enabled then begin
    Stdlib.incr (Domain.DLS.get depth_key);
    { sp_name = name; sp_start = now_ns (); sp_flow = flow; sp_live = true }
  end
  else inert

let push_record r update_agg =
  Config.beat r.stop_ns;
  Mutex.protect lock (fun () ->
      let a = !ring in
      a.(!ring_next) <- r;
      ring_next := (!ring_next + 1) mod Array.length a;
      Stdlib.incr ring_stored;
      if update_agg then begin
        let agg =
          match Hashtbl.find_opt aggs r.r_name with
          | Some agg -> agg
          | None ->
              let agg = { a_name = r.r_name; a_count = 0; a_total_ns = 0L } in
              Hashtbl.add aggs r.r_name agg;
              agg
        in
        agg.a_count <- agg.a_count + 1;
        agg.a_total_ns <- Int64.add agg.a_total_ns (Int64.sub r.stop_ns r.start_ns)
      end)

let exit sp =
  if sp.sp_live then begin
    let stop = now_ns () in
    let depth = Domain.DLS.get depth_key in
    Stdlib.decr depth;
    push_record
      {
        r_name = sp.sp_name;
        start_ns = sp.sp_start;
        stop_ns = stop;
        depth = !depth;
        dom = self_id ();
        flow = sp.sp_flow;
      }
      true
  end

let timed ?flow name f =
  let sp = enter ?flow name in
  Fun.protect ~finally:(fun () -> exit sp) f

(* A zero-duration record at the current instant: flow endpoints and other
   point-in-time markers.  Depth is the current nesting depth (the instant
   sits inside whatever spans are open); no aggregate is updated. *)
let instant ?(flow = 0) name =
  if !Config.enabled then begin
    let now = now_ns () in
    push_record
      {
        r_name = name;
        start_ns = now;
        stop_ns = now;
        depth = !(Domain.DLS.get depth_key);
        dom = self_id ();
        flow;
      }
      false
  end

(* Save/restore the calling domain's nesting depth around [f]: a span leaked
   inside [f] (entered, never exited) cannot skew the depths of later spans
   on this domain.  The pool wraps every task in this guard. *)
let with_depth_guard f =
  let d = Domain.DLS.get depth_key in
  let saved = !d in
  Fun.protect ~finally:(fun () -> d := saved) f

let duration_s r = ns_to_s (Int64.sub r.stop_ns r.start_ns)

(* Oldest-first live contents of the ring. *)
let records () =
  Mutex.protect lock (fun () ->
      let a = !ring in
      let cap = Array.length a in
      let len = min !ring_stored cap in
      let first = (!ring_next - len + cap) mod cap in
      List.init len (fun i -> a.((first + i) mod cap)))

let recorded () = Mutex.protect lock (fun () -> !ring_stored)

let set_capacity n =
  if n <= 0 then invalid_arg "Span.set_capacity: capacity must be positive";
  Mutex.protect lock (fun () ->
      ring := Array.make n sentinel;
      ring_next := 0;
      ring_stored := 0)

let aggregates () =
  Mutex.protect lock (fun () -> Hashtbl.fold (fun _ a acc -> a :: acc) aggs [])
  |> List.sort (fun a b -> compare a.a_name b.a_name)

let fold_aggregates f init =
  List.fold_left
    (fun acc a -> f a.a_name ~count:a.a_count ~total_s:(ns_to_s a.a_total_ns) acc)
    init (aggregates ())

let reset () =
  Mutex.protect lock (fun () ->
      let a = !ring in
      Array.fill a 0 (Array.length a) sentinel;
      ring_next := 0;
      ring_stored := 0;
      Hashtbl.reset aggs);
  Domain.DLS.get depth_key := 0
