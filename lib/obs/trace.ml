(* Chrome/Perfetto trace-event export, assembled from the Span ring and the
   Events log (load the file in ui.perfetto.dev or chrome://tracing).

   Mapping:
   - every completed span becomes a complete ("X") slice on the track of
     the domain that recorded it (pid 1, tid = domain id), with its nesting
     depth and flow id in [args];
   - zero-duration records ([Span.instant]) become thread-scoped instant
     ("i") events, as do the records of the [Events] log;
   - flow ids shared by at least two records are paired into flow arrows —
     an "s" (start) at the earliest record, an "f" (bp "e", end) at each
     later one — which is how a [Pool] task submitted on one domain is
     visually linked to its execution on another;
   - counter tracks ("C") are sampled at span boundaries: "span.depth.d<n>"
     steps to [depth + 1] when a slice opens and back to [depth] when it
     closes, and "spans.completed" counts closed slices cumulatively.

   Timestamps are microseconds rebased to the earliest record, so they stay
   well inside the 9-significant-digit JSON float rendering. *)

type event = (string * Json.t) list

let us ~t0 ns = Int64.to_float (Int64.sub ns t0) /. 1e3

let thread_meta ~tid name : event =
  [
    ("name", Json.Str "thread_name");
    ("ph", Json.Str "M");
    ("pid", Json.Num 1.0);
    ("tid", Json.Num (float_of_int tid));
    ("args", Json.Obj [ ("name", Json.Str name) ]);
  ]

let process_meta : event =
  [
    ("name", Json.Str "process_name");
    ("ph", Json.Str "M");
    ("pid", Json.Num 1.0);
    ("args", Json.Obj [ ("name", Json.Str "semimatch") ]);
  ]

let base ~ph ~name ~tid ~ts : event =
  [
    ("name", Json.Str name);
    ("ph", Json.Str ph);
    ("pid", Json.Num 1.0);
    ("tid", Json.Num (float_of_int tid));
    ("ts", Json.Num ts);
  ]

let counter ~name ~ts ~key ~value : event =
  [
    ("name", Json.Str name);
    ("ph", Json.Str "C");
    ("pid", Json.Num 1.0);
    ("ts", Json.Num ts);
    ("args", Json.Obj [ (key, Json.Num value) ]);
  ]

let events_of_spans ~t0 spans =
  List.concat_map
    (fun (r : Span.record) ->
      let ts = us ~t0 r.Span.start_ns in
      let args =
        ( "args",
          Json.Obj
            [
              ("depth", Json.Num (float_of_int r.Span.depth));
              ("flow", Json.Num (float_of_int r.Span.flow));
            ] )
      in
      if r.Span.stop_ns = r.Span.start_ns then
        [ base ~ph:"i" ~name:r.Span.r_name ~tid:r.Span.dom ~ts @ [ ("s", Json.Str "t"); args ] ]
      else
        [
          base ~ph:"X" ~name:r.Span.r_name ~tid:r.Span.dom ~ts
          @ [ ("dur", Json.Num (us ~t0 r.Span.stop_ns -. ts)); ("cat", Json.Str "span"); args ];
        ])
    spans

(* Flow arrows: records sharing a nonzero flow id, earliest first.  Lone
   endpoints (a submitted task that never ran) are dropped — every "s" in
   the output has at least one matching "f". *)
let flow_events ~t0 spans =
  let by_flow : (int, Span.record list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Span.record) ->
      if r.Span.flow <> 0 then
        Hashtbl.replace by_flow r.Span.flow
          (r :: (Option.value ~default:[] (Hashtbl.find_opt by_flow r.Span.flow))))
    spans;
  Hashtbl.fold
    (fun flow rs acc ->
      match List.sort (fun a b -> Int64.compare a.Span.start_ns b.Span.start_ns) rs with
      | first :: (_ :: _ as rest) ->
          let endpoint ph (r : Span.record) =
            base ~ph ~name:"pool.flow" ~tid:r.Span.dom ~ts:(us ~t0 r.Span.start_ns)
            @ [ ("cat", Json.Str "flow"); ("id", Json.Num (float_of_int flow)) ]
            @ (if ph = "f" then [ ("bp", Json.Str "e") ] else [])
          in
          endpoint "s" first :: List.map (endpoint "f") rest @ acc
      | _ -> acc)
    by_flow []

(* Counter-track samples at span boundaries (slices only, instants carry no
   depth change). *)
let counter_events ~t0 spans =
  let slices = List.filter (fun (r : Span.record) -> r.Span.stop_ns <> r.Span.start_ns) spans in
  let depth_samples =
    List.concat_map
      (fun (r : Span.record) ->
        let track = Printf.sprintf "span.depth.d%d" r.Span.dom in
        [
          counter ~name:track ~ts:(us ~t0 r.Span.start_ns) ~key:"depth"
            ~value:(float_of_int (r.Span.depth + 1));
          counter ~name:track ~ts:(us ~t0 r.Span.stop_ns) ~key:"depth"
            ~value:(float_of_int r.Span.depth);
        ])
      slices
  in
  let completed =
    List.sort (fun a b -> Int64.compare a.Span.stop_ns b.Span.stop_ns) slices
    |> List.mapi (fun i (r : Span.record) ->
           counter ~name:"spans.completed" ~ts:(us ~t0 r.Span.stop_ns) ~key:"count"
             ~value:(float_of_int (i + 1)))
  in
  depth_samples @ completed

let events_of_log ~t0 log =
  List.map
    (fun (e : Events.record) ->
      base ~ph:"i" ~name:e.Events.e_name ~tid:e.Events.e_dom ~ts:(us ~t0 e.Events.e_ts_ns)
      @ [
          ("s", Json.Str "t");
          ("cat", Json.Str "event");
          ("args", Json.Obj (("level", Json.Str (Events.level_name e.Events.e_level)) :: e.Events.e_fields));
        ])
    log

let to_json ?(since_ns = Int64.min_int) () =
  (* A span is kept while any part of it is inside the window (it may have
     started before [since_ns] but still explain what the slice shows). *)
  let spans =
    List.filter (fun (r : Span.record) -> Int64.compare r.Span.stop_ns since_ns >= 0)
      (Span.records ())
  in
  let log =
    List.filter (fun (e : Events.record) -> Int64.compare e.Events.e_ts_ns since_ns >= 0)
      (Events.records ())
  in
  let t0 =
    List.fold_left
      (fun acc (r : Span.record) -> if Int64.compare r.Span.start_ns acc < 0 then r.Span.start_ns else acc)
      (List.fold_left
         (fun acc (e : Events.record) -> if Int64.compare e.Events.e_ts_ns acc < 0 then e.Events.e_ts_ns else acc)
         Int64.max_int log)
      spans
  in
  let t0 = if t0 = Int64.max_int then 0L else t0 in
  let doms =
    List.sort_uniq compare
      (List.map (fun (r : Span.record) -> r.Span.dom) spans
      @ List.map (fun (e : Events.record) -> e.Events.e_dom) log)
  in
  let track_name d =
    (* Runtime-event replays are recorded far above any real domain id so
       they get their own named tracks (see [Runtime.track_offset]). *)
    if d >= Runtime.track_offset then Printf.sprintf "gc-ring-%d" (d - Runtime.track_offset)
    else Printf.sprintf "domain-%d" d
  in
  let metadata = process_meta :: List.map (fun d -> thread_meta ~tid:d (track_name d)) doms in
  let body =
    events_of_spans ~t0 spans @ flow_events ~t0 spans @ counter_events ~t0 spans
    @ events_of_log ~t0 log
  in
  let ts_of ev = match List.assoc_opt "ts" ev with Some (Json.Num f) -> f | _ -> -1.0 in
  let body = List.stable_sort (fun a b -> Float.compare (ts_of a) (ts_of b)) body in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map (fun ev -> Json.Obj ev) (metadata @ body)));
      ("displayTimeUnit", Json.Str "ms");
    ]

let render ?since_ns () = Json.to_string (to_json ?since_ns ())

let write_file ?since_ns path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?since_ns ()))
