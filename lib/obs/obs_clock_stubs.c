/* Monotonic nanosecond clock for Obs.Span.

   CLOCK_MONOTONIC is immune to NTP slews and settimeofday jumps, which is
   what experiment timings need (gettimeofday is not).  The REALTIME branch
   only exists for exotic libcs without a monotonic clock. */

#include <time.h>
#include <stdint.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

CAMLprim value obs_monotonic_ns(value unit)
{
  struct timespec ts;
#if defined(CLOCK_MONOTONIC)
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
