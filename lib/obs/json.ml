(* Minimal JSON values: enough for the Obs sinks (emit) and their tests
   (parse back).  Numbers are floats; [to_string] prints integral floats
   without a trailing ".", non-finite floats as null (JSON has no inf/nan). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s -> Buffer.add_string buf (escape_string s)
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape_string k);
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  to_buffer buf v;
  Buffer.contents buf

(* Recursive-descent parser.  Raises [Failure] with a position on malformed
   input; trailing garbage after the value is an error too. *)
let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "Json.of_string: %s at offset %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
                   (* Codepoints above latin-1 round-trip as '?': the sinks
                      only emit ASCII names. *)
                   Buffer.add_char buf (if code < 256 then Char.chr code else '?');
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            loop ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function
  | Num f -> Some f
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None
