(* The flight recorder: keep the last N seconds of telemetry resident and
   cheap, and turn it into a self-contained diagnostic bundle directory the
   moment something goes wrong.

   Recording reuses what already exists — the [Span] ring, the [Events]
   log, the GC records [Runtime] replays into the span ring — and adds the
   one thing they lack: a bounded ring of periodic Prometheus snapshots, so
   a bundle shows how the gauges and histograms were moving before the
   trigger, not just their final value.  [start] sizes the rings for the
   window and flips the master switch; [tick] is called by the host loop
   (the daemon does so every select round) and takes a snapshot when one is
   due.  Memory stays bounded by the ring capacities whatever the uptime.

   A bundle is one directory:

     manifest.json    format tag, trigger, rule, detail, timestamps,
                      version, window, file list with byte sizes
     trace.json       Chrome/Perfetto slice of the recording window
     events.jsonl     event-log tail of the window
     metrics.prom     full Prometheus exposition at the trigger instant
     snapshots.jsonl  the periodic exposition ring, oldest first
     ...extra         caller-supplied files (the offending request, a
                      Hyper.Io instance dump for replay)

   The manifest is written last, so its presence marks a complete bundle —
   [semimatch doctor] treats a directory without one as corrupt. *)

type config = {
  window_s : float;  (* recording window the rings are sized for *)
  span_capacity : int;
  event_capacity : int;
  snapshot_every_s : float;
  max_snapshots : int;
}

let default_config =
  {
    window_s = 30.0;
    span_capacity = 16384;
    event_capacity = 16384;
    snapshot_every_s = 5.0;
    max_snapshots = 64;
  }

type snapshot = { snap_ts_ns : int64; snap_prom : string }

type state = {
  cfg : config;
  snaps : snapshot Queue.t;  (* oldest first, bounded by max_snapshots *)
  mutable last_snap_ns : int64;
}

let lock = Mutex.create ()
let state : state option ref = ref None

let started () = Mutex.protect lock (fun () -> !state <> None)

let config () = Mutex.protect lock (fun () -> Option.map (fun s -> s.cfg) !state)

let start ?(config = default_config) () =
  if config.window_s <= 0.0 then invalid_arg "Recorder.start: window_s must be positive";
  if config.snapshot_every_s <= 0.0 then
    invalid_arg "Recorder.start: snapshot_every_s must be positive";
  if config.max_snapshots < 1 then invalid_arg "Recorder.start: max_snapshots must be positive";
  Span.set_capacity config.span_capacity;
  Events.set_capacity config.event_capacity;
  Config.enabled := true;
  Mutex.protect lock (fun () ->
      state := Some { cfg = config; snaps = Queue.create (); last_snap_ns = 0L })

let stop () = Mutex.protect lock (fun () -> state := None)

(* Host-loop pulse: snapshot the exposition when one is due.  [prom]
   supplies the rendering (the engine passes its gauge-enriched exposition)
   and is only evaluated when a snapshot is actually taken.  Returns
   whether one was. *)
let tick ?(prom = fun () -> Prom.render ()) () =
  let due =
    Mutex.protect lock (fun () ->
        match !state with
        | None -> None
        | Some s ->
            let now = Span.now_ns () in
            let every = Int64.of_float (s.cfg.snapshot_every_s *. 1e9) in
            if Int64.compare (Int64.sub now s.last_snap_ns) every >= 0 then begin
              s.last_snap_ns <- now;
              Some (s, now)
            end
            else None)
  in
  match due with
  | None -> false
  | Some (s, now) ->
      let text = prom () in
      Mutex.protect lock (fun () ->
          Queue.push { snap_ts_ns = now; snap_prom = text } s.snaps;
          while Queue.length s.snaps > s.cfg.max_snapshots do
            ignore (Queue.pop s.snaps)
          done);
      true

let snapshots () =
  Mutex.protect lock (fun () ->
      match !state with
      | None -> []
      | Some s -> List.of_seq (Queue.to_seq s.snaps))

(* Start of the recording window: everything older is outside the bundle.
   Without a running recorder the window is unbounded (a manual [dump]
   against a plain daemon still collects whatever the rings hold). *)
let since_ns () =
  match config () with
  | None -> Int64.min_int
  | Some cfg ->
      let now = Span.now_ns () in
      let w = Int64.of_float (cfg.window_s *. 1e9) in
      if Int64.compare now w > 0 then Int64.sub now w else Int64.min_int

(* ---------- bundles ---------- *)

let format_tag = "semimatch.bundle/1"

let c_bundles = Metrics.counter "bundles.written"
let () = Prom.describe "bundles.written" "Diagnostic bundles written to disk."

(* Within-process uniqueness; the wall-clock stamp handles across-process. *)
let bundle_seq = Atomic.make 0

let sanitize_component name =
  let ok c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '-' || c = '_'
  in
  let s = String.map (fun c -> if ok c then c else '_') name in
  if s = "" then "trigger" else s

let mkdir_p path =
  let rec make p =
    if p <> "" && p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      make (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make path

let write_text path text =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let write_bundle ~dir ~trigger ?rule ?(detail = []) ?prom ?(extra = []) ~version () =
  try
    let now_mono = Span.now_ns () in
    let now_wall = Unix.gettimeofday () in
    let tm = Unix.gmtime now_wall in
    let seq = Atomic.fetch_and_add bundle_seq 1 in
    let name =
      Printf.sprintf "bundle-%04d%02d%02d-%02d%02d%02d-%03d-%s" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec seq
        (sanitize_component trigger)
    in
    let bundle = Filename.concat dir name in
    mkdir_p bundle;
    let since = since_ns () in
    let prom_text = match prom with Some p -> p | None -> Prom.render () in
    let snaps = snapshots () in
    let snap_lines =
      String.concat ""
        (List.map
           (fun s ->
             Json.to_string
               (Json.Obj
                  [
                    ("ts_ns", Json.Num (Int64.to_float s.snap_ts_ns));
                    ("prom", Json.Str s.snap_prom);
                  ])
             ^ "\n")
           snaps)
    in
    let files =
      [
        ("trace.json", Trace.render ~since_ns:since ());
        ("events.jsonl", Events.render_jsonl ~since_ns:since ());
        ("metrics.prom", prom_text);
        ("snapshots.jsonl", snap_lines);
      ]
      @ extra
    in
    List.iter (fun (fname, text) -> write_text (Filename.concat bundle fname) text) files;
    let manifest =
      Json.Obj
        ([
           ("format", Json.Str format_tag);
           ("trigger", Json.Str trigger);
         ]
        @ (match rule with None -> [] | Some r -> [ ("rule", Json.Str r) ])
        @ [
            ("detail", Json.Obj detail);
            ("written_unix_s", Json.Num now_wall);
            ("mono_ns", Json.Num (Int64.to_float now_mono));
            ( "window_s",
              match config () with None -> Json.Null | Some c -> Json.Num c.window_s );
            ("version", Json.Str version);
            ("snapshots", Json.Num (float_of_int (List.length snaps)));
            ( "files",
              Json.List
                (List.map
                   (fun (fname, text) ->
                     Json.Obj
                       [
                         ("name", Json.Str fname);
                         ("bytes", Json.Num (float_of_int (String.length text)));
                       ])
                   files) );
          ])
    in
    write_text (Filename.concat bundle "manifest.json") (Json.to_string manifest);
    Metrics.incr c_bundles;
    Events.emit ~level:Events.Warn "bundle.written"
      [ Events.str "dir" bundle; Events.str "trigger" trigger ];
    Ok bundle
  with
  | Sys_error msg -> Error msg
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s: %s %s" (Unix.error_message e) fn arg)
