(* Declarative anomaly triggers over the live telemetry: the service feeds
   cheap observations (request latencies, queue depth, busy rejections,
   solve budgets) and a periodic poll (heap size, watchdog), and a rule
   that trips returns a [firing] the caller turns into a diagnostic bundle
   (see [Recorder.write_bundle]).

   Rules are plain data with a textual spec grammar mirroring
   [Semimatch.Faults] ("latency:250", "stall:5000", "heap:64@10"), so a
   trigger set travels through CLI flags and manifests unchanged.

   The watchdog is the one rule that cannot be evaluated by the thread it
   watches: a single-threaded engine stuck inside a solve serves nothing,
   including its own health checks.  Progress is therefore a process-global
   monotonic heartbeat ([Config.beat], stamped by every span exit and event
   emission — solver phases, portfolio incumbents, annealing epochs — plus
   explicit [beat] calls from the engine), readable with two atomic loads
   from a background watchdog domain.  [solve_begin]/[solve_end] bracket the
   in-flight request; [check_stuck] is the cross-domain live check and
   [solve_end] the same-thread post-hoc one (largest silent gap), so a stall
   is caught while it happens and recorded even if the solve eventually
   returns.

   All state is mutex-guarded and observation calls are O(rules); with no
   anomaly instance wired in, the service pays nothing. *)

type rule =
  | Latency of { op : string option; ms : float }
  | Over_budget of { factor : float }
  | Queue_full of { pending : int }
  | Busy_burst of { count : int; window_s : float }
  | Heap_growth of { mb_per_s : float; window_s : float }
  | Stall of { ms : float }

let rule_kind = function
  | Latency _ -> "latency"
  | Over_budget _ -> "overbudget"
  | Queue_full _ -> "queue"
  | Busy_burst _ -> "busy"
  | Heap_growth _ -> "heap"
  | Stall _ -> "stall"

let rule_to_string = function
  | Latency { op = None; ms } -> Printf.sprintf "latency:%g" ms
  | Latency { op = Some op; ms } -> Printf.sprintf "latency:%s:%g" op ms
  | Over_budget { factor } -> Printf.sprintf "overbudget:%g" factor
  | Queue_full { pending } -> Printf.sprintf "queue:%d" pending
  | Busy_burst { count; window_s } -> Printf.sprintf "busy:%d@%g" count window_s
  | Heap_growth { mb_per_s; window_s } -> Printf.sprintf "heap:%g@%g" mb_per_s window_s
  | Stall { ms } -> Printf.sprintf "stall:%g" ms

let bad spec reason = failwith (Printf.sprintf "bad trigger %S: %s" spec reason)

let pos_float spec s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f && f > 0.0 -> f
  | _ -> bad spec "expected a positive number"

let pos_int spec s =
  match int_of_string_opt s with
  | Some n when n > 0 -> n
  | _ -> bad spec "expected a positive integer"

(* "N@SECS" *)
let windowed spec s =
  match String.split_on_char '@' s with
  | [ v; w ] -> (v, pos_float spec w)
  | _ -> bad spec "expected VALUE@SECONDS"

let rule_of_string spec =
  match String.split_on_char ':' (String.trim spec) with
  | [ "latency"; ms ] -> Latency { op = None; ms = pos_float spec ms }
  | [ "latency"; op; ms ] when op <> "" -> Latency { op = Some op; ms = pos_float spec ms }
  | [ "overbudget"; f ] ->
      let factor = pos_float spec f in
      if factor < 1.0 then bad spec "factor must be >= 1" else Over_budget { factor }
  | [ "queue"; n ] -> Queue_full { pending = pos_int spec n }
  | [ "busy"; nw ] ->
      let n, window_s = windowed spec nw in
      Busy_burst { count = pos_int spec n; window_s }
  | [ "heap"; mw ] ->
      let mb, window_s = windowed spec mw in
      Heap_growth { mb_per_s = pos_float spec mb; window_s }
  | [ "stall"; ms ] -> Stall { ms = pos_float spec ms }
  | _ -> bad spec "unknown rule (latency[:OP]:MS, overbudget:F, queue:N, busy:N@S, heap:MB@S, stall:MS)"

let rules_of_string specs =
  String.split_on_char ',' specs
  |> List.filter_map (fun s -> if String.trim s = "" then None else Some (rule_of_string s))

(* A conservative production set: only clearly-pathological behaviour
   fires.  [queue] is engine-capacity-dependent, so it is opt-in. *)
let default_rules =
  [
    Latency { op = None; ms = 1000.0 };
    Over_budget { factor = 4.0 };
    Busy_burst { count = 64; window_s = 5.0 };
    Heap_growth { mb_per_s = 512.0; window_s = 10.0 };
    Stall { ms = 5000.0 };
  ]

type firing = { f_rule : rule; f_ts_ns : int64; f_detail : (string * Json.t) list }

type t = {
  rules : rule list;
  cooldown_ns : int64;
  lock : Mutex.t;
  mutable last_fire : (string * int64) list;  (* per rule kind *)
  mutable busy_ts : int64 list;  (* newest first, pruned to the widest window *)
  mutable heap_samples : (int64 * float) list;  (* (ts, bytes), newest first *)
  mutable n_firings : int;
  mutable last_firing : (string * int64) option;  (* (rule spec, ts) *)
  (* the watchdog slot: the one in-flight request of a single-threaded
     engine, captured as immutable strings so the watchdog domain can put
     them in a bundle without touching engine state *)
  mutable wd_inflight : bool;
  mutable wd_op : string;
  mutable wd_session : string option;
  mutable wd_request : string;
  mutable wd_start_ns : int64;
  mutable wd_beat_ns : int64;
  mutable wd_max_gap_ns : int64;
  mutable wd_beats : int;
}

let create ?(cooldown_s = 5.0) rules =
  if cooldown_s < 0.0 then invalid_arg "Anomaly.create: cooldown_s must be >= 0";
  {
    rules;
    cooldown_ns = Int64.of_float (cooldown_s *. 1e9);
    lock = Mutex.create ();
    last_fire = [];
    busy_ts = [];
    heap_samples = [];
    n_firings = 0;
    last_firing = None;
    wd_inflight = false;
    wd_op = "";
    wd_session = None;
    wd_request = "";
    wd_start_ns = 0L;
    wd_beat_ns = 0L;
    wd_max_gap_ns = 0L;
    wd_beats = 0;
  }

let rules t = t.rules
let firings t = Mutex.protect t.lock (fun () -> t.n_firings)
let last_firing t = Mutex.protect t.lock (fun () -> t.last_firing)

let stall_ms t =
  List.fold_left
    (fun acc r -> match r with Stall { ms } -> Some (match acc with Some a -> Float.min a ms | None -> ms) | _ -> acc)
    None t.rules

(* One firing per rule kind per cooldown window: a stuck solve checked every
   50ms must produce one bundle, not twenty. *)
let fire t rule detail =
  let now = Span.now_ns () in
  let kind = rule_kind rule in
  let accepted =
    Mutex.protect t.lock (fun () ->
        match List.assoc_opt kind t.last_fire with
        | Some last when Int64.compare (Int64.sub now last) t.cooldown_ns < 0 -> false
        | _ ->
            t.last_fire <- (kind, now) :: List.remove_assoc kind t.last_fire;
            t.n_firings <- t.n_firings + 1;
            t.last_firing <- Some (rule_to_string rule, now);
            true)
  in
  if accepted then begin
    Events.emit ~level:Events.Warn "anomaly.fired"
      (Events.str "rule" (rule_to_string rule) :: detail);
    Some { f_rule = rule; f_ts_ns = now; f_detail = detail }
  end
  else None

let first_firing f rules = List.find_map f rules

let observe_request t ~op ~ms =
  first_firing
    (function
      | Latency { op = rop; ms = threshold }
        when (rop = None || rop = Some op) && ms >= threshold ->
          fire t
            (Latency { op = rop; ms = threshold })
            [ Events.str "op" op; Events.num "ms" ms; Events.num "threshold_ms" threshold ]
      | _ -> None)
    t.rules

let observe_solve t ~op ~budget_ms ~elapsed_ms =
  first_firing
    (function
      | Over_budget { factor } when budget_ms > 0.0 && elapsed_ms >= budget_ms *. factor ->
          fire t (Over_budget { factor })
            [
              Events.str "op" op;
              Events.num "budget_ms" budget_ms;
              Events.num "elapsed_ms" elapsed_ms;
              Events.num "factor" factor;
            ]
      | _ -> None)
    t.rules

let observe_queue t ~pending =
  first_firing
    (function
      | Queue_full { pending = threshold } when pending >= threshold ->
          fire t (Queue_full { pending = threshold })
            [ Events.int "pending" pending; Events.int "threshold" threshold ]
      | _ -> None)
    t.rules

let observe_busy t =
  let now = Span.now_ns () in
  let widest =
    List.fold_left
      (fun acc r -> match r with Busy_burst { window_s; _ } -> Float.max acc window_s | _ -> acc)
      0.0 t.rules
  in
  if widest = 0.0 then None
  else begin
    let horizon = Int64.sub now (Int64.of_float (widest *. 1e9)) in
    let within =
      Mutex.protect t.lock (fun () ->
          t.busy_ts <- now :: List.filter (fun ts -> Int64.compare ts horizon >= 0) t.busy_ts;
          t.busy_ts)
    in
    first_firing
      (function
        | Busy_burst { count; window_s } ->
            let h = Int64.sub now (Int64.of_float (window_s *. 1e9)) in
            let n = List.length (List.filter (fun ts -> Int64.compare ts h >= 0) within) in
            if n >= count then
              fire t (Busy_burst { count; window_s })
                [ Events.int "busy_replies" n; Events.num "window_s" window_s ]
            else None
        | _ -> None)
      t.rules
  end

(* ---------- watchdog ---------- *)

(* Last known progress of the in-flight solve: the later of the engine's
   explicit beats and the process-global heartbeat — clamped to the solve's
   start, so activity from before it began never counts. *)
let progress_ns t =
  let hb = Atomic.get Config.heartbeat_ns in
  let hb = if Int64.compare hb t.wd_start_ns > 0 then hb else t.wd_start_ns in
  if Int64.compare t.wd_beat_ns hb > 0 then t.wd_beat_ns else hb

let solve_begin t ~op ?session ~request () =
  let now = Span.now_ns () in
  (* A solve that stalls and then recovers beats again before the bracket
     closes; the global max-gap tracker is what remembers the silence. *)
  Config.reset_gap now;
  Mutex.protect t.lock (fun () ->
      t.wd_inflight <- true;
      t.wd_op <- op;
      t.wd_session <- session;
      t.wd_request <- request;
      t.wd_start_ns <- now;
      t.wd_beat_ns <- now;
      t.wd_max_gap_ns <- 0L;
      t.wd_beats <- 0)

let beat t =
  let now = Span.now_ns () in
  Mutex.protect t.lock (fun () ->
      if t.wd_inflight then begin
        let gap = Int64.sub now (progress_ns t) in
        if Int64.compare gap t.wd_max_gap_ns > 0 then t.wd_max_gap_ns <- gap;
        t.wd_beat_ns <- now;
        t.wd_beats <- t.wd_beats + 1
      end)

(* Post-hoc stall detection on the engine thread: the largest silent gap
   observed across the whole solve, evaluated once the handler returns.
   Shares cooldown state with [check_stuck], so a stall the watchdog domain
   already bundled is not bundled twice. *)
let solve_end t =
  let now = Span.now_ns () in
  let op, session, request, gap_ms, beats =
    Mutex.protect t.lock (fun () ->
        let gap = Int64.sub now (progress_ns t) in
        if Int64.compare gap t.wd_max_gap_ns > 0 then t.wd_max_gap_ns <- gap;
        (* Silences that ended before this call: the beat terminating one
           recorded its length in the global tracker. *)
        let hb_gap = Atomic.get Config.max_gap_ns in
        if Int64.compare hb_gap t.wd_max_gap_ns > 0 then t.wd_max_gap_ns <- hb_gap;
        t.wd_inflight <- false;
        ( t.wd_op,
          t.wd_session,
          t.wd_request,
          Int64.to_float t.wd_max_gap_ns /. 1e6,
          t.wd_beats ))
  in
  first_firing
    (function
      | Stall { ms } when gap_ms >= ms ->
          fire t (Stall { ms })
            ([ Events.str "op" op ]
            @ (match session with None -> [] | Some s -> [ Events.str "session" s ])
            @ [
                Events.num "silent_ms" gap_ms;
                Events.num "threshold_ms" ms;
                Events.int "beats" beats;
                Events.str "request" request;
                Events.str "phase" "post";
              ])
      | _ -> None)
    t.rules

(* The cross-domain live check, called periodically by a watchdog domain:
   fires while the engine thread is still silent inside the solve. *)
let check_stuck t =
  let now = Span.now_ns () in
  let stuck =
    Mutex.protect t.lock (fun () ->
        if not t.wd_inflight then None
        else
          Some
            ( t.wd_op,
              t.wd_session,
              t.wd_request,
              Int64.to_float (Int64.sub now (progress_ns t)) /. 1e6,
              t.wd_beats ))
  in
  match stuck with
  | None -> None
  | Some (op, session, request, silent_ms, beats) ->
      first_firing
        (function
          | Stall { ms } when silent_ms >= ms ->
              fire t (Stall { ms })
                ([ Events.str "op" op ]
                @ (match session with None -> [] | Some s -> [ Events.str "session" s ])
                @ [
                    Events.num "silent_ms" silent_ms;
                    Events.num "threshold_ms" ms;
                    Events.int "beats" beats;
                    Events.str "request" request;
                    Events.str "phase" "live";
                  ])
          | _ -> None)
        t.rules

type watchdog = {
  w_inflight : bool;
  w_op : string option;
  w_session : string option;
  w_silent_ms : float;  (** time since last observed progress (0 when idle) *)
  w_beats : int;
}

let watchdog t =
  let now = Span.now_ns () in
  Mutex.protect t.lock (fun () ->
      if t.wd_inflight then
        {
          w_inflight = true;
          w_op = Some t.wd_op;
          w_session = t.wd_session;
          w_silent_ms = Int64.to_float (Int64.sub now (progress_ns t)) /. 1e6;
          w_beats = t.wd_beats;
        }
      else
        { w_inflight = false; w_op = None; w_session = None; w_silent_ms = 0.0; w_beats = t.wd_beats })

(* Periodic heap-growth evaluation; [heap_bytes] overrides the live
   [Gc.quick_stat] reading so tests can replay a synthetic growth curve. *)
let poll ?heap_bytes t =
  let widest =
    List.fold_left
      (fun acc r -> match r with Heap_growth { window_s; _ } -> Float.max acc window_s | _ -> acc)
      0.0 t.rules
  in
  if widest = 0.0 then None
  else begin
    let now = Span.now_ns () in
    let bytes =
      match heap_bytes with
      | Some b -> b
      | None ->
          let s = Gc.quick_stat () in
          float_of_int s.Gc.heap_words *. float_of_int (Sys.word_size / 8)
    in
    let horizon = Int64.sub now (Int64.of_float (widest *. 1e9)) in
    let samples =
      Mutex.protect t.lock (fun () ->
          t.heap_samples <-
            (now, bytes) :: List.filter (fun (ts, _) -> Int64.compare ts horizon >= 0) t.heap_samples;
          t.heap_samples)
    in
    first_firing
      (function
        | Heap_growth { mb_per_s; window_s } -> (
            let h = Int64.sub now (Int64.of_float (window_s *. 1e9)) in
            (* oldest sample still inside this rule's window *)
            match List.filter (fun (ts, _) -> Int64.compare ts h >= 0) samples with
            | [] | [ _ ] -> None
            | within -> (
                match List.rev within with
                | (ts0, b0) :: _ ->
                    let dt_s = Int64.to_float (Int64.sub now ts0) /. 1e9 in
                    (* demand at least half the window of baseline, so one
                       early sample cannot fabricate a rate *)
                    if dt_s < window_s /. 2.0 then None
                    else
                      let rate = (bytes -. b0) /. dt_s /. 1e6 in
                      if rate >= mb_per_s then
                        fire t (Heap_growth { mb_per_s; window_s })
                          [
                            Events.num "mb_per_s" rate;
                            Events.num "threshold_mb_per_s" mb_per_s;
                            Events.num "window_s" window_s;
                            Events.num "heap_mb" (bytes /. 1e6);
                          ]
                      else None
                | [] -> None))
        | _ -> None)
      t.rules
  end
