(* Process-global named counters and histograms, sharded per domain.

   Handles are interned once at module-initialization time ([counter] /
   [histogram] take a registry mutex); the per-event operations touch only
   the calling domain's shard (found through [Domain.DLS]), so probes are
   lock-free and contention-free however many domains record concurrently.
   Shards register themselves in a global list on first use and outlive
   their domain, so metrics recorded by a pool worker survive the worker;
   [fold_counters] / [summary] / the sinks merge all shards at report time.

   Within a shard, updates are plain in-place writes (single writer: the
   owning domain).  Merging while other domains are still recording is safe
   but approximate — a merge may miss the very latest increments; report
   after the parallel section joins (as the pool drivers do) and the sums
   are exact. *)

(* ---------- registry ---------- *)

type counter = { c_id : int; c_name : string }
type histogram = { h_id : int; h_name : string }

(* Power-of-two histogram: bucket 0 holds [0,1), bucket i >= 1 holds
   [2^(i-1), 2^i).  62 finite buckets cover every duration / path length we
   care about; the top bucket absorbs the rest. *)
let num_buckets = 64

let reg_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let num_counters = ref 0
let num_histograms = ref 0

let counter name =
  Mutex.protect reg_mutex (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_id = !num_counters; c_name = name } in
          Stdlib.incr num_counters;
          Hashtbl.add counters name c;
          c)

let histogram name =
  Mutex.protect reg_mutex (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h = { h_id = !num_histograms; h_name = name } in
          Stdlib.incr num_histograms;
          Hashtbl.add histograms name h;
          h)

let counter_name c = c.c_name
let histogram_name h = h.h_name

(* ---------- per-domain shards ---------- *)

type hshard = {
  mutable hn : int;
  mutable hsum : float;
  mutable hlo : float;
  mutable hhi : float;
  hbuckets : int array;
}

let fresh_hshard () =
  { hn = 0; hsum = 0.0; hlo = infinity; hhi = neg_infinity; hbuckets = Array.make num_buckets 0 }

type shard = {
  mutable sc : int array; (* counter values, indexed by counter id *)
  mutable sh : hshard option array; (* histogram shards, indexed by id *)
}

(* Every shard ever created, including those of terminated domains. *)
let shards : shard list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s = { sc = [||]; sh = [||] } in
      Mutex.protect reg_mutex (fun () -> shards := s :: !shards);
      s)

let local_shard () = Domain.DLS.get shard_key

(* Growth replaces the arrays (merge readers read the field once and may
   see the smaller array — they just miss the newest entries, which is the
   documented merge-while-recording approximation). *)
let counter_slot s id =
  let sc = s.sc in
  if id < Array.length sc then sc
  else begin
    let bigger = Array.make (max (id + 1) ((2 * Array.length sc) + 8)) 0 in
    Array.blit sc 0 bigger 0 (Array.length sc);
    s.sc <- bigger;
    bigger
  end

let hist_slot s id =
  let sh =
    let sh = s.sh in
    if id < Array.length sh then sh
    else begin
      let bigger = Array.make (max (id + 1) ((2 * Array.length sh) + 4)) None in
      Array.blit sh 0 bigger 0 (Array.length sh);
      s.sh <- bigger;
      bigger
    end
  in
  match sh.(id) with
  | Some hs -> hs
  | None ->
      let hs = fresh_hshard () in
      sh.(id) <- Some hs;
      hs

(* ---------- hot path ---------- *)

let incr c =
  if !Config.enabled then begin
    let sc = counter_slot (local_shard ()) c.c_id in
    sc.(c.c_id) <- sc.(c.c_id) + 1
  end

let add c n =
  if !Config.enabled then begin
    let sc = counter_slot (local_shard ()) c.c_id in
    sc.(c.c_id) <- sc.(c.c_id) + n
  end

let bucket_of v =
  if not (v >= 1.0) then 0 (* catches v < 1, nan *)
  else 1 + min (num_buckets - 2) (int_of_float (Float.log2 v))

let bucket_lo i = if i = 0 then 0.0 else Float.pow 2.0 (float_of_int (i - 1))
let bucket_hi i = Float.pow 2.0 (float_of_int i)

let observe h v =
  if !Config.enabled then begin
    let hs = hist_slot (local_shard ()) h.h_id in
    hs.hn <- hs.hn + 1;
    hs.hsum <- hs.hsum +. v;
    if v < hs.hlo then hs.hlo <- v;
    if v > hs.hhi then hs.hhi <- v;
    let b = bucket_of v in
    hs.hbuckets.(b) <- hs.hbuckets.(b) + 1
  end

(* ---------- merging ---------- *)

let all_shards () = Mutex.protect reg_mutex (fun () -> !shards)

let sum_counter ss c =
  List.fold_left
    (fun acc s -> if c.c_id < Array.length s.sc then acc + s.sc.(c.c_id) else acc)
    0 ss

let value c = sum_counter (all_shards ()) c
let shard_values c = List.map (fun s -> if c.c_id < Array.length s.sc then s.sc.(c.c_id) else 0) (all_shards ())
let shard_count () = List.length (all_shards ())

(* Merged histogram data: the shape every statistic is computed from. *)
type hdata = {
  d_n : int;
  d_sum : float;
  d_lo : float;
  d_hi : float;
  d_buckets : int array;
}

let empty_hdata () =
  { d_n = 0; d_sum = 0.0; d_lo = infinity; d_hi = neg_infinity; d_buckets = Array.make num_buckets 0 }

let merge_hshard d (hs : hshard) =
  for i = 0 to num_buckets - 1 do
    d.(i) <- d.(i) + hs.hbuckets.(i)
  done

let merged_hdata ss h =
  let buckets = Array.make num_buckets 0 in
  let n = ref 0 and sum = ref 0.0 and lo = ref infinity and hi = ref neg_infinity in
  List.iter
    (fun s ->
      match (if h.h_id < Array.length s.sh then s.sh.(h.h_id) else None) with
      | None -> ()
      | Some hs ->
          n := !n + hs.hn;
          sum := !sum +. hs.hsum;
          if hs.hlo < !lo then lo := hs.hlo;
          if hs.hhi > !hi then hi := hs.hhi;
          merge_hshard buckets hs)
    ss;
  { d_n = !n; d_sum = !sum; d_lo = !lo; d_hi = !hi; d_buckets = buckets }

let merged h = merged_hdata (all_shards ()) h

(* ---------- statistics on merged data ---------- *)

let count h = (merged h).d_n
let sum h = (merged h).d_sum

let mean_of d = if d.d_n = 0 then Float.nan else d.d_sum /. float_of_int d.d_n
let min_of d = if d.d_n = 0 then Float.nan else d.d_lo
let max_of d = if d.d_n = 0 then Float.nan else d.d_hi

let mean h = mean_of (merged h)
let minimum h = min_of (merged h)
let maximum h = max_of (merged h)

(* Rank-interpolated quantile on the bucketed representation: locate the
   bucket containing rank q·(n−1), interpolate linearly inside it, and clamp
   to the exact observed range (so n equal observations answer that value
   for every q). *)
let quantile_of d ~q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Metrics.quantile: q outside [0,1]"
  else if d.d_n = 0 then Float.nan
  else if q = 0.0 then d.d_lo (* the extremes are tracked exactly *)
  else if q = 1.0 then d.d_hi
  else begin
    let rank = q *. float_of_int (d.d_n - 1) in
    let raw = ref d.d_hi in
    let acc = ref 0 in
    (try
       for i = 0 to num_buckets - 1 do
         let c = d.d_buckets.(i) in
         if c > 0 then begin
           if rank < float_of_int (!acc + c) then begin
             let frac = (rank -. float_of_int !acc) /. float_of_int c in
             raw := bucket_lo i +. (frac *. (bucket_hi i -. bucket_lo i));
             raise Exit
           end;
           acc := !acc + c
         end
       done
     with Exit -> ());
    Float.min d.d_hi (Float.max d.d_lo !raw)
  end

let quantile h ~q = quantile_of (merged h) ~q

type summary = {
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p95 : float;
  s_p99 : float;
}

let summary_of d =
  {
    s_count = d.d_n;
    s_sum = d.d_sum;
    s_min = min_of d;
    s_max = max_of d;
    s_mean = mean_of d;
    s_p50 = quantile_of d ~q:0.5;
    s_p90 = quantile_of d ~q:0.9;
    s_p95 = quantile_of d ~q:0.95;
    s_p99 = quantile_of d ~q:0.99;
  }

let summary h = summary_of (merged h)

(* Merged bucket boundaries as (upper bound, cumulative count) pairs through
   the highest non-empty bucket — the shape a Prometheus histogram exposition
   wants for its [le] series.  Empty histogram: []. *)
let cumulative_buckets h =
  let d = merged h in
  if d.d_n = 0 then []
  else begin
    let top = ref 0 in
    Array.iteri (fun i c -> if c > 0 then top := i) d.d_buckets;
    let acc = ref 0 in
    List.init (!top + 1) (fun i ->
        acc := !acc + d.d_buckets.(i);
        (bucket_hi i, !acc))
  end

let registered_sorted () =
  Mutex.protect reg_mutex (fun () ->
      let cs = Hashtbl.fold (fun _ c acc -> c :: acc) counters [] in
      let hs = Hashtbl.fold (fun _ h acc -> h :: acc) histograms [] in
      ( List.sort (fun a b -> compare a.c_name b.c_name) cs,
        List.sort (fun a b -> compare a.h_name b.h_name) hs,
        !shards ))

let fold_counters f init =
  let cs, _, ss = registered_sorted () in
  List.fold_left (fun acc c -> f c.c_name (sum_counter ss c) acc) init cs

let fold_histograms f init =
  let _, hs, ss = registered_sorted () in
  List.fold_left (fun acc h -> f h.h_name (summary_of (merged_hdata ss h)) acc) init hs

(* ---------- local snapshots (per-solver deltas under parallelism) ---------- *)

(* [local_snapshot]/[diff_since] window the *calling domain's* shard: the
   difference between two snapshots taken on one domain is exactly what ran
   there in between, however many other domains were recording concurrently.
   The CLI's parallel [profile] uses this to attribute metrics per solver.
   Counter deltas are exact.  Histogram deltas are exact in count, sum and
   buckets; min/max cannot be un-merged, so they are re-derived from the
   delta buckets at bucket resolution, clamped to the shard's observed
   range (exact whenever the snapshot was empty). *)

type snapshot = { snap_c : int array; snap_h : hdata option array }

let hdata_of_hshard hs =
  {
    d_n = hs.hn;
    d_sum = hs.hsum;
    d_lo = hs.hlo;
    d_hi = hs.hhi;
    d_buckets = Array.copy hs.hbuckets;
  }

let local_snapshot () =
  let s = local_shard () in
  {
    snap_c = Array.copy s.sc;
    snap_h = Array.map (Option.map hdata_of_hshard) s.sh;
  }

let diff_since snap =
  let s = local_shard () in
  let cs, hs, _ = registered_sorted () in
  let counter_deltas =
    List.filter_map
      (fun c ->
        let now = if c.c_id < Array.length s.sc then s.sc.(c.c_id) else 0 in
        let before = if c.c_id < Array.length snap.snap_c then snap.snap_c.(c.c_id) else 0 in
        if now <> before then Some (c.c_name, now - before) else None)
      cs
  in
  let hist_deltas =
    List.filter_map
      (fun h ->
        let now =
          if h.h_id < Array.length s.sh then Option.map hdata_of_hshard s.sh.(h.h_id) else None
        in
        match now with
        | None -> None
        | Some now ->
            let before =
              if h.h_id < Array.length snap.snap_h then snap.snap_h.(h.h_id) else None
            in
            let d =
              match before with
              | None -> now
              | Some b ->
                  let buckets = Array.mapi (fun i c -> c - b.d_buckets.(i)) now.d_buckets in
                  let lo = ref infinity and hi = ref neg_infinity in
                  Array.iteri
                    (fun i c ->
                      if c > 0 then begin
                        if bucket_lo i < !lo then lo := bucket_lo i;
                        if bucket_hi i > !hi then hi := bucket_hi i
                      end)
                    buckets;
                  {
                    d_n = now.d_n - b.d_n;
                    d_sum = now.d_sum -. b.d_sum;
                    d_lo = Float.max now.d_lo !lo;
                    d_hi = Float.min now.d_hi !hi;
                    d_buckets = buckets;
                  }
            in
            if d.d_n > 0 then Some (h.h_name, summary_of d) else None)
      hs
  in
  (counter_deltas, hist_deltas)

(* ---------- reset ---------- *)

let reset_all () =
  Mutex.protect reg_mutex (fun () ->
      List.iter
        (fun s ->
          Array.fill s.sc 0 (Array.length s.sc) 0;
          Array.iter
            (function
              | None -> ()
              | Some hs ->
                  hs.hn <- 0;
                  hs.hsum <- 0.0;
                  hs.hlo <- infinity;
                  hs.hhi <- neg_infinity;
                  Array.fill hs.hbuckets 0 num_buckets 0)
            s.sh)
        !shards)
