(* Process-global named counters and histograms.

   Instruments intern their handles once at module-initialization time
   ([counter]/[histogram] hit a hashtable); the per-event operations are a
   guarded in-place update.  Counters are plain (non-atomic) ints: profiling
   runs are expected to be single-domain (Parpool jobs = 1) — cross-domain
   increments may be lost, never crash. *)

type counter = { c_name : string; mutable count : int }

(* Power-of-two histogram: bucket 0 holds [0,1), bucket i >= 1 holds
   [2^(i-1), 2^i).  62 finite buckets cover every duration / path length we
   care about; the top bucket absorbs the rest. *)
let num_buckets = 64

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  buckets : int array;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.add counters name c;
      c

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        { h_name = name; n = 0; sum = 0.0; lo = infinity; hi = neg_infinity;
          buckets = Array.make num_buckets 0 }
      in
      Hashtbl.add histograms name h;
      h

let counter_name c = c.c_name
let histogram_name h = h.h_name

let incr c = if !Config.enabled then c.count <- c.count + 1
let add c n = if !Config.enabled then c.count <- c.count + n
let value c = c.count

let bucket_of v =
  if not (v >= 1.0) then 0 (* catches v < 1, nan *)
  else 1 + min (num_buckets - 2) (int_of_float (Float.log2 v))

let bucket_lo i = if i = 0 then 0.0 else Float.pow 2.0 (float_of_int (i - 1))
let bucket_hi i = Float.pow 2.0 (float_of_int i)

let observe h v =
  if !Config.enabled then begin
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.lo then h.lo <- v;
    if v > h.hi then h.hi <- v;
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1
  end

let count h = h.n
let sum h = h.sum
let mean h = if h.n = 0 then Float.nan else h.sum /. float_of_int h.n
let minimum h = if h.n = 0 then Float.nan else h.lo
let maximum h = if h.n = 0 then Float.nan else h.hi

(* Rank-interpolated quantile on the bucketed representation: locate the
   bucket containing rank q·(n−1), interpolate linearly inside it, and clamp
   to the exact observed range (so n equal observations answer that value
   for every q). *)
let quantile h ~q =
  if h.n = 0 then Float.nan
  else if not (q >= 0.0 && q <= 1.0) then invalid_arg "Metrics.quantile: q outside [0,1]"
  else begin
    let rank = q *. float_of_int (h.n - 1) in
    let raw = ref h.hi in
    let acc = ref 0 in
    (try
       for i = 0 to num_buckets - 1 do
         let c = h.buckets.(i) in
         if c > 0 then begin
           if rank < float_of_int (!acc + c) then begin
             let frac = (rank -. float_of_int !acc) /. float_of_int c in
             raw := bucket_lo i +. (frac *. (bucket_hi i -. bucket_lo i));
             raise Exit
           end;
           acc := !acc + c
         end
       done
     with Exit -> ());
    Float.min h.hi (Float.max h.lo !raw)
  end

type summary = {
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

let summary h =
  {
    s_count = h.n;
    s_sum = h.sum;
    s_min = minimum h;
    s_max = maximum h;
    s_mean = mean h;
    s_p50 = quantile h ~q:0.5;
    s_p90 = quantile h ~q:0.9;
    s_p99 = quantile h ~q:0.99;
  }

let sorted_by_name to_name tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> compare (to_name a) (to_name b))

let fold_counters f init =
  List.fold_left (fun acc c -> f c.c_name c.count acc) init (sorted_by_name (fun c -> c.c_name) counters)

let fold_histograms f init =
  List.fold_left
    (fun acc h -> f h.h_name (summary h) acc)
    init
    (sorted_by_name (fun h -> h.h_name) histograms)

let reset_counter c = c.count <- 0

let reset_histogram h =
  h.n <- 0;
  h.sum <- 0.0;
  h.lo <- infinity;
  h.hi <- neg_infinity;
  Array.fill h.buckets 0 num_buckets 0

let reset_all () =
  Hashtbl.iter (fun _ c -> reset_counter c) counters;
  Hashtbl.iter (fun _ h -> reset_histogram h) histograms
