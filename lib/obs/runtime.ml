(* OCaml 5 runtime-event correlation: subscribe to the runtime's own event
   ring (minor/major GC phases, domain lifecycle) and replay it into the
   Span ring, so GC pauses appear in the Chrome trace as dedicated tracks
   alongside engine/pool spans.

   Self-monitoring: [start] enables [Runtime_events] for this process and
   opens a cursor on its own ring; a host loop (the daemon, a bench driver)
   calls [poll] periodically to drain pending events.  Matching begin/end
   pairs become completed spans named ["gc.<phase>"], lifecycle events
   become instants named ["runtime.<event>"].  Both are recorded with
   [dom = track_offset + ring id], a range no real domain id reaches, which
   is how [Trace] knows to render them as "gc-ring-N" tracks instead of
   "domain-N" ones.  Runtime timestamps share the span clock's monotonic
   domain, so GC spans interleave correctly with request spans.

   Only the coarse phases are kept (whole minor/major collections, major
   slices, explicit GC calls, the stop-the-world leader) — the runtime emits
   dozens of sub-phases per collection and replaying them all would flush
   the span ring with noise. *)

module RE = Runtime_events

let track_offset = 1_000_000

let c_events = Metrics.counter "runtime.gc_events"
let c_lost = Metrics.counter "runtime.lost_events"

let keep_phase = function
  | "minor" | "major" | "major_slice" | "explicit_gc_minor" | "explicit_gc_major"
  | "explicit_gc_full_major" | "stw_leader" ->
      true
  | _ -> false

(* Whole collections sit at depth 0; slices and STW sections nest under the
   major span when one is open. *)
let depth_of = function "minor" | "major" -> 0 | _ -> 1

(* In-flight begin timestamps, keyed by (ring id, phase name).  Polling
   happens on one thread, so no lock is needed. *)
let in_flight : (int * string, int64) Hashtbl.t = Hashtbl.create 32

let on_begin ring ts phase =
  let name = RE.runtime_phase_name phase in
  if keep_phase name then Hashtbl.replace in_flight (ring, name) (RE.Timestamp.to_int64 ts)

let on_end ring ts phase =
  let name = RE.runtime_phase_name phase in
  if keep_phase name then
    match Hashtbl.find_opt in_flight (ring, name) with
    | None -> () (* begin predates the cursor; drop the torn span *)
    | Some start_ns ->
        Hashtbl.remove in_flight (ring, name);
        if !Config.enabled then begin
          Metrics.incr c_events;
          Span.push_record
            {
              Span.r_name = "gc." ^ name;
              start_ns;
              stop_ns = RE.Timestamp.to_int64 ts;
              depth = depth_of name;
              dom = track_offset + ring;
              flow = 0;
            }
            true
        end

let on_lifecycle ring ts lifecycle _arg =
  if !Config.enabled then begin
    let now = RE.Timestamp.to_int64 ts in
    Span.push_record
      {
        Span.r_name = "runtime." ^ RE.lifecycle_name lifecycle;
        start_ns = now;
        stop_ns = now;
        depth = 0;
        dom = track_offset + ring;
        flow = 0;
      }
      false
  end

let on_lost _ring n = Metrics.add c_lost n

type state = { cursor : RE.cursor; callbacks : RE.Callbacks.t }

let state : state option ref = ref None

let started () = !state <> None

let start () =
  if !state = None then begin
    RE.start ();
    let cursor = RE.create_cursor None in
    let callbacks =
      RE.Callbacks.create ~runtime_begin:on_begin ~runtime_end:on_end ~lifecycle:on_lifecycle
        ~lost_events:on_lost ()
    in
    state := Some { cursor; callbacks }
  end

let poll ?max () =
  match !state with
  | None -> 0
  | Some { cursor; callbacks } -> ( try RE.read_poll cursor callbacks max with Failure _ -> 0)

let stop () =
  match !state with
  | None -> ()
  | Some { cursor; _ } ->
      ignore (poll ());
      (try RE.free_cursor cursor with Failure _ -> ());
      Hashtbl.reset in_flight;
      state := None
