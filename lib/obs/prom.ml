(* Prometheus text exposition (text format 0.0.4) rendered from the live
   Metrics registry, plus caller-supplied gauges for state the registry does
   not hold (resident sessions, queue depth...).

   Mapping:
   - every counter becomes [<ns>_<name>_total];
   - every histogram becomes a cumulative-[le] bucket series
     [<ns>_<name>_bucket{le="..."}] (the log2 bucket upper bounds, closed by
     ["+Inf"]) with [_sum] and [_count] on the side;
   - span aggregates become two counters, [<ns>_span_<name>_seconds_total]
     and [<ns>_span_<name>_runs_total];
   - gauges are passed in as [(name, labels, value)] triples and grouped by
     family so each family is one contiguous block under one [# TYPE] line.

   [lint] checks the invariants a scraper relies on (every sample under a
   declared family, no duplicate families, strictly increasing [le] bounds
   with non-decreasing cumulative counts ending at [+Inf] = [_count]) and is
   run by the CLI's [client --metrics] path so CI fails on a malformed
   exposition. *)

let default_namespace = "semimatch"

let sanitize name =
  let ok c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = ':'
  in
  String.map (fun c -> if ok c then c else '_') name

let metric_name ?(namespace = default_namespace) name = namespace ^ "_" ^ sanitize name

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_to_string = function
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v)) ls)
      ^ "}"

(* Prometheus values are floats; print integers exactly and the rest with
   enough digits to round-trip. *)
let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

type gauge = string * (string * string) list * float

(* Registered metric descriptions, keyed by the raw (pre-namespace) metric
   name: ["server.requests"], ["span.portfolio"]...  Families without a
   registration fall back to a kind-derived default, so the exposition
   always carries one [# HELP] per family. *)
let descriptions : (string, string) Hashtbl.t = Hashtbl.create 64

let describe name desc = Hashtbl.replace descriptions name desc

(* HELP text escaping per the 0.0.4 exposition format: backslash and
   newline only (no quote escaping outside label values). *)
let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render ?(namespace = default_namespace) ?(gauges : gauge list = []) () =
  let buf = Buffer.create 4096 in
  let family ~raw ~kind ~default fam =
    let help = match Hashtbl.find_opt descriptions raw with Some d -> d | None -> default in
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" fam (escape_help help));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam kind)
  in
  let sample ?(labels = []) name v =
    Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name (labels_to_string labels) (fmt_value v))
  in
  (* counters *)
  Metrics.fold_counters
    (fun name v () ->
      let fam = metric_name ~namespace name ^ "_total" in
      family ~raw:name ~kind:"counter" ~default:(Printf.sprintf "Total %s events." name) fam;
      sample fam (float_of_int v))
    ();
  (* histograms: cumulative le buckets + sum + count *)
  Metrics.fold_histograms
    (fun name s () ->
      let fam = metric_name ~namespace name in
      family ~raw:name ~kind:"histogram"
        ~default:(Printf.sprintf "Distribution of %s observations." name)
        fam;
      let buckets = Metrics.cumulative_buckets (Metrics.histogram name) in
      List.iter
        (fun (le, cum) ->
          sample ~labels:[ ("le", fmt_value le) ] (fam ^ "_bucket") (float_of_int cum))
        buckets;
      sample ~labels:[ ("le", "+Inf") ] (fam ^ "_bucket") (float_of_int s.Metrics.s_count);
      sample (fam ^ "_sum") s.Metrics.s_sum;
      sample (fam ^ "_count") (float_of_int s.Metrics.s_count))
    ();
  (* span aggregates as a pair of counters *)
  Span.fold_aggregates
    (fun name ~count ~total_s () ->
      let raw = "span." ^ name in
      let base = metric_name ~namespace raw in
      let secs = base ^ "_seconds_total" and runs = base ^ "_runs_total" in
      family ~raw ~kind:"counter"
        ~default:(Printf.sprintf "Cumulative seconds spent in span %s." name)
        secs;
      sample secs total_s;
      family ~raw ~kind:"counter"
        ~default:(Printf.sprintf "Completed runs of span %s." name)
        runs;
      sample runs (float_of_int count))
    ();
  (* caller gauges, grouped by family in first-seen order *)
  let families = ref [] in
  List.iter
    (fun (name, labels, v) ->
      let fam = metric_name ~namespace name in
      match List.assoc_opt fam !families with
      | Some (_, cell) -> cell := (labels, v) :: !cell
      | None -> families := !families @ [ (fam, (name, ref [ (labels, v) ])) ])
    gauges;
  List.iter
    (fun (fam, (raw, cell)) ->
      family ~raw ~kind:"gauge" ~default:(Printf.sprintf "Current value of %s." raw) fam;
      List.iter (fun (labels, v) -> sample ~labels fam v) (List.rev !cell))
    !families;
  Buffer.contents buf

(* ---------- format lint ---------- *)

(* Split "name{labels} value" into (name, labels-or-"", value text).  Label
   values are quoted and may contain escaped quotes, so scan for the closing
   brace respecting string state. *)
let split_sample line =
  match String.index_opt line '{' with
  | None -> (
      match String.index_opt line ' ' with
      | None -> None
      | Some i ->
          Some
            ( String.sub line 0 i,
              "",
              String.trim (String.sub line (i + 1) (String.length line - i - 1)) ))
  | Some lb ->
      let name = String.sub line 0 lb in
      let n = String.length line in
      let rec close i in_str escaped =
        if i >= n then None
        else
          match line.[i] with
          | '\\' when in_str && not escaped -> close (i + 1) in_str true
          | '"' when not escaped -> close (i + 1) (not in_str) false
          | '}' when not in_str -> Some i
          | _ -> close (i + 1) in_str false
      in
      Option.bind (close (lb + 1) false false) (fun rb ->
          let labels = String.sub line (lb + 1) (rb - lb - 1) in
          let rest = String.trim (String.sub line (rb + 1) (n - rb - 1)) in
          if rest = "" then None else Some (name, labels, rest))

let label_value labels key =
  (* good enough for lint purposes: find [key="..."] and unescape nothing —
     le values never need escapes *)
  let needle = key ^ "=\"" in
  let n = String.length labels and m = String.length needle in
  let rec find i =
    if i + m > n then None
    else if String.sub labels i m = needle then
      let rec stop j = if j >= n || labels.[j] = '"' then j else stop (j + 1) in
      let j = stop (i + m) in
      Some (String.sub labels (i + m) (j - i - m))
    else find (i + 1)
  in
  find 0

let lint text =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let types : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let helps : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  (* per histogram family: le/cumulative pairs in order of appearance *)
  let hist_buckets : (string, (float * float) list ref) Hashtbl.t = Hashtbl.create 16 in
  let hist_counts : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
        match String.index_from_opt line 7 ' ' with
        | Some j when j > 7 ->
            let name = String.sub line 7 (j - 7) in
            if Hashtbl.mem helps name then err "line %d: duplicate # HELP for %s" ln name
            else Hashtbl.replace helps name ()
        | _ -> err "line %d: malformed # HELP line" ln
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' (String.sub line 7 (String.length line - 7)) with
        | [ name; kind ] ->
            if Hashtbl.mem types name then err "line %d: duplicate # TYPE for %s" ln name
            else if not (List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
            then err "line %d: unknown metric type %S for %s" ln kind name
            else begin
              if not (Hashtbl.mem helps name) then
                err "line %d: # TYPE %s without a preceding # HELP" ln name;
              Hashtbl.replace types name kind
            end
        | _ -> err "line %d: malformed # TYPE line" ln
      end
      else if String.length line >= 1 && line.[0] = '#' then () (* comments *)
      else
        match split_sample line with
        | None -> err "line %d: unparseable sample %S" ln line
        | Some (name, labels, value) -> (
            let v =
              if value = "+Inf" then Some infinity
              else if value = "-Inf" then Some neg_infinity
              else if value = "NaN" then Some Float.nan
              else float_of_string_opt value
            in
            match v with
            | None -> err "line %d: non-numeric value %S for %s" ln value name
            | Some v -> (
                (* resolve the declared family this sample belongs to *)
                let strip suffix =
                  let s = String.length suffix and n = String.length name in
                  if n > s && String.sub name (n - s) s = suffix then
                    Some (String.sub name 0 (n - s))
                  else None
                in
                let hist_fam suffix =
                  match strip suffix with
                  | Some fam when Hashtbl.find_opt types fam = Some "histogram" -> Some fam
                  | _ -> None
                in
                match Hashtbl.find_opt types name with
                | Some _ -> ()
                | None -> (
                    match (hist_fam "_bucket", hist_fam "_sum", hist_fam "_count") with
                    | Some fam, _, _ -> (
                        match label_value labels "le" with
                        | None -> err "line %d: %s_bucket sample without an \"le\" label" ln fam
                        | Some le ->
                            let le =
                              if le = "+Inf" then infinity
                              else Option.value ~default:Float.nan (float_of_string_opt le)
                            in
                            if Float.is_nan le then
                              err "line %d: unparseable le bound on %s" ln fam
                            else begin
                              let cell =
                                match Hashtbl.find_opt hist_buckets fam with
                                | Some c -> c
                                | None ->
                                    let c = ref [] in
                                    Hashtbl.replace hist_buckets fam c;
                                    c
                              in
                              cell := (le, v) :: !cell
                            end)
                    | None, Some _, _ -> ()
                    | None, None, Some fam -> Hashtbl.replace hist_counts fam v
                    | None, None, None ->
                        err "line %d: sample %s has no preceding # TYPE declaration" ln name)))
    )
    lines;
  Hashtbl.iter
    (fun fam kind ->
      if kind = "histogram" then begin
        match Hashtbl.find_opt hist_buckets fam with
        | None -> err "histogram %s has no _bucket samples" fam
        | Some cell ->
            let buckets = List.rev !cell in
            let rec check = function
              | (le1, c1) :: ((le2, c2) :: _ as rest) ->
                  if not (le1 < le2) then err "histogram %s: le bounds not increasing (%g, %g)" fam le1 le2;
                  if c1 > c2 then err "histogram %s: cumulative counts decrease at le=%g" fam le2;
                  check rest
              | _ -> ()
            in
            check buckets;
            (match List.rev buckets with
            | (last_le, last_c) :: _ ->
                if last_le <> infinity then err "histogram %s: bucket series does not end at +Inf" fam
                else (
                  match Hashtbl.find_opt hist_counts fam with
                  | Some count when count <> last_c ->
                      err "histogram %s: +Inf bucket (%g) disagrees with _count (%g)" fam last_c count
                  | _ -> ())
            | [] -> ())
      end)
    types;
  match List.rev !errors with [] -> Ok () | e :: _ as all -> Error (if List.length all = 1 then e else Printf.sprintf "%s (and %d more)" e (List.length all - 1))
