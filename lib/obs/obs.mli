(** Telemetry substrate: process-global counters and histograms, monotonic
    span timers with a bounded trace, and table/JSON-lines/CSV report sinks.

    Everything is off by default.  Probe points compile to one guarded
    in-place update; with {!enabled} false they allocate nothing and cost a
    load and a branch, so they can stay in release hot paths (the engine
    ablation bench verifies this stays in the noise).

    The substrate is domain-safe: every domain records into its own shard
    (found through [Domain.DLS]), so probes stay zero-cost single-threaded
    and lock-free under parallelism — no atomics, no contention, no lost
    increments.  Shards are merged at report time ({!Metrics.fold_counters},
    {!Metrics.summary}, the sinks); merge after the parallel section joins
    (as the [Parpool] drivers do) and the sums are exact.  The historical
    single-domain restriction ("run profiling with jobs = 1") is lifted. *)

val enabled : bool ref
(** The master switch shared by every probe.  Prefer {!set_enabled}. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero all counters and histograms, clear the span trace, aggregates and
    event log.  Registered names survive (handles stay valid). *)

val with_recording : (unit -> 'a) -> 'a
(** [with_recording f] resets, enables, runs [f], and restores the previous
    enabled state (telemetry recorded by [f] is kept for inspection). *)

module Metrics : sig
  type counter

  val counter : string -> counter
  (** Interned by name: same name, same counter, process-wide.  Call once at
      module initialization, not per event. *)

  val counter_name : counter -> string

  val incr : counter -> unit
  (** No-op unless {!enabled}.  Updates the calling domain's shard only:
      lock-free and contention-free from any number of domains. *)

  val add : counter -> int -> unit

  val value : counter -> int
  (** Sum over every domain's shard. *)

  val shard_values : counter -> int list
  (** The per-domain shard values behind {!value}, one per registered shard
      (domains that never recorded report 0), in no particular order.
      [value c = List.fold_left (+) 0 (shard_values c)] when quiescent. *)

  val shard_count : unit -> int
  (** Number of domain shards registered so far (a shard outlives its
      domain, so pool workers stay counted after joining). *)

  type histogram

  val histogram : string -> histogram
  (** Interned by name.  Log₂-bucketed: bucket 0 is [0,1), bucket [i ≥ 1] is
      [2^(i-1), 2^i); exact count/sum/min/max on the side. *)

  val histogram_name : histogram -> string

  val observe : histogram -> float -> unit
  (** No-op unless {!enabled}. *)

  val count : histogram -> int
  val sum : histogram -> float
  val mean : histogram -> float

  val minimum : histogram -> float
  val maximum : histogram -> float
  (** Exact observed extremes; [nan] when empty. *)

  val quantile : histogram -> q:float -> float
  (** Rank-interpolated quantile from the buckets, clamped to the exact
      observed [min, max] range.  [nan] when empty; raises
      [Invalid_argument] for [q] outside [0,1]. *)

  type summary = {
    s_count : int;
    s_sum : float;
    s_min : float;
    s_max : float;
    s_mean : float;
    s_p50 : float;
    s_p90 : float;
    s_p95 : float;
    s_p99 : float;
  }

  val summary : histogram -> summary

  val cumulative_buckets : histogram -> (float * int) list
  (** Merged log₂ buckets as (upper bound, cumulative count) pairs, through
      the highest non-empty bucket — the shape a Prometheus histogram
      exposition needs for its [le] series.  [[]] when empty. *)

  val fold_counters : (string -> int -> 'a -> 'a) -> 'a -> 'a
  (** Name-sorted, registered counters (including zeros), merged over all
      shards. *)

  val fold_histograms : (string -> summary -> 'a -> 'a) -> 'a -> 'a

  type snapshot
  (** A copy of the {e calling domain's} shard at one instant. *)

  val local_snapshot : unit -> snapshot

  val diff_since : snapshot -> (string * int) list * (string * summary) list
  (** What the calling domain recorded since the snapshot was taken —
      exact regardless of what other domains did in between, which is how
      the CLI's parallel [profile] attributes metrics to solvers sharing a
      pool.  Returns (non-zero counter deltas, non-empty histogram deltas),
      name-sorted.  Histogram delta count/sum/buckets (hence quantiles) are
      exact; min/max are bucket-resolution approximations unless the
      snapshot was empty for that histogram. *)

  val reset_all : unit -> unit
  (** Zero every shard of every metric; registered names and handles stay
      valid. *)
end

module Span : sig
  val now_ns : unit -> int64
  (** Monotonic clock (CLOCK_MONOTONIC), immune to NTP adjustments.  Always
      live, independent of {!enabled}. *)

  val ns_to_s : int64 -> float

  val time_s : (unit -> 'a) -> 'a * float
  (** [time_s f] runs [f] and additionally returns its monotonic wall time
      in seconds.  Always live — the experiment harness timing primitive. *)

  type t

  val enter : ?flow:int -> string -> t
  val exit : t -> unit
  (** Record a named span into the trace ring and per-name aggregates when
      {!enabled}; otherwise free.  Spans nest: depth is tracked.  [flow]
      (default 0 = none) tags the record with a cross-domain flow id so
      {!Obs.Trace} can draw an arrow from, say, a task's submission to its
      execution on another domain. *)

  val timed : ?flow:int -> string -> (unit -> 'a) -> 'a
  (** [timed name f] wraps [f] in {!enter}/{!exit} (exception-safe). *)

  val instant : ?flow:int -> string -> unit
  (** Record a zero-duration point-in-time marker (no aggregate update) —
      the flow-endpoint primitive.  No-op unless {!enabled}. *)

  val new_flows : int -> int
  (** [new_flows n] reserves [n] fresh process-unique nonzero flow ids and
      returns the first (use [first .. first + n - 1]); returns 0 when
      [n <= 0].  Ids never repeat within a process run. *)

  val with_depth_guard : (unit -> 'a) -> 'a
  (** Save the calling domain's nesting depth, run [f], restore it — so a
      span leaked inside [f] (entered but never exited) cannot skew the
      recorded depth of every later span on this domain.  {!Parpool.Pool}
      wraps each task it executes in this guard. *)

  type record = {
    r_name : string;
    start_ns : int64;
    stop_ns : int64;
    depth : int;
    dom : int;  (** id of the domain that recorded the span *)
    flow : int;  (** cross-domain flow id, 0 = none *)
  }

  val duration_s : record -> float

  val records : unit -> record list
  (** Oldest-first live contents of the trace ring (the most recent
      [capacity] completed spans). *)

  val recorded : unit -> int
  (** Total spans recorded since the last reset (may exceed capacity). *)

  val set_capacity : int -> unit
  (** Resize the trace ring (clears it).  Default 4096. *)

  type agg = { a_name : string; mutable a_count : int; mutable a_total_ns : int64 }

  val aggregates : unit -> agg list
  val fold_aggregates : (string -> count:int -> total_s:float -> 'a -> 'a) -> 'a -> 'a

  val reset : unit -> unit
  (** Clear the ring and the aggregates (all domains' records), but —
      by contract — only the {e calling} domain's nesting depth: depth is
      domain-local state that other domains may be mid-span on, so it
      cannot be zeroed remotely.  Long-lived worker domains must bound
      their own depth drift; the {!Parpool.Pool} does so by wrapping every
      task in {!with_depth_guard}, which makes a leaked span's skew end at
      the task boundary. *)
end

module Json : sig
  (** Minimal JSON used by the sinks and their round-trip tests — declared
      before {!Events} and {!Trace} so their signatures share this [t]. *)

  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val of_string : string -> t
  (** Raises [Failure] on malformed input. *)

  val member : string -> t -> t option
  val to_float : t -> float option
  val to_str : t -> string option
end

module Events : sig
  (** Leveled, domain-safe structured event log: bounded ring of
      timestamped key→value records emitted at coarse decision points
      (portfolio incumbent improvements, LB cutoffs, annealing temperature
      epochs, Hopcroft–Karp phases).  No-ops unless {!enabled}. *)

  type level = Debug | Info | Warn

  val level_name : level -> string
  val level_of_string : string -> level option

  val set_level : level -> unit
  (** Minimum level recorded by {!emit} (default [Debug]: record
      everything; the ring is bounded, so filtering is usually better done
      at render time). *)

  val get_level : unit -> level

  type field = string * Json.t

  val str : string -> string -> field
  val num : string -> float -> field
  val int : string -> int -> field
  val bool : string -> bool -> field

  val emit : ?level:level -> string -> field list -> unit
  (** Record one event (monotonic timestamp, emitting domain id) when
      {!enabled} and [level >= set_level]; otherwise one load and a
      branch. *)

  type record = {
    e_ts_ns : int64;
    e_dom : int;
    e_level : level;
    e_name : string;
    e_fields : field list;
  }

  val records : unit -> record list
  (** Oldest-first live contents of the ring. *)

  val recorded : unit -> int
  val set_capacity : int -> unit
  (** Resize the ring (clears it).  Default 8192.  When the ring laps
      itself, each overwritten record increments the ["events.dropped"]
      counter, so silent truncation is visible in the exposition. *)

  val to_json : record -> Json.t

  val render_jsonl : ?min_level:level -> ?since_ns:int64 -> unit -> string
  (** [since_ns] keeps only records at or after that monotonic instant —
      the tail a diagnostic bundle wants. *)

  val render_text : ?min_level:level -> unit -> string
  val write_jsonl : ?min_level:level -> ?since_ns:int64 -> string -> unit
  val reset : unit -> unit
end

module Trace : sig
  (** Chrome/Perfetto trace-event JSON assembled from the {!Span} ring and
      the {!Events} log: one track per recording domain ("X" slices with
      thread metadata), flow arrows pairing records that share a flow id,
      counter tracks sampled at span boundaries, and the event log as
      thread-scoped instants.  Open the written file in
      {{:https://ui.perfetto.dev}ui.perfetto.dev} or [chrome://tracing]. *)

  val to_json : ?since_ns:int64 -> unit -> Json.t
  (** [Obj] with a ["traceEvents"] list — parseable by {!Obs.Json}.
      [since_ns] slices the export to records alive at or after that
      monotonic instant (spans qualify by their stop time, so a span
      straddling the cut is kept). *)

  val render : ?since_ns:int64 -> unit -> string
  val write_file : ?since_ns:int64 -> string -> unit
end

module Prom : sig
  (** Prometheus text exposition (text format 0.0.4) over the live
      {!Metrics} registry and {!Span} aggregates: counters become
      [<ns>_<name>_total], histograms become cumulative-[le] bucket series
      with [_sum]/[_count], span aggregates become
      [<ns>_span_<name>_seconds_total] / [_runs_total] counter pairs.
      Scraped by [semimatch client --metrics] through the daemon's
      [metrics] protocol command. *)

  val default_namespace : string
  (** ["semimatch"]. *)

  val metric_name : ?namespace:string -> string -> string
  (** Namespaced, sanitized family name: dots (and anything else outside
      [[a-zA-Z0-9_:]]) become underscores, e.g. ["server.requests"] ↦
      ["semimatch_server_requests"]. *)

  type gauge = string * (string * string) list * float
  (** (metric name, labels, value) — the name is sanitized and namespaced
      by {!render}; samples sharing a name are grouped under one family. *)

  val describe : string -> string -> unit
  (** [describe name help] registers the [# HELP] text for the family
      derived from the raw metric name ([name] before namespacing:
      ["server.requests"], ["span.portfolio"]...).  Families without a
      registration get a kind-derived default, so every family always
      carries a HELP line. *)

  val render : ?namespace:string -> ?gauges:gauge list -> unit -> string
  (** The full exposition: every registered counter, histogram and span
      aggregate, plus the caller's gauges (live state the registry does not
      hold: resident sessions, queue depth...).  Each family is preceded by
      [# HELP] then [# TYPE]. *)

  val lint : string -> (unit, string) result
  (** Validate an exposition: every sample under a declared [# TYPE]
      family, each [# TYPE] preceded by a [# HELP] for the same family, no
      duplicate families, numeric values, and per histogram strictly
      increasing [le] bounds with non-decreasing cumulative counts ending
      at a [+Inf] bucket that agrees with [_count].  Returns the first
      violation. *)
end

module Runtime : sig
  (** OCaml 5 [Runtime_events] correlation: replay the runtime's own event
      ring (minor/major GC phases, domain lifecycle) into the {!Span} ring
      so GC pauses appear in the {!Trace} export as dedicated ["gc-ring-N"]
      tracks interleaved with application spans.

      [start] begins self-monitoring; a host loop calls [poll] periodically
      (the daemon does so every select round).  Replayed records only land
      in the ring while {!Obs.enabled} is set. *)

  val track_offset : int
  (** Span records with [dom >= track_offset] are runtime tracks:
      [dom = track_offset + ring id].  Far above any real domain id. *)

  val start : unit -> unit
  (** Enable [Runtime_events] for this process and open a self-monitoring
      cursor.  Idempotent. *)

  val started : unit -> bool

  val poll : ?max:int -> unit -> int
  (** Drain pending runtime events into the span ring ([max] caps the batch);
      returns the number of raw events read.  0 when not started. *)

  val stop : unit -> unit
  (** Final poll, then free the cursor.  Idempotent. *)
end

module Recorder : sig
  (** Flight recorder: keep the last N seconds of telemetry resident in
      bounded rings and write it out as a self-contained diagnostic bundle
      directory on demand.

      {!start} sizes the {!Span} and {!Events} rings for the window and
      enables telemetry; the host loop calls {!tick} periodically (the
      daemon does so every select round) to take bounded periodic
      Prometheus snapshots.  {!write_bundle} assembles a bundle directory:
      [manifest.json] (written last — its presence marks a complete
      bundle), [trace.json] (Chrome/Perfetto slice of the window),
      [events.jsonl] (event tail), [metrics.prom] (exposition at the
      trigger), [snapshots.jsonl] (the periodic ring) and any
      caller-supplied extra files (the offending request, a [Hyper.Io]
      instance dump for replay). *)

  type config = {
    window_s : float;  (** recording window the rings are sized for *)
    span_capacity : int;
    event_capacity : int;
    snapshot_every_s : float;
    max_snapshots : int;
  }

  val default_config : config
  (** 30s window, 16384-record rings, a snapshot every 5s, 64 kept. *)

  val start : ?config:config -> unit -> unit
  (** Resize the rings (clearing them), enable telemetry, begin
      snapshotting.  Raises [Invalid_argument] on non-positive sizes. *)

  val started : unit -> bool
  val config : unit -> config option
  val stop : unit -> unit

  val tick : ?prom:(unit -> string) -> unit -> bool
  (** Take a periodic snapshot when one is due; returns whether one was.
      [prom] supplies the exposition (default {!Prom.render}; the engine
      passes its gauge-enriched rendering) and is only evaluated when a
      snapshot is actually taken. *)

  type snapshot = { snap_ts_ns : int64; snap_prom : string }

  val snapshots : unit -> snapshot list
  (** Oldest first. *)

  val since_ns : unit -> int64
  (** Start of the current recording window ([Int64.min_int] — everything —
      when the recorder is not running). *)

  val format_tag : string
  (** ["semimatch.bundle/1"], the manifest ["format"] field. *)

  val write_bundle :
    dir:string ->
    trigger:string ->
    ?rule:string ->
    ?detail:(string * Json.t) list ->
    ?prom:string ->
    ?extra:(string * string) list ->
    version:string ->
    unit ->
    (string, string) result
  (** Write one bundle under [dir] (created as needed) into a fresh
      [bundle-<utc>-<seq>-<trigger>] subdirectory; returns its path.
      [rule]/[detail] land in the manifest, [prom] overrides the exposition
      text, [extra] is a list of [(filename, contents)] written alongside
      and listed in the manifest.  Any I/O failure is [Error]. *)
end

module Anomaly : sig
  (** Declarative anomaly triggers over the live telemetry.  The service
      feeds cheap observations; a rule that trips returns a {!firing}
      (subject to a per-rule-kind cooldown) which the caller turns into a
      {!Recorder.write_bundle}.

      Spec grammar, comma-separable ({!rules_of_string}):
      [latency:MS] / [latency:OP:MS], [overbudget:FACTOR], [queue:N],
      [busy:N@SECS], [heap:MB_PER_S@SECS], [stall:MS]. *)

  type rule =
    | Latency of { op : string option; ms : float }
        (** request end-to-end latency at or over [ms] (optionally only
            for one op) *)
    | Over_budget of { factor : float }
        (** a budgeted solve took [factor]× its budget or more *)
    | Queue_full of { pending : int }  (** pending queue at or over [pending] *)
    | Busy_burst of { count : int; window_s : float }
        (** [count] busy rejections within [window_s] seconds *)
    | Heap_growth of { mb_per_s : float; window_s : float }
        (** major-heap growth rate sustained over at least half of
            [window_s] *)
    | Stall of { ms : float }
        (** watchdog: no progress heartbeat for [ms] on an in-flight
            solve *)

  val rule_kind : rule -> string
  (** ["latency"], ["overbudget"], ["queue"], ["busy"], ["heap"],
      ["stall"] — the cooldown key and bundle trigger name. *)

  val rule_to_string : rule -> string
  (** Round-trips through {!rule_of_string}. *)

  val rule_of_string : string -> rule
  (** Raises [Failure] on a malformed spec. *)

  val rules_of_string : string -> rule list
  (** Comma-separated specs; empty segments are skipped. *)

  val default_rules : rule list
  (** [latency:1000, overbudget:4, busy:64@5, heap:512@10, stall:5000] —
      only clearly-pathological behaviour.  [queue] is capacity-dependent
      and therefore opt-in. *)

  type t

  val create : ?cooldown_s:float -> rule list -> t
  (** [cooldown_s] (default 5) is the minimum spacing between firings of
      the same rule kind — a stuck solve checked every 50ms must produce
      one bundle, not twenty. *)

  val rules : t -> rule list
  val firings : t -> int
  val last_firing : t -> (string * int64) option
  (** (rule spec, monotonic ns) of the most recent firing. *)

  val stall_ms : t -> float option
  (** Smallest [Stall] threshold, when one is configured. *)

  type firing = { f_rule : rule; f_ts_ns : int64; f_detail : (string * Json.t) list }
  (** Every firing also emits an ["anomaly.fired"] warn event. *)

  val observe_request : t -> op:string -> ms:float -> firing option
  val observe_solve : t -> op:string -> budget_ms:float -> elapsed_ms:float -> firing option
  val observe_queue : t -> pending:int -> firing option
  val observe_busy : t -> firing option

  val poll : ?heap_bytes:float -> t -> firing option
  (** Periodic heap-growth evaluation ([Gc.quick_stat] major-heap bytes;
      [heap_bytes] overrides the reading so tests can replay a synthetic
      growth curve). *)

  (** {2 Watchdog}

      Progress is a process-global monotonic heartbeat: every {!Span} exit
      and {!Events} emission stamps it (solver phases, portfolio
      incumbents, annealing epochs...), and the engine adds explicit
      {!beat}s at its own checkpoints.  {!solve_begin}/{!solve_end}
      bracket the in-flight request; {!check_stuck} is the cross-domain
      live check a background watchdog domain runs while the engine thread
      is stuck, {!solve_end} the same-thread post-hoc check (largest
      silent gap over the whole solve).  Both share cooldown state, so one
      stall yields one firing. *)

  val solve_begin : t -> op:string -> ?session:string -> request:string -> unit -> unit
  (** Capture the in-flight request (immutable strings, safe to bundle
      from the watchdog domain) and reset the gap tracking. *)

  val beat : t -> unit
  val solve_end : t -> firing option
  val check_stuck : t -> firing option

  type watchdog = {
    w_inflight : bool;
    w_op : string option;
    w_session : string option;
    w_silent_ms : float;  (** time since last observed progress (0 when idle) *)
    w_beats : int;
  }

  val watchdog : t -> watchdog
  (** The [health] op's watchdog status: in-memory reads only. *)
end

module Sink : sig
  type format = Table | Json | Csv

  val format_name : format -> string
  val format_of_string : string -> format option

  val render : ?label:string -> format -> string
  (** Snapshot of every registered counter, histogram summary and span
      aggregate.  [Json] is JSON lines: one object per metric with ["type"],
      ["name"] and kind-specific fields ({!Obs.Json.of_string} parses each
      line back).  [label] tags every row — used for per-algorithm
      snapshots in one report. *)

  val emit : ?label:string -> ?oc:out_channel -> format -> unit
  val write_file : ?label:string -> string -> format -> unit
end

