(* Report sinks: render the current Metrics + Span state as a human table,
   JSON lines (one object per metric — the machine format the CLI's
   [--stats=json] and the bench smoke artifact use), or CSV.

   [?label] tags every emitted row; the CLI's [profile] subcommand uses it to
   distinguish per-algorithm snapshots inside one report. *)

type format = Table | Json | Csv

let format_name = function Table -> "table" | Json -> "json" | Csv -> "csv"

let format_of_string = function
  | "table" -> Some Table
  | "json" -> Some Json
  | "csv" -> Some Csv
  | _ -> None

(* [nan] means "no data" (empty histogram min/mean, zero-count span mean).
   Each format gets a sentinel it can afford: the table prints "-", CSV
   leaves the cell empty (a numeric parser reads the column cleanly), and
   the JSON renderer never goes through here — [Json.to_string] emits
   non-finite numbers as [null], so every emitted line stays valid JSON. *)
let fmt_float ?(nan_as = "-") f =
  if not (Float.is_finite f) then nan_as
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

(* One flat row per metric; the three formats render the same rows. *)
type row = {
  kind : string; (* "counter" | "histogram" | "span" *)
  name : string;
  fields : (string * Json.t) list; (* kind-specific payload, emit order *)
}

let rows () =
  let counters =
    Metrics.fold_counters
      (fun name v acc -> { kind = "counter"; name; fields = [ ("value", Json.Num (float_of_int v)) ] } :: acc)
      []
  in
  let histograms =
    Metrics.fold_histograms
      (fun name s acc ->
        {
          kind = "histogram";
          name;
          fields =
            [
              ("count", Json.Num (float_of_int s.Metrics.s_count));
              ("sum", Json.Num s.Metrics.s_sum);
              ("min", Json.Num s.Metrics.s_min);
              ("max", Json.Num s.Metrics.s_max);
              ("mean", Json.Num s.Metrics.s_mean);
              ("p50", Json.Num s.Metrics.s_p50);
              ("p90", Json.Num s.Metrics.s_p90);
              ("p95", Json.Num s.Metrics.s_p95);
              ("p99", Json.Num s.Metrics.s_p99);
            ];
        }
        :: acc)
      []
  in
  let spans =
    Span.fold_aggregates
      (fun name ~count ~total_s acc ->
        {
          kind = "span";
          name;
          fields =
            [
              ("count", Json.Num (float_of_int count));
              ("total_s", Json.Num total_s);
              ("mean_s", Json.Num (if count = 0 then Float.nan else total_s /. float_of_int count));
            ];
        }
        :: acc)
      []
  in
  List.rev counters @ List.rev histograms @ List.rev spans

let json_field_to_string ?nan_as = function
  | Json.Num f -> fmt_float ?nan_as f
  | Json.Str s -> s
  | other -> Json.to_string other

let render_table ?label rows =
  let buf = Buffer.create 1024 in
  (match label with
  | Some l -> Buffer.add_string buf (Printf.sprintf "== %s ==\n" l)
  | None -> ());
  let section kind header =
    let rs = List.filter (fun r -> r.kind = kind) rows in
    if rs <> [] then begin
      Buffer.add_string buf (header ^ "\n");
      List.iter
        (fun r ->
          let payload =
            r.fields
            |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (json_field_to_string v))
            |> String.concat "  "
          in
          Buffer.add_string buf (Printf.sprintf "  %-44s %s\n" r.name payload))
        rs
    end
  in
  section "counter" "counters:";
  section "histogram" "histograms:";
  section "span" "spans:";
  if rows = [] then Buffer.add_string buf "(no metrics recorded)\n";
  Buffer.contents buf

let render_json ?label rows =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      let base = [ ("type", Json.Str r.kind); ("name", Json.Str r.name) ] in
      let base = match label with Some l -> ("label", Json.Str l) :: base | None -> base in
      Buffer.add_string buf (Json.to_string (Json.Obj (base @ r.fields)));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* CSV with a fixed header: kind-specific fields are mapped onto the union
   schema, absent cells stay empty.  Cells are RFC 4180-quoted when they
   contain a separator, quote or newline (metric names are clean ASCII, but
   user-supplied [?label]s are not guaranteed to be), and NaN cells are
   left empty rather than poisoning a numeric column. *)
let csv_columns = [ "value"; "count"; "sum"; "min"; "max"; "mean"; "p50"; "p90"; "p95"; "p99"; "total_s"; "mean_s" ]

let csv_quote cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell then begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else cell

let render_csv ?label rows =
  let buf = Buffer.create 1024 in
  let header = [ "type"; "name" ] @ csv_columns in
  let header = match label with Some _ -> "label" :: header | None -> header in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      let cell col =
        match List.assoc_opt col r.fields with
        | Some v -> json_field_to_string ~nan_as:"" v
        | None -> ""
      in
      let cells = [ r.kind; r.name ] @ List.map cell csv_columns in
      let cells = match label with Some l -> l :: cells | None -> cells in
      Buffer.add_string buf (String.concat "," (List.map csv_quote cells));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let render ?label fmt =
  let rows = rows () in
  match fmt with
  | Table -> render_table ?label rows
  | Json -> render_json ?label rows
  | Csv -> render_csv ?label rows

let emit ?label ?(oc = stdout) fmt = output_string oc (render ?label fmt)

let write_file ?label path fmt =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> emit ?label ~oc fmt)
