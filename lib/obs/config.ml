(* The single master switch.  Every probe is guarded by one load of this ref;
   with the flag off the hot paths reduce to a test-and-skip and allocate
   nothing. *)
let enabled = ref false

(* Process-global liveness heartbeat for the watchdog (Anomaly): every span
   exit and event emission stamps the monotonic clock here, so "the solver
   made progress" is observable from another domain without touching the
   mutex-guarded rings.  Always just two atomic stores; declared here (the
   bottom of the module graph) so Span and Events can bump it without a
   dependency cycle. *)
let heartbeat_ns = Atomic.make 0L
let heartbeats = Atomic.make 0

(* Largest gap between consecutive beats since the last [reset_gap]: the
   post-hoc stall evidence.  A solve that stalls and then recovers beats
   again before its bracket closes, so the tail gap alone forgets the
   stall — only the beat that ended the silence ever saw its length.
   Read-modify-write races between beating domains can under-record a
   concurrent gap; that is fine for diagnostics (the live watchdog domain
   is the authoritative detector). *)
let max_gap_ns = Atomic.make 0L

let beat now_ns =
  let prev = Atomic.exchange heartbeat_ns now_ns in
  (if Int64.compare prev 0L > 0 then
     let gap = Int64.sub now_ns prev in
     if Int64.compare gap (Atomic.get max_gap_ns) > 0 then Atomic.set max_gap_ns gap);
  Atomic.incr heartbeats

let reset_gap now_ns =
  Atomic.set heartbeat_ns now_ns;
  Atomic.set max_gap_ns 0L
