(* The single master switch.  Every probe is guarded by one load of this ref;
   with the flag off the hot paths reduce to a test-and-skip and allocate
   nothing. *)
let enabled = ref false
