(* Structured event log: leveled, timestamped key→value records in a bounded
   ring, emitted by the solvers at coarse decision points (an incumbent
   improvement, a lower-bound cutoff, a temperature epoch, a Hopcroft–Karp
   phase) — the "what happened when" companion to the "how much" counters of
   [Metrics] and the "how long" spans of [Span].

   Domain safety mirrors [Span]: events are coarse (never per edge), so a
   mutex-guarded shared ring is free in practice, and each record carries
   the id of the domain that emitted it.  Everything is gated on
   [Config.enabled] plus a minimum level; a disabled emit costs one load
   and a branch before the field list is even looked at. *)

type level = Debug | Info | Warn

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | _ -> None

(* Record everything by default: the ring is bounded and emits are coarse,
   so filtering is usually better done at render time. *)
let min_level = ref Debug

let set_level l = min_level := l
let get_level () = !min_level

type field = string * Json.t

let str k v : field = (k, Json.Str v)
let num k v : field = (k, Json.Num v)
let int k v : field = (k, Json.Num (float_of_int v))
let bool k v : field = (k, Json.Bool v)

type record = {
  e_ts_ns : int64;
  e_dom : int;
  e_level : level;
  e_name : string;
  e_fields : field list;
}

let default_capacity = 8192
let lock = Mutex.create ()
let ring = ref (Array.make default_capacity None)
let ring_next = ref 0
let ring_stored = ref 0

(* Overwrites of never-read records, mirroring [runtime.lost_events]: when
   the ring laps itself the oldest event silently vanishes from any later
   render, and a bundle's events tail is truncated.  The counter makes that
   truncation visible in the Prometheus exposition. *)
let c_dropped = Metrics.counter "events.dropped"
let () = Prom.describe "events.dropped" "Event-log ring overwrites of never-rendered records."

let emit ?(level = Info) name fields =
  if !Config.enabled && level_rank level >= level_rank !min_level then begin
    let r =
      {
        e_ts_ns = Span.now_ns ();
        e_dom = (Domain.self () :> int);
        e_level = level;
        e_name = name;
        e_fields = fields;
      }
    in
    Config.beat r.e_ts_ns;
    Mutex.protect lock (fun () ->
        let a = !ring in
        if a.(!ring_next) <> None then Metrics.incr c_dropped;
        a.(!ring_next) <- Some r;
        ring_next := (!ring_next + 1) mod Array.length a;
        Stdlib.incr ring_stored)
  end

(* Oldest-first live contents of the ring. *)
let records () =
  Mutex.protect lock (fun () ->
      let a = !ring in
      let cap = Array.length a in
      let len = min !ring_stored cap in
      let first = (!ring_next - len + cap) mod cap in
      List.init len (fun i -> a.((first + i) mod cap)))
  |> List.filter_map Fun.id

let recorded () = Mutex.protect lock (fun () -> !ring_stored)

let set_capacity n =
  if n <= 0 then invalid_arg "Events.set_capacity: capacity must be positive";
  Mutex.protect lock (fun () ->
      ring := Array.make n None;
      ring_next := 0;
      ring_stored := 0)

let reset () =
  Mutex.protect lock (fun () ->
      let a = !ring in
      Array.fill a 0 (Array.length a) None;
      ring_next := 0;
      ring_stored := 0)

(* Monotonic nanoseconds fit a float exactly up to 2^53 ≈ 104 days of
   uptime, so ts_ns survives the JSON round trip at full precision. *)
let to_json r =
  Json.Obj
    ([
       ("ts_ns", Json.Num (Int64.to_float r.e_ts_ns));
       ("dom", Json.Num (float_of_int r.e_dom));
       ("level", Json.Str (level_name r.e_level));
       ("event", Json.Str r.e_name);
     ]
    @ r.e_fields)

let render_jsonl ?(min_level = Debug) ?(since_ns = Int64.min_int) () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      if level_rank r.e_level >= level_rank min_level && Int64.compare r.e_ts_ns since_ns >= 0
      then begin
        Buffer.add_string buf (Json.to_string (to_json r));
        Buffer.add_char buf '\n'
      end)
    (records ());
  Buffer.contents buf

(* Human-readable lines: timestamps relative to the first kept record. *)
let render_text ?(min_level = Debug) () =
  let rs = List.filter (fun r -> level_rank r.e_level >= level_rank min_level) (records ()) in
  match rs with
  | [] -> ""
  | first :: _ ->
      let t0 = first.e_ts_ns in
      let buf = Buffer.create 1024 in
      List.iter
        (fun r ->
          let ms = Int64.to_float (Int64.sub r.e_ts_ns t0) /. 1e6 in
          Buffer.add_string buf
            (Printf.sprintf "%10.3fms %-5s d%-2d %-32s" ms (level_name r.e_level) r.e_dom r.e_name);
          List.iter
            (fun (k, v) ->
              let rendered =
                match v with
                | Json.Str s -> s
                | other -> Json.to_string other
              in
              Buffer.add_string buf (Printf.sprintf " %s=%s" k rendered))
            r.e_fields;
          Buffer.add_char buf '\n')
        rs;
      Buffer.contents buf

let write_jsonl ?min_level ?since_ns path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render_jsonl ?min_level ?since_ns ()))
