(* Bechamel benchmarks: one group per table/figure of the paper's evaluation
   plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe            # full bechamel run
     dune exec bench/main.exe -- --smoke # reduced telemetry smoke (runtest)

   Quality numbers — the table contents — come from bin/experiments_main.exe;
   this harness measures the running-time side: how expensive each heuristic,
   the exact algorithm and the substrates are on representative paper-sized
   instances, mirroring the "Average time" rows of Tables II/III and the
   timing discussion of Sec. V-B.

   --smoke runs a scaled-down grid with Obs telemetry enabled and writes
   BENCH_smoke.json (JSON lines: bench rows + the full metrics snapshot),
   validating every line through Obs.Json; `dune runtest` exercises it so
   the telemetry pipeline cannot rot.  It also exports the recorded spans
   as a Chrome trace (BENCH_trace.json, openable in ui.perfetto.dev).

   The regression gate rides on the same workloads:

     bench --write-baseline --baseline BENCH_baseline.json
     bench --smoke --baseline BENCH_baseline.json --check

   --check re-times every baseline group and fails (exit 1) when a group
   exceeds its median/MAD tolerance band (see Experiments.Bench_gate); on
   success it appends one row to BENCH_trajectory.json.  The undocumented
   --slowdown X flag multiplies the measured medians — the CI dry-run uses
   it to prove an injected 3x regression actually trips the gate. *)

open Bechamel
open Toolkit

module Gh = Semimatch.Greedy_hyper
module Gb = Semimatch.Greedy_bipartite

let find_spec name =
  List.find (fun s -> s.Experiments.Instances.name = name) (Experiments.Instances.paper_grid ())

let find_sp_spec name =
  List.find
    (fun s -> s.Experiments.Instances.sp_name = name)
    (Experiments.Instances.paper_grid_singleproc ())

(* Representative mid-size instances (n = 5120, p = 256): big enough that
   asymptotics show, small enough that slow variants still fit a quota. *)
let fg_spec = find_spec "FG-20-1-MP"
let hl_spec = find_spec "HLF-20-1-MP"
let fg_unit = Experiments.Instances.generate_multiproc ~seed:0 ~weights:Hyper.Weights.Unit fg_spec
let hl_unit = Experiments.Instances.generate_multiproc ~seed:0 ~weights:Hyper.Weights.Unit hl_spec
let fg_related =
  Experiments.Instances.generate_multiproc ~seed:0 ~weights:Hyper.Weights.Related fg_spec
let fg_random =
  Experiments.Instances.generate_multiproc ~seed:0 ~weights:Hyper.Weights.default_random fg_spec

(* Smaller instance for the quadratic-ish naive vector variants. *)
let fg_small =
  Experiments.Instances.generate_multiproc ~seed:0 ~weights:Hyper.Weights.Related
    (find_spec "FG-5-1-MP")

let sp_fewg = Experiments.Instances.generate_singleproc ~seed:0 (find_sp_spec "FG-20-1")
let sp_hilo = Experiments.Instances.generate_singleproc ~seed:0 (find_sp_spec "HLF-20-1")

let greedy_tests h =
  List.map
    (fun algo ->
      Test.make ~name:(Gh.short_name algo) (Staged.stage (fun () -> Gh.run algo h)))
    Gh.all

let table1 =
  Test.make_grouped ~name:"table1"
    [
      Test.make ~name:"generate-FG-20-1-MP"
        (Staged.stage (fun () ->
             Experiments.Instances.generate_multiproc ~seed:1 ~weights:Hyper.Weights.Unit fg_spec));
      Test.make ~name:"generate-HLF-20-1-MP"
        (Staged.stage (fun () ->
             Experiments.Instances.generate_multiproc ~seed:1 ~weights:Hyper.Weights.Unit hl_spec));
      Test.make ~name:"lower-bound-FG-20-1-MP"
        (Staged.stage (fun () -> Semimatch.Lower_bound.multiproc fg_unit));
    ]

let table2 =
  Test.make_grouped ~name:"table2-unweighted"
    (greedy_tests fg_unit
    @ [ Test.make ~name:"SGH-hilo" (Staged.stage (fun () -> Gh.run Gh.Sorted_greedy_hyp hl_unit)) ])

let table3 = Test.make_grouped ~name:"table3-related" (greedy_tests fg_related)
let table_random = Test.make_grouped ~name:"table8-random" (greedy_tests fg_random)

let singleproc =
  Test.make_grouped ~name:"singleproc"
    (List.map
       (fun algo -> Test.make ~name:(Gb.name algo) (Staged.stage (fun () -> Gb.run algo sp_fewg)))
       Gb.all
    @ [
        Test.make ~name:"exact-fewg"
          (Staged.stage (fun () -> Semimatch.Exact_unit.solve sp_fewg));
        Test.make ~name:"exact-hilo"
          (Staged.stage (fun () -> Semimatch.Exact_unit.solve sp_hilo));
      ])

let fig3 =
  let trap = Bipartite.Adversarial.sorted_greedy_trap ~k:12 in
  Test.make_grouped ~name:"fig3-adversarial"
    [
      Test.make ~name:"sorted-greedy-k12" (Staged.stage (fun () -> Gb.run Gb.Sorted trap));
      Test.make ~name:"expected-greedy-k12" (Staged.stage (fun () -> Gb.run Gb.Expected trap));
      Test.make ~name:"exact-k12" (Staged.stage (fun () -> Semimatch.Exact_unit.solve trap));
    ]

let ablation_vector =
  Test.make_grouped ~name:"ablation-vector-variant"
    [
      Test.make ~name:"VGH-merged"
        (Staged.stage (fun () -> Gh.run ~vector_variant:Gh.Merged Gh.Vector_greedy_hyp fg_small));
      Test.make ~name:"VGH-naive"
        (Staged.stage (fun () -> Gh.run ~vector_variant:Gh.Naive Gh.Vector_greedy_hyp fg_small));
      Test.make ~name:"EVG-merged"
        (Staged.stage (fun () ->
             Gh.run ~vector_variant:Gh.Merged Gh.Expected_vector_greedy_hyp fg_small));
      Test.make ~name:"EVG-naive"
        (Staged.stage (fun () ->
             Gh.run ~vector_variant:Gh.Naive Gh.Expected_vector_greedy_hyp fg_small));
    ]

let ablation_exact =
  (* HLF-20-4 has its optimum well above ceil(n/p), so the incremental scan
     pays for many infeasible deadlines that the bisection skips. *)
  let gap_instance = Experiments.Instances.generate_singleproc ~seed:0 (find_sp_spec "HLF-20-4") in
  Test.make_grouped ~name:"ablation-exact-search"
    [
      Test.make ~name:"incremental"
        (Staged.stage (fun () ->
             Semimatch.Exact_unit.solve ~strategy:Semimatch.Exact_unit.Incremental gap_instance));
      Test.make ~name:"bisection"
        (Staged.stage (fun () ->
             Semimatch.Exact_unit.solve ~strategy:Semimatch.Exact_unit.Bisection gap_instance));
      Test.make ~name:"harvey"
        (Staged.stage (fun () -> Semimatch.Harvey.solve gap_instance));
      Test.make ~name:"gen-hk"
        (Staged.stage (fun () -> Semimatch.Gen_hk.solve gap_instance));
      Test.make ~name:"dnc"
        (Staged.stage (fun () -> Semimatch.Divide_conquer.solve gap_instance));
    ]

let ablation_engines =
  let d = Semimatch.Lower_bound.singleproc_unit sp_hilo in
  let caps = Array.make sp_hilo.Bipartite.Graph.n2 d in
  Test.make_grouped ~name:"ablation-matching-engines"
    (List.map
       (fun engine ->
         Test.make ~name:(Matching.engine_name engine)
           (Staged.stage (fun () -> Matching.solve ~engine ~capacities:caps sp_hilo)))
       Matching.all_engines)

let ablation_local_search =
  let start = Gh.run Gh.Sorted_greedy_hyp fg_small in
  Test.make_grouped ~name:"ablation-local-search"
    [
      Test.make ~name:"refine-after-SGH"
        (Staged.stage (fun () -> Semimatch.Local_search.refine fg_small start));
    ]

let baselines =
  Test.make_grouped ~name:"baselines"
    [
      Test.make ~name:"random-assignment"
        (Staged.stage (fun () ->
             Semimatch.Randomized.random_assignment (Randkit.Prng.create ~seed:1) fg_small));
      Test.make ~name:"random-order-greedy"
        (Staged.stage (fun () ->
             Semimatch.Randomized.random_order_greedy (Randkit.Prng.create ~seed:1) fg_small));
    ]

let simulation =
  let assignment = Gh.run Gh.Sorted_greedy_hyp fg_small in
  Test.make_grouped ~name:"simulator"
    [
      Test.make ~name:"run-fifo" (Staged.stage (fun () -> Simulator.run fg_small assignment));
      Test.make ~name:"run-spt"
        (Staged.stage (fun () -> Simulator.run ~policy:Simulator.Spt fg_small assignment));
    ]

let all_tests =
  Test.make_grouped ~name:"semimatch"
    [
      table1;
      table2;
      table3;
      table_random;
      singleproc;
      fig3;
      ablation_vector;
      ablation_exact;
      ablation_engines;
      ablation_local_search;
      baselines;
      simulation;
    ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] all_tests in
  Analyze.all ols instance raw

(* --smoke: a seconds-scale telemetry exercise run from `dune runtest`.  It
   runs a 1/16-scale slice of the paper grid with Obs enabled, writes every
   result plus the full metrics snapshot to BENCH_smoke.json as JSON lines,
   then re-parses the artifact with Obs.Json to prove the machine format
   round-trips. *)
let smoke_out = "BENCH_smoke.json"
let trace_out = "BENCH_trace.json"

let smoke () =
  Obs.set_enabled true;
  Obs.reset ();
  let buf = Buffer.create 4096 in
  let add_line json =
    Buffer.add_string buf (Obs.Json.to_string json);
    Buffer.add_char buf '\n'
  in
  add_line
    (Obs.Json.Obj
       [
         ("type", Obs.Json.Str "meta");
         ("mode", Obs.Json.Str "smoke");
         ("scale", Obs.Json.Num 16.);
         ("seeds", Obs.Json.Num 2.);
       ]);
  (* Multiprocessor heuristics on one FewgManyg and one HiLo instance. *)
  let specs =
    [
      Experiments.Instances.scaled 16 (find_spec "FG-5-1-MP");
      Experiments.Instances.scaled 16 (find_spec "HLF-5-1-MP");
    ]
  in
  List.iter
    (fun spec ->
      let row = Experiments.Runner.run_row ~seeds:2 ~weights:Hyper.Weights.Unit spec in
      List.iter
        (fun res ->
          add_line
            (Obs.Json.Obj
               [
                 ("type", Obs.Json.Str "bench");
                 ("instance", Obs.Json.Str spec.Experiments.Instances.name);
                 ("algo", Obs.Json.Str (Gh.short_name res.Experiments.Runner.algo));
                 ("ratio", Obs.Json.Num res.Experiments.Runner.ratio);
                 ("time_s", Obs.Json.Num res.Experiments.Runner.time_s);
               ]))
        row.Experiments.Runner.results)
    specs;
  (* Exact unit-weight solver through every engine of the catalogue: the
     three binary searches plus the direct cost-reducing-path solvers. *)
  let sp_spec = Experiments.Instances.scaled_singleproc 16 (find_sp_spec "FG-20-1") in
  let sp = Experiments.Instances.generate_singleproc ~seed:0 sp_spec in
  List.iter
    (fun exact ->
      let name = Semimatch.Exact_unit.exact_engine_name exact in
      let s, dt =
        Experiments.Runner.time_it ~span:("bench.exact-" ^ name) (fun () ->
            Semimatch.Exact_unit.solve_with ~exact sp)
      in
      add_line
        (Obs.Json.Obj
           [
             ("type", Obs.Json.Str "bench");
             ("instance", Obs.Json.Str sp_spec.Experiments.Instances.sp_name);
             ("algo", Obs.Json.Str ("exact-" ^ name));
             ("makespan", Obs.Json.Num (float_of_int s.Semimatch.Exact_unit.makespan));
             ("guarantee",
              Obs.Json.Str (Semimatch.Exact_unit.guarantee_name s.Semimatch.Exact_unit.guarantee));
             ("time_s", Obs.Json.Num dt);
           ]))
    Semimatch.Exact_unit.all_exact_engines;
  (* Streaming tier: the same scaled SINGLEPROC shape as an edge stream,
     solved out of core.  This is the quality-ratio gate: a streamed
     makespan beyond its proven factor of the exact optimum, or solver
     state not beating the CSR it avoided, fails the smoke run. *)
  let stream_path = Filename.temp_file "bench-smoke-stream" ".sms" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove stream_path with Sys_error _ -> ())
    (fun () ->
      let rng = Randkit.Prng.create ~seed:0 in
      let w =
        Hyper.Stream_io.create_writer ~path:stream_path
          ~n1:sp_spec.Experiments.Instances.sp_n ~n2:sp_spec.Experiments.Instances.sp_p ()
      in
      ignore
        (Hyper.Generate.stream_sp rng ~family:Hyper.Generate.Fewg_manyg
           ~n:sp_spec.Experiments.Instances.sp_n ~p:sp_spec.Experiments.Instances.sp_p
           ~g:sp_spec.Experiments.Instances.sp_g ~d:sp_spec.Experiments.Instances.sp_d
           ~emit:(fun ~task ~proc ->
             Hyper.Stream_io.add w ~task ~procs:[| proc |] ~weight:1.0)
          : int);
      Hyper.Stream_io.close_writer w;
      let exact = Stream.Ingest.solve ~threshold_words:max_int stream_path in
      let opt = exact.Stream.Ingest.makespan in
      let csr_words =
        Option.value
          (Hyper.Stream_io.csr_estimate_words exact.Stream.Ingest.header)
          ~default:0
      in
      List.iter
        (fun (name, solver) ->
          let r = Hyper.Stream_io.open_reader stream_path in
          let sol, dt =
            Fun.protect
              ~finally:(fun () -> Hyper.Stream_io.close_reader r)
              (fun () ->
                Experiments.Runner.time_it ~span:("bench.stream-" ^ name) (fun () -> solver r))
          in
          let ratio = sol.Stream.Kr.makespan /. opt in
          if sol.Stream.Kr.makespan > (sol.Stream.Kr.factor *. opt) +. 1e-9 then
            failwith
              (Printf.sprintf
                 "bench --smoke: %s makespan %g beyond its proven factor %g of opt %g" name
                 sol.Stream.Kr.makespan sol.Stream.Kr.factor opt);
          if sol.Stream.Kr.state_words >= csr_words then
            failwith
              (Printf.sprintf
                 "bench --smoke: %s kept %d state words, not below the %d-word CSR it avoided"
                 name sol.Stream.Kr.state_words csr_words);
          add_line
            (Obs.Json.Obj
               [
                 ("type", Obs.Json.Str "stream");
                 ("instance", Obs.Json.Str sp_spec.Experiments.Instances.sp_name);
                 ("algo", Obs.Json.Str name);
                 ("makespan", Obs.Json.Num sol.Stream.Kr.makespan);
                 ("opt", Obs.Json.Num opt);
                 ("ratio", Obs.Json.Num ratio);
                 ("factor", Obs.Json.Num sol.Stream.Kr.factor);
                 ("passes", Obs.Json.Num (float_of_int sol.Stream.Kr.passes));
                 ("state_words", Obs.Json.Num (float_of_int sol.Stream.Kr.state_words));
                 ("csr_words", Obs.Json.Num (float_of_int csr_words));
                 ("time_s", Obs.Json.Num dt);
               ]))
        [ ("one-pass", Stream.Kr.one_pass); ("few-pass", Stream.Kr.few_pass) ]);
  (* Full telemetry snapshot recorded while the work above ran. *)
  Buffer.add_string buf (Obs.Sink.render ~label:"bench-smoke" Obs.Sink.Json);
  let oc = open_out smoke_out in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Buffer.output_buffer oc buf);
  (* Round-trip validation: every line must parse and carry a "type". *)
  let ic = open_in smoke_out in
  let lines = ref 0 and counters = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          incr lines;
          let json = Obs.Json.of_string line in
          (match Obs.Json.(member "type" json) with
          | Some (Obs.Json.Str t) -> if t = "counter" then incr counters
          | _ -> failwith (Printf.sprintf "%s:%d: row without a \"type\"" smoke_out !lines))
        done
      with End_of_file -> ());
  if !lines < 10 then failwith "bench --smoke: suspiciously short artifact";
  if !counters = 0 then failwith "bench --smoke: telemetry snapshot recorded no counters";
  (* The spans recorded during the run above, as a Chrome trace artifact. *)
  Obs.Trace.write_file trace_out;
  Printf.printf
    "bench --smoke: wrote %s (%d JSON lines, %d counters, all parsed back) and %s\n" smoke_out
    !lines !counters trace_out

(* --smoke --jobs J: the multicore acceptance check.  The portfolio grid —
   every solver of [Portfolio.default_solvers] on a batch of scaled paper
   instances — is run once sequentially and once fanned out over J domains
   (one instance per work item, each solved by the full sequential
   portfolio, so the per-instance result cannot depend on scheduling).  The
   two makespan vectors must be byte-identical; the wall-clock ratio is the
   speedup, recorded to BENCH_parallel.json.  On machines with at least 4
   effective cores a J >= 4 run must reach a 2x speedup. *)
let parallel_out = "BENCH_parallel.json"

let parallel_grid () =
  List.concat_map
    (fun name ->
      let spec = Experiments.Instances.scaled 8 (find_spec name) in
      List.init 4 (fun seed ->
          ( Printf.sprintf "%s#%d" spec.Experiments.Instances.name seed,
            Experiments.Instances.generate_multiproc ~seed ~weights:Hyper.Weights.Related spec )))
    [ "FG-5-1-MP"; "HLF-5-1-MP" ]

let run_parallel_grid ~jobs grid =
  let work = Array.of_list grid in
  let makespans, wall_s =
    Obs.Span.time_s (fun () ->
        Parpool.Pool.map ~jobs
          ~f:(fun (_, h) -> (Semimatch.Portfolio.solve ~jobs:1 h).Semimatch.Portfolio.best_makespan)
          work)
  in
  (Array.to_list makespans, wall_s)

let smoke_parallel jobs =
  let grid = parallel_grid () in
  let seq_makespans, seq_s = run_parallel_grid ~jobs:1 grid in
  let par_makespans, par_s = run_parallel_grid ~jobs grid in
  let render ms = String.concat "," (List.map (Printf.sprintf "%.17g") ms) in
  let identical = render seq_makespans = render par_makespans in
  if not identical then
    failwith
      (Printf.sprintf "bench --smoke --jobs %d: makespans diverged from the sequential run\n1: %s\n%d: %s"
         jobs (render seq_makespans) jobs (render par_makespans));
  let speedup = seq_s /. par_s in
  let cores = Domain.recommended_domain_count () in
  let buf = Buffer.create 1024 in
  let add_line json =
    Buffer.add_string buf (Obs.Json.to_string json);
    Buffer.add_char buf '\n'
  in
  add_line
    (Obs.Json.Obj
       [
         ("type", Obs.Json.Str "meta");
         ("mode", Obs.Json.Str "parallel");
         ("cores", Obs.Json.Num (float_of_int cores));
         ("instances", Obs.Json.Num (float_of_int (List.length grid)));
       ]);
  List.iter2
    (fun (name, _) m ->
      add_line
        (Obs.Json.Obj
           [
             ("type", Obs.Json.Str "makespan");
             ("instance", Obs.Json.Str name);
             ("makespan", Obs.Json.Num m);
           ]))
    grid seq_makespans;
  add_line
    (Obs.Json.Obj
       [ ("type", Obs.Json.Str "run"); ("jobs", Obs.Json.Num 1.); ("wall_s", Obs.Json.Num seq_s) ]);
  add_line
    (Obs.Json.Obj
       [
         ("type", Obs.Json.Str "run");
         ("jobs", Obs.Json.Num (float_of_int jobs));
         ("wall_s", Obs.Json.Num par_s);
       ]);
  add_line
    (Obs.Json.Obj
       [
         ("type", Obs.Json.Str "speedup");
         ("jobs", Obs.Json.Num (float_of_int jobs));
         ("speedup", Obs.Json.Num speedup);
         ("identical_makespans", Obs.Json.Bool identical);
       ]);
  let oc = open_out parallel_out in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Buffer.output_buffer oc buf);
  Printf.printf
    "bench --smoke --jobs %d: %d instances, %.3f s sequential, %.3f s parallel (%.2fx), makespans identical; wrote %s\n"
    jobs (List.length grid) seq_s par_s speedup parallel_out;
  if jobs >= 4 && cores >= 4 && speedup < 2.0 then
    failwith
      (Printf.sprintf "bench --smoke --jobs %d: speedup %.2fx below the 2x acceptance bar on a %d-core machine"
         jobs speedup cores)

let run_bechamel () =
  let results = benchmark () in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
  in
  let rows = List.sort compare rows in
  Printf.printf "%-60s %15s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 76 '-');
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
        else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
        else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else Printf.sprintf "%.3f s" (ns /. 1e9)
      in
      Printf.printf "%-60s %15s\n" name pretty)
    rows

(* ---------- benchmark-regression gate (Experiments.Bench_gate) ---------- *)

module Gate = Experiments.Bench_gate

let trajectory_out = "BENCH_trajectory.json"

(* Crash-recovery time is gated like solver time: a persist directory with
   a checkpointed session plus a journal suffix of mutations is built once,
   and the thunk times the full restart path — checkpoint load, journal
   decode, replay through the engine, feasibility verify. *)
let gate_recovery_workload () =
  let dir = Filename.temp_file "bench-recovery" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  at_exit (fun () ->
      try
        Array.iter
          (fun n ->
            let p = Filename.concat dir n in
            if Sys.is_directory p then begin
              Array.iter (fun m -> Sys.remove (Filename.concat p m)) (Sys.readdir p);
              Unix.rmdir p
            end
            else Sys.remove p)
          (Sys.readdir dir);
        Unix.rmdir dir
      with Sys_error _ | Unix.Unix_error _ -> ());
  let rng = Randkit.Prng.create ~seed:7 in
  let h =
    Hyper.Generate.generate rng ~family:Hyper.Generate.Fewg_manyg ~n:200 ~p:32 ~dv:3 ~dh:4
      ~g:4 ~weights:Hyper.Weights.Unit
  in
  let persist, _ = Server.Persist.open_ ~dir ~policy:Server.Journal.Never ~version:"bench" in
  let lb = Server.Loopback.create ~persist () in
  let req fields = ignore (Server.Loopback.request lb (Obs.Json.to_string (Obs.Json.Obj fields))) in
  let module J = Obs.Json in
  req [ ("op", J.Str "load"); ("session", J.Str "r"); ("instance", J.Str (Hyper.Io.to_string h)) ];
  req [ ("op", J.Str "checkpoint") ];
  for i = 0 to 49 do
    if i mod 3 = 2 then req [ ("op", J.Str "remove_task"); ("session", J.Str "r"); ("task", J.Num (float_of_int i)) ]
    else
      req
        [
          ("op", J.Str "add_task"); ("session", J.Str "r");
          ("configs",
           J.List
             [
               J.Obj
                 [
                   ("procs", J.List [ J.Num (float_of_int (i mod 32)); J.Num (float_of_int ((i + 7) mod 32)) ]);
                   ("weight", J.Num 1.0);
                 ];
             ]);
        ]
  done;
  (* Close the journal without a final checkpoint, so the thunk replays a
     genuine checkpoint + journal-suffix recovery, not checkpoint-only. *)
  Server.Persist.close persist;
  ( "recovery/ckpt+journal-50",
    fun () ->
      let r = Server.Persist.load dir in
      let engine = Server.Engine.create () in
      ignore (Server.Engine.recover engine r : Server.Engine.recovery_info) )

(* Streaming-tier gates.  The generator-throughput group times producing a
   SINGLEPROC edge stream straight from the generator (no in-core graph);
   the solver groups time the one-/few-pass Konrad–Rosén solvers over the
   file the first group wrote.  Pre-written once so the solver thunks time
   pure streaming, not generation. *)
let gate_stream_workloads () =
  let path = Filename.temp_file "bench-stream" ".sms" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  let write () =
    let rng = Randkit.Prng.create ~seed:3 in
    let w = Hyper.Stream_io.create_writer ~path ~n1:4000 ~n2:250 () in
    ignore
      (Hyper.Generate.stream_sp rng ~family:Hyper.Generate.Fewg_manyg ~n:4000 ~p:250 ~g:10
         ~d:5 ~emit:(fun ~task ~proc ->
           Hyper.Stream_io.add w ~task ~procs:[| proc |] ~weight:1.0)
        : int);
    Hyper.Stream_io.close_writer w
  in
  write ();
  let solve f () =
    let r = Hyper.Stream_io.open_reader path in
    Fun.protect
      ~finally:(fun () -> Hyper.Stream_io.close_reader r)
      (fun () -> ignore (f r : Stream.Kr.solution))
  in
  [
    ("stream/gen-sp-write-4000x250", write);
    ("stream/one-pass-4000x250", solve Stream.Kr.one_pass);
    ("stream/few-pass-4000x250", solve Stream.Kr.few_pass);
  ]

(* The gated workloads mirror the smoke groups: the two scaled paper
   instances through every multiprocessor heuristic, plus the exact solver
   through each matching engine.  Instances are generated up front so the
   thunks time pure solving. *)
let gate_workloads () =
  let heuristics =
    List.concat_map
      (fun name ->
        let spec = Experiments.Instances.scaled 16 (find_spec name) in
        let h = Experiments.Instances.generate_multiproc ~seed:0 ~weights:Hyper.Weights.Unit spec in
        List.map
          (fun algo ->
            ( Printf.sprintf "%s/%s" spec.Experiments.Instances.name (Gh.short_name algo),
              fun () -> ignore (Gh.run algo h) ))
          Gh.all)
      [ "FG-5-1-MP"; "HLF-5-1-MP" ]
  in
  let sp_spec = Experiments.Instances.scaled_singleproc 16 (find_sp_spec "FG-20-1") in
  let sp = Experiments.Instances.generate_singleproc ~seed:0 sp_spec in
  let exact =
    List.map
      (fun exact ->
        ( Printf.sprintf "%s/exact-%s" sp_spec.Experiments.Instances.sp_name
            (Semimatch.Exact_unit.exact_engine_name exact),
          fun () -> ignore (Semimatch.Exact_unit.solve_with ~exact sp) ))
      Semimatch.Exact_unit.all_exact_engines
  in
  heuristics @ exact @ [ gate_recovery_workload () ] @ gate_stream_workloads ()

let gate_write_baseline path =
  (* Telemetry off: the gate times un-instrumented code, and must do so
     identically at baseline-write and check time. *)
  Obs.set_enabled false;
  let b = Gate.baseline_of_workloads (gate_workloads ()) in
  Gate.write_baseline path b;
  Printf.printf "bench --write-baseline: wrote %s (%d groups, calib %.1fms)\n" path
    (List.length b.Gate.b_groups) (1e3 *. b.Gate.b_calib_s)

let gate_check ?slowdown path =
  Obs.set_enabled false;
  let b =
    (* Unreadable or malformed baseline: one-line error, exit 2, no
       backtrace — same contract as the CLI's user-error paths. *)
    try Gate.load_baseline path with
    | Sys_error msg | Failure msg ->
        Printf.eprintf "bench: cannot load baseline %s: %s\n" path msg;
        exit 2
  in
  let verdicts, calib_s = Gate.check ?slowdown b (gate_workloads ()) in
  print_string (Gate.render verdicts);
  if Gate.all_pass verdicts then begin
    Gate.append_trajectory trajectory_out ~calib_s verdicts;
    Printf.printf "bench --check: %d groups within tolerance of %s; appended %s\n"
      (List.length verdicts) path trajectory_out
  end
  else begin
    Printf.eprintf "bench --check: benchmark regression against %s (see table above)\n" path;
    exit 1
  end

(* ---------- ad-hoc argv parsing (this is not a cmdliner binary) ---------- *)

let flag_value name =
  let v = ref None in
  Array.iteri
    (fun i a -> if a = name && i + 1 < Array.length Sys.argv then v := Some Sys.argv.(i + 1))
    Sys.argv;
  !v

let has_flag name = Array.exists (fun a -> a = name) Sys.argv
let parsed_jobs () = Option.bind (flag_value "--jobs") int_of_string_opt

let () =
  let baseline = flag_value "--baseline" in
  let slowdown = Option.bind (flag_value "--slowdown") float_of_string_opt in
  let require_baseline what =
    match baseline with
    | Some path -> path
    | None ->
        Printf.eprintf "bench %s requires --baseline FILE\n" what;
        exit 2
  in
  if has_flag "--write-baseline" then gate_write_baseline (require_baseline "--write-baseline")
  else begin
    if has_flag "--smoke" then begin
      smoke ();
      Option.iter (fun jobs -> if jobs >= 1 then smoke_parallel jobs) (parsed_jobs ())
    end;
    if has_flag "--check" then gate_check ?slowdown (require_baseline "--check")
    else if not (has_flag "--smoke") then run_bechamel ()
  end
