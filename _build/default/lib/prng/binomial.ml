(* Binomial(n, p) by inversion of the CDF: walk the probability masses
   using the recurrence pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p).
   Numerically safe for the small n (<= tens of thousands) and moderate means
   used by the generators.  For p > 1/2 we sample the complement to keep the
   walk short and the masses well-scaled. *)

let sample_direct rng ~trials ~p =
  if p <= 0.0 then 0
  else if p >= 1.0 then trials
  else begin
    let q = 1.0 -. p in
    let u = ref (Prng.float rng 1.0) in
    (* pmf(0) = q^n, computed in log-space to survive large n. *)
    let log_pmf0 = float_of_int trials *. log q in
    let pmf = ref (exp log_pmf0) in
    let k = ref 0 in
    let ratio = p /. q in
    while !u > !pmf && !k < trials do
      u := !u -. !pmf;
      pmf := !pmf *. float_of_int (trials - !k) /. float_of_int (!k + 1) *. ratio;
      incr k
    done;
    !k
  end

let sample rng ~trials ~p =
  if trials < 0 then invalid_arg "Binomial.sample: negative trials";
  if p < 0.0 || p > 1.0 then invalid_arg "Binomial.sample: p outside [0,1]";
  if p > 0.5 then trials - sample_direct rng ~trials ~p:(1.0 -. p)
  else sample_direct rng ~trials ~p

let sample_mean rng ~mean ~trials =
  if trials <= 0 then invalid_arg "Binomial.sample_mean: trials must be positive";
  if mean < 0.0 || mean > float_of_int trials then
    invalid_arg "Binomial.sample_mean: mean outside [0, trials]";
  sample rng ~trials ~p:(mean /. float_of_int trials)
