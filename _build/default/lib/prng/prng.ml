(* xoshiro256** by Blackman & Vigna, seeded via splitmix64.  Chosen over
   Stdlib.Random for cross-version output stability: instance generation must
   be bit-reproducible so that Table I statistics are stable. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  (* xoshiro256** is ill-defined on the all-zero state; splitmix64 cannot
     produce four consecutive zeros, so this is unreachable, but we guard to
     keep the invariant local. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (next_int64 t) in
  create ~seed

let bits30 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

(* Non-negative 62-bit value. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits62 t land (bound - 1)
  else begin
    (* Rejection sampling on the top of the 62-bit range for exact
       uniformity. *)
    let max62 = (1 lsl 62) - 1 in
    let limit = max62 - (max62 mod bound) in
    let rec draw () =
      let v = bits62 t in
      if v >= limit then draw () else v mod bound
    in
    draw ()
  end

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.compare (Int64.logand (next_int64 t) 1L) 0L <> 0

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~k ~n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: for j = n-k .. n-1, insert a uniform element of
     [0, j], replacing collisions by j itself. *)
  let module S = Set.Make (Int) in
  let seen = ref S.empty in
  for j = n - k to n - 1 do
    let v = int t (j + 1) in
    if S.mem v !seen then seen := S.add j !seen else seen := S.add v !seen
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  S.iter
    (fun v ->
      out.(!i) <- v;
      incr i)
    !seen;
  out

let sample_with_replacement t ~k ~n =
  if k < 0 || n <= 0 then invalid_arg "Prng.sample_with_replacement";
  Array.init k (fun _ -> int t n)
