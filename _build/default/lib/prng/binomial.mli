(** Binomial sampling for the degree distributions of the FewgManyg bipartite
    generator and the first step of the MULTIPROC hypergraph generator
    (paper Sec. V-A: vertex degrees are "sampled from a binomial distribution
    with mean d"). *)

val sample : Prng.t -> trials:int -> p:float -> int
(** [sample rng ~trials ~p] draws Binomial(trials, p).  Exact inversion for
    small [trials * p]; BTPE-free normal-approximation-with-correction is
    deliberately avoided: [trials] in this code base is at most a few
    thousand, so inversion stays cheap and exact. *)

val sample_mean : Prng.t -> mean:float -> trials:int -> int
(** [sample_mean rng ~mean ~trials] draws Binomial(trials, mean/trials), the
    paper's "binomial with mean d" convention.  Requires
    [0 <= mean <= trials]. *)
