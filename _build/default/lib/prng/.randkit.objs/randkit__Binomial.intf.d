lib/prng/binomial.mli: Prng
