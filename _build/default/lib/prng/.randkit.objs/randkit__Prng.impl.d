lib/prng/prng.ml: Array Int Int64 Set
