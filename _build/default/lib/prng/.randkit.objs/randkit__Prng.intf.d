lib/prng/prng.mli:
