lib/prng/binomial.ml: Prng
