(** Deterministic pseudo-random number generation for reproducible
    experiments.

    The generator is xoshiro256** seeded through splitmix64, so a single
    integer seed expands to a full 256-bit state.  Every experiment in this
    repository threads an explicit [t] value; there is no global state, which
    keeps instance generation reproducible across runs and machines. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed] using
    splitmix64 state expansion.  Different seeds give independent streams. *)

val copy : t -> t
(** [copy t] is a generator with identical state evolving independently. *)

val split : t -> t
(** [split t] draws a fresh seed from [t] and creates a new independent
    generator from it.  Use to derive per-instance streams from a master
    stream without correlating them. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of xoshiro256**. *)

val bits30 : t -> int
(** 30 uniformly random non-negative bits, as used by sampling helpers. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive and
    at most [2^62].  Uses rejection sampling, hence exactly uniform. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in [\[lo, hi\]] inclusive.  Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)] with 53-bit resolution. *)

val bool : t -> bool
(** A fair coin flip. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [sample_without_replacement t ~k ~n] draws [k] distinct integers uniformly
    from [\[0, n)], in no particular order.  Requires [0 <= k <= n].  Uses
    Floyd's algorithm: O(k) expected time and memory. *)

val sample_with_replacement : t -> k:int -> n:int -> int array
(** [k] integers uniform in [\[0, n)], possibly repeating. *)
