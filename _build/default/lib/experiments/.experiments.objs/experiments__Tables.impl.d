lib/experiments/tables.ml: Array Buffer List Printf String
