lib/experiments/online.ml: Array Bipartite Ds Instances List Printf Randkit Semimatch Tables
