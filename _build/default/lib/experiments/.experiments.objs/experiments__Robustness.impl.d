lib/experiments/robustness.ml: Array Ds Hashtbl Hyper List Printf Randkit Semimatch Tables
