lib/experiments/instances.ml: Bipartite Hashtbl Hyper List Printf Randkit
