lib/experiments/ablations.mli: Hyper Instances
