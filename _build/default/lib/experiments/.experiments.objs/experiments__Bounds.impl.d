lib/experiments/bounds.ml: Array Ds Float Hyper Instances List Printf Semimatch Tables
