lib/experiments/robustness.mli: Hyper Semimatch
