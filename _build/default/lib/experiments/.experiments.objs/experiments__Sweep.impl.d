lib/experiments/sweep.ml: Array Ds Float Hyper Instances List Printf Semimatch String Tables
