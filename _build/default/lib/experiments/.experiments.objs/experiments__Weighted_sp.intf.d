lib/experiments/weighted_sp.mli: Semimatch
