lib/experiments/runner.ml: Array Buffer Ds Hyper Instances List Parpool Printf Semimatch Tables Unix
