lib/experiments/bounds.mli: Hyper Instances
