lib/experiments/tables.mli:
