lib/experiments/sp_runner.mli: Instances Matching Semimatch
