lib/experiments/hardness.mli: Randkit Semimatch
