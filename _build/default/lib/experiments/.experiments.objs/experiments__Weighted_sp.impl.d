lib/experiments/weighted_sp.ml: Array Bipartite Ds List Printf Randkit Semimatch Tables
