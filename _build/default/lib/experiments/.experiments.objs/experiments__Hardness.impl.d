lib/experiments/hardness.ml: Array Fun List Printf Randkit Semimatch Tables
