lib/experiments/instances.mli: Bipartite Hyper
