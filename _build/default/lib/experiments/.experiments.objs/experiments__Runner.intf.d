lib/experiments/runner.mli: Hyper Instances Semimatch
