lib/experiments/online.mli: Instances
