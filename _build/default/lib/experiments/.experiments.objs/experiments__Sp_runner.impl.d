lib/experiments/sp_runner.ml: Array Ds Instances List Parpool Printf Semimatch Tables Unix
