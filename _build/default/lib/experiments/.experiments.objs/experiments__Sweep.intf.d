lib/experiments/sweep.mli: Hyper Semimatch
