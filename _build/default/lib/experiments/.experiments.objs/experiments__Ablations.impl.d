lib/experiments/ablations.ml: Array Ds Hyper Instances List Matching Printf Randkit Semimatch String Tables Unix
