let check_arity ~arity rows =
  List.iter
    (fun r -> if List.length r <> arity then invalid_arg "Tables: row arity mismatch")
    rows

let render ~header ~rows ?(footer = []) () =
  let arity = List.length header in
  check_arity ~arity rows;
  check_arity ~arity footer;
  let all = header :: (rows @ footer) in
  let widths = Array.make arity 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  let pad i cell =
    let w = widths.(i) in
    if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell
  in
  let emit_row r =
    Buffer.add_string buf (String.concat "  " (List.mapi pad r));
    Buffer.add_char buf '\n'
  in
  let rule () =
    let total = Array.fold_left ( + ) 0 widths + (2 * (arity - 1)) in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  emit_row header;
  rule ();
  List.iter emit_row rows;
  if footer <> [] then begin
    rule ();
    List.iter emit_row footer
  end;
  Buffer.contents buf

let escape_csv field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let csv ~header ~rows =
  check_arity ~arity:(List.length header) rows;
  let line r = String.concat "," (List.map escape_csv r) in
  String.concat "\n" (List.map line (header :: rows)) ^ "\n"

let fmt_ratio r = Printf.sprintf "%.2f" r
let fmt_time t = Printf.sprintf "%.3f" t
