module Gh = Semimatch.Greedy_hyper

type family = Uniform | Powerlaw of float

let family_label = function
  | Uniform -> "uniform"
  | Powerlaw alpha -> Printf.sprintf "zipf(%.1f)" alpha

type row = {
  label : string;
  family : family;
  weights : Hyper.Weights.t;
  lb : float;
  ratios : (Gh.algorithm * float) list;
}

let algorithms = Gh.all

let run_row ?(seeds = 3) ?(n = 1280) ?(p = 256) ?(dv = 5) ?(dh = 10) ~family ~weights () =
  let generate seed =
    let rng = Randkit.Prng.create ~seed:(seed + Hashtbl.hash (family_label family)) in
    match family with
    | Uniform -> Hyper.Generate.generate_uniform rng ~n ~p ~dv ~dh ~weights
    | Powerlaw alpha -> Hyper.Generate.generate_powerlaw rng ~n ~p ~dv ~dh ~alpha ~weights
  in
  let replicates = List.init seeds generate in
  let lbs = List.map Semimatch.Lower_bound.multiproc replicates in
  let ratios =
    List.map
      (fun algo ->
        let rs = List.map2 (fun h lb -> Gh.makespan algo h /. lb) replicates lbs in
        (algo, Ds.Stats.median (Array.of_list rs)))
      algorithms
  in
  {
    label = Printf.sprintf "%s-%s" (family_label family) (Hyper.Weights.name weights);
    family;
    weights;
    lb = Ds.Stats.median (Array.of_list lbs);
    ratios;
  }

let run ?seeds () =
  List.concat_map
    (fun family ->
      List.map
        (fun weights -> run_row ?seeds ~family ~weights ())
        [ Hyper.Weights.Unit; Hyper.Weights.Related ])
    [ Uniform; Powerlaw 0.8; Powerlaw 1.5 ]

let render rows =
  let header = [ "Family"; "LB" ] @ List.map Gh.short_name algorithms @ [ "best" ] in
  let body =
    List.map
      (fun r ->
        let best =
          fst
            (List.fold_left
               (fun (ba, bx) (a, x) -> if x < bx then (a, x) else (ba, bx))
               (List.hd r.ratios |> fun (a, x) -> (a, x))
               (List.tl r.ratios))
        in
        [ r.label; Printf.sprintf "%.4g" r.lb ]
        @ List.map (fun (_, x) -> Tables.fmt_ratio x) r.ratios
        @ [ Gh.short_name best ])
      rows
  in
  "Robustness: heuristic quality on off-paper instance families (n=1280, p=256):\n\n"
  ^ Tables.render ~header ~rows:body ()
