(** SINGLEPROC-UNIT experiment driver (paper Sec. V-B).

    Runs the four bipartite greedy heuristics and the exact algorithm on the
    HiLo / FewgManyg bipartite grid, reporting the median optimal makespan,
    each heuristic's median makespan/optimal ratio, and mean times.  The
    paper only summarizes these results in prose (details live in the
    technical report); this runner regenerates the full table backing that
    summary. *)

type algo_result = {
  algo : Semimatch.Greedy_bipartite.algorithm;
  ratio : float;  (** median makespan / optimal *)
  time_s : float;
}

type row = {
  spec : Instances.singleproc_spec;
  optimum : float;  (** median exact makespan *)
  exact_time_s : float;
  results : algo_result list;
}

val run_row :
  ?algorithms:Semimatch.Greedy_bipartite.algorithm list ->
  ?seeds:int ->
  ?exact_engine:Matching.engine ->
  Instances.singleproc_spec ->
  row
(** [seeds] defaults to 10.  HiLo instances are deterministic, so their
    replicates coincide — medians are still well defined. *)

val run :
  ?algorithms:Semimatch.Greedy_bipartite.algorithm list ->
  ?seeds:int ->
  ?scale:int ->
  ?d:int ->
  ?jobs:int ->
  unit ->
  row list

val render : title:string -> row list -> string
val to_csv : row list -> string
