type multiproc_spec = {
  name : string;
  family : Hyper.Generate.family;
  n : int;
  p : int;
  dv : int;
  dh : int;
  g : int;
}

(* (n, p) combinations with n >= 5p, in Table I order. *)
let np_grid = [ (1280, 256); (5120, 256); (5120, 1024); (20480, 256); (20480, 1024); (20480, 4096) ]

let prefix family g =
  match (family, g) with
  | Hyper.Generate.Fewg_manyg, 32 -> "FG"
  | Hyper.Generate.Fewg_manyg, _ -> "MG"
  | Hyper.Generate.Hilo, 32 -> "HLF"
  | Hyper.Generate.Hilo, _ -> "HLM"

let multiproc_name family ~n ~p ~g = Printf.sprintf "%s-%d-%d-MP" (prefix family g) (n / 256) (p / 256)

let paper_grid ?(dv = 5) ?(dh = 10) () =
  let block family =
    List.concat_map
      (fun (n, p) ->
        List.map
          (fun g -> { name = multiproc_name family ~n ~p ~g; family; n; p; dv; dh; g })
          [ 32; 128 ])
      np_grid
  in
  block Hyper.Generate.Fewg_manyg @ block Hyper.Generate.Hilo

let scaled k spec =
  if k <= 0 then invalid_arg "Instances.scaled: k must be positive";
  if k = 1 then spec
  else begin
    let p = max 1 (spec.p / k) in
    let n = max (5 * p) (spec.n / k) in
    let g = min spec.g p in
    { spec with name = Printf.sprintf "%s/%d" spec.name k; n; p; g }
  end

(* Per-replicate streams are derived from both the instance name and the
   seed, so different specs never share a stream. *)
let stream ~seed name =
  let h = Hashtbl.hash (name : string) in
  Randkit.Prng.create ~seed:((seed * 1_000_003) lxor h)

let generate_multiproc ~seed ~weights spec =
  let rng = stream ~seed spec.name in
  Hyper.Generate.generate rng ~family:spec.family ~n:spec.n ~p:spec.p ~dv:spec.dv ~dh:spec.dh
    ~g:spec.g ~weights

type singleproc_spec = {
  sp_name : string;
  sp_family : [ `Fewg_manyg | `Hilo ];
  sp_n : int;
  sp_p : int;
  sp_d : int;
  sp_g : int;
}

let singleproc_prefix family g =
  match (family, g) with
  | `Fewg_manyg, 32 -> "FG"
  | `Fewg_manyg, _ -> "MG"
  | `Hilo, 32 -> "HLF"
  | `Hilo, _ -> "HLM"

let paper_grid_singleproc ?(d = 10) () =
  let block family =
    List.concat_map
      (fun (n, p) ->
        List.map
          (fun g ->
            {
              sp_name = Printf.sprintf "%s-%d-%d" (singleproc_prefix family g) (n / 256) (p / 256);
              sp_family = family;
              sp_n = n;
              sp_p = p;
              sp_d = d;
              sp_g = g;
            })
          [ 32; 128 ])
      np_grid
  in
  block `Fewg_manyg @ block `Hilo

let scaled_singleproc k (spec : singleproc_spec) =
  if k <= 0 then invalid_arg "Instances.scaled_singleproc: k must be positive";
  if k = 1 then spec
  else begin
    let sp_p = max 1 (spec.sp_p / k) in
    {
      spec with
      sp_name = Printf.sprintf "%s/%d" spec.sp_name k;
      sp_n = max (5 * sp_p) (spec.sp_n / k);
      sp_p;
      sp_g = min spec.sp_g sp_p;
    }
  end

let generate_singleproc ~seed spec =
  let rng = stream ~seed spec.sp_name in
  match spec.sp_family with
  | `Fewg_manyg -> Bipartite.Fewg_manyg.generate rng ~n1:spec.sp_n ~n2:spec.sp_p ~g:spec.sp_g ~d:spec.sp_d
  | `Hilo -> Bipartite.Hilo.generate ~n1:spec.sp_n ~n2:spec.sp_p ~g:spec.sp_g ~d:spec.sp_d
