(** External-validity study: do the paper's heuristic rankings survive on
    instance families it never tested?

    Runs the four MULTIPROC heuristics on the two off-paper generators
    (uniform pin placement and Zipf-skewed pin placement, see
    {!Hyper.Generate.generate_uniform} / {!Hyper.Generate.generate_powerlaw})
    under each weight scheme, reporting the same makespan/LB medians as
    Tables II/III.  Skewed popularity is the interesting stress: the Eq. 1
    bound ignores contention on the hot processors entirely. *)

type family = Uniform | Powerlaw of float

val family_label : family -> string

type row = {
  label : string;
  family : family;
  weights : Hyper.Weights.t;
  lb : float;
  ratios : (Semimatch.Greedy_hyper.algorithm * float) list;
}

val run_row :
  ?seeds:int -> ?n:int -> ?p:int -> ?dv:int -> ?dh:int ->
  family:family -> weights:Hyper.Weights.t -> unit -> row
(** Defaults: 3 seeds, n = 1280, p = 256, dv = 5, dh = 10. *)

val run : ?seeds:int -> unit -> row list
(** Uniform and Zipf (α ∈ {0.8, 1.5}) × {unit, related} weight schemes. *)

val render : row list -> string
