(** Weighted SINGLEPROC study (an extension: the paper proves this case
    NP-complete via [24] and then focuses on the unit case; here we measure
    how the same greedy ideas fare when execution times differ across
    processors).

    Instances are random bipartite graphs with integer edge weights uniform
    in [1, wmax]: task degrees binomial with mean [d].  Quality is the ratio
    to the {!Semimatch.Lower_bound.singleproc} bound; for tiny instances the
    exact branch-and-bound optimum is reported alongside, giving a direct
    view of how loose the bound is. *)

type row = {
  label : string;
  n : int;
  p : int;
  lb : float;  (** median lower bound *)
  opt : float option;  (** median optimum, when brute force is affordable *)
  ratios : (Semimatch.Greedy_bipartite.algorithm * float) list;
  refined_ratio : float;  (** best heuristic + local search *)
}

val run_row : ?seeds:int -> ?d:int -> ?wmax:int -> n:int -> p:int -> unit -> row
val run : ?seeds:int -> unit -> row list
(** Default ladder: (10,3) with brute force, then (100,16), (1000,64),
    (5000,128) against the lower bound. *)

val render : row list -> string
