module Gh = Semimatch.Greedy_hyper

type row = {
  name : string;
  lb : float;
  lb_refined : float;
  best_heuristic : float;
  optimum : float option;
}

let search_space h =
  let space = ref 1.0 in
  for v = 0 to h.Hyper.Graph.n1 - 1 do
    space := !space *. float_of_int (Hyper.Graph.task_degree h v)
  done;
  !space

let run_row ?(seeds = 3) ~weights spec =
  let replicates =
    List.init seeds (fun seed -> Instances.generate_multiproc ~seed ~weights spec)
  in
  let medians f = Ds.Stats.median (Array.of_list (List.map f replicates)) in
  let best_heuristic h =
    List.fold_left (fun acc algo -> Float.min acc (Gh.makespan algo h)) infinity Gh.all
  in
  let optimum =
    if List.for_all (fun h -> search_space h <= 200_000.0) replicates then
      Some (medians (fun h -> fst (Semimatch.Brute_force.multiproc ~limit:200_000 h)))
    else None
  in
  {
    name = spec.Instances.name ^ (match weights with Hyper.Weights.Unit -> "" | _ -> "-W");
    lb = medians Semimatch.Lower_bound.multiproc;
    lb_refined = medians Semimatch.Lower_bound.multiproc_refined;
    best_heuristic = medians best_heuristic;
    optimum;
  }

let run ?seeds ?(scale = 1) ~weights () =
  Instances.paper_grid ()
  |> List.map (Instances.scaled scale)
  |> List.map (run_row ?seeds ~weights)

let render rows =
  let header =
    [ "Instance"; "LB (Eq.1)"; "LB refined"; "best heuristic"; "OPT"; "heur/LB"; "heur/OPT" ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.name;
          Printf.sprintf "%.4g" r.lb;
          Printf.sprintf "%.4g" r.lb_refined;
          Printf.sprintf "%.4g" r.best_heuristic;
          (match r.optimum with Some o -> Printf.sprintf "%.4g" o | None -> "-");
          Tables.fmt_ratio (r.best_heuristic /. r.lb);
          (match r.optimum with
          | Some o -> Tables.fmt_ratio (r.best_heuristic /. o)
          | None -> "-");
        ])
      rows
  in
  "Bound quality: how much of the LB-ratio is bound looseness vs heuristic error:\n\n"
  ^ Tables.render ~header ~rows:body ()
