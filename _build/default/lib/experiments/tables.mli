(** Plain-text table rendering shared by the experiment runners. *)

val render : header:string list -> rows:string list list -> ?footer:string list list -> unit -> string
(** Left-aligned first column, right-aligned others, column widths fitted;
    a rule between header, body and footer.  All rows must have the header's
    arity. *)

val csv : header:string list -> rows:string list list -> string
(** RFC-4180-ish CSV (fields containing commas or quotes are quoted). *)

val fmt_ratio : float -> string
(** Two decimals, the paper's quality format. *)

val fmt_time : float -> string
(** Seconds with three decimals. *)
