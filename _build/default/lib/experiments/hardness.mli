(** Experimental companion to Theorem 1.

    The reduction from Exact Cover by 3-Sets shows MULTIPROC-UNIT has no
    (2−ε)-approximation unless P = NP: on reduced yes-instances the optimum
    is 1, and any polynomial algorithm that always stayed below 2 would solve
    X3C.  This driver *plants* an exact cover (a random partition of the 3q
    elements into triples), hides it among random distractor triples, reduces
    to MULTIPROC-UNIT via {!Semimatch.Reduction.to_multiproc}, and measures
    how often each greedy heuristic actually finds a makespan-1 schedule —
    i.e., where practice sits relative to the hardness threshold. *)

type row = {
  q : int;  (** cover size: 3q elements, q tasks *)
  distractors : int;  (** non-cover triples added *)
  trials : int;
  found_cover : (Semimatch.Greedy_hyper.algorithm * int) list;
      (** per heuristic: trials on which it achieved makespan 1 *)
  mean_makespan : (Semimatch.Greedy_hyper.algorithm * float) list;
}

val plant : Randkit.Prng.t -> q:int -> distractors:int -> Semimatch.Reduction.x3c
(** A yes-instance of X3C: a hidden random partition into triples plus
    [distractors] uniform random triples.  Requires [q >= 1]. *)

val run_row : ?trials:int -> ?seed:int -> q:int -> distractors:int -> unit -> row
(** [trials] (default 50) independent planted instances. *)

val run : ?trials:int -> unit -> row list
(** A ladder of (q, distractors) difficulty levels. *)

val render : row list -> string
