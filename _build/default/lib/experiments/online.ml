type row = {
  label : string;
  optimum : float;
  mean_ratio : float;
  worst_ratio : float;
  best_ratio : float;
}

let run_row ?(seeds = 3) ?(orders = 20) spec =
  if orders <= 0 then invalid_arg "Online.run_row: orders must be positive";
  let ratios = ref [] in
  let optima = ref [] in
  for seed = 0 to seeds - 1 do
    let g = Instances.generate_singleproc ~seed spec in
    let opt = float_of_int (Semimatch.Exact_unit.solve g).Semimatch.Exact_unit.makespan in
    optima := opt :: !optima;
    let rng = Randkit.Prng.create ~seed:(seed + 7919) in
    for _ = 1 to orders do
      let order = Array.init g.Bipartite.Graph.n1 (fun v -> v) in
      Randkit.Prng.shuffle_in_place rng order;
      let online = Semimatch.Greedy_bipartite.run_in_order g ~order in
      ratios := (Semimatch.Bip_assignment.makespan g online /. opt) :: !ratios
    done
  done;
  let ratios = Array.of_list !ratios in
  {
    label = spec.Instances.sp_name;
    optimum = Ds.Stats.median (Array.of_list !optima);
    mean_ratio = Ds.Stats.mean ratios;
    worst_ratio = Ds.Stats.maximum ratios;
    best_ratio = Ds.Stats.minimum ratios;
  }

let run ?seeds ?orders ?(scale = 1) ?d () =
  Instances.paper_grid_singleproc ?d ()
  |> List.map (Instances.scaled_singleproc scale)
  |> List.map (run_row ?seeds ?orders)

let render rows =
  let header = [ "Instance"; "OPT"; "mean ratio"; "worst"; "best" ] in
  let body =
    List.map
      (fun r ->
        [
          r.label;
          Printf.sprintf "%.4g" r.optimum;
          Printf.sprintf "%.3f" r.mean_ratio;
          Printf.sprintf "%.3f" r.worst_ratio;
          Printf.sprintf "%.3f" r.best_ratio;
        ])
      rows
  in
  "Online arrivals: least-loaded placement vs offline optimum (random orders):\n\n"
  ^ Tables.render ~header ~rows:body ()
