(** Lower-bound quality study.

    The paper warns that its Eq. 1 bound "is very optimistic and may be far
    from the optimal solution" — visibly so on the HiLo rows whose quality
    ratios blow up to ≈3 and ≈11 in Tables II/III.  This driver separates
    heuristic error from bound error: for each instance it reports Eq. 1,
    the refined bound (max with the heaviest cheapest-configuration weight),
    the best heuristic makespan, and — on instances small enough — the true
    optimum from branch and bound, attributing the observed ratio to its two
    sources. *)

type row = {
  name : string;
  lb : float;  (** Eq. 1 *)
  lb_refined : float;
  best_heuristic : float;  (** min over SGH/EGH/VGH/EVG makespans *)
  optimum : float option;  (** exact, when the search space allows *)
}

val run_row :
  ?seeds:int -> weights:Hyper.Weights.t -> Instances.multiproc_spec -> row
(** Medians over [seeds] (default 3) replicates. *)

val run :
  ?seeds:int -> ?scale:int -> weights:Hyper.Weights.t -> unit -> row list

val render : row list -> string
