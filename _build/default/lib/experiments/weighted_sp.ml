module Gb = Semimatch.Greedy_bipartite

type row = {
  label : string;
  n : int;
  p : int;
  lb : float;
  opt : float option;
  ratios : (Gb.algorithm * float) list;
  refined_ratio : float;
}

let random_weighted_bipartite rng ~n ~p ~d ~wmax =
  let edges = ref [] in
  for v = 0 to n - 1 do
    let deg = max 1 (Randkit.Binomial.sample_mean rng ~mean:(float_of_int d) ~trials:(2 * d)) in
    let deg = min deg p in
    let procs = Randkit.Prng.sample_without_replacement rng ~k:deg ~n:p in
    Array.iter
      (fun u -> edges := (v, u, float_of_int (Randkit.Prng.int_in_range rng ~lo:1 ~hi:wmax)) :: !edges)
      procs
  done;
  Bipartite.Graph.create ~n1:n ~n2:p ~edges:(List.rev !edges)

let run_row ?(seeds = 5) ?(d = 3) ?(wmax = 10) ~n ~p () =
  let replicates =
    List.init seeds (fun seed ->
        random_weighted_bipartite (Randkit.Prng.create ~seed:(seed + (31 * n) + p)) ~n ~p ~d ~wmax)
  in
  let lbs = List.map Semimatch.Lower_bound.singleproc replicates in
  let lb = Ds.Stats.median (Array.of_list lbs) in
  let brute_affordable = n <= 12 in
  let opt =
    if brute_affordable then
      Some
        (Ds.Stats.median
           (Array.of_list (List.map (fun g -> fst (Semimatch.Brute_force.singleproc g)) replicates)))
    else None
  in
  let ratios =
    List.map
      (fun algo ->
        let rs = List.map2 (fun g l -> Gb.makespan algo g /. l) replicates lbs in
        (algo, Ds.Stats.median (Array.of_list rs)))
      Gb.all_weighted
  in
  let refined_ratio =
    let rs =
      List.map2
        (fun g l ->
          let start = Gb.run Gb.Expected g in
          let refined, _ = Semimatch.Local_search.refine_bipartite g start in
          Semimatch.Bip_assignment.makespan g refined /. l)
        replicates lbs
    in
    Ds.Stats.median (Array.of_list rs)
  in
  { label = Printf.sprintf "W-%d-%d" n p; n; p; lb; opt; ratios; refined_ratio }

let run ?seeds () =
  [
    run_row ?seeds ~n:10 ~p:3 ();
    run_row ?seeds ~n:100 ~p:16 ();
    run_row ?seeds ~n:1000 ~p:64 ();
    run_row ?seeds ~n:5000 ~p:128 ();
  ]

let render rows =
  let header =
    [ "Instance"; "LB"; "OPT" ]
    @ List.map Gb.name Gb.all_weighted
    @ [ "expected+LS" ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.label;
          Printf.sprintf "%.4g" r.lb;
          (match r.opt with Some o -> Printf.sprintf "%.4g" o | None -> "-");
        ]
        @ List.map (fun (_, ratio) -> Tables.fmt_ratio ratio) r.ratios
        @ [ Tables.fmt_ratio r.refined_ratio ])
      rows
  in
  "Weighted SINGLEPROC (ratios to the lower bound; OPT shown when brute force fits):\n\n"
  ^ Tables.render ~header ~rows:body ()
