(** Online-arrival study (extension; the paper's related work, Sec. II-C,
    points to the online machine-eligibility literature).

    Tasks of a SINGLEPROC-UNIT instance arrive one at a time in a random
    order and must be placed irrevocably on the allowed processor of least
    resulting load ({!Semimatch.Greedy_bipartite.run_in_order}).  Comparing
    against the offline optimum over many arrival orders gives an empirical
    competitive ratio — theory says Θ(log p) in the worst case for
    restricted assignment; on the paper's generator families it is far
    tamer. *)

type row = {
  label : string;
  optimum : float;  (** offline exact makespan (median over instances) *)
  mean_ratio : float;  (** online/offline, averaged over arrival orders *)
  worst_ratio : float;  (** worst arrival order seen *)
  best_ratio : float;
}

val run_row :
  ?seeds:int -> ?orders:int -> Instances.singleproc_spec -> row
(** [orders] (default 20) arrival permutations per instance replicate. *)

val run : ?seeds:int -> ?orders:int -> ?scale:int -> ?d:int -> unit -> row list
(** One row per paper SINGLEPROC instance family. *)

val render : row list -> string
