module Gh = Semimatch.Greedy_hyper
module Red = Semimatch.Reduction

type row = {
  q : int;
  distractors : int;
  trials : int;
  found_cover : (Gh.algorithm * int) list;
  mean_makespan : (Gh.algorithm * float) list;
}

let plant rng ~q ~distractors =
  if q < 1 then invalid_arg "Hardness.plant: q must be >= 1";
  if distractors < 0 then invalid_arg "Hardness.plant: negative distractors";
  let n = 3 * q in
  (* Hidden cover: shuffle the elements and cut into consecutive triples. *)
  let elements = Array.init n Fun.id in
  Randkit.Prng.shuffle_in_place rng elements;
  let cover =
    List.init q (fun i -> (elements.(3 * i), elements.((3 * i) + 1), elements.((3 * i) + 2)))
  in
  let random_triple () =
    let s = Randkit.Prng.sample_without_replacement rng ~k:3 ~n in
    (s.(0), s.(1), s.(2))
  in
  let noise = List.init distractors (fun _ -> random_triple ()) in
  (* Shuffle so the planted cover is not conveniently first in hyperedge
     order (greedy tie-breaking prefers early hyperedges). *)
  let triples = Array.of_list (cover @ noise) in
  Randkit.Prng.shuffle_in_place rng triples;
  { Red.q; triples = Array.to_list triples }

let algorithms = Gh.all

let run_row ?(trials = 50) ?(seed = 0) ~q ~distractors () =
  let hits = List.map (fun a -> (a, ref 0)) algorithms in
  let sums = List.map (fun a -> (a, ref 0.0)) algorithms in
  let rng = Randkit.Prng.create ~seed:(seed + (1009 * q) + distractors) in
  for _ = 1 to trials do
    let inst = plant rng ~q ~distractors in
    let h = Red.to_multiproc inst in
    List.iter
      (fun algo ->
        let m = Gh.makespan algo h in
        if m <= 1.0 +. 1e-9 then incr (List.assoc algo hits);
        let s = List.assoc algo sums in
        s := !s +. m)
      algorithms
  done;
  {
    q;
    distractors;
    trials;
    found_cover = List.map (fun (a, r) -> (a, !r)) hits;
    mean_makespan = List.map (fun (a, s) -> (a, !s /. float_of_int trials)) sums;
  }

let run ?trials () =
  [
    run_row ?trials ~q:3 ~distractors:3 ();
    run_row ?trials ~q:5 ~distractors:10 ();
    run_row ?trials ~q:10 ~distractors:30 ();
    run_row ?trials ~q:20 ~distractors:80 ();
    run_row ?trials ~q:40 ~distractors:200 ();
  ]

let render rows =
  let header =
    [ "q"; "distractors" ]
    @ List.concat_map (fun a -> [ Gh.short_name a ^ " hit%"; Gh.short_name a ^ " mean M" ]) algorithms
  in
  let body =
    List.map
      (fun r ->
        [ string_of_int r.q; string_of_int r.distractors ]
        @ List.concat_map
            (fun a ->
              [
                Printf.sprintf "%.0f%%"
                  (100.0 *. float_of_int (List.assoc a r.found_cover) /. float_of_int r.trials);
                Printf.sprintf "%.2f" (List.assoc a r.mean_makespan);
              ])
            algorithms)
      rows
  in
  "Theorem 1 in practice: planted exact covers (OPT = 1; 2 is the hardness threshold):\n\n"
  ^ Tables.render ~header ~rows:body ()
