(** Ablation studies for the design choices DESIGN.md calls out.

    Each function measures on one instance specification over several seeds
    and renders a small table:

    - {!vector_variants}: naive re-sorting vs merged-list lazy comparison in
      the two vector heuristics (Sec. IV-D3's unimplemented improvement) —
      identical outputs, different costs.
    - {!matching_engines}: the exact SINGLEPROC-UNIT algorithm under each
      maximum-matching engine.
    - {!exact_strategies}: incremental vs bisection deadline search
      (deadlines tried and wall-clock), plus Harvey et al.'s direct
      algorithm as a third exact method.
    - {!baselines}: the informed heuristics against random assignment,
      random-order greedy, local search and GRASP-style restarts. *)

type table = string
(** Rendered plain text. *)

val vector_variants : ?seeds:int -> Instances.multiproc_spec -> table
val matching_engines : ?seeds:int -> Instances.singleproc_spec -> table
val exact_strategies : ?seeds:int -> Instances.singleproc_spec -> table
val baselines : ?seeds:int -> ?weights:Hyper.Weights.t -> Instances.multiproc_spec -> table

val run_all : ?seeds:int -> ?scale:int -> unit -> table
(** All four ablations on representative instances of the paper grid,
    concatenated. *)
