(** The paper's experimental grid (Sec. V-A) and instance naming.

    MULTIPROC instances combine n ∈ {1280, 5120, 20480} tasks with
    p ∈ {256, 1024, 4096} processors (skipping n < 5p), a generator family
    (FewgManyg or HiLo) and a group count g ∈ {32, 128}; names follow the
    paper: e.g. [FG-20-4-MP] is FewgManyg with n = 20·256, p = 4·256, g = 32,
    and [MG]/[HLM] mark the g = 128 ("many groups") variants.  A [-W] suffix
    denotes Related weights.

    SINGLEPROC instances use the same n, p grid directly on the bipartite
    generators with d ∈ {2, 5, 10}. *)

type multiproc_spec = {
  name : string;  (** e.g. "FG-20-4-MP" *)
  family : Hyper.Generate.family;
  n : int;
  p : int;
  dv : int;
  dh : int;
  g : int;
}

val paper_grid : ?dv:int -> ?dh:int -> unit -> multiproc_spec list
(** The 24 rows of Table I in paper order (FewgManyg block then HiLo block);
    [dv] defaults to 5 and [dh] to 10, the combination the paper details. *)

val scaled : int -> multiproc_spec -> multiproc_spec
(** [scaled k spec] divides [n] and [p] by [k] (keeping n ≥ 5p ≥ 5) for
    smoke-test runs; the name gains a ["/k"] suffix. *)

val generate_multiproc :
  seed:int -> weights:Hyper.Weights.t -> multiproc_spec -> Hyper.Graph.t
(** One replicate; [seed] selects the random stream.  Instances are
    deterministic in (spec, weights, seed). *)

type singleproc_spec = {
  sp_name : string;
  sp_family : [ `Fewg_manyg | `Hilo ];
  sp_n : int;
  sp_p : int;
  sp_d : int;
  sp_g : int;
}

val paper_grid_singleproc : ?d:int -> unit -> singleproc_spec list
(** The SINGLEPROC-UNIT grid for a given [d] (default 10, the detailed
    choice). *)

val scaled_singleproc : int -> singleproc_spec -> singleproc_spec
(** Counterpart of {!scaled} for bipartite specs. *)

val generate_singleproc : seed:int -> singleproc_spec -> Bipartite.Graph.t
