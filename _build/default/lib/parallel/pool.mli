(** Minimal multicore work pool over OCaml 5 domains.

    Used by the experiment drivers to spread independent instance
    evaluations across cores.  Work items are claimed from a shared atomic
    counter, so uneven item costs (e.g. EVG on a p = 4096 instance next to
    SGH on a tiny one) balance automatically.  With [jobs = 1] everything
    runs in the calling domain — the default on single-core machines, and
    the right choice whenever wall-clock timings are being measured. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> f:('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs ~f items] applies [f] to every element, preserving order of
    results.  [f] must be safe to run concurrently on distinct elements
    (the experiment drivers only share immutable specs).  If any application
    raises, the first exception (in item order) is re-raised after all
    domains have joined.  [jobs] defaults to {!default_jobs}; it is clamped
    to [1 .. Array.length items]. *)

val map_list : ?jobs:int -> f:('a -> 'b) -> 'a list -> 'b list
(** List convenience wrapper over {!map}. *)
