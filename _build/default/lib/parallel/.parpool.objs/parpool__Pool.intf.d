lib/parallel/pool.mli:
