let default_jobs () = Domain.recommended_domain_count ()

type 'b outcome = Value of 'b | Error of exn

let map ?jobs ~f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let jobs =
      let requested = match jobs with Some j -> j | None -> default_jobs () in
      if requested < 1 then invalid_arg "Pool.map: jobs must be positive"
      else min requested n
    in
    if jobs = 1 then Array.map f items
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let rec claim () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let outcome = try Value (f items.(i)) with e -> Error e in
            (* Distinct indices: no two domains ever write the same slot. *)
            results.(i) <- Some outcome;
            claim ()
          end
        in
        claim ()
      in
      let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains;
      Array.map
        (function
          | Some (Value v) -> v
          | Some (Error e) -> raise e
          | None -> assert false)
        results
    end
  end

let map_list ?jobs ~f items = Array.to_list (map ?jobs ~f (Array.of_list items))
