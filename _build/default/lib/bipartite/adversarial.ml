let fig1 () = Graph.unit_weights ~n1:2 ~n2:2 ~edges:[ (0, 0); (0, 1); (1, 0) ]

(* Fig. 3 layout.  Tasks are numbered level by level (all of level 0 first),
   matching the paper's processing order; within a task, P_i is listed before
   P_(i+2^(k-1-l)) so that load ties resolve to the "wrong" low processor. *)
let sorted_greedy_trap_edges k =
  if k < 1 then invalid_arg "Adversarial.sorted_greedy_trap: k must be >= 1";
  let edges = ref [] in
  let task = ref 0 in
  for level = 0 to k - 1 do
    let stride = 1 lsl (k - 1 - level) in
    for i = 1 to stride do
      (* Prepended in swapped order so the final [List.rev] lists P_i before
         P_(i+stride): ties must resolve to the low processor for the trap
         to close. *)
      edges := (!task, i - 1 + stride) :: (!task, i - 1) :: !edges;
      incr task
    done
  done;
  (!task, List.rev !edges)

let sorted_greedy_trap ~k =
  let n1, edges = sorted_greedy_trap_edges k in
  Graph.unit_weights ~n1 ~n2:(1 lsl k) ~edges

(* The 8 degree-2 tasks over P1..P8 shared by the two fooling constructions:
   Fig. 3 with k = 3 plus an extra task on {P3, P4}.  The position of that
   extra task in the processing order decides expected-greedy's fate — the
   two traps use different orders, see below. *)
let level0 = [ (0, 0); (0, 4); (1, 1); (1, 5); (2, 2); (2, 6); (3, 3); (3, 7) ]

let double_sorted_trap () =
  (* Task order: level 0, then the {P3,P4} task, then T^(1)_1, T^(1)_2,
     T^(2)_1.  With the extra task early, the expected loads o(·) steer every
     later degree-2 task to a private processor (expected-greedy reaches the
     optimum 1), while double-sorted sees only ties — every P1..P8 has
     in-degree 3 — and still stacks P1 up to 3. *)
  let upper =
    [
      (4, 2); (4, 3); (* {P3 | P4} *)
      (5, 0); (5, 2); (* T^(1)_1 : P1 | P3 *)
      (6, 1); (6, 3); (* T^(1)_2 : P2 | P4 *)
      (7, 0); (7, 1); (* T^(2)_1 : P1 | P2 *)
    ]
  in
  (* T9..T12 (degree 3): a private processor P9..P12 plus two of P5..P8,
     covering each of P5..P8 twice, which lifts every P1..P8 in-degree to 3. *)
  let extras =
    [
      (8, 8); (8, 4); (8, 5);
      (9, 9); (9, 6); (9, 7);
      (10, 10); (10, 4); (10, 6);
      (11, 11); (11, 5); (11, 7);
    ]
  in
  Graph.unit_weights ~n1:12 ~n2:12 ~edges:(level0 @ upper @ extras)

let expected_greedy_trap () =
  (* Here the upper tasks keep the Fig. 3 order (T^(1)_1, T^(1)_2, T^(2)_1,
     then {P3,P4}): combined with the all-equal expected loads 3/2 on
     P1..P8, expected-greedy resolves every decision by first-edge ties and
     walks straight into the same makespan-3 stack as double-sorted. *)
  let upper =
    [
      (4, 0); (4, 2); (* T^(1)_1 : P1 | P3 *)
      (5, 1); (5, 3); (* T^(1)_2 : P2 | P4 *)
      (6, 0); (6, 1); (* T^(2)_1 : P1 | P2 *)
      (7, 2); (7, 3); (* {P3 | P4} *)
    ]
  in
  (* T9..T16 (degree 2): private P9..P16 listed second, one of P5..P8 first;
     each of P5..P8 appears twice, so every P1..P8 has expected load 3/2. *)
  let extras =
    [
      (8, 4); (8, 8);
      (9, 4); (9, 9);
      (10, 5); (10, 10);
      (11, 5); (11, 11);
      (12, 6); (12, 12);
      (13, 6); (13, 13);
      (14, 7); (14, 14);
      (15, 7); (15, 15);
    ]
  in
  Graph.unit_weights ~n1:16 ~n2:16 ~edges:(level0 @ upper @ extras)
