(** The paper's hand-crafted worst-case families, used to separate the greedy
    heuristics from one another (Sec. IV-B and the technical report RR-8089).

    All graphs are unit-weighted.  Task and edge orderings are chosen so that
    the deterministic tie-breaking of this library's heuristics (first edge
    with minimum key wins) reproduces exactly the wrong decisions described in
    the paper. *)

val fig1 : unit -> Graph.t
(** Paper Fig. 1: T1–{P1,P2}, T2–{P1}.  Optimal makespan 1; basic-greedy
    processing T1 first reaches 2.  Sorted-greedy fixes it. *)

val sorted_greedy_trap : k:int -> Graph.t
(** Paper Fig. 3, generalized to any [k >= 1]: 2^k − 1 tasks, 2^k processors;
    task T^(ℓ)_i (ℓ = 0..k−1, i = 1..2^(k−1−ℓ)) may run on P_i or
    P_(i+2^(k−1−ℓ)).  Optimal makespan 1; basic-greedy and sorted-greedy
    reach [k] — i.e., they are arbitrarily far from the optimal. *)

val double_sorted_trap : unit -> Graph.t
(** Tech-report Fig. 4: [sorted_greedy_trap ~k:3] plus a task on {P3,P4},
    four degree-3 tasks T9–T12 and four private processors P9–P12 arranged
    so that P1..P8 all have in-degree 3.  Optimal makespan 1; double-sorted
    still reaches 3 (its in-degree tie-break sees only ties), while
    expected-greedy escapes to 1 because the degree-3 tasks tilt the expected
    loads. *)

val expected_greedy_trap : unit -> Graph.t
(** Tech-report Fig. 5: 16 tasks and 16 processors, all tasks of out-degree
    2; T9–T16 pair a private processor (P9–P16) with one of P5–P8 so that
    P1..P8 all carry expected load 3/2.  Optimal makespan 1; expected-greedy
    (and double-sorted) reach 3. *)
