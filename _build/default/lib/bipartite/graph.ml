type t = {
  n1 : int;
  n2 : int;
  off : int array;
  adj : int array;
  w : float array;
}

let validate_edge ~n1 ~n2 (v, u, weight) =
  if v < 0 || v >= n1 then invalid_arg "Bipartite.Graph: V1 endpoint out of range";
  if u < 0 || u >= n2 then invalid_arg "Bipartite.Graph: V2 endpoint out of range";
  if not (weight > 0.0) then invalid_arg "Bipartite.Graph: weight must be positive"

let create ~n1 ~n2 ~edges =
  if n1 < 0 || n2 < 0 then invalid_arg "Bipartite.Graph.create: negative size";
  List.iter (validate_edge ~n1 ~n2) edges;
  let m = List.length edges in
  let off = Array.make (n1 + 1) 0 in
  List.iter (fun (v, _, _) -> off.(v + 1) <- off.(v + 1) + 1) edges;
  for v = 1 to n1 do
    off.(v) <- off.(v) + off.(v - 1)
  done;
  let adj = Array.make m 0 and w = Array.make m 0.0 in
  let cursor = Array.copy off in
  List.iter
    (fun (v, u, weight) ->
      adj.(cursor.(v)) <- u;
      w.(cursor.(v)) <- weight;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  { n1; n2; off; adj; w }

let of_adjacency ~n2 adjacency =
  let n1 = Array.length adjacency in
  let edges = ref [] in
  for v = n1 - 1 downto 0 do
    List.iter (fun (u, weight) -> edges := (v, u, weight) :: !edges) (List.rev adjacency.(v))
  done;
  create ~n1 ~n2 ~edges:!edges

let unit_weights ~n1 ~n2 ~edges = create ~n1 ~n2 ~edges:(List.map (fun (v, u) -> (v, u, 1.0)) edges)

let num_edges g = Array.length g.adj
let degree g v = g.off.(v + 1) - g.off.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n1 - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let iter_neighbors g v f =
  for e = g.off.(v) to g.off.(v + 1) - 1 do
    f g.adj.(e) g.w.(e)
  done

let fold_neighbors g v ~init ~f =
  let acc = ref init in
  for e = g.off.(v) to g.off.(v + 1) - 1 do
    acc := f !acc ~edge:e g.adj.(e) g.w.(e)
  done;
  !acc

let edge_endpoint g e = g.adj.(e)

let edge_task g e =
  let lo = ref 0 and hi = ref (g.n1 - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if g.off.(mid + 1) <= e then lo := mid + 1 else hi := mid
  done;
  !lo

let edge_weight g e = g.w.(e)

let in_degrees g =
  let deg = Array.make g.n2 0 in
  Array.iter (fun u -> deg.(u) <- deg.(u) + 1) g.adj;
  deg

let is_unit_weighted g = Array.for_all (fun x -> x = 1.0) g.w

let has_isolated_task g =
  let rec scan v = v < g.n1 && (degree g v = 0 || scan (v + 1)) in
  scan 0

let equal_structure a b =
  a.n1 = b.n1 && a.n2 = b.n2 && a.off = b.off && a.adj = b.adj && a.w = b.w

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph bipartite {\n  rankdir=LR;\n";
  for v = 0 to g.n1 - 1 do
    Buffer.add_string buf (Printf.sprintf "  t%d [label=\"T%d\" shape=circle];\n" v (v + 1))
  done;
  for u = 0 to g.n2 - 1 do
    Buffer.add_string buf (Printf.sprintf "  p%d [label=\"P%d\" shape=box];\n" u (u + 1))
  done;
  for v = 0 to g.n1 - 1 do
    iter_neighbors g v (fun u weight ->
        if weight = 1.0 then Buffer.add_string buf (Printf.sprintf "  t%d -- p%d;\n" v u)
        else Buffer.add_string buf (Printf.sprintf "  t%d -- p%d [label=\"%g\"];\n" v u weight))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf g =
  Format.fprintf ppf "bipartite graph: |V1|=%d |V2|=%d |E|=%d%s" g.n1 g.n2 (num_edges g)
    (if is_unit_weighted g then " (unit weights)" else "")
