lib/bipartite/adversarial.mli: Graph
