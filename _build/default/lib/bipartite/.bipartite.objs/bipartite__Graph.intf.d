lib/bipartite/graph.mli: Format
