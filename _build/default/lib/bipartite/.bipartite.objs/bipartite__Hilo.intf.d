lib/bipartite/hilo.mli: Graph
