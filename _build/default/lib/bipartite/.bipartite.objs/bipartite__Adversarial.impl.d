lib/bipartite/adversarial.ml: Graph List
