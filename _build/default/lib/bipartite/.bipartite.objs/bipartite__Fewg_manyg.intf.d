lib/bipartite/fewg_manyg.mli: Graph Randkit
