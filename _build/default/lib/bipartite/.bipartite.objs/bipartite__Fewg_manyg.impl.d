lib/bipartite/fewg_manyg.ml: Array Graph List Randkit
