lib/bipartite/hilo.ml: Array Ds Graph List
