lib/bipartite/graph.ml: Array Buffer Format List Printf
