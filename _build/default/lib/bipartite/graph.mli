(** Bipartite graphs G = (V1 ∪ V2, E) in compressed sparse row form.

    V1 models tasks, V2 models processors (paper Sec. II-A).  Vertices are
    dense integers: V1 = [0 .. n1-1], V2 = [0 .. n2-1].  Edges carry a weight
    (the execution time of the task on that processor); unweighted problems
    use weight 1.  Adjacency is stored once from the V1 side; the V2-side view
    needed by [double-sorted] (processor in-degrees) is derived on demand. *)

type t = private {
  n1 : int;  (** number of V1 (task) vertices *)
  n2 : int;  (** number of V2 (processor) vertices *)
  off : int array;  (** length [n1+1]; V1-side CSR offsets *)
  adj : int array;  (** V2 endpoints, grouped by V1 vertex *)
  w : float array;  (** edge weights, aligned with [adj] *)
}

val create : n1:int -> n2:int -> edges:(int * int * float) list -> t
(** [create ~n1 ~n2 ~edges] builds the CSR form from [(v1, v2, weight)]
    triples.  Validates endpoint ranges and strictly positive weights; raises
    [Invalid_argument] otherwise.  Parallel edges are allowed (a task may
    legitimately offer the same processor at different costs), self-structure
    is impossible by typing. *)

val of_adjacency : n2:int -> (int * float) list array -> t
(** [of_adjacency ~n2 adj] where [adj.(v)] lists the [(processor, weight)]
    options of task [v]. *)

val unit_weights : n1:int -> n2:int -> edges:(int * int) list -> t
(** [create] with every weight 1. *)

val num_edges : t -> int
val degree : t -> int -> int
(** Out-degree (number of allowed processors) of a V1 vertex. *)

val max_degree : t -> int
(** Largest V1 out-degree; 0 for edgeless graphs. *)

val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
(** [iter_neighbors g v f] calls [f u w] for each edge (v,u) of weight [w]. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> edge:int -> int -> float -> 'a) -> 'a
(** Fold over the edges of [v]; [edge] is the global edge index usable to
    name a chosen edge in an assignment. *)

val edge_endpoint : t -> int -> int
(** V2 endpoint of a global edge index. *)

val edge_task : t -> int -> int
(** V1 endpoint of a global edge index (found by binary search over the CSR
    offsets: O(log n1)). *)

val edge_weight : t -> int -> float

val in_degrees : t -> int array
(** Per-V2-vertex edge counts (the d_u of the double-sorted heuristic). *)

val is_unit_weighted : t -> bool
val has_isolated_task : t -> bool
(** True when some V1 vertex has no edge (the instance is infeasible). *)

val equal_structure : t -> t -> bool
(** Same sizes, offsets, endpoints and weights. *)

val to_dot : t -> string
(** Graphviz rendering for small graphs (documentation and debugging). *)

val pp : Format.formatter -> t -> unit
