type histogram = (int * int) list

type t = {
  num_tasks : int;
  num_procs : int;
  num_hyperedges : int;
  num_pins : int;
  task_degree_hist : histogram;
  h_size_hist : histogram;
  proc_pin_hist : histogram;
  mean_task_degree : float;
  mean_h_size : float;
  weight_min : float;
  weight_max : float;
}

let histogram values =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun v -> Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    values;
  List.sort compare (Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl [])

let compute h =
  let nh = Graph.num_hyperedges h in
  if nh = 0 then invalid_arg "Hyper.Stats.compute: no hyperedges";
  let n1 = h.Graph.n1 and n2 = h.Graph.n2 in
  let task_degrees = Array.init n1 (Graph.task_degree h) in
  let h_sizes = Array.init nh (Graph.h_size h) in
  let proc_pins = Array.make n2 0 in
  for e = 0 to nh - 1 do
    Graph.iter_h_procs h e (fun u -> proc_pins.(u) <- proc_pins.(u) + 1)
  done;
  let weight_min = ref infinity and weight_max = ref neg_infinity in
  for e = 0 to nh - 1 do
    let w = Graph.h_weight h e in
    if w < !weight_min then weight_min := w;
    if w > !weight_max then weight_max := w
  done;
  {
    num_tasks = n1;
    num_procs = n2;
    num_hyperedges = nh;
    num_pins = Graph.num_pins h;
    task_degree_hist = histogram task_degrees;
    h_size_hist = histogram h_sizes;
    proc_pin_hist = histogram proc_pins;
    mean_task_degree = float_of_int nh /. float_of_int (max n1 1);
    mean_h_size = float_of_int (Graph.num_pins h) /. float_of_int nh;
    weight_min = !weight_min;
    weight_max = !weight_max;
  }

let render_hist ppf hist =
  List.iter (fun (v, c) -> Buffer.add_string ppf (Printf.sprintf "    %6d: %d\n" v c)) hist

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "tasks %d, processors %d, hyperedges %d, pins %d\n" t.num_tasks t.num_procs
       t.num_hyperedges t.num_pins);
  Buffer.add_string buf
    (Printf.sprintf "mean configurations/task %.2f, mean processors/configuration %.2f\n"
       t.mean_task_degree t.mean_h_size);
  Buffer.add_string buf (Printf.sprintf "weights in [%g, %g]\n" t.weight_min t.weight_max);
  Buffer.add_string buf "configurations per task:\n";
  render_hist buf t.task_degree_hist;
  Buffer.add_string buf "processors per configuration:\n";
  render_hist buf t.h_size_hist;
  Buffer.add_string buf "hyperedges per processor:\n";
  render_hist buf t.proc_pin_hist;
  Buffer.contents buf

let to_dot h =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "graph hypergraph {\n  rankdir=LR;\n";
  for v = 0 to h.Graph.n1 - 1 do
    Buffer.add_string buf (Printf.sprintf "  t%d [label=\"T%d\" shape=circle];\n" v (v + 1))
  done;
  for u = 0 to h.Graph.n2 - 1 do
    Buffer.add_string buf (Printf.sprintf "  p%d [label=\"P%d\" shape=box];\n" u (u + 1))
  done;
  for e = 0 to Graph.num_hyperedges h - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  h%d [shape=point xlabel=\"w=%g\"];\n" e (Graph.h_weight h e));
    Buffer.add_string buf (Printf.sprintf "  t%d -- h%d;\n" (Graph.h_task h e) e);
    Graph.iter_h_procs h e (fun u -> Buffer.add_string buf (Printf.sprintf "  h%d -- p%d;\n" e u))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
