(** Hyperedge weight schemes used in the MULTIPROC experiments
    (paper Sec. V-A.2).

    - [Unit]: every weight 1 — the MULTIPROC-UNIT instances of Table II.
    - [Related]: w_h = ⌈(min_j s_j · max_j s_j) / s_h⌉ where s_h = |h ∩ V2| —
      "if a task is assigned to more processors, its computation time gets
      smaller"; the deterministic scheme of Table III.
    - [Random]: integer weights uniform in [lo, hi] — the double-check data
      set of the technical report (Table 8 there). *)

type t =
  | Unit
  | Related
  | Random of { lo : int; hi : int }

val default_random : t
(** [Random {lo = 1; hi = 10}]. *)

val name : t -> string
(** "unit", "related", "random[lo,hi]". *)

val apply : ?rng:Randkit.Prng.t -> t -> Graph.t -> Graph.t
(** [apply scheme h] recomputes all hyperedge weights.  [rng] is required for
    [Random] (raises [Invalid_argument] otherwise) and ignored for the
    deterministic schemes. *)
