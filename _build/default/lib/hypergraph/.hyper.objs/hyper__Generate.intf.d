lib/hypergraph/generate.mli: Graph Randkit Weights
