lib/hypergraph/graph.ml: Array Bipartite Format Hashtbl List
