lib/hypergraph/stats.mli: Graph
