lib/hypergraph/graph.mli: Bipartite Format
