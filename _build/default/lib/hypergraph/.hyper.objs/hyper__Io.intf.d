lib/hypergraph/io.mli: Graph
