lib/hypergraph/stats.ml: Array Buffer Graph Hashtbl List Option Printf
