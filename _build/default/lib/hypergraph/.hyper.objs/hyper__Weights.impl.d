lib/hypergraph/weights.ml: Array Graph Printf Randkit
