lib/hypergraph/generate.ml: Array Bipartite Float Graph Hashtbl Randkit Weights
