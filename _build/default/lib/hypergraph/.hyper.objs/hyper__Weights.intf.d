lib/hypergraph/weights.mli: Graph Randkit
