(** Instance statistics beyond the Table I counts: degree and size
    distributions, used by `semimatch_cli info --verbose` and by tests that
    validate the generators' distributional claims (binomial configuration
    counts, HiLo pin structure). *)

type histogram = (int * int) list
(** Sorted [(value, frequency)] pairs. *)

type t = {
  num_tasks : int;
  num_procs : int;
  num_hyperedges : int;
  num_pins : int;
  task_degree_hist : histogram;  (** configurations per task *)
  h_size_hist : histogram;  (** processors per configuration *)
  proc_pin_hist : histogram;  (** hyperedges touching each processor *)
  mean_task_degree : float;
  mean_h_size : float;
  weight_min : float;
  weight_max : float;
}

val compute : Graph.t -> t
(** Raises [Invalid_argument] on hypergraphs without hyperedges. *)

val render : t -> string
(** Multi-line human-readable summary. *)

val to_dot : Graph.t -> string
(** Graphviz rendering of small hypergraphs: tasks as circles, processors as
    boxes, one point node per hyperedge connecting its task to its
    processors (the standard bipartite expansion of a hypergraph). *)
