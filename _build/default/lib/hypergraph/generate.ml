type family = Fewg_manyg | Hilo

let family_name = function Fewg_manyg -> "fewg-manyg" | Hilo -> "hilo"

let generate rng ~family ~n ~p ~dv ~dh ~g ~weights =
  if n <= 0 || p <= 0 then invalid_arg "Hyper.Generate: n and p must be positive";
  if dv <= 0 || dh <= 0 then invalid_arg "Hyper.Generate: dv and dh must be positive";
  (* Step 1: configuration counts, Binomial(2·dv, 1/2) has mean dv. *)
  let degrees =
    Array.init n (fun _ -> max 1 (Randkit.Binomial.sample rng ~trials:(2 * dv) ~p:0.5))
  in
  let nh = Array.fold_left ( + ) 0 degrees in
  (* Step 2: hyperedges take the V1 role of a bipartite generator. *)
  let pins =
    match family with
    | Hilo -> Bipartite.Hilo.adjacency ~n1:nh ~n2:p ~g ~d:dh
    | Fewg_manyg -> Bipartite.Fewg_manyg.adjacency rng ~n1:nh ~n2:p ~g ~d:dh
  in
  let hyperedges = ref [] in
  let next = ref nh in
  for v = n - 1 downto 0 do
    for _ = 1 to degrees.(v) do
      decr next;
      hyperedges := (v, pins.(!next), 1.0) :: !hyperedges
    done
  done;
  assert (!next = 0);
  let h = Graph.create ~n1:n ~n2:p ~hyperedges:!hyperedges in
  Weights.apply ~rng weights h

let degrees_step rng ~n ~dv =
  Array.init n (fun _ -> max 1 (Randkit.Binomial.sample rng ~trials:(2 * dv) ~p:0.5))

let assemble ~n ~p ~degrees ~pins rng weights =
  let hyperedges = ref [] in
  let next = ref (Array.fold_left ( + ) 0 degrees) in
  for v = n - 1 downto 0 do
    for _ = 1 to degrees.(v) do
      decr next;
      hyperedges := (v, pins.(!next), 1.0) :: !hyperedges
    done
  done;
  let h = Graph.create ~n1:n ~n2:p ~hyperedges:!hyperedges in
  Weights.apply ~rng weights h

(* Hyperedge sizes Binomial(2·dh, ½) clamped to [1, p]: variable like the
   paper's families, so the Related weight scheme stays meaningful. *)
let draw_size rng ~dh ~p = min p (max 1 (Randkit.Binomial.sample rng ~trials:(2 * dh) ~p:0.5))

let generate_uniform rng ~n ~p ~dv ~dh ~weights =
  if n <= 0 || p <= 0 then invalid_arg "Hyper.Generate: n and p must be positive";
  if dv <= 0 || dh <= 0 then invalid_arg "Hyper.Generate: dv and dh must be positive";
  let degrees = degrees_step rng ~n ~dv in
  let nh = Array.fold_left ( + ) 0 degrees in
  let pins =
    Array.init nh (fun _ ->
        let size = draw_size rng ~dh ~p in
        let picks = Randkit.Prng.sample_without_replacement rng ~k:size ~n:p in
        Array.sort compare picks;
        picks)
  in
  assemble ~n ~p ~degrees ~pins rng weights

(* Zipf sampling by inversion over precomputed cumulative masses. *)
let zipf_sampler rng ~p ~alpha =
  if not (alpha > 0.0) then invalid_arg "Hyper.Generate: alpha must be positive";
  let cumulative = Array.make p 0.0 in
  let total = ref 0.0 in
  for u = 0 to p - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (u + 1)) alpha);
    cumulative.(u) <- !total
  done;
  fun () ->
    let x = Randkit.Prng.float rng !total in
    (* First index with cumulative >= x. *)
    let lo = ref 0 and hi = ref (p - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) >= x then hi := mid else lo := mid + 1
    done;
    !lo

let generate_powerlaw rng ~n ~p ~dv ~dh ~alpha ~weights =
  if n <= 0 || p <= 0 then invalid_arg "Hyper.Generate: n and p must be positive";
  if dv <= 0 || dh <= 0 then invalid_arg "Hyper.Generate: dv and dh must be positive";
  let draw = zipf_sampler rng ~p ~alpha in
  let degrees = degrees_step rng ~n ~dv in
  let nh = Array.fold_left ( + ) 0 degrees in
  let pins =
    Array.init nh (fun _ ->
        let size = draw_size rng ~dh ~p in
        let seen = Hashtbl.create size in
        while Hashtbl.length seen < size do
          Hashtbl.replace seen (draw ()) ()
        done;
        let procs = Array.of_seq (Hashtbl.to_seq_keys seen) in
        Array.sort compare procs;
        procs)
  in
  assemble ~n ~p ~degrees ~pins rng weights

let fig2 () =
  Graph.create ~n1:4 ~n2:3
    ~hyperedges:
      [
        (0, [| 0 |], 1.0);
        (0, [| 1; 2 |], 1.0);
        (1, [| 0; 1 |], 1.0);
        (1, [| 1; 2 |], 1.0);
        (2, [| 2 |], 1.0);
        (3, [| 2 |], 1.0);
      ]
