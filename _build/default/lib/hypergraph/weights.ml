type t = Unit | Related | Random of { lo : int; hi : int }

let default_random = Random { lo = 1; hi = 10 }

let name = function
  | Unit -> "unit"
  | Related -> "related"
  | Random { lo; hi } -> Printf.sprintf "random[%d,%d]" lo hi

let apply ?rng scheme h =
  let nh = Graph.num_hyperedges h in
  let weights =
    match scheme with
    | Unit -> Array.make nh 1.0
    | Related ->
        let mn, mx = Graph.min_max_h_size h in
        let product = mn * mx in
        Array.init nh (fun e ->
            float_of_int ((product + Graph.h_size h e - 1) / Graph.h_size h e))
    | Random { lo; hi } -> (
        if lo <= 0 || hi < lo then invalid_arg "Weights.apply: need 0 < lo <= hi";
        match rng with
        | None -> invalid_arg "Weights.apply: Random scheme needs ~rng"
        | Some rng -> Array.init nh (fun _ -> float_of_int (Randkit.Prng.int_in_range rng ~lo ~hi)))
  in
  Graph.with_weights h weights
