(** A small text format for MULTIPROC instances, used by the CLI and the
    examples.

    {v
    # optional comments
    hypergraph <n1> <n2>
    h <task> <weight> <proc> <proc> ...
    v}

    One [h] line per hyperedge (configuration); tasks and processors are
    0-based.  Weights are decimal floats.  Hyperedge order is preserved,
    so heuristic tie-breaking is stable across a round-trip. *)

val to_string : Graph.t -> string
val of_string : string -> Graph.t
(** Raises [Failure] with a line-numbered message on parse errors and
    [Invalid_argument] on semantic ones (via {!Graph.create}). *)

val save : string -> Graph.t -> unit
(** [save path h]. *)

val load : string -> Graph.t
