(* State shared by the three engines: partial matching with V2 capacities.
   [matched_of] mirrors the matching from the V2 side so that augmenting
   steps can enumerate the current occupants of a saturated processor. *)

module G = Bipartite.Graph

(* Operation counters, reported through [Matching.solve_with_stats] so the
   engine ablation can explain its timings. *)
type stats = {
  mutable phases : int; (* BFS rounds (HK), queue drains (PR) *)
  mutable augmentations : int; (* successful augmenting paths / pushes home *)
  mutable steals : int; (* double-push relocations (PR) *)
  mutable scans : int; (* adjacency scans *)
}

let fresh_stats () = { phases = 0; augmentations = 0; steals = 0; scans = 0 }

type state = {
  g : G.t;
  caps : int array;
  mate1 : int array; (* row -> col or -1 *)
  count2 : int array; (* col -> current occupancy *)
  matched_of : int Ds.Vec.t array; (* col -> occupant rows *)
}

let create g ~caps =
  if Array.length caps <> g.G.n2 then invalid_arg "Matching: capacities length mismatch";
  Array.iter (fun c -> if c < 0 then invalid_arg "Matching: negative capacity") caps;
  {
    g;
    caps;
    mate1 = Array.make g.G.n1 (-1);
    count2 = Array.make g.G.n2 0;
    matched_of = Array.init g.G.n2 (fun _ -> Ds.Vec.create ());
  }

let residual st u = st.caps.(u) - st.count2.(u)

let assign st v u =
  st.mate1.(v) <- u;
  st.count2.(u) <- st.count2.(u) + 1;
  Ds.Vec.push st.matched_of.(u) v

(* Replace occupant [v'] of [u] by [v] without touching the mate of [v'] —
   augmenting engines call this after [v'] has already been rebound
   elsewhere by a recursive step. *)
let replace_occupant st ~v ~from:u ~victim:v' =
  let occupants = st.matched_of.(u) in
  let rec find i = if Ds.Vec.get occupants i = v' then i else find (i + 1) in
  Ds.Vec.set occupants (find 0) v;
  st.mate1.(v) <- u

(* Replace occupant [v'] of [u] by [v] and expose [v'] (push-relabel's
   double-push kicks the victim back into the active set). *)
let steal st ~v ~from:u ~victim:v' =
  replace_occupant st ~v ~from:u ~victim:v';
  st.mate1.(v') <- -1

let size st = Array.fold_left (fun acc m -> if m >= 0 then acc + 1 else acc) 0 st.mate1

(* Karp–Sipser-flavoured start: rows in non-decreasing degree order grab the
   first processor with residual capacity.  Constrained rows choose first,
   which empirically leaves few augmenting phases to the exact engines. *)
let greedy_init st =
  let g = st.g in
  let order =
    Ds.Counting_sort.permutation ~n:g.G.n1 ~key:(fun v -> G.degree g v) ~max_key:(max 1 (G.max_degree g))
  in
  Array.iter
    (fun v ->
      let chosen = ref (-1) in
      G.iter_neighbors g v (fun u _w -> if !chosen < 0 && residual st u > 0 then chosen := u);
      if !chosen >= 0 then assign st v !chosen)
    order
