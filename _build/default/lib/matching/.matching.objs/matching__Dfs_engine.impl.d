lib/matching/dfs_engine.ml: Array Bipartite Ds Engine_common
