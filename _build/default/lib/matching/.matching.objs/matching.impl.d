lib/matching/matching.ml: Array Bipartite Dfs_engine Engine_common Hopcroft_karp_engine Push_relabel_engine
