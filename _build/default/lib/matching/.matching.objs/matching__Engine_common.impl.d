lib/matching/engine_common.ml: Array Bipartite Ds
