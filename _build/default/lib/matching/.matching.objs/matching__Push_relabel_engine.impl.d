lib/matching/push_relabel_engine.ml: Array Bipartite Ds Engine_common Queue
