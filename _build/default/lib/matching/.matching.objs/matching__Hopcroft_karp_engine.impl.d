lib/matching/hopcroft_karp_engine.ml: Array Bipartite Ds Engine_common Queue
