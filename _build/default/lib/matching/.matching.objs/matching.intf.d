lib/matching/matching.mli: Bipartite
