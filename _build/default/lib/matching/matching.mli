(** Maximum-cardinality bipartite matching with optional V2-side capacities.

    The exact SINGLEPROC-UNIT algorithm (paper Sec. IV-A) needs, for a trial
    deadline D, a maximum matching in the graph G_D that contains D copies of
    every processor.  Rather than materializing copies we give every V2
    vertex a capacity: a "matching" is a set of edges with every V1 vertex
    covered at most once and every V2 vertex [u] covered at most
    [capacities.(u)] times.  Three interchangeable engines are provided; the
    paper uses push-relabel (MatchMaker [9], [15]), and the ablation bench
    [ablation/matching-engines] compares all three. *)

type engine =
  | Dfs  (** augmenting DFS with lookahead, Karp–Sipser-style greedy start *)
  | Hopcroft_karp  (** shortest augmenting phases; best asymptotics *)
  | Push_relabel  (** FIFO push-relabel, the paper's engine *)

val all_engines : engine list
val engine_name : engine -> string

type result = {
  mate1 : int array;  (** V1 vertex → matched V2 vertex, or −1 if exposed *)
  size : int;  (** number of matched V1 vertices *)
}

val solve : ?engine:engine -> ?capacities:int array -> Bipartite.Graph.t -> result
(** [solve g] computes a maximum matching.  [capacities] defaults to all 1;
    entries must be non-negative and the array length must be [g.n2].
    All engines return matchings of identical (maximum) cardinality. *)

type stats = {
  phases : int;  (** BFS phases (Hopcroft–Karp); 0 for the other engines *)
  augmentations : int;  (** augmenting paths completed / pushes into slack *)
  steals : int;  (** double-push relocations (push-relabel only) *)
  scans : int;  (** vertex processing steps *)
}
(** Operation counts, for the matching-engine ablation. *)

val solve_with_stats :
  ?engine:engine -> ?capacities:int array -> Bipartite.Graph.t -> result * stats
(** Like {!solve}, additionally reporting operation counts. *)

val is_maximal_valid : ?capacities:int array -> Bipartite.Graph.t -> result -> bool
(** Validity check used by tests: every matched pair is an edge, no V1 vertex
    is double-covered, no V2 capacity is exceeded, and no trivially
    augmentable edge remains (v exposed next to a slack processor). *)

val occupancy : Bipartite.Graph.t -> result -> int array
(** Per-V2-vertex cover counts. *)
