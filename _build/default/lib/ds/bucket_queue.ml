(* Buckets are intrusive doubly linked lists over key slots, so removal by
   key is O(1) and no allocation happens after the arrays are sized. *)

type t = {
  mutable heads : int array; (* bucket -> first key or -1 *)
  prev : int array; (* key -> previous key in its bucket, -1 at head *)
  next : int array; (* key -> next key, -1 at tail *)
  prio : int array; (* key -> priority, -1 when absent *)
  mutable finger : int; (* no occupied bucket below this index *)
  mutable count : int;
}

let create ?(initial_buckets = 16) n =
  if n < 0 then invalid_arg "Bucket_queue.create";
  {
    heads = Array.make (max initial_buckets 1) (-1);
    prev = Array.make (max n 1) (-1);
    next = Array.make (max n 1) (-1);
    prio = Array.make (max n 1) (-1);
    finger = 0;
    count = 0;
  }

let mem t key = key >= 0 && key < Array.length t.prio && t.prio.(key) >= 0
let length t = t.count

let ensure_bucket t p =
  let cap = Array.length t.heads in
  if p >= cap then begin
    let grown = Array.make (max (p + 1) (2 * cap)) (-1) in
    Array.blit t.heads 0 grown 0 cap;
    t.heads <- grown
  end

let link t key p =
  ensure_bucket t p;
  let head = t.heads.(p) in
  t.next.(key) <- head;
  t.prev.(key) <- -1;
  if head >= 0 then t.prev.(head) <- key;
  t.heads.(p) <- key;
  t.prio.(key) <- p

let unlink t key =
  let p = t.prio.(key) in
  let prev = t.prev.(key) and next = t.next.(key) in
  if prev >= 0 then t.next.(prev) <- next else t.heads.(p) <- next;
  if next >= 0 then t.prev.(next) <- prev;
  t.prio.(key) <- -1

let insert t key p =
  if key < 0 || key >= Array.length t.prio then invalid_arg "Bucket_queue.insert: key out of range";
  if t.prio.(key) >= 0 then invalid_arg "Bucket_queue.insert: key already present";
  if p < 0 then invalid_arg "Bucket_queue.insert: negative priority";
  link t key p;
  if p < t.finger then t.finger <- p;
  t.count <- t.count + 1

let increase t key p =
  if not (mem t key) then invalid_arg "Bucket_queue.increase: key absent";
  if p < t.prio.(key) then invalid_arg "Bucket_queue.increase: priority may only grow";
  if p <> t.prio.(key) then begin
    unlink t key;
    link t key p
  end

let priority t key = if mem t key then t.prio.(key) else raise Not_found

let rec advance t =
  if t.count = 0 then None
  else if t.finger < Array.length t.heads && t.heads.(t.finger) >= 0 then Some t.finger
  else begin
    t.finger <- t.finger + 1;
    advance t
  end

let min_priority t = advance t

let pop_min t =
  match advance t with
  | None -> None
  | Some p ->
      let key = t.heads.(p) in
      unlink t key;
      t.count <- t.count - 1;
      Some (key, p)
