let permutation ~n ~key ~max_key =
  if n < 0 || max_key < 0 then invalid_arg "Counting_sort.permutation";
  let counts = Array.make (max_key + 2) 0 in
  for i = 0 to n - 1 do
    let k = key i in
    if k < 0 || k > max_key then invalid_arg "Counting_sort.permutation: key out of range";
    counts.(k + 1) <- counts.(k + 1) + 1
  done;
  for k = 1 to max_key + 1 do
    counts.(k) <- counts.(k) + counts.(k - 1)
  done;
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    let k = key i in
    out.(counts.(k)) <- i;
    counts.(k) <- counts.(k) + 1
  done;
  out

let sort_ints a =
  let n = Array.length a in
  if n > 1 then begin
    let maxv = Array.fold_left max a.(0) a in
    let minv = Array.fold_left min a.(0) a in
    if minv < 0 then invalid_arg "Counting_sort.sort_ints: negative value";
    if maxv <= (4 * n) + 1024 then begin
      let counts = Array.make (maxv + 1) 0 in
      Array.iter (fun v -> counts.(v) <- counts.(v) + 1) a;
      let i = ref 0 in
      Array.iteri
        (fun v c ->
          for _ = 1 to c do
            a.(!i) <- v;
            incr i
          done)
        counts
    end
    else Array.sort compare a
  end
