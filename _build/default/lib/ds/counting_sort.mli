(** Stable counting sort for small integer keys.

    Greedy heuristics visit tasks "by non-decreasing out-degree"; degrees are
    bounded by the number of processors, so counting sort gives the
    linear-time ordering the paper's complexity analyses assume. *)

val permutation : n:int -> key:(int -> int) -> max_key:int -> int array
(** [permutation ~n ~key ~max_key] is the stable permutation of
    [0 .. n-1] ordered by non-decreasing [key].  Every key must lie in
    [\[0, max_key\]]. *)

val sort_ints : int array -> unit
(** In-place non-decreasing sort of non-negative integers; counting sort when
    the range is small relative to the length, comparison sort otherwise. *)
