type t = { words : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make ((n + 7) / 8) '\000'; n }

let length t = t.n

let check t i = if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let set t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7)) land 0xff))

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let reset t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let cardinal t =
  let count = ref 0 in
  for i = 0 to t.n - 1 do
    if mem t i then incr count
  done;
  !count

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done
