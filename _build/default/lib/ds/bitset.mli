(** Fixed-size bitsets over [0 .. n-1], used for hyperedge/processor marking
    during generation and validation. *)

type t

val create : int -> t
(** All bits clear. *)

val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val reset : t -> unit
(** Clear all bits. *)

val cardinal : t -> int
(** Number of set bits. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over set bits in increasing order. *)
