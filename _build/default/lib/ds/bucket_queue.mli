(** Monotone bucket priority queue over small integer priorities.

    The greedy heuristics on {e unit-weight} instances only ever need
    "which allowed processor currently has the least (integer) load", and
    loads only grow — exactly the regime where a bucket queue beats a binary
    heap: O(1) insert/increase, amortized O(1) extraction thanks to the
    monotone scan finger.  This is the data-structure counterpart of the
    paper's bucket-sort remark in Sec. IV-D3. *)

type t

val create : ?initial_buckets:int -> int -> t
(** [create n] holds keys [0 .. n-1], all absent.  Priorities are
    non-negative ints; the bucket array grows on demand. *)

val mem : t -> int -> bool
val length : t -> int

val insert : t -> int -> int -> unit
(** [insert t key prio].  Raises [Invalid_argument] if present, out of
    range, or [prio < 0]. *)

val increase : t -> int -> int -> unit
(** [increase t key prio] raises the priority of a present key.  Decreasing
    below the current minimum would break monotonicity, so [prio] must be at
    least the key's current priority; raises [Invalid_argument] otherwise. *)

val priority : t -> int -> int
(** Raises [Not_found] for absent keys. *)

val min_priority : t -> int option
(** Smallest priority present, without removal. *)

val pop_min : t -> (int * int) option
(** Remove and return some minimum-priority binding (most recently linked
    within the bucket first). *)
