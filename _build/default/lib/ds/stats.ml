let check_nonempty name a = if Array.length a = 0 then invalid_arg ("Stats." ^ name ^ ": empty input")

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  check_nonempty "median" a;
  let b = sorted_copy a in
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let median_int a =
  check_nonempty "median_int" a;
  let b = Array.copy a in
  Array.sort compare b;
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else b.((n / 2) - 1)

let mean a =
  check_nonempty "mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let minimum a =
  check_nonempty "minimum" a;
  Array.fold_left min a.(0) a

let maximum a =
  check_nonempty "maximum" a;
  Array.fold_left max a.(0) a

let quantile a ~q =
  check_nonempty "quantile" a;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let b = sorted_copy a in
  let n = Array.length b in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then b.(lo) else b.(lo) +. ((pos -. float_of_int lo) *. (b.(hi) -. b.(lo)))

let stddev a =
  let m = mean a in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
  sqrt (acc /. float_of_int (Array.length a))
