(** Growable arrays (OCaml 5.1 predates [Stdlib.Dynarray]).

    Used pervasively by the CSR builders, where the number of edges is not
    known in advance.  Amortized O(1) push; O(1) random access. *)

type 'a t

val create : unit -> 'a t
(** Empty vector. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append one element, growing geometrically when full. *)

val get : 'a t -> int -> 'a
(** [get t i] raises [Invalid_argument] when [i] is out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the last element, or [None] if empty. *)

val clear : 'a t -> unit
(** Logical reset; keeps the underlying storage. *)

val to_array : 'a t -> 'a array
(** Fresh array with exactly [length t] elements. *)

val of_array : 'a array -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
