(** Binary min-heap over a fixed universe of integer keys [0 .. n-1] with
    float priorities and O(log n) [decrease]/[update].

    Used by greedy heuristics to extract the least-loaded processor and by
    the local-search refinement to track bottleneck processors.  Each key is
    present at most once; positions are tracked so priority updates do not
    require a search. *)

type t

val create : int -> t
(** [create n] is an empty heap over keys [0 .. n-1]. *)

val length : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val insert : t -> int -> float -> unit
(** [insert t key prio] adds [key].  Raises [Invalid_argument] if [key] is
    already present or out of range. *)

val update : t -> int -> float -> unit
(** [update t key prio] changes the priority of a present [key] (up or
    down). *)

val priority : t -> int -> float
(** Priority of a present key.  Raises [Not_found] otherwise. *)

val min : t -> (int * float) option
(** Smallest-priority binding without removing it. *)

val pop_min : t -> (int * float) option
(** Remove and return the smallest-priority binding. *)
