lib/ds/indexed_heap.ml: Array
