lib/ds/stats.mli:
