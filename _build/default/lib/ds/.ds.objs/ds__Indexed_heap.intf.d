lib/ds/indexed_heap.mli:
