lib/ds/vec.ml: Array
