lib/ds/bucket_queue.ml: Array
