lib/ds/bucket_queue.mli:
