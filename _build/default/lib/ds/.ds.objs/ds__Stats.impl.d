lib/ds/stats.ml: Array
