lib/ds/counting_sort.ml: Array
