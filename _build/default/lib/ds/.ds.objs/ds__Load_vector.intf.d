lib/ds/load_vector.mli:
