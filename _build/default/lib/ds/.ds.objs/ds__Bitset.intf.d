lib/ds/bitset.mli:
