lib/ds/vec.mli:
