lib/ds/bitset.ml: Bytes Char
