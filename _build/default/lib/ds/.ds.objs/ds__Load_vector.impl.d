lib/ds/load_vector.ml: Array
