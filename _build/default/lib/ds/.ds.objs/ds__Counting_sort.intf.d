lib/ds/counting_sort.mli:
