(** Summary statistics for experiment replication.

    The paper reports the {e median} over 10 random instances per parameter
    set (Sec. V-A); these helpers implement that convention plus the usual
    companions used in EXPERIMENTS.md. *)

val median : float array -> float
(** Median with the usual mid-point convention for even lengths.  Raises
    [Invalid_argument] on empty input.  Does not mutate its argument. *)

val median_int : int array -> int
(** Integer median; for even lengths returns the lower of the two central
    values (instance-size statistics are integers in Table I). *)

val mean : float array -> float
val minimum : float array -> float
val maximum : float array -> float

val quantile : float array -> q:float -> float
(** Linear-interpolation quantile, [q] in [\[0,1\]]. *)

val stddev : float array -> float
(** Population standard deviation. *)
