(** Processor load vectors with lexicographic comparison of hypothetical
    updates — the engine behind the [vector-greedy-hyp] family (paper
    Sec. IV-D3).

    The structure maintains both per-processor loads and a descending-sorted
    multiset of load values.  [compare_hypothetical] compares the sorted load
    vectors that *would* result from realizing two different hyperedges,
    without materializing either vector: it lazily merges the sorted base with
    the candidate's changed values, exiting at the first differing position.
    This is the "list representation" improvement the paper describes but did
    not implement (their experiments use the naive re-sorting variant, kept
    here as [hypothetical_sorted] for the ablation bench). *)

type t

val create : int -> t
(** [create p] has all [p] loads at 0. *)

val size : t -> int
val load : t -> int -> float
val max_load : t -> float
(** 0 when [size t = 0]. *)

val apply : t -> procs:int array -> w:float -> unit
(** Add [w] to the load of every processor in [procs] (a realized hyperedge).
    [procs] must not contain duplicates.  O(p + |procs| log |procs|). *)

val add : t -> proc:int -> w:float -> unit
(** Single-processor convenience wrapper over [apply]. *)

val sorted_desc : t -> float array
(** Copy of the current load values, descending. *)

val compare_hypothetical :
  t -> a:int array * float -> b:int array * float -> int
(** [compare_hypothetical t ~a:(procs_a, wa) ~b:(procs_b, wb)] orders the two
    hypothetical descending load vectors lexicographically; negative means
    realizing [a] leads to the lexicographically smaller (better) vector.
    Neither candidate is applied. *)

val hypothetical_sorted : t -> procs:int array -> w:float -> float array
(** Fully materialized hypothetical vector (descending), for the naive
    variant and for tests. *)

(** {2 General per-processor deltas}

    [expected-vector-greedy-hyp] perturbs each processor of a task's
    neighbourhood by a different signed amount (realize one hyperedge,
    tentatively discard the others).  A delta is given as parallel arrays
    [(procs, amounts)]; processors must be distinct within one delta. *)

val apply_delta : t -> procs:int array -> amounts:float array -> unit
(** Add [amounts.(i)] to the load of [procs.(i)].  Loads may legitimately
    decrease (discarding expectations); they are not required to stay
    non-negative. *)

val compare_hypothetical_delta :
  t -> a:int array * float array -> b:int array * float array -> int
(** Lexicographic order of the two hypothetical descending vectors under
    general deltas; negative means [a] is better. *)

val hypothetical_sorted_delta : t -> procs:int array -> amounts:float array -> float array
(** Materialized counterpart, for the naive variant and for tests. *)
