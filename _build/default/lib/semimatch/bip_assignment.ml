module G = Bipartite.Graph

type t = { edge : int array }

let check g edge =
  if Array.length edge <> g.G.n1 then invalid_arg "Bip_assignment: length mismatch";
  Array.iteri
    (fun v e ->
      if e < g.G.off.(v) || e >= g.G.off.(v + 1) then
        invalid_arg "Bip_assignment: chosen edge does not belong to the task")
    edge

let of_edges g edge =
  check g edge;
  { edge = Array.copy edge }

let of_mates g mates =
  if Array.length mates <> g.G.n1 then invalid_arg "Bip_assignment.of_mates: length mismatch";
  let edge =
    Array.mapi
      (fun v u ->
        let found = ref (-1) in
        G.fold_neighbors g v ~init:() ~f:(fun () ~edge u' _w ->
            if !found < 0 && u' = u then found := edge);
        if !found < 0 then invalid_arg "Bip_assignment.of_mates: no edge to assigned processor";
        !found)
      mates
  in
  { edge }

let processor g t v = G.edge_endpoint g t.edge.(v)

let loads g t =
  let l = Array.make g.G.n2 0.0 in
  Array.iter
    (fun e ->
      let u = G.edge_endpoint g e in
      l.(u) <- l.(u) +. G.edge_weight g e)
    t.edge;
  l

let makespan g t = Array.fold_left max 0.0 (loads g t)

let is_valid g t =
  match check g t.edge with exception Invalid_argument _ -> false | () -> true
