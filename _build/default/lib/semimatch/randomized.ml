module H = Hyper.Graph

let check h =
  if H.has_isolated_task h then invalid_arg "Randomized: task with no configuration"

let random_assignment rng h =
  check h;
  let choice =
    Array.init h.H.n1 (fun v ->
        h.H.task_off.(v) + Randkit.Prng.int rng (H.task_degree h v))
  in
  Hyp_assignment.of_choices h choice

let random_order_greedy rng h =
  check h;
  let order = Array.init h.H.n1 (fun v -> v) in
  Randkit.Prng.shuffle_in_place rng order;
  let l = Array.make h.H.n2 0.0 in
  let choice = Array.make h.H.n1 (-1) in
  Array.iter
    (fun v ->
      let best = ref (-1) and best_key = ref infinity in
      H.iter_task_hyperedges h v (fun e ->
          let w = H.h_weight h e in
          let bottleneck = ref 0.0 in
          H.iter_h_procs h e (fun u -> if l.(u) > !bottleneck then bottleneck := l.(u));
          let key = !bottleneck +. w in
          if key < !best_key then begin
            best := e;
            best_key := key
          end);
      choice.(v) <- !best;
      let w = H.h_weight h !best in
      H.iter_h_procs h !best (fun u -> l.(u) <- l.(u) +. w))
    order;
  Hyp_assignment.of_choices h choice

let restarts ?(refine = false) ~rounds rng h construct =
  if rounds <= 0 then invalid_arg "Randomized.restarts: rounds must be positive";
  check h;
  let best = ref None in
  for _ = 1 to rounds do
    let candidate = construct (Randkit.Prng.split rng) h in
    let candidate =
      if refine then fst (Local_search.refine h candidate) else candidate
    in
    let makespan = Hyp_assignment.makespan h candidate in
    match !best with
    | Some (_, m) when m <= makespan -> ()
    | _ -> best := Some (candidate, makespan)
  done;
  match !best with Some result -> result | None -> assert false
