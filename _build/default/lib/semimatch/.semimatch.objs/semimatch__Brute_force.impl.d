lib/semimatch/brute_force.ml: Array Bip_assignment Hyp_assignment Hyper
