lib/semimatch/harvey.ml: Array Bip_assignment Bipartite Ds Queue
