lib/semimatch/local_search.ml: Array Bip_assignment Ds Hyp_assignment Hyper
