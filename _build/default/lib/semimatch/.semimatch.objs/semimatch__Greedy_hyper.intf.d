lib/semimatch/greedy_hyper.mli: Hyp_assignment Hyper
