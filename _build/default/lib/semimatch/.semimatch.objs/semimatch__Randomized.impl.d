lib/semimatch/randomized.ml: Array Hyp_assignment Hyper Local_search Randkit
