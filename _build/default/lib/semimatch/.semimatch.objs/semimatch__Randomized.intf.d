lib/semimatch/randomized.mli: Hyp_assignment Hyper Randkit
