lib/semimatch/greedy_hyper.ml: Array Ds Hyp_assignment Hyper
