lib/semimatch/hyp_assignment.mli: Hyper
