lib/semimatch/annealing.mli: Hyp_assignment Hyper Randkit
