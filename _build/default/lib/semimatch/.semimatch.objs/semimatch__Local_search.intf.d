lib/semimatch/local_search.mli: Bip_assignment Bipartite Hyp_assignment Hyper
