lib/semimatch/greedy_bipartite.ml: Array Bip_assignment Bipartite Ds Float
