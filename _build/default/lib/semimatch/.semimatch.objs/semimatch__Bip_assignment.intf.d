lib/semimatch/bip_assignment.mli: Bipartite
