lib/semimatch/exact_unit.ml: Array Bip_assignment Bipartite Lower_bound Matching
