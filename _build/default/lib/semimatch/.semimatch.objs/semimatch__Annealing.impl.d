lib/semimatch/annealing.ml: Array Float Greedy_hyper Hyp_assignment Hyper Randkit
