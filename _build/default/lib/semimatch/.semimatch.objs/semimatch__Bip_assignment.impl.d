lib/semimatch/bip_assignment.ml: Array Bipartite
