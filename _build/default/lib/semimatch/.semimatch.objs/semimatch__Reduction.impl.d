lib/semimatch/reduction.ml: Array Hyp_assignment Hyper List
