lib/semimatch/harvey.mli: Bip_assignment Bipartite
