lib/semimatch/lower_bound.mli: Bipartite Hyper
