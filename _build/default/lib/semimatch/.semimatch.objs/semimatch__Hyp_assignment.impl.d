lib/semimatch/hyp_assignment.ml: Array Hyper
