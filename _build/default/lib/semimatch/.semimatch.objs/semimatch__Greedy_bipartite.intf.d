lib/semimatch/greedy_bipartite.mli: Bip_assignment Bipartite
