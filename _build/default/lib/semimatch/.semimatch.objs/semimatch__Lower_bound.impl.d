lib/semimatch/lower_bound.ml: Bipartite Float Hyper
