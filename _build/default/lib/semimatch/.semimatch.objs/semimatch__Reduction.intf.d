lib/semimatch/reduction.mli: Hyp_assignment Hyper
