lib/semimatch/exact_unit.mli: Bip_assignment Bipartite Matching
