lib/semimatch/brute_force.mli: Bip_assignment Bipartite Hyp_assignment Hyper
