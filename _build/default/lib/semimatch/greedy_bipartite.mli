(** The four greedy semi-matching heuristics for SINGLEPROC (paper
    Sec. IV-B), each O(|E|) after the degree sort.

    All heuristics generalize the paper's unit-weight pseudo-code to weighted
    edges in the natural way: loads accumulate edge weights, and expected
    loads accumulate w(v,u)/d_v, mirroring the hypergraph versions
    (Algorithms 4–5).  On unit weights they coincide exactly with
    Algorithms 1–3.

    Tie-breaking is deterministic: the first edge (in adjacency order)
    attaining the minimum key wins, and the degree sort is stable — this is
    what lets the adversarial constructions of {!Bipartite.Adversarial}
    reproduce the paper's worst cases verbatim. *)

type algorithm =
  | Basic  (** Algorithm 1: tasks in input order, least-loaded neighbour *)
  | Sorted  (** tasks by non-decreasing out-degree *)
  | Double_sorted  (** Algorithm 2: load ties broken by processor in-degree *)
  | Expected  (** Algorithm 3: least *expected* load o(u), degree-sorted *)
  | Heaviest_first
      (** extension for weighted SINGLEPROC: tasks by non-increasing minimum
          edge weight (LPT-style, after Graham), then least resulting load —
          coincides with [Basic] on unit weights *)

val all : algorithm list
(** The paper's four heuristics, in presentation order ([Heaviest_first] is
    excluded: it only differs on weighted instances). *)

val all_weighted : algorithm list
(** All five, for weighted experiments. *)

val name : algorithm -> string

val run : algorithm -> Bipartite.Graph.t -> Bip_assignment.t
(** Raises [Invalid_argument] on instances with an isolated task. *)

val run_in_order : Bipartite.Graph.t -> order:int array -> Bip_assignment.t
(** The online setting: tasks committed irrevocably in the given arrival
    order, each to the allowed processor with least resulting load.  [order]
    must be a permutation of the tasks; raises [Invalid_argument]
    otherwise. *)

val makespan : algorithm -> Bipartite.Graph.t -> float
(** Convenience: makespan of [run]. *)
