(** Exhaustive optimal solvers for tiny instances.

    MULTIPROC is NP-complete (Theorem 1), so no polynomial exact algorithm is
    expected; this branch-and-bound explores all configuration choices,
    pruning with the current bottleneck and with the paper's per-task
    cheapest-work bound.  It exists to ground-truth the heuristics, the
    lower bound and the X3C reduction in tests — instance sizes beyond a few
    dozen configurations are out of scope. *)

val multiproc : ?limit:int -> Hyper.Graph.t -> float * Hyp_assignment.t
(** [multiproc h] is an optimal makespan with a witness schedule.  Raises
    [Invalid_argument] when the instance is infeasible or the search space
    Π d_v exceeds [limit] (default 10^7) branches. *)

val singleproc : ?limit:int -> Bipartite.Graph.t -> float * Bip_assignment.t
(** Optimal weighted SINGLEPROC via the hypergraph embedding. *)
