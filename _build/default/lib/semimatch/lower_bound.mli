(** Lower bounds on the optimal makespan.

    [multiproc] is exactly the paper's LB (Eq. 1, Sec. IV-C): each task in
    its globally cheapest configuration (minimum w_h · |h ∩ V2|), the total
    work spread perfectly evenly over the p processors.  The paper notes the
    bound is "very optimistic"; Tables II/III report heuristic makespans as
    ratios to it.

    [multiproc_refined] additionally observes that some processor receives at
    least the full weight of every task's cheapest-by-weight configuration —
    a valid bound the paper does not use; EXPERIMENTS.md reports both. *)

val multiproc : Hyper.Graph.t -> float
(** LB = (1/p) Σ_i min_{h ∋ T_i} w_h·|h∩V2|.  Raises [Invalid_argument] on
    infeasible instances (a task with no configuration). *)

val multiproc_refined : Hyper.Graph.t -> float
(** max(LB, max_i min_{h ∋ T_i} w_h). *)

val singleproc : Bipartite.Graph.t -> float
(** The bipartite specialization: (1/p) Σ_i min-weight edge of T_i, combined
    with max_i of the same minima. *)

val singleproc_unit : Bipartite.Graph.t -> int
(** ⌈n/p⌉ for unit weights — the trivial starting deadline of the exact
    SINGLEPROC-UNIT algorithm. *)
