module G = Bipartite.Graph

type solution = { assignment : Bip_assignment.t; makespan : int; total_flow_time : int }

let flow_time loads = Array.fold_left (fun acc l -> acc + (l * (l + 1) / 2)) 0 loads

let check g =
  if not (G.is_unit_weighted g) then invalid_arg "Harvey: weights must all be 1";
  if G.has_isolated_task g then invalid_arg "Harvey: task with no allowed processor";
  if g.G.n1 > 0 && g.G.n2 = 0 then invalid_arg "Harvey: no processors"

type state = {
  g : G.t;
  mate : int array; (* task -> chosen edge, -1 while unassigned *)
  loads : int array;
  assigned : int Ds.Vec.t array; (* machine -> tasks currently on it *)
  parent_edge : int array; (* machine -> BFS discovery edge *)
  visited : int array; (* machine -> last BFS round that reached it *)
  queue : int Queue.t;
}

(* BFS over alternating paths from the new task [v0]: task→any allowed
   machine, machine→each task currently assigned to it.  Returns the
   reachable machine with minimum current load. *)
let search st ~round v0 =
  Queue.clear st.queue;
  Queue.add v0 st.queue;
  let best_u = ref (-1) in
  while not (Queue.is_empty st.queue) do
    let v = Queue.pop st.queue in
    G.fold_neighbors st.g v ~init:() ~f:(fun () ~edge u _w ->
        if st.visited.(u) <> round then begin
          st.visited.(u) <- round;
          st.parent_edge.(u) <- edge;
          if !best_u < 0 || st.loads.(u) < st.loads.(!best_u) then best_u := u;
          Ds.Vec.iter (fun v' -> Queue.add v' st.queue) st.assigned.(u)
        end)
  done;
  !best_u

let remove_from st u v =
  let occ = st.assigned.(u) in
  let n = Ds.Vec.length occ in
  let rec go i =
    if Ds.Vec.get occ i = v then begin
      Ds.Vec.set occ i (Ds.Vec.get occ (n - 1));
      ignore (Ds.Vec.pop occ)
    end
    else go (i + 1)
  in
  go 0

(* Flip the alternating path ending at [u_best]: the task discovered by
   parent_edge moves onto the machine, its old machine continues the chain,
   until the chain reaches the still-unassigned task v0.  Only the terminal
   machine gains load; every intermediate machine swaps one task for
   another. *)
let augment st u_best =
  st.loads.(u_best) <- st.loads.(u_best) + 1;
  let rec flip u =
    let e = st.parent_edge.(u) in
    let v = G.edge_task st.g e in
    let previous = st.mate.(v) in
    st.mate.(v) <- e;
    Ds.Vec.push st.assigned.(u) v;
    if previous >= 0 then begin
      let u_prev = G.edge_endpoint st.g previous in
      remove_from st u_prev v;
      flip u_prev
    end
  in
  flip u_best

let solve g =
  check g;
  let st =
    {
      g;
      mate = Array.make g.G.n1 (-1);
      loads = Array.make g.G.n2 0;
      assigned = Array.init g.G.n2 (fun _ -> Ds.Vec.create ());
      parent_edge = Array.make g.G.n2 (-1);
      visited = Array.make g.G.n2 (-1);
      queue = Queue.create ();
    }
  in
  for v = 0 to g.G.n1 - 1 do
    let u = search st ~round:v v in
    assert (u >= 0);
    augment st u
  done;
  let assignment = Bip_assignment.of_edges g st.mate in
  {
    assignment;
    makespan = Array.fold_left max 0 st.loads;
    total_flow_time = flow_time st.loads;
  }
