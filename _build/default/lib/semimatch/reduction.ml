type x3c = { q : int; triples : (int * int * int) list }

let check { q; triples } =
  if q < 0 then invalid_arg "Reduction: negative q";
  let n = 3 * q in
  List.iter
    (fun (a, b, c) ->
      if a = b || b = c || a = c then invalid_arg "Reduction: triple with repeated element";
      List.iter
        (fun x -> if x < 0 || x >= n then invalid_arg "Reduction: element out of range")
        [ a; b; c ])
    triples;
  if q > 0 && triples = [] then invalid_arg "Reduction: empty collection"

let to_multiproc ({ q; triples } as inst) =
  check inst;
  let hyperedges = ref [] in
  for v = q - 1 downto 0 do
    List.iter (fun (a, b, c) -> hyperedges := (v, [| a; b; c |], 1.0) :: !hyperedges) (List.rev triples)
  done;
  Hyper.Graph.create ~n1:q ~n2:(3 * q) ~hyperedges:!hyperedges

let has_exact_cover ({ q; triples } as inst) =
  check inst;
  let n = 3 * q in
  let covered = Array.make n false in
  let triples = Array.of_list triples in
  (* Backtracking: always branch on the smallest uncovered element; only
     triples containing it can cover it. *)
  let rec solve covered_count =
    if covered_count = n then true
    else begin
      let e = ref 0 in
      while covered.(!e) do
        incr e
      done;
      let elem = !e in
      let try_triple (a, b, c) =
        if (a = elem || b = elem || c = elem) && (not covered.(a)) && (not covered.(b)) && not covered.(c)
        then begin
          covered.(a) <- true;
          covered.(b) <- true;
          covered.(c) <- true;
          let ok = solve (covered_count + 3) in
          covered.(a) <- false;
          covered.(b) <- false;
          covered.(c) <- false;
          ok
        end
        else false
      in
      Array.exists try_triple triples
    end
  in
  q = 0 || solve 0

let cover_of_schedule { q; triples } h a =
  if Hyp_assignment.makespan h a > 1.0 then None
  else begin
    let triples = Array.of_list triples in
    Some
      (List.init q (fun v ->
           (* Hyperedges of task v are its |C| triples in order. *)
           let e = a.Hyp_assignment.choice.(v) - h.Hyper.Graph.task_off.(v) in
           triples.(e)))
  end
