(** Semi-matchings in hypergraphs: one configuration (hyperedge) realized per
    task (paper Sec. II-B). *)

type t = { choice : int array }
(** [choice.(v)] is the hyperedge id realized for task [v]. *)

val of_choices : Hyper.Graph.t -> int array -> t
(** Validates that [choice.(v)] is a hyperedge of task [v]; raises
    [Invalid_argument] otherwise. *)

val alloc : Hyper.Graph.t -> t -> int -> int array
(** alloc(v) = chosen processor set of task [v]. *)

val loads : Hyper.Graph.t -> t -> float array
(** l(u) = Σ over realized hyperedges containing u of their weight. *)

val makespan : Hyper.Graph.t -> t -> float

val total_work : Hyper.Graph.t -> t -> float
(** Σ_h realized w_h · |h ∩ V2| — the quantity whose best case drives the
    paper's lower bound. *)

val is_valid : Hyper.Graph.t -> t -> bool
