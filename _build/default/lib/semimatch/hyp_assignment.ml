module H = Hyper.Graph

type t = { choice : int array }

let check h choice =
  if Array.length choice <> h.H.n1 then invalid_arg "Hyp_assignment: length mismatch";
  Array.iteri
    (fun v e ->
      if e < h.H.task_off.(v) || e >= h.H.task_off.(v + 1) then
        invalid_arg "Hyp_assignment: chosen hyperedge does not belong to the task")
    choice

let of_choices h choice =
  check h choice;
  { choice = Array.copy choice }

let alloc h t v = H.h_procs h t.choice.(v)

let loads h t =
  let l = Array.make h.H.n2 0.0 in
  Array.iter
    (fun e ->
      let w = H.h_weight h e in
      H.iter_h_procs h e (fun u -> l.(u) <- l.(u) +. w))
    t.choice;
  l

let makespan h t = Array.fold_left max 0.0 (loads h t)

let total_work h t =
  Array.fold_left
    (fun acc e -> acc +. (H.h_weight h e *. float_of_int (H.h_size h e)))
    0.0 t.choice

let is_valid h t =
  match check h t.choice with exception Invalid_argument _ -> false | () -> true
