(** The exact polynomial-time algorithm for SINGLEPROC-UNIT (paper
    Sec. IV-A).

    For a trial deadline D, a schedule of makespan ≤ D exists iff the graph
    G_D — D copies of every processor — admits a matching covering all tasks.
    We express G_D with processor capacities instead of explicit copies and
    search for the smallest feasible D.  [Incremental] is the paper's loop
    (D = LB, LB+1, …); [Bisection] is the improved search the paper mentions
    but does not implement — the ablation bench compares the two. *)

type strategy = Incremental | Bisection

val strategy_name : strategy -> string

type solution = {
  makespan : int;  (** the optimal makespan M_opt *)
  assignment : Bip_assignment.t;
  deadlines_tried : int;  (** matching computations performed *)
}

val solve :
  ?engine:Matching.engine -> ?strategy:strategy -> Bipartite.Graph.t -> solution
(** [solve g] computes an optimal SINGLEPROC-UNIT schedule.  Requires unit
    weights and no isolated task; raises [Invalid_argument] otherwise.
    Defaults: [Hopcroft_karp] engine (fastest here; the paper used
    push-relabel, also available), [Incremental] strategy starting from the
    trivial lower bound ⌈n/p⌉. *)

val feasible : ?engine:Matching.engine -> Bipartite.Graph.t -> d:int -> Bip_assignment.t option
(** [feasible g ~d] is a schedule of makespan ≤ [d] if one exists — the
    single decision step, exposed for tests and for external search
    loops. *)
