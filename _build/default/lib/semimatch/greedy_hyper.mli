(** The four greedy semi-matching heuristics for MULTIPROC (paper
    Sec. IV-D): the heart of this library.

    All visit tasks by non-decreasing number of configurations (stable
    counting sort) and break ties by first hyperedge in input order.

    - [Sorted_greedy_hyp] (SGH, Algorithm 4): realize the configuration whose
      processors end up with the smallest bottleneck load.
    - [Expected_greedy_hyp] (EGH, Algorithm 5): like SGH but on *expected*
      loads o(u) = Σ w_h/d_v over undecided options, collapsed as choices
      are made.
    - [Vector_greedy_hyp] (VGH): compare whole hypothetical load vectors,
      sorted descending, lexicographically — minimize the largest load, then
      the second largest, and so on.
    - [Expected_vector_greedy_hyp] (EVG): the vector comparison applied to
      expected loads, tentatively realizing each candidate and tentatively
      discarding its siblings.

    The vector heuristics come in two variants: [Naive] re-sorts the whole
    load vector per candidate (O(Σ d_v·|V2| log |V2|), what the paper
    benchmarked) and [Merged] keeps the vector sorted and lazily merges
    (O(Σ d_v·|V2|), the improvement the paper describes in Sec. IV-D3 but
    left unimplemented).  Both return identical assignments; the ablation
    bench measures the gap. *)

type algorithm =
  | Sorted_greedy_hyp
  | Expected_greedy_hyp
  | Vector_greedy_hyp
  | Expected_vector_greedy_hyp

type vector_variant = Naive | Merged

val all : algorithm list

val name : algorithm -> string
(** Full names as in the paper: "sorted-greedy-hyp", …. *)

val short_name : algorithm -> string
(** Table column labels: "SGH", "VGH", "EGH", "EVG". *)

val run : ?vector_variant:vector_variant -> algorithm -> Hyper.Graph.t -> Hyp_assignment.t
(** Raises [Invalid_argument] on instances with a configuration-less task.
    [vector_variant] (default [Merged]) only affects the two vector
    heuristics' running time, never their output. *)

val makespan : ?vector_variant:vector_variant -> algorithm -> Hyper.Graph.t -> float
