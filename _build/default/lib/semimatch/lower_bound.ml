module H = Hyper.Graph
module G = Bipartite.Graph

let cheapest_time h v =
  if H.task_degree h v = 0 then invalid_arg "Lower_bound: task without configuration";
  let best = ref infinity in
  H.iter_task_hyperedges h v (fun e ->
      let time = H.h_weight h e *. float_of_int (H.h_size h e) in
      if time < !best then best := time);
  !best

let multiproc h =
  if h.H.n2 = 0 then invalid_arg "Lower_bound.multiproc: no processors";
  let total = ref 0.0 in
  for v = 0 to h.H.n1 - 1 do
    total := !total +. cheapest_time h v
  done;
  !total /. float_of_int h.H.n2

let multiproc_refined h =
  let heaviest_cheapest = ref 0.0 in
  for v = 0 to h.H.n1 - 1 do
    let best_w = ref infinity in
    H.iter_task_hyperedges h v (fun e ->
        let w = H.h_weight h e in
        if w < !best_w then best_w := w);
    if H.task_degree h v = 0 then invalid_arg "Lower_bound: task without configuration";
    if !best_w > !heaviest_cheapest then heaviest_cheapest := !best_w
  done;
  Float.max (multiproc h) !heaviest_cheapest

let singleproc g =
  if g.G.n2 = 0 then invalid_arg "Lower_bound.singleproc: no processors";
  let total = ref 0.0 and heaviest = ref 0.0 in
  for v = 0 to g.G.n1 - 1 do
    if G.degree g v = 0 then invalid_arg "Lower_bound: task without allowed processor";
    let best = ref infinity in
    G.iter_neighbors g v (fun _u w -> if w < !best then best := w);
    total := !total +. !best;
    if !best > !heaviest then heaviest := !best
  done;
  Float.max (!total /. float_of_int g.G.n2) !heaviest

let singleproc_unit g =
  if g.G.n2 = 0 then invalid_arg "Lower_bound.singleproc_unit: no processors";
  if g.G.n1 = 0 then 0 else ((g.G.n1 - 1) / g.G.n2) + 1
