(** The exact semi-matching algorithm of Harvey, Ladner, Lovász and Tamir
    ("Semi-matchings for bipartite graphs and load balancing", J. Algorithms
    59(1), 2006) — the algorithm the paper cites as reference [14] and
    positions its own Sec. IV-A method against.

    Tasks are inserted one at a time; each insertion searches the alternating
    structure (task→any allowed machine, machine→any task currently assigned
    to it) for the reachable machine whose load after insertion is smallest,
    then augments along that path, relocating the displaced tasks.  The
    result is an {e optimal} semi-matching: it simultaneously minimizes every
    symmetric-convex cost of the load vector — in particular both the
    makespan and the total flow time Σ l(l+1)/2.

    Complexity O(|V1|·|E|), matching Harvey et al.'s ASM2 bound.  Works on
    unit-weight bipartite graphs (SINGLEPROC-UNIT); an ablation bench
    compares it against the repeated-matching algorithm of {!Exact_unit}. *)

type solution = {
  assignment : Bip_assignment.t;
  makespan : int;
  total_flow_time : int;  (** Σ_u l(u)·(l(u)+1)/2, Harvey et al.'s objective *)
}

val solve : Bipartite.Graph.t -> solution
(** Requires unit weights and no isolated task; raises [Invalid_argument]
    otherwise. *)

val flow_time : int array -> int
(** Σ l(l+1)/2 of a load vector, exposed for tests. *)
