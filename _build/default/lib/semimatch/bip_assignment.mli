(** Semi-matchings in bipartite graphs: every task (V1 vertex) is covered by
    exactly one of its edges (paper Sec. II-A). *)

type t = { edge : int array }
(** [edge.(v)] is the global edge index chosen for task [v]. *)

val of_edges : Bipartite.Graph.t -> int array -> t
(** Validates that [edge.(v)] is an edge of [v] (global index inside [v]'s
    CSR range); raises [Invalid_argument] otherwise. *)

val of_mates : Bipartite.Graph.t -> int array -> t
(** Build from a processor-per-task array (e.g. a matching's [mate1]); for
    each task the first edge to the given processor is chosen.  All entries
    must be valid processors. *)

val processor : Bipartite.Graph.t -> t -> int -> int
(** Processor executing a task. *)

val loads : Bipartite.Graph.t -> t -> float array
(** Per-processor load l(u) = Σ weights of chosen edges into u. *)

val makespan : Bipartite.Graph.t -> t -> float
(** max_u l(u); 0 for an empty task set. *)

val is_valid : Bipartite.Graph.t -> t -> bool
(** Structural check (coverage and range), for tests. *)
