(** Randomized baselines and restart wrappers.

    The paper's heuristics are deterministic; these baselines quantify how
    much of their quality comes from informed decisions versus sheer luck:

    - [random_assignment]: every task picks a configuration uniformly at
      random — the floor any heuristic must clear.
    - [random_order_greedy]: the greedy rule of SGH but visiting tasks in a
      random order instead of by degree — isolates the value of the
      degree sort.
    - [restarts]: run a randomized construction k times, keep the best
      makespan; optionally refine each candidate with local search
      (a GRASP-style wrapper, an extension in the spirit of the paper's
      future-work section). *)

val random_assignment : Randkit.Prng.t -> Hyper.Graph.t -> Hyp_assignment.t
(** Uniform configuration per task.  Raises [Invalid_argument] on
    configuration-less tasks. *)

val random_order_greedy : Randkit.Prng.t -> Hyper.Graph.t -> Hyp_assignment.t
(** SGH's bottleneck rule over a uniformly shuffled task order. *)

val restarts :
  ?refine:bool ->
  rounds:int ->
  Randkit.Prng.t ->
  Hyper.Graph.t ->
  (Randkit.Prng.t -> Hyper.Graph.t -> Hyp_assignment.t) ->
  Hyp_assignment.t * float
(** [restarts ~rounds rng h construct] runs [construct] [rounds] times with
    independent streams split from [rng] and returns the best assignment with
    its makespan.  [refine] (default false) applies {!Local_search.refine} to
    each candidate first.  [rounds] must be positive. *)
