(** Lexicographic local-search refinement (an extension beyond the paper,
    motivated by its future-work section).

    Starting from any MULTIPROC assignment, repeatedly try to move a single
    task to one of its other configurations; a move is accepted when it makes
    the descending load vector lexicographically smaller (which in particular
    never increases the makespan).  Each accepted move strictly decreases a
    finite well-ordering, so the search terminates at a 1-move-optimal
    schedule. *)

val refine :
  ?max_passes:int -> Hyper.Graph.t -> Hyp_assignment.t -> Hyp_assignment.t * int
(** [refine h a] returns the improved assignment and the number of accepted
    moves.  [max_passes] (default 50) caps full sweeps over the tasks. *)

val refine_bipartite :
  ?max_passes:int -> Bipartite.Graph.t -> Bip_assignment.t -> Bip_assignment.t * int
(** Same idea on SINGLEPROC assignments, via the hypergraph embedding of the
    bipartite instance. *)
