module H = Hyper.Graph

let search_space_guard ~limit h =
  let space = ref 1.0 in
  for v = 0 to h.H.n1 - 1 do
    space := !space *. float_of_int (H.task_degree h v)
  done;
  if !space > float_of_int limit then
    invalid_arg "Brute_force: search space exceeds the limit"

let multiproc ?(limit = 10_000_000) h =
  if H.has_isolated_task h then invalid_arg "Brute_force.multiproc: infeasible instance";
  search_space_guard ~limit h;
  (* Tasks in decreasing cheapest-work order tighten the bound early. *)
  let cheapest v =
    let best = ref infinity in
    H.iter_task_hyperedges h v (fun e ->
        let t = H.h_weight h e *. float_of_int (H.h_size h e) in
        if t < !best then best := t);
    !best
  in
  let order = Array.init h.H.n1 (fun v -> v) in
  Array.sort (fun a b -> compare (cheapest b) (cheapest a)) order;
  (* suffix_work.(i) = Σ cheapest work of tasks order.(i..): remaining-load
     bound (LB of Eq. 1 restricted to unscheduled tasks). *)
  let n = h.H.n1 in
  let suffix_work = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix_work.(i) <- suffix_work.(i + 1) +. cheapest order.(i)
  done;
  let p = float_of_int (max h.H.n2 1) in
  let loads = Array.make h.H.n2 0.0 in
  let choice = Array.make n (-1) in
  let best_choice = Array.make n (-1) in
  let best = ref infinity in
  let total_load = ref 0.0 in
  let rec go i current_max =
    if current_max >= !best then ()
    else if (!total_load +. suffix_work.(i)) /. p >= !best then ()
    else if i = n then begin
      best := current_max;
      Array.blit choice 0 best_choice 0 n
    end
    else begin
      let v = order.(i) in
      H.iter_task_hyperedges h v (fun e ->
          let w = H.h_weight h e in
          let new_max = ref current_max in
          H.iter_h_procs h e (fun u ->
              let l = loads.(u) +. w in
              if l > !new_max then new_max := l);
          if !new_max < !best then begin
            H.iter_h_procs h e (fun u -> loads.(u) <- loads.(u) +. w);
            total_load := !total_load +. (w *. float_of_int (H.h_size h e));
            choice.(v) <- e;
            go (i + 1) !new_max;
            choice.(v) <- -1;
            total_load := !total_load -. (w *. float_of_int (H.h_size h e));
            H.iter_h_procs h e (fun u -> loads.(u) <- loads.(u) -. w)
          end)
    end
  in
  if n = 0 then (0.0, Hyp_assignment.of_choices h [||])
  else begin
    go 0 0.0;
    (!best, Hyp_assignment.of_choices h best_choice)
  end

let singleproc ?limit g =
  let h = H.of_bipartite g in
  let opt, a = multiproc ?limit h in
  (opt, Bip_assignment.of_edges g a.Hyp_assignment.choice)
