(** The Theorem-1 reduction: Exact Cover by 3-Sets ≤p MULTIPROC-UNIT
    (paper Sec. III).

    An X3C instance has a ground set X of 3q elements and a collection C of
    3-element subsets; it is a yes-instance iff some C' ⊆ C covers every
    element exactly once.  The reduction builds a MULTIPROC-UNIT instance
    with the elements as processors and q tasks, each offered every triple of
    C as a configuration: an exact cover exists iff a schedule of makespan 1
    does.  Used by the test suite to validate the heuristics and the
    brute-force solver against each other on both yes- and no-instances. *)

type x3c = { q : int; triples : (int * int * int) list }
(** Ground set is [0 .. 3q−1]; triples must have three distinct in-range
    members. *)

val to_multiproc : x3c -> Hyper.Graph.t
(** The reduced instance: q tasks, 3q processors, |C| configurations per
    task, unit weights.  Raises [Invalid_argument] on malformed input
    (including an empty collection with q > 0). *)

val has_exact_cover : x3c -> bool
(** Exponential-time reference decision procedure (backtracking over
    triples), for small test instances. *)

val cover_of_schedule : x3c -> Hyper.Graph.t -> Hyp_assignment.t -> (int * int * int) list option
(** Extract an exact cover from a makespan-1 schedule of the reduced
    instance; [None] when the schedule's makespan exceeds 1. *)
