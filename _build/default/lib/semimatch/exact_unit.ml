module G = Bipartite.Graph

type strategy = Incremental | Bisection

let strategy_name = function Incremental -> "incremental" | Bisection -> "bisection"

type solution = { makespan : int; assignment : Bip_assignment.t; deadlines_tried : int }

let check g =
  if not (G.is_unit_weighted g) then invalid_arg "Exact_unit: weights must all be 1";
  if G.has_isolated_task g then invalid_arg "Exact_unit: task with no allowed processor";
  if g.G.n1 > 0 && g.G.n2 = 0 then invalid_arg "Exact_unit: no processors"

let feasible ?engine g ~d =
  if d < 0 then invalid_arg "Exact_unit.feasible: negative deadline";
  let caps = Array.make g.G.n2 d in
  let result = Matching.solve ?engine ~capacities:caps g in
  if result.Matching.size = g.G.n1 then Some (Bip_assignment.of_mates g result.Matching.mate1)
  else None

let solve ?engine ?(strategy = Incremental) g =
  check g;
  if g.G.n1 = 0 then
    { makespan = 0; assignment = Bip_assignment.of_edges g [||]; deadlines_tried = 0 }
  else begin
    let tried = ref 0 in
    let attempt d =
      incr tried;
      feasible ?engine g ~d
    in
    let lo0 = Lower_bound.singleproc_unit g in
    match strategy with
    | Incremental ->
        let rec search d =
          match attempt d with
          | Some assignment -> { makespan = d; assignment; deadlines_tried = !tried }
          | None -> search (d + 1)
        in
        search lo0
    | Bisection ->
        (* Invariant: makespan lo-1 infeasible (lo0-1 < LB is), hi feasible. *)
        let rec bisect lo hi best =
          if lo >= hi then { makespan = hi; assignment = best; deadlines_tried = !tried }
          else begin
            let mid = (lo + hi) / 2 in
            match attempt mid with
            | Some assignment -> bisect lo mid assignment
            | None -> bisect (mid + 1) hi best
          end
        in
        (* n1 is always feasible (stack everything on one allowed processor
           per task), so start from the first feasible power-of-two probe to
           avoid paying for huge hi when the optimum is small. *)
        let rec find_hi d =
          match attempt d with
          | Some assignment -> (d, assignment)
          | None -> find_hi (min g.G.n1 (2 * d))
        in
        let hi, best = find_hi (max lo0 1) in
        bisect lo0 hi best
  end
