module G = Bipartite.Graph
module H = Hyper.Graph
module Adv = Bipartite.Adversarial
module Ba = Semimatch.Bip_assignment
module Ha = Semimatch.Hyp_assignment
module Lb = Semimatch.Lower_bound
module Exact = Semimatch.Exact_unit
module Gb = Semimatch.Greedy_bipartite
module Gh = Semimatch.Greedy_hyper
module Ls = Semimatch.Local_search
module Red = Semimatch.Reduction
module Bf = Semimatch.Brute_force

let check = Alcotest.(check bool)

(* Shared random-instance helpers (small, for brute-force comparisons). *)

let random_bipartite rng ~n1 ~n2 =
  let edges = ref [] in
  for v = 0 to n1 - 1 do
    let deg = 1 + Randkit.Prng.int rng (min 3 n2) in
    let procs = Randkit.Prng.sample_without_replacement rng ~k:deg ~n:n2 in
    Array.iter (fun u -> edges := (v, u) :: !edges) procs
  done;
  G.unit_weights ~n1 ~n2 ~edges:(List.rev !edges)

let random_hyper rng ~n1 ~n2 ~weights =
  let hyperedges = ref [] in
  for v = 0 to n1 - 1 do
    let configs = 1 + Randkit.Prng.int rng 3 in
    for _ = 1 to configs do
      let size = 1 + Randkit.Prng.int rng (min 3 n2) in
      let procs = Randkit.Prng.sample_without_replacement rng ~k:size ~n:n2 in
      let w =
        match weights with
        | `Unit -> 1.0
        | `Random -> float_of_int (1 + Randkit.Prng.int rng 5)
      in
      hyperedges := (v, procs, w) :: !hyperedges
    done
  done;
  H.create ~n1 ~n2 ~hyperedges:(List.rev !hyperedges)

(* ------------------------------------------------------------ Assignments *)

let test_bip_assignment_loads () =
  let g = G.create ~n1:3 ~n2:2 ~edges:[ (0, 0, 2.0); (1, 0, 3.0); (1, 1, 1.0); (2, 1, 4.0) ] in
  let a = Ba.of_edges g [| 0; 2; 3 |] in
  Alcotest.(check (array (float 1e-9))) "loads" [| 2.0; 5.0 |] (Ba.loads g a);
  Alcotest.(check (float 1e-9)) "makespan" 5.0 (Ba.makespan g a);
  Alcotest.(check int) "processor of T1" 1 (Ba.processor g a 1);
  check "valid" true (Ba.is_valid g a)

let test_bip_assignment_validation () =
  let g = G.unit_weights ~n1:2 ~n2:2 ~edges:[ (0, 0); (1, 1) ] in
  Alcotest.check_raises "edge of wrong task"
    (Invalid_argument "Bip_assignment: chosen edge does not belong to the task") (fun () ->
      ignore (Ba.of_edges g [| 1; 0 |]))

let test_bip_of_mates () =
  let g = G.unit_weights ~n1:2 ~n2:2 ~edges:[ (0, 0); (0, 1); (1, 0) ] in
  let a = Ba.of_mates g [| 1; 0 |] in
  Alcotest.(check int) "T0 -> P1" 1 (Ba.processor g a 0);
  Alcotest.(check int) "T1 -> P0" 0 (Ba.processor g a 1)

let test_hyp_assignment_loads () =
  let h =
    H.create ~n1:2 ~n2:3
      ~hyperedges:[ (0, [| 0 |], 2.0); (0, [| 1; 2 |], 1.0); (1, [| 0; 1 |], 3.0) ]
  in
  let a = Ha.of_choices h [| 1; 2 |] in
  Alcotest.(check (array (float 1e-9))) "loads" [| 3.0; 4.0; 1.0 |] (Ha.loads h a);
  Alcotest.(check (float 1e-9)) "makespan" 4.0 (Ha.makespan h a);
  Alcotest.(check (array int)) "alloc T0" [| 1; 2 |] (Ha.alloc h a 0);
  Alcotest.(check (float 1e-9)) "total work" 8.0 (Ha.total_work h a);
  check "valid" true (Ha.is_valid h a)

let test_hyp_assignment_validation () =
  let h = H.create ~n1:2 ~n2:1 ~hyperedges:[ (0, [| 0 |], 1.0); (1, [| 0 |], 1.0) ] in
  Alcotest.check_raises "hyperedge of wrong task"
    (Invalid_argument "Hyp_assignment: chosen hyperedge does not belong to the task") (fun () ->
      ignore (Ha.of_choices h [| 1; 0 |]))

(* ------------------------------------------------------------ Lower bound *)

let test_lb_fig2 () =
  let h = Hyper.Generate.fig2 () in
  (* Cheapest work: T1 min(1, 2)=1, T2 min(2,2)=2, T3=1, T4=1 → 5/3. *)
  Alcotest.(check (float 1e-9)) "Eq.1" (5.0 /. 3.0) (Lb.multiproc h);
  Alcotest.(check (float 1e-9)) "refined >= Eq.1" (5.0 /. 3.0) (Lb.multiproc_refined h)

let lb_below_optimum_prop =
  QCheck.Test.make ~name:"LB <= optimal makespan (brute force)" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 5 and n2 = 1 + Randkit.Prng.int rng 4 in
      let h = random_hyper rng ~n1 ~n2 ~weights:`Random in
      let opt, _ = Bf.multiproc h in
      Lb.multiproc h <= opt +. 1e-9 && Lb.multiproc_refined h <= opt +. 1e-9)

let test_lb_singleproc_unit () =
  let g = random_bipartite (Randkit.Prng.create ~seed:1) ~n1:10 ~n2:3 in
  Alcotest.(check int) "ceil(10/3)" 4 (Lb.singleproc_unit g)

(* --------------------------------------------------------------- Exact *)

let exact_matches_brute_force_prop =
  QCheck.Test.make ~name:"exact SINGLEPROC-UNIT = brute force" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 7 and n2 = 1 + Randkit.Prng.int rng 4 in
      let g = random_bipartite rng ~n1 ~n2 in
      let opt, _ = Bf.singleproc g in
      let s = Exact.solve g in
      Ba.is_valid g s.Exact.assignment
      && abs_float (Ba.makespan g s.Exact.assignment -. float_of_int s.Exact.makespan) < 1e-9
      && float_of_int s.Exact.makespan = opt)

let incremental_equals_bisection_prop =
  QCheck.Test.make ~name:"incremental and bisection agree" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 40 and n2 = 1 + Randkit.Prng.int rng 6 in
      let g = random_bipartite rng ~n1 ~n2 in
      let a = Exact.solve ~strategy:Exact.Incremental g in
      let b = Exact.solve ~strategy:Exact.Bisection g in
      a.Exact.makespan = b.Exact.makespan)

let exact_engines_agree_prop =
  QCheck.Test.make ~name:"exact agrees across matching engines" ~count:60
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 30 and n2 = 1 + Randkit.Prng.int rng 6 in
      let g = random_bipartite rng ~n1 ~n2 in
      let spans =
        List.map (fun engine -> (Exact.solve ~engine g).Exact.makespan) Matching.all_engines
      in
      match spans with [ a; b; c ] -> a = b && b = c | _ -> false)

let test_exact_rejects_weighted () =
  let g = G.create ~n1:1 ~n2:1 ~edges:[ (0, 0, 2.0) ] in
  Alcotest.check_raises "weighted" (Invalid_argument "Exact_unit: weights must all be 1")
    (fun () -> ignore (Exact.solve g))

let test_exact_rejects_isolated () =
  let g = G.unit_weights ~n1:2 ~n2:1 ~edges:[ (0, 0) ] in
  Alcotest.check_raises "isolated" (Invalid_argument "Exact_unit: task with no allowed processor")
    (fun () -> ignore (Exact.solve g))

let test_exact_empty () =
  let g = G.unit_weights ~n1:0 ~n2:2 ~edges:[] in
  Alcotest.(check int) "makespan 0" 0 (Exact.solve g).Exact.makespan

let test_feasible_decision () =
  let g = G.unit_weights ~n1:4 ~n2:2 ~edges:[ (0, 0); (1, 0); (2, 0); (3, 1) ] in
  check "deadline 2 infeasible" true (Exact.feasible g ~d:2 = None);
  check "deadline 3 feasible" true (Exact.feasible g ~d:3 <> None);
  Alcotest.(check int) "optimum 3" 3 (Exact.solve g).Exact.makespan

(* ------------------------------------------------------- Bipartite greedy *)

let test_fig1_behaviour () =
  let g = Adv.fig1 () in
  Alcotest.(check (float 1e-9)) "basic falls in the trap" 2.0 (Gb.makespan Gb.Basic g);
  Alcotest.(check (float 1e-9)) "sorted schedules T2 first" 1.0 (Gb.makespan Gb.Sorted g);
  Alcotest.(check (float 1e-9)) "double-sorted fine" 1.0 (Gb.makespan Gb.Double_sorted g);
  Alcotest.(check (float 1e-9)) "expected fine" 1.0 (Gb.makespan Gb.Expected g)

let test_fig3_behaviour () =
  (* Paper Fig. 3: basic- and sorted-greedy reach k while OPT = 1. *)
  List.iter
    (fun k ->
      let g = Adv.sorted_greedy_trap ~k in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "basic reaches k=%d" k)
        (float_of_int k) (Gb.makespan Gb.Basic g);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "sorted reaches k=%d" k)
        (float_of_int k) (Gb.makespan Gb.Sorted g))
    [ 1; 2; 3; 4; 5 ]

let test_double_sorted_trap_behaviour () =
  (* TR Fig. 4: double-sorted still reaches 3, expected-greedy escapes. *)
  let g = Adv.double_sorted_trap () in
  Alcotest.(check (float 1e-9)) "double-sorted trapped" 3.0 (Gb.makespan Gb.Double_sorted g);
  Alcotest.(check (float 1e-9)) "expected-greedy escapes" 1.0 (Gb.makespan Gb.Expected g);
  Alcotest.(check int) "optimal is 1" 1 (Exact.solve g).Exact.makespan

let test_expected_trap_behaviour () =
  (* TR Fig. 5: even expected-greedy reaches 3. *)
  let g = Adv.expected_greedy_trap () in
  Alcotest.(check (float 1e-9)) "expected-greedy trapped" 3.0 (Gb.makespan Gb.Expected g);
  Alcotest.(check int) "optimal is 1" 1 (Exact.solve g).Exact.makespan

let greedy_bipartite_valid_prop =
  QCheck.Test.make ~name:"bipartite greedies: valid, >= LB, >= OPT" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 7 and n2 = 1 + Randkit.Prng.int rng 4 in
      let g = random_bipartite rng ~n1 ~n2 in
      let opt, _ = Bf.singleproc g in
      List.for_all
        (fun algorithm ->
          let a = Gb.run algorithm g in
          let m = Ba.makespan g a in
          Ba.is_valid g a && m >= opt -. 1e-9 && m >= Lb.singleproc g -. 1e-9)
        Gb.all)


let heaviest_first_equals_basic_on_unit_prop =
  QCheck.Test.make ~name:"heaviest-first = basic-greedy on unit weights" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 20 and n2 = 1 + Randkit.Prng.int rng 5 in
      let g = random_bipartite rng ~n1 ~n2 in
      (* All cheapest times tie, the sort is stable: identical decisions. *)
      (Gb.run Gb.Heaviest_first g).Ba.edge = (Gb.run Gb.Basic g).Ba.edge)

let test_heaviest_first_on_weighted () =
  (* One heavy task and two light ones on two machines: LPT places the heavy
     task first and balances; basic-greedy in input order does not. *)
  let g =
    G.create ~n1:3 ~n2:2
      ~edges:[ (0, 0, 1.0); (0, 1, 1.0); (1, 0, 1.0); (1, 1, 1.0); (2, 0, 2.0); (2, 1, 2.0) ]
  in
  Alcotest.(check (float 1e-9)) "LPT balances" 2.0 (Gb.makespan Gb.Heaviest_first g);
  Alcotest.(check (float 1e-9)) "basic stacks" 3.0 (Gb.makespan Gb.Basic g)

let run_in_order_identity_prop =
  QCheck.Test.make ~name:"run_in_order with identity = basic-greedy" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 20 and n2 = 1 + Randkit.Prng.int rng 5 in
      let g = random_bipartite rng ~n1 ~n2 in
      let order = Array.init n1 Fun.id in
      (Gb.run_in_order g ~order).Ba.edge = (Gb.run Gb.Basic g).Ba.edge)

let test_run_in_order_validation () =
  let g = G.unit_weights ~n1:2 ~n2:1 ~edges:[ (0, 0); (1, 0) ] in
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Greedy_bipartite.run_in_order: not a permutation") (fun () ->
      ignore (Gb.run_in_order g ~order:[| 0; 0 |]));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Greedy_bipartite.run_in_order: length mismatch") (fun () ->
      ignore (Gb.run_in_order g ~order:[| 0 |]))

let test_empty_instances () =
  let g = G.unit_weights ~n1:0 ~n2:3 ~edges:[] in
  Alcotest.(check (float 1e-9)) "greedy on empty" 0.0 (Gb.makespan Gb.Sorted g);
  Alcotest.(check int) "harvey on empty" 0 (Semimatch.Harvey.solve g).Semimatch.Harvey.makespan;
  let h = H.create ~n1:0 ~n2:3 ~hyperedges:[] in
  Alcotest.(check (float 1e-9)) "hyper greedy on empty" 0.0
    (Gh.makespan Gh.Expected_vector_greedy_hyp h)

let test_greedy_bipartite_rejects_isolated () =
  let g = G.unit_weights ~n1:2 ~n2:1 ~edges:[ (0, 0) ] in
  Alcotest.check_raises "isolated"
    (Invalid_argument "Greedy_bipartite: task with no allowed processor") (fun () ->
      ignore (Gb.run Gb.Basic g))

(* ------------------------------------------------------- Hypergraph greedy *)

let test_fig2_all_heuristics_optimal () =
  (* On the paper's Fig. 2 the optimum is 2 (both T3 and T4 are pinned to
     P3... actually T1/T2 can avoid P3): enumerate to be sure. *)
  let h = Hyper.Generate.fig2 () in
  let opt, _ = Bf.multiproc h in
  List.iter
    (fun algorithm ->
      let m = Gh.makespan algorithm h in
      check (Gh.name algorithm ^ " achieves optimum on fig2") true (m = opt))
    Gh.all

let greedy_hyper_valid_prop =
  QCheck.Test.make ~name:"hypergraph greedies: valid, >= LB, >= OPT" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 5 and n2 = 1 + Randkit.Prng.int rng 4 in
      let h = random_hyper rng ~n1 ~n2 ~weights:`Random in
      let opt, _ = Bf.multiproc h in
      let lb = Lb.multiproc h in
      List.for_all
        (fun algorithm ->
          let a = Gh.run algorithm h in
          let m = Ha.makespan h a in
          Ha.is_valid h a && m >= opt -. 1e-9 && m >= lb -. 1e-9)
        Gh.all)

let vector_variants_agree_prop =
  QCheck.Test.make ~name:"vector heuristics: naive = merged" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 8 and n2 = 1 + Randkit.Prng.int rng 6 in
      let h = random_hyper rng ~n1 ~n2 ~weights:`Random in
      List.for_all
        (fun algorithm ->
          let a = Gh.run ~vector_variant:Gh.Naive algorithm h in
          let b = Gh.run ~vector_variant:Gh.Merged algorithm h in
          a.Ha.choice = b.Ha.choice)
        [ Gh.Vector_greedy_hyp; Gh.Expected_vector_greedy_hyp ])

let hyper_greedy_matches_bipartite_on_singletons_prop =
  (* SGH on the bipartite embedding must behave exactly like sorted-greedy:
     the hypergraph algorithms generalize the bipartite ones. *)
  QCheck.Test.make ~name:"SGH specializes to sorted-greedy on singleton hyperedges" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 20 and n2 = 1 + Randkit.Prng.int rng 6 in
      let g = random_bipartite rng ~n1 ~n2 in
      let h = H.of_bipartite g in
      let bip = Gb.run Gb.Sorted g in
      let hyp = Gh.run Gh.Sorted_greedy_hyp h in
      bip.Ba.edge = hyp.Ha.choice)

let expected_hyper_specializes_prop =
  QCheck.Test.make ~name:"EGH specializes to expected-greedy on singleton hyperedges" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 20 and n2 = 1 + Randkit.Prng.int rng 6 in
      let g = random_bipartite rng ~n1 ~n2 in
      let h = H.of_bipartite g in
      let bip = Gb.run Gb.Expected g in
      let hyp = Gh.run Gh.Expected_greedy_hyp h in
      Ba.makespan g bip = Ha.makespan h hyp)

let test_greedy_hyper_rejects_isolated () =
  let h = H.create ~n1:2 ~n2:1 ~hyperedges:[ (0, [| 0 |], 1.0) ] in
  Alcotest.check_raises "isolated" (Invalid_argument "Greedy_hyper: task with no configuration")
    (fun () -> ignore (Gh.run Gh.Sorted_greedy_hyp h))

(* ------------------------------------------------------------ Local search *)

let local_search_never_worse_prop =
  QCheck.Test.make ~name:"local search never increases the makespan" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 8 and n2 = 1 + Randkit.Prng.int rng 5 in
      let h = random_hyper rng ~n1 ~n2 ~weights:`Random in
      let a = Gh.run Gh.Sorted_greedy_hyp h in
      let refined, _moves = Ls.refine h a in
      Ha.is_valid h refined && Ha.makespan h refined <= Ha.makespan h a +. 1e-9)

let test_local_search_improves_fig3 () =
  (* One-task moves cannot always reach the optimum (swapping two tasks on a
     loaded processor never improves the vector), but they provably get the
     k = 4 trap from makespan 4 down to at most 2: any processor at load >= 3
     hosts a task whose alternative is strictly lighter. *)
  let g = Adv.sorted_greedy_trap ~k:4 in
  let trapped = Gb.run Gb.Sorted g in
  Alcotest.(check (float 1e-9)) "trapped at 4" 4.0 (Ba.makespan g trapped);
  let refined, moves = Ls.refine_bipartite g trapped in
  check "made moves" true (moves > 0);
  check "escapes below 3" true (Ba.makespan g refined <= 2.0)

(* --------------------------------------------------------------- Reduction *)

let yes_instance = { Red.q = 2; triples = [ (0, 1, 2); (3, 4, 5); (0, 1, 3) ] }
let no_instance = { Red.q = 2; triples = [ (0, 1, 2); (0, 3, 4); (1, 3, 5) ] }

let test_reduction_shapes () =
  let h = Red.to_multiproc yes_instance in
  Alcotest.(check int) "q tasks" 2 h.H.n1;
  Alcotest.(check int) "3q processors" 6 h.H.n2;
  Alcotest.(check int) "every task offered every triple" 3 (H.task_degree h 0);
  Alcotest.(check int) "hyperedges = q|C|" 6 (H.num_hyperedges h)

let test_reduction_yes () =
  check "yes-instance has cover" true (Red.has_exact_cover yes_instance);
  let h = Red.to_multiproc yes_instance in
  let opt, witness = Bf.multiproc h in
  Alcotest.(check (float 1e-9)) "makespan 1 iff cover" 1.0 opt;
  match Red.cover_of_schedule yes_instance h witness with
  | None -> Alcotest.fail "expected a cover"
  | Some cover ->
      Alcotest.(check int) "q triples" 2 (List.length cover);
      let elements = List.concat_map (fun (a, b, c) -> [ a; b; c ]) cover in
      Alcotest.(check (list int)) "exact cover" [ 0; 1; 2; 3; 4; 5 ] (List.sort compare elements)

let test_reduction_no () =
  check "no-instance lacks cover" false (Red.has_exact_cover no_instance);
  let h = Red.to_multiproc no_instance in
  let opt, witness = Bf.multiproc h in
  check "makespan > 1" true (opt > 1.0);
  check "no cover extractable" true (Red.cover_of_schedule no_instance h witness = None)

let test_reduction_related_weights () =
  (* Paper, end of Theorem 1: "the problem with related weights is also
     NP-complete, since all hyperedges have the same degree in the proof".
     Concretely: applying the Related scheme to a reduced instance yields
     constant weights (ceil(3·3/3) = 3), so a cover exists iff the optimum
     is exactly 3 — the reduction survives the weight scheme. *)
  let h = Hyper.Weights.apply Hyper.Weights.Related (Red.to_multiproc yes_instance) in
  for e = 0 to H.num_hyperedges h - 1 do
    Alcotest.(check (float 1e-9)) "constant weight 3" 3.0 (H.h_weight h e)
  done;
  let opt, _ = Bf.multiproc h in
  Alcotest.(check (float 1e-9)) "cover <-> makespan 3" 3.0 opt;
  let h_no = Hyper.Weights.apply Hyper.Weights.Related (Red.to_multiproc no_instance) in
  let opt_no, _ = Bf.multiproc h_no in
  check "no cover -> makespan > 3" true (opt_no > 3.0)

let reduction_equivalence_prop =
  QCheck.Test.make ~name:"X3C cover exists iff reduced optimum is 1" ~count:60
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let q = 1 + Randkit.Prng.int rng 2 in
      let n = 3 * q in
      let num_triples = 1 + Randkit.Prng.int rng 5 in
      let triples =
        List.init num_triples (fun _ ->
            let s = Randkit.Prng.sample_without_replacement rng ~k:3 ~n in
            (s.(0), s.(1), s.(2)))
      in
      let inst = { Red.q; triples } in
      let h = Red.to_multiproc inst in
      let opt, _ = Bf.multiproc h in
      Red.has_exact_cover inst = (opt = 1.0))

(* -------------------------------------------------------------- Brute force *)

let test_brute_force_guard () =
  let h =
    H.create ~n1:30 ~n2:2
      ~hyperedges:
        (List.concat_map
           (fun v -> [ (v, [| 0 |], 1.0); (v, [| 1 |], 1.0) ])
           (List.init 30 Fun.id))
  in
  Alcotest.check_raises "guard" (Invalid_argument "Brute_force: search space exceeds the limit")
    (fun () -> ignore (Bf.multiproc ~limit:1000 h))

let test_brute_force_simple () =
  let h =
    H.create ~n1:2 ~n2:2
      ~hyperedges:[ (0, [| 0 |], 1.0); (0, [| 1 |], 1.0); (1, [| 0 |], 1.0); (1, [| 1 |], 1.0) ]
  in
  let opt, a = Bf.multiproc h in
  Alcotest.(check (float 1e-9)) "spread out" 1.0 opt;
  check "valid" true (Ha.is_valid h a)

let suite =
  [
    Alcotest.test_case "bip assignment loads" `Quick test_bip_assignment_loads;
    Alcotest.test_case "bip assignment validation" `Quick test_bip_assignment_validation;
    Alcotest.test_case "bip assignment of_mates" `Quick test_bip_of_mates;
    Alcotest.test_case "hyp assignment loads" `Quick test_hyp_assignment_loads;
    Alcotest.test_case "hyp assignment validation" `Quick test_hyp_assignment_validation;
    Alcotest.test_case "lower bound on fig2" `Quick test_lb_fig2;
    QCheck_alcotest.to_alcotest lb_below_optimum_prop;
    Alcotest.test_case "singleproc-unit trivial LB" `Quick test_lb_singleproc_unit;
    QCheck_alcotest.to_alcotest exact_matches_brute_force_prop;
    QCheck_alcotest.to_alcotest incremental_equals_bisection_prop;
    QCheck_alcotest.to_alcotest exact_engines_agree_prop;
    Alcotest.test_case "exact rejects weighted" `Quick test_exact_rejects_weighted;
    Alcotest.test_case "exact rejects isolated" `Quick test_exact_rejects_isolated;
    Alcotest.test_case "exact on empty instance" `Quick test_exact_empty;
    Alcotest.test_case "feasibility decision" `Quick test_feasible_decision;
    Alcotest.test_case "paper fig1 behaviour" `Quick test_fig1_behaviour;
    Alcotest.test_case "paper fig3 behaviour" `Quick test_fig3_behaviour;
    Alcotest.test_case "TR fig4 behaviour" `Quick test_double_sorted_trap_behaviour;
    Alcotest.test_case "TR fig5 behaviour" `Quick test_expected_trap_behaviour;
    QCheck_alcotest.to_alcotest greedy_bipartite_valid_prop;
    Alcotest.test_case "bipartite greedy rejects isolated" `Quick test_greedy_bipartite_rejects_isolated;
    QCheck_alcotest.to_alcotest heaviest_first_equals_basic_on_unit_prop;
    Alcotest.test_case "heaviest-first on weighted toy" `Quick test_heaviest_first_on_weighted;
    QCheck_alcotest.to_alcotest run_in_order_identity_prop;
    Alcotest.test_case "run_in_order validation" `Quick test_run_in_order_validation;
    Alcotest.test_case "empty instances" `Quick test_empty_instances;
    Alcotest.test_case "fig2: heuristics reach optimum" `Quick test_fig2_all_heuristics_optimal;
    QCheck_alcotest.to_alcotest greedy_hyper_valid_prop;
    QCheck_alcotest.to_alcotest vector_variants_agree_prop;
    QCheck_alcotest.to_alcotest hyper_greedy_matches_bipartite_on_singletons_prop;
    QCheck_alcotest.to_alcotest expected_hyper_specializes_prop;
    Alcotest.test_case "hypergraph greedy rejects isolated" `Quick test_greedy_hyper_rejects_isolated;
    QCheck_alcotest.to_alcotest local_search_never_worse_prop;
    Alcotest.test_case "local search improves fig3" `Quick test_local_search_improves_fig3;
    Alcotest.test_case "X3C reduction shapes" `Quick test_reduction_shapes;
    Alcotest.test_case "X3C yes-instance" `Quick test_reduction_yes;
    Alcotest.test_case "X3C no-instance" `Quick test_reduction_no;
    Alcotest.test_case "X3C reduction under related weights" `Quick test_reduction_related_weights;
    QCheck_alcotest.to_alcotest reduction_equivalence_prop;
    Alcotest.test_case "brute force guard" `Quick test_brute_force_guard;
    Alcotest.test_case "brute force simple" `Quick test_brute_force_simple;
  ]
