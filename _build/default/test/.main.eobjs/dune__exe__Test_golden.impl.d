test/test_golden.ml: Alcotest Bipartite Experiments Hyper List Semimatch
