test/test_matching.ml: Alcotest Array Bipartite List Matching Printf QCheck QCheck_alcotest Randkit
