test/test_harvey.ml: Alcotest Array Bipartite List Printf QCheck QCheck_alcotest Randkit Semimatch
