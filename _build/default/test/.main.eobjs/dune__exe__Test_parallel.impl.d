test/test_parallel.ml: Alcotest Array Experiments Fun Hyper List Parpool
