test/test_semimatch.ml: Alcotest Array Bipartite Fun Hyper List Matching Printf QCheck QCheck_alcotest Randkit Semimatch
