test/test_ds.ml: Alcotest Array Ds Fun Hashtbl List QCheck QCheck_alcotest Randkit
