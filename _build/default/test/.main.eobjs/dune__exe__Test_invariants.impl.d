test/test_invariants.ml: Alcotest Array Bipartite Hyper List Printf QCheck QCheck_alcotest Randkit Sched Semimatch
