test/test_experiments.ml: Alcotest Bipartite Experiments Hyper List Randkit Semimatch String
