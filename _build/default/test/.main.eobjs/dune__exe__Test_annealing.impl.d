test/test_annealing.ml: Alcotest Bipartite Hyper List QCheck QCheck_alcotest Randkit Semimatch
