test/test_randomized.ml: Alcotest Hyper List QCheck QCheck_alcotest Randkit Semimatch
