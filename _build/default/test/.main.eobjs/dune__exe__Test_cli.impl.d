test/test_cli.ml: Alcotest Filename Fun Hyper In_channel List Printf Semimatch String Sys Unix
