test/test_hyper.ml: Alcotest Array Bipartite Float Hyper List Randkit String
