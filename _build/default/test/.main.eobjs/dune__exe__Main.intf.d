test/main.mli:
