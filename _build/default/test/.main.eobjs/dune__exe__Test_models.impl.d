test/test_models.ml: Array Ds Hashtbl List QCheck QCheck_alcotest
