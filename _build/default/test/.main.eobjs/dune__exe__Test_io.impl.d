test/test_io.ml: Alcotest Filename Fun Hyper QCheck QCheck_alcotest Randkit String Sys
