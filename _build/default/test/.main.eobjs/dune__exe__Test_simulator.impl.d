test/test_simulator.ml: Alcotest Array Float Hashtbl Hyper List Printf QCheck QCheck_alcotest Randkit Semimatch Simulator String
