test/test_bipartite.ml: Alcotest Array Bipartite List Matching Printf Randkit Semimatch String
