test/test_sched.ml: Alcotest Float Format Hyper List Sched Semimatch String
