(* Cross-module invariants: monotonicity and optimality properties that
   connect the lower bound, the exact algorithms, local search and the
   heuristics.  These are the properties a user implicitly relies on when
   interpreting experiment output. *)

module G = Bipartite.Graph
module H = Hyper.Graph
module Ha = Semimatch.Hyp_assignment

let check = Alcotest.(check bool)

let random_hyper rng ~n1 ~n2 =
  let hyperedges = ref [] in
  for v = 0 to n1 - 1 do
    let configs = 1 + Randkit.Prng.int rng 3 in
    for _ = 1 to configs do
      let size = 1 + Randkit.Prng.int rng (min 3 n2) in
      let procs = Randkit.Prng.sample_without_replacement rng ~k:size ~n:n2 in
      hyperedges := (v, procs, float_of_int (1 + Randkit.Prng.int rng 4)) :: !hyperedges
    done
  done;
  H.create ~n1 ~n2 ~hyperedges:(List.rev !hyperedges)

let hyperedge_list h =
  List.init (H.num_hyperedges h) (fun e -> (H.h_task h e, H.h_procs h e, H.h_weight h e))

(* 1. Adding a configuration can only lower (or keep) the bound and the
   optimum: more freedom never hurts. *)
let more_options_never_hurt_prop =
  QCheck.Test.make ~name:"extra configuration lowers LB and optimum (weakly)" ~count:80
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 4 and n2 = 2 + Randkit.Prng.int rng 3 in
      let h = random_hyper rng ~n1 ~n2 in
      let v = Randkit.Prng.int rng n1 in
      let size = 1 + Randkit.Prng.int rng (min 3 n2) in
      let procs = Randkit.Prng.sample_without_replacement rng ~k:size ~n:n2 in
      let w = float_of_int (1 + Randkit.Prng.int rng 4) in
      let h' = H.create ~n1 ~n2 ~hyperedges:(hyperedge_list h @ [ (v, procs, w) ]) in
      let lb = Semimatch.Lower_bound.multiproc h and lb' = Semimatch.Lower_bound.multiproc h' in
      let opt, _ = Semimatch.Brute_force.multiproc h in
      let opt', _ = Semimatch.Brute_force.multiproc h' in
      lb' <= lb +. 1e-9 && opt' <= opt +. 1e-9)

(* 2. Deadline feasibility is monotone: a schedule fitting D fits D+1. *)
let feasibility_monotone_prop =
  QCheck.Test.make ~name:"exact decision monotone in the deadline" ~count:80
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 20 and n2 = 1 + Randkit.Prng.int rng 5 in
      let edges = ref [] in
      for v = 0 to n1 - 1 do
        let deg = 1 + Randkit.Prng.int rng (min 3 n2) in
        Array.iter
          (fun u -> edges := (v, u) :: !edges)
          (Randkit.Prng.sample_without_replacement rng ~k:deg ~n:n2)
      done;
      let g = G.unit_weights ~n1 ~n2 ~edges:(List.rev !edges) in
      let opt = (Semimatch.Exact_unit.solve g).Semimatch.Exact_unit.makespan in
      Semimatch.Exact_unit.feasible g ~d:(opt - 1) = None
      && Semimatch.Exact_unit.feasible g ~d:opt <> None
      && Semimatch.Exact_unit.feasible g ~d:(opt + 1) <> None
      && Semimatch.Exact_unit.feasible g ~d:(opt + 7) <> None)

(* 3. Local search is idempotent: a refined schedule admits no further
   improving single-task move. *)
let local_search_idempotent_prop =
  QCheck.Test.make ~name:"local search is idempotent" ~count:80
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 10 and n2 = 1 + Randkit.Prng.int rng 5 in
      let h = random_hyper rng ~n1 ~n2 in
      let start = Semimatch.Greedy_hyper.run Semimatch.Greedy_hyper.Sorted_greedy_hyp h in
      let once, _ = Semimatch.Local_search.refine h start in
      let twice, moves = Semimatch.Local_search.refine h once in
      moves = 0 && twice.Ha.choice = once.Ha.choice)

(* 4. Harvey's solution minimizes total flow time over ALL semi-matchings
   (checked against exhaustive enumeration on tiny unit instances). *)
let harvey_flow_time_globally_optimal_prop =
  QCheck.Test.make ~name:"Harvey minimizes total flow time globally" ~count:60
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 5 and n2 = 1 + Randkit.Prng.int rng 3 in
      let edges = ref [] in
      for v = 0 to n1 - 1 do
        let deg = 1 + Randkit.Prng.int rng (min 3 n2) in
        Array.iter
          (fun u -> edges := (v, u) :: !edges)
          (Randkit.Prng.sample_without_replacement rng ~k:deg ~n:n2)
      done;
      let g = G.unit_weights ~n1 ~n2 ~edges:(List.rev !edges) in
      let best = ref max_int in
      let loads = Array.make n2 0 in
      let rec enumerate v =
        if v = n1 then best := min !best (Semimatch.Harvey.flow_time loads)
        else
          G.iter_neighbors g v (fun u _w ->
              loads.(u) <- loads.(u) + 1;
              enumerate (v + 1);
              loads.(u) <- loads.(u) - 1)
      in
      enumerate 0;
      (Semimatch.Harvey.solve g).Semimatch.Harvey.total_flow_time = !best)

(* 5. Every heuristic respects the refined lower bound too. *)
let refined_lb_valid_prop =
  QCheck.Test.make ~name:"refined LB below every heuristic makespan" ~count:80
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 10 and n2 = 1 + Randkit.Prng.int rng 5 in
      let h = random_hyper rng ~n1 ~n2 in
      let lb = Semimatch.Lower_bound.multiproc_refined h in
      List.for_all
        (fun algo -> Semimatch.Greedy_hyper.makespan algo h >= lb -. 1e-9)
        Semimatch.Greedy_hyper.all)

(* 6. Scheduling through the high-level API agrees with the low-level one. *)
let sched_agrees_with_semimatch_prop =
  QCheck.Test.make ~name:"Sched.solve = Greedy_hyper on the compiled hypergraph" ~count:50
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 6 and n2 = 1 + Randkit.Prng.int rng 4 in
      let h = random_hyper rng ~n1 ~n2 in
      (* Rebuild as a named instance. *)
      let processors = List.init n2 (Printf.sprintf "p%d") in
      let tasks =
        List.init n1 (fun v ->
            let configs = ref [] in
            H.iter_task_hyperedges h v (fun e ->
                let procs =
                  Array.to_list (Array.map (Printf.sprintf "p%d") (H.h_procs h e))
                in
                configs := Sched.config procs ~time:(H.h_weight h e) :: !configs);
            Sched.task (Printf.sprintf "t%d" v) (List.rev !configs))
      in
      let instance = Sched.instance ~processors ~tasks in
      let schedule =
        Sched.solve ~algorithm:(Sched.Greedy Semimatch.Greedy_hyper.Sorted_greedy_hyp) instance
      in
      let direct =
        Semimatch.Greedy_hyper.makespan Semimatch.Greedy_hyper.Sorted_greedy_hyp h
      in
      abs_float (schedule.Sched.makespan -. direct) < 1e-9)

let suite =
  [
    QCheck_alcotest.to_alcotest more_options_never_hurt_prop;
    QCheck_alcotest.to_alcotest feasibility_monotone_prop;
    QCheck_alcotest.to_alcotest local_search_idempotent_prop;
    QCheck_alcotest.to_alcotest harvey_flow_time_globally_optimal_prop;
    QCheck_alcotest.to_alcotest refined_lb_valid_prop;
    QCheck_alcotest.to_alcotest sched_agrees_with_semimatch_prop;
  ]
