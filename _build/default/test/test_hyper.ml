module H = Hyper.Graph
module W = Hyper.Weights
module Gen = Hyper.Generate

let check = Alcotest.(check bool)

let toy () =
  H.create ~n1:2 ~n2:3
    ~hyperedges:[ (0, [| 0 |], 2.0); (0, [| 1; 2 |], 1.0); (1, [| 0; 1 |], 3.0) ]

let test_create_accessors () =
  let h = toy () in
  Alcotest.(check int) "hyperedges" 3 (H.num_hyperedges h);
  Alcotest.(check int) "pins" 5 (H.num_pins h);
  Alcotest.(check int) "deg T0" 2 (H.task_degree h 0);
  Alcotest.(check int) "deg T1" 1 (H.task_degree h 1);
  Alcotest.(check int) "max degree" 2 (H.max_task_degree h);
  Alcotest.(check int) "size h1" 2 (H.h_size h 1);
  Alcotest.(check (float 1e-9)) "weight h2" 3.0 (H.h_weight h 2);
  Alcotest.(check (array int)) "procs h1" [| 1; 2 |] (H.h_procs h 1);
  Alcotest.(check int) "owner of h0" 0 (H.h_task h 0);
  Alcotest.(check int) "owner of h2" 1 (H.h_task h 2);
  check "feasible" false (H.has_isolated_task h)

let test_create_regroups_interleaved () =
  (* Hyperedges given interleaved across tasks must be grouped per task with
     relative order preserved. *)
  let h =
    H.create ~n1:2 ~n2:2
      ~hyperedges:[ (1, [| 0 |], 1.0); (0, [| 1 |], 2.0); (1, [| 1 |], 3.0); (0, [| 0 |], 4.0) ]
  in
  let weights_of v =
    let acc = ref [] in
    H.iter_task_hyperedges h v (fun e -> acc := H.h_weight h e :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list (float 1e-9))) "task 0 order" [ 2.0; 4.0 ] (weights_of 0);
  Alcotest.(check (list (float 1e-9))) "task 1 order" [ 1.0; 3.0 ] (weights_of 1)

let test_validation () =
  let raises msg f = Alcotest.check_raises "invalid" (Invalid_argument msg) f in
  raises "Hyper.Graph: task out of range" (fun () ->
      ignore (H.create ~n1:1 ~n2:1 ~hyperedges:[ (1, [| 0 |], 1.0) ]));
  raises "Hyper.Graph: empty processor set" (fun () ->
      ignore (H.create ~n1:1 ~n2:1 ~hyperedges:[ (0, [||], 1.0) ]));
  raises "Hyper.Graph: duplicate processor in hyperedge" (fun () ->
      ignore (H.create ~n1:1 ~n2:2 ~hyperedges:[ (0, [| 1; 1 |], 1.0) ]));
  raises "Hyper.Graph: weight must be positive" (fun () ->
      ignore (H.create ~n1:1 ~n2:1 ~hyperedges:[ (0, [| 0 |], -1.0) ]))

let test_isolated_task () =
  let h = H.create ~n1:2 ~n2:1 ~hyperedges:[ (0, [| 0 |], 1.0) ] in
  check "task 1 has no configuration" true (H.has_isolated_task h)

let test_of_bipartite () =
  let g = Bipartite.Graph.create ~n1:2 ~n2:2 ~edges:[ (0, 0, 1.5); (0, 1, 2.5); (1, 0, 3.0) ] in
  let h = H.of_bipartite g in
  Alcotest.(check int) "hyperedge per edge" 3 (H.num_hyperedges h);
  Alcotest.(check int) "all singletons" 3 (H.num_pins h);
  Alcotest.(check (array int)) "first config of T0" [| 0 |] (H.h_procs h 0);
  Alcotest.(check (float 1e-9)) "weights carried" 2.5 (H.h_weight h 1)

let test_min_max_h_size () =
  let h = toy () in
  Alcotest.(check (pair int int)) "sizes" (1, 2) (H.min_max_h_size h)

let test_fig2 () =
  let h = Gen.fig2 () in
  Alcotest.(check int) "tasks" 4 h.H.n1;
  Alcotest.(check int) "procs" 3 h.H.n2;
  Alcotest.(check int) "T3 single config" 1 (H.task_degree h 2);
  Alcotest.(check int) "T4 single config" 1 (H.task_degree h 3);
  Alcotest.(check (array int)) "T3 must use P3" [| 2 |] (H.h_procs h h.H.task_off.(2));
  (* T1 configurations: {P1} and {P2,P3}. *)
  Alcotest.(check (array int)) "T1 first config" [| 0 |] (H.h_procs h 0);
  Alcotest.(check (array int)) "T1 second config" [| 1; 2 |] (H.h_procs h 1)

(* ---------------------------------------------------------------- Weights *)

let test_unit_weights () =
  let h = W.apply W.Unit (toy ()) in
  for e = 0 to H.num_hyperedges h - 1 do
    Alcotest.(check (float 1e-9)) "unit" 1.0 (H.h_weight h e)
  done

let test_related_weights_formula () =
  (* Sizes are 1 and 2: min*max = 2, so w = ceil(2/s): 2 for singletons,
     1 for pairs — more processors, smaller time. *)
  let h = W.apply W.Related (toy ()) in
  Alcotest.(check (float 1e-9)) "singleton" 2.0 (H.h_weight h 0);
  Alcotest.(check (float 1e-9)) "pair" 1.0 (H.h_weight h 1);
  Alcotest.(check (float 1e-9)) "pair" 1.0 (H.h_weight h 2)

let test_related_weights_antimonotone () =
  let rng = Randkit.Prng.create ~seed:3 in
  let h =
    Gen.generate rng ~family:Gen.Fewg_manyg ~n:100 ~p:32 ~dv:3 ~dh:5 ~g:4 ~weights:W.Related
  in
  for e = 1 to H.num_hyperedges h - 1 do
    if H.h_size h e > H.h_size h (e - 1) then
      check "bigger set, not bigger weight" true (H.h_weight h e <= H.h_weight h (e - 1))
  done

let test_random_weights () =
  let rng = Randkit.Prng.create ~seed:5 in
  let h = W.apply ~rng W.default_random (toy ()) in
  for e = 0 to H.num_hyperedges h - 1 do
    let w = H.h_weight h e in
    check "integer in [1,10]" true (w >= 1.0 && w <= 10.0 && Float.is_integer w)
  done

let test_random_weights_needs_rng () =
  Alcotest.check_raises "no rng" (Invalid_argument "Weights.apply: Random scheme needs ~rng")
    (fun () -> ignore (W.apply W.default_random (toy ())))

let test_weights_names () =
  Alcotest.(check string) "unit" "unit" (W.name W.Unit);
  Alcotest.(check string) "related" "related" (W.name W.Related);
  Alcotest.(check string) "random" "random[1,10]" (W.name W.default_random)

(* -------------------------------------------------------------- Generator *)

let test_generate_shapes () =
  let rng = Randkit.Prng.create ~seed:7 in
  let h = Gen.generate rng ~family:Gen.Fewg_manyg ~n:500 ~p:64 ~dv:5 ~dh:10 ~g:8 ~weights:W.Unit in
  Alcotest.(check int) "tasks" 500 h.H.n1;
  Alcotest.(check int) "procs" 64 h.H.n2;
  check "no isolated task" false (H.has_isolated_task h);
  (* |N| ≈ n·dv. *)
  let nh = H.num_hyperedges h in
  check "|N| near 2500" true (nh > 2200 && nh < 2800);
  for e = 0 to nh - 1 do
    check "hyperedge nonempty" true (H.h_size h e >= 1)
  done

let test_generate_hilo_family () =
  let rng = Randkit.Prng.create ~seed:9 in
  let h = Gen.generate rng ~family:Gen.Hilo ~n:200 ~p:64 ~dv:5 ~dh:10 ~g:8 ~weights:W.Unit in
  check "no isolated task" false (H.has_isolated_task h);
  let nh = H.num_hyperedges h in
  check "|N| near 1000" true (nh > 850 && nh < 1150);
  (* HiLo pins: up to 2(dh+1) per hyperedge. *)
  for e = 0 to nh - 1 do
    check "pin count bounded" true (H.h_size h e >= 1 && H.h_size h e <= 22)
  done

let test_generate_reproducible () =
  let mk () =
    let rng = Randkit.Prng.create ~seed:11 in
    Gen.generate rng ~family:Gen.Fewg_manyg ~n:100 ~p:32 ~dv:2 ~dh:3 ~g:4 ~weights:W.Related
  in
  let a = mk () and b = mk () in
  check "identical structure" true
    (a.H.task_off = b.H.task_off && a.H.h_off = b.H.h_off && a.H.h_adj = b.H.h_adj && a.H.w = b.H.w)

let test_generate_uniform () =
  let rng = Randkit.Prng.create ~seed:21 in
  let h = Gen.generate_uniform rng ~n:300 ~p:40 ~dv:3 ~dh:5 ~weights:W.Related in
  check "feasible" false (H.has_isolated_task h);
  let nh = H.num_hyperedges h in
  check "|N| near 900" true (nh > 750 && nh < 1050);
  (* Sizes are binomial with mean 5, clamped to [1, p]. *)
  for e = 0 to nh - 1 do
    check "size in range" true (H.h_size h e >= 1 && H.h_size h e <= 10)
  done;
  let mean = float_of_int (H.num_pins h) /. float_of_int nh in
  check "mean size near 5" true (abs_float (mean -. 5.0) < 0.5)

let test_generate_powerlaw () =
  let rng = Randkit.Prng.create ~seed:23 in
  let p = 40 in
  let h = Gen.generate_powerlaw rng ~n:300 ~p ~dv:3 ~dh:5 ~alpha:1.2 ~weights:W.Unit in
  check "feasible" false (H.has_isolated_task h);
  (* Skew: processor 0 must be far more popular than the last one. *)
  let pins = Array.make p 0 in
  for e = 0 to H.num_hyperedges h - 1 do
    H.iter_h_procs h e (fun u -> pins.(u) <- pins.(u) + 1)
  done;
  check "processor 0 hot" true (pins.(0) > 4 * (pins.(p - 1) + 1));
  (* Distinct pins within each hyperedge (rejection sampling works). *)
  for e = 0 to H.num_hyperedges h - 1 do
    let procs = H.h_procs h e in
    for i = 1 to Array.length procs - 1 do
      check "distinct sorted" true (procs.(i - 1) < procs.(i))
    done
  done

let test_generate_powerlaw_invalid_alpha () =
  let rng = Randkit.Prng.create ~seed:1 in
  Alcotest.check_raises "alpha" (Invalid_argument "Hyper.Generate: alpha must be positive")
    (fun () ->
      ignore (Gen.generate_powerlaw rng ~n:4 ~p:4 ~dv:1 ~dh:1 ~alpha:0.0 ~weights:W.Unit))

let test_generate_invalid () =
  let rng = Randkit.Prng.create ~seed:1 in
  Alcotest.check_raises "bad n" (Invalid_argument "Hyper.Generate: n and p must be positive")
    (fun () ->
      ignore (Gen.generate rng ~family:Gen.Hilo ~n:0 ~p:4 ~dv:1 ~dh:1 ~g:1 ~weights:W.Unit))

(* -------------------------------------------------------------- Stats *)

let test_stats () =
  let h = toy () in
  let s = Hyper.Stats.compute h in
  Alcotest.(check int) "tasks" 2 s.Hyper.Stats.num_tasks;
  Alcotest.(check int) "pins" 5 s.Hyper.Stats.num_pins;
  Alcotest.(check (list (pair int int))) "task degrees" [ (1, 1); (2, 1) ]
    s.Hyper.Stats.task_degree_hist;
  Alcotest.(check (list (pair int int))) "config sizes" [ (1, 1); (2, 2) ]
    s.Hyper.Stats.h_size_hist;
  Alcotest.(check (float 1e-9)) "mean size" (5.0 /. 3.0) s.Hyper.Stats.mean_h_size;
  Alcotest.(check (float 1e-9)) "wmin" 1.0 s.Hyper.Stats.weight_min;
  Alcotest.(check (float 1e-9)) "wmax" 3.0 s.Hyper.Stats.weight_max;
  let contains ~needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  check "render mentions pins" true (contains ~needle:"pins" (Hyper.Stats.render s));
  let dot = Hyper.Stats.to_dot h in
  check "dot has task nodes" true (contains ~needle:"t0" dot);
  check "dot has hyperedge points" true (contains ~needle:"h2" dot)

let test_stats_empty_rejected () =
  let h = H.create ~n1:0 ~n2:1 ~hyperedges:[] in
  Alcotest.check_raises "no hyperedges" (Invalid_argument "Hyper.Stats.compute: no hyperedges")
    (fun () -> ignore (Hyper.Stats.compute h))

let suite =
  [
    Alcotest.test_case "stats compute/render/dot" `Quick test_stats;
    Alcotest.test_case "stats rejects empty" `Quick test_stats_empty_rejected;
    Alcotest.test_case "create/accessors" `Quick test_create_accessors;
    Alcotest.test_case "create regroups interleaved input" `Quick test_create_regroups_interleaved;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "isolated task" `Quick test_isolated_task;
    Alcotest.test_case "of_bipartite embedding" `Quick test_of_bipartite;
    Alcotest.test_case "min/max hyperedge size" `Quick test_min_max_h_size;
    Alcotest.test_case "fig2 toy hypergraph" `Quick test_fig2;
    Alcotest.test_case "unit weights" `Quick test_unit_weights;
    Alcotest.test_case "related weights formula" `Quick test_related_weights_formula;
    Alcotest.test_case "related weights antimonotone" `Quick test_related_weights_antimonotone;
    Alcotest.test_case "random weights" `Quick test_random_weights;
    Alcotest.test_case "random weights need rng" `Quick test_random_weights_needs_rng;
    Alcotest.test_case "weight scheme names" `Quick test_weights_names;
    Alcotest.test_case "generator shapes (FewgManyg)" `Quick test_generate_shapes;
    Alcotest.test_case "generator shapes (HiLo)" `Quick test_generate_hilo_family;
    Alcotest.test_case "generator reproducible" `Quick test_generate_reproducible;
    Alcotest.test_case "generator invalid args" `Quick test_generate_invalid;
    Alcotest.test_case "uniform generator" `Quick test_generate_uniform;
    Alcotest.test_case "powerlaw generator" `Quick test_generate_powerlaw;
    Alcotest.test_case "powerlaw invalid alpha" `Quick test_generate_powerlaw_invalid_alpha;
  ]
