module Pool = Parpool.Pool

let check = Alcotest.(check bool)

let test_empty () = Alcotest.(check (array int)) "empty" [||] (Pool.map ~jobs:4 ~f:(fun x -> x) [||])

let test_identity_order () =
  let items = Array.init 1000 Fun.id in
  let out = Pool.map ~jobs:4 ~f:(fun x -> x * x) items in
  Alcotest.(check (array int)) "order preserved" (Array.map (fun x -> x * x) items) out

let test_matches_sequential () =
  let items = Array.init 200 (fun i -> i + 1) in
  let f x = (x * 31) mod 97 in
  Alcotest.(check (array int)) "parallel = sequential" (Pool.map ~jobs:1 ~f items)
    (Pool.map ~jobs:3 ~f items)

let test_exception_propagates () =
  let items = Array.init 50 Fun.id in
  match Pool.map ~jobs:4 ~f:(fun x -> if x = 17 then failwith "boom" else x) items with
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
  | _ -> Alcotest.fail "expected exception"

let test_first_exception_in_order () =
  let items = Array.init 50 Fun.id in
  match
    Pool.map ~jobs:4
      ~f:(fun x -> if x = 40 then failwith "late" else if x = 10 then failwith "early" else x)
      items
  with
  | exception Failure msg -> Alcotest.(check string) "earliest item wins" "early" msg
  | _ -> Alcotest.fail "expected exception"

let test_jobs_validation () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Pool.map: jobs must be positive") (fun () ->
      ignore (Pool.map ~jobs:0 ~f:Fun.id [| 1 |]))

let test_map_list () =
  Alcotest.(check (list int)) "list wrapper" [ 2; 4; 6 ] (Pool.map_list ~jobs:2 ~f:(( * ) 2) [ 1; 2; 3 ])

let test_experiment_results_identical_across_jobs () =
  (* Quality numbers must be identical whatever the parallelism. *)
  let tiny =
    {
      Experiments.Instances.name = "POOL-MP";
      family = Hyper.Generate.Fewg_manyg;
      n = 80;
      p = 16;
      dv = 2;
      dh = 3;
      g = 4;
    }
  in
  let strip row =
    List.map (fun r -> (r.Experiments.Runner.algo, r.Experiments.Runner.ratio))
      row.Experiments.Runner.results
  in
  let sequential = Experiments.Runner.run_row ~seeds:2 ~weights:Hyper.Weights.Unit tiny in
  let via_pool =
    Pool.map ~jobs:2
      ~f:(fun spec -> Experiments.Runner.run_row ~seeds:2 ~weights:Hyper.Weights.Unit spec)
      [| tiny; tiny |]
  in
  Array.iter
    (fun row -> check "identical ratios" true (strip row = strip sequential))
    via_pool

let suite =
  [
    Alcotest.test_case "empty input" `Quick test_empty;
    Alcotest.test_case "order preserved" `Quick test_identity_order;
    Alcotest.test_case "parallel = sequential" `Quick test_matches_sequential;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "first exception in item order" `Quick test_first_exception_in_order;
    Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
    Alcotest.test_case "list wrapper" `Quick test_map_list;
    Alcotest.test_case "experiments identical across jobs" `Quick
      test_experiment_results_identical_across_jobs;
  ]
