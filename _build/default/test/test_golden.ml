(* Golden regression values, pinned from a verified build.

   Instance generation and the heuristics are fully deterministic in the
   seed, so any change to these numbers means the reproduction changed
   behaviour: a PRNG tweak, a generator edit, a different tie-break in a
   heuristic.  Such changes may be fine — but they must be noticed, because
   EXPERIMENTS.md's paper-vs-measured tables were recorded under exactly
   these semantics.  If a deliberate change lands, re-pin the constants and
   regenerate EXPERIMENTS.md. *)

module I = Experiments.Instances
module Gh = Semimatch.Greedy_hyper

let find name = List.find (fun s -> s.I.name = name) (I.paper_grid ())

let check_instance ~name ~weights ~nh ~pins ~lb ~makespans () =
  let h = I.generate_multiproc ~seed:0 ~weights (find name) in
  Alcotest.(check int) (name ^ " |N|") nh (Hyper.Graph.num_hyperedges h);
  Alcotest.(check int) (name ^ " pins") pins (Hyper.Graph.num_pins h);
  Alcotest.(check (float 1e-4)) (name ^ " LB") lb (Semimatch.Lower_bound.multiproc h);
  List.iter2
    (fun algo expected ->
      Alcotest.(check (float 1e-9))
        (name ^ " " ^ Gh.short_name algo)
        expected (Gh.makespan algo h))
    Gh.all makespans

let test_fg51_unit () =
  check_instance ~name:"FG-5-1-MP" ~weights:Hyper.Weights.Unit ~nh:6447 ~pins:64489
    ~lb:36.632812
    ~makespans:[ 51.0; 49.0; 47.0; 48.0 ] (* SGH; EGH; VGH; EVG *)
    ()

let test_hlm51_related () =
  check_instance ~name:"HLM-5-1-MP" ~weights:Hyper.Weights.Related ~nh:6391 ~pins:25211
    ~lb:20.0
    ~makespans:[ 28.0; 27.0; 28.0; 27.0 ]
    ()

let test_fg51_singleproc () =
  let spec = List.find (fun s -> s.I.sp_name = "FG-5-1") (I.paper_grid_singleproc ()) in
  let g = I.generate_singleproc ~seed:0 spec in
  Alcotest.(check int) "edges" 12823 (Bipartite.Graph.num_edges g);
  Alcotest.(check int) "exact" 5 (Semimatch.Exact_unit.solve g).Semimatch.Exact_unit.makespan;
  List.iter2
    (fun algo expected ->
      Alcotest.(check (float 1e-9))
        (Semimatch.Greedy_bipartite.name algo)
        expected
        (Semimatch.Greedy_bipartite.makespan algo g))
    Semimatch.Greedy_bipartite.all [ 7.0; 6.0; 6.0; 6.0 ]

let suite =
  [
    Alcotest.test_case "golden: FG-5-1-MP unit" `Quick test_fg51_unit;
    Alcotest.test_case "golden: HLM-5-1-MP related" `Quick test_hlm51_related;
    Alcotest.test_case "golden: FG-5-1 singleproc" `Quick test_fg51_singleproc;
  ]
