module Prng = Randkit.Prng
module Binomial = Randkit.Binomial

let check = Alcotest.(check bool)

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  check "different seeds differ" true !differs

let test_copy_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.copy a in
  Alcotest.(check int64) "copies agree" (Prng.next_int64 a) (Prng.next_int64 b);
  ignore (Prng.next_int64 a);
  Alcotest.(check int64) "advancing one does not move the other"
    (Prng.next_int64 a) (let _ = Prng.next_int64 b in Prng.next_int64 b)

let test_split_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.split a in
  let xa = Prng.next_int64 a and xb = Prng.next_int64 b in
  check "split stream differs" true (xa <> xb)

let test_int_bounds () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    check "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_int_rejects_nonpositive () =
  let rng = Prng.create ~seed:3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let test_int_covers_all_values () =
  let rng = Prng.create ~seed:11 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Prng.int rng 5) <- true
  done;
  check "all residues hit" true (Array.for_all Fun.id seen)

let test_int_roughly_uniform () =
  let rng = Prng.create ~seed:5 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      (* Expected 10000, sd ≈ 95: a ±5 sd corridor. *)
      check "bucket within 5 sigma" true (c > 9500 && c < 10500))
    counts

let test_int_in_range () =
  let rng = Prng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Prng.int_in_range rng ~lo:(-5) ~hi:5 in
    check "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  Alcotest.(check int) "degenerate range" 3 (Prng.int_in_range rng ~lo:3 ~hi:3)

let test_float_bounds () =
  let rng = Prng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let x = Prng.float rng 2.5 in
    check "0 <= x < 2.5" true (x >= 0.0 && x < 2.5)
  done

let test_bool_balanced () =
  let rng = Prng.create ~seed:21 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bool rng then incr trues
  done;
  check "roughly half true" true (!trues > 4700 && !trues < 5300)

let test_shuffle_is_permutation () =
  let rng = Prng.create ~seed:31 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle_in_place rng a;
  let b = Array.copy a in
  Array.sort compare b;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) b

let test_sample_without_replacement_distinct () =
  let rng = Prng.create ~seed:41 in
  for _ = 1 to 200 do
    let k = Prng.int rng 20 and extra = Prng.int rng 30 in
    let n = k + extra in
    if n > 0 then begin
      let s = Prng.sample_without_replacement rng ~k ~n in
      Alcotest.(check int) "k values" k (Array.length s);
      let sorted = Array.copy s in
      Array.sort compare sorted;
      for i = 1 to k - 1 do
        check "strictly increasing" true (sorted.(i - 1) < sorted.(i))
      done;
      Array.iter (fun v -> check "in range" true (v >= 0 && v < n)) s
    end
  done

let test_sample_full_range () =
  let rng = Prng.create ~seed:43 in
  let s = Prng.sample_without_replacement rng ~k:10 ~n:10 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "whole range" (Array.init 10 Fun.id) sorted

let test_sample_without_replacement_uniform () =
  (* Each element of [0,6) should appear in a 3-subset w.p. 1/2. *)
  let rng = Prng.create ~seed:47 in
  let hits = Array.make 6 0 in
  let n = 20_000 in
  for _ = 1 to n do
    Array.iter (fun v -> hits.(v) <- hits.(v) + 1) (Prng.sample_without_replacement rng ~k:3 ~n:6)
  done;
  Array.iter (fun c -> check "close to n/2" true (abs (c - (n / 2)) < n / 20)) hits

let test_binomial_support () =
  let rng = Prng.create ~seed:51 in
  for _ = 1 to 5000 do
    let v = Binomial.sample rng ~trials:20 ~p:0.3 in
    check "0 <= v <= trials" true (v >= 0 && v <= 20)
  done

let test_binomial_mean () =
  let rng = Prng.create ~seed:53 in
  let n = 50_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Binomial.sample rng ~trials:20 ~p:0.3
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* True mean 6, sd of the estimate ≈ 0.009. *)
  check "mean near 6" true (abs_float (mean -. 6.0) < 0.1)

let test_binomial_extremes () =
  let rng = Prng.create ~seed:57 in
  Alcotest.(check int) "p=0" 0 (Binomial.sample rng ~trials:10 ~p:0.0);
  Alcotest.(check int) "p=1" 10 (Binomial.sample rng ~trials:10 ~p:1.0);
  Alcotest.(check int) "trials=0" 0 (Binomial.sample rng ~trials:0 ~p:0.5)

let test_binomial_mean_interface () =
  let rng = Prng.create ~seed:59 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Binomial.sample_mean rng ~mean:5.0 ~trials:24
  done;
  let mean = float_of_int !sum /. float_of_int n in
  check "mean near 5" true (abs_float (mean -. 5.0) < 0.1)

let test_binomial_high_p_symmetry () =
  let rng = Prng.create ~seed:61 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Binomial.sample rng ~trials:10 ~p:0.8
  done;
  let mean = float_of_int !sum /. float_of_int n in
  check "mean near 8" true (abs_float (mean -. 8.0) < 0.1)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects non-positive bound" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "int covers all values" `Quick test_int_covers_all_values;
    Alcotest.test_case "int roughly uniform" `Quick test_int_roughly_uniform;
    Alcotest.test_case "int_in_range" `Quick test_int_in_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "sampling w/o replacement: distinct" `Quick test_sample_without_replacement_distinct;
    Alcotest.test_case "sampling w/o replacement: full range" `Quick test_sample_full_range;
    Alcotest.test_case "sampling w/o replacement: uniform" `Quick test_sample_without_replacement_uniform;
    Alcotest.test_case "binomial support" `Quick test_binomial_support;
    Alcotest.test_case "binomial mean" `Quick test_binomial_mean;
    Alcotest.test_case "binomial extremes" `Quick test_binomial_extremes;
    Alcotest.test_case "binomial sample_mean" `Quick test_binomial_mean_interface;
    Alcotest.test_case "binomial p>1/2 path" `Quick test_binomial_high_p_symmetry;
  ]
