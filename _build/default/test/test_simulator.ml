module H = Hyper.Graph
module Sim = Simulator
module Ha = Semimatch.Hyp_assignment

let check = Alcotest.(check bool)

let toy () =
  (* Two tasks: T0 on {P0,P1} with parts of 2, T1 on {P1} with a part of 3. *)
  let h =
    H.create ~n1:2 ~n2:2 ~hyperedges:[ (0, [| 0; 1 |], 2.0); (1, [| 1 |], 3.0) ]
  in
  (h, Ha.of_choices h [| 0; 1 |])

let test_toy_semantics () =
  let h, a = toy () in
  let t = Sim.run h a in
  (* P0 runs T0's part [0,2); P1 runs T0's part [0,2) then T1's [2,5). *)
  Alcotest.(check (float 1e-9)) "makespan" 5.0 t.Sim.makespan;
  Alcotest.(check (float 1e-9)) "P0 busy" 2.0 t.Sim.proc_busy.(0);
  Alcotest.(check (float 1e-9)) "P1 busy" 5.0 t.Sim.proc_busy.(1);
  Alcotest.(check (float 1e-9)) "T0 completes at 2" 2.0 t.Sim.task_completion.(0);
  Alcotest.(check (float 1e-9)) "T1 completes at 5" 5.0 t.Sim.task_completion.(1);
  Alcotest.(check int) "three part events" 3 (List.length t.Sim.events)

let test_policy_changes_completions_not_makespan () =
  let h, a = toy () in
  let fifo = Sim.run ~policy:Sim.Fifo h a in
  let lpt = Sim.run ~policy:Sim.Lpt h a in
  Alcotest.(check (float 1e-9)) "same makespan" fifo.Sim.makespan lpt.Sim.makespan;
  (* Under LPT, P1 runs T1 first: T0 then completes at 5, T1 at 3. *)
  Alcotest.(check (float 1e-9)) "T1 first under LPT" 3.0 lpt.Sim.task_completion.(1);
  Alcotest.(check (float 1e-9)) "T0 delayed under LPT" 5.0 lpt.Sim.task_completion.(0)

let test_average_completion () =
  let h, a = toy () in
  let t = Sim.run h a in
  Alcotest.(check (float 1e-9)) "avg" 3.5 (Sim.average_completion t)

let random_instance seed =
  let rng = Randkit.Prng.create ~seed in
  let n1 = 2 + Randkit.Prng.int rng 30 and n2 = 1 + Randkit.Prng.int rng 8 in
  let hyperedges = ref [] in
  for v = 0 to n1 - 1 do
    let configs = 1 + Randkit.Prng.int rng 3 in
    for _ = 1 to configs do
      let size = 1 + Randkit.Prng.int rng (min 3 n2) in
      let procs = Randkit.Prng.sample_without_replacement rng ~k:size ~n:n2 in
      hyperedges := (v, procs, float_of_int (1 + Randkit.Prng.int rng 5)) :: !hyperedges
    done
  done;
  H.create ~n1 ~n2 ~hyperedges:(List.rev !hyperedges)

let simulation_matches_loads_prop =
  QCheck.Test.make
    ~name:"simulated makespan = max processor load, under every policy" ~count:150
    QCheck.(int_bound 1000000)
    (fun seed ->
      let h = random_instance seed in
      let a = Semimatch.Greedy_hyper.run Semimatch.Greedy_hyper.Sorted_greedy_hyp h in
      let loads = Ha.loads h a in
      let max_load = Array.fold_left Float.max 0.0 loads in
      List.for_all
        (fun policy ->
          let t = Sim.run ~policy h a in
          abs_float (t.Sim.makespan -. max_load) < 1e-6
          && Array.for_all2 (fun busy l -> abs_float (busy -. l) < 1e-6) t.Sim.proc_busy loads)
        [ Sim.Fifo; Sim.Spt; Sim.Lpt; Sim.Random_order (seed + 1) ])

let no_overlap_prop =
  QCheck.Test.make ~name:"no processor runs two parts at once; no idling mid-queue" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let h = random_instance seed in
      let a = Semimatch.Greedy_hyper.run Semimatch.Greedy_hyper.Expected_greedy_hyp h in
      let t = Sim.run ~policy:Sim.Spt h a in
      let by_proc = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let existing = try Hashtbl.find by_proc e.Sim.proc with Not_found -> [] in
          Hashtbl.replace by_proc e.Sim.proc (e :: existing))
        t.Sim.events;
      Hashtbl.fold
        (fun _proc events acc ->
          let sorted = List.sort (fun a b -> compare a.Sim.start b.Sim.start) events in
          let rec contiguous = function
            | a :: (b :: _ as rest) ->
                abs_float (a.Sim.finish -. b.Sim.start) < 1e-6 && contiguous rest
            | _ -> true
          in
          acc
          && (match sorted with [] -> true | first :: _ -> first.Sim.start = 0.0)
          && contiguous sorted)
        by_proc true)

let completion_covers_all_parts_prop =
  QCheck.Test.make ~name:"task completion = max over its part finishes" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let h = random_instance seed in
      let a = Semimatch.Greedy_hyper.run Semimatch.Greedy_hyper.Vector_greedy_hyp h in
      let t = Sim.run h a in
      let max_finish = Array.make h.H.n1 0.0 in
      List.iter
        (fun e -> if e.Sim.finish > max_finish.(e.Sim.task) then max_finish.(e.Sim.task) <- e.Sim.finish)
        t.Sim.events;
      Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) max_finish t.Sim.task_completion)

let test_gantt () =
  let h, a = toy () in
  let t = Sim.run h a in
  let chart = Sim.gantt ~width:10 ~proc_names:(Printf.sprintf "P%d") t in
  let lines = String.split_on_char '\n' chart in
  Alcotest.(check int) "header + 2 rows + trailing" 4 (List.length lines);
  check "mentions P1" true (List.exists (fun l -> String.length l >= 2 && String.sub l 0 2 = "P1") lines)

let suite =
  [
    Alcotest.test_case "toy semantics" `Quick test_toy_semantics;
    Alcotest.test_case "policy changes completions, not makespan" `Quick
      test_policy_changes_completions_not_makespan;
    Alcotest.test_case "average completion" `Quick test_average_completion;
    QCheck_alcotest.to_alcotest simulation_matches_loads_prop;
    QCheck_alcotest.to_alcotest no_overlap_prop;
    QCheck_alcotest.to_alcotest completion_covers_all_parts_prop;
    Alcotest.test_case "gantt rendering" `Quick test_gantt;
  ]
