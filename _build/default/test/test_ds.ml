module Vec = Ds.Vec
module Heap = Ds.Indexed_heap
module Bitset = Ds.Bitset
module Lv = Ds.Load_vector

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ Vec *)

let test_vec_push_get () =
  let v = Vec.create () in
  check "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Vec.set v 7 (-1);
  Alcotest.(check int) "set/get" (-1) (Vec.get v 7)

let test_vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 1))

let test_vec_pop_clear () =
  let v = Vec.create () in
  Vec.push v 1;
  Vec.push v 2;
  Alcotest.(check (option int)) "pop" (Some 2) (Vec.pop v);
  Alcotest.(check (option int)) "pop" (Some 1) (Vec.pop v);
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v);
  Vec.push v 5;
  Vec.clear v;
  check "cleared" true (Vec.is_empty v)

let test_vec_conversions () =
  let v = Vec.of_array [| 3; 1; 4 |] in
  Alcotest.(check (array int)) "roundtrip" [| 3; 1; 4 |] (Vec.to_array v);
  let sum = Vec.fold_left ( + ) 0 v in
  Alcotest.(check int) "fold" 8 sum;
  let collected = ref [] in
  Vec.iteri (fun i x -> collected := (i, x) :: !collected) v;
  Alcotest.(check int) "iteri count" 3 (List.length !collected)

(* ----------------------------------------------------------------- Heap *)

let test_heap_pop_order () =
  let h = Heap.create 10 in
  List.iter (fun (k, p) -> Heap.insert h k p) [ (0, 5.0); (1, 1.0); (2, 3.0); (3, 0.5); (4, 4.0) ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | Some (k, _) ->
        order := k :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending priority order" [ 3; 1; 2; 4; 0 ] (List.rev !order)

let test_heap_update () =
  let h = Heap.create 4 in
  Heap.insert h 0 10.0;
  Heap.insert h 1 20.0;
  Heap.insert h 2 30.0;
  Heap.update h 2 1.0;
  Alcotest.(check (option (pair int (float 1e-9)))) "decrease-key" (Some (2, 1.0)) (Heap.min h);
  Heap.update h 2 40.0;
  Alcotest.(check (option (pair int (float 1e-9)))) "increase-key" (Some (0, 10.0)) (Heap.min h)

let test_heap_mem_and_errors () =
  let h = Heap.create 3 in
  Heap.insert h 1 2.0;
  check "mem" true (Heap.mem h 1);
  check "not mem" false (Heap.mem h 0);
  Alcotest.check_raises "double insert" (Invalid_argument "Indexed_heap.insert: key already present")
    (fun () -> Heap.insert h 1 3.0);
  Alcotest.check_raises "update absent" (Invalid_argument "Indexed_heap.update: key absent")
    (fun () -> Heap.update h 0 1.0)

let heap_property =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list (pair (int_bound 999) (float_range 0.0 100.0)))
    (fun pairs ->
      (* Dedupe keys: each key may be present at most once. *)
      let tbl = Hashtbl.create 16 in
      List.iter (fun (k, p) -> if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k p) pairs;
      let h = Heap.create 1000 in
      Hashtbl.iter (fun k p -> Heap.insert h k p) tbl;
      let rec drain acc =
        match Heap.pop_min h with Some (_, p) -> drain (p :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      List.sort compare popped = popped && List.length popped = Hashtbl.length tbl)

(* --------------------------------------------------------- Bucket_queue *)

module Bq = Ds.Bucket_queue

let test_bucket_queue_basic () =
  let q = Bq.create 8 in
  check "empty" true (Bq.min_priority q = None);
  Bq.insert q 3 5;
  Bq.insert q 1 2;
  Bq.insert q 4 2;
  Alcotest.(check int) "count" 3 (Bq.length q);
  Alcotest.(check (option int)) "min" (Some 2) (Bq.min_priority q);
  Alcotest.(check int) "priority" 5 (Bq.priority q 3);
  (match Bq.pop_min q with
  | Some (k, 2) -> check "min key" true (k = 1 || k = 4)
  | _ -> Alcotest.fail "expected priority-2 pop");
  Bq.increase q 3 9;
  (match Bq.pop_min q with
  | Some (_, 2) -> ()
  | _ -> Alcotest.fail "second priority-2 entry expected");
  Alcotest.(check (option (pair int int))) "last" (Some (3, 9)) (Bq.pop_min q);
  Alcotest.(check (option (pair int int))) "drained" None (Bq.pop_min q)

let test_bucket_queue_errors () =
  let q = Bq.create 2 in
  Bq.insert q 0 1;
  Alcotest.check_raises "double insert" (Invalid_argument "Bucket_queue.insert: key already present")
    (fun () -> Bq.insert q 0 2);
  Alcotest.check_raises "decrease" (Invalid_argument "Bucket_queue.increase: priority may only grow")
    (fun () -> Bq.increase q 0 0);
  Alcotest.check_raises "absent" (Invalid_argument "Bucket_queue.increase: key absent") (fun () ->
      Bq.increase q 1 5);
  check "not_found" true (match Bq.priority q 1 with exception Not_found -> true | _ -> false)

let bucket_queue_matches_model =
  QCheck.Test.make ~name:"bucket queue agrees with a hashtable model" ~count:200
    QCheck.(int_bound 1000000)
    (fun seed ->
      (* Monotone workload: insert with priorities >= the last popped
         minimum, occasionally increase, interleaved with pops. *)
      let rng = Randkit.Prng.create ~seed in
      let n = 40 in
      let q = Bq.create n in
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let floor = ref 0 in
      let ok = ref true in
      for _ = 1 to 150 do
        match Randkit.Prng.int rng 3 with
        | 0 ->
            let key = Randkit.Prng.int rng n in
            if not (Bq.mem q key) then begin
              let p = !floor + Randkit.Prng.int rng 10 in
              Bq.insert q key p;
              Hashtbl.add model key p
            end
        | 1 ->
            let key = Randkit.Prng.int rng n in
            if Bq.mem q key then begin
              let p = Bq.priority q key + Randkit.Prng.int rng 5 in
              Bq.increase q key p;
              Hashtbl.replace model key p
            end
        | _ -> (
            let model_min = Hashtbl.fold (fun _ p acc -> min p acc) model max_int in
            match Bq.pop_min q with
            | None -> if Hashtbl.length model <> 0 then ok := false
            | Some (key, p) ->
                if p <> model_min then ok := false;
                if Hashtbl.find_opt model key <> Some p then ok := false;
                Hashtbl.remove model key;
                floor := max !floor p)
      done;
      !ok && Bq.length q = Hashtbl.length model)

(* --------------------------------------------------------------- Bitset *)

let test_bitset_basic () =
  let b = Bitset.create 70 in
  Bitset.set b 0;
  Bitset.set b 69;
  Bitset.set b 33;
  check "mem 0" true (Bitset.mem b 0);
  check "mem 69" true (Bitset.mem b 69);
  check "not mem 1" false (Bitset.mem b 1);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal b);
  Bitset.clear b 33;
  check "cleared" false (Bitset.mem b 33);
  let collected = ref [] in
  Bitset.iter (fun i -> collected := i :: !collected) b;
  Alcotest.(check (list int)) "iter ascending" [ 0; 69 ] (List.rev !collected);
  Bitset.reset b;
  Alcotest.(check int) "reset" 0 (Bitset.cardinal b)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of bounds") (fun () ->
      Bitset.set b 8)

(* -------------------------------------------------------- Counting sort *)

let test_counting_sort_permutation () =
  let keys = [| 3; 1; 4; 1; 5; 9; 2; 6; 5; 3 |] in
  let perm =
    Ds.Counting_sort.permutation ~n:(Array.length keys) ~key:(fun i -> keys.(i)) ~max_key:9
  in
  (* Stable and sorted. *)
  for i = 1 to Array.length perm - 1 do
    let a = perm.(i - 1) and b = perm.(i) in
    check "non-decreasing keys" true (keys.(a) < keys.(b) || (keys.(a) = keys.(b) && a < b))
  done;
  let seen = Array.copy perm in
  Array.sort compare seen;
  Alcotest.(check (array int)) "permutation" (Array.init 10 Fun.id) seen

let counting_sort_property =
  QCheck.Test.make ~name:"sort_ints matches stdlib sort" ~count:300
    QCheck.(array (int_bound 5000))
    (fun a ->
      let mine = Array.copy a and reference = Array.copy a in
      Ds.Counting_sort.sort_ints mine;
      Array.sort compare reference;
      mine = reference)

(* ---------------------------------------------------------------- Stats *)

let test_stats_median () =
  Alcotest.(check (float 1e-9)) "odd" 3.0 (Ds.Stats.median [| 5.0; 3.0; 1.0 |]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (Ds.Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  Alcotest.(check int) "int even keeps lower" 2 (Ds.Stats.median_int [| 4; 1; 2; 3 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.median: empty input") (fun () ->
      ignore (Ds.Stats.median [||]))

let test_stats_misc () =
  let a = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Ds.Stats.mean a);
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (Ds.Stats.stddev a);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Ds.Stats.minimum a);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Ds.Stats.maximum a);
  Alcotest.(check (float 1e-9)) "q0" 2.0 (Ds.Stats.quantile a ~q:0.0);
  Alcotest.(check (float 1e-9)) "q1" 9.0 (Ds.Stats.quantile a ~q:1.0)

(* ---------------------------------------------------------- Load_vector *)

let test_load_vector_apply () =
  let lv = Lv.create 4 in
  Lv.apply lv ~procs:[| 0; 2 |] ~w:3.0;
  Lv.add lv ~proc:2 ~w:1.0;
  Alcotest.(check (float 1e-9)) "load 0" 3.0 (Lv.load lv 0);
  Alcotest.(check (float 1e-9)) "load 2" 4.0 (Lv.load lv 2);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Lv.max_load lv);
  Alcotest.(check (array (float 1e-9))) "sorted" [| 4.0; 3.0; 0.0; 0.0 |] (Lv.sorted_desc lv)

let test_load_vector_compare () =
  let lv = Lv.create 3 in
  Lv.add lv ~proc:0 ~w:2.0;
  (* a: +1 on proc 1 -> [2;1;0]; b: +1 on proc 0 -> [3;0;0]. *)
  check "a better" true (Lv.compare_hypothetical lv ~a:([| 1 |], 1.0) ~b:([| 0 |], 1.0) < 0);
  check "symmetric" true (Lv.compare_hypothetical lv ~a:([| 0 |], 1.0) ~b:([| 1 |], 1.0) > 0);
  Alcotest.(check int) "equal candidates" 0
    (Lv.compare_hypothetical lv ~a:([| 1 |], 1.0) ~b:([| 2 |], 1.0))

let test_load_vector_delta () =
  let lv = Lv.create 3 in
  Lv.add lv ~proc:0 ~w:5.0;
  Lv.add lv ~proc:1 ~w:1.0;
  Lv.apply_delta lv ~procs:[| 0; 2 |] ~amounts:[| -2.0; 4.0 |];
  Alcotest.(check (array (float 1e-9))) "after delta" [| 4.0; 3.0; 1.0 |] (Lv.sorted_desc lv);
  Alcotest.(check (float 1e-9)) "loads tracked" 3.0 (Lv.load lv 0)

(* Reference model: loads as plain arrays, hypothetical vectors by sort. *)
let random_lv_scenario rng p steps =
  let lv = Lv.create p in
  let model = Array.make p 0.0 in
  for _ = 1 to steps do
    let k = 1 + Randkit.Prng.int rng (min 4 p) in
    let procs = Randkit.Prng.sample_without_replacement rng ~k ~n:p in
    let w = float_of_int (1 + Randkit.Prng.int rng 5) in
    Lv.apply lv ~procs ~w;
    Array.iter (fun u -> model.(u) <- model.(u) +. w) procs
  done;
  (lv, model)

let load_vector_matches_model =
  QCheck.Test.make ~name:"load vector sorted view matches model" ~count:200
    QCheck.(pair (int_range 1 12) (int_bound 1000000))
    (fun (p, seed) ->
      let rng = Randkit.Prng.create ~seed in
      let lv, model = random_lv_scenario rng p 20 in
      let sorted_model = Array.copy model in
      Array.sort (fun a b -> compare b a) sorted_model;
      Lv.sorted_desc lv = sorted_model
      && Array.for_all2 (fun a b -> a = b) (Array.init p (Lv.load lv)) model)

let lazy_compare_matches_naive =
  QCheck.Test.make ~name:"lazy lexicographic compare = naive compare" ~count:300
    QCheck.(pair (int_range 2 10) (int_bound 1000000))
    (fun (p, seed) ->
      let rng = Randkit.Prng.create ~seed in
      let lv, _ = random_lv_scenario rng p 10 in
      let random_cand () =
        let k = 1 + Randkit.Prng.int rng (min 3 p) in
        let procs = Randkit.Prng.sample_without_replacement rng ~k ~n:p in
        let w = float_of_int (1 + Randkit.Prng.int rng 4) in
        (procs, w)
      in
      let ok = ref true in
      for _ = 1 to 10 do
        let (pa, wa) as a = random_cand () and (pb, wb) as b = random_cand () in
        let lazy_cmp = Lv.compare_hypothetical lv ~a ~b in
        let naive =
          compare (Lv.hypothetical_sorted lv ~procs:pa ~w:wa) (Lv.hypothetical_sorted lv ~procs:pb ~w:wb)
        in
        if compare lazy_cmp 0 <> compare naive 0 then ok := false
      done;
      !ok)

let lazy_delta_compare_matches_naive =
  QCheck.Test.make ~name:"delta compare = naive delta compare" ~count:300
    QCheck.(pair (int_range 2 10) (int_bound 1000000))
    (fun (p, seed) ->
      let rng = Randkit.Prng.create ~seed in
      let lv, _ = random_lv_scenario rng p 10 in
      let random_delta () =
        let k = 1 + Randkit.Prng.int rng (min 3 p) in
        let procs = Randkit.Prng.sample_without_replacement rng ~k ~n:p in
        let amounts = Array.map (fun _ -> float_of_int (Randkit.Prng.int_in_range rng ~lo:(-3) ~hi:3)) procs in
        (procs, amounts)
      in
      let ok = ref true in
      for _ = 1 to 10 do
        let (pa, aa) as a = random_delta () and (pb, ab) as b = random_delta () in
        let lazy_cmp = Lv.compare_hypothetical_delta lv ~a ~b in
        let naive =
          compare
            (Lv.hypothetical_sorted_delta lv ~procs:pa ~amounts:aa)
            (Lv.hypothetical_sorted_delta lv ~procs:pb ~amounts:ab)
        in
        if compare lazy_cmp 0 <> compare naive 0 then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "vec push/get/set" `Quick test_vec_push_get;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec pop/clear" `Quick test_vec_pop_clear;
    Alcotest.test_case "vec conversions" `Quick test_vec_conversions;
    Alcotest.test_case "heap pop order" `Quick test_heap_pop_order;
    Alcotest.test_case "heap update" `Quick test_heap_update;
    Alcotest.test_case "heap membership/errors" `Quick test_heap_mem_and_errors;
    QCheck_alcotest.to_alcotest heap_property;
    Alcotest.test_case "bucket queue basics" `Quick test_bucket_queue_basic;
    Alcotest.test_case "bucket queue errors" `Quick test_bucket_queue_errors;
    QCheck_alcotest.to_alcotest bucket_queue_matches_model;
    Alcotest.test_case "bitset basics" `Quick test_bitset_basic;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "counting sort permutation" `Quick test_counting_sort_permutation;
    QCheck_alcotest.to_alcotest counting_sort_property;
    Alcotest.test_case "stats median" `Quick test_stats_median;
    Alcotest.test_case "stats misc" `Quick test_stats_misc;
    Alcotest.test_case "load vector apply" `Quick test_load_vector_apply;
    Alcotest.test_case "load vector compare" `Quick test_load_vector_compare;
    Alcotest.test_case "load vector delta" `Quick test_load_vector_delta;
    QCheck_alcotest.to_alcotest load_vector_matches_model;
    QCheck_alcotest.to_alcotest lazy_compare_matches_naive;
    QCheck_alcotest.to_alcotest lazy_delta_compare_matches_naive;
  ]
