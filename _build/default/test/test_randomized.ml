module H = Hyper.Graph
module R = Semimatch.Randomized
module Ha = Semimatch.Hyp_assignment

let check = Alcotest.(check bool)

let random_instance seed =
  let rng = Randkit.Prng.create ~seed in
  let n1 = 2 + Randkit.Prng.int rng 20 and n2 = 1 + Randkit.Prng.int rng 6 in
  let hyperedges = ref [] in
  for v = 0 to n1 - 1 do
    let configs = 1 + Randkit.Prng.int rng 3 in
    for _ = 1 to configs do
      let size = 1 + Randkit.Prng.int rng (min 3 n2) in
      let procs = Randkit.Prng.sample_without_replacement rng ~k:size ~n:n2 in
      hyperedges := (v, procs, float_of_int (1 + Randkit.Prng.int rng 4)) :: !hyperedges
    done
  done;
  H.create ~n1 ~n2 ~hyperedges:(List.rev !hyperedges)

let valid_assignments_prop =
  QCheck.Test.make ~name:"randomized constructions produce valid assignments" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let h = random_instance seed in
      let rng = Randkit.Prng.create ~seed in
      Ha.is_valid h (R.random_assignment rng h) && Ha.is_valid h (R.random_order_greedy rng h))

let restarts_monotone_prop =
  QCheck.Test.make ~name:"more restarts never hurt" ~count:60
    QCheck.(int_bound 1000000)
    (fun seed ->
      let h = random_instance seed in
      let best_of rounds =
        (* Fresh, identically seeded stream: the k-round run replays the same
           first candidates as the (k-1)-round run plus one more. *)
        let rng = Randkit.Prng.create ~seed:4242 in
        snd (R.restarts ~rounds rng h R.random_assignment)
      in
      best_of 8 <= best_of 4 +. 1e-9 && best_of 4 <= best_of 1 +. 1e-9)

let refine_helps_prop =
  QCheck.Test.make ~name:"refined restarts are no worse than raw restarts" ~count:60
    QCheck.(int_bound 1000000)
    (fun seed ->
      let h = random_instance seed in
      let run refine =
        let rng = Randkit.Prng.create ~seed:99 in
        snd (R.restarts ~refine ~rounds:4 rng h R.random_assignment)
      in
      run true <= run false +. 1e-9)

let informed_beats_random_on_average () =
  (* On a batch of mid-size instances the degree-sorted greedy should (in
     aggregate) beat a single random assignment. *)
  let total_sorted = ref 0.0 and total_random = ref 0.0 in
  for seed = 0 to 19 do
    let h = random_instance (1000 + seed) in
    let rng = Randkit.Prng.create ~seed in
    total_sorted :=
      !total_sorted
      +. Semimatch.Greedy_hyper.makespan Semimatch.Greedy_hyper.Sorted_greedy_hyp h;
    total_random := !total_random +. Ha.makespan h (R.random_assignment rng h)
  done;
  check "sorted-greedy beats random in aggregate" true (!total_sorted < !total_random)

let test_restarts_validation () =
  let h = random_instance 5 in
  let rng = Randkit.Prng.create ~seed:1 in
  Alcotest.check_raises "rounds 0" (Invalid_argument "Randomized.restarts: rounds must be positive")
    (fun () -> ignore (R.restarts ~rounds:0 rng h R.random_assignment))

let test_rejects_isolated () =
  let h = H.create ~n1:2 ~n2:1 ~hyperedges:[ (0, [| 0 |], 1.0) ] in
  let rng = Randkit.Prng.create ~seed:1 in
  Alcotest.check_raises "isolated" (Invalid_argument "Randomized: task with no configuration")
    (fun () -> ignore (R.random_assignment rng h))

let suite =
  [
    QCheck_alcotest.to_alcotest valid_assignments_prop;
    QCheck_alcotest.to_alcotest restarts_monotone_prop;
    QCheck_alcotest.to_alcotest refine_helps_prop;
    Alcotest.test_case "informed beats random in aggregate" `Quick informed_beats_random_on_average;
    Alcotest.test_case "restarts validation" `Quick test_restarts_validation;
    Alcotest.test_case "rejects isolated" `Quick test_rejects_isolated;
  ]
