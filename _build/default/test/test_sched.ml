let check = Alcotest.(check bool)

let sample_instance () =
  Sched.instance
    ~processors:[ "cpu0"; "cpu1"; "gpu" ]
    ~tasks:
      [
        Sched.task "render"
          [ Sched.config [ "gpu" ] ~time:2.0; Sched.config [ "cpu0"; "cpu1" ] ~time:3.0 ];
        Sched.task "encode"
          [ Sched.config [ "cpu0" ] ~time:4.0; Sched.config [ "cpu1" ] ~time:4.0 ];
        Sched.task "upload" [ Sched.config [ "gpu" ] ~time:1.0 ];
      ]

let test_instance_shape () =
  let i = sample_instance () in
  Alcotest.(check int) "tasks" 3 (Sched.num_tasks i);
  Alcotest.(check int) "processors" 3 (Sched.num_processors i);
  let h = Sched.hypergraph i in
  Alcotest.(check int) "hyperedges" 5 (Hyper.Graph.num_hyperedges h);
  Alcotest.(check int) "pins" 6 (Hyper.Graph.num_pins h)

let test_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () ->
      Sched.instance ~processors:[ "a"; "a" ]
        ~tasks:[ Sched.task "t" [ Sched.config [ "a" ] ~time:1.0 ] ]);
  raises (fun () ->
      Sched.instance ~processors:[ "a" ]
        ~tasks:[ Sched.task "t" [ Sched.config [ "missing" ] ~time:1.0 ] ]);
  raises (fun () -> Sched.instance ~processors:[ "a" ] ~tasks:[ Sched.task "t" [] ]);
  raises (fun () ->
      Sched.instance ~processors:[ "a" ]
        ~tasks:[ Sched.task "t" [ Sched.config [ "a" ] ~time:0.0 ] ]);
  raises (fun () ->
      Sched.instance ~processors:[ "a" ]
        ~tasks:
          [ Sched.task "t" [ Sched.config [ "a" ] ~time:1.0 ];
            Sched.task "t" [ Sched.config [ "a" ] ~time:1.0 ] ])

let test_solve_consistency () =
  let i = sample_instance () in
  List.iter
    (fun algorithm ->
      let s = Sched.solve ~algorithm i in
      (* The makespan is the max processor load, and the reported loads must
         be consistent with the assignment. *)
      let max_load =
        List.fold_left (fun acc (_, l) -> Float.max acc l) 0.0 s.Sched.processor_loads
      in
      Alcotest.(check (float 1e-9)) "makespan = max load" s.Sched.makespan max_load;
      Alcotest.(check int) "one line per task" 3 (List.length s.Sched.assignment);
      check "lower bound holds" true (s.Sched.makespan >= s.Sched.lower_bound -. 1e-9))
    (List.concat_map
       (fun a -> [ Sched.Greedy a; Sched.Greedy_refined a ])
       Semimatch.Greedy_hyper.all)

let test_solve_optimum () =
  (* Brute force confirms the small instance optimum; at least EVG+refine
     should land on it here. *)
  let i = sample_instance () in
  let opt, _ = Semimatch.Brute_force.multiproc (Sched.hypergraph i) in
  let s = Sched.solve ~algorithm:(Sched.Greedy_refined Semimatch.Greedy_hyper.Expected_vector_greedy_hyp) i in
  check "refined EVG reaches brute-force optimum" true (s.Sched.makespan <= opt +. 1e-9)

let test_exact_sequential () =
  let i =
    Sched.instance
      ~processors:[ "w1"; "w2" ]
      ~tasks:
        [
          Sched.task "a" [ Sched.config [ "w1" ] ~time:1.0; Sched.config [ "w2" ] ~time:1.0 ];
          Sched.task "b" [ Sched.config [ "w1" ] ~time:1.0 ];
          Sched.task "c" [ Sched.config [ "w2" ] ~time:1.0 ];
        ]
  in
  let s = Sched.solve ~algorithm:Sched.Exact_unit_sequential i in
  Alcotest.(check (float 1e-9)) "optimal" 2.0 s.Sched.makespan

let test_exact_sequential_rejects_parallel () =
  let i = sample_instance () in
  match Sched.solve ~algorithm:Sched.Exact_unit_sequential i with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of non-unit instance"

let test_pp_schedule () =
  let i = sample_instance () in
  let s = Sched.solve i in
  let text = Format.asprintf "%a" Sched.pp_schedule s in
  List.iter
    (fun needle ->
      let contains =
        let nl = String.length needle and hl = String.length text in
        let rec scan j = j + nl <= hl && (String.sub text j nl = needle || scan (j + 1)) in
        scan 0
      in
      check ("report mentions " ^ needle) true contains)
    [ "render"; "encode"; "upload"; "cpu0"; "gpu"; "makespan" ]

let test_algorithm_names () =
  Alcotest.(check string) "default" "expected-vector-greedy-hyp"
    (Sched.algorithm_name Sched.default_algorithm);
  Alcotest.(check string) "exact" "exact-singleproc-unit"
    (Sched.algorithm_name Sched.Exact_unit_sequential)

let suite =
  [
    Alcotest.test_case "instance shape" `Quick test_instance_shape;
    Alcotest.test_case "instance validation" `Quick test_validation;
    Alcotest.test_case "solve consistency" `Quick test_solve_consistency;
    Alcotest.test_case "refined EVG optimal on toy" `Quick test_solve_optimum;
    Alcotest.test_case "exact sequential path" `Quick test_exact_sequential;
    Alcotest.test_case "exact rejects parallel configs" `Quick test_exact_sequential_rejects_parallel;
    Alcotest.test_case "schedule pretty-printer" `Quick test_pp_schedule;
    Alcotest.test_case "algorithm names" `Quick test_algorithm_names;
  ]
