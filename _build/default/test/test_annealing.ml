module H = Hyper.Graph
module A = Semimatch.Annealing
module Ha = Semimatch.Hyp_assignment

let check = Alcotest.(check bool)

let random_instance seed =
  let rng = Randkit.Prng.create ~seed in
  let n1 = 2 + Randkit.Prng.int rng 15 and n2 = 2 + Randkit.Prng.int rng 5 in
  let hyperedges = ref [] in
  for v = 0 to n1 - 1 do
    let configs = 1 + Randkit.Prng.int rng 3 in
    for _ = 1 to configs do
      let size = 1 + Randkit.Prng.int rng (min 3 n2) in
      let procs = Randkit.Prng.sample_without_replacement rng ~k:size ~n:n2 in
      hyperedges := (v, procs, float_of_int (1 + Randkit.Prng.int rng 4)) :: !hyperedges
    done
  done;
  H.create ~n1 ~n2 ~hyperedges:(List.rev !hyperedges)

let never_worse_prop =
  QCheck.Test.make ~name:"annealing never returns worse than its start" ~count:60
    QCheck.(int_bound 1000000)
    (fun seed ->
      let h = random_instance seed in
      let start = Semimatch.Greedy_hyper.run Semimatch.Greedy_hyper.Sorted_greedy_hyp h in
      let rng = Randkit.Prng.create ~seed in
      let params = { (A.default_params h) with A.iterations = 2000 } in
      let refined, reported = A.refine ~params rng h start in
      Ha.is_valid h refined
      && abs_float (Ha.makespan h refined -. reported) < 1e-9
      && reported <= Ha.makespan h start +. 1e-9)

let deterministic_prop =
  QCheck.Test.make ~name:"annealing deterministic for a fixed seed" ~count:30
    QCheck.(int_bound 1000000)
    (fun seed ->
      let h = random_instance seed in
      let run () =
        let rng = Randkit.Prng.create ~seed:777 in
        let params = { (A.default_params h) with A.iterations = 1000 } in
        snd (A.solve ~params rng h)
      in
      run () = run ())

let test_escapes_fig3_trap () =
  (* The k=3 trap: sorted-greedy is stuck at 3, annealing should find its
     way down (the planted optimum is 1 and moves are local). *)
  let g = Bipartite.Adversarial.sorted_greedy_trap ~k:3 in
  let h = H.of_bipartite g in
  let rng = Randkit.Prng.create ~seed:12 in
  let params = { A.iterations = 50_000; initial_temperature = 1.0; cooling = 0.9999 } in
  let _, makespan = A.solve ~params rng h in
  check "improves on the trapped 3" true (makespan <= 2.0)

let test_param_validation () =
  let h = random_instance 1 in
  let start = Semimatch.Greedy_hyper.run Semimatch.Greedy_hyper.Sorted_greedy_hyp h in
  let rng = Randkit.Prng.create ~seed:1 in
  Alcotest.check_raises "bad cooling" (Invalid_argument "Annealing: cooling must be in (0, 1]")
    (fun () ->
      ignore
        (A.refine ~params:{ A.iterations = 10; initial_temperature = 1.0; cooling = 1.5 } rng h start))

let test_zero_iterations_identity () =
  let h = random_instance 2 in
  let start = Semimatch.Greedy_hyper.run Semimatch.Greedy_hyper.Sorted_greedy_hyp h in
  let rng = Randkit.Prng.create ~seed:1 in
  let refined, m =
    A.refine ~params:{ A.iterations = 0; initial_temperature = 1.0; cooling = 0.99 } rng h start
  in
  Alcotest.(check (float 1e-9)) "same makespan" (Ha.makespan h start) m;
  check "same choices" true (refined.Ha.choice = start.Ha.choice)

let suite =
  [
    QCheck_alcotest.to_alcotest never_worse_prop;
    QCheck_alcotest.to_alcotest deterministic_prop;
    Alcotest.test_case "escapes the fig3 trap" `Quick test_escapes_fig3_trap;
    Alcotest.test_case "parameter validation" `Quick test_param_validation;
    Alcotest.test_case "zero iterations = identity" `Quick test_zero_iterations_identity;
  ]
