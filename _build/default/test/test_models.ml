(* Model-based property tests: each mutable container is driven by a random
   command sequence and compared against a trivially correct model after
   every step. *)

(* ------------------------------------------------- Vec vs a list model *)

type vec_cmd = Push of int | Pop | Set of int * int | Clear

let vec_cmd_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun x -> Push x) small_int);
        (2, return Pop);
        (2, map2 (fun i x -> Set (i, x)) small_nat small_int);
        (1, return Clear);
      ])

let vec_model_prop =
  QCheck.Test.make ~name:"Vec agrees with a list model" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_bound 60) vec_cmd_gen))
    (fun cmds ->
      let v = Ds.Vec.create () in
      let model = ref [] in
      (* model holds elements in push order *)
      List.for_all
        (fun cmd ->
          (match cmd with
          | Push x ->
              Ds.Vec.push v x;
              model := !model @ [ x ]
          | Pop -> (
              let expected =
                match List.rev !model with
                | [] -> None
                | last :: rest ->
                    model := List.rev rest;
                    Some last
              in
              match (Ds.Vec.pop v, expected) with
              | Some a, Some b when a = b -> ()
              | None, None -> ()
              | _ -> failwith "pop mismatch")
          | Set (i, x) ->
              if i < List.length !model then begin
                Ds.Vec.set v i x;
                model := List.mapi (fun j y -> if j = i then x else y) !model
              end
          | Clear ->
              Ds.Vec.clear v;
              model := []);
          Ds.Vec.length v = List.length !model
          && List.for_all2 (fun a b -> a = b) (Array.to_list (Ds.Vec.to_array v)) !model)
        cmds)

(* --------------------------------------------- Bitset vs a bool array *)

type bit_cmd = BSet of int | BClear of int | BReset

let bitset_model_prop =
  QCheck.Test.make ~name:"Bitset agrees with a bool-array model" ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 1 100)
           (list_size (int_bound 60)
              (frequency
                 [
                   (4, map (fun i -> BSet i) small_nat);
                   (3, map (fun i -> BClear i) small_nat);
                   (1, return BReset);
                 ]))))
    (fun (n, cmds) ->
      let b = Ds.Bitset.create n in
      let model = Array.make n false in
      List.for_all
        (fun cmd ->
          (match cmd with
          | BSet i when i < n ->
              Ds.Bitset.set b i;
              model.(i) <- true
          | BClear i when i < n ->
              Ds.Bitset.clear b i;
              model.(i) <- false
          | BReset ->
              Ds.Bitset.reset b;
              Array.fill model 0 n false
          | BSet _ | BClear _ -> ());
          let same = ref true in
          for i = 0 to n - 1 do
            if Ds.Bitset.mem b i <> model.(i) then same := false
          done;
          !same
          && Ds.Bitset.cardinal b = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 model)
        cmds)

(* --------------------------- Indexed_heap vs an association-list model *)

type heap_cmd = HInsert of int * float | HUpdate of int * float | HPop

let heap_model_prop =
  QCheck.Test.make ~name:"Indexed_heap agrees with an assoc model" ~count:300
    (QCheck.make
       QCheck.Gen.(
         list_size (int_bound 80)
           (frequency
              [
                (4, map2 (fun k p -> HInsert (k, p)) (int_bound 30) (float_range 0.0 100.0));
                (3, map2 (fun k p -> HUpdate (k, p)) (int_bound 30) (float_range 0.0 100.0));
                (3, return HPop);
              ])))
    (fun cmds ->
      let h = Ds.Indexed_heap.create 31 in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun cmd ->
          (match cmd with
          | HInsert (k, p) ->
              if not (Hashtbl.mem model k) then begin
                Ds.Indexed_heap.insert h k p;
                Hashtbl.add model k p
              end
          | HUpdate (k, p) ->
              if Hashtbl.mem model k then begin
                Ds.Indexed_heap.update h k p;
                Hashtbl.replace model k p
              end
          | HPop -> (
              let expected =
                Hashtbl.fold
                  (fun k p acc ->
                    match acc with
                    | None -> Some (k, p)
                    | Some (_, bp) when p < bp -> Some (k, p)
                    | _ -> acc)
                  model None
              in
              match (Ds.Indexed_heap.pop_min h, expected) with
              | None, None -> ()
              | Some (_, pa), Some (kb, pb) when pa = pb ->
                  (* Ties may pop either key; trust priority equality and
                     remove the key the heap chose. *)
                  let popped_key =
                    (* Recover which key the heap removed: it is no longer a
                       member. *)
                    Hashtbl.fold
                      (fun k _ acc -> if not (Ds.Indexed_heap.mem h k) then k :: acc else acc)
                      model []
                    |> function
                    | [ k ] -> k
                    | _ -> kb
                  in
                  Hashtbl.remove model popped_key
              | _ -> failwith "pop mismatch"));
          Ds.Indexed_heap.length h = Hashtbl.length model)
        cmds)

let suite =
  [
    QCheck_alcotest.to_alcotest vec_model_prop;
    QCheck_alcotest.to_alcotest bitset_model_prop;
    QCheck_alcotest.to_alcotest heap_model_prop;
  ]
