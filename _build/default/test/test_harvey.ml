module G = Bipartite.Graph
module Harvey = Semimatch.Harvey
module Exact = Semimatch.Exact_unit
module Ba = Semimatch.Bip_assignment

let check = Alcotest.(check bool)

let random_bipartite rng ~n1 ~n2 =
  let edges = ref [] in
  for v = 0 to n1 - 1 do
    let deg = 1 + Randkit.Prng.int rng (min 4 n2) in
    let procs = Randkit.Prng.sample_without_replacement rng ~k:deg ~n:n2 in
    Array.iter (fun u -> edges := (v, u) :: !edges) procs
  done;
  G.unit_weights ~n1 ~n2 ~edges:(List.rev !edges)

let int_loads g a = Array.map int_of_float (Ba.loads g a)

let test_simple () =
  (* Two tasks forced apart. *)
  let g = G.unit_weights ~n1:2 ~n2:2 ~edges:[ (0, 0); (0, 1); (1, 0) ] in
  let s = Harvey.solve g in
  Alcotest.(check int) "makespan 1" 1 s.Harvey.makespan;
  Alcotest.(check int) "flow time 2" 2 s.Harvey.total_flow_time;
  check "valid" true (Ba.is_valid g s.Harvey.assignment)

let test_fig3_families () =
  (* The adversarial families have optimum 1; Harvey must find it. *)
  List.iter
    (fun k ->
      let g = Bipartite.Adversarial.sorted_greedy_trap ~k in
      Alcotest.(check int) (Printf.sprintf "k=%d" k) 1 (Harvey.solve g).Harvey.makespan)
    [ 1; 3; 5; 7 ];
  Alcotest.(check int) "TR fig4" 1 (Harvey.solve (Bipartite.Adversarial.double_sorted_trap ())).Harvey.makespan;
  Alcotest.(check int) "TR fig5" 1 (Harvey.solve (Bipartite.Adversarial.expected_greedy_trap ())).Harvey.makespan

let test_rejects_weighted () =
  let g = G.create ~n1:1 ~n2:1 ~edges:[ (0, 0, 2.0) ] in
  Alcotest.check_raises "weighted" (Invalid_argument "Harvey: weights must all be 1") (fun () ->
      ignore (Harvey.solve g))

let test_rejects_isolated () =
  let g = G.unit_weights ~n1:1 ~n2:1 ~edges:[] in
  Alcotest.check_raises "isolated" (Invalid_argument "Harvey: task with no allowed processor")
    (fun () -> ignore (Harvey.solve g))

let test_flow_time_helper () =
  Alcotest.(check int) "flow time" (3 + 1 + 0) (Harvey.flow_time [| 2; 1; 0 |])

let matches_exact_prop =
  QCheck.Test.make ~name:"Harvey makespan = repeated-matching makespan" ~count:150
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 40 and n2 = 1 + Randkit.Prng.int rng 8 in
      let g = random_bipartite rng ~n1 ~n2 in
      let h = Harvey.solve g in
      let e = Exact.solve g in
      Ba.is_valid g h.Harvey.assignment && h.Harvey.makespan = e.Exact.makespan)

let flow_time_optimal_prop =
  QCheck.Test.make ~name:"Harvey flow time <= repeated-matching flow time" ~count:150
    QCheck.(int_bound 1000000)
    (fun seed ->
      (* Harvey's semi-matching minimizes every symmetric-convex cost, so its
         total flow time can never exceed the makespan-only solution's. *)
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 40 and n2 = 1 + Randkit.Prng.int rng 8 in
      let g = random_bipartite rng ~n1 ~n2 in
      let h = Harvey.solve g in
      let e = Exact.solve g in
      h.Harvey.total_flow_time <= Harvey.flow_time (int_loads g e.Exact.assignment))

let greedy_never_beats_harvey_prop =
  QCheck.Test.make ~name:"no greedy heuristic beats Harvey's optimum" ~count:100
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 30 and n2 = 1 + Randkit.Prng.int rng 6 in
      let g = random_bipartite rng ~n1 ~n2 in
      let opt = float_of_int (Harvey.solve g).Harvey.makespan in
      List.for_all
        (fun algo -> Semimatch.Greedy_bipartite.makespan algo g >= opt -. 1e-9)
        Semimatch.Greedy_bipartite.all)

let suite =
  [
    Alcotest.test_case "simple instance" `Quick test_simple;
    Alcotest.test_case "adversarial families" `Quick test_fig3_families;
    Alcotest.test_case "rejects weighted" `Quick test_rejects_weighted;
    Alcotest.test_case "rejects isolated" `Quick test_rejects_isolated;
    Alcotest.test_case "flow time helper" `Quick test_flow_time_helper;
    QCheck_alcotest.to_alcotest matches_exact_prop;
    QCheck_alcotest.to_alcotest flow_time_optimal_prop;
    QCheck_alcotest.to_alcotest greedy_never_beats_harvey_prop;
  ]
