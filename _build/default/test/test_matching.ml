module G = Bipartite.Graph

let check = Alcotest.(check bool)

(* Reference: maximum capacitated matching size by exhaustive search over
   per-task choices (processor or unassigned). *)
let brute_force_max_size g caps =
  let n1 = g.G.n1 in
  let count = Array.make g.G.n2 0 in
  let best = ref 0 in
  let rec go v matched =
    if matched + (n1 - v) <= !best then ()
    else if v = n1 then best := max !best matched
    else begin
      (* Leave v exposed... *)
      go (v + 1) matched;
      (* ...or match it to any processor with residual capacity. *)
      G.iter_neighbors g v (fun u _w ->
          if count.(u) < caps.(u) then begin
            count.(u) <- count.(u) + 1;
            go (v + 1) (matched + 1);
            count.(u) <- count.(u) - 1
          end)
    end
  in
  go 0 0;
  !best

let random_graph rng ~n1 ~n2 ~edge_prob =
  let edges = ref [] in
  for v = 0 to n1 - 1 do
    for u = 0 to n2 - 1 do
      if Randkit.Prng.float rng 1.0 < edge_prob then edges := (v, u) :: !edges
    done
  done;
  G.unit_weights ~n1 ~n2 ~edges:!edges

let engines_optimal_prop engine =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s matches brute force" (Matching.engine_name engine))
    ~count:150
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 7 and n2 = 1 + Randkit.Prng.int rng 5 in
      let g = random_graph rng ~n1 ~n2 ~edge_prob:0.4 in
      let caps = Array.init n2 (fun _ -> Randkit.Prng.int rng 3) in
      let result = Matching.solve ~engine ~capacities:caps g in
      Matching.is_maximal_valid ~capacities:caps g result
      && result.Matching.size = brute_force_max_size g caps)

let engines_agree_prop =
  QCheck.Test.make ~name:"all engines return the same cardinality" ~count:150
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Randkit.Prng.create ~seed in
      let n1 = 1 + Randkit.Prng.int rng 30 and n2 = 1 + Randkit.Prng.int rng 15 in
      let g = random_graph rng ~n1 ~n2 ~edge_prob:0.15 in
      let caps = Array.init n2 (fun _ -> Randkit.Prng.int rng 4) in
      let sizes =
        List.map
          (fun engine -> (Matching.solve ~engine ~capacities:caps g).Matching.size)
          Matching.all_engines
      in
      match sizes with [ a; b; c ] -> a = b && b = c | _ -> false)

let test_empty_graph () =
  let g = G.unit_weights ~n1:0 ~n2:3 ~edges:[] in
  List.iter
    (fun engine ->
      let r = Matching.solve ~engine g in
      Alcotest.(check int) "empty" 0 r.Matching.size)
    Matching.all_engines

let test_no_edges () =
  let g = G.unit_weights ~n1:3 ~n2:3 ~edges:[] in
  List.iter
    (fun engine ->
      let r = Matching.solve ~engine g in
      Alcotest.(check int) "nothing matched" 0 r.Matching.size;
      Alcotest.(check (array int)) "all exposed" [| -1; -1; -1 |] r.Matching.mate1)
    Matching.all_engines

let test_perfect_matching_cycle () =
  (* Even cycle as bipartite graph: v_i -- u_i, u_(i+1). *)
  let n = 50 in
  let edges = List.concat (List.init n (fun i -> [ (i, i); (i, (i + 1) mod n) ])) in
  let g = G.unit_weights ~n1:n ~n2:n ~edges in
  List.iter
    (fun engine ->
      let r = Matching.solve ~engine g in
      Alcotest.(check int) (Matching.engine_name engine ^ " perfect") n r.Matching.size;
      check "valid" true (Matching.is_maximal_valid g r))
    Matching.all_engines

let test_capacity_zero_blocks () =
  let g = G.unit_weights ~n1:2 ~n2:1 ~edges:[ (0, 0); (1, 0) ] in
  List.iter
    (fun engine ->
      let r = Matching.solve ~engine ~capacities:[| 0 |] g in
      Alcotest.(check int) "capacity 0" 0 r.Matching.size)
    Matching.all_engines

let test_capacity_two_absorbs () =
  let g = G.unit_weights ~n1:2 ~n2:1 ~edges:[ (0, 0); (1, 0) ] in
  List.iter
    (fun engine ->
      let r = Matching.solve ~engine ~capacities:[| 2 |] g in
      Alcotest.(check int) "capacity 2" 2 r.Matching.size)
    Matching.all_engines

let test_augmenting_chain () =
  (* A chain forcing a long augmenting path: greedy init matches v0-u0;
     v1 only knows u0, v0 also knows u1, etc. *)
  let n = 30 in
  let edges = List.concat (List.init n (fun i -> if i = 0 then [ (0, 0) ] else [ (i, i - 1); (i, i) ])) in
  (* Reverse roles so the chain propagates: v_i -- {u_(i-1), u_i}; v_0 -- u_0. *)
  let g = G.unit_weights ~n1:n ~n2:n ~edges in
  List.iter
    (fun engine ->
      let r = Matching.solve ~engine g in
      Alcotest.(check int) (Matching.engine_name engine ^ " chain") n r.Matching.size)
    Matching.all_engines

let test_capacity_length_mismatch () =
  let g = G.unit_weights ~n1:1 ~n2:2 ~edges:[ (0, 0) ] in
  Alcotest.check_raises "bad capacity length" (Invalid_argument "Matching: capacities length mismatch")
    (fun () -> ignore (Matching.solve ~capacities:[| 1 |] g))

let test_occupancy () =
  let g = G.unit_weights ~n1:3 ~n2:2 ~edges:[ (0, 0); (1, 0); (2, 1) ] in
  let r = Matching.solve ~capacities:[| 2; 1 |] g in
  Alcotest.(check int) "all matched" 3 r.Matching.size;
  Alcotest.(check (array int)) "occupancy" [| 2; 1 |] (Matching.occupancy g r)

let test_stats () =
  let n = 40 in
  let edges = List.concat (List.init n (fun i -> [ (i, i); (i, (i + 1) mod n) ])) in
  let g = G.unit_weights ~n1:n ~n2:n ~edges in
  List.iter
    (fun engine ->
      let result, stats = Matching.solve_with_stats ~engine g in
      Alcotest.(check int) "size" n result.Matching.size;
      (* The greedy initialization is not counted, so augmentations only
         cover the residual work. *)
      check "augmentations bounded" true
        (stats.Matching.augmentations >= 0 && stats.Matching.augmentations <= result.Matching.size);
      check "scan counter plausible" true (stats.Matching.scans >= 0);
      match engine with
      | Matching.Hopcroft_karp -> check "phases counted" true (stats.Matching.phases >= 1)
      | Matching.Push_relabel ->
          (* One global relabel at initialization. *)
          Alcotest.(check int) "init relabel" 1 stats.Matching.phases
      | Matching.Dfs -> Alcotest.(check int) "no phases" 0 stats.Matching.phases)
    Matching.all_engines

let test_stats_steals_only_push_relabel () =
  (* Force contention: two tasks, one processor of capacity 1 plus a
     fallback, so push-relabel must relocate at least once. *)
  let g = G.unit_weights ~n1:2 ~n2:2 ~edges:[ (0, 0); (1, 0); (1, 1) ] in
  let _, dfs_stats = Matching.solve_with_stats ~engine:Matching.Dfs g in
  Alcotest.(check int) "dfs never steals" 0 dfs_stats.Matching.steals;
  let _, hk_stats = Matching.solve_with_stats ~engine:Matching.Hopcroft_karp g in
  Alcotest.(check int) "hk never steals" 0 hk_stats.Matching.steals

let suite =
  [
    Alcotest.test_case "engine statistics" `Quick test_stats;
    Alcotest.test_case "steal counter" `Quick test_stats_steals_only_push_relabel;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "no edges" `Quick test_no_edges;
    Alcotest.test_case "perfect matching on a cycle" `Quick test_perfect_matching_cycle;
    Alcotest.test_case "capacity 0 blocks" `Quick test_capacity_zero_blocks;
    Alcotest.test_case "capacity 2 absorbs" `Quick test_capacity_two_absorbs;
    Alcotest.test_case "long augmenting chains" `Quick test_augmenting_chain;
    Alcotest.test_case "capacity length mismatch" `Quick test_capacity_length_mismatch;
    Alcotest.test_case "occupancy" `Quick test_occupancy;
    QCheck_alcotest.to_alcotest (engines_optimal_prop Matching.Dfs);
    QCheck_alcotest.to_alcotest (engines_optimal_prop Matching.Hopcroft_karp);
    QCheck_alcotest.to_alcotest (engines_optimal_prop Matching.Push_relabel);
    QCheck_alcotest.to_alcotest engines_agree_prop;
  ]
