module G = Bipartite.Graph
module Hilo = Bipartite.Hilo
module Fm = Bipartite.Fewg_manyg
module Adv = Bipartite.Adversarial

let check = Alcotest.(check bool)

(* ---------------------------------------------------------------- Graph *)

let test_create_and_degrees () =
  let g = G.create ~n1:3 ~n2:2 ~edges:[ (0, 0, 1.0); (0, 1, 2.0); (1, 0, 1.0); (2, 1, 5.0) ] in
  Alcotest.(check int) "edges" 4 (G.num_edges g);
  Alcotest.(check int) "deg T0" 2 (G.degree g 0);
  Alcotest.(check int) "deg T2" 1 (G.degree g 2);
  Alcotest.(check int) "max degree" 2 (G.max_degree g);
  Alcotest.(check (array int)) "in-degrees" [| 2; 2 |] (G.in_degrees g);
  check "not unit" false (G.is_unit_weighted g);
  check "no isolated" false (G.has_isolated_task g)

let test_create_validation () =
  let raises msg f = Alcotest.check_raises "invalid" (Invalid_argument msg) f in
  raises "Bipartite.Graph: V1 endpoint out of range" (fun () ->
      ignore (G.create ~n1:1 ~n2:1 ~edges:[ (1, 0, 1.0) ]));
  raises "Bipartite.Graph: V2 endpoint out of range" (fun () ->
      ignore (G.create ~n1:1 ~n2:1 ~edges:[ (0, 1, 1.0) ]));
  raises "Bipartite.Graph: weight must be positive" (fun () ->
      ignore (G.create ~n1:1 ~n2:1 ~edges:[ (0, 0, 0.0) ]))

let test_isolated_task () =
  let g = G.unit_weights ~n1:2 ~n2:1 ~edges:[ (0, 0) ] in
  check "task 1 isolated" true (G.has_isolated_task g)

let test_neighbor_iteration_order () =
  let g = G.create ~n1:1 ~n2:3 ~edges:[ (0, 2, 1.0); (0, 0, 2.0); (0, 1, 3.0) ] in
  let order = ref [] in
  G.iter_neighbors g 0 (fun u w -> order := (u, w) :: !order);
  Alcotest.(check (list (pair int (float 1e-9))))
    "input order preserved"
    [ (2, 1.0); (0, 2.0); (1, 3.0) ]
    (List.rev !order)

let test_edge_accessors () =
  let g = G.create ~n1:2 ~n2:2 ~edges:[ (0, 1, 4.0); (1, 0, 2.0) ] in
  let collected =
    G.fold_neighbors g 0 ~init:[] ~f:(fun acc ~edge u w -> (edge, u, w) :: acc)
  in
  (match collected with
  | [ (e, u, w) ] ->
      Alcotest.(check int) "endpoint via accessor" u (G.edge_endpoint g e);
      Alcotest.(check (float 1e-9)) "weight via accessor" w (G.edge_weight g e)
  | _ -> Alcotest.fail "expected one edge");
  check "structure equality" true (G.equal_structure g g)

let test_of_adjacency () =
  let g = G.of_adjacency ~n2:3 [| [ (0, 1.0); (2, 2.0) ]; [ (1, 1.0) ] |] in
  Alcotest.(check int) "edges" 3 (G.num_edges g);
  Alcotest.(check int) "deg 0" 2 (G.degree g 0)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_to_dot_mentions_all () =
  let g = Adv.fig1 () in
  let dot = G.to_dot g in
  List.iter (fun s -> check ("dot contains " ^ s) true (contains ~needle:s dot)) [ "T1"; "T2"; "P1"; "P2" ]

(* ----------------------------------------------------------------- HiLo *)

let test_hilo_fig_structure () =
  (* Small divisible case: n1 = n2 = 8, g = 2, d = 1. *)
  let adj = Hilo.adjacency ~n1:8 ~n2:8 ~g:2 ~d:1 in
  (* First vertex of group 0 (i=1): k ranges over max(1, 1-1)...1 = {1}; its
     group and the next one. *)
  Alcotest.(check (array int)) "x^0_1" [| 0; 4 |] adj.(0);
  (* Second vertex (i=2): k in {1,2} of groups 0 and 1. *)
  Alcotest.(check (array int)) "x^0_2" [| 0; 1; 4; 5 |] adj.(1);
  (* Last group has no next group. *)
  Alcotest.(check (array int)) "x^1_1" [| 4 |] adj.(4)

let test_hilo_unique_perfect_matching_case () =
  (* For n1 = n2 and d = 0 every vertex x^j_i connects to y^j_i (and the
     next group's), and the graph admits a perfect matching. *)
  let g = Hilo.generate ~n1:16 ~n2:16 ~g:4 ~d:0 in
  check "no isolated" false (G.has_isolated_task g);
  let m = Matching.solve g in
  Alcotest.(check int) "perfect matching" 16 m.Matching.size

let test_hilo_task_surplus () =
  (* n1 > n2: within-group index caps at p/g, so high-index tasks share the
     tail processors. *)
  let adj = Hilo.adjacency ~n1:40 ~n2:8 ~g:2 ~d:2 in
  Array.iteri
    (fun v neighbors ->
      check (Printf.sprintf "task %d has neighbours" v) true (Array.length neighbors > 0);
      Array.iter (fun u -> check "in range" true (u >= 0 && u < 8)) neighbors)
    adj

let test_hilo_determinism () =
  let a = Hilo.generate ~n1:24 ~n2:12 ~g:3 ~d:2 and b = Hilo.generate ~n1:24 ~n2:12 ~g:3 ~d:2 in
  check "deterministic" true (G.equal_structure a b)

let test_hilo_invalid_args () =
  Alcotest.check_raises "bad g" (Invalid_argument "Hilo.adjacency: invalid group count") (fun () ->
      ignore (Hilo.adjacency ~n1:4 ~n2:4 ~g:0 ~d:1))

(* ----------------------------------------------------------- FewgManyg *)

let test_fewg_degrees_in_pool () =
  let rng = Randkit.Prng.create ~seed:7 in
  let adj = Fm.adjacency rng ~n1:200 ~n2:64 ~g:8 ~d:5 in
  Array.iteri
    (fun v neighbors ->
      check (Printf.sprintf "task %d nonempty" v) true (Array.length neighbors >= 1);
      (* Distinct and sorted. *)
      for i = 1 to Array.length neighbors - 1 do
        check "distinct sorted" true (neighbors.(i - 1) < neighbors.(i))
      done)
    adj

let test_fewg_mean_degree () =
  let rng = Randkit.Prng.create ~seed:11 in
  let adj = Fm.adjacency rng ~n1:2000 ~n2:256 ~g:32 ~d:10 in
  let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj in
  let mean = float_of_int total /. 2000.0 in
  check "mean close to 10" true (abs_float (mean -. 10.0) < 0.5)

let test_fewg_neighbors_in_adjacent_groups () =
  let rng = Randkit.Prng.create ~seed:13 in
  let n2 = 64 and g = 8 in
  let adj = Fm.adjacency rng ~n1:80 ~n2 ~g ~d:3 in
  let group_of_v2 u = u * g / n2 in
  Array.iteri
    (fun v neighbors ->
      let gv = v * g / 80 in
      Array.iter
        (fun u ->
          let gu = group_of_v2 u in
          let diff = (gu - gv + g) mod g in
          check "neighbour group within ±1 (wrap)" true (diff = 0 || diff = 1 || diff = g - 1))
        neighbors)
    adj

let test_fewg_small_pool_replacement_path () =
  (* g close to n2 forces tiny pools; with d larger than the pool the
     generator must fall back to replacement sampling and still produce
     distinct neighbours. *)
  let rng = Randkit.Prng.create ~seed:17 in
  let adj = Fm.adjacency rng ~n1:50 ~n2:16 ~g:8 ~d:10 in
  Array.iter
    (fun neighbors ->
      check "nonempty" true (Array.length neighbors >= 1);
      check "bounded by pool" true (Array.length neighbors <= 6);
      for i = 1 to Array.length neighbors - 1 do
        check "distinct" true (neighbors.(i - 1) < neighbors.(i))
      done)
    adj

let test_fewg_reproducible () =
  let mk () =
    let rng = Randkit.Prng.create ~seed:23 in
    Fm.generate rng ~n1:100 ~n2:32 ~g:4 ~d:4
  in
  check "same seed, same graph" true (G.equal_structure (mk ()) (mk ()))

(* ---------------------------------------------------------- Adversarial *)

let test_fig1_shape () =
  let g = Adv.fig1 () in
  Alcotest.(check int) "tasks" 2 g.G.n1;
  Alcotest.(check int) "procs" 2 g.G.n2;
  Alcotest.(check int) "deg T1" 2 (G.degree g 0);
  Alcotest.(check int) "deg T2" 1 (G.degree g 1)

let test_sorted_trap_shape () =
  let k = 4 in
  let g = Adv.sorted_greedy_trap ~k in
  Alcotest.(check int) "tasks" ((1 lsl k) - 1) g.G.n1;
  Alcotest.(check int) "procs" (1 lsl k) g.G.n2;
  for v = 0 to g.G.n1 - 1 do
    Alcotest.(check int) "all degree 2" 2 (G.degree g v)
  done

let test_sorted_trap_has_makespan_one_schedule () =
  (* The optimum places T^(l)_i on P_(i + 2^(k-1-l)): perfect matching. *)
  let g = Adv.sorted_greedy_trap ~k:5 in
  let exact = Semimatch.Exact_unit.solve g in
  Alcotest.(check int) "optimal 1" 1 exact.Semimatch.Exact_unit.makespan

let test_double_sorted_trap_shape () =
  let g = Adv.double_sorted_trap () in
  Alcotest.(check int) "tasks" 12 g.G.n1;
  Alcotest.(check int) "procs" 12 g.G.n2;
  let in_deg = G.in_degrees g in
  for u = 0 to 7 do
    Alcotest.(check int) (Printf.sprintf "P%d in-degree 3" (u + 1)) 3 in_deg.(u)
  done;
  for u = 8 to 11 do
    Alcotest.(check int) "private processors in-degree 1" 1 in_deg.(u)
  done

let test_expected_trap_shape () =
  let g = Adv.expected_greedy_trap () in
  Alcotest.(check int) "tasks" 16 g.G.n1;
  Alcotest.(check int) "procs" 16 g.G.n2;
  for v = 0 to 15 do
    Alcotest.(check int) "all degree 2" 2 (G.degree g v)
  done;
  let in_deg = G.in_degrees g in
  for u = 0 to 7 do
    Alcotest.(check int) "P1..P8 in-degree 3" 3 in_deg.(u)
  done

let suite =
  [
    Alcotest.test_case "create and degrees" `Quick test_create_and_degrees;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "isolated task detection" `Quick test_isolated_task;
    Alcotest.test_case "neighbour iteration order" `Quick test_neighbor_iteration_order;
    Alcotest.test_case "edge accessors" `Quick test_edge_accessors;
    Alcotest.test_case "of_adjacency" `Quick test_of_adjacency;
    Alcotest.test_case "dot export" `Quick test_to_dot_mentions_all;
    Alcotest.test_case "hilo: documented structure" `Quick test_hilo_fig_structure;
    Alcotest.test_case "hilo: perfect matching case" `Quick test_hilo_unique_perfect_matching_case;
    Alcotest.test_case "hilo: more tasks than processors" `Quick test_hilo_task_surplus;
    Alcotest.test_case "hilo: deterministic" `Quick test_hilo_determinism;
    Alcotest.test_case "hilo: invalid arguments" `Quick test_hilo_invalid_args;
    Alcotest.test_case "fewg-manyg: degrees valid" `Quick test_fewg_degrees_in_pool;
    Alcotest.test_case "fewg-manyg: mean degree" `Quick test_fewg_mean_degree;
    Alcotest.test_case "fewg-manyg: group locality" `Quick test_fewg_neighbors_in_adjacent_groups;
    Alcotest.test_case "fewg-manyg: replacement fallback" `Quick test_fewg_small_pool_replacement_path;
    Alcotest.test_case "fewg-manyg: reproducible" `Quick test_fewg_reproducible;
    Alcotest.test_case "adversarial: fig1 shape" `Quick test_fig1_shape;
    Alcotest.test_case "adversarial: fig3 shape" `Quick test_sorted_trap_shape;
    Alcotest.test_case "adversarial: fig3 optimal is 1" `Quick test_sorted_trap_has_makespan_one_schedule;
    Alcotest.test_case "adversarial: TR fig4 shape" `Quick test_double_sorted_trap_shape;
    Alcotest.test_case "adversarial: TR fig5 shape" `Quick test_expected_trap_shape;
  ]
