(* The paper's hand-crafted worst cases, live.

     dune exec examples/adversarial_worstcase.exe

   Section IV-B builds instances on which each greedy heuristic in turn
   takes every wrong decision: Fig. 3 fools basic- and sorted-greedy by any
   factor k, the technical report's Fig. 4 extension fools double-sorted but
   not expected-greedy, and its Fig. 5 construction finally fools
   expected-greedy too.  The exact algorithm shreds them all, illustrating
   why "no approximation guarantee" is not a technicality. *)

module Gb = Semimatch.Greedy_bipartite
module Adv = Bipartite.Adversarial

let report name g =
  Printf.printf "%s  (%d tasks, %d processors)\n" name g.Bipartite.Graph.n1 g.Bipartite.Graph.n2;
  let opt = (Semimatch.Exact_unit.solve g).Semimatch.Exact_unit.makespan in
  Printf.printf "  %-16s %g\n" "exact optimum" (float_of_int opt);
  List.iter
    (fun algo -> Printf.printf "  %-16s %g\n" (Gb.name algo) (Gb.makespan algo g))
    Gb.all;
  print_newline ()

let () =
  Printf.printf "== Fig. 3 family: sorted-greedy loses by any factor k ==\n\n";
  List.iter
    (fun k ->
      let g = Adv.sorted_greedy_trap ~k in
      let sorted = Gb.makespan Gb.Sorted g in
      Printf.printf "  k=%d: optimal 1, sorted-greedy %g\n" k sorted)
    [ 2; 3; 4; 5; 6; 8; 10 ];
  Printf.printf "\n== Fig. 1: the 2-task basic-greedy trap ==\n\n";
  report "fig1" (Adv.fig1 ());
  Printf.printf "== TR Fig. 4: double-sorted trapped, expected-greedy escapes ==\n\n";
  report "double_sorted_trap" (Adv.double_sorted_trap ());
  Printf.printf "== TR Fig. 5: expected-greedy trapped as well ==\n\n";
  report "expected_greedy_trap" (Adv.expected_greedy_trap ());
  Printf.printf "== local search as damage control on the k=6 trap ==\n\n";
  let g = Adv.sorted_greedy_trap ~k:6 in
  let trapped = Gb.run Gb.Sorted g in
  let refined, moves =
    Semimatch.Local_search.refine_bipartite g trapped
  in
  Printf.printf "  sorted-greedy %g  ->  after %d single-task moves: %g (optimum 1)\n"
    (Semimatch.Bip_assignment.makespan g trapped)
    moves
    (Semimatch.Bip_assignment.makespan g refined)
