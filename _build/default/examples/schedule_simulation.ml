(* Executing a schedule: from semi-matching to timeline.

     dune exec examples/schedule_simulation.exe

   A semi-matching only decides *where* work goes; the concurrent-job-shop
   semantics (paper Sec. II) lets each processor order its parts freely.
   This example computes a schedule for a small render-farm workload, then
   simulates it event by event under different per-processor ordering
   policies: the makespan is invariant (it equals the maximum load — the
   quantity the heuristics minimized), while task completion times are not.
   An ASCII Gantt chart shows the final timeline. *)

module Gh = Semimatch.Greedy_hyper

let () =
  let rng = Randkit.Prng.create ~seed:11 in
  let n = 18 and p = 5 in
  (* Small random MULTIPROC workload: 1-3 configurations per task. *)
  let hyperedges = ref [] in
  for v = 0 to n - 1 do
    let configs = 1 + Randkit.Prng.int rng 3 in
    for _ = 1 to configs do
      let size = 1 + Randkit.Prng.int rng 2 in
      let procs = Randkit.Prng.sample_without_replacement rng ~k:size ~n:p in
      let w = float_of_int (1 + Randkit.Prng.int rng 6) in
      hyperedges := (v, procs, w) :: !hyperedges
    done
  done;
  let h = Hyper.Graph.create ~n1:n ~n2:p ~hyperedges:(List.rev !hyperedges) in
  let a = Gh.run Gh.Expected_vector_greedy_hyp h in
  let a, _ = Semimatch.Local_search.refine h a in
  Printf.printf "%d tasks on %d processors; EVG+LS makespan %g (LB %.2f)\n\n" n p
    (Semimatch.Hyp_assignment.makespan h a)
    (Semimatch.Lower_bound.multiproc h);
  Printf.printf "%-12s %10s %16s\n" "policy" "makespan" "avg completion";
  List.iter
    (fun policy ->
      let t = Simulator.run ~policy h a in
      Printf.printf "%-12s %10g %16.2f\n" (Simulator.policy_name policy) t.Simulator.makespan
        (Simulator.average_completion t))
    [ Simulator.Fifo; Simulator.Spt; Simulator.Lpt; Simulator.Random_order 3 ];
  let t = Simulator.run ~policy:Simulator.Spt h a in
  Printf.printf "\nGantt chart (SPT ordering; digits are task ids mod 16):\n\n%s"
    (Simulator.gantt ~width:64 ~proc_names:(Printf.sprintf "P%d") t)
