(* A heterogeneous accelerator cluster — the workload class that motivates
   MULTIPROC in the paper's introduction (server virtualization, application
   accelerators, emerging architectures).

     dune exec examples/accelerator_cluster.exe

   The cluster has CPU sockets and GPUs; each job offers several
   configurations (one socket slowly, several sockets faster, or a GPU).
   We build a few hundred jobs with the library's generator machinery, then
   race the four MULTIPROC heuristics and the local-search refinement
   against the paper's lower bound. *)

module Gh = Semimatch.Greedy_hyper

let sockets = 48
let gpus = 8
let processors = sockets + gpus
let jobs = 600

(* Job classes: fractions of the job mix with their configuration menus. *)
let build_instance seed =
  let rng = Randkit.Prng.create ~seed in
  let hyperedges = ref [] in
  let add v procs time = hyperedges := (v, procs, time) :: !hyperedges in
  let random_sockets k =
    Array.map (fun i -> i) (Randkit.Prng.sample_without_replacement rng ~k ~n:sockets)
  in
  let random_gpu () = sockets + Randkit.Prng.int rng gpus in
  for v = 0 to jobs - 1 do
    match Randkit.Prng.int rng 100 with
    | c when c < 40 ->
        (* CPU-bound solver: 1 socket in t, or 4 sockets in t/3 each. *)
        let t = 4.0 +. Randkit.Prng.float rng 8.0 in
        add v (random_sockets 1) t;
        add v (random_sockets 4) (t /. 3.0)
    | c when c < 70 ->
        (* GPU-friendly kernel: one GPU fast, or 2 sockets slower. *)
        let t = 2.0 +. Randkit.Prng.float rng 4.0 in
        add v [| random_gpu () |] t;
        add v (random_sockets 2) (2.5 *. t)
    | c when c < 90 ->
        (* Embarrassingly parallel sweep: 2, 8 or 16 sockets. *)
        let t = 16.0 +. Randkit.Prng.float rng 16.0 in
        add v (random_sockets 2) (t /. 2.0);
        add v (random_sockets 8) (t /. 7.0);
        add v (random_sockets 16) (t /. 12.0)
    | _ ->
        (* Licensed tool pinned to a specific socket or a specific GPU. *)
        let t = 6.0 +. Randkit.Prng.float rng 6.0 in
        add v [| Randkit.Prng.int rng sockets |] t;
        add v [| random_gpu () |] (0.8 *. t)
  done;
  Hyper.Graph.create ~n1:jobs ~n2:processors ~hyperedges:(List.rev !hyperedges)

let () =
  let h = build_instance 42 in
  let lb = Semimatch.Lower_bound.multiproc h in
  Printf.printf "cluster: %d sockets + %d GPUs, %d jobs, %d configurations\n" sockets gpus jobs
    (Hyper.Graph.num_hyperedges h);
  Printf.printf "lower bound on the makespan (Eq. 1): %.2f\n\n" lb;
  Printf.printf "%-30s %10s %8s %12s\n" "algorithm" "makespan" "vs LB" "moves";
  List.iter
    (fun algo ->
      let a = Gh.run algo h in
      let m = Semimatch.Hyp_assignment.makespan h a in
      Printf.printf "%-30s %10.2f %8.3f %12s\n" (Gh.name algo) m (m /. lb) "-";
      let refined, moves = Semimatch.Local_search.refine h a in
      let mr = Semimatch.Hyp_assignment.makespan h refined in
      Printf.printf "%-30s %10.2f %8.3f %12d\n" ("  + local search") mr (mr /. lb) moves)
    Gh.all;
  (* Show where the busiest processors ended up under the best heuristic. *)
  let best = Gh.run Gh.Expected_vector_greedy_hyp h in
  let refined, _ = Semimatch.Local_search.refine h best in
  let loads = Semimatch.Hyp_assignment.loads h refined in
  let indexed = Array.mapi (fun u l -> (l, u)) loads in
  Array.sort (fun a b -> compare b a) indexed;
  Printf.printf "\nbusiest processors (EVG + local search):\n";
  Array.iteri
    (fun rank (l, u) ->
      if rank < 5 then
        Printf.printf "  %-8s load %.2f\n"
          (if u < sockets then Printf.sprintf "cpu%d" u else Printf.sprintf "gpu%d" (u - sockets))
          l)
    indexed
