(* Quickstart: schedule a handful of parallel tasks under resource
   constraints with the high-level Sched API.

     dune exec examples/quickstart.exe

   A task offers one or more *configurations* — alternative processor sets
   with an execution time each processor spends.  The solver picks one
   configuration per task to minimize the makespan (the busiest processor's
   load); that is exactly the paper's MULTIPROC semi-matching problem. *)

let () =
  let instance =
    Sched.instance
      ~processors:[ "cpu0"; "cpu1"; "cpu2"; "gpu" ]
      ~tasks:
        [
          (* Rendering is fastest on the GPU, but can spread over two CPUs. *)
          Sched.task "render"
            [ Sched.config [ "gpu" ] ~time:2.0; Sched.config [ "cpu0"; "cpu1" ] ~time:3.0 ];
          (* Encoding is CPU-only, any single core. *)
          Sched.task "encode"
            [
              Sched.config [ "cpu0" ] ~time:4.0;
              Sched.config [ "cpu1" ] ~time:4.0;
              Sched.config [ "cpu2" ] ~time:4.0;
            ];
          (* Analytics can run sequentially or split over all three cores. *)
          Sched.task "analytics"
            [
              Sched.config [ "cpu2" ] ~time:6.0;
              Sched.config [ "cpu0"; "cpu1"; "cpu2" ] ~time:2.5;
            ];
          (* A GPU-only preprocessing kernel. *)
          Sched.task "preprocess" [ Sched.config [ "gpu" ] ~time:1.5 ];
        ]
  in
  Format.printf "instance: %d tasks on %d processors@.@." (Sched.num_tasks instance)
    (Sched.num_processors instance);
  (* Default algorithm: expected-vector-greedy-hyp, the paper's best. *)
  let schedule = Sched.solve instance in
  Format.printf "%a@." Sched.pp_schedule schedule;
  (* Compare every heuristic, with and without local-search refinement. *)
  Format.printf "@.algorithm comparison:@.";
  List.iter
    (fun algorithm ->
      let s = Sched.solve ~algorithm instance in
      Format.printf "  %-42s makespan %g@." (Sched.algorithm_name algorithm) s.Sched.makespan)
    (List.concat_map
       (fun a -> [ Sched.Greedy a; Sched.Greedy_refined a ])
       Semimatch.Greedy_hyper.all);
  (* This instance is tiny, so the NP-complete problem is still enumerable:
     show the true optimum for reference. *)
  let opt, _ = Semimatch.Brute_force.multiproc (Sched.hypergraph instance) in
  Format.printf "  %-42s makespan %g@." "brute-force optimum" opt
