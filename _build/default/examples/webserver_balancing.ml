(* Request routing with machine eligibility — the SINGLEPROC-UNIT special
   case, solved *exactly* in polynomial time.

     dune exec examples/webserver_balancing.exe

   A CDN edge site has a fleet of identical workers, but each request class
   can only run on workers holding the right data shard (resource
   constraints).  All requests cost one slot (unit weights), so the optimal
   assignment is computable with the repeated-matching algorithm of the
   paper's Sec. IV-A; we compare it with the four greedy heuristics. *)

let workers = 64
let shards = 16
let requests = 4000

(* Each worker holds 3 shards; each request needs one shard and may run on
   any worker holding it. *)
let build seed =
  let rng = Randkit.Prng.create ~seed in
  let shard_of_worker =
    Array.init workers (fun _ -> Randkit.Prng.sample_without_replacement rng ~k:3 ~n:shards)
  in
  let workers_of_shard = Array.make shards [] in
  Array.iteri
    (fun w held -> Array.iter (fun s -> workers_of_shard.(s) <- w :: workers_of_shard.(s)) held)
    shard_of_worker;
  (* A skewed shard popularity: shard s drawn with weight 1/(s+1). *)
  let total = Array.fold_left ( +. ) 0.0 (Array.init shards (fun s -> 1.0 /. float_of_int (s + 1))) in
  let draw_shard () =
    let x = Randkit.Prng.float rng total in
    let rec pick s acc =
      let acc = acc +. (1.0 /. float_of_int (s + 1)) in
      if x < acc || s = shards - 1 then s else pick (s + 1) acc
    in
    pick 0 0.0
  in
  let edges = ref [] in
  for r = 0 to requests - 1 do
    let s = draw_shard () in
    if workers_of_shard.(s) = [] then
      (* Unpopulated shard: fall back to worker 0 holding everything. *)
      edges := (r, 0) :: !edges
    else List.iter (fun w -> edges := (r, w) :: !edges) workers_of_shard.(s)
  done;
  Bipartite.Graph.unit_weights ~n1:requests ~n2:workers ~edges:(List.rev !edges)

let () =
  let g = build 7 in
  Printf.printf "site: %d workers, %d shards, %d unit requests\n" workers shards requests;
  Printf.printf "trivial lower bound ceil(n/p) = %d\n\n" (Semimatch.Lower_bound.singleproc_unit g);
  let exact = Semimatch.Exact_unit.solve g in
  Printf.printf "exact optimum: %d slots (%d matchings computed)\n" exact.Semimatch.Exact_unit.makespan
    exact.Semimatch.Exact_unit.deadlines_tried;
  let bisect = Semimatch.Exact_unit.solve ~strategy:Semimatch.Exact_unit.Bisection g in
  Printf.printf "bisection search agrees: %d (%d matchings)\n\n"
    bisect.Semimatch.Exact_unit.makespan bisect.Semimatch.Exact_unit.deadlines_tried;
  Printf.printf "%-20s %10s %10s\n" "heuristic" "makespan" "vs OPT";
  List.iter
    (fun algo ->
      let m = Semimatch.Greedy_bipartite.makespan algo g in
      Printf.printf "%-20s %10.0f %10.3f\n"
        (Semimatch.Greedy_bipartite.name algo)
        m
        (m /. float_of_int exact.Semimatch.Exact_unit.makespan))
    Semimatch.Greedy_bipartite.all
