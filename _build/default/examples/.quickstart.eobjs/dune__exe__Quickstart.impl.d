examples/quickstart.ml: Format List Sched Semimatch
