examples/quickstart.mli:
