examples/adversarial_worstcase.mli:
