examples/webserver_balancing.mli:
