examples/schedule_simulation.mli:
