examples/schedule_simulation.ml: Hyper List Printf Randkit Semimatch Simulator
