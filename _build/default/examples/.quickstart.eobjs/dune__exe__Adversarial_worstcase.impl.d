examples/adversarial_worstcase.ml: Bipartite List Printf Semimatch
