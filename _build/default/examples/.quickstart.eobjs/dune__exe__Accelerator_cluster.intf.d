examples/accelerator_cluster.mli:
