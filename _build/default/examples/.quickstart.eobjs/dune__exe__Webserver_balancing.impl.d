examples/webserver_balancing.ml: Array Bipartite List Printf Randkit Semimatch
