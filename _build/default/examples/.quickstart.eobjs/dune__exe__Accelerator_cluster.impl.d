examples/accelerator_cluster.ml: Array Hyper List Printf Randkit Semimatch
