bin/experiments_main.ml: Arg Cmd Cmdliner Experiments Hyper Manpage Option Printf Term Unix
