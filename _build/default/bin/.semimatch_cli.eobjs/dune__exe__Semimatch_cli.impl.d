bin/semimatch_cli.ml: Arg Array Bipartite Cmd Cmdliner Hyper List Printf Randkit Semimatch Simulator Term
