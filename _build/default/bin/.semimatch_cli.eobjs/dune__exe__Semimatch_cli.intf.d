bin/semimatch_cli.mli:
