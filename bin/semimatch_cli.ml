(* Command-line front end: generate, inspect and solve MULTIPROC instances
   stored in the Hyper.Io text format.

     semimatch_cli gen --family fewg --n 1280 --p 256 -o inst.hg
     semimatch_cli info inst.hg
     semimatch_cli solve --algorithm evg --refine inst.hg
     semimatch_cli profile --stats=json inst.hg
     semimatch_cli exact inst.hg       # singleton unit instances only *)

open Cmdliner

module Gh = Semimatch.Greedy_hyper
module Faults = Semimatch.Faults

(* Error-path contract: user mistakes (bad file, bad spec, unwritable
   output) print one line on stderr and exit 2 — never a backtrace. *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("semimatch_cli: " ^ msg);
      exit 2)
    fmt

let load_instance file =
  try Hyper.Io.load file with
  | Sys_error msg -> die "%s" msg
  | Failure msg -> die "%s" msg
  | Invalid_argument msg -> die "invalid instance %s: %s" file msg

let save_instance file h =
  try Hyper.Io.save file h with Sys_error msg -> die "%s" msg

let write_trace path =
  (try Obs.Trace.write_file path with Sys_error msg -> die "%s" msg);
  Printf.eprintf "wrote Chrome trace to %s (open in ui.perfetto.dev)\n" path

let parse_faults spec = try Faults.of_string spec with Failure msg -> die "%s" msg

let degradation_for h plan =
  try Faults.degradation plan ~p:h.Hyper.Graph.n2 with Failure msg -> die "%s" msg

let family_conv =
  Arg.enum [ ("fewg", Hyper.Generate.Fewg_manyg); ("hilo", Hyper.Generate.Hilo) ]

(* --stats[=table|json|csv]: enable the Obs probes for the command and
   append a telemetry report to stdout. *)
let stats_conv =
  Arg.enum [ ("table", Obs.Sink.Table); ("json", Obs.Sink.Json); ("csv", Obs.Sink.Csv) ]

let stats_arg =
  Arg.(value
       & opt ~vopt:(Some Obs.Sink.Table) (some stats_conv) None
       & info [ "stats" ] ~docv:"FMT"
           ~doc:"Enable telemetry probes and append a metrics report (table, json or csv).")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"J"
           ~doc:"Number of domains to run on (default 1: sequential).")

(* --trace FILE: export the spans/events recorded during the command as a
   Chrome trace-event file (one track per domain, flow arrows linking pool
   submission to execution). *)
let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:
             "Enable telemetry and write a Chrome trace-event file; open it at \
              $(b,ui.perfetto.dev) (or chrome://tracing).")

(* --events[=text|json]: print the structured event log after the run. *)
let events_conv = Arg.enum [ ("text", `Text); ("json", `Json) ]

let events_arg =
  Arg.(value
       & opt ~vopt:(Some `Text) (some events_conv) None
       & info [ "events" ] ~docv:"FMT"
           ~doc:
             "Enable telemetry and print the structured event log (incumbents, cutoffs, \
              phases...) as text or json lines.")

(* Every telemetry surface shares one switch: any of --stats / --trace /
   --events enables the probes; each then renders its own view of the run. *)
let with_telemetry ?(trace = None) ?(events = None) stats f =
  if stats = None && trace = None && events = None then f ()
  else begin
    Obs.set_enabled true;
    Obs.reset ();
    let result = f () in
    (match stats with
    | None -> ()
    | Some fmt ->
        print_newline ();
        Obs.Sink.emit fmt);
    (match events with
    | None -> ()
    | Some `Text ->
        print_newline ();
        print_string (Obs.Events.render_text ())
    | Some `Json ->
        print_newline ();
        print_string (Obs.Events.render_jsonl ()));
    (match trace with
    | None -> ()
    | Some path ->
        write_trace path);
    result
  end

let with_stats stats f = with_telemetry stats f

(* SINGLEPROC-UNIT detection and embedding, shared by [exact] and
   [profile]: singleton unit-weight configurations are plain bipartite
   edges (Hyper.Graph.to_bipartite does the structural half). *)
let singleton_unit h =
  match Hyper.Graph.to_bipartite h with
  | Some g when Bipartite.Graph.is_unit_weighted g -> Some g
  | Some _ | None -> None

let weights_conv =
  Arg.enum
    [
      ("unit", Hyper.Weights.Unit);
      ("related", Hyper.Weights.Related);
      ("random", Hyper.Weights.default_random);
    ]

let algorithm_conv =
  Arg.enum
    [
      ("sgh", Gh.Sorted_greedy_hyp);
      ("egh", Gh.Expected_greedy_hyp);
      ("vgh", Gh.Vector_greedy_hyp);
      ("evg", Gh.Expected_vector_greedy_hyp);
    ]

let file_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")

(* gen --stream-out: emit straight to the binary edge-stream format through
   the streaming generators — the in-core graph never exists, so the
   instance size is bounded by disk, not RAM. *)
let stream_out_arg =
  Arg.(value & opt (some string) None
       & info [ "stream-out" ] ~docv:"FILE"
           ~doc:
             "Also/instead write a binary edge stream, emitted directly from the generator \
              without building the in-core graph (use alone for instances bigger than RAM).")

let with_stream_writer path ~n1 ~n2 f =
  let w =
    try Hyper.Stream_io.create_writer ~path ~n1 ~n2 ()
    with Sys_error msg | Invalid_argument msg -> die "%s" msg
  in
  let t0 = Unix.gettimeofday () in
  (try Fun.protect ~finally:(fun () -> Hyper.Stream_io.close_writer w) (fun () -> f w)
   with Invalid_argument msg | Failure msg -> die "%s" msg);
  let dt = Unix.gettimeofday () -. t0 in
  let records = Hyper.Stream_io.writer_records w in
  Printf.printf "wrote %s: edge stream, %d tasks, %d processors, %d records (%.2fs, %.0f records/s)\n"
    path n1 n2 records dt
    (if dt > 0.0 then float_of_int records /. dt else 0.0)

type gen_family = Paper of Hyper.Generate.family | Uniform | Powerlaw

let gen_family_conv =
  Arg.enum
    [
      ("fewg", Paper Hyper.Generate.Fewg_manyg);
      ("hilo", Paper Hyper.Generate.Hilo);
      ("uniform", Uniform);
      ("powerlaw", Powerlaw);
    ]

let gen_cmd =
  let run family n p dv dh g alpha weights seed output stream_out =
    if output = None && stream_out = None then die "gen needs -o FILE and/or --stream-out FILE";
    (match output with
    | None -> ()
    | Some output ->
        let rng = Randkit.Prng.create ~seed in
        let h =
          try
            match family with
            | Paper family -> Hyper.Generate.generate rng ~family ~n ~p ~dv ~dh ~g ~weights
            | Uniform -> Hyper.Generate.generate_uniform rng ~n ~p ~dv ~dh ~weights
            | Powerlaw -> Hyper.Generate.generate_powerlaw rng ~n ~p ~dv ~dh ~alpha ~weights
          with Invalid_argument msg -> die "%s" msg
        in
        save_instance output h;
        Printf.printf "wrote %s: %d tasks, %d processors, %d hyperedges, %d pins\n" output
          h.Hyper.Graph.n1 h.Hyper.Graph.n2 (Hyper.Graph.num_hyperedges h)
          (Hyper.Graph.num_pins h));
    match stream_out with
    | None -> ()
    | Some path ->
        (* A fresh RNG with the same seed: with unit weights the streamed
           instance is byte-for-byte the one `-o` materializes. *)
        let rng = Randkit.Prng.create ~seed in
        with_stream_writer path ~n1:n ~n2:p (fun w ->
            let emit ~task ~procs ~weight = Hyper.Stream_io.add w ~task ~procs ~weight in
            ignore
              (match family with
              | Paper family -> Hyper.Generate.stream rng ~family ~n ~p ~dv ~dh ~g ~weights ~emit
              | Uniform -> Hyper.Generate.stream_uniform rng ~n ~p ~dv ~dh ~weights ~emit
              | Powerlaw ->
                  Hyper.Generate.stream_powerlaw rng ~n ~p ~dv ~dh ~alpha ~weights ~emit))
  in
  let family =
    Arg.(value & opt gen_family_conv (Paper Hyper.Generate.Fewg_manyg)
         & info [ "family" ] ~docv:"FAM" ~doc:"fewg, hilo, uniform or powerlaw")
  and n = Arg.(value & opt int 1280 & info [ "n"; "tasks" ] ~doc:"number of tasks")
  and p = Arg.(value & opt int 256 & info [ "p"; "procs" ] ~doc:"number of processors")
  and dv = Arg.(value & opt int 5 & info [ "dv" ] ~doc:"mean configurations per task")
  and dh = Arg.(value & opt int 10 & info [ "dh" ] ~doc:"processors-per-configuration parameter")
  and g = Arg.(value & opt int 32 & info [ "g"; "groups" ] ~doc:"number of groups")
  and alpha =
    Arg.(value & opt float 1.2
         & info [ "alpha" ] ~docv:"A" ~doc:"Zipf exponent for the powerlaw family")
  and weights =
    Arg.(value & opt weights_conv Hyper.Weights.Unit
         & info [ "weights" ] ~docv:"SCHEME" ~doc:"unit, related or random")
  and seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"random seed")
  and output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"output path")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a random MULTIPROC instance")
    Term.(const run $ family $ n $ p $ dv $ dh $ g $ alpha $ weights $ seed $ output
          $ stream_out_arg)

let gen_sp_cmd =
  let run family n p d g seed output stream_out =
    if output = None && stream_out = None then
      die "gen-sp needs -o FILE and/or --stream-out FILE";
    (match output with
    | None -> ()
    | Some output ->
        let graph =
          try
            match family with
            | Hyper.Generate.Hilo -> Bipartite.Hilo.generate ~n1:n ~n2:p ~g ~d
            | Hyper.Generate.Fewg_manyg ->
                let rng = Randkit.Prng.create ~seed in
                Bipartite.Fewg_manyg.generate rng ~n1:n ~n2:p ~g ~d
          with Invalid_argument msg -> die "%s" msg
        in
        let h = Hyper.Graph.of_bipartite graph in
        save_instance output h;
        Printf.printf "wrote %s: SINGLEPROC-UNIT, %d tasks, %d processors, %d edges\n" output
          h.Hyper.Graph.n1 h.Hyper.Graph.n2 (Hyper.Graph.num_hyperedges h));
    match stream_out with
    | None -> ()
    | Some path ->
        let rng = Randkit.Prng.create ~seed in
        with_stream_writer path ~n1:n ~n2:p (fun w ->
            ignore
              (Hyper.Generate.stream_sp rng ~family ~n ~p ~g ~d ~emit:(fun ~task ~proc ->
                   Hyper.Stream_io.add w ~task ~procs:[| proc |] ~weight:1.0)))
  in
  let family =
    Arg.(value & opt family_conv Hyper.Generate.Fewg_manyg
         & info [ "family" ] ~docv:"FAM" ~doc:"fewg or hilo")
  and n = Arg.(value & opt int 1280 & info [ "n"; "tasks" ] ~doc:"number of tasks")
  and p = Arg.(value & opt int 256 & info [ "p"; "procs" ] ~doc:"number of processors")
  and d = Arg.(value & opt int 10 & info [ "d"; "degree" ] ~doc:"average task degree")
  and g = Arg.(value & opt int 32 & info [ "g"; "groups" ] ~doc:"number of groups")
  and seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"random seed")
  and output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"output path")
  in
  Cmd.v
    (Cmd.info "gen-sp" ~doc:"Generate a SINGLEPROC-UNIT instance (solvable exactly)")
    Term.(const run $ family $ n $ p $ d $ g $ seed $ output $ stream_out_arg)

let info_cmd =
  let run verbose dot file =
    let h = load_instance file in
    Printf.printf "%s: %d tasks, %d processors, %d hyperedges, %d pins\n" file h.Hyper.Graph.n1
      h.Hyper.Graph.n2 (Hyper.Graph.num_hyperedges h) (Hyper.Graph.num_pins h);
    let mn, mx = Hyper.Graph.min_max_h_size h in
    Printf.printf "configuration sizes: %d..%d\n" mn mx;
    Printf.printf "lower bound (Eq. 1): %g\n" (Semimatch.Lower_bound.multiproc h);
    Printf.printf "refined lower bound: %g\n" (Semimatch.Lower_bound.multiproc_refined h);
    if verbose then begin
      print_newline ();
      print_string (Hyper.Stats.render (Hyper.Stats.compute h))
    end;
    match dot with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Hyper.Stats.to_dot h);
        close_out oc;
        Printf.printf "wrote graphviz rendering to %s\n" path
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"print degree/size histograms")
  and dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"write a graphviz rendering")
  in
  Cmd.v (Cmd.info "info" ~doc:"Print instance statistics and lower bounds")
    Term.(const run $ verbose $ dot $ file_arg)

(* Shared by solve --faults --repair and simulate --faults --repair: price
   the degraded machine into the repair decisions and report the outcome. *)
let repair_report h d (a : Semimatch.Hyp_assignment.t) =
  let r = Semimatch.Repair.repair ~cost:(Faults.finish_time d) ~dead:d.Faults.dead h a in
  Printf.printf "repair: %d affected, %d moved, %d infeasible%s\n"
    (List.length r.Semimatch.Repair.affected)
    (List.length r.Semimatch.Repair.moved)
    (List.length r.Semimatch.Repair.infeasible)
    (if r.Semimatch.Repair.resolved_from_scratch then " (from-scratch re-solve won)" else "");
  if r.Semimatch.Repair.infeasible <> [] then
    Printf.printf "infeasible tasks: %s\n"
      (String.concat ", " (List.map string_of_int r.Semimatch.Repair.infeasible));
  Printf.printf "repaired makespan: %g  (surviving-machine LB %g, ratio %.3f)\n"
    r.Semimatch.Repair.makespan r.Semimatch.Repair.lower_bound
    (if r.Semimatch.Repair.lower_bound > 0.0 then
       r.Semimatch.Repair.makespan /. r.Semimatch.Repair.lower_bound
     else 1.0);
  r

(* solve --stream: the streaming tier.  The ingest layer decides from the
   sealed header whether the instance fits in core (exact/portfolio
   fallback) or must be solved over the stream in O(n+p) memory; either
   way the CSR-estimate comparison and the recorded guarantee are printed,
   and --mem-cap-mb turns the bounded-memory claim into a hard process
   assertion (GC top-heap check, used by the CI smoke). *)
let solve_stream ~jobs ~stream_solver ~threshold_mb ~mem_cap_mb file =
  let threshold_words =
    match threshold_mb with
    | None -> Stream.Ingest.default_threshold_words
    | Some mb ->
        (* 0 = never materialize: force the streamed tier (tests, quality
           experiments). *)
        if mb < 0 then die "--stream-threshold-mb must be non-negative"
        else mb * 1024 * 1024 / 8
  in
  let t0 = Unix.gettimeofday () in
  let outcome =
    try Stream.Ingest.solve ~jobs ~threshold_words ~stream_solver file with
    | Sys_error msg | Failure msg -> die "%s" msg
    | Invalid_argument msg -> die "invalid stream %s: %s" file msg
  in
  let dt = Unix.gettimeofday () -. t0 in
  let module I = Stream.Ingest in
  let module Sio = Hyper.Stream_io in
  let hdr = outcome.I.header in
  let csr_bytes =
    match Sio.csr_estimate_words hdr with Some w -> w * 8 | None -> 0
  in
  Printf.printf "stream:    %s — %d tasks, %d processors, %d records\n" file hdr.Sio.h_n1
    hdr.Sio.h_n2 hdr.Sio.h_records;
  Printf.printf "tier:      %s (CSR estimate %.1f MB vs threshold %.1f MB)\n"
    (I.tier_name outcome.I.tier)
    (float_of_int csr_bytes /. 1048576.0)
    (float_of_int (threshold_words * 8) /. 1048576.0);
  Printf.printf "makespan:  %g\n" outcome.I.makespan;
  Printf.printf "LB:        %g  (ratio %.3f)\n" outcome.I.lower_bound
    (if outcome.I.lower_bound > 0.0 then outcome.I.makespan /. outcome.I.lower_bound else 1.0);
  Printf.printf "guarantee: %s%s\n" outcome.I.guarantee
    (if Float.is_nan outcome.I.factor then " (no proven factor)"
     else Printf.sprintf " (makespan <= %.1f x opt)" outcome.I.factor);
  Printf.printf "passes:    %d  (%.2fs, %.0f records/s)\n" outcome.I.passes dt
    (if dt > 0.0 then float_of_int (outcome.I.edges * outcome.I.passes) /. dt else 0.0);
  let top_heap_bytes =
    let s = Gc.quick_stat () in
    s.Gc.top_heap_words * (Sys.word_size / 8)
  in
  Printf.printf "memory:    %.1f MB top heap, %d words solver state (peak)\n"
    (float_of_int top_heap_bytes /. 1048576.0)
    (Stream.Kr.peak_state_words ());
  match mem_cap_mb with
  | None -> ()
  | Some cap ->
      let cap_bytes = cap * 1024 * 1024 in
      if top_heap_bytes > cap_bytes then
        die "memory cap exceeded: top heap %d bytes > %d MB cap" top_heap_bytes cap
      else Printf.printf "memory cap ok: %.1f MB <= %d MB\n"
          (float_of_int top_heap_bytes /. 1048576.0) cap

let solve_cmd =
  let run algorithm refine loads portfolio jobs timeout deadline_ms faults repair stream
      stream_solver threshold_mb mem_cap_mb stats trace events file =
    with_telemetry ~trace ~events stats (fun () ->
        if stream then solve_stream ~jobs ~stream_solver ~threshold_mb ~mem_cap_mb file
        else begin
        let h = load_instance file in
        let lb = Semimatch.Lower_bound.multiproc h in
        let lb_refined = Semimatch.Lower_bound.multiproc_refined h in
        let best_lb = Float.max lb lb_refined in
        let report makespan =
          Printf.printf "makespan:  %g\n" makespan;
          Printf.printf "LB (Eq.1): %g  (ratio %.3f)\n" lb (makespan /. lb);
          Printf.printf "refined LB: %g  (ratio %.3f)\n" lb_refined (makespan /. lb_refined);
          Printf.printf "optimality gap: at most %.1f%% above the best lower bound\n"
            (100.0 *. ((makespan /. best_lb) -. 1.0))
        in
        let a =
          match deadline_ms with
          | Some ms ->
              let module D = Semimatch.Deadline in
              let r = D.solve ~jobs ~budget_s:(ms /. 1000.0) h in
              Printf.printf "deadline: %g ms budget, answered by the %s tier in %.1f ms%s\n" ms
                (D.tier_name r.D.tier)
                (1000.0 *. r.D.elapsed_s)
                (if r.D.degraded then " (degraded)" else "");
              report r.D.makespan;
              r.D.assignment
          | None ->
          if portfolio || jobs > 1 then begin
            let module P = Semimatch.Portfolio in
            let r = P.solve ~jobs ?timeout_s:timeout h in
            Printf.printf "portfolio: %d solvers on %d domain%s\n" (List.length r.P.outcomes)
              jobs
              (if jobs = 1 then "" else "s");
            List.iter
              (fun o ->
                match o.P.o_makespan with
                | Some m ->
                    Printf.printf "  %-10s %12g  (%.3f s)\n" (P.solver_name o.P.o_solver) m
                      o.P.o_time_s
                | None -> Printf.printf "  %-10s %12s\n" (P.solver_name o.P.o_solver) "skipped")
              r.P.outcomes;
            Printf.printf "winner: %s\n" (P.solver_name r.P.winner);
            report r.P.best_makespan;
            r.P.assignment
          end
          else begin
            let a = Gh.run algorithm h in
            let a, moves =
              if refine then Semimatch.Local_search.refine h a else (a, 0)
            in
            Printf.printf "algorithm: %s%s\n" (Gh.name algorithm)
              (if refine then Printf.sprintf " + local search (%d moves)" moves else "");
            report (Semimatch.Hyp_assignment.makespan h a);
            a
          end
        in
        if loads then begin
          let l = Semimatch.Hyp_assignment.loads h a in
          Array.iteri (fun u load -> Printf.printf "P%-6d %g\n" u load) l
        end;
        match faults with
        | None ->
            if repair then die "--repair needs --faults SPEC"
        | Some spec ->
            let plan = parse_faults spec in
            let d = degradation_for h plan in
            let killed = Array.fold_left (fun n x -> if x then n + 1 else n) 0 d.Faults.dead in
            Printf.printf "\nfaults: %s (%d dead processor%s)\n" (Faults.to_string plan) killed
              (if killed = 1 then "" else "s");
            if repair then ignore (repair_report h d a)
            else begin
              let affected =
                List.filter
                  (fun v ->
                    let e = a.Semimatch.Hyp_assignment.choice.(v) in
                    let hit = ref false in
                    Hyper.Graph.iter_h_procs h e (fun u -> if d.Faults.dead.(u) then hit := true);
                    !hit)
                  (List.init h.Hyper.Graph.n1 Fun.id)
              in
              Printf.printf "affected tasks: %d (rerun with --repair to re-place them)\n"
                (List.length affected)
            end
        end)
  in
  let algorithm =
    Arg.(value & opt algorithm_conv Gh.Expected_vector_greedy_hyp
         & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc:"sgh, egh, vgh or evg")
  and refine = Arg.(value & flag & info [ "refine" ] ~doc:"apply local-search refinement")
  and loads = Arg.(value & flag & info [ "loads" ] ~doc:"print per-processor loads")
  and portfolio =
    Arg.(value & flag
         & info [ "portfolio" ]
             ~doc:
               "Race the full solver portfolio (greedies, local search, annealing) and keep \
                the best schedule; implied by $(b,--jobs) > 1.  The best makespan is \
                identical for every job count.")
  and timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Portfolio wall-clock budget.")
  and deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"MS"
             ~doc:
               "Solve under a hard wall-clock budget via the graceful-degradation cascade \
                (greedy, then portfolio, then exact on tiny instances); always returns the \
                best feasible schedule found.")
  and faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:
               "Degrade the machine after solving: comma-separated crash:P[@T], slow:PxF, \
                stall:P@T+D.  Reports the tasks hit; add $(b,--repair) to re-place them.")
  and repair =
    Arg.(value & flag
         & info [ "repair" ]
             ~doc:
               "Incrementally repair the schedule on the degraded machine (requires \
                $(b,--faults)): re-places only the affected tasks and reports repaired \
                makespan, repair cost and the surviving-machine lower bound.")
  and stream =
    Arg.(value & flag
         & info [ "stream" ]
             ~doc:
               "FILE is a binary edge stream (see $(b,gen --stream-out)): solve it through \
                the streaming tier — bounded-memory one/few-pass solvers for instances \
                bigger than RAM, automatic exact/portfolio fallback when the header shows \
                the instance fits in core.")
  and stream_solver =
    let solver_conv =
      Arg.enum
        [
          ("auto", Stream.Ingest.Auto);
          ("one-pass", Stream.Ingest.One_pass);
          ("few-pass", Stream.Ingest.Few_pass);
        ]
    in
    Arg.(value & opt solver_conv Stream.Ingest.Auto
         & info [ "stream-solver" ] ~docv:"S"
             ~doc:
               "Streamed-tier solver for singleton unit streams: one-pass (sqrt-factor), \
                few-pass (log-factor) or auto (few-pass).")
  and threshold_mb =
    Arg.(value & opt (some int) None
         & info [ "stream-threshold-mb" ] ~docv:"MB"
             ~doc:
               "In-core fallback threshold: instances whose CSR estimate fits in this many \
                MB are materialized and solved exactly (default 64).")
  and mem_cap_mb =
    Arg.(value & opt (some int) None
         & info [ "mem-cap-mb" ] ~docv:"MB"
             ~doc:
               "Assert (exit 2) that the GC top heap stayed under this many MB — the \
                enforced memory ceiling of the streaming CI smoke.")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Run a greedy heuristic (or the parallel portfolio) on an instance")
    Term.(const run $ algorithm $ refine $ loads $ portfolio $ jobs_arg $ timeout $ deadline
          $ faults $ repair $ stream $ stream_solver $ threshold_mb $ mem_cap_mb $ stats_arg
          $ trace_arg $ events_arg $ file_arg)

let exact_cmd =
  let run strategy engine jobs stats trace events file =
    let h = load_instance file in
    match singleton_unit h with
    | None ->
        prerr_endline
          "exact: instance is not SINGLEPROC-UNIT (needs singleton unit-weight configurations);\n\
           MULTIPROC is NP-complete - use 'solve' instead.";
        exit 1
    | Some g ->
        with_telemetry ~trace ~events stats (fun () ->
            match engine with
            | Some exact ->
                let s = Semimatch.Exact_unit.solve_with ~strategy ~exact g in
                Printf.printf "optimal makespan: %d (%d deadlines tried, %s engine, %s)\n"
                  s.Semimatch.Exact_unit.makespan s.Semimatch.Exact_unit.deadlines_tried
                  (Semimatch.Exact_unit.exact_engine_name exact)
                  (Semimatch.Exact_unit.guarantee_name s.Semimatch.Exact_unit.guarantee)
            | None when jobs > 1 ->
                (* Race every exact engine; all compute the same optimum, so
                   only the winner (and its bookkeeping) depends on timing. *)
                let s, exact = Semimatch.Portfolio.solve_exact_unit ~jobs g in
                Printf.printf
                  "optimal makespan: %d (%d deadlines tried, %s engine won the race, %s)\n"
                  s.Semimatch.Exact_unit.makespan s.Semimatch.Exact_unit.deadlines_tried
                  (Semimatch.Exact_unit.exact_engine_name exact)
                  (Semimatch.Exact_unit.guarantee_name s.Semimatch.Exact_unit.guarantee)
            | None ->
                let s = Semimatch.Exact_unit.solve ~strategy g in
                Printf.printf "optimal makespan: %d (%d deadlines tried, %s search)\n"
                  s.Semimatch.Exact_unit.makespan s.Semimatch.Exact_unit.deadlines_tried
                  (Semimatch.Exact_unit.strategy_name strategy))
  in
  let strategy_conv =
    Arg.enum
      [ ("incremental", Semimatch.Exact_unit.Incremental); ("bisection", Semimatch.Exact_unit.Bisection) ]
  in
  let strategy =
    Arg.(value & opt strategy_conv Semimatch.Exact_unit.Incremental
         & info [ "strategy" ] ~docv:"S" ~doc:"incremental or bisection (binary search only)")
  in
  let engine_conv =
    Arg.enum
      (List.map
         (fun e -> (Semimatch.Exact_unit.exact_engine_name e, e))
         Semimatch.Exact_unit.all_exact_engines)
  in
  let engine =
    Arg.(value & opt (some engine_conv) None
         & info [ "engine" ]
             ~docv:"E"
             ~doc:
               "exact engine: bs-dfs, bs-hk or bs-pr (deadline binary search over a matching \
                engine; makespan-optimal), harvey, gen-hk or dnc (direct cost-reducing-path \
                solvers; load-vector-optimal).  Default: binary search, or a race of all six \
                with --jobs > 1.")
  in
  Cmd.v
    (Cmd.info "exact" ~doc:"Exact optimum for SINGLEPROC-UNIT instances")
    Term.(const run $ strategy $ engine $ jobs_arg $ stats_arg $ trace_arg $ events_arg $ file_arg)

let compare_cmd =
  let run refine stats file =
    with_stats stats (fun () ->
        let h = load_instance file in
        let lb = Semimatch.Lower_bound.multiproc h in
        Printf.printf "lower bound (Eq. 1): %g\n\n%-30s %12s %8s\n" lb "algorithm" "makespan" "vs LB";
        List.iter
          (fun algo ->
            let a = Gh.run algo h in
            let a, suffix =
              if refine then begin
                let refined, moves = Semimatch.Local_search.refine h a in
                (refined, Printf.sprintf " (+LS, %d moves)" moves)
              end
              else (a, "")
            in
            let m = Semimatch.Hyp_assignment.makespan h a in
            Printf.printf "%-30s %12g %8.3f%s\n" (Gh.name algo) m (m /. lb) suffix)
          Gh.all)
  in
  let refine = Arg.(value & flag & info [ "refine" ] ~doc:"also apply local search") in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run all four MULTIPROC heuristics on an instance")
    Term.(const run $ refine $ stats_arg $ file_arg)

(* profile: run every algorithm on the instance with telemetry on and print
   a comparative metrics table — one column per algorithm, one row per
   counter / histogram that fired.  On SINGLEPROC-UNIT instances the three
   exact matching engines are profiled too (phases, pushes, relabels...).
   --stats=json / --stats=csv additionally emit the full labelled telemetry
   snapshots in machine-readable form. *)
let profile_cmd =
  let run stats trace seed jobs file =
    let h = load_instance file in
    let lb = Semimatch.Lower_bound.multiproc h in
    Obs.set_enabled true;
    let machine = Buffer.create 1024 in
    let machine_sections = ref 0 in
    let capture label =
      (match stats with
      | Some (Obs.Sink.Json as fmt) -> Buffer.add_string machine (Obs.Sink.render ~label fmt)
      | Some (Obs.Sink.Csv as fmt) ->
          let rendered = Obs.Sink.render ~label fmt in
          (* One header for the whole report: drop it on later sections. *)
          let rendered =
            if !machine_sections = 0 then rendered
            else
              match String.index_opt rendered '\n' with
              | Some i -> String.sub rendered (i + 1) (String.length rendered - i - 1)
              | None -> rendered
          in
          Buffer.add_string machine rendered
      | Some Obs.Sink.Table | None -> ());
      incr machine_sections
    in
    (* Sequentially, each algorithm runs against a clean slate, under a span
       on the monotonic clock; its counters and histograms are snapshotted
       before the next reset.  With [jobs > 1] the algorithms share one
       telemetry state and run concurrently, so each task instead diffs its
       own domain's shard ([Metrics.local_snapshot] / [diff_since]) — exact
       per-algorithm attribution without any reset, whatever its siblings
       do in the meantime. *)
    let run_one label f =
      Obs.reset ();
      let makespan, seconds = Experiments.Runner.time_it ~span:label f in
      let counters =
        List.rev
          (Obs.Metrics.fold_counters (fun n v acc -> if v <> 0 then (n, v) :: acc else acc) [])
      in
      let histos =
        List.rev
          (Obs.Metrics.fold_histograms
             (fun n s acc -> if s.Obs.Metrics.s_count > 0 then (n, s) :: acc else acc)
             [])
      in
      capture label;
      (label, makespan, seconds, counters, histos)
    in
    let run_one_shard label f =
      let snap = Obs.Metrics.local_snapshot () in
      let makespan, seconds = Experiments.Runner.time_it ~span:label f in
      let counters, histos = Obs.Metrics.diff_since snap in
      (label, makespan, seconds, counters, histos)
    in
    let greedy_tasks =
      List.map
        (fun algo ->
          ( Gh.short_name algo,
            fun () -> Semimatch.Hyp_assignment.makespan h (Gh.run algo h) ))
        Gh.all
    in
    let ls_task =
      ( "EVG+ls",
        fun () ->
          let a = Gh.run Gh.Expected_vector_greedy_hyp h in
          let refined, _moves = Semimatch.Local_search.refine h a in
          Semimatch.Hyp_assignment.makespan h refined )
    in
    let sa_task =
      ( "SGH+sa",
        fun () ->
          let rng = Randkit.Prng.create ~seed in
          snd (Semimatch.Annealing.solve rng h) )
    in
    let engine_tasks =
      match singleton_unit h with
      | None -> []
      | Some g ->
          List.map
            (fun exact ->
              ( "exact-" ^ Semimatch.Exact_unit.exact_engine_name exact,
                fun () ->
                  float_of_int
                    (Semimatch.Exact_unit.solve_with ~exact g).Semimatch.Exact_unit.makespan ))
            Semimatch.Exact_unit.all_exact_engines
    in
    let tasks = greedy_tasks @ [ ls_task; sa_task ] @ engine_tasks in
    let rows =
      (* --trace forces the shard-diff path even sequentially: the per-label
         [Obs.reset] of the clean-slate path would wipe the span ring the
         trace is built from. *)
      if jobs = 1 && trace = None then List.map (fun (label, f) -> run_one label f) tasks
      else begin
        Obs.reset ();
        let rows =
          if jobs = 1 then List.map (fun (label, f) -> run_one_shard label f) tasks
          else Parpool.Pool.map_list ~jobs ~f:(fun (label, f) -> run_one_shard label f) tasks
        in
        (* One combined machine-readable section: per-label resets are
           impossible while algorithms share the telemetry state. *)
        capture "all";
        rows
      end
    in
    Printf.printf "%s: %d tasks, %d processors, %d hyperedges; LB (Eq. 1) %g\n\n" file
      h.Hyper.Graph.n1 h.Hyper.Graph.n2 (Hyper.Graph.num_hyperedges h) lb;
    let module T = Experiments.Tables in
    let algo_table =
      T.render
        ~header:[ "Algorithm"; "makespan"; "vs LB"; "time (s)" ]
        ~rows:
          (List.map
             (fun (label, makespan, seconds, _, _) ->
               [ label; Printf.sprintf "%g" makespan; T.fmt_ratio (makespan /. lb);
                 T.fmt_time seconds ])
             rows)
        ()
    in
    print_string algo_table;
    print_newline ();
    (* Metric matrix: union of metric names that fired, one column per
       algorithm.  Histogram cells summarize count / median / max. *)
    let labels = List.map (fun (l, _, _, _, _) -> l) rows in
    let metric_names =
      let names = Hashtbl.create 64 in
      List.iter
        (fun (_, _, _, counters, histos) ->
          List.iter (fun (n, _) -> Hashtbl.replace names n `Counter) counters;
          List.iter (fun (n, _) -> Hashtbl.replace names n `Histogram) histos)
        rows;
      List.sort compare (Hashtbl.fold (fun n kind acc -> (n, kind) :: acc) names [])
    in
    if metric_names <> [] then begin
      let cell (_, _, _, counters, histos) (name, kind) =
        match kind with
        | `Counter -> (
            match List.assoc_opt name counters with
            | Some v -> string_of_int v
            | None -> "-")
        | `Histogram -> (
            match List.assoc_opt name histos with
            | Some s ->
                Printf.sprintf "n=%d p50=%g max=%g" s.Obs.Metrics.s_count s.Obs.Metrics.s_p50
                  s.Obs.Metrics.s_max
            | None -> "-")
      in
      let body = List.map (fun nk -> fst nk :: List.map (fun r -> cell r nk) rows) metric_names in
      print_string (T.render ~header:("metric" :: labels) ~rows:body ());
      print_newline ()
    end;
    Printf.printf "span timings use the monotonic clock (Obs.Span); %d algorithms profiled\n"
      (List.length labels);
    (match trace with
    | None -> ()
    | Some path ->
        write_trace path);
    match stats with
    | Some (Obs.Sink.Json | Obs.Sink.Csv) ->
        print_newline ();
        print_string (Buffer.contents machine)
    | Some Obs.Sink.Table | None -> ()
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"annealing random seed") in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run every algorithm on an instance with telemetry enabled and print a comparative \
          counters/timings table")
    Term.(const run $ stats_arg $ trace_arg $ seed $ jobs_arg $ file_arg)

let simulate_cmd =
  let run algorithm policy width faults repair file =
    let h = load_instance file in
    let a = Gh.run algorithm h in
    let policy =
      match policy with
      | "fifo" -> Simulator.Fifo
      | "spt" -> Simulator.Spt
      | "lpt" -> Simulator.Lpt
      | other -> (
          match int_of_string_opt other with
          | Some seed -> Simulator.Random_order seed
          | None -> die "policy must be fifo, spt, lpt or a seed (got %S)" other)
    in
    Printf.printf "algorithm %s, policy %s\n" (Gh.name algorithm) (Simulator.policy_name policy);
    match faults with
    | None ->
        if repair then die "--repair needs --faults SPEC";
        let t = Simulator.run ~policy h a in
        Printf.printf "makespan %g, average task completion %.3f\n\n" t.Simulator.makespan
          (Simulator.average_completion t);
        print_string (Simulator.gantt ~width ~proc_names:(Printf.sprintf "P%d") t)
    | Some spec ->
        let plan = parse_faults spec in
        let d = degradation_for h plan in
        Printf.printf "faults: %s\n" (Faults.to_string plan);
        let choice =
          if repair then (repair_report h d a).Semimatch.Repair.choice
          else a.Semimatch.Hyp_assignment.choice
        in
        let t = Simulator.run_degraded ~policy d h choice in
        if t.Simulator.lost <> [] then
          Printf.printf "lost tasks (%d): %s\n"
            (List.length t.Simulator.lost)
            (String.concat ", " (List.map string_of_int t.Simulator.lost))
        else if not repair then print_string "no tasks lost\n";
        if t.Simulator.unscheduled <> [] then
          Printf.printf "unscheduled tasks (%d): %s\n"
            (List.length t.Simulator.unscheduled)
            (String.concat ", " (List.map string_of_int t.Simulator.unscheduled));
        Printf.printf "degraded makespan %g\n\n" t.Simulator.d_trace.Simulator.makespan;
        print_string (Simulator.gantt ~width ~proc_names:(Printf.sprintf "P%d") t.Simulator.d_trace)
  in
  let algorithm =
    Arg.(value & opt algorithm_conv Gh.Expected_vector_greedy_hyp
         & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc:"sgh, egh, vgh or evg")
  and policy =
    Arg.(value & opt string "fifo" & info [ "policy" ] ~docv:"P" ~doc:"fifo, spt, lpt or a seed")
  and width = Arg.(value & opt int 72 & info [ "width" ] ~docv:"W" ~doc:"gantt width")
  and faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:
               "Inject machine faults into the run: comma-separated crash:P[@T], slow:PxF, \
                stall:P@T+D.  Parts on a crashed processor are lost with their tasks.")
  and repair =
    Arg.(value & flag
         & info [ "repair" ]
             ~doc:
               "Repair the schedule before executing it (requires $(b,--faults)): affected \
                tasks are re-placed on the surviving machine, so nothing is lost.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Execute a schedule event-by-event and draw a Gantt chart")
    Term.(const run $ algorithm $ policy $ width $ faults $ repair $ file_arg)

(* serve: the long-running scheduler daemon.  All protocol errors are the
   server's business (it replies, it never dies); only operator mistakes
   (no listener, unbindable socket) exit 2 here. *)
let parse_triggers spec =
  try Obs.Anomaly.rules_of_string spec with Failure msg -> die "%s" msg

let serve_cmd =
  let run socket tcp jobs max_pending max_frame events_log trace slow_ms bundle_dir record_secs
      triggers persist_dir fsync checkpoint_secs =
    let triggers = match triggers with None -> [] | Some spec -> parse_triggers spec in
    let fsync =
      try Server.Journal.policy_of_string fsync with Failure msg -> die "bad --fsync: %s" msg
    in
    (* A bundle dir implies flight recording: default the window on unless
       the operator explicitly disabled it with --record-secs 0. *)
    let record_secs =
      match (record_secs, bundle_dir) with
      | Some s, _ -> s
      | None, Some _ -> 30.0
      | None, None -> 0.0
    in
    let opts =
      {
        Server.Daemon.socket_path = socket;
        tcp_port = tcp;
        jobs;
        max_pending;
        max_frame;
        events_log;
        trace_out = trace;
        version = Cli_version.version;
        slow_ms;
        runtime_events = true;
        bundle_dir;
        record_secs;
        triggers;
        persist_dir;
        fsync;
        checkpoint_secs;
      }
    in
    (match socket with
    | Some path -> Printf.eprintf "semimatch_cli: serving on unix socket %s\n%!" path
    | None -> ());
    (match tcp with
    | Some port -> Printf.eprintf "semimatch_cli: serving on 127.0.0.1:%d\n%!" port
    | None -> ());
    try Server.Daemon.run opts with
    | Invalid_argument msg -> die "%s" msg
    | Unix.Unix_error (err, fn, arg) ->
        die "%s: %s%s" fn (Unix.error_message err) (if arg = "" then "" else " (" ^ arg ^ ")")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")
  and tcp =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT" ~doc:"Also listen on 127.0.0.1:$(docv).")
  and max_pending =
    Arg.(value & opt int 64
         & info [ "max-pending" ] ~docv:"N"
             ~doc:"Admission control: queue bound before requests get a busy reply.")
  and max_frame =
    Arg.(value & opt int Server.Protocol.default_max_frame
         & info [ "max-frame" ] ~docv:"BYTES" ~doc:"Request frame size cap.")
  and events_log =
    Arg.(value & opt (some string) None
         & info [ "events-log" ] ~docv:"FILE"
             ~doc:"Write the structured event log as JSON lines on shutdown.")
  and trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:
               "Write a Chrome/Perfetto trace on shutdown: request spans interleaved with \
                GC tracks from the OCaml runtime.")
  and slow_ms =
    Arg.(value & opt float 100.0
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:
               "Slow-request log threshold in milliseconds (sampled into the event log); \
                0 disables.")
  and bundle_dir =
    Arg.(value & opt (some string) None
         & info [ "bundle-dir" ] ~docv:"DIR"
             ~doc:
               "Write anomaly-triggered (and $(b,dump)-forced) diagnostic bundles under \
                $(docv); enables the default trigger rules unless $(b,--triggers) is given, \
                and a 30s flight-recorder window unless $(b,--record-secs) overrides it.")
  and record_secs =
    Arg.(value & opt (some float) None
         & info [ "record-secs" ] ~docv:"SECS"
             ~doc:
               "Flight-recorder window: keep the last $(docv) seconds of spans, events and \
                periodic metrics snapshots for bundles; 0 disables.")
  and triggers =
    Arg.(value & opt (some string) None
         & info [ "triggers" ] ~docv:"SPEC"
             ~doc:
               "Comma-separated anomaly trigger rules: latency[:OP]:MS, overbudget:F, \
                queue:N, busy:N@S, heap:MB@S, stall:MS.")
  and persist_dir =
    Arg.(value & opt (some string) None
         & info [ "persist-dir" ] ~docv:"DIR"
             ~doc:
               "Durability root: mutations are write-ahead journaled under $(docv) and \
                checkpointed atomically; a restart with the same $(docv) recovers every \
                session (a torn journal tail from a crash is truncated, never fatal).")
  and fsync =
    Arg.(value & opt string "interval:100"
         & info [ "fsync" ] ~docv:"POLICY"
             ~doc:
               "Journal fsync policy: $(b,always) (fsync every record), $(b,interval:MS) \
                (batch fsyncs, at most one per $(i,MS) milliseconds), or $(b,never) (leave \
                flushing to the OS).  All policies survive a process kill; they differ only \
                in the window a $(i,power) loss can lose.")
  and checkpoint_secs =
    Arg.(value & opt float 60.0
         & info [ "checkpoint-secs" ] ~docv:"SECS"
             ~doc:
               "Checkpoint cadence: write an atomic checkpoint (and rotate the journal) \
                every $(docv) seconds; 0 checkpoints only on graceful shutdown.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduler service: a daemon holding live instances and updating their \
          semi-matchings incrementally over a newline-delimited JSON socket protocol")
    Term.(const run $ socket $ tcp $ jobs_arg $ max_pending $ max_frame $ events_log $ trace
          $ slow_ms $ bundle_dir $ record_secs $ triggers $ persist_dir $ fsync
          $ checkpoint_secs)

let parse_hostport hostport =
  match String.rindex_opt hostport ':' with
  | Some i -> (
      let host = String.sub hostport 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      match int_of_string_opt (String.sub hostport (i + 1) (String.length hostport - i - 1)) with
      | Some port -> (host, port)
      | None -> die "bad --tcp %S (expected HOST:PORT)" hostport)
  | None -> (
      match int_of_string_opt hostport with
      | Some port -> ("127.0.0.1", port)
      | None -> die "bad --tcp %S (expected HOST:PORT or PORT)" hostport)

(* One-shot client connections retry once with a short backoff before the
   exit-2 diagnostic, so a script racing a daemon restart (crash recovery,
   a rolling upgrade) does not fail on the connect it could have won 200ms
   later.  [Client.retrying] only retries transient connection errors. *)
let connect_client socket tcp =
  match (socket, tcp) with
  | Some path, None -> (
      try Server.Client.retrying ~attempts:2 ~delay_s:0.2 (fun () -> Server.Client.connect_unix path)
      with Unix.Unix_error (err, _, _) -> die "cannot connect to %s: %s" path (Unix.error_message err))
  | None, Some hostport -> (
      let host, port = parse_hostport hostport in
      try Server.Client.retrying ~attempts:2 ~delay_s:0.2 (fun () -> Server.Client.connect_tcp ~host ~port)
      with
      | Unix.Unix_error (err, _, _) -> die "cannot connect to %s: %s" hostport (Unix.error_message err)
      | Not_found -> die "cannot resolve host %S" host)
  | Some _, Some _ -> die "--socket and --tcp are mutually exclusive"
  | None, None -> die "needs --socket PATH or --tcp HOST:PORT"

(* client: one-shot or scripted requests against a running daemon.  Exit 2
   on connection failures, timeouts and any error reply (the protocol-error
   contract scripts rely on). *)
let client_cmd =
  let run socket tcp request script metrics stream session chunk threshold_mb solver timeout =
    let conn = connect_client socket tcp in
    let timeout_s = if timeout <= 0.0 then None else Some timeout in
    let send line =
      try Server.Client.request ?timeout_s conn line with
      | End_of_file -> die "server closed the connection"
      | Server.Client.Timeout -> die "no reply within %gs" timeout
    in
    match stream with
    | Some path ->
        (* Chunked edge-stream upload: spool a local stream file into the
           daemon through stream_begin / stream_chunk / stream_end.  A
           [busy] reply is the daemon's backpressure (admission queue
           full): the rejected chunk was not spooled, so resending it
           verbatim after a short sleep is always safe. *)
        if request <> None || script <> None || metrics then
          die "--stream is exclusive with --request/--script/--metrics";
        if chunk < 1 then die "--chunk must be positive";
        let module J = Obs.Json in
        let r = try Hyper.Stream_io.open_reader path with Failure msg -> die "%s" msg in
        let h = Hyper.Stream_io.header r in
        if not (Hyper.Stream_io.sealed h) then
          die "%s: unsealed stream (writer never closed) — run doctor" path;
        let send_ok line =
          let rec go attempt =
            let reply = send line in
            match J.of_string reply with
            | exception Failure _ -> die "unparseable reply: %s" reply
            | j -> (
                match (J.member "ok" j, J.member "error" j) with
                | Some (J.Bool true), _ -> j
                | _, Some (J.Str "busy") when attempt < 200 ->
                    Unix.sleepf 0.05;
                    go (attempt + 1)
                | _ -> (
                    match Option.bind (J.member "message" j) J.to_str with
                    | Some m -> die "server replied with an error: %s" m
                    | None -> die "server replied with an error: %s" reply))
          in
          go 0
        in
        let int_j n = J.Num (float_of_int n) in
        ignore
          (send_ok
             (J.to_string
                (J.Obj
                   [
                     ("op", J.Str "stream_begin");
                     ("session", J.Str session);
                     ("n1", int_j h.Hyper.Stream_io.h_n1);
                     ("n2", int_j h.Hyper.Stream_io.h_n2);
                   ])));
        let buf = ref [] and nbuf = ref 0 and sent = ref 0 in
        let flush_chunk () =
          if !nbuf > 0 then begin
            ignore
              (send_ok
                 (J.to_string
                    (J.Obj
                       [
                         ("op", J.Str "stream_chunk");
                         ("session", J.Str session);
                         ("edges", J.List (List.rev !buf));
                       ])));
            sent := !sent + !nbuf;
            buf := [];
            nbuf := 0
          end
        in
        Hyper.Stream_io.iter r (fun ~task ~procs ~weight ->
            let edge =
              J.Obj
                [
                  ("task", int_j task);
                  ("weight", J.Num weight);
                  ("procs", J.List (Array.to_list (Array.map int_j procs)));
                ]
            in
            buf := edge :: !buf;
            incr nbuf;
            if !nbuf >= chunk then flush_chunk ());
        flush_chunk ();
        Hyper.Stream_io.close_reader r;
        Printf.eprintf "uploaded %d records from %s\n%!" !sent path;
        let reply =
          send
            (J.to_string
               (J.Obj
                  ([ ("op", J.Str "stream_end"); ("session", J.Str session) ]
                  @ (match threshold_mb with None -> [] | Some mb -> [ ("threshold_mb", int_j mb) ])
                  @ match solver with None -> [] | Some s -> [ ("solver", J.Str s) ])))
        in
        print_endline reply;
        Server.Client.close conn;
        (match J.of_string reply with
        | j when J.member "ok" j = Some (J.Bool true) -> ()
        | _ | (exception Failure _) -> die "stream_end failed: %s" reply)
    | None ->
    if metrics then begin
      if request <> None || script <> None then
        die "--metrics is exclusive with --request/--script";
      let reply = send {|{"op":"metrics"}|} in
      Server.Client.close conn;
      match Obs.Json.of_string reply with
      | exception Failure _ -> die "unparseable reply: %s" reply
      | j -> (
          match
            ( Obs.Json.member "ok" j,
              Option.bind (Obs.Json.member "exposition" j) Obs.Json.to_str )
          with
          | Some (Obs.Json.Bool true), Some text -> (
              match Obs.Prom.lint text with
              | Ok () -> print_string text
              | Error msg -> die "metrics exposition failed the format lint: %s" msg)
          | _ ->
              let msg =
                match Option.bind (Obs.Json.member "message" j) Obs.Json.to_str with
                | Some m -> m
                | None -> reply
              in
              die "server replied with an error: %s" msg)
    end
    else begin
      let requests =
        match (request, script) with
        | Some line, None -> [ line ]
        | None, Some path -> (
            match In_channel.with_open_text path In_channel.input_all with
            | text ->
                List.filter
                  (fun l -> String.trim l <> "" && (String.trim l).[0] <> '#')
                  (String.split_on_char '\n' text)
            | exception Sys_error msg -> die "%s" msg)
        | Some _, Some _ -> die "--request and --script are mutually exclusive"
        | None, None -> die "client needs --request JSON, --script FILE or --metrics"
      in
      let failed = ref None in
      List.iter
        (fun line ->
          let reply = send line in
          print_endline reply;
          if !failed = None then
            match Obs.Json.of_string reply with
            | exception Failure _ -> failed := Some ("unparseable reply: " ^ reply)
            | j -> (
                match Obs.Json.member "ok" j with
                | Some (Obs.Json.Bool true) -> ()
                | _ ->
                    let msg =
                      match Option.bind (Obs.Json.member "message" j) Obs.Json.to_str with
                      | Some m -> m
                      | None -> reply
                    in
                    failed := Some msg))
        requests;
      Server.Client.close conn;
      match !failed with None -> () | Some msg -> die "server replied with an error: %s" msg
    end
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"Connect to this Unix-domain socket.")
  and tcp =
    Arg.(value & opt (some string) None
         & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Connect over TCP instead.")
  and request =
    Arg.(value & opt (some string) None
         & info [ "request" ] ~docv:"JSON" ~doc:"Send one request line and print the reply.")
  and script =
    Arg.(value & opt (some string) None
         & info [ "script" ] ~docv:"FILE"
             ~doc:"Send each non-comment line of $(docv) in order, printing every reply.")
  and metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:
               "Scrape the daemon's Prometheus exposition (the $(b,metrics) op), lint its \
                format and print it — exits 2 when the lint fails.")
  and stream =
    Arg.(value & opt (some string) None
         & info [ "stream" ] ~docv:"FILE"
             ~doc:
               "Upload the binary edge-stream $(docv) through the chunked \
                $(b,stream_begin)/$(b,stream_chunk)/$(b,stream_end) ops and print the solve \
                reply; $(b,busy) backpressure replies are retried.")
  and session =
    Arg.(value & opt string "stream"
         & info [ "session" ] ~docv:"NAME" ~doc:"Session name for $(b,--stream) uploads.")
  and chunk =
    Arg.(value & opt int 256
         & info [ "chunk" ] ~docv:"EDGES" ~doc:"Records per $(b,stream_chunk) frame.")
  and threshold_mb =
    Arg.(value & opt (some int) None
         & info [ "stream-threshold-mb" ] ~docv:"MB"
             ~doc:"In-core fallback threshold forwarded with $(b,stream_end).")
  and solver =
    Arg.(value & opt (some string) None
         & info [ "stream-solver" ] ~docv:"NAME"
             ~doc:"Streaming solver forwarded with $(b,stream_end) (auto | one-pass | few-pass).")
  and timeout =
    Arg.(value & opt float 5.0
         & info [ "timeout" ] ~docv:"SECS"
             ~doc:"Give up on a reply after $(docv) seconds (exit 2); 0 waits forever.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send scripted or one-shot requests to a running scheduler daemon; exits 2 on \
          connection failures, timeouts and error replies")
    Term.(const run $ socket $ tcp $ request $ script $ metrics $ stream $ session $ chunk
          $ threshold_mb $ solver $ timeout)

(* loadgen: drive a running daemon with the open-loop arrival process and
   report per-op latency quantiles; optionally write BENCH_server.json and
   gate the medians against a committed baseline. *)
let loadgen_cmd =
  let run socket tcp duration rate seed tasks procs budget_ms reconnect out baseline check
      write_baseline =
    (* The dial is a closure so Loadgen can redial the same endpoint after
       a dropped connection (--reconnect). *)
    let connect () =
      match (socket, tcp) with
      | Some path, None ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try Unix.connect fd (Unix.ADDR_UNIX path)
           with e ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             raise e);
          fd
      | None, Some hostport ->
          let host, port = parse_hostport hostport in
          let addr =
            try Unix.inet_addr_of_string host
            with Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } -> die "cannot resolve host %S" host
              | { Unix.h_addr_list; _ } -> h_addr_list.(0)
              | exception Not_found -> die "cannot resolve host %S" host)
          in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try Unix.connect fd (Unix.ADDR_INET (addr, port))
           with e ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             raise e);
          fd
      | Some _, Some _ -> die "--socket and --tcp are mutually exclusive"
      | None, None -> die "loadgen needs --socket PATH or --tcp HOST:PORT"
    in
    let fd =
      try connect ()
      with Unix.Unix_error (err, _, _) ->
        die "cannot connect to %s: %s"
          (match (socket, tcp) with Some p, _ -> p | _, Some hp -> hp | _ -> "?")
          (Unix.error_message err)
    in
    let opts =
      {
        Server.Loadgen.duration_s = duration;
        rate;
        seed;
        tasks;
        procs;
        budget_ms;
        stall_timeout_s = Server.Loadgen.default_opts.Server.Loadgen.stall_timeout_s;
        reconnect_attempts = reconnect;
      }
    in
    let report =
      match Server.Loadgen.run ~connect fd opts with
      | Ok r -> r
      | Error msg -> die "loadgen failed: %s" msg
      | exception Invalid_argument msg -> die "%s" msg
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    print_string (Server.Loadgen.render report);
    (match out with
    | None -> ()
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Server.Loadgen.report_json opts report));
        Printf.printf "wrote %s\n" path);
    let module Gate = Experiments.Bench_gate in
    let op_medians () =
      List.map
        (fun (o : Server.Loadgen.op_stats) ->
          let med, mad =
            Gate.median_mad (Array.map (fun ms -> ms /. 1000.0) o.Server.Loadgen.o_samples_ms)
          in
          (o.Server.Loadgen.o_op, med, mad, Array.length o.Server.Loadgen.o_samples_ms))
        report.Server.Loadgen.r_ops
    in
    (match write_baseline with
    | None -> ()
    | Some path ->
        let groups =
          List.map
            (fun (op, med, mad, n) ->
              {
                Gate.g_name = "serve/" ^ op;
                g_reps = 1;
                g_median_s = med;
                g_mad_s = mad;
                g_samples = n;
              })
            (op_medians ())
        in
        Gate.write_baseline path { Gate.b_calib_s = Gate.calibrate (); b_groups = groups };
        Printf.printf "wrote baseline %s (%d groups)\n" path (List.length groups));
    if check then begin
      let path = match baseline with Some p -> p | None -> die "--check needs --baseline FILE" in
      let b = try Gate.load_baseline path with Failure msg -> die "%s" msg in
      let measurements = List.map (fun (op, med, _, _) -> ("serve/" ^ op, med)) (op_medians ()) in
      let verdicts = Gate.check_medians b ~calib_now:(Gate.calibrate ()) measurements in
      print_string (Gate.render verdicts);
      if not (Gate.all_pass verdicts) then begin
        prerr_endline "loadgen: latency regression against baseline";
        exit 1
      end
    end
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"Connect to this Unix-domain socket.")
  and tcp =
    Arg.(value & opt (some string) None
         & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Connect over TCP instead.")
  and duration =
    Arg.(value & opt float Server.Loadgen.default_opts.Server.Loadgen.duration_s
         & info [ "duration" ] ~docv:"SECS" ~doc:"Measured window length.")
  and rate =
    Arg.(value & opt float Server.Loadgen.default_opts.Server.Loadgen.rate
         & info [ "rate" ] ~docv:"RPS" ~doc:"Open-loop arrival rate, requests per second.")
  and seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"arrival-process and request-mix seed")
  and tasks =
    Arg.(value & opt int Server.Loadgen.default_opts.Server.Loadgen.tasks
         & info [ "tasks" ] ~docv:"N" ~doc:"Preloaded instance size (tasks).")
  and procs =
    Arg.(value & opt int Server.Loadgen.default_opts.Server.Loadgen.procs
         & info [ "procs" ] ~docv:"P" ~doc:"Preloaded instance size (processors).")
  and budget_ms =
    Arg.(value & opt float Server.Loadgen.default_opts.Server.Loadgen.budget_ms
         & info [ "budget-ms" ] ~docv:"MS" ~doc:"Budget passed to resolve requests.")
  and reconnect =
    Arg.(value & opt int 0
         & info [ "reconnect" ] ~docv:"N"
             ~doc:
               "Survive a dropped connection (daemon crash/restart): redial up to $(docv) \
                times with exponential backoff and resend outstanding requests, tagging \
                mutations with idempotency ids so resends are never double-applied.  0 \
                keeps a drop fatal.")
  and out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the per-op report as JSON lines (BENCH_server.json).")
  and baseline =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"FILE" ~doc:"Baseline for $(b,--check).")
  and check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:
               "Gate per-op median latencies against $(b,--baseline) with the bench-gate \
                tolerance bands; exit 1 on regression.")
  and write_baseline =
    Arg.(value & opt (some string) None
         & info [ "write-baseline" ] ~docv:"FILE"
             ~doc:"Record this run's per-op medians as the new baseline.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running scheduler daemon with a seeded open-loop request mix and report \
          throughput and per-op p50/p95/p99 latency; optionally bench-gate the medians")
    Term.(const run $ socket $ tcp $ duration $ rate $ seed $ tasks $ procs $ budget_ms
          $ reconnect $ out $ baseline $ check $ write_baseline)

(* doctor over a --persist-dir: read-only validation (Persist.load never
   writes, so this is safe against a live daemon's directory) plus a full
   dry-run recovery into a scratch engine.  Invalid checkpoints and
   sessions that fail restore or the feasibility recompute exit 2; a torn
   journal tail is reported but is not a defect — it is exactly what a
   crash mid-append leaves and what recovery truncates. *)
let doctor_persist dir =
  let r = Server.Persist.load dir in
  Printf.printf "persist dir %s\n" dir;
  Printf.printf "  epoch      %d\n" r.Server.Persist.r_epoch;
  (match r.Server.Persist.r_checkpoint with
  | Some name ->
      Printf.printf "  checkpoint %s (%d sessions)\n" name
        (List.length r.Server.Persist.r_sessions)
  | None -> Printf.printf "  checkpoint (none)\n");
  Printf.printf "  journal    %d records in %d groups, %d valid bytes, %d torn\n"
    r.Server.Persist.r_records
    (List.length r.Server.Persist.r_groups)
    r.Server.Persist.r_valid_bytes r.Server.Persist.r_torn_bytes;
  if r.Server.Persist.r_torn_bytes > 0 then
    Printf.printf "  note: torn journal tail (crash mid-append); recovery will truncate it\n";
  List.iter
    (fun (name, why) -> Printf.printf "  skipped    %s: %s\n" name why)
    r.Server.Persist.r_skipped;
  (* Newer checkpoints than the one selected are damaged goods; the
     recovery would silently fall back, so surface it as a defect. *)
  if r.Server.Persist.r_skipped <> [] then
    die "%d invalid checkpoint(s) in %s" (List.length r.Server.Persist.r_skipped) dir;
  let engine = Server.Engine.create () in
  let info = Server.Engine.recover engine r in
  Printf.printf "\ndry-run recovery: %d records replayed in %.1f ms\n"
    info.Server.Engine.rec_records
    (info.Server.Engine.rec_replay_us /. 1000.0);
  List.iter
    (fun (sid, s) ->
      Printf.printf "  session %-16s %d tasks, %d procs (%d dead), makespan %g\n" sid
        (Server.Session.n_tasks s) (Server.Session.n_procs s) (Server.Session.dead_procs s)
        (Server.Session.makespan s))
    (Server.Engine.resident engine);
  if info.Server.Engine.rec_failures > 0 then
    die "recovery reported %d failed session(s)" info.Server.Engine.rec_failures;
  Printf.printf "\npersist dir OK\n"

(* doctor on a regular file: validate it as a binary edge stream — header,
   chunk framing, record ranges — reporting the valid prefix when the tail
   is torn, exactly like the persist-dir journal scan. *)
let doctor_stream file =
  let module Sio = Hyper.Stream_io in
  let r = Sio.validate file in
  (match r.Sio.r_header with
  | None ->
      die "%s: %s" file (match r.Sio.r_error with Some e -> e | None -> "invalid stream header")
  | Some hdr ->
      Printf.printf "stream file %s\n" file;
      Printf.printf "  version    %d\n" hdr.Sio.h_version;
      let flags =
        List.filter_map
          (fun (set, name) -> if set then Some name else None)
          [
            (Sio.singleton hdr, "singleton");
            (Sio.unit_weight hdr, "unit-weight");
            (Sio.task_grouped hdr, "task-grouped");
          ]
      in
      Printf.printf "  flags      %s\n" (if flags = [] then "(none)" else String.concat "," flags);
      Printf.printf "  instance   %d tasks, %d processors\n" hdr.Sio.h_n1 hdr.Sio.h_n2;
      if r.Sio.r_sealed then
        Printf.printf "  sealed     yes (%d records, %d pins declared)\n" hdr.Sio.h_records
          hdr.Sio.h_pins
      else Printf.printf "  sealed     NO — writer never closed\n";
      Printf.printf "  scanned    %d chunks, %d records, %d pins\n" r.Sio.r_chunks r.Sio.r_records
        r.Sio.r_pins;
      (match Sio.csr_estimate_words hdr with
      | Some words ->
          Printf.printf "  csr est.   %.1f MB in core (streaming tier above %.1f MB)\n"
            (float_of_int (words * 8) /. 1048576.0)
            (float_of_int (Stream.Ingest.default_threshold_words * 8) /. 1048576.0)
      | None -> ());
      (match r.Sio.r_error with
      | Some err ->
          Printf.printf "  error      %s\n" err;
          die "stream %s: torn or corrupt after %d valid records" file r.Sio.r_records
      | None -> ());
      if not r.Sio.r_sealed then die "stream %s: unsealed (writer crashed before close)" file;
      if not r.Sio.r_counts_match then
        die "stream %s: header declares %d records / %d pins but the chunks hold %d / %d" file
          hdr.Sio.h_records hdr.Sio.h_pins r.Sio.r_records r.Sio.r_pins;
      Printf.printf "\nstream OK\n")

(* doctor: offline validation of a diagnostic bundle directory plus a human
   summary.  Every structural problem — missing/corrupt manifest, format
   mismatch, listed file absent or resized, unparseable trace/events,
   exposition failing the Prom lint — is a user-visible defect in the
   bundle and exits 2 through [die].  A directory holding journal/checkpoint
   entries instead is validated as a daemon --persist-dir; a regular file is
   validated as a binary edge stream. *)
let doctor_cmd =
  let run jobs dir =
    let path name = Filename.concat dir name in
    (match Sys.is_directory dir with
    | true -> ()
    | false -> doctor_stream dir; exit 0
    | exception Sys_error msg -> die "%s" msg);
    let looks_persist =
      (not (Sys.file_exists (path "manifest.json")))
      && Array.exists
           (fun name ->
             String.length name >= 8
             && (String.sub name 0 8 = "journal-" || (String.length name >= 5 && String.sub name 0 5 = "ckpt-")))
           (try Sys.readdir dir with Sys_error _ -> [||])
    in
    if looks_persist then doctor_persist dir
    else begin
    let read name =
      match In_channel.with_open_bin (path name) In_channel.input_all with
      | text -> text
      | exception Sys_error msg -> die "%s" msg
    in
    (* The manifest is written last: a directory without one is a bundle
       that never completed. *)
    if not (Sys.file_exists (path "manifest.json")) then
      die "%s: no manifest.json (incomplete or corrupt bundle)" dir;
    let manifest =
      match Obs.Json.of_string (read "manifest.json") with
      | j -> j
      | exception Failure msg -> die "manifest.json: %s" msg
    in
    let str_field name =
      match Option.bind (Obs.Json.member name manifest) Obs.Json.to_str with
      | Some s -> s
      | None -> die "manifest.json: missing %S" name
    in
    let format = str_field "format" in
    if format <> Obs.Recorder.format_tag then
      die "manifest.json: format %S (this doctor understands %S)" format Obs.Recorder.format_tag;
    let trigger = str_field "trigger" in
    let version = str_field "version" in
    let files =
      match Obs.Json.member "files" manifest with
      | Some (Obs.Json.List l) ->
          List.map
            (fun f ->
              match
                ( Option.bind (Obs.Json.member "name" f) Obs.Json.to_str,
                  Option.bind (Obs.Json.member "bytes" f) Obs.Json.to_float )
              with
              | Some n, Some b -> (n, int_of_float b)
              | _ -> die "manifest.json: malformed files entry")
            l
      | _ -> die "manifest.json: missing files list"
    in
    List.iter
      (fun (name, bytes) ->
        match (Unix.stat (path name)).Unix.st_size with
        | size when size = bytes -> ()
        | size -> die "%s: %d bytes on disk but the manifest recorded %d" name size bytes
        | exception Unix.Unix_error (e, _, _) ->
            die "%s: listed in the manifest but %s" name (Unix.error_message e))
      files;
    (* trace.json: Chrome trace-event schema — a traceEvents array whose
       entries all carry a name and a phase. *)
    let trace =
      match Obs.Json.of_string (read "trace.json") with
      | j -> j
      | exception Failure msg -> die "trace.json: %s" msg
    in
    let tevents =
      match Obs.Json.member "traceEvents" trace with
      | Some (Obs.Json.List l) -> l
      | _ -> die "trace.json: missing traceEvents array"
    in
    let slices =
      List.filter_map
        (fun e ->
          match
            ( Option.bind (Obs.Json.member "ph" e) Obs.Json.to_str,
              Option.bind (Obs.Json.member "name" e) Obs.Json.to_str )
          with
          | Some ph, Some name ->
              if ph <> "X" then None
              else (
                match
                  ( Option.bind (Obs.Json.member "ts" e) Obs.Json.to_float,
                    Option.bind (Obs.Json.member "dur" e) Obs.Json.to_float )
                with
                | Some ts, Some dur -> Some (name, ts, dur)
                | _ -> die "trace.json: complete slice %S without ts/dur" name)
          | _ -> die "trace.json: event without name and ph")
        tevents
    in
    (match Obs.Prom.lint (read "metrics.prom") with
    | Ok () -> ()
    | Error msg -> die "metrics.prom: %s" msg);
    let jsonl_lines fname =
      let lines = String.split_on_char '\n' (read fname) in
      List.iteri
        (fun i line ->
          if String.trim line <> "" then
            match Obs.Json.of_string line with
            | _ -> ()
            | exception Failure msg -> die "%s:%d: %s" fname (i + 1) msg)
        lines;
      List.length (List.filter (fun l -> String.trim l <> "") lines)
    in
    let n_events = jsonl_lines "events.jsonl" in
    let n_snaps = jsonl_lines "snapshots.jsonl" in
    (* ---- validated; human summary from here on ---- *)
    Printf.printf "bundle %s\n" dir;
    Printf.printf "  trigger  %s%s\n" trigger
      (match Option.bind (Obs.Json.member "rule" manifest) Obs.Json.to_str with
      | Some r -> Printf.sprintf " (rule %s)" r
      | None -> "");
    Printf.printf "  version  %s\n" version;
    (match Obs.Json.member "written_unix_s" manifest with
    | Some j -> (
        match Obs.Json.to_float j with
        | Some s ->
            let tm = Unix.gmtime s in
            Printf.printf "  written  %04d-%02d-%02dT%02d:%02d:%02dZ\n" (tm.Unix.tm_year + 1900)
              (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
        | None -> ())
    | None -> ());
    (match Option.bind (Obs.Json.member "window_s" manifest) Obs.Json.to_float with
    | Some w -> Printf.printf "  window   %gs of recording, %d snapshots\n" w n_snaps
    | None -> Printf.printf "  window   recorder off, %d snapshots\n" n_snaps);
    (match Obs.Json.member "detail" manifest with
    | Some (Obs.Json.Obj ((_ :: _) as fields)) ->
        Printf.printf "  detail   %s\n"
          (String.concat " "
             (List.map
                (fun (k, v) ->
                  Printf.sprintf "%s=%s" k
                    (match v with Obs.Json.Str s -> s | other -> Obs.Json.to_string other))
                fields))
    | _ -> ());
    Printf.printf "  files    %d validated, %d trace events, %d event-log records\n"
      (List.length files) (List.length tevents) n_events;
    let by_dur = List.sort (fun (_, _, d1) (_, _, d2) -> compare d2 d1) slices in
    (match by_dur with
    | [] -> ()
    | _ ->
        Printf.printf "\nslowest spans:\n";
        List.iteri
          (fun i (name, _, dur) ->
            if i < 5 then Printf.printf "  %-32s %10.3f ms\n" name (dur /. 1e3))
          by_dur);
    (* GC pressure during the incident: how much gc.* time lands inside the
       slowest server-side span. *)
    let prefixed p n = String.length n >= String.length p && String.sub n 0 (String.length p) = p in
    (match List.filter (fun (n, _, _) -> prefixed "server." n) by_dur with
    | [] -> ()
    | (name, ts, dur) :: _ ->
        let gc_us =
          List.fold_left
            (fun acc (n, gts, gdur) ->
              if prefixed "gc." n then
                let lo = Float.max ts gts and hi = Float.min (ts +. dur) (gts +. gdur) in
                acc +. Float.max 0.0 (hi -. lo)
              else acc)
            0.0 slices
        in
        Printf.printf "\ngc overlap: %.3f ms of gc.* inside the slowest server span (%s, %.3f ms)\n"
          (gc_us /. 1e3) name (dur /. 1e3));
    (* Replay: the captured instance re-solved locally proves the bundle is
       actionable, and gives a second opinion on the makespan. *)
    if Sys.file_exists (path "instance.hg") then begin
      let h = load_instance (path "instance.hg") in
      Printf.printf "\nreplay: instance.hg — %d tasks, %d processors\n" h.Hyper.Graph.n1
        h.Hyper.Graph.n2;
      let t0 = Unix.gettimeofday () in
      match Semimatch.Portfolio.solve ~jobs h with
      | r ->
          Printf.printf "  portfolio best makespan %g (winner %s, lower bound %g) in %.2fs\n"
            r.Semimatch.Portfolio.best_makespan
            (Semimatch.Portfolio.solver_name r.Semimatch.Portfolio.winner)
            r.Semimatch.Portfolio.lower_bound
            (Unix.gettimeofday () -. t0)
      | exception (Failure msg | Invalid_argument msg) -> die "replay failed: %s" msg
    end;
    Printf.printf "\nbundle OK\n"
    end
  in
  let bundle =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PATH"
             ~doc:
               "Diagnostic bundle, daemon $(b,--persist-dir), or binary edge-stream file to \
                validate.")
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Validate a diagnostic bundle (manifest, trace schema, Prometheus lint, event log, \
          local replay of the captured instance), a daemon persist dir (checkpoint \
          manifests, journal integrity, dry-run crash recovery), or a binary edge-stream \
          file (header, chunk framing, truncation); exits 2 on any structural problem")
    Term.(const run $ jobs_arg $ bundle)

(* version: one line for bug reports and CI log headers — package version
   (from semimatch.opam via dune's %{version:semimatch}) plus the build
   features that change behavior. *)
let version_cmd =
  let run () =
    Printf.printf "semimatch %s ocaml=%s domains=%d obs=%s\n" Cli_version.version
      Sys.ocaml_version
      (Domain.recommended_domain_count ())
      (if Obs.is_enabled () then "on" else "available")
  in
  Cmd.v
    (Cmd.info "version" ~doc:"Print the package version and build features on one line")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "semimatch_cli" ~doc:"Semi-matching scheduling under resource constraints"
  in
  let code =
    Cmd.eval
      (Cmd.group info
         [
           gen_cmd; gen_sp_cmd; info_cmd; solve_cmd; compare_cmd; profile_cmd; simulate_cmd;
           exact_cmd; serve_cmd; client_cmd; loadgen_cmd; doctor_cmd; version_cmd;
         ])
  in
  (* Cmdliner reports usage errors (unknown flag, bad value) as 124; the
     CLI's error-exit contract is 2 across the board. *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
