(* Regenerates every table of the paper's evaluation section.

   Usage:
     experiments_main table1 [--scale K] [--seeds N]
     experiments_main table2 ...           (unweighted MULTIPROC, Table II)
     experiments_main table3 ...           (related weights, Table III)
     experiments_main table-random ...     (TR Table 8 check)
     experiments_main singleproc [--d D] ...
     experiments_main all ...

   --csv FILE additionally dumps machine-readable results. *)

open Cmdliner

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let scale_arg =
  let doc = "Divide instance sizes by $(docv) (1 = the paper's full sizes)." in
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"K" ~doc)

let seeds_arg =
  let doc = "Random replicates per instance (the paper uses 10)." in
  Arg.(value & opt int 10 & info [ "seeds" ] ~docv:"N" ~doc)

let csv_arg =
  let doc = "Also write results as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc = "Parallel domains for instance evaluation (quality unchanged;              keep 1 when timings matter)." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"J" ~doc)

let d_arg =
  let doc = "Average degree d for SINGLEPROC instances (paper details d=10)." in
  Arg.(value & opt int 10 & info [ "d" ] ~docv:"D" ~doc)

let run_multiproc ?(jobs = 1) ~weights ~title ~with_table1 scale seeds csv =
  let t0 = Obs.Span.now_ns () in
  let rows = Experiments.Runner.run ~seeds ~scale ~jobs ~weights () in
  if with_table1 then begin
    print_string "Table I: random hypergraph instances\n\n";
    print_string (Experiments.Runner.render_table1 rows);
    print_newline ()
  end;
  print_string (Experiments.Runner.render_quality ~title rows);
  Printf.printf "\n(total %.1f s)\n" (Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) t0));
  Option.iter (fun path -> write_file path (Experiments.Runner.to_csv rows)) csv

let table1_cmd =
  let run scale seeds csv =
    let rows = Experiments.Runner.run ~algorithms:[] ~seeds ~scale ~weights:Hyper.Weights.Unit () in
    print_string "Table I: random hypergraph instances\n\n";
    print_string (Experiments.Runner.render_table1 rows);
    Option.iter (fun path -> write_file path (Experiments.Runner.to_csv rows)) csv
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Instance statistics (Table I)")
    Term.(const run $ scale_arg $ seeds_arg $ csv_arg)

let table2_cmd =
  let run scale seeds csv jobs =
    run_multiproc ~jobs ~weights:Hyper.Weights.Unit
      ~title:"Table II: heuristic quality wrt LB, unweighted hypergraphs" ~with_table1:true scale
      seeds csv
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Unweighted MULTIPROC quality (Table II)")
    Term.(const run $ scale_arg $ seeds_arg $ csv_arg $ jobs_arg)

let table3_cmd =
  let run scale seeds csv jobs =
    run_multiproc ~jobs ~weights:Hyper.Weights.Related
      ~title:"Table III: heuristic quality wrt LB, related weights" ~with_table1:false scale seeds
      csv
  in
  Cmd.v
    (Cmd.info "table3" ~doc:"Related-weights MULTIPROC quality (Table III)")
    Term.(const run $ scale_arg $ seeds_arg $ csv_arg $ jobs_arg)

let table_random_cmd =
  let run scale seeds csv jobs =
    run_multiproc ~jobs ~weights:Hyper.Weights.default_random
      ~title:"TR Table 8 check: heuristic quality wrt LB, random weights" ~with_table1:false scale
      seeds csv
  in
  Cmd.v
    (Cmd.info "table-random" ~doc:"Random-weights double check (TR Table 8)")
    Term.(const run $ scale_arg $ seeds_arg $ csv_arg $ jobs_arg)

let singleproc_cmd =
  let run scale seeds d csv jobs =
    let t0 = Obs.Span.now_ns () in
    let rows = Experiments.Sp_runner.run ~seeds ~scale ~d ~jobs () in
    print_string
      (Experiments.Sp_runner.render
         ~title:
           (Printf.sprintf
              "SINGLEPROC-UNIT: heuristic quality wrt the exact optimum (d=%d; paper Sec. V-B)" d)
         rows);
    Printf.printf "\n(total %.1f s)\n" (Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) t0));
    Option.iter (fun path -> write_file path (Experiments.Sp_runner.to_csv rows)) csv
  in
  Cmd.v
    (Cmd.info "singleproc" ~doc:"SINGLEPROC-UNIT summary experiments (Sec. V-B)")
    Term.(const run $ scale_arg $ seeds_arg $ d_arg $ csv_arg $ jobs_arg)

let ablations_cmd =
  let run scale seeds =
    print_string (Experiments.Ablations.run_all ~seeds ~scale ())
  in
  Cmd.v
    (Cmd.info "ablations"
       ~doc:"Vector-variant, matching-engine, exact-strategy and baseline ablations")
    Term.(const run $ scale_arg $ seeds_arg)

let sweep_cmd =
  let run seeds weights_name jobs =
    let weights =
      match weights_name with
      | "unit" -> Hyper.Weights.Unit
      | "related" -> Hyper.Weights.Related
      | "random" -> Hyper.Weights.default_random
      | other -> invalid_arg (Printf.sprintf "unknown weight scheme %S" other)
    in
    let t0 = Obs.Span.now_ns () in
    let results = Experiments.Sweep.run ~seeds ~jobs ~weights () in
    print_string
      (Printf.sprintf
         "Ranking stability across dv, dh in {2,5,10} and g in {32,128} (%s weights):\n\n"
         (Hyper.Weights.name weights));
    print_string (Experiments.Sweep.render results);
    Printf.printf "\n(total %.1f s)\n" (Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) t0))
  in
  let weights_arg =
    Arg.(value & opt string "related" & info [ "weights" ] ~docv:"SCHEME" ~doc:"unit, related or random")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Check the paper's claim that heuristic rankings are stable across dv/dh/g")
    Term.(const run $ seeds_arg $ weights_arg $ jobs_arg)

let weighted_sp_cmd =
  let run seeds =
    let t0 = Obs.Span.now_ns () in
    print_string (Experiments.Weighted_sp.render (Experiments.Weighted_sp.run ~seeds ()));
    Printf.printf "\n(total %.1f s)\n" (Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) t0))
  in
  Cmd.v
    (Cmd.info "singleproc-weighted" ~doc:"Weighted SINGLEPROC extension study")
    Term.(const run $ seeds_arg)

let online_cmd =
  let run scale seeds d orders =
    let t0 = Obs.Span.now_ns () in
    print_string (Experiments.Online.render (Experiments.Online.run ~seeds ~orders ~scale ~d ()));
    Printf.printf "\n(total %.1f s)\n" (Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) t0))
  in
  let orders_arg =
    Arg.(value & opt int 20 & info [ "orders" ] ~docv:"K" ~doc:"arrival permutations per replicate")
  in
  Cmd.v
    (Cmd.info "online" ~doc:"Online-arrival competitive-ratio extension study")
    Term.(const run $ scale_arg $ seeds_arg $ d_arg $ orders_arg)

let hardness_cmd =
  let run trials =
    let t0 = Obs.Span.now_ns () in
    print_string (Experiments.Hardness.render (Experiments.Hardness.run ~trials ()));
    Printf.printf "\n(total %.1f s)\n" (Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) t0))
  in
  let trials_arg =
    Arg.(value & opt int 50 & info [ "trials" ] ~docv:"T" ~doc:"planted instances per row")
  in
  Cmd.v
    (Cmd.info "hardness" ~doc:"Planted X3C covers: heuristics vs the Theorem-1 threshold")
    Term.(const run $ trials_arg)

let bounds_cmd =
  let run scale seeds weights_name =
    let weights =
      match weights_name with
      | "unit" -> Hyper.Weights.Unit
      | "related" -> Hyper.Weights.Related
      | "random" -> Hyper.Weights.default_random
      | other -> invalid_arg (Printf.sprintf "unknown weight scheme %S" other)
    in
    let t0 = Obs.Span.now_ns () in
    print_string (Experiments.Bounds.render (Experiments.Bounds.run ~seeds ~scale ~weights ()));
    Printf.printf "\n(total %.1f s)\n" (Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) t0))
  in
  let weights_arg =
    Arg.(value & opt string "unit" & info [ "weights" ] ~docv:"SCHEME" ~doc:"unit, related or random")
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Lower-bound quality study (bound looseness vs heuristic error)")
    Term.(const run $ scale_arg $ seeds_arg $ weights_arg)

let robustness_cmd =
  let run seeds =
    let t0 = Obs.Span.now_ns () in
    print_string (Experiments.Robustness.render (Experiments.Robustness.run ~seeds ()));
    Printf.printf "\n(total %.1f s)\n" (Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) t0))
  in
  Cmd.v
    (Cmd.info "robustness" ~doc:"Heuristic rankings on off-paper instance families")
    Term.(const run $ seeds_arg)

let faults_cmd =
  let run seeds json =
    let t0 = Obs.Span.now_ns () in
    let rows = Experiments.Fault_sweep.run ~seeds () in
    print_string (Experiments.Fault_sweep.render rows);
    Printf.printf "\n(total %.1f s)\n" (Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) t0));
    match json with
    | None -> ()
    | Some path ->
        Experiments.Fault_sweep.write_json path rows;
        Printf.printf "wrote %s\n" path
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Also write rows as JSON lines to $(docv).")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Fault sweep: repaired-makespan/LB ratio vs fraction of processors killed")
    Term.(const run $ seeds_arg $ json_arg)

let stream_cmd =
  let run scale seeds d csv online =
    let t0 = Obs.Span.now_ns () in
    let rows = Experiments.Stream_quality.run ~seeds ~scale ~d () in
    print_string (Experiments.Stream_quality.render rows);
    Option.iter
      (fun path -> write_file path (Experiments.Stream_quality.to_csv rows))
      csv;
    if online then begin
      print_newline ();
      let orows = Experiments.Stream_quality.run_online ~seeds ~scale () in
      print_string (Experiments.Stream_quality.render_online orows);
      Option.iter
        (fun path -> write_file (path ^ ".online") (Experiments.Stream_quality.online_to_csv orows))
        csv
    end;
    Printf.printf "\n(total %.1f s)\n" (Obs.Span.ns_to_s (Int64.sub (Obs.Span.now_ns ()) t0))
  in
  let online_arg =
    Arg.(value & flag
         & info [ "online" ]
             ~doc:"Also run the online greedy over the general MULTIPROC grid.")
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Streaming quality vs memory: one-/few-pass makespan ratio to the exact optimum \
          next to solver state as a fraction of the avoided CSR")
    Term.(const run $ scale_arg $ seeds_arg $ d_arg $ csv_arg $ online_arg)

let all_cmd =
  let run scale seeds =
    run_multiproc ~weights:Hyper.Weights.Unit
      ~title:"Table II: heuristic quality wrt LB, unweighted hypergraphs" ~with_table1:true scale
      seeds None;
    print_newline ();
    run_multiproc ~weights:Hyper.Weights.Related
      ~title:"Table III: heuristic quality wrt LB, related weights" ~with_table1:false scale seeds
      None;
    print_newline ();
    run_multiproc ~weights:Hyper.Weights.default_random
      ~title:"TR Table 8 check: heuristic quality wrt LB, random weights" ~with_table1:false scale
      seeds None;
    print_newline ();
    let rows = Experiments.Sp_runner.run ~seeds ~scale () in
    print_string
      (Experiments.Sp_runner.render
         ~title:"SINGLEPROC-UNIT: heuristic quality wrt the exact optimum (d=10)" rows)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Every table in sequence")
    Term.(const run $ scale_arg $ seeds_arg)

let () =
  let info =
    Cmd.info "experiments_main" ~doc:"Reproduce the paper's evaluation tables"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Regenerates Tables I-III of Benoit, Langguth and U\xc3\xa7ar, \
             'Semi-matching algorithms for scheduling parallel tasks under resource \
             constraints' (IPDPSW 2013), plus the SINGLEPROC summary experiments and the \
             technical report's random-weights variant.";
        ]
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ table1_cmd; table2_cmd; table3_cmd; table_random_cmd; singleproc_cmd; weighted_sp_cmd; online_cmd; ablations_cmd; sweep_cmd; hardness_cmd; bounds_cmd; robustness_cmd; faults_cmd; stream_cmd; all_cmd ]))
