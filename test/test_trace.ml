(* Obs.Trace: the Chrome trace-event export.  A deterministic Pool run must
   produce slices on at least two domain tracks with paired flow arrows, the
   CLI's --trace file must parse back through Obs.Json with the schema
   fields intact (the acceptance criterion), the event log must capture the
   portfolio's decision points, and the Pool's depth guard must confine a
   leaked span to its task. *)

module J = Obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let member_str name json = Option.bind (J.member name json) J.to_str
let member_num name json = Option.bind (J.member name json) J.to_float

let events_of json =
  match J.member "traceEvents" json with
  | Some (J.List evs) -> evs
  | _ -> Alcotest.fail "trace has no traceEvents list"

let with_ph ph evs = List.filter (fun e -> member_str "ph" e = Some ph) evs

let distinct_tids evs =
  List.filter_map (member_num "tid") evs |> List.sort_uniq compare

(* Spin for ~[ms] of wall time: long enough that with 2 domains and many
   tasks, work stealing reliably spreads tasks over both tracks. *)
let busy ~ms () =
  let t0 = Unix.gettimeofday () in
  let spin = ref 0 in
  while (Unix.gettimeofday () -. t0) *. 1e3 < ms do
    for i = 1 to 1_000 do
      spin := !spin + (i land 3)
    done
  done;
  ignore (Sys.opaque_identity !spin)

let test_pool_trace_two_tracks () =
  Obs.with_recording (fun () ->
      let work = Array.init 16 (fun i -> i) in
      let results = Parpool.Pool.map ~jobs:2 ~f:(fun i -> busy ~ms:2.0 (); i * i) work in
      check_int "pool computed" (15 * 15) results.(15);
      let trace = Obs.Trace.to_json () in
      let evs = events_of trace in
      (* Schema: every event carries ph and pid; slices carry ts/dur/tid. *)
      check "every event has ph and pid"
        (List.for_all (fun e -> member_str "ph" e <> None && member_num "pid" e <> None) evs)
        true;
      let slices = with_ph "X" evs in
      check "complete slices present" (slices <> []) true;
      check "slices carry ts, dur and tid"
        (List.for_all
           (fun e -> member_num "ts" e <> None && member_num "dur" e <> None && member_num "tid" e <> None)
           slices)
        true;
      let tasks = List.filter (fun e -> member_str "name" e = Some "pool.task") slices in
      check "at least two domain tracks ran pool tasks"
        (List.length (distinct_tids tasks) >= 2)
        true;
      (* Thread metadata names every track that recorded anything. *)
      let meta = with_ph "M" evs in
      let named_tids =
        List.filter (fun e -> member_str "name" e = Some "thread_name") meta |> distinct_tids
      in
      check "every slice tid has thread metadata"
        (List.for_all (fun tid -> List.mem tid named_tids) (distinct_tids slices))
        true;
      (* Flow arrows: every start has a matching finish with the same id. *)
      let starts = with_ph "s" evs and finishes = with_ph "f" evs in
      check "flow events present" (starts <> []) true;
      let ids evs = List.filter_map (member_num "id") evs in
      List.iter
        (fun id -> check "flow start is paired" (List.mem id (ids finishes)) true)
        (ids starts);
      check "finishes bind to the enclosing slice"
        (List.for_all (fun e -> member_str "bp" e = Some "e") finishes)
        true;
      (* Counter samples ride along. *)
      check "counter track sampled" (with_ph "C" evs <> []) true)

(* Acceptance criterion, end to end: solve --jobs 4 --trace FILE through the
   real CLI, then parse the file with Obs.Json and validate the schema. *)
let test_cli_solve_trace_golden () =
  Test_cli.with_temp (fun inst ->
      let trace_path = Filename.temp_file "semimatch_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists trace_path then Sys.remove trace_path)
        (fun () ->
          ignore
            (Test_cli.expect_ok
               (Test_cli.run_capture
                  [
                    "gen"; "--tasks"; "400"; "--procs"; "48"; "--groups"; "8"; "--weights";
                    "related"; "--seed"; "11"; "-o"; inst;
                  ]));
          ignore
            (Test_cli.expect_ok
               (Test_cli.run_capture
                  [ "solve"; inst; "--jobs"; "4"; "--trace"; trace_path ]));
          let ic = open_in trace_path in
          let content =
            Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)
          in
          let trace = J.of_string content in
          let evs = events_of trace in
          check "trace is non-trivial" (List.length evs > 10) true;
          let slices = with_ph "X" evs in
          check "slices have the timing fields"
            (List.for_all
               (fun e ->
                 member_str "name" e <> None && member_num "ts" e <> None
                 && member_num "dur" e <> None && member_num "pid" e <> None
                 && member_num "tid" e <> None)
               slices)
            true;
          check "at least two distinct domain tracks"
            (List.length (distinct_tids evs) >= 2)
            true;
          let starts = with_ph "s" evs and finishes = with_ph "f" evs in
          check "at least one flow event" (starts <> []) true;
          let ids evs = List.filter_map (member_num "id") evs in
          List.iter
            (fun id -> check "flow ids pair up" (List.mem id (ids finishes)) true)
            (ids starts)))

let small_instance () =
  let rng = Randkit.Prng.create ~seed:5 in
  Hyper.Generate.generate rng ~family:Hyper.Generate.Fewg_manyg ~n:120 ~p:16 ~dv:4 ~dh:3 ~g:4
    ~weights:Hyper.Weights.Related

let test_portfolio_events () =
  Obs.with_recording (fun () ->
      let h = small_instance () in
      ignore (Semimatch.Portfolio.solve ~jobs:2 h);
      let records = Obs.Events.records () in
      check "events recorded" (records <> []) true;
      let names = List.map (fun r -> r.Obs.Events.e_name) records in
      check "portfolio completion events present"
        (List.mem "portfolio.solver.done" names)
        true;
      check "local-search pass events present" (List.mem "local_search.pass" names) true;
      (* Every jsonl line parses and carries the schema fields. *)
      let lines =
        String.split_on_char '\n' (Obs.Events.render_jsonl ())
        |> List.filter (fun l -> l <> "")
      in
      check_int "one line per record" (List.length records) (List.length lines);
      List.iter
        (fun line ->
          let json = J.of_string line in
          check "event rows carry event/level/dom/ts"
            (member_str "event" json <> None && member_str "level" json <> None
            && member_num "dom" json <> None && member_num "ts_ns" json <> None)
            true)
        lines;
      (* Render-time filtering: a Warn-only view contains no debug rows. *)
      let warn_only = Obs.Events.render_jsonl ~min_level:Obs.Events.Warn () in
      String.split_on_char '\n' warn_only
      |> List.iter (fun l ->
             if l <> "" then
               check "min_level filters" (member_str "level" (J.of_string l) = Some "warn") true))

(* A task that leaks a span (enter without exit) must not skew the depth of
   anything recorded after it: the Pool's depth guard restores the worker's
   nesting depth at the task boundary. *)
let test_pool_depth_guard () =
  Obs.with_recording (fun () ->
      let work = Array.init 8 (fun i -> i) in
      let _ =
        Parpool.Pool.map ~jobs:2
          ~f:(fun i ->
            if i land 1 = 0 then ignore (Obs.Span.enter "leaky");
            i)
          work
      in
      ignore (Obs.Span.timed "after.pool" (fun () -> ()));
      let after =
        List.filter (fun r -> r.Obs.Span.r_name = "after.pool") (Obs.Span.records ())
      in
      check "post-pool span recorded" (after <> []) true;
      check "leaked spans did not inflate the depth"
        (List.for_all (fun r -> r.Obs.Span.depth = 0) after)
        true)

(* Runtime_events correlation: forced GCs under an active subscription must
   land as gc.* spans on a dedicated track, named distinctly from domain
   tracks in the trace metadata. *)
let test_runtime_gc_track () =
  Obs.with_recording (fun () ->
      Obs.Runtime.start ();
      check "subscription is live" true (Obs.Runtime.started ());
      (* Generate minor collections, then drain the ring. *)
      for _ = 1 to 50 do
        ignore (Sys.opaque_identity (Array.make 20_000 0.0));
        Gc.minor ()
      done;
      let consumed = ref (Obs.Runtime.poll ()) in
      let retries = ref 0 in
      while !consumed = 0 && !retries < 20 do
        Gc.minor ();
        incr retries;
        consumed := Obs.Runtime.poll ()
      done;
      Obs.Runtime.stop ();
      check "poll consumed runtime events" true (!consumed > 0);
      let gc_spans =
        List.filter
          (fun r ->
            String.length r.Obs.Span.r_name >= 3 && String.sub r.Obs.Span.r_name 0 3 = "gc.")
          (Obs.Span.records ())
      in
      check "gc spans recorded" true (gc_spans <> []);
      check "gc spans live on the offset tracks" true
        (List.for_all (fun r -> r.Obs.Span.dom >= Obs.Runtime.track_offset) gc_spans);
      check "gc spans are well-formed intervals" true
        (List.for_all (fun r -> Int64.compare r.Obs.Span.stop_ns r.Obs.Span.start_ns >= 0) gc_spans);
      (* The trace export names those tracks "gc-ring-N" and keeps engine
         spans on ordinary "domain-N" tracks. *)
      ignore (Obs.Span.timed "engine.work" (fun () -> Sys.opaque_identity ()));
      let evs = events_of (Obs.Trace.to_json ()) in
      let thread_names =
        with_ph "M" evs
        |> List.filter (fun e -> member_str "name" e = Some "thread_name")
        |> List.filter_map (fun e ->
               Option.bind (J.member "args" e) (fun a -> member_str "name" a))
      in
      let is_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
      check "a gc-ring track is named" true (List.exists (is_prefix "gc-ring-") thread_names);
      check "domain tracks keep their names" true
        (List.exists (is_prefix "domain-") thread_names);
      let gc_slices =
        with_ph "X" evs
        |> List.filter (fun e ->
               match member_str "name" e with Some n -> is_prefix "gc." n | None -> false)
      in
      check "gc slices exported" true (gc_slices <> []))

let suite =
  [
    Alcotest.test_case "pool trace has two tracks and flows" `Quick test_pool_trace_two_tracks;
    Alcotest.test_case "CLI solve --trace golden schema" `Quick test_cli_solve_trace_golden;
    Alcotest.test_case "portfolio events log" `Quick test_portfolio_events;
    Alcotest.test_case "pool depth guard" `Quick test_pool_depth_guard;
    Alcotest.test_case "runtime GC events land on gc-ring tracks" `Quick test_runtime_gc_track;
  ]
